#include "server/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include "server/handlers.hpp"

namespace dlap::server {

namespace {

/// Writes the whole buffer (short writes retried); false on I/O failure.
/// MSG_NOSIGNAL: a peer that closed mid-response costs an error return,
/// not a SIGPIPE.
bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

void set_socket_timeouts(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

ServerConfig with_defaults(ServerConfig config) {
  if (!config.clock) config.clock = steady_clock_fn();
  return config;
}

}  // namespace

Server::Server(Engine& engine, ServerConfig config)
    : engine_(engine),
      config_(with_defaults(std::move(config))),
      limiter_(config_.rate, config_.clock) {
  // Canned shed response, serialized once: the accept loop writes it
  // without allocating while the daemon is at its busiest.
  HttpResponse shed = Router::error_response(
      503, "OVERLOADED", "connection queue is full; retry shortly");
  shed.set_header("Retry-After", std::to_string(config_.shed_retry_after_s));
  shed.set_header("Connection", "close");
  shed_response_ = shed.serialize();

  router_.add("POST", "/v1/predict", [this](const HttpRequest& request) {
    return handle_predict(engine_, request);
  });
  router_.add("POST", "/v1/rank", [this](const HttpRequest& request) {
    return handle_rank(engine_, request);
  });
  router_.add("POST", "/v1/tune", [this](const HttpRequest& request) {
    return handle_tune(engine_, request);
  });
  router_.add("GET", "/v1/stats", [this](const HttpRequest& request) {
    return handle_stats(request);
  });
  router_.add("POST", "/v1/admin/reload", [this](const HttpRequest& request) {
    return handle_reload(request);
  });
}

Server::~Server() { stop(); }

Status Server::start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::error(StatusCode::InvalidQuery,
                         "Server::start: already running");
  }
  if (config_.workers < 1) {
    return Status::error(StatusCode::InvalidQuery,
                         "Server::start: workers must be >= 1");
  }
  if (config_.queue_capacity < 1) {
    return Status::error(StatusCode::InvalidQuery,
                         "Server::start: queue_capacity must be >= 1");
  }
  if (config_.port < 0 || config_.port > 65535) {
    return Status::error(StatusCode::InvalidQuery,
                         "Server::start: port out of range");
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  const std::string host =
      config_.host == "localhost" ? std::string("127.0.0.1") : config_.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::error(StatusCode::InvalidQuery,
                         "Server::start: host '" + config_.host +
                             "' is not a numeric IPv4 address");
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::error(StatusCode::InternalError,
                         std::string("Server::start: socket: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status::error(StatusCode::InternalError,
                         std::string("Server::start: bind: ") +
                             std::strerror(err));
  }
  if (::listen(fd, 128) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::error(StatusCode::InternalError,
                         std::string("Server::start: listen: ") +
                             std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status::error(StatusCode::InternalError,
                         std::string("Server::start: getsockname: ") +
                             std::strerror(err));
  }
  listen_fd_ = fd;
  port_ = static_cast<int>(ntohs(bound.sin_port));

  conn_queue_ = std::make_unique<BoundedQueue<Conn>>(config_.queue_capacity);
  running_.store(true, std::memory_order_release);
  worker_pool_ = std::make_unique<ThreadPool>(config_.workers);
  for (index_t i = 0; i < config_.workers; ++i) {
    auto ignored = worker_pool_->submit([this] { worker_loop(); });
    static_cast<void>(ignored);
  }
  admin_pool_ = std::make_unique<ThreadPool>(1);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return Status{};
}

void Server::stop() {
  running_.store(false, std::memory_order_release);
  // shutdown() wakes the accept loop (accept returns EINVAL on Linux);
  // the fd itself is closed only after the join, so it cannot be reused
  // by a racing connection while the loop still references it.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (conn_queue_) conn_queue_->close();
  {
    // Wake workers parked on idle keep-alive sockets: SHUT_RD delivers
    // EOF after any buffered request bytes, so in-flight/queued requests
    // still complete while idle connections release their worker now.
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const int fd : active_fds_) ::shutdown(fd, SHUT_RD);
  }
  // ThreadPool destructors join: workers drain the (closed) queue --
  // already-queued connections still get answered -- and the admin pool
  // finishes any in-flight reload.
  worker_pool_.reset();
  admin_pool_.reset();
}

void Server::register_conn(int fd) {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  active_fds_.insert(fd);
  // A connection popped after stop() began gets its EOF right away too.
  if (!running_.load(std::memory_order_acquire)) ::shutdown(fd, SHUT_RD);
}

void Server::unregister_conn(int fd) {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  active_fds_.erase(fd);
}

void Server::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    sockaddr_in peer_addr{};
    socklen_t peer_len = sizeof(peer_addr);
    const int fd = ::accept(
        listen_fd_, reinterpret_cast<sockaddr*>(&peer_addr), &peer_len);
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listening socket failed; stop() reports nothing further
    }
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    set_socket_timeouts(fd, config_.io_timeout_ms);
    char ip[INET_ADDRSTRLEN] = "unknown";
    ::inet_ntop(AF_INET, &peer_addr.sin_addr, ip, sizeof(ip));
    if (!conn_queue_->try_push(Conn{fd, ip})) {
      // Graceful shed: the overloaded daemon answers immediately with a
      // canned 503 + Retry-After instead of letting the kernel backlog
      // time the client out.
      shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
      responses_5xx_.fetch_add(1, std::memory_order_relaxed);
      send_all(fd, shed_response_);
      ::close(fd);
    }
  }
}

void Server::worker_loop() {
  while (auto conn = conn_queue_->pop()) {
    register_conn(conn->fd);
    handle_connection(conn->fd, conn->peer);
    // Unregister strictly BEFORE close: once closed, the fd number can
    // be recycled by accept(), and a concurrent stop() must never
    // shutdown() somebody else's descriptor.
    unregister_conn(conn->fd);
    ::close(conn->fd);
  }
}

void Server::handle_connection(int fd, const std::string& peer) {
  HttpParser parser(config_.http);
  std::string pending;  // received but not yet parsed (pipelining)
  char buf[16 * 1024];
  index_t served = 0;
  bool open = true;
  while (open) {
    parser.reset();
    bool eof = false;
    bool timed_out = false;
    while (parser.state() != HttpParser::State::Complete &&
           parser.state() != HttpParser::State::Error) {
      if (pending.empty()) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n > 0) {
          pending.append(buf, static_cast<std::size_t>(n));
        } else if (n == 0) {
          eof = true;
          break;
        } else if (errno == EINTR) {
          continue;
        } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
          timed_out = true;
          break;
        } else {
          eof = true;
          break;
        }
      }
      const std::size_t used = parser.feed(pending);
      pending.erase(0, used);
    }
    if (eof) break;
    if (timed_out) {
      // Mid-request stall gets a 408 (never a silent hang); an idle
      // keep-alive connection is just closed.
      if (parser.bytes_consumed() > 0) {
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        HttpResponse response = Router::error_response(
            408, "REQUEST_TIMEOUT", "timed out reading the request");
        response.set_header("Connection", "close");
        send_all(fd, response.serialize());
        count_response(408);
      }
      break;
    }
    if (parser.failed()) {
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse response = Router::error_response(
          parser.error_status(), "BAD_REQUEST", parser.error_message());
      response.set_header("Connection", "close");
      send_all(fd, response.serialize());
      count_response(response.status);
      break;
    }
    const HttpRequest& request = parser.request();
    requests_.fetch_add(1, std::memory_order_relaxed);
    HttpResponse response = route_request(request, peer);
    ++served;
    const bool keep = request.keep_alive() &&
                      served < config_.max_requests_per_connection &&
                      running_.load(std::memory_order_acquire) &&
                      response.header("Connection") == nullptr;
    response.set_header("Connection", keep ? "keep-alive" : "close");
    open = send_all(fd, response.serialize()) && keep;
    count_response(response.status);
  }
  // The caller (worker_loop) closes fd after unregistering it.
}

HttpResponse Server::route_request(const HttpRequest& request,
                                   const std::string& peer) {
  // Client identity: the X-Client-Id header when present (deterministic
  // tests, multi-tenant proxies), the peer address otherwise.
  const std::string* id = request.header("X-Client-Id");
  const std::string& client = id != nullptr ? *id : peer;
  const RateDecision decision = limiter_.admit(client);
  if (!decision.allowed) {
    rate_limited_.fetch_add(1, std::memory_order_relaxed);
    HttpResponse response = Router::error_response(
        429, "RATE_LIMITED",
        "client '" + client + "' exceeded its request rate");
    const double retry = std::max(1.0, std::ceil(decision.retry_after_seconds));
    response.set_header("Retry-After",
                        std::to_string(static_cast<long>(retry)));
    return response;
  }
  return router_.dispatch(request);
}

void Server::count_response(int status) {
  if (status < 300) {
    responses_2xx_.fetch_add(1, std::memory_order_relaxed);
  } else if (status < 500) {
    responses_4xx_.fetch_add(1, std::memory_order_relaxed);
  } else {
    responses_5xx_.fetch_add(1, std::memory_order_relaxed);
  }
}

ServerStats Server::stats() const {
  ServerStats out;
  out.accepted = accepted_.load(std::memory_order_relaxed);
  out.requests = requests_.load(std::memory_order_relaxed);
  out.responses_2xx = responses_2xx_.load(std::memory_order_relaxed);
  out.responses_4xx = responses_4xx_.load(std::memory_order_relaxed);
  out.responses_5xx = responses_5xx_.load(std::memory_order_relaxed);
  out.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  out.rate_limited = rate_limited_.load(std::memory_order_relaxed);
  out.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  out.timeouts = timeouts_.load(std::memory_order_relaxed);
  out.reloads_started = reloads_started_.load(std::memory_order_relaxed);
  out.reloads_completed = reloads_completed_.load(std::memory_order_relaxed);
  out.reloads_failed = reloads_failed_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(reload_error_mutex_);
    out.last_reload_error = last_reload_error_;
  }
  if (conn_queue_) {
    const auto queue = conn_queue_->stats();
    out.queue_depth = queue.depth;
    out.queue_peak = queue.peak;
  }
  out.trace_cache = engine_.trace_cache_stats();
  out.interned_keys = engine_.interned_keys();
  return out;
}

HttpResponse Server::handle_stats(const HttpRequest&) {
  const ServerStats s = stats();
  const auto limiter = limiter_.stats();
  Json responses = Json::object();
  responses.set("status_2xx", Json::number(static_cast<double>(s.responses_2xx)));
  responses.set("status_4xx", Json::number(static_cast<double>(s.responses_4xx)));
  responses.set("status_5xx", Json::number(static_cast<double>(s.responses_5xx)));

  Json server = Json::object();
  server.set("accepted", Json::number(static_cast<double>(s.accepted)));
  server.set("requests", Json::number(static_cast<double>(s.requests)));
  server.set("responses", std::move(responses));
  server.set("shed_queue_full",
             Json::number(static_cast<double>(s.shed_queue_full)));
  server.set("rate_limited", Json::number(static_cast<double>(s.rate_limited)));
  server.set("parse_errors", Json::number(static_cast<double>(s.parse_errors)));
  server.set("timeouts", Json::number(static_cast<double>(s.timeouts)));

  Json queue = Json::object();
  queue.set("depth", Json::number(static_cast<double>(s.queue_depth)));
  queue.set("peak", Json::number(static_cast<double>(s.queue_peak)));
  queue.set("capacity",
            Json::number(static_cast<double>(config_.queue_capacity)));

  Json limit = Json::object();
  limit.set("allowed", Json::number(static_cast<double>(limiter.allowed)));
  limit.set("limited", Json::number(static_cast<double>(limiter.limited)));
  limit.set("tracked_clients",
            Json::number(static_cast<double>(limiter.tracked_clients)));

  Json reload = Json::object();
  reload.set("started", Json::number(static_cast<double>(s.reloads_started)));
  reload.set("completed",
             Json::number(static_cast<double>(s.reloads_completed)));
  reload.set("failed", Json::number(static_cast<double>(s.reloads_failed)));
  reload.set("last_error", Json::string(s.last_reload_error));

  Json cache = Json::object();
  cache.set("hits", Json::number(static_cast<double>(s.trace_cache.hits)));
  cache.set("misses", Json::number(static_cast<double>(s.trace_cache.misses)));
  cache.set("evictions",
            Json::number(static_cast<double>(s.trace_cache.evictions)));
  cache.set("size", Json::number(static_cast<double>(s.trace_cache.size)));

  Json engine = Json::object();
  engine.set("trace_cache", std::move(cache));
  engine.set("interned_keys",
             Json::number(static_cast<double>(s.interned_keys)));

  Json body = Json::object();
  body.set("server", std::move(server));
  body.set("queue", std::move(queue));
  body.set("limiter", std::move(limit));
  body.set("reload", std::move(reload));
  body.set("engine", std::move(engine));
  return Router::json_response(200, body);
}

HttpResponse Server::handle_reload(const HttpRequest& request) {
  std::vector<OperationSpec> specs;
  std::optional<SystemSpec> system;
  if (!request.body.empty()) {
    Json body;
    try {
      body = Json::parse(request.body);
    } catch (const std::exception& e) {
      return Router::status_response(
          Status::error(StatusCode::ParseError,
                        std::string("reload: body is not valid JSON: ") +
                            e.what()));
    }
    const Status bound = bind_reload(body, &specs, &system);
    if (!bound.ok()) return Router::status_response(bound);
  }
  const std::uint64_t id =
      reloads_started_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::size_t spec_count = specs.size();
  // The reload runs on the 1-worker admin pool: the HTTP response returns
  // immediately (202), reads are never stalled (Engine::reload swaps the
  // container and bumps the snapshot version; in-flight queries finish on
  // their pinned models), and concurrent reload requests serialize.
  auto ignored = admin_pool_->submit(
      [this, specs = std::move(specs), system = std::move(system)] {
        const Status status = engine_.reload(specs, system);
        if (status.ok()) {
          reloads_completed_.fetch_add(1, std::memory_order_relaxed);
        } else {
          reloads_failed_.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(reload_error_mutex_);
          last_reload_error_ = status.message;
        }
      });
  static_cast<void>(ignored);
  Json body = Json::object();
  body.set("status", Json::string("reloading"));
  body.set("reload_id", Json::number(static_cast<double>(id)));
  body.set("prepare_specs", Json::number(static_cast<double>(spec_count)));
  return Router::json_response(202, body);
}

}  // namespace dlap::server
