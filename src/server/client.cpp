#include "server/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace dlap::server {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

const std::string* ClientResponse::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (iequals(key, name)) return &value;
  }
  return nullptr;
}

HttpClient::HttpClient(std::string host, int port, int timeout_ms)
    : host_(std::move(host)), port_(port), timeout_ms_(timeout_ms) {
  if (host_ == "localhost") host_ = "127.0.0.1";
}

HttpClient::~HttpClient() { disconnect(); }

void HttpClient::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool HttpClient::connect() {
  disconnect();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) return false;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  if (timeout_ms_ > 0) {
    timeval tv{};
    tv.tv_sec = timeout_ms_ / 1000;
    tv.tv_usec = (timeout_ms_ % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

bool HttpClient::send_request(const std::string& wire) {
  std::string_view rest = wire;
  while (!rest.empty()) {
    const ssize_t n = ::send(fd_, rest.data(), rest.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    rest.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

std::optional<ClientResponse> HttpClient::read_response() {
  // Read until the header block is complete, then exactly Content-Length
  // body bytes (the server always emits Content-Length framing).
  char chunk[8192];
  std::size_t header_end = std::string::npos;
  while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return std::nullopt;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }

  ClientResponse response;
  std::string_view head(buffer_.data(), header_end);
  const std::size_t line_end = head.find("\r\n");
  std::string_view status_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  // "HTTP/1.1 200 OK"
  const std::size_t sp1 = status_line.find(' ');
  if (sp1 == std::string_view::npos) return std::nullopt;
  response.status =
      std::atoi(std::string(status_line.substr(sp1 + 1, 3)).c_str());

  std::size_t content_length = 0;
  std::size_t pos = line_end == std::string_view::npos ? head.size()
                                                       : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string_view name = line.substr(0, colon);
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    response.headers.emplace_back(std::string(name), std::string(value));
    if (iequals(name, "Content-Length")) {
      content_length = static_cast<std::size_t>(
          std::strtoull(std::string(value).c_str(), nullptr, 10));
    }
  }

  const std::size_t body_begin = header_end + 4;
  while (buffer_.size() < body_begin + content_length) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return std::nullopt;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
  response.body = buffer_.substr(body_begin, content_length);
  // Keep pipelined read-ahead (none in practice; the client is
  // strictly request/response) and drop the consumed response.
  buffer_.erase(0, body_begin + content_length);

  const std::string* connection = response.header("Connection");
  if (connection != nullptr && iequals(*connection, "close")) disconnect();
  return response;
}

std::optional<ClientResponse> HttpClient::request(
    const std::string& method, const std::string& target,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "Host: " + host_ + "\r\n";
  for (const auto& [name, value] : headers) {
    wire += name + ": " + value + "\r\n";
  }
  wire += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  wire += body;

  // One reconnect: a server that closed the keep-alive connection (cap
  // reached, restart) looks like a fresh connect, not a failure.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (fd_ < 0 && !connect()) continue;
    if (!send_request(wire)) {
      disconnect();
      continue;
    }
    auto response = read_response();
    if (response) return response;
    disconnect();
  }
  return std::nullopt;
}

}  // namespace dlap::server
