#pragma once
// Tiny JSON value + parser + writer for the dlapd wire protocol.
//
// Scope is deliberately small: the daemon's request bodies and responses
// are flat objects of numbers, strings and short arrays, so this is a
// straightforward recursive-descent parser (depth-limited) over a
// variant-style value. Numbers are IEEE doubles written with enough
// digits (%.17g) to round-trip bit-exactly -- the server's "responses
// bit-identical to in-process Engine calls" gate rides on that. Parse
// errors throw dlap::parse_error naming the byte offset; binding errors
// (wrong type, missing field) are produced by the handler layer, which
// names the field (server/handlers.hpp).

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace dlap::server {

class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() = default;  ///< null

  [[nodiscard]] static Json boolean(bool v);
  [[nodiscard]] static Json number(double v);
  [[nodiscard]] static Json number(index_t v);
  [[nodiscard]] static Json string(std::string v);
  [[nodiscard]] static Json array();
  [[nodiscard]] static Json object();

  /// Parses one JSON document (trailing garbage is an error). Throws
  /// dlap::parse_error as "json:<offset>: <what>".
  [[nodiscard]] static Json parse(std::string_view text);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::Bool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::Number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::String;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::Object;
  }

  /// True for a number with an integral value exactly representable in
  /// index_t (the binding layer's "expected integer" check).
  [[nodiscard]] bool is_integer() const noexcept;

  // Typed access; DLAP_REQUIRE on type mismatch (the handler layer
  // checks types first and reports field-level errors).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] index_t as_integer() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Array/object element count (0 for scalars).
  [[nodiscard]] std::size_t size() const noexcept;

  /// Array element (DLAP_REQUIRE bounds).
  [[nodiscard]] const Json& at(std::size_t i) const;

  /// Object member, nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(std::string_view key) const;

  /// Object members in insertion order (for strict unknown-field checks).
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const;

  /// Object insert/overwrite; returns *this for chaining.
  Json& set(std::string key, Json value);

  /// Array append; returns *this for chaining.
  Json& push_back(Json value);

  /// Compact wire form (no whitespace; keys in insertion order).
  [[nodiscard]] std::string dump() const;

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace dlap::server
