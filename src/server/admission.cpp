#include "server/admission.hpp"

#include <algorithm>
#include <chrono>

namespace dlap::server {

ClockFn steady_clock_fn() {
  return [] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  };
}

TokenBucketLimiter::TokenBucketLimiter(RateLimitConfig config, ClockFn clock)
    : config_(config), clock_(std::move(clock)) {
  DLAP_REQUIRE(config_.requests_per_second >= 0.0,
               "rate limit must be nonnegative");
  DLAP_REQUIRE(config_.requests_per_second == 0.0 || config_.burst >= 1.0,
               "burst must allow at least one request");
  DLAP_REQUIRE(config_.max_tracked_clients >= 1, "must track some client");
  if (!clock_) clock_ = steady_clock_fn();
}

double TokenBucketLimiter::filled(const Bucket& bucket,
                                  std::uint64_t now_ns) const {
  const double elapsed_s =
      static_cast<double>(now_ns - bucket.refreshed_ns) * 1e-9;
  return std::min(config_.burst,
                  bucket.tokens + elapsed_s * config_.requests_per_second);
}

RateDecision TokenBucketLimiter::admit(std::string_view client) {
  if (config_.requests_per_second <= 0.0) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++allowed_;
    return {};
  }
  const std::uint64_t now = clock_();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = buckets_.find(client);
  if (it == buckets_.end()) {
    if (buckets_.size() >= config_.max_tracked_clients) {
      // Evict the fullest bucket: it belongs to the most idle client,
      // who loses nothing but an already-full allowance.
      auto fullest = buckets_.begin();
      double fullest_tokens = -1.0;
      for (auto b = buckets_.begin(); b != buckets_.end(); ++b) {
        const double tokens = filled(b->second, now);
        if (tokens > fullest_tokens) {
          fullest_tokens = tokens;
          fullest = b;
        }
      }
      buckets_.erase(fullest);
    }
    it = buckets_.emplace(std::string(client), Bucket{config_.burst, now})
             .first;
  }
  Bucket& bucket = it->second;
  bucket.tokens = filled(bucket, now);
  bucket.refreshed_ns = now;
  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    ++allowed_;
    return {};
  }
  ++limited_;
  return {false, (1.0 - bucket.tokens) / config_.requests_per_second};
}

TokenBucketLimiter::Stats TokenBucketLimiter::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {allowed_, limited_, buckets_.size()};
}

}  // namespace dlap::server
