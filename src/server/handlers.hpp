#pragma once
// JSON <-> typed-query binding for the dlapd endpoints.
//
// Request bodies map 1:1 onto the api layer's PredictQuery / RankQuery /
// TuneQuery; every binding error is a ParseError Status that names the
// offending field (e.g. "predict: field 'n': expected a positive
// integer"), and engine statuses map to HTTP through the api layer's
// kStatusHttpTable -- the server adds no status semantics of its own.
// The handle_* entry points are pure functions of (Engine, HttpRequest),
// so they are unit-testable without sockets or a running server.

#include <optional>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "server/http.hpp"
#include "server/json.hpp"
#include "server/router.hpp"

namespace dlap::server {

// --------------------------------------------------------------- binding

/// {"op","variant","m","n","blocksize"} -> OperationSpec. Field errors
/// read "<where>: field '<field_prefix><name>': ..." -- pass
/// field_prefix "candidates[2]." to name nested fields.
[[nodiscard]] Status bind_spec(const Json& json, const std::string& where,
                               const std::string& field_prefix,
                               OperationSpec* out);

/// Optional {"backend","locality"} -> SystemSpec (json == nullptr leaves
/// `out` empty: the engine's default system applies).
[[nodiscard]] Status bind_system(const Json* json, const std::string& where,
                                 std::optional<SystemSpec>* out);

/// Body of POST /v1/predict: either an inline spec ({"op",...}) or a raw
/// trace ({"calls": ["dtrsm(L,L,N,N,144,112,...)", ...]}), plus an
/// optional "system".
[[nodiscard]] Status bind_predict(const Json& body, PredictQuery* out);

/// Body of POST /v1/rank: {"candidates":[spec,...]} plus optional
/// "system".
[[nodiscard]] Status bind_rank(const Json& body, RankQuery* out);

/// Body of POST /v1/tune: an inline spec plus optional "lo","hi","step"
/// and "system".
[[nodiscard]] Status bind_tune(const Json& body, TuneQuery* out);

/// Body of POST /v1/admin/reload: optionally {"specs":[spec,...]} to
/// prepare after the container re-attach, plus optional "system".
[[nodiscard]] Status bind_reload(const Json& body,
                                 std::vector<OperationSpec>* specs,
                                 std::optional<SystemSpec>* system);

// ------------------------------------------------------------- rendering

[[nodiscard]] Json render_sample_stats(const SampleStats& stats);
[[nodiscard]] Json render_prediction(const Prediction& prediction);
[[nodiscard]] Json render_spec(const OperationSpec& spec);
[[nodiscard]] Json render_ranking(const Ranking& ranking);
[[nodiscard]] Json render_tune(const TuneResult& result);

// ------------------------------------------------------------- endpoints

/// POST /v1/predict: parse + bind + Engine::predict + render. All three
/// never throw: malformed JSON is a 400, binding errors carry the field
/// name, engine failures map through kStatusHttpTable.
[[nodiscard]] HttpResponse handle_predict(Engine& engine,
                                          const HttpRequest& request);

/// POST /v1/rank.
[[nodiscard]] HttpResponse handle_rank(Engine& engine,
                                       const HttpRequest& request);

/// POST /v1/tune.
[[nodiscard]] HttpResponse handle_tune(Engine& engine,
                                       const HttpRequest& request);

}  // namespace dlap::server
