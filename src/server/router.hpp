#pragma once
// Exact-match (method, path) router for the dlapd endpoints, plus the
// daemon's canonical JSON response builders.
//
// A plain class with no sockets: dispatch() maps a parsed HttpRequest to
// the registered handler, an unknown path to 404 (code "NOT_FOUND") and
// a known path with the wrong method to 405 with an Allow header -- the
// unit tests drive it with hand-built requests.

#include <functional>
#include <map>
#include <string>

#include "api/result.hpp"
#include "server/http.hpp"
#include "server/json.hpp"

namespace dlap::server {

using Handler = std::function<HttpResponse(const HttpRequest&)>;

class Router {
 public:
  /// Registers a handler (later registration of the same route wins).
  void add(std::string method, std::string path, Handler handler);

  /// Runs the matching handler; 404/405 otherwise. A handler that throws
  /// is answered with 500 (code "INTERNAL_ERROR") -- a daemon never lets
  /// one request unwind a worker.
  [[nodiscard]] HttpResponse dispatch(const HttpRequest& request) const;

  /// {"error":{"code":code,"message":message}} with Content-Type set.
  [[nodiscard]] static HttpResponse error_response(int http_status,
                                                   const std::string& code,
                                                   const std::string& message);

  /// Error response for an engine Status via the api layer's
  /// kStatusHttpTable (code name and HTTP status both derived from it).
  [[nodiscard]] static HttpResponse status_response(const Status& status);

  /// 2xx JSON response.
  [[nodiscard]] static HttpResponse json_response(int http_status,
                                                  const Json& body);

 private:
  // path -> method -> handler (path-first so 405 can enumerate Allow).
  std::map<std::string, std::map<std::string, Handler>> routes_;
};

}  // namespace dlap::server
