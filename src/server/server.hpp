#pragma once
// dlapd::Server -- the HTTP query daemon in front of a dlap::Engine.
//
// Architecture (one instance = one listening socket):
//
//   accept thread ──try_push──▶ BoundedQueue<Conn> ──pop──▶ worker pool
//        │ (full: canned 503 +                        (ThreadPool; each
//        │  Retry-After, close)                        worker loops over
//        ▼                                             connections)
//   stats counters                                     │
//                                                      ▼
//                              per-request: HttpParser ▶ rate limiter
//                              (429 + Retry-After) ▶ Router ▶ handlers
//                              ▶ Engine (predict/rank/tune on versioned
//                                model snapshots -- reads never block
//                                generation or reload)
//
//   POST /v1/admin/reload ──▶ admin pool (1 worker): Engine::reload --
//   container re-attach + cache drop + optional background prepare;
//   in-flight queries finish on their pinned snapshots (zero torn reads).
//
// Overload policy: admission is bounded at two points -- the connection
// queue (full -> 503, the daemon answers instantly instead of letting
// the kernel backlog time out) and the per-client token bucket (empty ->
// 429). Both responses carry Retry-After; no path ever leaves a
// connection hanging (every socket wears SO_RCVTIMEO/SO_SNDTIMEO).
//
// The server is embeddable: construct with port 0, start(), and port()
// reports the ephemeral port -- integration tests and bench/micro_server
// drive a real loopback daemon in-process. stop() (also run by the
// destructor) is graceful: queued connections are answered, in-flight
// reloads finish.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>

#include "api/engine.hpp"
#include "common/threadpool.hpp"
#include "server/admission.hpp"
#include "server/http.hpp"
#include "server/router.hpp"

namespace dlap::server {

struct ServerConfig {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port (tests/benches); port() reports it.
  int port = 0;
  /// Connection workers (each handles one connection at a time).
  index_t workers = 4;
  /// Accepted connections waiting for a worker beyond those in service;
  /// the accept loop sheds (503) past this.
  std::size_t queue_capacity = 64;
  /// Per-client token bucket (client = X-Client-Id header, else peer
  /// address). requests_per_second 0 disables limiting.
  RateLimitConfig rate;
  HttpLimits http;
  /// Keep-alive requests served per connection before the server closes.
  index_t max_requests_per_connection = 1000;
  /// Socket read/write timeout; a stalled peer costs a worker at most
  /// this long (it is answered 408 / dropped, never waited on forever).
  int io_timeout_ms = 5000;
  /// Retry-After value (seconds) on queue-full 503 responses.
  int shed_retry_after_s = 1;
  /// Monotonic clock for the rate limiter (tests inject a fake).
  ClockFn clock;
};

/// Counter snapshot served by GET /v1/stats (all monotonic since start,
/// except the queue gauge).
struct ServerStats {
  std::uint64_t accepted = 0;        ///< connections accepted
  std::uint64_t requests = 0;        ///< complete requests parsed
  std::uint64_t responses_2xx = 0;
  std::uint64_t responses_4xx = 0;   ///< incl. 429 and parser rejects
  std::uint64_t responses_5xx = 0;   ///< incl. queue-full 503 sheds
  std::uint64_t shed_queue_full = 0; ///< connections answered 503 at accept
  std::uint64_t rate_limited = 0;    ///< requests answered 429
  std::uint64_t parse_errors = 0;    ///< malformed HTTP requests
  std::uint64_t timeouts = 0;        ///< connections dropped mid-request
  std::uint64_t reloads_started = 0;
  std::uint64_t reloads_completed = 0;
  std::uint64_t reloads_failed = 0;
  std::string last_reload_error;
  std::size_t queue_depth = 0;
  std::size_t queue_peak = 0;
  LruStats trace_cache;              ///< engine compiled-trace cache
  std::size_t interned_keys = 0;     ///< engine resolver keys
};

class Server {
 public:
  /// The engine must outlive the server. The router comes pre-wired with
  /// the /v1 endpoints; add() more routes before start() if needed
  /// (benches register slow test endpoints this way).
  explicit Server(Engine& engine, ServerConfig config = {});

  /// stop()s.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the accept/worker threads. Returns
  /// InvalidQuery for a malformed host/config, InternalError when the
  /// socket layer refuses (port in use, permissions).
  [[nodiscard]] Status start();

  /// Graceful shutdown: stops accepting, drains queued connections,
  /// joins workers and in-flight admin reloads. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// The bound port (after start(); the ephemeral one when config.port
  /// was 0).
  [[nodiscard]] int port() const noexcept { return port_; }

  [[nodiscard]] const ServerConfig& config() const noexcept {
    return config_;
  }

  [[nodiscard]] ServerStats stats() const;

  /// The route table; extend before start().
  [[nodiscard]] Router& router() noexcept { return router_; }

 private:
  struct Conn {
    int fd = -1;
    std::string peer;
  };

  void accept_loop();
  void worker_loop();
  void handle_connection(int fd, const std::string& peer);
  // Active-connection registry: stop() shuts the read side of every
  // in-service socket down, so workers parked in recv() on idle
  // keep-alive connections wake immediately (EOF) instead of riding out
  // io_timeout_ms. Buffered request bytes are still readable before the
  // EOF, so draining connections get answered.
  void register_conn(int fd);
  void unregister_conn(int fd);
  [[nodiscard]] HttpResponse route_request(const HttpRequest& request,
                                           const std::string& peer);
  void count_response(int status);

  [[nodiscard]] HttpResponse handle_stats(const HttpRequest& request);
  [[nodiscard]] HttpResponse handle_reload(const HttpRequest& request);

  Engine& engine_;
  ServerConfig config_;
  Router router_;
  TokenBucketLimiter limiter_;
  // Recreated by every start() -- a closed BoundedQueue stays closed, and
  // a Server may be start()/stop()ed repeatedly (the churn test does).
  std::unique_ptr<BoundedQueue<Conn>> conn_queue_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> worker_pool_;
  std::unique_ptr<ThreadPool> admin_pool_;
  std::string shed_response_;  // canned 503, precomputed
  std::mutex conns_mutex_;
  std::unordered_set<int> active_fds_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> responses_2xx_{0};
  std::atomic<std::uint64_t> responses_4xx_{0};
  std::atomic<std::uint64_t> responses_5xx_{0};
  std::atomic<std::uint64_t> shed_queue_full_{0};
  std::atomic<std::uint64_t> rate_limited_{0};
  std::atomic<std::uint64_t> parse_errors_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> reloads_started_{0};
  std::atomic<std::uint64_t> reloads_completed_{0};
  std::atomic<std::uint64_t> reloads_failed_{0};
  mutable std::mutex reload_error_mutex_;
  std::string last_reload_error_;
};

}  // namespace dlap::server

/// The daemon's conventional short name: dlapd::Server, dlapd::ServerConfig.
namespace dlapd = dlap::server;
