#include "server/handlers.hpp"

#include <functional>
#include <initializer_list>
#include <utility>

#include "sampler/calls.hpp"

namespace dlap::server {

namespace {

Status field_error(const std::string& where, const std::string& field,
                   const std::string& what) {
  return Status::error(StatusCode::ParseError,
                       where + ": field '" + field + "': " + what);
}

/// Optional integer field with a default; errors name the field.
Status bind_int(const Json& object, const std::string& where,
                const std::string& field, index_t fallback, index_t* out,
                const std::string& field_prefix = "") {
  const Json* value = object.find(field);
  if (value == nullptr) {
    *out = fallback;
    return {};
  }
  if (!value->is_integer()) {
    return field_error(where, field_prefix + field, "expected an integer");
  }
  *out = value->as_integer();
  return {};
}

/// Rejects members outside `allowed` so a typo ("blocksise") fails loudly
/// naming the unknown field instead of silently applying a default.
Status reject_unknown_fields(const Json& object, const std::string& where,
                             std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : object.members()) {
    bool known = false;
    for (const char* name : allowed) {
      if (key == name) {
        known = true;
        break;
      }
    }
    if (!known) return field_error(where, key, "unknown field");
  }
  return {};
}

Json render_median_order(const std::vector<index_t>& order) {
  Json out = Json::array();
  for (const index_t i : order) out.push_back(Json::number(i));
  return out;
}

HttpResponse run_bound(const Status& bound,
                       const std::function<HttpResponse()>& run) {
  if (!bound.ok()) return Router::status_response(bound);
  return run();
}

/// Parses the request body as a JSON object ({} for an empty body when
/// `allow_empty`); a ParseError Status carries the json:<offset> message.
Status parse_body(const HttpRequest& request, bool allow_empty, Json* out) {
  if (request.body.empty()) {
    if (allow_empty) {
      *out = Json::object();
      return {};
    }
    return Status::error(StatusCode::ParseError,
                         "empty request body; expected a JSON object");
  }
  try {
    *out = Json::parse(request.body);
  } catch (const parse_error& e) {
    return Status::error(StatusCode::ParseError, e.what());
  }
  if (!out->is_object()) {
    return Status::error(StatusCode::ParseError,
                         "request body must be a JSON object");
  }
  return {};
}

}  // namespace

// ---------------------------------------------------------------- binding

Status bind_spec(const Json& json, const std::string& where,
                 const std::string& field_prefix, OperationSpec* out) {
  if (!json.is_object()) {
    return field_error(where, field_prefix.empty() ? "op" : field_prefix,
                       "expected an operation object");
  }
  for (const auto& [key, value] : json.members()) {
    if (key != "op" && key != "variant" && key != "m" && key != "n" &&
        key != "blocksize") {
      return field_error(where, field_prefix + key, "unknown field");
    }
  }
  const Json* op = json.find("op");
  if (op == nullptr) return field_error(where, field_prefix + "op", "required");
  if (!op->is_string()) {
    return field_error(where, field_prefix + "op", "expected a string");
  }
  index_t variant = 0, m = 0, n = 0, blocksize = 0;
  if (Status s = bind_int(json, where, "variant", 1, &variant, field_prefix);
      !s.ok()) {
    return s;
  }
  if (Status s = bind_int(json, where, "m", 0, &m, field_prefix); !s.ok()) {
    return s;
  }
  if (Status s = bind_int(json, where, "n", 0, &n, field_prefix); !s.ok()) {
    return s;
  }
  if (Status s =
          bind_int(json, where, "blocksize", 64, &blocksize, field_prefix);
      !s.ok()) {
    return s;
  }
  *out = OperationSpec::of(op->as_string(), static_cast<int>(variant), m, n,
                           blocksize);
  return {};
}

Status bind_system(const Json* json, const std::string& where,
                   std::optional<SystemSpec>* out) {
  if (json == nullptr || json->is_null()) {
    out->reset();
    return {};
  }
  if (!json->is_object()) {
    return field_error(where, "system", "expected an object");
  }
  if (Status s =
          reject_unknown_fields(*json, where, {"backend", "locality"});
      !s.ok()) {
    return s;
  }
  SystemSpec system;
  if (const Json* backend = json->find("backend"); backend != nullptr) {
    if (!backend->is_string()) {
      return field_error(where, "system.backend", "expected a string");
    }
    system.backend = backend->as_string();
  }
  if (const Json* locality = json->find("locality"); locality != nullptr) {
    if (!locality->is_string()) {
      return field_error(where, "system.locality",
                         "expected 'in_cache' or 'out_of_cache'");
    }
    try {
      system.locality = locality_from_name(locality->as_string());
    } catch (const parse_error&) {
      return field_error(where, "system.locality",
                         "'" + locality->as_string() +
                             "' is not 'in_cache' or 'out_of_cache'");
    }
  }
  *out = std::move(system);
  return {};
}

Status bind_predict(const Json& body, PredictQuery* out) {
  const std::string where = "predict";
  if (Status s = reject_unknown_fields(
          body, where,
          {"op", "variant", "m", "n", "blocksize", "calls", "system"});
      !s.ok()) {
    return s;
  }
  if (Status s = bind_system(body.find("system"), where, &out->system);
      !s.ok()) {
    return s;
  }
  const Json* calls = body.find("calls");
  const bool has_spec = body.find("op") != nullptr;
  if (calls != nullptr && has_spec) {
    return field_error(where, "calls",
                       "give either an inline operation or 'calls', not both");
  }
  if (calls != nullptr) {
    if (!calls->is_array() || calls->size() == 0) {
      return field_error(where, "calls",
                         "expected a non-empty array of call strings");
    }
    CallTrace trace;
    for (std::size_t i = 0; i < calls->size(); ++i) {
      const std::string element = "calls[" + std::to_string(i) + "]";
      if (!calls->at(i).is_string()) {
        return field_error(where, element, "expected a call string");
      }
      try {
        KernelCall call = parse_call(calls->at(i).as_string());
        validate_call(call);
        trace.push_back(std::move(call));
      } catch (const parse_error& e) {
        return field_error(where, element, e.what());
      } catch (const lookup_error& e) {
        // Unknown routine names surface as lookup_error from the call
        // registry; they are the client's problem, not a 500.
        return field_error(where, element, e.what());
      } catch (const invalid_argument_error& e) {
        return field_error(where, element, e.what());
      }
    }
    out->spec.reset();
    out->trace = std::move(trace);
    return {};
  }
  OperationSpec spec;
  // Strip predict-only fields before spec binding so its unknown-field
  // check stays strict.
  Json spec_json = Json::object();
  for (const char* field : {"op", "variant", "m", "n", "blocksize"}) {
    if (const Json* value = body.find(field); value != nullptr) {
      spec_json.set(field, *value);
    }
  }
  if (Status s = bind_spec(spec_json, where, "", &spec); !s.ok()) return s;
  out->spec = std::move(spec);
  out->trace = {};
  return {};
}

Status bind_rank(const Json& body, RankQuery* out) {
  const std::string where = "rank";
  if (Status s = reject_unknown_fields(body, where, {"candidates", "system"});
      !s.ok()) {
    return s;
  }
  if (Status s = bind_system(body.find("system"), where, &out->system);
      !s.ok()) {
    return s;
  }
  const Json* candidates = body.find("candidates");
  if (candidates == nullptr) {
    return field_error(where, "candidates", "required");
  }
  if (!candidates->is_array() || candidates->size() == 0) {
    return field_error(where, "candidates",
                       "expected a non-empty array of operation objects");
  }
  out->candidates.clear();
  for (std::size_t i = 0; i < candidates->size(); ++i) {
    OperationSpec spec;
    if (Status s = bind_spec(candidates->at(i), where,
                             "candidates[" + std::to_string(i) + "].", &spec);
        !s.ok()) {
      return s;
    }
    out->candidates.push_back(std::move(spec));
  }
  return {};
}

Status bind_tune(const Json& body, TuneQuery* out) {
  const std::string where = "tune";
  if (Status s = reject_unknown_fields(body, where,
                                       {"op", "variant", "m", "n",
                                        "blocksize", "lo", "hi", "step",
                                        "system"});
      !s.ok()) {
    return s;
  }
  if (Status s = bind_system(body.find("system"), where, &out->system);
      !s.ok()) {
    return s;
  }
  Json spec_json = Json::object();
  for (const char* field : {"op", "variant", "m", "n", "blocksize"}) {
    if (const Json* value = body.find(field); value != nullptr) {
      spec_json.set(field, *value);
    }
  }
  if (Status s = bind_spec(spec_json, where, "", &out->spec); !s.ok()) {
    return s;
  }
  const TuneQuery defaults;
  if (Status s = bind_int(body, where, "lo", defaults.lo, &out->lo); !s.ok()) {
    return s;
  }
  if (Status s = bind_int(body, where, "hi", defaults.hi, &out->hi); !s.ok()) {
    return s;
  }
  if (Status s = bind_int(body, where, "step", defaults.step, &out->step);
      !s.ok()) {
    return s;
  }
  return {};
}

Status bind_reload(const Json& body, std::vector<OperationSpec>* specs,
                   std::optional<SystemSpec>* system) {
  const std::string where = "reload";
  if (Status s = reject_unknown_fields(body, where, {"specs", "system"});
      !s.ok()) {
    return s;
  }
  if (Status s = bind_system(body.find("system"), where, system); !s.ok()) {
    return s;
  }
  specs->clear();
  const Json* list = body.find("specs");
  if (list == nullptr) return {};
  if (!list->is_array()) {
    return field_error(where, "specs",
                       "expected an array of operation objects");
  }
  for (std::size_t i = 0; i < list->size(); ++i) {
    OperationSpec spec;
    if (Status s = bind_spec(list->at(i), where,
                             "specs[" + std::to_string(i) + "].", &spec);
        !s.ok()) {
      return s;
    }
    specs->push_back(std::move(spec));
  }
  return {};
}

// -------------------------------------------------------------- rendering

Json render_sample_stats(const SampleStats& stats) {
  return Json::object()
      .set("min", Json::number(stats.min))
      .set("median", Json::number(stats.median))
      .set("mean", Json::number(stats.mean))
      .set("max", Json::number(stats.max))
      .set("stddev", Json::number(stats.stddev))
      .set("count", Json::number(stats.count));
}

Json render_prediction(const Prediction& prediction) {
  return Json::object()
      .set("ticks", render_sample_stats(prediction.ticks))
      .set("flops", Json::number(prediction.flops))
      .set("calls", Json::number(prediction.calls))
      .set("skipped", Json::number(prediction.skipped))
      .set("missing", Json::number(prediction.missing));
}

Json render_spec(const OperationSpec& spec) {
  return Json::object()
      .set("op", Json::string(spec.op))
      .set("variant", Json::number(static_cast<index_t>(spec.variant)))
      .set("m", Json::number(spec.m))
      .set("n", Json::number(spec.n))
      .set("blocksize", Json::number(spec.blocksize));
}

Json render_ranking(const Ranking& ranking) {
  Json candidates = Json::array();
  for (const OperationSpec& spec : ranking.candidates) {
    candidates.push_back(render_spec(spec));
  }
  Json predictions = Json::array();
  for (const Prediction& p : ranking.predictions) {
    predictions.push_back(render_prediction(p));
  }
  return Json::object()
      .set("candidates", std::move(candidates))
      .set("predictions", std::move(predictions))
      .set("order", render_median_order(ranking.order))
      .set("best", Json::number(ranking.best()));
}

Json render_tune(const TuneResult& result) {
  Json values = Json::array();
  for (const index_t v : result.values) values.push_back(Json::number(v));
  Json predictions = Json::array();
  for (const Prediction& p : result.predictions) {
    predictions.push_back(render_prediction(p));
  }
  return Json::object()
      .set("values", std::move(values))
      .set("predictions", std::move(predictions))
      .set("best_index", Json::number(result.best_index))
      .set("best_value", Json::number(result.best_value()));
}

// -------------------------------------------------------------- endpoints

HttpResponse handle_predict(Engine& engine, const HttpRequest& request) {
  Json body;
  if (Status s = parse_body(request, false, &body); !s.ok()) {
    return Router::status_response(s);
  }
  PredictQuery query;
  return run_bound(bind_predict(body, &query), [&] {
    const Result<Prediction> result = engine.predict(query);
    if (!result.ok()) return Router::status_response(result.status());
    return Router::json_response(200, render_prediction(*result));
  });
}

HttpResponse handle_rank(Engine& engine, const HttpRequest& request) {
  Json body;
  if (Status s = parse_body(request, false, &body); !s.ok()) {
    return Router::status_response(s);
  }
  RankQuery query;
  return run_bound(bind_rank(body, &query), [&] {
    const Result<Ranking> result = engine.rank(query);
    if (!result.ok()) return Router::status_response(result.status());
    return Router::json_response(200, render_ranking(*result));
  });
}

HttpResponse handle_tune(Engine& engine, const HttpRequest& request) {
  Json body;
  if (Status s = parse_body(request, false, &body); !s.ok()) {
    return Router::status_response(s);
  }
  TuneQuery query;
  return run_bound(bind_tune(body, &query), [&] {
    const Result<TuneResult> result = engine.tune(query);
    if (!result.ok()) return Router::status_response(result.status());
    return Router::json_response(200, render_tune(*result));
  });
}

}  // namespace dlap::server
