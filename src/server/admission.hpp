#pragma once
// Admission control for the dlapd daemon: a per-client token-bucket rate
// limiter and a bounded connection queue.
//
// Both are plain classes with no I/O: the limiter takes an injectable
// monotonic clock (tests drive a fake one, so refill behavior is exact
// and sleep-free), and the queue is a condition-variable bounded MPMC
// queue whose try_push returns false instead of blocking -- the accept
// loop turns that false into an immediate 503 + Retry-After, which is
// the server's graceful-shedding contract: an overloaded daemon answers
// fast, it never hangs a connection.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/types.hpp"

namespace dlap::server {

/// Monotonic clock in nanoseconds. Injectable so rate-limiter and queue
/// tests are deterministic (no sleeps, no wall-clock flakiness).
using ClockFn = std::function<std::uint64_t()>;

/// std::chrono::steady_clock as a ClockFn (the production default).
[[nodiscard]] ClockFn steady_clock_fn();

struct RateLimitConfig {
  /// Sustained tokens (requests) per second per client; 0 disables
  /// limiting entirely (every admit() allows).
  double requests_per_second = 0.0;
  /// Bucket capacity: how many requests a client may burst after idling.
  double burst = 32.0;
  /// Distinct clients tracked; beyond this the fullest (most idle)
  /// bucket is evicted, so an address-spraying client cannot grow the
  /// map without bound.
  std::size_t max_tracked_clients = 4096;
};

struct RateDecision {
  bool allowed = true;
  /// When denied: seconds until one token is available (the response's
  /// Retry-After, rounded up by the caller).
  double retry_after_seconds = 0.0;
};

class TokenBucketLimiter {
 public:
  TokenBucketLimiter(RateLimitConfig config, ClockFn clock);

  /// Takes one token from `client`'s bucket (creating it full on first
  /// sight). Thread-safe.
  [[nodiscard]] RateDecision admit(std::string_view client);

  struct Stats {
    std::uint64_t allowed = 0;
    std::uint64_t limited = 0;
    std::size_t tracked_clients = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Bucket {
    double tokens = 0.0;
    std::uint64_t refreshed_ns = 0;
  };

  /// Bucket contents at `now` (lazy refill).
  [[nodiscard]] double filled(const Bucket& bucket,
                              std::uint64_t now_ns) const;

  RateLimitConfig config_;
  ClockFn clock_;
  mutable std::mutex mutex_;
  std::map<std::string, Bucket, std::less<>> buckets_;
  std::uint64_t allowed_ = 0;
  std::uint64_t limited_ = 0;
};

/// Bounded MPMC queue: producers shed instead of blocking, consumers
/// block until an item arrives or the queue is closed (remaining items
/// are drained first, so queued connections still get answered during
/// shutdown).
template <class T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// False when full or closed (the caller sheds).
  [[nodiscard]] bool try_push(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) {
        ++shed_;
        return false;
      }
      items_.push_back(std::move(value));
      ++pushed_;
      peak_ = std::max(peak_, items_.size());
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available (returned) or the queue is closed
  /// AND empty (nullopt).
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    return take_locked();
  }

  /// Non-blocking pop (single-threaded tests).
  [[nodiscard]] std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    return take_locked();
  }

  /// Stops accepting pushes and wakes every blocked pop.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  struct Stats {
    std::uint64_t pushed = 0;
    std::uint64_t shed = 0;
    std::uint64_t popped = 0;
    std::size_t depth = 0;
    std::size_t peak = 0;
    std::size_t capacity = 0;
    bool closed = false;
  };
  [[nodiscard]] Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return {pushed_, shed_, popped_, items_.size(), peak_, capacity_,
            closed_};
  }

 private:
  [[nodiscard]] std::optional<T> take_locked() {
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    ++popped_;
    return value;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
  std::uint64_t pushed_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t popped_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace dlap::server
