#include "server/router.hpp"

#include <exception>
#include <utility>

namespace dlap::server {

void Router::add(std::string method, std::string path, Handler handler) {
  routes_[std::move(path)][std::move(method)] = std::move(handler);
}

HttpResponse Router::dispatch(const HttpRequest& request) const {
  const auto path_it = routes_.find(request.target);
  if (path_it == routes_.end()) {
    return error_response(404, "NOT_FOUND",
                          "unknown path '" + request.target + "'");
  }
  const auto method_it = path_it->second.find(request.method);
  if (method_it == path_it->second.end()) {
    std::string allow;
    for (const auto& [method, handler] : path_it->second) {
      if (!allow.empty()) allow += ", ";
      allow += method;
    }
    HttpResponse response = error_response(
        405, "METHOD_NOT_ALLOWED",
        request.method + " is not supported on '" + request.target + "'");
    response.set_header("Allow", std::move(allow));
    return response;
  }
  try {
    return method_it->second(request);
  } catch (const std::exception& e) {
    return error_response(500, "INTERNAL_ERROR", e.what());
  } catch (...) {
    return error_response(500, "INTERNAL_ERROR", "unknown handler failure");
  }
}

HttpResponse Router::error_response(int http_status, const std::string& code,
                                    const std::string& message) {
  Json body = Json::object();
  body.set("error", Json::object()
                        .set("code", Json::string(code))
                        .set("message", Json::string(message)));
  return json_response(http_status, body);
}

HttpResponse Router::status_response(const Status& status) {
  return error_response(http_status_for(status.code),
                        status_code_name(status.code), status.message);
}

HttpResponse Router::json_response(int http_status, const Json& body) {
  HttpResponse response;
  response.status = http_status;
  response.set_header("Content-Type", "application/json");
  response.body = body.dump();
  return response;
}

}  // namespace dlap::server
