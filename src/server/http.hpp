#pragma once
// Minimal HTTP/1.1 codec for the dlapd query daemon (src/server/).
//
// The parser is a plain incremental state machine: feed() consumes bytes
// as they arrive off a socket (in any fragmentation -- byte-by-byte in
// the tests) and stops exactly at the end of one request, leaving
// pipelined bytes unconsumed for the next parse. It performs no I/O and
// allocates only into the request being built, so the whole codec is
// testable without sockets. Every malformed input maps to a specific
// HTTP error status (400/408-free here; 413/414/431/501/505 as
// appropriate) instead of an exception: a daemon must answer garbage
// with a response, never unwind a worker.
//
// Deliberately unsupported (fail typed, never hang): chunked
// transfer-encoding (501), obs-fold header continuation (400), HTTP
// versions other than 1.0/1.1 (505).

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace dlap::server {

/// Input-size bounds enforced while parsing (shedding oversized requests
/// early, before they occupy memory).
struct HttpLimits {
  std::size_t max_request_line = 8 * 1024;   ///< method + target + version
  std::size_t max_header_bytes = 16 * 1024;  ///< all header lines together
  std::size_t max_headers = 100;             ///< header count
  std::size_t max_body = 1 << 20;            ///< Content-Length bound
};

struct HttpRequest {
  std::string method;   ///< e.g. "POST" (kept as sent; matching is exact)
  std::string target;   ///< e.g. "/v1/predict"
  std::string version;  ///< "HTTP/1.1" or "HTTP/1.0"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header with the given name (case-insensitive), else nullptr.
  [[nodiscard]] const std::string* header(std::string_view name) const;

  /// HTTP/1.1 defaults to keep-alive unless "Connection: close";
  /// HTTP/1.0 defaults to close unless "Connection: keep-alive".
  [[nodiscard]] bool keep_alive() const;
};

struct HttpResponse {
  int status = 200;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  void set_header(std::string name, std::string value);
  [[nodiscard]] const std::string* header(std::string_view name) const;

  /// Full wire form; a Content-Length header is added unless already set.
  [[nodiscard]] std::string serialize() const;
};

/// Reason phrase for the status codes the daemon emits ("Status" for
/// anything else -- clients key on the code, not the phrase).
[[nodiscard]] const char* reason_phrase(int status);

class HttpParser {
 public:
  enum class State { RequestLine, Headers, Body, Complete, Error };

  explicit HttpParser(HttpLimits limits = {}) : limits_(limits) {}

  /// Consumes bytes until the request completes, an error is detected, or
  /// `data` runs out; returns how many bytes were consumed. After
  /// Complete, unconsumed bytes belong to the NEXT pipelined request.
  std::size_t feed(std::string_view data);

  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] bool complete() const noexcept {
    return state_ == State::Complete;
  }
  [[nodiscard]] bool failed() const noexcept { return state_ == State::Error; }

  /// Total bytes consumed so far (0 distinguishes an idle keep-alive
  /// connection from one that died mid-request).
  [[nodiscard]] std::size_t bytes_consumed() const noexcept {
    return bytes_consumed_;
  }

  /// HTTP status to answer with when failed() (400, 413, 414, 431, 501
  /// or 505), plus a human-readable reason.
  [[nodiscard]] int error_status() const noexcept { return error_status_; }
  [[nodiscard]] const std::string& error_message() const noexcept {
    return error_message_;
  }

  /// The parsed request; meaningful once complete().
  [[nodiscard]] const HttpRequest& request() const noexcept {
    return request_;
  }

  /// Back to a fresh RequestLine state (next request on a connection).
  void reset();

 private:
  void fail(int status, std::string message);
  void on_request_line();
  void on_header_line();
  void finish_headers();

  HttpLimits limits_;
  State state_ = State::RequestLine;
  HttpRequest request_;
  std::string line_;  // current, still-unterminated line
  std::size_t header_bytes_ = 0;
  std::size_t body_needed_ = 0;
  std::size_t bytes_consumed_ = 0;
  int error_status_ = 0;
  std::string error_message_;
};

}  // namespace dlap::server
