#include "server/http.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace dlap::server {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trim_ows(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

const std::string* find_header(
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::string_view name) {
  for (const auto& [key, value] : headers) {
    if (iequals(key, name)) return &value;
  }
  return nullptr;
}

}  // namespace

// ------------------------------------------------------------- HttpRequest

const std::string* HttpRequest::header(std::string_view name) const {
  return find_header(headers, name);
}

bool HttpRequest::keep_alive() const {
  const std::string* connection = header("Connection");
  if (version == "HTTP/1.0") {
    return connection != nullptr && iequals(*connection, "keep-alive");
  }
  return connection == nullptr || !iequals(*connection, "close");
}

// ------------------------------------------------------------ HttpResponse

void HttpResponse::set_header(std::string name, std::string value) {
  for (auto& [key, existing] : headers) {
    if (iequals(key, name)) {
      existing = std::move(value);
      return;
    }
  }
  headers.emplace_back(std::move(name), std::move(value));
}

const std::string* HttpResponse::header(std::string_view name) const {
  return find_header(headers, name);
}

std::string HttpResponse::serialize() const {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += reason_phrase(status);
  out += "\r\n";
  bool have_length = false;
  for (const auto& [key, value] : headers) {
    if (iequals(key, "Content-Length")) have_length = true;
    out += key;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  if (!have_length) {
    out += "Content-Length: ";
    out += std::to_string(body.size());
    out += "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 414: return "URI Too Long";
    case 422: return "Unprocessable Entity";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Status";
  }
}

// -------------------------------------------------------------- HttpParser

void HttpParser::fail(int status, std::string message) {
  state_ = State::Error;
  error_status_ = status;
  error_message_ = std::move(message);
}

void HttpParser::reset() {
  state_ = State::RequestLine;
  request_ = {};
  line_.clear();
  header_bytes_ = 0;
  body_needed_ = 0;
  bytes_consumed_ = 0;
  error_status_ = 0;
  error_message_.clear();
}

std::size_t HttpParser::feed(std::string_view data) {
  std::size_t pos = 0;
  while (pos < data.size() && state_ != State::Complete &&
         state_ != State::Error) {
    if (state_ == State::Body) {
      const std::size_t take =
          std::min(data.size() - pos, body_needed_ - request_.body.size());
      request_.body.append(data.substr(pos, take));
      pos += take;
      if (request_.body.size() == body_needed_) state_ = State::Complete;
      continue;
    }
    // Line-oriented states: accumulate until LF (tolerating a bare LF;
    // the trailing CR is stripped below).
    const std::size_t nl = data.find('\n', pos);
    const std::size_t take =
        (nl == std::string_view::npos ? data.size() : nl) - pos;
    line_.append(data.substr(pos, take));
    pos += take;
    const std::size_t line_limit = state_ == State::RequestLine
                                       ? limits_.max_request_line
                                       : limits_.max_header_bytes;
    if (line_.size() > line_limit) {
      if (state_ == State::RequestLine) {
        fail(414, "request line exceeds " +
                      std::to_string(limits_.max_request_line) + " bytes");
      } else {
        fail(431, "header line exceeds " +
                      std::to_string(limits_.max_header_bytes) + " bytes");
      }
      break;
    }
    if (nl == std::string_view::npos) break;  // need more bytes
    ++pos;                                    // consume the LF
    if (!line_.empty() && line_.back() == '\r') line_.pop_back();
    if (state_ == State::RequestLine) {
      on_request_line();
    } else {
      on_header_line();
    }
    line_.clear();
  }
  bytes_consumed_ += pos;
  return pos;
}

void HttpParser::on_request_line() {
  if (line_.empty()) return;  // ignore leading blank lines (RFC 9112 2.2)
  const std::size_t sp1 = line_.find(' ');
  const std::size_t sp2 = line_.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    fail(400, "malformed request line: '" + line_ + "'");
    return;
  }
  request_.method = line_.substr(0, sp1);
  request_.target = line_.substr(sp1 + 1, sp2 - sp1 - 1);
  request_.version = line_.substr(sp2 + 1);
  if (request_.method.empty() || request_.target.empty() ||
      request_.target.find(' ') != std::string::npos) {
    fail(400, "malformed request line: '" + line_ + "'");
    return;
  }
  if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
    fail(505, "unsupported version '" + request_.version + "'");
    return;
  }
  state_ = State::Headers;
}

void HttpParser::on_header_line() {
  if (line_.empty()) {
    finish_headers();
    return;
  }
  header_bytes_ += line_.size() + 2;
  if (header_bytes_ > limits_.max_header_bytes) {
    fail(431, "headers exceed " + std::to_string(limits_.max_header_bytes) +
                  " bytes");
    return;
  }
  if (request_.headers.size() >= limits_.max_headers) {
    fail(431,
         "more than " + std::to_string(limits_.max_headers) + " headers");
    return;
  }
  if (line_.front() == ' ' || line_.front() == '\t') {
    fail(400, "obsolete header line folding is not supported");
    return;
  }
  const std::size_t colon = line_.find(':');
  if (colon == std::string::npos || colon == 0) {
    fail(400, "malformed header line: '" + line_ + "'");
    return;
  }
  std::string name = line_.substr(0, colon);
  if (name.find(' ') != std::string::npos ||
      name.find('\t') != std::string::npos) {
    fail(400, "whitespace in header name: '" + name + "'");
    return;
  }
  request_.headers.emplace_back(
      std::move(name), std::string(trim_ows(
                           std::string_view(line_).substr(colon + 1))));
}

void HttpParser::finish_headers() {
  if (request_.header("Transfer-Encoding") != nullptr) {
    fail(501, "transfer-encoding is not supported; send Content-Length");
    return;
  }
  const std::string* length = request_.header("Content-Length");
  if (length == nullptr) {
    state_ = State::Complete;
    return;
  }
  if (length->empty() ||
      length->find_first_not_of("0123456789") != std::string::npos) {
    fail(400, "malformed Content-Length: '" + *length + "'");
    return;
  }
  errno = 0;
  const unsigned long long parsed = std::strtoull(length->c_str(), nullptr, 10);
  if (errno != 0 || parsed > limits_.max_body) {
    fail(413, "body of " + *length + " bytes exceeds the limit of " +
                  std::to_string(limits_.max_body));
    return;
  }
  body_needed_ = static_cast<std::size_t>(parsed);
  request_.body.reserve(body_needed_);
  state_ = body_needed_ == 0 ? State::Complete : State::Body;
}

}  // namespace dlap::server
