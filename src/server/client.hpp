#pragma once
// Minimal blocking HTTP/1.1 client for driving a dlapd server over
// loopback -- the integration tests and bench/micro_server use it, and
// it doubles as the transport behind `dlapd --check`-style probes.
//
// One HttpClient is one keep-alive connection: request() serializes the
// request, writes it, and parses exactly one response (Content-Length
// framing only -- that is all the server emits). When the server closed
// the connection between requests the client reconnects once, so a
// keep-alive cap or a stop/start across calls is invisible to the
// caller. Not thread-safe; each test/bench thread owns its own client.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dlap::server {

struct ClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header with the given name (case-insensitive), else nullptr.
  [[nodiscard]] const std::string* header(std::string_view name) const;
};

class HttpClient {
 public:
  HttpClient(std::string host, int port, int timeout_ms = 10000);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// One round trip; nullopt on connect/write/read failure (after one
  /// reconnect attempt). `headers` are extra request headers
  /// (e.g. {"X-Client-Id","bench-3"}).
  [[nodiscard]] std::optional<ClientResponse> request(
      const std::string& method, const std::string& target,
      const std::string& body = "",
      const std::vector<std::pair<std::string, std::string>>& headers = {});

  /// Drops the connection (the next request reconnects).
  void disconnect();

 private:
  [[nodiscard]] bool connect();
  [[nodiscard]] bool send_request(const std::string& wire);
  [[nodiscard]] std::optional<ClientResponse> read_response();

  std::string host_;
  int port_;
  int timeout_ms_;
  int fd_ = -1;
  std::string buffer_;  // read-ahead beyond the current response
};

}  // namespace dlap::server
