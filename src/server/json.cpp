#include "server/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dlap::server {

namespace {

constexpr int kMaxDepth = 64;
// Integral doubles beyond 2^53 are not exact; refuse to call them ints.
constexpr double kMaxExactInteger = 9007199254740992.0;

[[noreturn]] void parse_fail(std::size_t offset, const std::string& what) {
  throw parse_error("json:" + std::to_string(offset) + ": " + what);
}

struct Reader {
  std::string_view text;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!done() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                       peek() == '\r')) {
      ++pos;
    }
  }

  void expect(char c, const char* where) {
    if (done() || peek() != c) {
      parse_fail(pos, std::string("expected '") + c + "' in " + where);
    }
    ++pos;
  }

  bool consume_literal(std::string_view literal) {
    if (text.substr(pos, literal.size()) != literal) return false;
    pos += literal.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) parse_fail(pos, "nesting deeper than 64 levels");
    skip_ws();
    if (done()) parse_fail(pos, "unexpected end of input");
    const char c = peek();
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') return Json::string(parse_string());
    if (c == 't') {
      if (consume_literal("true")) return Json::boolean(true);
      parse_fail(pos, "invalid literal");
    }
    if (c == 'f') {
      if (consume_literal("false")) return Json::boolean(false);
      parse_fail(pos, "invalid literal");
    }
    if (c == 'n') {
      if (consume_literal("null")) return Json();
      parse_fail(pos, "invalid literal");
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    parse_fail(pos, std::string("unexpected character '") + c + "'");
  }

  Json parse_object(int depth) {
    expect('{', "object");
    Json out = Json::object();
    skip_ws();
    if (!done() && peek() == '}') {
      ++pos;
      return out;
    }
    while (true) {
      skip_ws();
      if (done() || peek() != '"') parse_fail(pos, "expected object key");
      std::string key = parse_string();
      skip_ws();
      expect(':', "object");
      out.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (done()) parse_fail(pos, "unterminated object");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      expect('}', "object");
      return out;
    }
  }

  Json parse_array(int depth) {
    expect('[', "array");
    Json out = Json::array();
    skip_ws();
    if (!done() && peek() == ']') {
      ++pos;
      return out;
    }
    while (true) {
      out.push_back(parse_value(depth + 1));
      skip_ws();
      if (done()) parse_fail(pos, "unterminated array");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      expect(']', "array");
      return out;
    }
  }

  void append_utf8(std::string* out, unsigned code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  unsigned parse_hex4() {
    if (pos + 4 > text.size()) parse_fail(pos, "truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos + static_cast<std::size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        parse_fail(pos, "invalid \\u escape digit");
      }
    }
    pos += 4;
    return value;
  }

  std::string parse_string() {
    expect('"', "string");
    std::string out;
    while (true) {
      if (done()) parse_fail(pos, "unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        parse_fail(pos - 1, "unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (done()) parse_fail(pos, "truncated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: must pair with a following \uDC00-\uDFFF.
            if (!consume_literal("\\u")) {
              parse_fail(pos, "lone high surrogate");
            }
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              parse_fail(pos, "invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            parse_fail(pos, "lone low surrogate");
          }
          append_utf8(&out, code);
          break;
        }
        default:
          parse_fail(pos - 1, std::string("invalid escape '\\") + e + "'");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos;
    if (!done() && peek() == '-') ++pos;
    while (!done() && peek() >= '0' && peek() <= '9') ++pos;
    if (!done() && peek() == '.') {
      ++pos;
      while (!done() && peek() >= '0' && peek() <= '9') ++pos;
    }
    if (!done() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!done() && (peek() == '+' || peek() == '-')) ++pos;
      while (!done() && peek() >= '0' && peek() <= '9') ++pos;
    }
    const std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0' || !std::isfinite(value)) {
      parse_fail(start, "malformed number '" + token + "'");
    }
    return Json::number(value);
  }
};

void dump_string(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void dump_number(double v, std::string* out) {
  // %.17g round-trips every finite double exactly; integral values print
  // without a decimal point, so integers stay integers on the wire.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  *out += buf;
}

void dump_value(const Json& v, std::string* out) {
  switch (v.type()) {
    case Json::Type::Null: *out += "null"; break;
    case Json::Type::Bool: *out += v.as_bool() ? "true" : "false"; break;
    case Json::Type::Number: dump_number(v.as_number(), out); break;
    case Json::Type::String: dump_string(v.as_string(), out); break;
    case Json::Type::Array: {
      out->push_back('[');
      for (std::size_t i = 0; i < v.size(); ++i) {
        if (i != 0) out->push_back(',');
        dump_value(v.at(i), out);
      }
      out->push_back(']');
      break;
    }
    case Json::Type::Object: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.members()) {
        if (!first) out->push_back(',');
        first = false;
        dump_string(key, out);
        out->push_back(':');
        dump_value(value, out);
      }
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

Json Json::boolean(bool v) {
  Json j;
  j.type_ = Type::Bool;
  j.bool_ = v;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::Number;
  j.number_ = v;
  return j;
}

Json Json::number(index_t v) { return number(static_cast<double>(v)); }

Json Json::string(std::string v) {
  Json j;
  j.type_ = Type::String;
  j.string_ = std::move(v);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::Array;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::Object;
  return j;
}

Json Json::parse(std::string_view text) {
  Reader reader{text};
  Json value = reader.parse_value(0);
  reader.skip_ws();
  if (!reader.done()) {
    parse_fail(reader.pos, "trailing characters after value");
  }
  return value;
}

bool Json::is_integer() const noexcept {
  return type_ == Type::Number && std::floor(number_) == number_ &&
         std::fabs(number_) <= kMaxExactInteger;
}

bool Json::as_bool() const {
  DLAP_REQUIRE(type_ == Type::Bool, "Json::as_bool on non-bool");
  return bool_;
}

double Json::as_number() const {
  DLAP_REQUIRE(type_ == Type::Number, "Json::as_number on non-number");
  return number_;
}

index_t Json::as_integer() const {
  DLAP_REQUIRE(is_integer(), "Json::as_integer on non-integral value");
  return static_cast<index_t>(number_);
}

const std::string& Json::as_string() const {
  DLAP_REQUIRE(type_ == Type::String, "Json::as_string on non-string");
  return string_;
}

std::size_t Json::size() const noexcept {
  if (type_ == Type::Array) return array_.size();
  if (type_ == Type::Object) return object_.size();
  return 0;
}

const Json& Json::at(std::size_t i) const {
  DLAP_REQUIRE(type_ == Type::Array && i < array_.size(),
               "Json::at out of range");
  return array_[i];
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  DLAP_REQUIRE(type_ == Type::Object, "Json::members on non-object");
  return object_;
}

Json& Json::set(std::string key, Json value) {
  DLAP_REQUIRE(type_ == Type::Object, "Json::set on non-object");
  for (auto& [name, existing] : object_) {
    if (name == key) {
      existing = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push_back(Json value) {
  DLAP_REQUIRE(type_ == Type::Array, "Json::push_back on non-array");
  array_.push_back(std::move(value));
  return *this;
}

std::string Json::dump() const {
  std::string out;
  dump_value(*this, &out);
  return out;
}

}  // namespace dlap::server
