#pragma once
// Cholesky factorization of a symmetric positive-definite matrix,
// A = L L^T with L lower triangular; L overwrites the lower triangle of A
// in place (the strictly upper triangle is never referenced).
//
// Three classic blocked algorithmic variants, equivalent in exact
// arithmetic but with different performance signatures (the third worked
// operation family of this repository, registered in src/ops/families.cpp
// alongside trinv and sylv — see docs/ADDING_AN_OPERATION.md):
//
//   Variant 1 (bordered)        Variant 2 (left-looking)
//   A10 <- A10 L00^{-T}         A11 <- A11 - A10 A10^T
//   A11 <- A11 - A10 A10^T      A11 <- chol(A11)
//   A11 <- chol(A11)            A21 <- A21 - A20 A10^T
//                               A21 <- A21 L11^{-T}
//   Variant 3 (right-looking)
//   A11 <- chol(A11)
//   A21 <- A21 L11^{-T}
//   A22 <- A22 - A21 A21^T
//
// The matrix is traversed in steps of `blocksize`; the diagonal block is
// factored by an unblocked Cholesky whose scalar loop structure mirrors
// the enclosing blocked variant (the blocked algorithm at blocksize 1),
// exactly as trinv does with its trinvI_unb kernels.

#include "algorithms/kernel_context.hpp"
#include "common/types.hpp"

namespace dlap {

inline constexpr int kCholVariantCount = 3;

/// Exact flop count of the factorization, n(n+1)(2n+1)/6 (mult + add
/// counted separately, same convention as trinv_flops / sylv_flops); the
/// efficiency formulas divide this by (fips * ticks).
[[nodiscard]] double chol_flops(index_t n);

/// Unblocked in-place factorization, scalar loops mirroring blocked
/// variant `variant` (1-3). All variants compute the same L; their loop
/// structures (and hence performance) differ. Throws dlap::numerical_error
/// when a pivot is non-positive (the matrix is not positive definite).
void chol_unblocked(int variant, index_t n, double* a, index_t lda);

/// Blocked in-place factorization, variant 1-3, with block size b >= 1.
/// All subroutine invocations go through `ctx`.
void chol_blocked(KernelContext& ctx, int variant, index_t n, double* a,
                  index_t lda, index_t blocksize);

}  // namespace dlap
