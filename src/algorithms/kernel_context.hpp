#pragma once
// Execute-or-trace kernel context.
//
// The paper predicts an algorithm's performance "by analyzing its sequence
// of subroutine invocations" (Section IV). To make that analysis exact, our
// blocked algorithms are written once against this interface; an
// ExecContext dispatches into a real BLAS backend, while the predictor's
// TraceContext (predict/trace.hpp) records a KernelCall per invocation
// without touching operand memory.

#include "blas/backend.hpp"
#include "common/types.hpp"

namespace dlap {

class KernelContext {
 public:
  virtual ~KernelContext() = default;

  /// C <- alpha op(A) op(B) + beta C.
  virtual void gemm(Trans transa, Trans transb, index_t m, index_t n,
                    index_t k, double alpha, const double* a, index_t lda,
                    const double* b, index_t ldb, double beta, double* c,
                    index_t ldc) = 0;

  /// B <- alpha op(A)^{-1} B / alpha B op(A)^{-1}.
  virtual void trsm(Side side, Uplo uplo, Trans transa, Diag diag, index_t m,
                    index_t n, double alpha, const double* a, index_t lda,
                    double* b, index_t ldb) = 0;

  /// B <- alpha op(A) B / alpha B op(A).
  virtual void trmm(Side side, Uplo uplo, Trans transa, Diag diag, index_t m,
                    index_t n, double alpha, const double* a, index_t lda,
                    double* b, index_t ldb) = 0;

  /// C <- alpha op(A) op(A)^T + beta C, C symmetric n x n (only the `uplo`
  /// triangle referenced/updated); op(A) is n x k.
  virtual void syrk(Uplo uplo, Trans trans, index_t n, index_t k,
                    double alpha, const double* a, index_t lda, double beta,
                    double* c, index_t ldc) = 0;

  /// In-place unblocked inversion of a lower-triangular matrix, using the
  /// scalar loop structure of blocked variant `variant` (1-4). This is the
  /// paper's "recursive call to an unblocked version of the same
  /// algorithm" (trinvi with blocksize 1).
  virtual void trinv_unb(int variant, index_t n, double* l, index_t ldl) = 0;

  /// In-place unblocked Cholesky factorization of the diagonal block
  /// (lower triangle of the symmetric positive-definite A overwritten by
  /// L), scalar loop structure of blocked variant `variant` (1-3).
  virtual void chol_unb(int variant, index_t n, double* a, index_t lda) = 0;

  /// In-place unblocked solve of L X + X U = C for a small block
  /// (X initially holds C); L is m x m lower, U is n x n upper triangular.
  virtual void sylv_unb(index_t m, index_t n, const double* l, index_t ldl,
                        const double* u, index_t ldu, double* x,
                        index_t ldx) = 0;
};

/// Context that executes kernels: level-3 calls go to the given backend,
/// unblocked kernels run the scalar implementations in this module.
class ExecContext final : public KernelContext {
 public:
  explicit ExecContext(Level3Backend& backend) : backend_(&backend) {}

  [[nodiscard]] Level3Backend& backend() const noexcept { return *backend_; }

  void gemm(Trans transa, Trans transb, index_t m, index_t n, index_t k,
            double alpha, const double* a, index_t lda, const double* b,
            index_t ldb, double beta, double* c, index_t ldc) override {
    backend_->gemm(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c,
                   ldc);
  }
  void trsm(Side side, Uplo uplo, Trans transa, Diag diag, index_t m,
            index_t n, double alpha, const double* a, index_t lda, double* b,
            index_t ldb) override {
    backend_->trsm(side, uplo, transa, diag, m, n, alpha, a, lda, b, ldb);
  }
  void trmm(Side side, Uplo uplo, Trans transa, Diag diag, index_t m,
            index_t n, double alpha, const double* a, index_t lda, double* b,
            index_t ldb) override {
    backend_->trmm(side, uplo, transa, diag, m, n, alpha, a, lda, b, ldb);
  }
  void syrk(Uplo uplo, Trans trans, index_t n, index_t k, double alpha,
            const double* a, index_t lda, double beta, double* c,
            index_t ldc) override {
    backend_->syrk(uplo, trans, n, k, alpha, a, lda, beta, c, ldc);
  }
  void trinv_unb(int variant, index_t n, double* l, index_t ldl) override;
  void chol_unb(int variant, index_t n, double* a, index_t lda) override;
  void sylv_unb(index_t m, index_t n, const double* l, index_t ldl,
                const double* u, index_t ldu, double* x,
                index_t ldx) override;

 private:
  Level3Backend* backend_;
};

}  // namespace dlap
