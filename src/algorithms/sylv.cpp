#include "algorithms/sylv.hpp"

#include <algorithm>
#include <vector>

namespace dlap {

double sylv_flops(index_t m, index_t n) {
  const double dm = static_cast<double>(m);
  const double dn = static_cast<double>(n);
  return dm * dn * (dm + dn + 2.0);
}

SylvSchedule sylv_schedule(int variant) {
  DLAP_REQUIRE(variant >= 1 && variant <= kSylvVariantCount,
               "sylv: variant must be 1..16");
  const int v = variant - 1;
  SylvSchedule s;
  // Bits: [0] row policy, [1] column policy, [2..3] traversal.
  s.push_row = (v & 0b0001) != 0;
  s.push_col = (v & 0b0010) != 0;
  switch ((v >> 2) & 0b11) {
    case 0: s.order = SylvSchedule::Order::DiagCol; break;
    case 1: s.order = SylvSchedule::Order::DiagRow; break;
    case 2: s.order = SylvSchedule::Order::ColMajor; break;
    default: s.order = SylvSchedule::Order::RowMajor; break;
  }
  return s;
}

void sylv_unblocked(index_t m, index_t n, const double* l, index_t ldl,
                    const double* u, index_t ldu, double* x, index_t ldx) {
  DLAP_REQUIRE(m >= 0 && n >= 0, "sylv: negative dimension");
  DLAP_REQUIRE(ldl >= (m > 0 ? m : 1), "sylv: ldl too small");
  DLAP_REQUIRE(ldu >= (n > 0 ? n : 1), "sylv: ldu too small");
  DLAP_REQUIRE(ldx >= (m > 0 ? m : 1), "sylv: ldx too small");
  // x_ij = (c_ij - sum_{p<i} l_ip x_pj - sum_{q<j} x_iq u_qj)/(l_ii + u_jj);
  // sweep column-major so both partial sums only read finished entries.
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double s = x[i + j * ldx];
      for (index_t p = 0; p < i; ++p) s -= l[i + p * ldl] * x[p + j * ldx];
      for (index_t q = 0; q < j; ++q) s -= x[i + q * ldx] * u[q + j * ldu];
      const double d = l[i + i * ldl] + u[j + j * ldu];
      if (d == 0.0) {
        throw numerical_error("sylv: singular operator (l_ii + u_jj == 0)");
      }
      x[i + j * ldx] = s / d;
    }
  }
}

void ExecContext::sylv_unb(index_t m, index_t n, const double* l, index_t ldl,
                           const double* u, index_t ldu, double* x,
                           index_t ldx) {
  sylv_unblocked(m, n, l, ldl, u, ldu, x, ldx);
}

namespace {

// Block grid bookkeeping: block r covers rows [row0(r), row0(r)+rows(r)).
struct Grid {
  index_t total;
  index_t b;
  [[nodiscard]] index_t count() const { return (total + b - 1) / b; }
  [[nodiscard]] index_t start(index_t blk) const { return blk * b; }
  [[nodiscard]] index_t size(index_t blk) const {
    return std::min(b, total - blk * b);
  }
};

// Emits the block visit order for a schedule; every order is a topological
// order of the dependency DAG (block (i,j) after (i-1,j) and (i,j-1)).
std::vector<std::pair<index_t, index_t>> visit_order(
    SylvSchedule::Order order, index_t nr, index_t nc) {
  std::vector<std::pair<index_t, index_t>> out;
  out.reserve(static_cast<std::size_t>(nr * nc));
  switch (order) {
    case SylvSchedule::Order::RowMajor:
      for (index_t i = 0; i < nr; ++i)
        for (index_t j = 0; j < nc; ++j) out.emplace_back(i, j);
      break;
    case SylvSchedule::Order::ColMajor:
      for (index_t j = 0; j < nc; ++j)
        for (index_t i = 0; i < nr; ++i) out.emplace_back(i, j);
      break;
    case SylvSchedule::Order::DiagRow:
      // Diagonal block t, then the remainder of block row t (left to
      // right), then the remainder of block column t (top to bottom).
      for (index_t t = 0; t < std::max(nr, nc); ++t) {
        if (t < nr && t < nc) out.emplace_back(t, t);
        if (t < nr)
          for (index_t j = t + 1; j < nc; ++j) out.emplace_back(t, j);
        if (t < nc)
          for (index_t i = t + 1; i < nr; ++i) out.emplace_back(i, t);
      }
      break;
    case SylvSchedule::Order::DiagCol:
      for (index_t t = 0; t < std::max(nr, nc); ++t) {
        if (t < nr && t < nc) out.emplace_back(t, t);
        if (t < nc)
          for (index_t i = t + 1; i < nr; ++i) out.emplace_back(i, t);
        if (t < nr)
          for (index_t j = t + 1; j < nc; ++j) out.emplace_back(t, j);
      }
      break;
  }
  return out;
}

}  // namespace

void sylv_blocked(KernelContext& ctx, int variant, index_t m, index_t n,
                  const double* l, index_t ldl, const double* u, index_t ldu,
                  double* x, index_t ldx, index_t blocksize) {
  const SylvSchedule sched = sylv_schedule(variant);
  DLAP_REQUIRE(m >= 0 && n >= 0, "sylv: negative dimension");
  DLAP_REQUIRE(blocksize >= 1, "sylv: blocksize must be >= 1");
  DLAP_REQUIRE(ldl >= (m > 0 ? m : 1), "sylv: ldl too small");
  DLAP_REQUIRE(ldu >= (n > 0 ? n : 1), "sylv: ldu too small");
  DLAP_REQUIRE(ldx >= (m > 0 ? m : 1), "sylv: ldx too small");
  if (m == 0 || n == 0) return;

  const Grid rows{m, blocksize};
  const Grid cols{n, blocksize};
  const index_t nr = rows.count();
  const index_t nc = cols.count();

  for (const auto& [bi, bj] : visit_order(sched.order, nr, nc)) {
    const index_t r0 = rows.start(bi);
    const index_t rb = rows.size(bi);
    const index_t r1 = r0 + rb;
    const index_t c0 = cols.start(bj);
    const index_t cb = cols.size(bj);
    const index_t c1 = c0 + cb;
    double* xij = x + r0 + c0 * ldx;

    // Pull policies: accumulate all outstanding contributions into this
    // block with one large gemm per dimension (k grows with progress).
    if (!sched.push_row && r0 > 0) {
      // X(i,j) -= L[r0:r1, 0:r0) * X[0:r0, c0:c1).
      ctx.gemm(Trans::NoTrans, Trans::NoTrans, rb, cb, r0, -1.0, l + r0, ldl,
               x + c0 * ldx, ldx, 1.0, xij, ldx);
    }
    if (!sched.push_col && c0 > 0) {
      // X(i,j) -= X[r0:r1, 0:c0) * U[0:c0, c0:c1).
      ctx.gemm(Trans::NoTrans, Trans::NoTrans, rb, cb, c0, -1.0, x + r0, ldx,
               u + c0 * ldu, ldu, 1.0, xij, ldx);
    }

    ctx.sylv_unb(rb, cb, l + r0 + r0 * ldl, ldl, u + c0 + c0 * ldu, ldu, xij,
                 ldx);

    // Push policies: broadcast this block's contribution immediately to
    // every unsolved block below / to the right (rank-b updates).
    if (sched.push_row && r1 < m) {
      // X[r1:m, c0:c1) -= L[r1:m, r0:r1) * X(i,j).
      ctx.gemm(Trans::NoTrans, Trans::NoTrans, m - r1, cb, rb, -1.0,
               l + r1 + r0 * ldl, ldl, xij, ldx, 1.0, x + r1 + c0 * ldx, ldx);
    }
    if (sched.push_col && c1 < n) {
      // X[r0:r1, c1:n) -= X(i,j) * U[c0:c1, c1:n).
      ctx.gemm(Trans::NoTrans, Trans::NoTrans, rb, n - c1, cb, -1.0, xij, ldx,
               u + c0 + c1 * ldu, ldu, 1.0, x + r0 + c1 * ldx, ldx);
    }
  }
}

}  // namespace dlap
