#include "algorithms/trinv.hpp"

#include <algorithm>

namespace dlap {

double trinv_flops(index_t n) {
  const double x = static_cast<double>(n);
  return x * (x + 1.0) * (x + 2.0) / 3.0;
}

namespace {

double diag_inv(double d) {
  if (d == 0.0) throw numerical_error("trinv: singular triangular matrix");
  return 1.0 / d;
}

// Variant 1 at blocksize 1 (left-looking): the row to the left of the
// diagonal is finalized using the already-inverted leading block.
//   L10 <- L10 L00;  L10 <- -L10 / l_kk;  l_kk <- 1 / l_kk
void unb_v1(index_t n, double* l, index_t ldl) {
  for (index_t k = 0; k < n; ++k) {
    // Row-vector times inverted lower triangle: overwrite ascending, each
    // result element only reads source elements at or after its position.
    for (index_t j = 0; j < k; ++j) {
      double s = 0.0;
      for (index_t i = j; i < k; ++i) s += l[k + i * ldl] * l[i + j * ldl];
      l[k + j * ldl] = s;
    }
    const double dinv = diag_inv(l[k + k * ldl]);
    for (index_t j = 0; j < k; ++j) l[k + j * ldl] *= -dinv;
    l[k + k * ldl] = dinv;
  }
}

// Variant 2 at blocksize 1: the column below the diagonal is finalized via
// a solve with the (original) trailing triangle.
//   L21 <- L22^{-1} L21;  L21 <- -L21 / l_kk;  l_kk <- 1 / l_kk
void unb_v2(index_t n, double* l, index_t ldl) {
  for (index_t k = 0; k < n; ++k) {
    for (index_t i = k + 1; i < n; ++i) {
      double s = l[i + k * ldl];
      for (index_t j = k + 1; j < i; ++j) s -= l[i + j * ldl] * l[j + k * ldl];
      l[i + k * ldl] = s * diag_inv(l[i + i * ldl]);
    }
    const double dinv = diag_inv(l[k + k * ldl]);
    for (index_t i = k + 1; i < n; ++i) l[i + k * ldl] *= -dinv;
    l[k + k * ldl] = dinv;
  }
}

// Variant 3 at blocksize 1 (right-looking, gemm-rich in blocked form):
//   L21 <- -L21 / l_kk;  L20 <- L21 L10 + L20;  L10 <- L10 / l_kk;
//   l_kk <- 1 / l_kk
void unb_v3(index_t n, double* l, index_t ldl) {
  for (index_t k = 0; k < n; ++k) {
    const double dinv = diag_inv(l[k + k * ldl]);
    for (index_t i = k + 1; i < n; ++i) l[i + k * ldl] *= -dinv;
    for (index_t j = 0; j < k; ++j) {
      const double lkj = l[k + j * ldl];
      if (lkj == 0.0) continue;
      for (index_t i = k + 1; i < n; ++i) {
        l[i + j * ldl] += l[i + k * ldl] * lkj;
      }
    }
    for (index_t j = 0; j < k; ++j) l[k + j * ldl] *= dinv;
    l[k + k * ldl] = dinv;
  }
}

// Variant 4 at blocksize 1 (the most expensive blocked variant: trailing
// solve plus a growing trmm):
//   L21 <- -L22^{-1} L21;  L20 <- -L21 L10 + L20;  L10 <- L10 L00;
//   l_kk <- 1 / l_kk
void unb_v4(index_t n, double* l, index_t ldl) {
  for (index_t k = 0; k < n; ++k) {
    // Solve first, negate afterwards: the forward substitution must read
    // the unnegated partial solutions.
    for (index_t i = k + 1; i < n; ++i) {
      double s = l[i + k * ldl];
      for (index_t j = k + 1; j < i; ++j) s -= l[i + j * ldl] * l[j + k * ldl];
      l[i + k * ldl] = s * diag_inv(l[i + i * ldl]);
    }
    for (index_t i = k + 1; i < n; ++i) l[i + k * ldl] = -l[i + k * ldl];
    for (index_t j = 0; j < k; ++j) {
      const double lkj = l[k + j * ldl];
      if (lkj == 0.0) continue;
      for (index_t i = k + 1; i < n; ++i) {
        l[i + j * ldl] -= l[i + k * ldl] * lkj;
      }
    }
    for (index_t j = 0; j < k; ++j) {
      double s = 0.0;
      for (index_t i = j; i < k; ++i) s += l[k + i * ldl] * l[i + j * ldl];
      l[k + j * ldl] = s;
    }
    l[k + k * ldl] = diag_inv(l[k + k * ldl]);
  }
}

}  // namespace

void trinv_unblocked(int variant, index_t n, double* l, index_t ldl) {
  DLAP_REQUIRE(variant >= 1 && variant <= kTrinvVariantCount,
               "trinv: variant must be 1..4");
  DLAP_REQUIRE(n >= 0, "trinv: negative dimension");
  DLAP_REQUIRE(ldl >= (n > 0 ? n : 1), "trinv: ldl too small");
  switch (variant) {
    case 1: unb_v1(n, l, ldl); break;
    case 2: unb_v2(n, l, ldl); break;
    case 3: unb_v3(n, l, ldl); break;
    default: unb_v4(n, l, ldl); break;
  }
}

void ExecContext::trinv_unb(int variant, index_t n, double* l, index_t ldl) {
  trinv_unblocked(variant, n, l, ldl);
}

void trinv_blocked(KernelContext& ctx, int variant, index_t n, double* l,
                   index_t ldl, index_t blocksize) {
  DLAP_REQUIRE(variant >= 1 && variant <= kTrinvVariantCount,
               "trinv: variant must be 1..4");
  DLAP_REQUIRE(n >= 0, "trinv: negative dimension");
  DLAP_REQUIRE(ldl >= (n > 0 ? n : 1), "trinv: ldl too small");
  DLAP_REQUIRE(blocksize >= 1, "trinv: blocksize must be >= 1");
  const index_t b = blocksize;

  // Partition (paper Section IV-A):
  //   [ L00  0    0   ]   L00: k0 x k0  (already traversed)
  //   [ L10  L11  0   ]   L11: kb x kb  (current block)
  //   [ L20  L21  L22 ]   L22: n2 x n2  (not yet traversed)
  for (index_t k0 = 0; k0 < n; k0 += b) {
    const index_t kb = std::min(b, n - k0);
    const index_t k1 = k0 + kb;
    const index_t n2 = n - k1;
    double* l00 = l;
    double* l10 = l + k0;
    double* l11 = l + k0 + k0 * ldl;
    double* l20 = l + k1;
    double* l21 = l + k1 + k0 * ldl;
    double* l22 = l + k1 + k1 * ldl;

    switch (variant) {
      case 1:
        ctx.trmm(Side::Right, Uplo::Lower, Trans::NoTrans, Diag::NonUnit, kb,
                 k0, 1.0, l00, ldl, l10, ldl);
        ctx.trsm(Side::Left, Uplo::Lower, Trans::NoTrans, Diag::NonUnit, kb,
                 k0, -1.0, l11, ldl, l10, ldl);
        ctx.trinv_unb(1, kb, l11, ldl);
        break;
      case 2:
        ctx.trsm(Side::Left, Uplo::Lower, Trans::NoTrans, Diag::NonUnit, n2,
                 kb, 1.0, l22, ldl, l21, ldl);
        ctx.trsm(Side::Right, Uplo::Lower, Trans::NoTrans, Diag::NonUnit, n2,
                 kb, -1.0, l11, ldl, l21, ldl);
        ctx.trinv_unb(2, kb, l11, ldl);
        break;
      case 3:
        ctx.trsm(Side::Right, Uplo::Lower, Trans::NoTrans, Diag::NonUnit, n2,
                 kb, -1.0, l11, ldl, l21, ldl);
        ctx.gemm(Trans::NoTrans, Trans::NoTrans, n2, k0, kb, 1.0, l21, ldl,
                 l10, ldl, 1.0, l20, ldl);
        ctx.trsm(Side::Left, Uplo::Lower, Trans::NoTrans, Diag::NonUnit, kb,
                 k0, 1.0, l11, ldl, l10, ldl);
        ctx.trinv_unb(3, kb, l11, ldl);
        break;
      default:
        ctx.trsm(Side::Left, Uplo::Lower, Trans::NoTrans, Diag::NonUnit, n2,
                 kb, -1.0, l22, ldl, l21, ldl);
        ctx.gemm(Trans::NoTrans, Trans::NoTrans, n2, k0, kb, -1.0, l21, ldl,
                 l10, ldl, 1.0, l20, ldl);
        ctx.trmm(Side::Right, Uplo::Lower, Trans::NoTrans, Diag::NonUnit, kb,
                 k0, 1.0, l00, ldl, l10, ldl);
        ctx.trinv_unb(4, kb, l11, ldl);
        break;
    }
  }
}

}  // namespace dlap
