#include "algorithms/chol.hpp"

#include <algorithm>
#include <cmath>

namespace dlap {

double chol_flops(index_t n) {
  const double x = static_cast<double>(n);
  return x * (x + 1.0) * (2.0 * x + 1.0) / 6.0;
}

namespace {

double chol_pivot(double d) {
  if (d <= 0.0) {
    throw numerical_error("chol: matrix is not positive definite");
  }
  return std::sqrt(d);
}

// Variant 1 at blocksize 1 (bordered): row k is finalized against the
// already-factored leading block, then the diagonal element.
//   A10 <- A10 L00^{-T};  a_kk <- sqrt(a_kk - A10 A10^T)
void unb_v1(index_t n, double* a, index_t lda) {
  for (index_t k = 0; k < n; ++k) {
    // Row-vector solve against L00^T: forward substitution, each element
    // only reads already-finalized elements of its own row.
    for (index_t j = 0; j < k; ++j) {
      double s = a[k + j * lda];
      for (index_t i = 0; i < j; ++i) s -= a[k + i * lda] * a[j + i * lda];
      a[k + j * lda] = s / a[j + j * lda];
    }
    double d = a[k + k * lda];
    for (index_t j = 0; j < k; ++j) d -= a[k + j * lda] * a[k + j * lda];
    a[k + k * lda] = chol_pivot(d);
  }
}

// Variant 2 at blocksize 1 (left-looking): the diagonal element and the
// column below it are finalized using all previous columns.
//   a_kk <- sqrt(a_kk - A10 A10^T);  A21 <- (A21 - A20 A10^T) / l_kk
void unb_v2(index_t n, double* a, index_t lda) {
  for (index_t k = 0; k < n; ++k) {
    double d = a[k + k * lda];
    for (index_t j = 0; j < k; ++j) d -= a[k + j * lda] * a[k + j * lda];
    const double l = chol_pivot(d);
    a[k + k * lda] = l;
    for (index_t i = k + 1; i < n; ++i) {
      double s = a[i + k * lda];
      for (index_t j = 0; j < k; ++j) s -= a[i + j * lda] * a[k + j * lda];
      a[i + k * lda] = s / l;
    }
  }
}

// Variant 3 at blocksize 1 (right-looking, syrk-rich in blocked form):
//   a_kk <- sqrt(a_kk);  A21 <- A21 / l_kk;  A22 <- A22 - A21 A21^T
void unb_v3(index_t n, double* a, index_t lda) {
  for (index_t k = 0; k < n; ++k) {
    const double l = chol_pivot(a[k + k * lda]);
    a[k + k * lda] = l;
    for (index_t i = k + 1; i < n; ++i) a[i + k * lda] /= l;
    for (index_t j = k + 1; j < n; ++j) {
      const double ajk = a[j + k * lda];
      if (ajk == 0.0) continue;
      for (index_t i = j; i < n; ++i) {
        a[i + j * lda] -= a[i + k * lda] * ajk;
      }
    }
  }
}

}  // namespace

void chol_unblocked(int variant, index_t n, double* a, index_t lda) {
  DLAP_REQUIRE(variant >= 1 && variant <= kCholVariantCount,
               "chol: variant must be 1..3");
  DLAP_REQUIRE(n >= 0, "chol: negative dimension");
  DLAP_REQUIRE(lda >= (n > 0 ? n : 1), "chol: lda too small");
  switch (variant) {
    case 1: unb_v1(n, a, lda); break;
    case 2: unb_v2(n, a, lda); break;
    default: unb_v3(n, a, lda); break;
  }
}

void ExecContext::chol_unb(int variant, index_t n, double* a, index_t lda) {
  chol_unblocked(variant, n, a, lda);
}

void chol_blocked(KernelContext& ctx, int variant, index_t n, double* a,
                  index_t lda, index_t blocksize) {
  DLAP_REQUIRE(variant >= 1 && variant <= kCholVariantCount,
               "chol: variant must be 1..3");
  DLAP_REQUIRE(n >= 0, "chol: negative dimension");
  DLAP_REQUIRE(lda >= (n > 0 ? n : 1), "chol: lda too small");
  DLAP_REQUIRE(blocksize >= 1, "chol: blocksize must be >= 1");
  const index_t b = blocksize;

  // Partition (same traversal as trinv, Section IV-A):
  //   [ A00  *    *   ]   A00: k0 x k0  (already factored)
  //   [ A10  A11  *   ]   A11: kb x kb  (current block)
  //   [ A20  A21  A22 ]   A22: n2 x n2  (not yet factored)
  for (index_t k0 = 0; k0 < n; k0 += b) {
    const index_t kb = std::min(b, n - k0);
    const index_t k1 = k0 + kb;
    const index_t n2 = n - k1;
    double* a00 = a;
    double* a10 = a + k0;
    double* a11 = a + k0 + k0 * lda;
    double* a20 = a + k1;
    double* a21 = a + k1 + k0 * lda;
    double* a22 = a + k1 + k1 * lda;

    switch (variant) {
      case 1:
        ctx.trsm(Side::Right, Uplo::Lower, Trans::Transpose, Diag::NonUnit,
                 kb, k0, 1.0, a00, lda, a10, lda);
        ctx.syrk(Uplo::Lower, Trans::NoTrans, kb, k0, -1.0, a10, lda, 1.0,
                 a11, lda);
        ctx.chol_unb(1, kb, a11, lda);
        break;
      case 2:
        ctx.syrk(Uplo::Lower, Trans::NoTrans, kb, k0, -1.0, a10, lda, 1.0,
                 a11, lda);
        ctx.chol_unb(2, kb, a11, lda);
        ctx.gemm(Trans::NoTrans, Trans::Transpose, n2, kb, k0, -1.0, a20,
                 lda, a10, lda, 1.0, a21, lda);
        ctx.trsm(Side::Right, Uplo::Lower, Trans::Transpose, Diag::NonUnit,
                 n2, kb, 1.0, a11, lda, a21, lda);
        break;
      default:
        ctx.chol_unb(3, kb, a11, lda);
        ctx.trsm(Side::Right, Uplo::Lower, Trans::Transpose, Diag::NonUnit,
                 n2, kb, 1.0, a11, lda, a21, lda);
        ctx.syrk(Uplo::Lower, Trans::NoTrans, n2, kb, -1.0, a21, lda, 1.0,
                 a22, lda);
        break;
    }
  }
}

}  // namespace dlap
