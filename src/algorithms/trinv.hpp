#pragma once
// Inversion of a lower-triangular matrix, L <- L^{-1} (the paper's
// motivating operation, Sections I and IV-A).
//
// Four blocked algorithmic variants, equivalent in exact arithmetic but
// with different performance signatures, exactly as printed in the paper:
//
//   Variant 1                Variant 2                Variant 3
//   L10 <- L10 L00           L21 <- L22^{-1} L21      L21 <- -L21 L11^{-1}
//   L10 <- -L11^{-1} L10     L21 <- -L21 L11^{-1}     L20 <- L21 L10 + L20
//   L11 <- L11^{-1}          L11 <- L11^{-1}          L10 <- L11^{-1} L10
//                                                     L11 <- L11^{-1}
//   Variant 4
//   L21 <- -L22^{-1} L21
//   L20 <- -L21 L10 + L20
//   L10 <- L10 L00
//   L11 <- L11^{-1}
//
// The matrix is traversed in steps of `blocksize`; the final statement of
// each iteration is an unblocked inversion of the diagonal block (the
// blocked algorithm with blocksize 1, per the paper's call trace).

#include "algorithms/kernel_context.hpp"
#include "common/types.hpp"

namespace dlap {

inline constexpr int kTrinvVariantCount = 4;

/// Exact flop count of the triangular inversion, n(n+1)(n+2)/3; the
/// paper's efficiency formula is this divided by (fips * ticks).
[[nodiscard]] double trinv_flops(index_t n);

/// Unblocked in-place inversion, scalar loops mirroring blocked variant
/// `variant` (1-4). All variants compute the same result; their loop
/// structures (and hence performance) differ.
void trinv_unblocked(int variant, index_t n, double* l, index_t ldl);

/// Blocked in-place inversion, variant 1-4, with block size b >= 1.
/// All subroutine invocations go through `ctx`.
void trinv_blocked(KernelContext& ctx, int variant, index_t n, double* l,
                   index_t ldl, index_t blocksize);

}  // namespace dlap
