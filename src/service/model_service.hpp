#pragma once
// ModelService: the sampler -> modeler -> repository -> predictor pipeline
// as one long-lived engine (the dissertation's view of the paper's
// workflow: a model repository consulted as a service by many prediction
// runs).
//
// The service owns
//   - a thread-safe ModelRepository (on-disk text files + in-memory cache),
//   - an engine-wide SampleStore, by default *persistent*: an on-disk
//     sample repository beside the model repository (append-only journal
//     per engine key), so a second run, a widened-domain regeneration, or
//     a crash-resume warm-starts from every measurement already paid for,
//   - a MeasurementScheduler that fulfills the batches the generation
//     step machines emit: store first, then joining in-flight points of
//     concurrently generated keys, then measuring -- fanned out over the
//     ThreadPool for deterministic sources, serialized per backend
//     instance for real timing,
//   - the ThreadPool itself, which also fans a batch of modeling jobs out
//     concurrently, one worker per (routine, flags, backend, locality)
//     key, each worker sampling on its OWN backend instance so
//     measurements never interfere.
//
// Callers hand it ModelJobs and get repository-cached models back;
// RepositoryBackedPredictor (service/repository_predictor.hpp) closes the
// loop by resolving models lazily -- generating missing ones on demand --
// during prediction.

#include <cstdint>
#include <filesystem>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/threadpool.hpp"
#include "modeler/modeler.hpp"
#include "modeler/repository.hpp"
#include "sampler/sample_store.hpp"
#include "service/measurement_scheduler.hpp"

namespace dlap {

/// One unit of service work: generate (or reuse) the model of `request`
/// on the backend named by the registry spec `backend`.
struct ModelJob {
  ModelingRequest request;
  std::string backend = "blocked";
};

/// Per-key generation accounting (observability: Engine::prepare reports
/// these; ServiceConfig::on_progress streams them while a generation is
/// under way).
struct GenerationStats {
  /// True when the model was (re)generated; false when an existing
  /// repository model was served.
  bool generated = false;
  /// Where the served model came from: Generated for a fresh build,
  /// TextFile / Container for a reused repository model.
  ModelSource source = ModelSource::Generated;
  /// Distinct points the strategy consumed (the paper's per-run sample
  /// accounting, independent of where the points came from).
  index_t unique_samples = 0;
  index_t points_measured = 0;     ///< newly measured for this generation
  index_t points_from_memory = 0;  ///< reused from the in-memory store
  index_t points_from_disk = 0;    ///< reused from the on-disk journals
  index_t points_joined = 0;       ///< shared with a concurrent generation
  index_t batches = 0;             ///< step-machine batches fulfilled
  double wall_ms = 0.0;
  /// Monotonic stamp: higher = recorded later (lets callers tell what a
  /// specific call did from what an earlier one already recorded).
  std::uint64_t epoch = 0;
};

struct ServiceConfig {
  /// Repository directory (created if absent).
  std::filesystem::path repository_dir = "dlaperf_models";
  /// Persist measurements in an on-disk sample repository so later runs
  /// warm-start from them; false keeps the sample store memory-only.
  bool persist_samples = true;
  /// Sample repository directory; empty means "<repository_dir>/samples".
  std::filesystem::path sample_dir;
  /// Binary model+sample container (.dlapc) to attach beneath the
  /// repository and the sample store: models and measurements load from
  /// it (zero-copy via mmap) unless a newer text file shadows them.
  /// Empty auto-detects "<repository_dir>/repository.dlapc" (the file
  /// compaction and `dlap_pack pack` produce).
  std::filesystem::path container_path;
  /// Generation workers; 0 means std::thread::hardware_concurrency().
  index_t workers = 0;
  /// Strategy for every generated model (the paper selects Adaptive
  /// Refinement with epsilon = 10%, s_min = 32 in III-D3 -- the defaults).
  RefinementConfig refinement;
  /// Serve a stored model instead of regenerating when its domain covers
  /// the requested one.
  bool reuse_stored = true;
  /// Progress lines on stderr.
  bool verbose = false;
  /// Test/bench hook: when set, replaces the real Sampler as the
  /// measurement source of every job (deterministic fits, latency-bound
  /// scheduling benchmarks). Production leaves it empty. Factory-made
  /// sources must tolerate concurrent calls: their batches are fanned
  /// out across the pool (real sampling stays serialized per backend).
  std::function<MeasureFn(const ModelJob&)> measure_factory;
  /// Observability hook: invoked after every fulfilled measurement batch
  /// of a generation, with the key and the counters so far. Called from
  /// generation worker threads; must be thread-safe and cheap.
  std::function<void(const ModelKey&, const GenerationStats&)> on_progress;
};

class ModelService {
 public:
  explicit ModelService(ServiceConfig config = {});

  ModelService(const ModelService&) = delete;
  ModelService& operator=(const ModelService&) = delete;

  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] ModelRepository& repository() noexcept { return repo_; }
  [[nodiscard]] const ModelRepository& repository() const noexcept {
    return repo_;
  }
  [[nodiscard]] SampleStore& samples() noexcept { return samples_; }
  [[nodiscard]] MeasurementScheduler& scheduler() noexcept {
    return scheduler_;
  }
  [[nodiscard]] ThreadPool& pool() noexcept { return pool_; }

  /// The repository key a job resolves to.
  [[nodiscard]] static ModelKey key_for(const ModelJob& job);

  /// Hot-reloads the binary container layer: re-opens the configured
  /// .dlapc path (or the repository's auto-detected repository.dlapc),
  /// attaches it beneath the repository and the sample store, and drops
  /// the repository's in-memory model cache so subsequent lookups see the
  /// new file. A missing file detaches the layer. Returns true when a
  /// container is attached after the call. Throws (container_error) when
  /// the file exists but is corrupt -- the previously attached container
  /// stays in place, so a failed reload never degrades serving.
  bool reload_container();

  /// Generates models for all jobs, fanned out across the pool with one
  /// task per distinct key (duplicate keys are generated once); results
  /// come back in job order and are stored in the repository. Jobs whose
  /// key is already stored with a covering domain are served from the
  /// repository when config().reuse_stored is set. The first generation
  /// error (in job order) is rethrown after all tasks settle.
  [[nodiscard]] std::vector<std::shared_ptr<const RoutineModel>> generate_all(
      const std::vector<ModelJob>& jobs);

  /// Reference path: the same per-job pipeline, run strictly sequentially
  /// on the calling thread (measurement batches included -- no pool
  /// fan-out at all). With a deterministic measurement source this
  /// produces bit-identical repository files to generate_all.
  [[nodiscard]] std::vector<std::shared_ptr<const RoutineModel>>
  generate_all_sequential(const std::vector<ModelJob>& jobs);

  /// Returns the stored model for the job's key when it covers the
  /// requested domain; generates (and stores) it otherwise. Concurrent
  /// calls for one key share a single generation.
  [[nodiscard]] std::shared_ptr<const RoutineModel> get_or_generate(
      const ModelJob& job);

  /// Exception-free get_or_generate for callers that propagate errors as
  /// values (the Engine facade): returns nullptr on failure and, when
  /// `error` is non-null, stores the failure description there.
  [[nodiscard]] std::shared_ptr<const RoutineModel> try_get_or_generate(
      const ModelJob& job, std::string* error) noexcept;

  /// Repository lookup only; nullptr when the key has never been modeled.
  /// Unlike ModelRepository::find, a stored file that fails to parse is
  /// treated as missing (with a warning) rather than fatal, so a corrupt
  /// entry gets regenerated instead of wedging the service.
  [[nodiscard]] std::shared_ptr<const RoutineModel> find(
      const ModelKey& key) const;

  /// Accounting of the most recent generate/reuse of `key` by this
  /// service (nullopt when the key was never handled). See
  /// GenerationStats::epoch for ordering against stats_epoch().
  [[nodiscard]] std::optional<GenerationStats> generation_stats(
      const ModelKey& key) const;

  /// The epoch stamped on the most recent record (0 before any); compare
  /// a record's epoch against a snapshot of this to attribute it.
  [[nodiscard]] std::uint64_t stats_epoch() const;

 private:
  using ModelFuture = std::shared_future<std::shared_ptr<const RoutineModel>>;
  using ModelPromise = std::promise<std::shared_ptr<const RoutineModel>>;

  /// Stored model if reusable under config().reuse_stored, else nullptr.
  [[nodiscard]] std::shared_ptr<const RoutineModel> reusable(
      const ModelJob& job, const ModelKey& key) const;

  /// Runs the full generation pipeline for one job and stores the
  /// result. `sequential` forces Exclusive measurement scheduling even
  /// for factory sources (the bit-identity reference path).
  [[nodiscard]] std::shared_ptr<const RoutineModel> generate_one(
      const ModelJob& job, const ModelKey& key, bool sequential);

  /// get_or_generate with the sequential-measurement flag plumbed.
  [[nodiscard]] std::shared_ptr<const RoutineModel> get_or_generate_impl(
      const ModelJob& job, bool sequential);

  /// Stamps and stores a stats record for `key`.
  void record_stats(const ModelKey& key, GenerationStats stats);

  /// Records that an existing repository model (of provenance `source`)
  /// satisfied `key`.
  void record_reuse(const ModelKey& key, ModelSource source);

  [[nodiscard]] static std::filesystem::path sample_dir_for(
      const ServiceConfig& config);

  ServiceConfig config_;
  ModelRepository repo_;
  SampleStore samples_;
  MeasurementScheduler scheduler_;

  // Keys currently being generated; late arrivals wait on the future
  // instead of duplicating the work.
  std::mutex inflight_mutex_;
  std::map<ModelKey, ModelFuture> inflight_;

  // Per-key generation accounting (observability).
  mutable std::mutex stats_mutex_;
  std::map<ModelKey, GenerationStats> stats_;
  std::uint64_t stats_epoch_ = 0;

  // Declared last, so it is destroyed FIRST: the pool drains still-queued
  // tasks during destruction, and those tasks may touch every member
  // above.
  ThreadPool pool_;
};

}  // namespace dlap
