#pragma once
// Repository-backed prediction: a predictor that resolves models lazily
// from the ModelService instead of requiring callers to pre-assemble a
// ModelSet.
//
// On the first call that needs a (routine, flags) model, the predictor
// looks it up in the repository (cheap: in-memory cache after the first
// disk read). When the repository has no entry and the caller registered
// a generation plan for the pair, the model is generated on demand
// through the service -- the "non-strict fallback" that turns a missed
// lookup into a modeling job instead of an error. Without a plan, misses
// follow PredictionOptions: strict mode throws, non-strict mode counts
// the call in Prediction::missing.
//
// Instances are cheap to copy; copies share the resolved-model cache.
// All members are safe to call concurrently.

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "predict/predictor.hpp"
#include "service/model_service.hpp"

namespace dlap {

class RepositoryBackedPredictor {
 public:
  /// Predicts for models generated on `backend` under `locality` (one
  /// "system" in the paper's sense). The service must outlive the
  /// predictor and all its copies.
  RepositoryBackedPredictor(ModelService& service, std::string backend,
                            Locality locality,
                            PredictionOptions options = {});

  /// Registers the generation plan for the request's (routine, flags)
  /// pair: when prediction needs that model and the repository lacks it
  /// (or only covers a smaller domain), it is generated on demand from
  /// this request. The request's locality is overridden by the
  /// predictor's.
  void plan(ModelingRequest request);

  [[nodiscard]] Prediction predict(const CallTrace& trace) const;

  /// Convenience: prediction for a single call.
  [[nodiscard]] SampleStats predict_call(const KernelCall& call) const;

  /// The lazy-resolution seam, usable to assemble a plain Predictor.
  [[nodiscard]] ModelResolver resolver() const;

  /// Models resolved (loaded or generated) so far.
  [[nodiscard]] std::size_t loaded_models() const;

  [[nodiscard]] const std::string& backend() const noexcept {
    return state_->backend;
  }
  [[nodiscard]] Locality locality() const noexcept {
    return state_->locality;
  }

 private:
  struct State {
    ModelService* service;
    std::string backend;
    Locality locality;

    mutable std::mutex mutex;
    // Resolved models; entries pin their RoutineModel, so raw pointers
    // handed to the Predictor stay valid for the state's lifetime.
    mutable ModelSet loaded;
    // Transparent comparator: hot-path misses probe with the resolver's
    // string_views instead of building a pair of strings first.
    std::map<std::pair<std::string, std::string>, ModelingRequest,
             RoutineFlagsLess>
        plans;

    [[nodiscard]] const RoutineModel* resolve(std::string_view routine,
                                              std::string_view flags) const;
  };

  std::shared_ptr<State> state_;
  PredictionOptions options_;
};

}  // namespace dlap
