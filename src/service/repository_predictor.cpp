#include "service/repository_predictor.hpp"

namespace dlap {

RepositoryBackedPredictor::RepositoryBackedPredictor(ModelService& service,
                                                     std::string backend,
                                                     Locality locality,
                                                     PredictionOptions options)
    : state_(std::make_shared<State>()), options_(options) {
  state_->service = &service;
  state_->backend = std::move(backend);
  state_->locality = locality;
}

void RepositoryBackedPredictor::plan(ModelingRequest request) {
  request.sampler.locality = state_->locality;
  auto key = std::make_pair(std::string(routine_name(request.routine)),
                            std::string(request.flags.begin(),
                                        request.flags.end()));
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->plans.insert_or_assign(std::move(key), std::move(request));
}

const RoutineModel* RepositoryBackedPredictor::State::resolve(
    std::string_view routine, std::string_view flags) const {
  {
    std::lock_guard<std::mutex> lock(mutex);
    if (const RoutineModel* hit = loaded.find(routine, flags)) return hit;
  }

  // Resolve outside the lock: repository reads are cheap, but a plan miss
  // triggers a full on-demand generation. Concurrent resolves of one key
  // are deduplicated inside the service. Strings materialize only on this
  // cold path -- the hit path above is all views.
  std::shared_ptr<const RoutineModel> model;
  ModelingRequest plan_request;
  bool have_plan = false;
  {
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = plans.find(std::make_pair(routine, flags));
    if (it != plans.end()) {
      plan_request = it->second;
      have_plan = true;
    }
  }
  if (have_plan) {
    model = service->get_or_generate({plan_request, backend});
  } else {
    model = service->find(ModelKey{std::string(routine), backend, locality,
                                   std::string(flags)});
  }
  if (model == nullptr) return nullptr;

  std::lock_guard<std::mutex> lock(mutex);
  // First resolve wins: never replace an entry another thread's Predictor
  // may still be evaluating through a raw pointer -- loaded entries stay
  // pinned for the state's lifetime.
  if (const RoutineModel* raced = loaded.find(routine, flags)) return raced;
  loaded.add(std::move(model));
  return loaded.find(routine, flags);
}

ModelResolver RepositoryBackedPredictor::resolver() const {
  return [state = state_](std::string_view routine, std::string_view flags) {
    return state->resolve(routine, flags);
  };
}

Prediction RepositoryBackedPredictor::predict(const CallTrace& trace) const {
  return Predictor(resolver(), options_).predict(trace);
}

SampleStats RepositoryBackedPredictor::predict_call(
    const KernelCall& call) const {
  return Predictor(resolver(), options_).predict_call(call);
}

std::size_t RepositoryBackedPredictor::loaded_models() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->loaded.size();
}

}  // namespace dlap
