#include "service/model_service.hpp"

#include <cstdio>
#include <utility>

#include "blas/registry.hpp"

namespace dlap {

ModelService::ModelService(ServiceConfig config)
    : config_(std::move(config)),
      repo_(config_.repository_dir),
      pool_(config_.workers) {}

ModelKey ModelService::key_for(const ModelJob& job) {
  // Registry specs and backend names coincide for every built-in backend
  // ("blocked", "packed@8", ...), so the spec doubles as the key's
  // backend component without instantiating the backend.
  return model_key_for(job.request, job.backend);
}

std::shared_ptr<const RoutineModel> ModelService::find(
    const ModelKey& key) const {
  try {
    return repo_.find(key);
  } catch (const parse_error& e) {
    std::fprintf(stderr,
                 "[dlaperf] warning: corrupt model file for %s (%s); "
                 "treating as missing\n",
                 key.to_string().c_str(), e.what());
    return nullptr;
  }
}

std::shared_ptr<const RoutineModel> ModelService::reusable(
    const ModelJob& job, const ModelKey& key) const {
  if (!config_.reuse_stored) return nullptr;
  std::shared_ptr<const RoutineModel> stored = find(key);
  if (stored != nullptr &&
      stored->model.domain().covers(job.request.domain)) {
    return stored;
  }
  return nullptr;
}

std::shared_ptr<const RoutineModel> ModelService::generate_one(
    const ModelJob& job, const ModelKey& key) {
  if (config_.verbose) {
    std::fprintf(stderr, "[dlaperf] generating model %s ...\n",
                 key.to_string().c_str());
  }

  RoutineModel model;
  if (config_.measure_factory) {
    MeasureFn base = config_.measure_factory(job);
    DLAP_REQUIRE(base != nullptr,
                 "ServiceConfig::measure_factory returned an empty function");
    // Factory measurements bypass the Modeler, but still flow through the
    // engine-wide store so regenerations reuse points already paid for.
    MeasureFn measure = [this, engine_key = key.to_string(),
                         base](const std::vector<index_t>& point) {
      return samples_.get_or_measure(engine_key, point, base);
    };
    GenerationResult gen = generate_adaptive_refinement(
        job.request.domain, measure, config_.refinement);
    model.key = key;
    model.model = std::move(gen.model);
    model.unique_samples = gen.unique_samples;
    model.average_error = gen.average_error;
    model.strategy = "refinement";
  } else {
    // Every generation samples on its own backend instance, so concurrent
    // workers never share kernel-internal state (thread pools, packing
    // buffers) and measurements stay interference-free. The Modeler
    // routes measurements through the engine-wide sample store.
    std::unique_ptr<Level3Backend> backend = make_backend(job.backend);
    Modeler modeler(*backend);
    modeler.set_sample_store(&samples_);
    model = modeler.build_refinement(job.request, config_.refinement);
  }
  repo_.store(model);

  if (config_.verbose) {
    std::fprintf(stderr,
                 "[dlaperf]   %zu regions, %lld samples, avg err %.2f%%\n",
                 model.model.pieces().size(),
                 static_cast<long long>(model.unique_samples),
                 100.0 * model.average_error);
  }
  return repo_.load_shared(key);
}

std::vector<std::shared_ptr<const RoutineModel>> ModelService::generate_all(
    const std::vector<ModelJob>& jobs) {
  struct Pending {
    ModelJob job;
    ModelKey key;
    std::shared_ptr<ModelPromise> promise;
  };
  std::vector<ModelFuture> futures(jobs.size());
  std::vector<Pending> to_run;

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const ModelKey key = key_for(jobs[i]);
    if (std::shared_ptr<const RoutineModel> have = reusable(jobs[i], key)) {
      ModelPromise ready;
      ready.set_value(std::move(have));
      futures[i] = ready.get_future().share();
      continue;
    }
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    const auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      // Duplicate key (within this batch or from a concurrent caller):
      // join the generation already under way.
      futures[i] = it->second;
      continue;
    }
    auto promise = std::make_shared<ModelPromise>();
    futures[i] = promise->get_future().share();
    inflight_.emplace(key, futures[i]);
    to_run.push_back({jobs[i], key, std::move(promise)});
  }

  // One dynamically scheduled task per distinct key; generation cost
  // varies wildly between keys (domain size, routine dimensionality), so
  // self-scheduling beats static chunking here.
  pool_.parallel_for_each(
      static_cast<index_t>(to_run.size()), [&](index_t t) {
        Pending& p = to_run[static_cast<std::size_t>(t)];
        try {
          p.promise->set_value(generate_one(p.job, p.key));
        } catch (...) {
          p.promise->set_exception(std::current_exception());
        }
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        inflight_.erase(p.key);
      });

  std::vector<std::shared_ptr<const RoutineModel>> out;
  out.reserve(jobs.size());
  for (ModelFuture& f : futures) out.push_back(f.get());

  // A job that joined another generation of its key (duplicate within the
  // batch, or a concurrent caller) may have received a model over a
  // narrower domain than it asked for; regenerate those with the full
  // requested domain rather than handing back an extrapolating model.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!out[i]->model.domain().covers(jobs[i].request.domain)) {
      out[i] = get_or_generate(jobs[i]);
    }
  }
  return out;
}

std::vector<std::shared_ptr<const RoutineModel>>
ModelService::generate_all_sequential(const std::vector<ModelJob>& jobs) {
  std::vector<std::shared_ptr<const RoutineModel>> out;
  out.reserve(jobs.size());
  for (const ModelJob& job : jobs) out.push_back(get_or_generate(job));
  return out;
}

std::shared_ptr<const RoutineModel> ModelService::try_get_or_generate(
    const ModelJob& job, std::string* error) noexcept {
  try {
    return get_or_generate(job);
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
  } catch (...) {
    if (error != nullptr) *error = "unknown error";
  }
  return nullptr;
}

std::shared_ptr<const RoutineModel> ModelService::get_or_generate(
    const ModelJob& job) {
  const ModelKey key = key_for(job);
  for (;;) {
    if (std::shared_ptr<const RoutineModel> have = reusable(job, key)) {
      return have;
    }

    ModelFuture waitee;
    std::shared_ptr<ModelPromise> claim;
    {
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      const auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        waitee = it->second;
      } else {
        claim = std::make_shared<ModelPromise>();
        inflight_.emplace(key, claim->get_future().share());
      }
    }

    if (claim != nullptr) {
      std::shared_ptr<const RoutineModel> model;
      try {
        model = generate_one(job, key);
        claim->set_value(model);
      } catch (...) {
        claim->set_exception(std::current_exception());
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        inflight_.erase(key);
        throw;
      }
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      inflight_.erase(key);
      return model;
    }

    std::shared_ptr<const RoutineModel> joined = waitee.get();
    // The joined generation may have modeled a smaller domain than this
    // job asks for; accept it only when it covers ours, else go around
    // and generate with the full requested domain.
    if (joined->model.domain().covers(job.request.domain)) return joined;
  }
}

}  // namespace dlap
