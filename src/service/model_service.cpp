#include "service/model_service.hpp"

#include <chrono>
#include <cstdio>
#include <utility>

#include "blas/registry.hpp"
#include "storage/container.hpp"

namespace dlap {

std::filesystem::path ModelService::sample_dir_for(
    const ServiceConfig& config) {
  if (!config.persist_samples) return {};
  if (!config.sample_dir.empty()) return config.sample_dir;
  return config.repository_dir / "samples";
}

ModelService::ModelService(ServiceConfig config)
    : config_(std::move(config)),
      repo_(config_.repository_dir),
      samples_(sample_dir_for(config_)),
      // pool_ is declared last (destroyed first, draining tasks that
      // touch the members above), so it is NOT yet constructed here:
      // the scheduler's constructor only stores the address and must
      // never be changed to dereference it.
      scheduler_(pool_, samples_),
      pool_(config_.workers) {
  // Attach the binary container (explicit path, or the repository's
  // auto-detected repository.dlapc) to BOTH stores: one mmap serves
  // models and replayable measurements alike.
  if (!config_.container_path.empty()) {
    const std::shared_ptr<const storage::ContainerReader> reader =
        storage::ContainerReader::open(config_.container_path);
    repo_.attach_container(reader);
    samples_.attach_container(reader);
  } else {
    samples_.attach_container(repo_.container());
  }
}

bool ModelService::reload_container() {
  const std::filesystem::path path =
      config_.container_path.empty()
          ? config_.repository_dir / storage::kContainerFilename
          : config_.container_path;
  std::shared_ptr<const storage::ContainerReader> reader;
  if (std::filesystem::exists(path)) {
    // Opens (and validates) BEFORE detaching anything: a corrupt file
    // throws here and the previous attachment keeps serving.
    reader = storage::ContainerReader::open(path);
  }
  repo_.attach_container(reader);
  samples_.attach_container(reader);
  repo_.invalidate_cache();
  return reader != nullptr;
}

ModelKey ModelService::key_for(const ModelJob& job) {
  // Registry specs and backend names coincide for every built-in backend
  // ("blocked", "packed@8", ...), so the spec doubles as the key's
  // backend component without instantiating the backend.
  return model_key_for(job.request, job.backend);
}

std::shared_ptr<const RoutineModel> ModelService::find(
    const ModelKey& key) const {
  try {
    return repo_.find(key);
  } catch (const parse_error& e) {
    std::fprintf(stderr,
                 "[dlaperf] warning: corrupt model file for %s (%s); "
                 "treating as missing\n",
                 key.to_string().c_str(), e.what());
    return nullptr;
  }
}

std::shared_ptr<const RoutineModel> ModelService::reusable(
    const ModelJob& job, const ModelKey& key) const {
  if (!config_.reuse_stored) return nullptr;
  std::shared_ptr<const RoutineModel> stored = find(key);
  if (stored != nullptr &&
      stored->model.domain().covers(job.request.domain)) {
    return stored;
  }
  return nullptr;
}

void ModelService::record_stats(const ModelKey& key, GenerationStats stats) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats.epoch = ++stats_epoch_;
  stats_[key] = std::move(stats);
}

void ModelService::record_reuse(const ModelKey& key, ModelSource source) {
  GenerationStats stats;  // generated = false, all zeros
  stats.source = source;
  record_stats(key, std::move(stats));
}

std::optional<GenerationStats> ModelService::generation_stats(
    const ModelKey& key) const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  const auto it = stats_.find(key);
  if (it == stats_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t ModelService::stats_epoch() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_epoch_;
}

std::shared_ptr<const RoutineModel> ModelService::generate_one(
    const ModelJob& job, const ModelKey& key, bool sequential) {
  if (config_.verbose) {
    std::fprintf(stderr, "[dlaperf] generating model %s ...\n",
                 key.to_string().c_str());
  }
  const std::string engine_key = key.to_string();

  // Choose the measurement source and how its batches may be scheduled.
  // Factory sources are deterministic test/bench hooks and fan out over
  // the pool; real sampling instantiates its own backend so concurrent
  // workers never share kernel-internal state (thread pools, packing
  // buffers), and its batches stay serialized on this thread -- the
  // per-backend-instance exclusivity real timing requires.
  MeasureFn measure;
  std::unique_ptr<Level3Backend> backend;
  std::optional<Modeler> modeler;
  MeasurementScheduler::Mode mode = MeasurementScheduler::Mode::Exclusive;
  if (config_.measure_factory) {
    measure = config_.measure_factory(job);
    DLAP_REQUIRE(measure != nullptr,
                 "ServiceConfig::measure_factory returned an empty function");
    if (!sequential) mode = MeasurementScheduler::Mode::Parallel;
  } else {
    backend = make_backend(job.backend);
    modeler.emplace(*backend);
    measure = modeler->make_measure_fn(job.request);
  }

  // The strategy declares what it needs, batch by batch; the scheduler
  // fulfills each batch from the sample store (memory, then the on-disk
  // journals), joining concurrent measurements, measuring the rest.
  auto stepper =
      make_refinement_stepper(job.request.domain, config_.refinement);
  GenerationStats stats;
  stats.generated = true;
  const auto t0 = std::chrono::steady_clock::now();
  while (!stepper->done()) {
    FulfillStats batch;
    const std::vector<SampleStats> fulfilled = scheduler_.fulfill(
        engine_key, stepper->required(), measure, mode, &batch);
    stats.points_measured += batch.measured;
    stats.points_from_memory += batch.from_memory;
    stats.points_from_disk += batch.from_disk;
    stats.points_joined += batch.joined;
    ++stats.batches;
    stepper->supply(fulfilled);
    if (config_.on_progress) config_.on_progress(key, stats);
  }
  GenerationResult gen = stepper->take_result();
  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

  RoutineModel model;
  model.key = key;
  model.model = std::move(gen.model);
  model.unique_samples = gen.unique_samples;
  model.average_error = gen.average_error;
  model.strategy = "refinement";
  stats.unique_samples = model.unique_samples;
  repo_.store(model);
  record_stats(key, std::move(stats));

  if (config_.verbose) {
    std::fprintf(stderr,
                 "[dlaperf]   %zu regions, %lld samples, avg err %.2f%%\n",
                 model.model.pieces().size(),
                 static_cast<long long>(model.unique_samples),
                 100.0 * model.average_error);
  }
  return repo_.load_shared(key);
}

std::vector<std::shared_ptr<const RoutineModel>> ModelService::generate_all(
    const std::vector<ModelJob>& jobs) {
  struct Pending {
    ModelJob job;
    ModelKey key;
    std::shared_ptr<ModelPromise> promise;
  };
  std::vector<ModelFuture> futures(jobs.size());
  std::vector<Pending> to_run;

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const ModelKey key = key_for(jobs[i]);
    if (std::shared_ptr<const RoutineModel> have = reusable(jobs[i], key)) {
      record_reuse(key, have->source);
      ModelPromise ready;
      ready.set_value(std::move(have));
      futures[i] = ready.get_future().share();
      continue;
    }
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    const auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      // Duplicate key (within this batch or from a concurrent caller):
      // join the generation already under way.
      futures[i] = it->second;
      continue;
    }
    auto promise = std::make_shared<ModelPromise>();
    futures[i] = promise->get_future().share();
    inflight_.emplace(key, futures[i]);
    to_run.push_back({jobs[i], key, std::move(promise)});
  }

  // One dynamically scheduled task per distinct key; generation cost
  // varies wildly between keys (domain size, routine dimensionality), so
  // self-scheduling beats static chunking here.
  pool_.parallel_for_each(
      static_cast<index_t>(to_run.size()), [&](index_t t) {
        Pending& p = to_run[static_cast<std::size_t>(t)];
        try {
          p.promise->set_value(generate_one(p.job, p.key,
                                            /*sequential=*/false));
        } catch (...) {
          p.promise->set_exception(std::current_exception());
        }
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        inflight_.erase(p.key);
      });

  std::vector<std::shared_ptr<const RoutineModel>> out;
  out.reserve(jobs.size());
  for (ModelFuture& f : futures) out.push_back(f.get());

  // A job that joined another generation of its key (duplicate within the
  // batch, or a concurrent caller) may have received a model over a
  // narrower domain than it asked for; regenerate those with the full
  // requested domain rather than handing back an extrapolating model.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!out[i]->model.domain().covers(jobs[i].request.domain)) {
      out[i] = get_or_generate(jobs[i]);
    }
  }
  return out;
}

std::vector<std::shared_ptr<const RoutineModel>>
ModelService::generate_all_sequential(const std::vector<ModelJob>& jobs) {
  std::vector<std::shared_ptr<const RoutineModel>> out;
  out.reserve(jobs.size());
  for (const ModelJob& job : jobs) {
    out.push_back(get_or_generate_impl(job, /*sequential=*/true));
  }
  return out;
}

std::shared_ptr<const RoutineModel> ModelService::try_get_or_generate(
    const ModelJob& job, std::string* error) noexcept {
  try {
    return get_or_generate(job);
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
  } catch (...) {
    if (error != nullptr) *error = "unknown error";
  }
  return nullptr;
}

std::shared_ptr<const RoutineModel> ModelService::get_or_generate(
    const ModelJob& job) {
  return get_or_generate_impl(job, /*sequential=*/false);
}

std::shared_ptr<const RoutineModel> ModelService::get_or_generate_impl(
    const ModelJob& job, bool sequential) {
  const ModelKey key = key_for(job);
  for (;;) {
    if (std::shared_ptr<const RoutineModel> have = reusable(job, key)) {
      record_reuse(key, have->source);
      return have;
    }

    ModelFuture waitee;
    std::shared_ptr<ModelPromise> claim;
    {
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      const auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        waitee = it->second;
      } else {
        claim = std::make_shared<ModelPromise>();
        inflight_.emplace(key, claim->get_future().share());
      }
    }

    if (claim != nullptr) {
      std::shared_ptr<const RoutineModel> model;
      try {
        model = generate_one(job, key, sequential);
        claim->set_value(model);
      } catch (...) {
        claim->set_exception(std::current_exception());
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        inflight_.erase(key);
        throw;
      }
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      inflight_.erase(key);
      return model;
    }

    std::shared_ptr<const RoutineModel> joined = waitee.get();
    // The joined generation may have modeled a smaller domain than this
    // job asks for; accept it only when it covers ours, else go around
    // and generate with the full requested domain.
    if (joined->model.domain().covers(job.request.domain)) return joined;
  }
}

}  // namespace dlap
