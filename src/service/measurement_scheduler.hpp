#pragma once
// MeasurementScheduler: fulfills the point batches emitted by the
// generation step machines (modeler/strategies.hpp).
//
// A generation strategy *declares* what it needs -- a region's whole
// sample grid as one batch -- and this scheduler decides how each point
// is satisfied, in order of preference:
//
//   1. the engine-wide SampleStore (in-memory, or replayed from the
//      on-disk sample repository when the store is persistent),
//   2. joining a measurement of the same (engine key, point) already in
//      flight on another thread. Points are keyed PER engine key, so
//      this dedupes concurrent fulfillments of one key -- direct
//      scheduler users, overlapping regenerations -- never across
//      different keys; ModelService additionally serializes whole-model
//      generations per key, making this a defensive second layer there,
//   3. actually measuring, either fanned out across the ThreadPool
//      (deterministic measurement sources: synthetic cost surfaces,
//      latency-bound test hooks) or serialized on the calling thread
//      (real timing on a backend instance, where concurrent kernel
//      execution would corrupt the measured ticks).
//
// Every newly measured point is inserted into the store (and journaled
// when persistent) before its waiters are released. Results come back in
// batch order, so with a deterministic measurement source a fulfilled
// batch is bit-identical to measuring the batch sequentially.

#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/threadpool.hpp"
#include "sampler/sample_store.hpp"

namespace dlap {

/// Per-fulfillment accounting (one batch; add across batches for one
/// generation's totals).
struct FulfillStats {
  index_t measured = 0;     ///< points newly measured by this call
  index_t from_memory = 0;  ///< store hits measured earlier this process
  index_t from_disk = 0;    ///< store hits replayed from a journal
  index_t joined = 0;       ///< waited on another caller's measurement

  FulfillStats& operator+=(const FulfillStats& o) {
    measured += o.measured;
    from_memory += o.from_memory;
    from_disk += o.from_disk;
    joined += o.joined;
    return *this;
  }
};

class MeasurementScheduler {
 public:
  using PointMeasure = std::function<SampleStats(const std::vector<index_t>&)>;

  /// How the missing points of a batch are measured.
  enum class Mode {
    /// Serialized on the calling thread. Required when the measurement
    /// times real kernel executions on a backend instance: concurrent
    /// runs would contend for cores/caches and corrupt the timings.
    Exclusive,
    /// Fanned out across the pool (the calling thread participates, so
    /// a saturated pool can never deadlock the batch). Only valid for
    /// measurement sources that tolerate concurrency -- the
    /// deterministic test/bench hooks.
    Parallel,
  };

  /// Only stores the addresses: `pool` and `store` may be
  /// not-yet-constructed siblings of the scheduler (ModelService
  /// declares its pool *after* the scheduler for destruction-order
  /// reasons). Nothing may be dereferenced here.
  MeasurementScheduler(ThreadPool& pool, SampleStore& store)
      : pool_(&pool), store_(&store) {}

  MeasurementScheduler(const MeasurementScheduler&) = delete;
  MeasurementScheduler& operator=(const MeasurementScheduler&) = delete;

  /// Fulfills `points` for `engine_key`, returning statistics in point
  /// order. Throws the first measurement error (after settling every
  /// in-flight registration, so concurrent waiters never hang).
  [[nodiscard]] std::vector<SampleStats> fulfill(
      std::string_view engine_key,
      const std::vector<std::vector<index_t>>& points,
      const PointMeasure& measure, Mode mode,
      FulfillStats* stats = nullptr);

 private:
  using Future = std::shared_future<SampleStats>;
  using Promise = std::promise<SampleStats>;

  ThreadPool* pool_;
  SampleStore* store_;

  // Points currently being measured, keyed (engine key -> point). Late
  // arrivals wait on the future instead of measuring again.
  std::mutex inflight_mutex_;
  std::map<std::string, std::map<std::vector<index_t>, Future>, std::less<>>
      inflight_;
};

}  // namespace dlap
