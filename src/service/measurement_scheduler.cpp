#include "service/measurement_scheduler.hpp"

#include <memory>
#include <utility>

namespace dlap {

namespace {

struct Claim {
  std::size_t index = 0;  // position in the batch
  std::shared_ptr<std::promise<SampleStats>> promise;
};

struct Join {
  std::size_t index = 0;
  std::shared_future<SampleStats> future;
};

}  // namespace

std::vector<SampleStats> MeasurementScheduler::fulfill(
    std::string_view engine_key,
    const std::vector<std::vector<index_t>>& points,
    const PointMeasure& measure, Mode mode, FulfillStats* stats) {
  std::vector<SampleStats> results(points.size());
  FulfillStats counts;
  std::vector<Claim> claims;
  std::vector<Join> joins;

  const auto remove_inflight = [&](const std::vector<index_t>& point) {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    const auto key_it = inflight_.find(engine_key);
    if (key_it != inflight_.end()) {
      key_it->second.erase(point);
      if (key_it->second.empty()) inflight_.erase(key_it);
    }
  };

  try {
    // Triage each point: store hit, join an in-flight measurement, or
    // claim it for measurement by this call.
    for (std::size_t i = 0; i < points.size(); ++i) {
      switch (store_->probe(engine_key, points[i], &results[i])) {
        case SampleStore::Origin::Memory:
          ++counts.from_memory;
          continue;
        case SampleStore::Origin::Disk:
          ++counts.from_disk;
          continue;
        case SampleStore::Origin::Miss:
          break;
      }
      auto promise = std::make_shared<Promise>();
      {
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        auto key_it = inflight_.find(engine_key);
        if (key_it == inflight_.end()) {
          key_it =
              inflight_
                  .emplace(std::string(engine_key),
                           std::map<std::vector<index_t>, Future>{})
                  .first;
        }
        const auto point_it = key_it->second.find(points[i]);
        if (point_it != key_it->second.end()) {
          joins.push_back({i, point_it->second});
          ++counts.joined;
          continue;
        }
        // Record the claim BEFORE registering it in inflight_: if
        // registration throws, the recovery below only has to settle
        // claims it can see.
        claims.push_back({i, promise});
        key_it->second.emplace(points[i], promise->get_future().share());
      }
      // Close the probe->claim race AFTER claiming (and outside the
      // in-flight lock, so one key's journal I/O never serializes other
      // keys' triage): a concurrent fulfill may have measured, inserted
      // and settled this point between our probe above and the claim.
      // Owners insert into the store BEFORE dropping their in-flight
      // entry, so if the entry was gone when we claimed, the store
      // already has the stats -- adopt them into our own promise
      // (joiners of our claim see the same coherent values) instead of
      // measuring again, which would double-pay and, with a real timing
      // source, yield stats differing from what the store/journal kept,
      // breaking warm-start bit-identity. The first probe already
      // counted this point's miss, so the re-check must not count
      // another.
      const SampleStore::Origin origin = store_->probe(
          engine_key, points[i], &results[i], /*count_miss=*/false);
      if (origin != SampleStore::Origin::Miss) {
        claims.back().promise->set_value(results[i]);
        claims.pop_back();
        remove_inflight(points[i]);
        ++(origin == SampleStore::Origin::Disk ? counts.from_disk
                                               : counts.from_memory);
        continue;
      }
      ++counts.measured;
    }

    // Measure the claimed points. Each point is inserted into the store
    // (journaled when persistent) and its promise settled *before* the
    // in-flight registration is dropped, so joiners either see the
    // future or find the point in the store. Exceptions settle every
    // remaining claim (waiters must never hang) and surface after the
    // batch.
    std::exception_ptr first_error;
    std::mutex error_mutex;
    const auto measure_claim = [&](const Claim& claim) {
      const std::vector<index_t>& point = points[claim.index];
      try {
        const SampleStats measured = measure(point);
        store_->insert(engine_key, point, measured);
        results[claim.index] = measured;
        claim.promise->set_value(measured);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        claim.promise->set_exception(std::current_exception());
      }
      remove_inflight(point);
    };

    if (mode == Mode::Exclusive || claims.size() <= 1) {
      for (const Claim& claim : claims) measure_claim(claim);
    } else {
      // The calling thread participates in the fan-out, so this is safe
      // to run from a pool worker (generation tasks) without
      // deadlocking a saturated pool.
      pool_->parallel_for_each(static_cast<index_t>(claims.size()),
                               [&](index_t i) {
                                 measure_claim(
                                     claims[static_cast<std::size_t>(i)]);
                               });
    }

    // Collect joined points last: their owners run concurrently with
    // this call's own measurements. get() rethrows the owner's failure.
    for (const Join& join : joins) {
      results[join.index] = join.future.get();
    }

    if (first_error) std::rethrow_exception(first_error);
  } catch (...) {
    // A failure anywhere above (including an allocation failure in the
    // triage loop itself) must not strand a registered claim: settle
    // every one of this call's promises that is still open -- waiters
    // on a dead future would otherwise hang forever -- and drop those
    // registrations so later fulfills re-measure. Claims measure_claim
    // already settled were also already deregistered; touching them
    // again could erase a LATER caller's fresh registration of the same
    // point and let two measurements race.
    const std::exception_ptr error = std::current_exception();
    for (const Claim& claim : claims) {
      try {
        claim.promise->set_exception(error);
      } catch (const std::future_error&) {
        continue;  // settled (and deregistered) by measure_claim
      }
      remove_inflight(points[claim.index]);
    }
    throw;
  }

  if (stats != nullptr) *stats += counts;
  return results;
}

}  // namespace dlap
