#include <cmath>
#include <deque>

#include "modeler/fit.hpp"
#include "modeler/polynomial.hpp"
#include "modeler/sample_cache.hpp"
#include "modeler/strategies.hpp"

namespace dlap {

index_t effective_grid_points(const GeneratorConfig& config, int dims) {
  const double monomials =
      static_cast<double>(monomial_count(dims, config.degree));
  // points_per_dim^dims >= 1.5 * monomials keeps the fit overdetermined.
  index_t needed = static_cast<index_t>(
      std::ceil(std::pow(1.5 * monomials, 1.0 / dims)));
  return std::max(config.grid_points_per_dim, needed);
}

GenerationResult generate_adaptive_refinement(const Region& domain,
                                              const MeasureFn& measure,
                                              const RefinementConfig& config) {
  const GeneratorConfig& base = config.base;
  DLAP_REQUIRE(base.error_bound > 0.0, "refinement: error bound must be > 0");
  DLAP_REQUIRE(config.min_region_size >= base.granularity,
               "refinement: s_min below granularity");

  SampleCache cache(measure);
  GenerationResult result;
  std::vector<RegionModel> pieces;

  // Breadth-first refinement reproduces the paper's level-by-level
  // pictures (Fig III.5): the whole domain first, then quadrants, ...
  std::deque<Region> work;
  work.push_back(domain);

  while (!work.empty()) {
    const Region region = work.front();
    work.pop_front();

    const auto samples = cache.gather(region.sample_grid(
        effective_grid_points(base, region.dims()), base.granularity));
    const FitResult fit = fit_polynomial(region, samples, base.degree);
    result.events.push_back({GenerationEvent::Kind::NewRegion, region,
                             fit.erelmax, cache.unique_samples()});

    const bool accurate = fit.erelmax <= base.error_bound;
    std::vector<Region> children;
    if (!accurate) {
      children = region.split(config.min_region_size, base.granularity);
    }
    const bool splittable = children.size() > 1;

    if (accurate || !splittable) {
      // Accurate, or too small to refine further: accept as-is (the paper
      // accepts inaccurate minimum-size regions the same way).
      pieces.push_back({region, fit.poly, fit.erelmax, fit.mean_rel_error,
                        static_cast<index_t>(samples.size())});
      result.events.push_back({GenerationEvent::Kind::Finalized, region,
                               fit.erelmax, cache.unique_samples()});
      continue;
    }

    result.events.push_back({GenerationEvent::Kind::Split, region,
                             fit.erelmax, cache.unique_samples()});
    for (Region& child : children) work.push_back(std::move(child));
  }

  result.model = PiecewiseModel(domain, std::move(pieces));
  result.unique_samples = cache.unique_samples();
  result.average_error = result.model.average_error();
  return result;
}

}  // namespace dlap
