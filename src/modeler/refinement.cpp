// Adaptive Refinement (paper III-C2) as an incremental step machine:
// breadth-first over a queue of regions, each step requesting the front
// region's sample grid as one batch, then fitting and either accepting
// the region or splitting it.

#include <deque>

#include "modeler/strategies.hpp"

namespace dlap {

namespace {

class RefinementStepper final : public GenerationStepper {
 public:
  RefinementStepper(const Region& domain, const RefinementConfig& config)
      : GenerationStepper(config.base, domain), config_(config) {
    work_.push_back(domain);
  }

 private:
  void run() override {
    const GeneratorConfig& base = generator_config();
    // Breadth-first refinement reproduces the paper's level-by-level
    // pictures (Fig III.5): the whole domain first, then quadrants, ...
    while (!work_.empty()) {
      const Region region = work_.front();
      // The front region's whole sample grid is one batch; when points
      // are missing the region stays queued and the machine resumes here
      // after supply().
      auto fitted = try_fit(region);
      if (!fitted) return;
      work_.pop_front();
      auto& [fit, used] = *fitted;
      push_event(GenerationEvent::Kind::NewRegion, region, fit.erelmax);

      const bool accurate = fit.erelmax <= base.error_bound;
      std::vector<Region> children;
      if (!accurate) {
        children = region.split(config_.min_region_size, base.granularity);
      }
      const bool splittable = children.size() > 1;

      if (accurate || !splittable) {
        // Accurate, or too small to refine further: accept as-is (the
        // paper accepts inaccurate minimum-size regions the same way).
        add_piece({region, fit.poly, fit.erelmax, fit.mean_rel_error, used});
        push_event(GenerationEvent::Kind::Finalized, region, fit.erelmax);
        continue;
      }

      push_event(GenerationEvent::Kind::Split, region, fit.erelmax);
      for (Region& child : children) work_.push_back(std::move(child));
    }
    finish();
  }

  RefinementConfig config_;
  std::deque<Region> work_;
};

}  // namespace

std::unique_ptr<GenerationStepper> make_refinement_stepper(
    const Region& domain, const RefinementConfig& config) {
  DLAP_REQUIRE(config.base.error_bound > 0.0,
               "refinement: error bound must be > 0");
  DLAP_REQUIRE(config.min_region_size >= config.base.granularity,
               "refinement: s_min below granularity");
  auto stepper = std::unique_ptr<RefinementStepper>(
      new RefinementStepper(domain, config));
  stepper->start();
  return stepper;
}

}  // namespace dlap
