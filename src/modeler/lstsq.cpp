#include "modeler/lstsq.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/matrix_util.hpp"

namespace dlap {

LstsqResult lstsq(ConstMatrixView a, ConstMatrixView b, double tol) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t nrhs = b.cols();
  DLAP_REQUIRE(b.rows() == m, "lstsq: row mismatch between A and B");
  DLAP_REQUIRE(m >= 1 && n >= 1, "lstsq: empty system");

  // Working copies (the factorization is in place).
  Matrix qr(m, n);
  copy_matrix(a, qr.view());
  Matrix rhs(m, nrhs);
  copy_matrix(b, rhs.view());

  std::vector<index_t> perm(n);
  std::iota(perm.begin(), perm.end(), index_t{0});
  std::vector<double> colnorm2(n);
  for (index_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (index_t i = 0; i < m; ++i) s += qr(i, j) * qr(i, j);
    colnorm2[j] = s;
  }
  const double max_norm0 =
      std::sqrt(*std::max_element(colnorm2.begin(), colnorm2.end()));

  const index_t kmax = std::min(m, n);
  index_t rank = 0;

  for (index_t k = 0; k < kmax; ++k) {
    // Column pivoting on the remaining norms.
    index_t piv = k;
    for (index_t j = k + 1; j < n; ++j) {
      if (colnorm2[j] > colnorm2[piv]) piv = j;
    }
    if (piv != k) {
      for (index_t i = 0; i < m; ++i) std::swap(qr(i, k), qr(i, piv));
      std::swap(colnorm2[k], colnorm2[piv]);
      std::swap(perm[k], perm[piv]);
    }

    // Householder vector for column k below row k.
    double norm = 0.0;
    for (index_t i = k; i < m; ++i) norm += qr(i, k) * qr(i, k);
    norm = std::sqrt(norm);
    if (norm <= tol * std::max(1.0, max_norm0)) break;  // rank exhausted
    ++rank;

    const double alpha = (qr(k, k) >= 0.0) ? -norm : norm;
    const double vk = qr(k, k) - alpha;
    qr(k, k) = alpha;
    // v = (1, qr(k+1..m, k)/vk); beta = -vk/alpha.
    for (index_t i = k + 1; i < m; ++i) qr(i, k) /= vk;
    const double beta = -vk / alpha;

    // Apply H = I - beta v v^T to the trailing columns and to the RHS.
    auto apply = [&](auto&& get, auto&& set, index_t j) {
      double dot = get(k, j);
      for (index_t i = k + 1; i < m; ++i) dot += qr(i, k) * get(i, j);
      const double w = beta * dot;
      set(k, j, get(k, j) - w);
      for (index_t i = k + 1; i < m; ++i) set(i, j, get(i, j) - w * qr(i, k));
    };
    for (index_t j = k + 1; j < n; ++j) {
      apply([&](index_t i, index_t jj) { return qr(i, jj); },
            [&](index_t i, index_t jj, double v) { qr(i, jj) = v; }, j);
    }
    for (index_t j = 0; j < nrhs; ++j) {
      apply([&](index_t i, index_t jj) { return rhs(i, jj); },
            [&](index_t i, index_t jj, double v) { rhs(i, jj) = v; }, j);
    }

    // Downdate remaining column norms.
    for (index_t j = k + 1; j < n; ++j) {
      colnorm2[j] -= qr(k, j) * qr(k, j);
      if (colnorm2[j] < 0.0) colnorm2[j] = 0.0;
    }
  }

  // Back substitution on the leading rank x rank triangle; truncated
  // coefficients are zero (basic solution).
  LstsqResult out;
  out.rank = rank;
  out.x = Matrix(n, nrhs);
  for (index_t j = 0; j < nrhs; ++j) {
    std::vector<double> y(rank, 0.0);
    for (index_t i = rank - 1; i >= 0; --i) {
      double s = rhs(i, j);
      for (index_t l = i + 1; l < rank; ++l) s -= qr(i, l) * y[l];
      y[i] = s / qr(i, i);
    }
    for (index_t i = 0; i < rank; ++i) out.x(perm[i], j) = y[i];
  }
  return out;
}

std::vector<double> singular_values(ConstMatrixView a, int max_sweeps) {
  // Work on the taller orientation so columns outnumber... rather: one-sided
  // Jacobi orthogonalizes columns; use the version with fewer columns.
  const bool transpose = a.cols() > a.rows();
  const index_t m = transpose ? a.cols() : a.rows();
  const index_t n = transpose ? a.rows() : a.cols();
  Matrix w(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      w(i, j) = transpose ? a(j, i) : a(i, j);
    }
  }

  const double eps = 1e-14;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (index_t p = 0; p < n - 1; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (index_t i = 0; i < m; ++i) {
          app += w(i, p) * w(i, p);
          aqq += w(i, q) * w(i, q);
          apq += w(i, p) * w(i, q);
        }
        if (std::abs(apq) <= eps * std::sqrt(app * aqq) || apq == 0.0) {
          continue;
        }
        converged = false;
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0)
                             ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                             : -1.0 / (-tau + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (index_t i = 0; i < m; ++i) {
          const double wp = w(i, p);
          const double wq = w(i, q);
          w(i, p) = c * wp - s * wq;
          w(i, q) = s * wp + c * wq;
        }
      }
    }
    if (converged) break;
  }

  std::vector<double> sv(n);
  for (index_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (index_t i = 0; i < m; ++i) s += w(i, j) * w(i, j);
    sv[j] = std::sqrt(s);
  }
  std::sort(sv.begin(), sv.end(), std::greater<>());
  return sv;
}

}  // namespace dlap
