#include "modeler/polynomial.hpp"

#include <algorithm>
#include <cmath>

namespace dlap {

namespace {
void gen_exponents(int dims, int remaining_degree, std::vector<int>& cur,
                   std::vector<std::vector<int>>& out) {
  if (static_cast<int>(cur.size()) == dims) {
    out.push_back(cur);
    return;
  }
  for (int e = 0; e <= remaining_degree; ++e) {
    cur.push_back(e);
    gen_exponents(dims, remaining_degree - e, cur, out);
    cur.pop_back();
  }
}
}  // namespace

std::vector<std::vector<int>> monomial_basis(int dims, int degree) {
  DLAP_REQUIRE(dims >= 1 && degree >= 0, "bad basis spec");
  std::vector<std::vector<int>> all;
  std::vector<int> cur;
  gen_exponents(dims, degree, cur, all);
  // Graded-lex: sort by total degree, then lexicographically.
  std::stable_sort(all.begin(), all.end(),
                   [](const std::vector<int>& a, const std::vector<int>& b) {
                     int ta = 0, tb = 0;
                     for (int e : a) ta += e;
                     for (int e : b) tb += e;
                     if (ta != tb) return ta < tb;
                     return a < b;
                   });
  return all;
}

index_t monomial_count(int dims, int degree) {
  // binom(dims + degree, degree)
  index_t num = 1, den = 1;
  for (int i = 1; i <= degree; ++i) {
    num *= dims + i;
    den *= i;
  }
  return num / den;
}

std::vector<double> Normalization::apply(const std::vector<double>& x) const {
  std::vector<double> z;
  apply_into(x, z);
  return z;
}

void Normalization::apply_into(const std::vector<double>& x,
                               std::vector<double>& z) const {
  DLAP_REQUIRE(x.size() == shift.size() && x.size() == scale.size(),
               "normalization dimension mismatch");
  z.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double s = (scale[i] != 0.0) ? scale[i] : 1.0;
    z[i] = (x[i] - shift[i]) / s;
  }
}

void evaluate_basis(const std::vector<std::vector<int>>& basis,
                    const std::vector<double>& z, std::vector<double>& out) {
  out.resize(basis.size());
  for (std::size_t m = 0; m < basis.size(); ++m) {
    double v = 1.0;
    for (std::size_t d = 0; d < basis[m].size(); ++d) {
      for (int e = 0; e < basis[m][d]; ++e) v *= z[d];
    }
    out[m] = v;
  }
}

Polynomial::Polynomial(int dims, int degree, Normalization norm,
                       std::vector<double> coeffs)
    : dims_(dims), degree_(degree), norm_(std::move(norm)),
      coeffs_(std::move(coeffs)) {
  DLAP_REQUIRE(static_cast<index_t>(coeffs_.size()) ==
                   monomial_count(dims, degree),
               "coefficient count does not match basis");
}

double Polynomial::evaluate(const std::vector<double>& x) const {
  const std::vector<double> z = norm_.apply(x);
  const auto basis = monomial_basis(dims_, degree_);
  std::vector<double> phi;
  evaluate_basis(basis, z, phi);
  double v = 0.0;
  for (std::size_t m = 0; m < phi.size(); ++m) v += coeffs_[m] * phi[m];
  return v;
}

VecPolynomial::VecPolynomial(int dims, int degree, Normalization norm,
                             std::vector<std::vector<double>> coeffs_per_stat)
    : dims_(dims), degree_(degree), norm_(std::move(norm)),
      ncoef_(static_cast<std::size_t>(monomial_count(dims, degree))),
      basis_(monomial_basis(dims, degree)) {
  DLAP_REQUIRE(coeffs_per_stat.size() == static_cast<std::size_t>(kStatCount),
               "need one coefficient vector per statistic");
  owned_.reserve(static_cast<std::size_t>(kStatCount) * ncoef_);
  for (const auto& c : coeffs_per_stat) {
    DLAP_REQUIRE(c.size() == ncoef_, "coefficient count does not match basis");
    owned_.insert(owned_.end(), c.begin(), c.end());
  }
  table_ = owned_.data();
}

VecPolynomial::VecPolynomial(int dims, int degree, Normalization norm,
                             const double* table, Borrow)
    : dims_(dims), degree_(degree), norm_(std::move(norm)), table_(table),
      ncoef_(static_cast<std::size_t>(monomial_count(dims, degree))),
      basis_(monomial_basis(dims, degree)) {
  DLAP_REQUIRE(table != nullptr, "borrowed coefficient table is null");
}

VecPolynomial::VecPolynomial(const VecPolynomial& other)
    : dims_(other.dims_), degree_(other.degree_), norm_(other.norm_),
      ncoef_(other.ncoef_), basis_(other.basis_) {
  // Copies always own: a borrowed table's lifetime contract is tied to
  // the original (whose owner pins the mapping), not to copies handed
  // around by value.
  if (other.table_ != nullptr) {
    owned_.assign(other.table_,
                  other.table_ + static_cast<std::size_t>(kStatCount) * ncoef_);
    table_ = owned_.data();
  }
}

VecPolynomial::VecPolynomial(VecPolynomial&& other) noexcept
    : dims_(other.dims_), degree_(other.degree_), norm_(std::move(other.norm_)),
      owned_(std::move(other.owned_)), table_(other.table_),
      ncoef_(other.ncoef_), basis_(std::move(other.basis_)) {
  // Moving a vector keeps its heap buffer address, so table_ stays valid
  // for the owned case and still points at the external storage for the
  // borrowed one.
  other.table_ = nullptr;
  other.ncoef_ = 0;
}

VecPolynomial& VecPolynomial::operator=(const VecPolynomial& other) {
  if (this != &other) *this = VecPolynomial(other);
  return *this;
}

VecPolynomial& VecPolynomial::operator=(VecPolynomial&& other) noexcept {
  if (this != &other) {
    dims_ = other.dims_;
    degree_ = other.degree_;
    norm_ = std::move(other.norm_);
    owned_ = std::move(other.owned_);
    table_ = other.table_;
    ncoef_ = other.ncoef_;
    basis_ = std::move(other.basis_);
    other.table_ = nullptr;
    other.ncoef_ = 0;
  }
  return *this;
}

SampleStats VecPolynomial::evaluate_into(const std::vector<double>& x,
                                         std::vector<double>& z,
                                         std::vector<double>& phi) const {
  norm_.apply_into(x, z);
  evaluate_basis(basis_, z, phi);
  SampleStats out;
  for (int s = 0; s < kStatCount; ++s) {
    double v = 0.0;
    const double* c = table_ + static_cast<std::size_t>(s) * ncoef_;
    for (std::size_t m = 0; m < phi.size(); ++m) v += c[m] * phi[m];
    out.set(static_cast<Stat>(s), std::max(0.0, v));
  }
  out.count = 0;  // model estimate, not a measurement
  return out;
}

SampleStats VecPolynomial::evaluate(const std::vector<double>& x) const {
  std::vector<double> z;
  std::vector<double> phi;
  return evaluate_into(x, z, phi);
}

void VecPolynomial::evaluate_many(
    const std::vector<const std::vector<double>*>& points,
    std::vector<SampleStats>& out) const {
  out.resize(points.size());
  std::vector<double> z;
  std::vector<double> phi;
  for (std::size_t i = 0; i < points.size(); ++i) {
    out[i] = evaluate_into(*points[i], z, phi);
  }
}

double VecPolynomial::evaluate_stat(Stat s,
                                    const std::vector<double>& x) const {
  const std::vector<double> z = norm_.apply(x);
  std::vector<double> phi;
  evaluate_basis(basis_, z, phi);
  double v = 0.0;
  const double* c = table_ + static_cast<std::size_t>(s) * ncoef_;
  for (std::size_t m = 0; m < phi.size(); ++m) v += c[m] * phi[m];
  return v;
}

}  // namespace dlap
