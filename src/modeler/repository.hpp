#pragma once
// Model repository (paper Sections I and V): models are generated once and
// "stored permanently in a repository" for later prediction runs. The
// repository is a directory of self-describing text files, one per
// (routine, backend, locality, flags) key.

#include <filesystem>
#include <string>
#include <vector>

#include "modeler/modeler.hpp"

namespace dlap {

class ModelRepository {
 public:
  /// Opens (and creates, if needed) the repository directory.
  explicit ModelRepository(std::filesystem::path dir);

  [[nodiscard]] const std::filesystem::path& directory() const {
    return dir_;
  }

  /// Writes the model to its key's file (overwriting an existing entry).
  void store(const RoutineModel& model) const;

  /// Loads a model; throws dlap::lookup_error if absent.
  [[nodiscard]] RoutineModel load(const ModelKey& key) const;

  [[nodiscard]] bool contains(const ModelKey& key) const;

  /// All keys currently stored.
  [[nodiscard]] std::vector<ModelKey> list() const;

  /// File name a key maps to (stable; part of the on-disk format).
  [[nodiscard]] static std::string filename(const ModelKey& key);

  /// Text (de)serialization, exposed for tests and tooling.
  [[nodiscard]] static std::string serialize(const RoutineModel& model);
  [[nodiscard]] static RoutineModel deserialize(const std::string& text);

 private:
  std::filesystem::path dir_;
};

}  // namespace dlap
