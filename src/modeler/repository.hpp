#pragma once
// Model repository (paper Sections I and V): models are generated once and
// "stored permanently in a repository" for later prediction runs. The
// repository is a directory of self-describing text files, one per
// (routine, backend, locality, flags) key, with an in-memory cache layered
// on top so repeated lookups (prediction runs evaluate the same models
// thousands of times) never touch the disk twice.
//
// Thread safety: all member functions may be called concurrently; the
// on-disk files are written atomically (temp file + rename), so concurrent
// writers of the same key serialize to "last store wins" and readers never
// observe a partial file.

#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "modeler/modeler.hpp"

namespace dlap {

namespace storage {
class ContainerReader;
}  // namespace storage

class ModelRepository {
 public:
  /// Opens (and creates, if needed) the repository directory. When the
  /// directory holds a binary container (storage::kContainerFilename,
  /// produced by compaction or `dlap_pack pack`), it is attached
  /// automatically and its models become visible behind the text files.
  explicit ModelRepository(std::filesystem::path dir);

  [[nodiscard]] const std::filesystem::path& directory() const {
    return dir_;
  }

  /// Attaches a binary container as a read-only lower layer: lookups
  /// consult the cache, then per-key text files, then the container, so a
  /// freshly stored text model always shadows the packed one. Pass
  /// nullptr to detach.
  void attach_container(
      std::shared_ptr<const storage::ContainerReader> reader);

  /// The attached container, if any (shared with the sample store).
  [[nodiscard]] std::shared_ptr<const storage::ContainerReader> container()
      const;

  /// Writes the model to its key's file (overwriting an existing entry)
  /// and refreshes the in-memory cache.
  void store(const RoutineModel& model);

  /// Loads a model; throws dlap::lookup_error if absent.
  [[nodiscard]] RoutineModel load(const ModelKey& key) const;

  /// Loads a model through the cache; the returned pointer is shared with
  /// the cache (and with every ModelSet viewing it), so repeated loads of
  /// one key cost a map lookup, not a parse. Throws dlap::lookup_error if
  /// absent.
  [[nodiscard]] std::shared_ptr<const RoutineModel> load_shared(
      const ModelKey& key) const;

  /// Like load_shared, but returns nullptr instead of throwing.
  [[nodiscard]] std::shared_ptr<const RoutineModel> find(
      const ModelKey& key) const;

  [[nodiscard]] bool contains(const ModelKey& key) const;

  /// All keys currently stored on disk (text files and the attached
  /// container, deduplicated), sorted by ModelKeyLess, so the listing is
  /// deterministic regardless of directory iteration order.
  [[nodiscard]] std::vector<ModelKey> list() const;

  /// Number of models currently held in the in-memory cache.
  [[nodiscard]] std::size_t cache_size() const;

  /// Drops the in-memory cache (subsequent loads re-read the disk).
  void invalidate_cache();

  /// File name a key maps to (stable; part of the on-disk format). Every
  /// component is escaped so that distinct keys always map to distinct
  /// file names, even for path-hostile backend specs or flag strings.
  [[nodiscard]] static std::string filename(const ModelKey& key);

  /// Text (de)serialization, exposed for tests and tooling. Parse errors
  /// name the offending source ("`source`:LINE: ...") -- pass the file
  /// path when deserializing a file so the message points at it.
  [[nodiscard]] static std::string serialize(const RoutineModel& model);
  [[nodiscard]] static RoutineModel deserialize(const std::string& text);
  [[nodiscard]] static RoutineModel deserialize(const std::string& text,
                                                const std::string& source);

 private:
  [[nodiscard]] std::shared_ptr<const RoutineModel> load_uncached(
      const ModelKey& key) const;
  [[nodiscard]] std::shared_ptr<const RoutineModel> load_from_container(
      const ModelKey& key) const;

  std::filesystem::path dir_;
  mutable std::mutex mutex_;
  mutable std::map<ModelKey, std::shared_ptr<const RoutineModel>> cache_;
  std::shared_ptr<const storage::ContainerReader> container_;
};

}  // namespace dlap
