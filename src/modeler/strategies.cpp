#include "modeler/strategies.hpp"

#include <cmath>
#include <set>

#include "modeler/polynomial.hpp"

namespace dlap {

index_t effective_grid_points(const GeneratorConfig& config, int dims) {
  const double monomials =
      static_cast<double>(monomial_count(dims, config.degree));
  // points_per_dim^dims >= 1.5 * monomials keeps the fit overdetermined.
  index_t needed = static_cast<index_t>(
      std::ceil(std::pow(1.5 * monomials, 1.0 / dims)));
  return std::max(config.grid_points_per_dim, needed);
}

std::optional<std::pair<FitResult, index_t>> GenerationStepper::try_fit(
    const Region& region) {
  DLAP_ASSERT(required_.empty());  // machines wait after a pending fit
  const std::vector<std::vector<index_t>> grid = region.sample_grid(
      effective_grid_points(config_, region.dims()), config_.granularity);

  // First pass: everything not yet cached becomes the next batch. The
  // grid is recomputed (deterministically) after the batch is supplied,
  // so no pending-fit state needs to survive in the machine.
  std::set<std::vector<index_t>> queued;
  for (const auto& p : grid) {
    if (cache_.find(p) == cache_.end() && queued.insert(p).second) {
      required_.push_back(p);
    }
  }
  if (!required_.empty()) return std::nullopt;

  // All points known: gather in grid order (duplicate grid points are
  // deliberately repeated -- they weigh the fit exactly as the original
  // synchronous gather did).
  std::vector<SamplePoint> samples;
  samples.reserve(grid.size());
  for (const auto& p : grid) samples.push_back({p, cache_.at(p)});
  return std::make_pair(fit_polynomial(region, samples, config_.degree),
                        static_cast<index_t>(samples.size()));
}

void GenerationStepper::supply(const std::vector<SampleStats>& stats) {
  DLAP_REQUIRE(!done_, "stepper: supply() after completion");
  DLAP_REQUIRE(stats.size() == required_.size(),
               "stepper: supplied statistics count does not match the "
               "required batch");
  for (std::size_t i = 0; i < stats.size(); ++i) {
    cache_.emplace(required_[i], stats[i]);
  }
  required_.clear();
  advance();
}

void GenerationStepper::finish() {
  result_.model = PiecewiseModel(domain_, std::move(pieces_));
  result_.unique_samples = static_cast<index_t>(cache_.size());
  result_.average_error = result_.model.average_error();
  done_ = true;
}

void GenerationStepper::advance() {
  run();
  DLAP_ASSERT(done_ || !required_.empty());
}

GenerationResult GenerationStepper::take_result() {
  DLAP_REQUIRE(done_, "stepper: take_result() before completion");
  result_.events = std::move(events_);
  return std::move(result_);
}

GenerationResult drive_stepper(GenerationStepper& stepper,
                               const MeasureFn& measure) {
  while (!stepper.done()) {
    const auto& batch = stepper.required();
    std::vector<SampleStats> stats;
    stats.reserve(batch.size());
    for (const auto& point : batch) stats.push_back(measure(point));
    stepper.supply(stats);
  }
  return stepper.take_result();
}

GenerationResult generate_model_expansion(const Region& domain,
                                          const MeasureFn& measure,
                                          const ExpansionConfig& config) {
  auto stepper = make_expansion_stepper(domain, config);
  return drive_stepper(*stepper, measure);
}

GenerationResult generate_adaptive_refinement(const Region& domain,
                                              const MeasureFn& measure,
                                              const RefinementConfig& config) {
  auto stepper = make_refinement_stepper(domain, config);
  return drive_stepper(*stepper, measure);
}

}  // namespace dlap
