#include "modeler/fit.hpp"

#include <algorithm>
#include <cmath>

#include "modeler/lstsq.hpp"

namespace dlap {

double relative_error(double estimate, double observed) {
  const double den = std::max(std::abs(observed), 1e-9);
  return std::abs(estimate - observed) / den;
}

namespace {

FitResult fit_polynomial_once(const Region& region,
                              const std::vector<SamplePoint>& samples,
                              int degree) {
  const int dims = region.dims();

  // Normalize inputs to roughly [-1, 1] over the region.
  Normalization norm;
  norm.shift.resize(dims);
  norm.scale.resize(dims);
  for (int d = 0; d < dims; ++d) {
    norm.shift[d] = 0.5 * static_cast<double>(region.lo(d) + region.hi(d));
    norm.scale[d] =
        std::max(0.5 * static_cast<double>(region.extent(d)), 1.0);
  }

  const auto basis = monomial_basis(dims, degree);
  const index_t ncoef = static_cast<index_t>(basis.size());
  const index_t npts = static_cast<index_t>(samples.size());

  // Shared design matrix; five right-hand sides (one per statistic).
  Matrix a(npts, ncoef);
  Matrix b(npts, kStatCount);
  std::vector<double> xr(dims), phi;
  for (index_t i = 0; i < npts; ++i) {
    for (int d = 0; d < dims; ++d) {
      xr[d] = static_cast<double>(samples[i].x[d]);
    }
    evaluate_basis(basis, norm.apply(xr), phi);
    for (index_t m = 0; m < ncoef; ++m) a(i, m) = phi[m];
    const auto vals = samples[i].stats.as_array();
    for (int s = 0; s < kStatCount; ++s) b(i, s) = vals[s];
  }

  const LstsqResult sol = lstsq(a.view(), b.view());

  std::vector<std::vector<double>> coeffs(kStatCount);
  for (int s = 0; s < kStatCount; ++s) {
    coeffs[s].resize(ncoef);
    for (index_t m = 0; m < ncoef; ++m) coeffs[s][m] = sol.x(m, s);
  }

  FitResult out;
  out.poly = VecPolynomial(dims, degree, norm, std::move(coeffs));
  out.rank = sol.rank;

  // Accuracy of the median fit across the fitted samples.
  double maxerr = 0.0;
  double sumerr = 0.0;
  for (const SamplePoint& sp : samples) {
    for (int d = 0; d < dims; ++d) xr[d] = static_cast<double>(sp.x[d]);
    const double est = out.poly.evaluate_stat(Stat::Median, xr);
    const double err = relative_error(est, sp.stats.median);
    maxerr = std::max(maxerr, err);
    sumerr += err;
  }
  out.erelmax = maxerr;
  out.mean_rel_error = sumerr / static_cast<double>(npts);
  return out;
}

// True when the fitted median is zero or negative at a sample whose
// observed median is positive -- a nonsense prediction for a runtime.
bool median_fit_degenerate(const FitResult& fit,
                           const std::vector<SamplePoint>& samples) {
  std::vector<double> xr;
  for (const SamplePoint& sp : samples) {
    if (sp.stats.median <= 0.0) continue;
    xr.assign(sp.x.begin(), sp.x.end());
    if (fit.poly.evaluate_stat(Stat::Median, xr) <= 0.0) return true;
  }
  return false;
}

}  // namespace

FitResult fit_polynomial(const Region& region,
                         const std::vector<SamplePoint>& samples,
                         int degree) {
  DLAP_REQUIRE(!samples.empty(), "fit: no samples");
  DLAP_REQUIRE(degree >= 0, "fit: negative degree");

  // High-degree fits of noisy measurements can swing below zero inside
  // the region even though every observation is positive; a model would
  // then predict zero ticks for real work. Fall back to lower degrees
  // until the median fit is positive at every (positive) sample -- the
  // degree-0 fit, the mean of positive medians, always is. The reported
  // erelmax of a fallback fit is typically above the strategies' error
  // bound, so inaccurate regions still get split or rejected as usual.
  FitResult fit = fit_polynomial_once(region, samples, degree);
  for (int d = degree - 1; d >= 0 && median_fit_degenerate(fit, samples);
       --d) {
    fit = fit_polynomial_once(region, samples, d);
  }
  return fit;
}

}  // namespace dlap
