#pragma once
// Axis-aligned rectangular regions of the integer parameter space.
//
// Bounds are inclusive on both ends: the paper's parameter spaces are
// ranges like [8, 1024] sampled at multiples of a granularity (8), and a
// region [8,550]x[8,1024] covers every parameter point within.

#include <string>
#include <vector>

#include "common/types.hpp"

namespace dlap {

class Region {
 public:
  Region() = default;
  Region(std::vector<index_t> lo, std::vector<index_t> hi);

  [[nodiscard]] int dims() const noexcept {
    return static_cast<int>(lo_.size());
  }
  [[nodiscard]] index_t lo(int d) const { return lo_.at(d); }
  [[nodiscard]] index_t hi(int d) const { return hi_.at(d); }
  [[nodiscard]] const std::vector<index_t>& lo() const noexcept { return lo_; }
  [[nodiscard]] const std::vector<index_t>& hi() const noexcept { return hi_; }

  [[nodiscard]] index_t extent(int d) const { return hi_.at(d) - lo_.at(d); }

  [[nodiscard]] bool contains(const std::vector<index_t>& p) const;
  /// Containment with real-valued points (used by model evaluation).
  [[nodiscard]] bool contains(const std::vector<double>& p) const;

  [[nodiscard]] bool intersects(const Region& other) const;

  /// True when `other` lies entirely within this region (a stored model
  /// whose domain covers a request's domain can serve it).
  [[nodiscard]] bool covers(const Region& other) const;

  /// Number of lattice points at the given granularity (diagnostics).
  [[nodiscard]] double volume() const;

  /// L-infinity distance from p to the region (0 when inside).
  [[nodiscard]] double distance(const std::vector<double>& p) const;

  /// Projects p onto the region: each coordinate clamped into [lo, hi]
  /// (the model-evaluation policy for points no region contains).
  [[nodiscard]] std::vector<double> clamp(const std::vector<double>& p) const;

  /// Center point (real-valued).
  [[nodiscard]] std::vector<double> center() const;

  /// Splits at the midpoint of every dimension whose extent is > min_size,
  /// midpoints snapped to multiples of `granularity`. Returns the child
  /// regions (1 << #split_dims of them; the region itself if none split).
  [[nodiscard]] std::vector<Region> split(index_t min_size,
                                          index_t granularity) const;

  /// Grid of `points_per_dim` coordinates per dimension, spanning the
  /// region inclusively, snapped to multiples of `granularity` (at least
  /// the two endpoints). Returns the cartesian product.
  [[nodiscard]] std::vector<std::vector<index_t>> sample_grid(
      index_t points_per_dim, index_t granularity) const;

  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool operator==(const Region& other) const {
    return lo_ == other.lo_ && hi_ == other.hi_;
  }

 private:
  std::vector<index_t> lo_;
  std::vector<index_t> hi_;
};

/// Snaps x to the nearest multiple of g within [lo, hi].
[[nodiscard]] index_t snap_to_grid(index_t x, index_t g, index_t lo,
                                   index_t hi);

}  // namespace dlap
