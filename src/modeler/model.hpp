#pragma once
// Piecewise performance models (paper Section III-B).
//
// A PiecewiseModel covers a rectangular parameter domain with regions, each
// carrying a vector-valued polynomial. Evaluation: find the region
// containing the query point (when several overlap, the most accurate one
// wins -- the paper's footnote 6), evaluate its polynomial, yielding
// estimates for every statistical quantity.

#include <vector>

#include "modeler/polynomial.hpp"
#include "modeler/region.hpp"
#include "sampler/stats.hpp"

namespace dlap {

struct RegionModel {
  Region region;
  VecPolynomial poly;
  double fit_error = 0.0;       ///< e_relmax of the median fit
  double mean_error = 0.0;      ///< mean relative error of the median fit
  index_t samples_used = 0;     ///< samples that contributed to the fit
};

class PiecewiseModel {
 public:
  PiecewiseModel() = default;
  PiecewiseModel(Region domain, std::vector<RegionModel> pieces);

  [[nodiscard]] const Region& domain() const { return domain_; }
  [[nodiscard]] const std::vector<RegionModel>& pieces() const {
    return pieces_;
  }
  [[nodiscard]] int dims() const { return domain_.dims(); }
  [[nodiscard]] bool empty() const { return pieces_.empty(); }

  /// Estimates all statistics at the given parameter point. Points inside
  /// the domain select the most accurate containing region; points outside
  /// any region (cracks between lattice-aligned regions, or outside the
  /// domain) are projected onto the nearest region before evaluation, so
  /// the model never extrapolates wildly.
  [[nodiscard]] SampleStats evaluate(const std::vector<double>& point) const;
  [[nodiscard]] SampleStats evaluate(const std::vector<index_t>& point) const;

  /// Sample-count-weighted average of the per-region mean relative errors
  /// (the "average error" axis of the paper's Fig III.8).
  [[nodiscard]] double average_error() const;

  /// Sum of per-region sample counts (counts shared samples once per
  /// region; the generator's unique-sample count is reported separately).
  [[nodiscard]] index_t total_samples() const;

 private:
  Region domain_;
  std::vector<RegionModel> pieces_;
};

}  // namespace dlap
