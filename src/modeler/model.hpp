#pragma once
// Piecewise performance models (paper Section III-B).
//
// A PiecewiseModel covers a rectangular parameter domain with regions, each
// carrying a vector-valued polynomial. Evaluation: find the region
// containing the query point (when several overlap, the most accurate one
// wins -- the paper's footnote 6), evaluate its polynomial, yielding
// estimates for every statistical quantity.
//
// Region selection runs through a lazily built per-axis interval grid (the
// "region index"): piece boundaries cut every axis into sorted cells, each
// cell precomputing its winning piece, so a lookup is one binary search
// per axis instead of a linear scan over all pieces. The index is built on
// first evaluate() and is semantically invisible -- results are
// bit-identical to the linear most-accurate-containing-region scan.

#include <atomic>
#include <vector>

#include "modeler/polynomial.hpp"
#include "modeler/region.hpp"
#include "sampler/stats.hpp"

namespace dlap {

struct RegionModel {
  Region region;
  VecPolynomial poly;
  double fit_error = 0.0;       ///< e_relmax of the median fit
  double mean_error = 0.0;      ///< mean relative error of the median fit
  index_t samples_used = 0;     ///< samples that contributed to the fit
};

class PiecewiseModel {
 public:
  PiecewiseModel() = default;
  PiecewiseModel(Region domain, std::vector<RegionModel> pieces);
  PiecewiseModel(const PiecewiseModel& other);
  PiecewiseModel(PiecewiseModel&& other) noexcept;
  PiecewiseModel& operator=(const PiecewiseModel& other);
  PiecewiseModel& operator=(PiecewiseModel&& other) noexcept;
  ~PiecewiseModel();

  [[nodiscard]] const Region& domain() const { return domain_; }
  [[nodiscard]] const std::vector<RegionModel>& pieces() const {
    return pieces_;
  }
  [[nodiscard]] int dims() const { return domain_.dims(); }
  [[nodiscard]] bool empty() const { return pieces_.empty(); }

  /// Estimates all statistics at the given parameter point. Points inside
  /// the domain select the most accurate containing region; points outside
  /// any region (cracks between lattice-aligned regions, or outside the
  /// domain) are projected onto the nearest region before evaluation, so
  /// the model never extrapolates wildly.
  [[nodiscard]] SampleStats evaluate(const std::vector<double>& point) const;
  [[nodiscard]] SampleStats evaluate(const std::vector<index_t>& point) const;

  /// Batched evaluation: out[i] bit-identical to evaluate(*points[i]).
  /// Points are grouped by winning region, so each region's polynomial is
  /// evaluated over its whole batch with shared scratch buffers (and the
  /// region index is consulted once per point, never rebuilt).
  void evaluate_many(const std::vector<const std::vector<double>*>& points,
                     std::vector<SampleStats>& out) const;

  /// Sample-count-weighted average of the per-region mean relative errors
  /// (the "average error" axis of the paper's Fig III.8).
  [[nodiscard]] double average_error() const;

  /// Sum of per-region sample counts (counts shared samples once per
  /// region; the generator's unique-sample count is reported separately).
  [[nodiscard]] index_t total_samples() const;

 private:
  struct RegionIndex;  // defined in model.cpp

  /// The lazily built index (thread-safe: losers of the build race delete
  /// their copy and use the winner's).
  [[nodiscard]] const RegionIndex& index() const;

  /// Most accurate piece containing `point`, or nullptr when none does
  /// (the caller then projects onto the nearest piece). Consults the
  /// region index for in-grid lattice points and falls back to the
  /// reference linear scan otherwise -- identical results either way.
  [[nodiscard]] const RegionModel* containing_piece(
      const std::vector<double>& point) const;

  /// Reference path: linear most-accurate-containing-region scan.
  [[nodiscard]] const RegionModel* containing_piece_linear(
      const std::vector<double>& point) const;

  /// Projection fallback for uncontained points: nearest piece + clamped
  /// evaluation point.
  [[nodiscard]] SampleStats evaluate_projected(
      const std::vector<double>& point) const;

  Region domain_;
  std::vector<RegionModel> pieces_;
  // Owned index, built on first evaluate. Copies/moves reset it (it holds
  // raw piece indices, cheap to rebuild).
  mutable std::atomic<const RegionIndex*> index_{nullptr};
};

}  // namespace dlap
