// Model Expansion (paper III-C1) as an incremental step machine.
//
// The synchronous algorithm is two nested loops (cover boxes; grow the
// current region dimension by dimension); the machine flattens them into
// an explicit phase + cursor so it can suspend at any fit whose sample
// grid is not fully known yet, emit that grid as a batch, and resume at
// exactly the same fit after supply(). The sequence of fits -- and hence
// the produced model, events and sample accounting -- is identical to
// the historical synchronous implementation.

#include <algorithm>
#include <deque>

#include "modeler/strategies.hpp"

namespace dlap {

namespace {

index_t snap_down(index_t x, index_t g) { return (x / g) * g; }

class ExpansionStepper final : public GenerationStepper {
 public:
  ExpansionStepper(const Region& domain, const ExpansionConfig& config)
      : GenerationStepper(config.base, domain),
        away_(config.direction ==
              ExpansionConfig::Direction::AwayFromOrigin),
        sini_(std::max(config.base.granularity,
                       snap_down(config.initial_size,
                                 config.base.granularity))) {
    boxes_.push_back(domain);
  }

 private:
  enum class Phase {
    NextBox,  ///< pop the next uncovered box and seed a region in it
    SeedFit,  ///< fitting the freshly seeded region
    Grow,     ///< growing the region dimension by dimension
  };

  void run() override {
    const GeneratorConfig& base = generator_config();
    const int dims = domain().dims();
    const index_t g = base.granularity;

    for (;;) {
      switch (phase_) {
        case Phase::NextBox: {
          if (boxes_.empty()) {
            finish();
            return;
          }
          box_ = boxes_.front();
          boxes_.pop_front();

          // Seed the region at the box's anchor corner, extent ~ s_ini.
          std::vector<index_t> rlo(dims), rhi(dims);
          for (int d = 0; d < dims; ++d) {
            const index_t span = std::min(sini_, box_.extent(d));
            if (away_) {
              rlo[d] = box_.lo(d);
              rhi[d] = box_.lo(d) + span;
            } else {
              rhi[d] = box_.hi(d);
              rlo[d] = box_.hi(d) - span;
            }
          }
          region_ = Region(rlo, rhi);
          active_.assign(static_cast<std::size_t>(dims), true);
          phase_ = Phase::SeedFit;
          break;
        }

        case Phase::SeedFit: {
          auto fitted = try_fit(region_);
          if (!fitted) return;
          fit_ = std::move(fitted->first);
          used_ = fitted->second;
          push_event(GenerationEvent::Kind::NewRegion, region_,
                     fit_.erelmax);

          // Growth is bounded by the *domain* (not the box), so regions
          // may overlap previously covered territory -- the paper's
          // overlapping regions (Fig III.6) arise the same way.
          for (int d = 0; d < dims; ++d) {
            if (at_domain_edge(d)) active_[static_cast<std::size_t>(d)] =
                false;
          }
          pass_d_ = dims;  // start at a pass boundary
          phase_ = Phase::Grow;
          break;
        }

        case Phase::Grow: {
          if (pass_d_ >= dims) {
            // Pass boundary: the synchronous loop's `while (any active)`.
            if (std::none_of(active_.begin(), active_.end(),
                             [](bool a) { return a; })) {
              finalize_region(g, dims);
              phase_ = Phase::NextBox;
              break;
            }
            pass_d_ = 0;
            break;
          }
          if (!active_[static_cast<std::size_t>(pass_d_)]) {
            ++pass_d_;
            break;
          }

          // Double the extent along pass_d_ (at least one lattice step).
          const index_t grow =
              std::max(g, snap_down(region_.extent(pass_d_), g));
          std::vector<index_t> nlo = region_.lo();
          std::vector<index_t> nhi = region_.hi();
          if (away_) {
            nhi[pass_d_] = std::min(domain().hi(pass_d_),
                                    nhi[pass_d_] + grow);
          } else {
            nlo[pass_d_] = std::max(domain().lo(pass_d_),
                                    nlo[pass_d_] - grow);
          }
          const Region candidate(nlo, nhi);
          auto fitted = try_fit(candidate);
          if (!fitted) return;
          if (fitted->first.erelmax <= base.error_bound) {
            region_ = candidate;
            fit_ = std::move(fitted->first);
            used_ = fitted->second;
            push_event(GenerationEvent::Kind::Expanded, region_,
                       fit_.erelmax);
            if (at_domain_edge(pass_d_)) {
              active_[static_cast<std::size_t>(pass_d_)] = false;
            }
          } else {
            push_event(GenerationEvent::Kind::Rejected, candidate,
                       fitted->first.erelmax);
            active_[static_cast<std::size_t>(pass_d_)] = false;
          }
          ++pass_d_;
          break;
        }
      }
    }
  }

  [[nodiscard]] bool at_domain_edge(int d) const {
    return away_ ? (region_.hi(d) >= domain().hi(d))
                 : (region_.lo(d) <= domain().lo(d));
  }

  void finalize_region(index_t g, int dims) {
    add_piece({region_, fit_.poly, fit_.erelmax, fit_.mean_rel_error,
               used_});
    push_event(GenerationEvent::Kind::Finalized, region_, fit_.erelmax);

    // Guillotine remainder of the box beyond the accepted region: one
    // staircase strip per dimension keeps the strips disjoint.
    const Region& r = region_;
    for (int d = 0; d < dims; ++d) {
      std::vector<index_t> slo(dims), shi(dims);
      bool empty = false;
      for (int e = 0; e < dims; ++e) {
        if (e == d) {
          if (away_) {
            if (r.hi(d) >= box_.hi(d)) { empty = true; break; }
            slo[e] = r.hi(d) + g;
            shi[e] = box_.hi(d);
          } else {
            if (r.lo(d) <= box_.lo(d)) { empty = true; break; }
            slo[e] = box_.lo(d);
            shi[e] = r.lo(d) - g;
          }
          if (slo[e] > shi[e]) { empty = true; break; }
        } else if (e < d) {
          // Dimensions already handled by earlier strips: restrict to
          // the region's footprint.
          slo[e] = std::max(box_.lo(e), r.lo(e));
          shi[e] = std::min(box_.hi(e), r.hi(e));
          if (slo[e] > shi[e]) { empty = true; break; }
        } else {
          slo[e] = box_.lo(e);
          shi[e] = box_.hi(e);
        }
      }
      if (!empty) boxes_.emplace_back(slo, shi);
    }
  }

  bool away_ = false;
  index_t sini_ = 0;

  std::deque<Region> boxes_;
  Phase phase_ = Phase::NextBox;

  // State of the region currently being grown.
  Region box_;
  Region region_;
  std::vector<bool> active_;
  FitResult fit_;
  index_t used_ = 0;
  int pass_d_ = 0;
};

}  // namespace

std::unique_ptr<GenerationStepper> make_expansion_stepper(
    const Region& domain, const ExpansionConfig& config) {
  DLAP_REQUIRE(config.base.error_bound > 0.0,
               "expansion: error bound must be > 0");
  DLAP_REQUIRE(config.initial_size >= config.base.granularity,
               "expansion: initial size below granularity");
  auto stepper = std::unique_ptr<ExpansionStepper>(
      new ExpansionStepper(domain, config));
  stepper->start();
  return stepper;
}

}  // namespace dlap
