#include <algorithm>
#include <deque>

#include "modeler/fit.hpp"
#include "modeler/sample_cache.hpp"
#include "modeler/strategies.hpp"

namespace dlap {

namespace {

// Expansion bookkeeping for one region being grown inside a cover box.
// With Direction::AwayFromOrigin the region is anchored at the box's low
// corner and its high bound moves; TowardOrigin mirrors this.
struct GrowState {
  Region box;      // the part of the domain this region must help cover
  Region region;   // current accepted extent
  std::vector<bool> active;  // dimension can still be grown
};

index_t snap_down(index_t x, index_t g) { return (x / g) * g; }

}  // namespace

GenerationResult generate_model_expansion(const Region& domain,
                                          const MeasureFn& measure,
                                          const ExpansionConfig& config) {
  const GeneratorConfig& base = config.base;
  DLAP_REQUIRE(base.error_bound > 0.0, "expansion: error bound must be > 0");
  DLAP_REQUIRE(config.initial_size >= base.granularity,
               "expansion: initial size below granularity");
  const int dims = domain.dims();
  const index_t g = base.granularity;
  const bool away = config.direction == ExpansionConfig::Direction::AwayFromOrigin;

  SampleCache cache(measure);
  GenerationResult result;
  std::vector<RegionModel> pieces;

  // Queue of uncovered boxes; start with the whole domain.
  std::deque<Region> boxes;
  boxes.push_back(domain);

  // s_ini snapped to the lattice.
  const index_t sini = std::max(g, snap_down(config.initial_size, g));

  while (!boxes.empty()) {
    const Region box = boxes.front();
    boxes.pop_front();

    // Seed the region at the box's anchor corner with extent ~ s_ini.
    std::vector<index_t> rlo(dims), rhi(dims);
    for (int d = 0; d < dims; ++d) {
      const index_t span = std::min(sini, box.extent(d));
      if (away) {
        rlo[d] = box.lo(d);
        rhi[d] = box.lo(d) + span;
      } else {
        rhi[d] = box.hi(d);
        rlo[d] = box.hi(d) - span;
      }
    }
    GrowState st{box, Region(rlo, rhi),
                 std::vector<bool>(static_cast<std::size_t>(dims), true)};

    auto fit_region = [&](const Region& r) {
      const auto samples = cache.gather(
          r.sample_grid(effective_grid_points(base, r.dims()), g));
      return std::pair<FitResult, index_t>(
          fit_polynomial(r, samples, base.degree),
          static_cast<index_t>(samples.size()));
    };

    auto [fit, used] = fit_region(st.region);
    result.events.push_back({GenerationEvent::Kind::NewRegion, st.region,
                             fit.erelmax, cache.unique_samples()});

    // Growth is bounded by the *domain* (not the box), so regions may
    // overlap previously covered territory -- the paper's overlapping
    // regions (Fig III.6) arise the same way.
    for (int d = 0; d < dims; ++d) {
      const bool at_edge = away ? (st.region.hi(d) >= domain.hi(d))
                                : (st.region.lo(d) <= domain.lo(d));
      if (at_edge) st.active[d] = false;
    }

    while (std::any_of(st.active.begin(), st.active.end(),
                       [](bool a) { return a; })) {
      for (int d = 0; d < dims; ++d) {
        if (!st.active[d]) continue;
        // Double the extent along d (at least one lattice step).
        const index_t grow = std::max(g, snap_down(st.region.extent(d), g));
        std::vector<index_t> nlo = st.region.lo();
        std::vector<index_t> nhi = st.region.hi();
        if (away) {
          nhi[d] = std::min(domain.hi(d), nhi[d] + grow);
        } else {
          nlo[d] = std::max(domain.lo(d), nlo[d] - grow);
        }
        Region candidate(nlo, nhi);
        auto [cfit, cused] = fit_region(candidate);
        if (cfit.erelmax <= base.error_bound) {
          st.region = candidate;
          fit = std::move(cfit);
          used = cused;
          result.events.push_back({GenerationEvent::Kind::Expanded,
                                   st.region, fit.erelmax,
                                   cache.unique_samples()});
          const bool at_edge = away ? (st.region.hi(d) >= domain.hi(d))
                                    : (st.region.lo(d) <= domain.lo(d));
          if (at_edge) st.active[d] = false;
        } else {
          result.events.push_back({GenerationEvent::Kind::Rejected, candidate,
                                   cfit.erelmax, cache.unique_samples()});
          st.active[d] = false;
        }
      }
    }

    pieces.push_back({st.region, fit.poly, fit.erelmax, fit.mean_rel_error,
                      used});
    result.events.push_back({GenerationEvent::Kind::Finalized, st.region,
                             fit.erelmax, cache.unique_samples()});

    // Guillotine remainder of the box beyond the accepted region: one
    // staircase strip per dimension keeps the strips disjoint.
    const Region& r = st.region;
    for (int d = 0; d < dims; ++d) {
      std::vector<index_t> slo(dims), shi(dims);
      bool empty = false;
      for (int e = 0; e < dims; ++e) {
        if (e == d) {
          if (away) {
            if (r.hi(d) >= box.hi(d)) { empty = true; break; }
            slo[e] = r.hi(d) + g;
            shi[e] = box.hi(d);
          } else {
            if (r.lo(d) <= box.lo(d)) { empty = true; break; }
            slo[e] = box.lo(d);
            shi[e] = r.lo(d) - g;
          }
          if (slo[e] > shi[e]) { empty = true; break; }
        } else if (e < d) {
          // Dimensions already handled by earlier strips: restrict to the
          // region's footprint.
          slo[e] = std::max(box.lo(e), r.lo(e));
          shi[e] = std::min(box.hi(e), r.hi(e));
          if (slo[e] > shi[e]) { empty = true; break; }
        } else {
          slo[e] = box.lo(e);
          shi[e] = box.hi(e);
        }
      }
      if (!empty) boxes.emplace_back(slo, shi);
    }
  }

  result.model = PiecewiseModel(domain, std::move(pieces));
  result.unique_samples = cache.unique_samples();
  result.average_error = result.model.average_error();
  return result;
}

}  // namespace dlap
