#pragma once
// The two model-generation strategies (paper Sections III-C1 and III-C2).
//
// Both strategies consume measurements through a MeasureFn (decoupling
// them from the Sampler so they can be unit-tested against synthetic cost
// functions) and produce a PiecewiseModel plus generation diagnostics.
// Measurements are cached by parameter point, so "number of samples" means
// distinct sampled points, as in the paper's sample accounting.

#include <functional>
#include <vector>

#include "modeler/model.hpp"
#include "modeler/region.hpp"
#include "sampler/stats.hpp"

namespace dlap {

/// Measurement source: parameter point -> statistics.
using MeasureFn = std::function<SampleStats(const std::vector<index_t>&)>;

/// Options shared by both strategies.
struct GeneratorConfig {
  /// Relative error bound epsilon on the median fit.
  double error_bound = 0.10;
  /// Sample coordinates are snapped to multiples of this (the paper
  /// samples multiples of 8 to dodge small-scale fluctuation).
  index_t granularity = 8;
  /// Total degree of the region polynomials.
  int degree = 3;
  /// Sample-grid resolution per dimension when fitting a region.
  index_t grid_points_per_dim = 4;
};

/// Grid resolution actually used for a `dims`-dimensional region: at least
/// the configured resolution, raised so the grid strictly overdetermines
/// the polynomial (otherwise a 1-D cubic would *interpolate* a 4-point
/// grid and every fit would look perfect).
[[nodiscard]] index_t effective_grid_points(const GeneratorConfig& config,
                                            int dims);

/// Model Expansion (paper III-C1): grow regions from a corner while the
/// fit error stays below the bound; cover the rest with adjacent regions.
struct ExpansionConfig {
  GeneratorConfig base;
  /// Expansion direction: AwayFromOrigin grows from the low corner toward
  /// high coordinates (the paper's NE arrow); TowardOrigin grows from the
  /// high corner toward the origin (SW arrow; the paper found this
  /// preferable).
  enum class Direction { AwayFromOrigin, TowardOrigin };
  Direction direction = Direction::TowardOrigin;
  /// Initial edge length of new regions (s_ini).
  index_t initial_size = 64;
};

/// Adaptive Refinement (paper III-C2): start from one region spanning the
/// domain; recursively split regions whose fit error exceeds the bound,
/// until accurate or at the minimum region size (s_min).
struct RefinementConfig {
  GeneratorConfig base;
  /// Minimum region edge length (s_min); regions too small to split are
  /// accepted even when inaccurate, as in the paper.
  index_t min_region_size = 32;
};

/// One step of the construction, for the Fig III.4 / III.5 walk-throughs.
struct GenerationEvent {
  enum class Kind {
    NewRegion,   ///< a region was seeded
    Expanded,    ///< expansion accepted a grown extent
    Rejected,    ///< expansion attempt exceeded the error bound
    Finalized,   ///< region fixed and added to the model
    Split,       ///< refinement subdivided a region
  };
  Kind kind = Kind::NewRegion;
  Region region;
  double error = 0.0;
  index_t samples_so_far = 0;
};

struct GenerationResult {
  PiecewiseModel model;
  /// Distinct parameter points measured.
  index_t unique_samples = 0;
  /// Sample-weighted average of per-region mean relative errors.
  double average_error = 0.0;
  std::vector<GenerationEvent> events;
};

[[nodiscard]] GenerationResult generate_model_expansion(
    const Region& domain, const MeasureFn& measure,
    const ExpansionConfig& config);

[[nodiscard]] GenerationResult generate_adaptive_refinement(
    const Region& domain, const MeasureFn& measure,
    const RefinementConfig& config);

}  // namespace dlap
