#pragma once
// The two model-generation strategies (paper Sections III-C1 and III-C2),
// written as incremental *step machines*.
//
// A GenerationStepper never measures anything itself: it declares the
// batch of parameter points it needs next (a region's whole sample grid
// at once, minus points it has already seen), the caller fulfills the
// batch -- sequentially, fanned out over a thread pool, or straight from
// a persistent sample repository -- and supplies the statistics back.
// Points are cached by parameter point inside the machine, so "number of
// samples" means distinct sampled points per run, as in the paper's
// Fig III.8 sample accounting, regardless of how batches are fulfilled.
//
// The classic blocking entry points (generate_model_expansion,
// generate_adaptive_refinement) remain as thin drivers over the steppers
// and produce identical results: with a deterministic measurement source
// every fulfillment order yields bit-identical models.

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "modeler/fit.hpp"
#include "modeler/model.hpp"
#include "modeler/region.hpp"
#include "sampler/stats.hpp"

namespace dlap {

/// Measurement source: parameter point -> statistics.
using MeasureFn = std::function<SampleStats(const std::vector<index_t>&)>;

/// Options shared by both strategies.
struct GeneratorConfig {
  /// Relative error bound epsilon on the median fit.
  double error_bound = 0.10;
  /// Sample coordinates are snapped to multiples of this (the paper
  /// samples multiples of 8 to dodge small-scale fluctuation).
  index_t granularity = 8;
  /// Total degree of the region polynomials.
  int degree = 3;
  /// Sample-grid resolution per dimension when fitting a region.
  index_t grid_points_per_dim = 4;
};

/// Grid resolution actually used for a `dims`-dimensional region: at least
/// the configured resolution, raised so the grid strictly overdetermines
/// the polynomial (otherwise a 1-D cubic would *interpolate* a 4-point
/// grid and every fit would look perfect).
[[nodiscard]] index_t effective_grid_points(const GeneratorConfig& config,
                                            int dims);

/// Model Expansion (paper III-C1): grow regions from a corner while the
/// fit error stays below the bound; cover the rest with adjacent regions.
struct ExpansionConfig {
  GeneratorConfig base;
  /// Expansion direction: AwayFromOrigin grows from the low corner toward
  /// high coordinates (the paper's NE arrow); TowardOrigin grows from the
  /// high corner toward the origin (SW arrow; the paper found this
  /// preferable).
  enum class Direction { AwayFromOrigin, TowardOrigin };
  Direction direction = Direction::TowardOrigin;
  /// Initial edge length of new regions (s_ini).
  index_t initial_size = 64;
};

/// Adaptive Refinement (paper III-C2): start from one region spanning the
/// domain; recursively split regions whose fit error exceeds the bound,
/// until accurate or at the minimum region size (s_min).
struct RefinementConfig {
  GeneratorConfig base;
  /// Minimum region edge length (s_min); regions too small to split are
  /// accepted even when inaccurate, as in the paper.
  index_t min_region_size = 32;
};

/// One step of the construction, for the Fig III.4 / III.5 walk-throughs.
struct GenerationEvent {
  enum class Kind {
    NewRegion,   ///< a region was seeded
    Expanded,    ///< expansion accepted a grown extent
    Rejected,    ///< expansion attempt exceeded the error bound
    Finalized,   ///< region fixed and added to the model
    Split,       ///< refinement subdivided a region
  };
  Kind kind = Kind::NewRegion;
  Region region;
  double error = 0.0;
  index_t samples_so_far = 0;
};

struct GenerationResult {
  PiecewiseModel model;
  /// Distinct parameter points measured.
  index_t unique_samples = 0;
  /// Sample-weighted average of per-region mean relative errors.
  double average_error = 0.0;
  std::vector<GenerationEvent> events;
};

/// Incremental generation machine. Protocol:
///
///   auto stepper = make_refinement_stepper(domain, config);
///   while (!stepper->done()) {
///     stats = <fulfill stepper->required() however you like>;
///     stepper->supply(stats);            // advances to the next batch
///   }
///   GenerationResult result = stepper->take_result();
///
/// required() lists distinct points never requested before (each run
/// requests every point exactly once), in deterministic order; events()
/// grows as the construction proceeds, so drivers can stream progress.
/// Steppers are single-threaded state machines: calls on one instance
/// must not race (the fulfillment of a batch may of course be parallel).
class GenerationStepper {
 public:
  virtual ~GenerationStepper() = default;

  GenerationStepper(const GenerationStepper&) = delete;
  GenerationStepper& operator=(const GenerationStepper&) = delete;

  [[nodiscard]] bool done() const noexcept { return done_; }

  /// The batch of points to fulfill before the next step. Non-empty
  /// exactly while !done().
  [[nodiscard]] const std::vector<std::vector<index_t>>& required()
      const noexcept {
    return required_;
  }

  /// Construction events so far (grows step by step; the final result
  /// carries the complete list, and each event's samples_so_far is the
  /// per-run distinct-sample count at that step).
  [[nodiscard]] const std::vector<GenerationEvent>& events() const noexcept {
    return events_;
  }

  /// Supplies statistics for required(), in the same order, and advances
  /// the machine until it needs another batch or completes.
  void supply(const std::vector<SampleStats>& stats);

  /// The finished result; requires done(). Leaves the machine empty.
  [[nodiscard]] GenerationResult take_result();

  /// Runs the machine up to its first batch (or completion). Called once
  /// by the factory functions; further calls are no-ops.
  void start() {
    if (started_) return;
    started_ = true;
    advance();
  }

 protected:
  GenerationStepper(GeneratorConfig config, Region domain)
      : config_(config), domain_(std::move(domain)) {}

  /// Advances until required_ is populated or the construction finishes.
  /// Called once by the factory after construction and after each
  /// supply(). Implementations call try_fit and return immediately when
  /// it reports missing points.
  virtual void run() = 0;

  /// Attempts to fit `region` over its sample grid. When every grid point
  /// is cached, returns the fit plus the number of samples used (grid
  /// points, duplicates included -- the historical accounting). Otherwise
  /// records the missing points in required_ and returns nullopt; run()
  /// must then return and wait for supply().
  [[nodiscard]] std::optional<std::pair<FitResult, index_t>> try_fit(
      const Region& region);

  void push_event(GenerationEvent::Kind kind, const Region& region,
                  double error) {
    events_.push_back({kind, region, error,
                       static_cast<index_t>(cache_.size())});
  }

  void add_piece(RegionModel piece) { pieces_.push_back(std::move(piece)); }

  /// Assembles the final model; the machine is done afterwards.
  void finish();

  /// Drives run() and flags completion; used by factories and supply().
  void advance();

  [[nodiscard]] const Region& domain() const noexcept { return domain_; }
  [[nodiscard]] const GeneratorConfig& generator_config() const noexcept {
    return config_;
  }

 private:
  GeneratorConfig config_;
  Region domain_;
  std::map<std::vector<index_t>, SampleStats> cache_;
  std::vector<std::vector<index_t>> required_;
  std::vector<GenerationEvent> events_;
  std::vector<RegionModel> pieces_;
  GenerationResult result_;
  bool started_ = false;
  bool done_ = false;
};

/// Step-machine constructors (config is validated here; the blocking
/// functions below delegate to these).
[[nodiscard]] std::unique_ptr<GenerationStepper> make_expansion_stepper(
    const Region& domain, const ExpansionConfig& config);
[[nodiscard]] std::unique_ptr<GenerationStepper> make_refinement_stepper(
    const Region& domain, const RefinementConfig& config);

/// Drives a stepper to completion with a synchronous point-by-point
/// measurement source (the reference fulfillment).
[[nodiscard]] GenerationResult drive_stepper(GenerationStepper& stepper,
                                             const MeasureFn& measure);

[[nodiscard]] GenerationResult generate_model_expansion(
    const Region& domain, const MeasureFn& measure,
    const ExpansionConfig& config);

[[nodiscard]] GenerationResult generate_adaptive_refinement(
    const Region& domain, const MeasureFn& measure,
    const RefinementConfig& config);

}  // namespace dlap
