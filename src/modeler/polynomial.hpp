#pragma once
// Multivariate polynomials over the integer parameter spaces of routine
// arguments (paper Section III-B): each model region carries one
// vector-valued polynomial -- one scalar polynomial per statistical
// quantity, all sharing the same monomial basis and normalization.

#include <vector>

#include "sampler/stats.hpp"
#include "common/types.hpp"

namespace dlap {

/// Exponent tuples of all monomials in `dims` variables with total degree
/// <= degree, in graded-lexicographic order (constant term first). The
/// basis order is part of the serialization contract.
[[nodiscard]] std::vector<std::vector<int>> monomial_basis(int dims,
                                                           int degree);

/// Number of monomials in that basis: binom(dims + degree, degree).
[[nodiscard]] index_t monomial_count(int dims, int degree);

/// Affine input normalization z_i = (x_i - shift_i) / scale_i applied
/// before monomial evaluation; keeps design matrices well conditioned for
/// parameter values up to thousands.
struct Normalization {
  std::vector<double> shift;
  std::vector<double> scale;

  [[nodiscard]] std::vector<double> apply(
      const std::vector<double>& x) const;

  /// apply() into caller-provided scratch (the hot evaluation path); the
  /// one implementation both share, so fit-time and predict-time
  /// normalization can never drift apart.
  void apply_into(const std::vector<double>& x, std::vector<double>& z) const;
};

/// Scalar polynomial: basis metadata plus one coefficient per monomial.
class Polynomial {
 public:
  Polynomial() = default;
  Polynomial(int dims, int degree, Normalization norm,
             std::vector<double> coeffs);

  [[nodiscard]] int dims() const noexcept { return dims_; }
  [[nodiscard]] int degree() const noexcept { return degree_; }
  [[nodiscard]] const Normalization& normalization() const noexcept {
    return norm_;
  }
  [[nodiscard]] const std::vector<double>& coefficients() const noexcept {
    return coeffs_;
  }

  [[nodiscard]] double evaluate(const std::vector<double>& x) const;

 private:
  int dims_ = 0;
  int degree_ = 0;
  Normalization norm_;
  std::vector<double> coeffs_;
};

/// Vector-valued polynomial: one scalar polynomial per Stat, sharing basis
/// and normalization (stored as a coefficient matrix). The monomial basis
/// is computed once at construction, so evaluation is normalization +
/// basis products + dot products only -- this class sits on the predict
/// hot path.
class VecPolynomial {
 public:
  VecPolynomial() = default;
  VecPolynomial(int dims, int degree, Normalization norm,
                std::vector<std::vector<double>> coeffs_per_stat);

  [[nodiscard]] int dims() const noexcept { return dims_; }
  [[nodiscard]] int degree() const noexcept { return degree_; }
  [[nodiscard]] const Normalization& normalization() const noexcept {
    return norm_;
  }
  [[nodiscard]] const std::vector<double>& coefficients(Stat s) const {
    return coeffs_[static_cast<std::size_t>(s)];
  }

  /// Evaluates every statistic at x. Statistics that must be nonnegative
  /// (all of ours: tick summaries) are clamped at 0.
  [[nodiscard]] SampleStats evaluate(const std::vector<double>& x) const;

  /// Batched evaluation: one SampleStats per point, out[i] bit-identical
  /// to evaluate(*points[i]). The normalization/basis scratch buffers are
  /// allocated once for the whole batch instead of per point.
  void evaluate_many(const std::vector<const std::vector<double>*>& points,
                     std::vector<SampleStats>& out) const;

  /// Evaluates a single statistic (no clamping).
  [[nodiscard]] double evaluate_stat(Stat s,
                                     const std::vector<double>& x) const;

 private:
  /// Shared per-point kernel of evaluate / evaluate_many: z and phi are
  /// caller-provided scratch, resized as needed.
  [[nodiscard]] SampleStats evaluate_into(const std::vector<double>& x,
                                          std::vector<double>& z,
                                          std::vector<double>& phi) const;

  int dims_ = 0;
  int degree_ = 0;
  Normalization norm_;
  std::vector<std::vector<double>> coeffs_;  // [stat][monomial]
  std::vector<std::vector<int>> basis_;      // cached monomial exponents
};

/// Evaluates the monomial basis at normalized point z (helper shared by
/// evaluation and design-matrix assembly).
void evaluate_basis(const std::vector<std::vector<int>>& basis,
                    const std::vector<double>& z, std::vector<double>& out);

}  // namespace dlap
