#pragma once
// Multivariate polynomials over the integer parameter spaces of routine
// arguments (paper Section III-B): each model region carries one
// vector-valued polynomial -- one scalar polynomial per statistical
// quantity, all sharing the same monomial basis and normalization.

#include <span>
#include <vector>

#include "sampler/stats.hpp"
#include "common/types.hpp"

namespace dlap {

/// Exponent tuples of all monomials in `dims` variables with total degree
/// <= degree, in graded-lexicographic order (constant term first). The
/// basis order is part of the serialization contract.
[[nodiscard]] std::vector<std::vector<int>> monomial_basis(int dims,
                                                           int degree);

/// Number of monomials in that basis: binom(dims + degree, degree).
[[nodiscard]] index_t monomial_count(int dims, int degree);

/// Affine input normalization z_i = (x_i - shift_i) / scale_i applied
/// before monomial evaluation; keeps design matrices well conditioned for
/// parameter values up to thousands.
struct Normalization {
  std::vector<double> shift;
  std::vector<double> scale;

  [[nodiscard]] std::vector<double> apply(
      const std::vector<double>& x) const;

  /// apply() into caller-provided scratch (the hot evaluation path); the
  /// one implementation both share, so fit-time and predict-time
  /// normalization can never drift apart.
  void apply_into(const std::vector<double>& x, std::vector<double>& z) const;
};

/// Scalar polynomial: basis metadata plus one coefficient per monomial.
class Polynomial {
 public:
  Polynomial() = default;
  Polynomial(int dims, int degree, Normalization norm,
             std::vector<double> coeffs);

  [[nodiscard]] int dims() const noexcept { return dims_; }
  [[nodiscard]] int degree() const noexcept { return degree_; }
  [[nodiscard]] const Normalization& normalization() const noexcept {
    return norm_;
  }
  [[nodiscard]] const std::vector<double>& coefficients() const noexcept {
    return coeffs_;
  }

  [[nodiscard]] double evaluate(const std::vector<double>& x) const;

 private:
  int dims_ = 0;
  int degree_ = 0;
  Normalization norm_;
  std::vector<double> coeffs_;
};

/// Vector-valued polynomial: one scalar polynomial per Stat, sharing basis
/// and normalization (stored as a coefficient matrix). The monomial basis
/// is computed once at construction, so evaluation is normalization +
/// basis products + dot products only -- this class sits on the predict
/// hot path.
///
/// The coefficient matrix is one flat row-major [stat][monomial] table of
/// doubles that is either *owned* or *borrowed*: the binary model
/// container (src/storage/) constructs borrowed polynomials whose table
/// points straight into an mmap'ed file, so loading a model performs no
/// coefficient copy or parse at all. Borrowed storage must outlive the
/// polynomial; the storage layer guarantees this by pinning the file
/// mapping in the shared_ptr that owns the loaded model. Copying a
/// borrowed polynomial materializes an owned table (a moved one keeps
/// borrowing), so value copies can never dangle.
class VecPolynomial {
 public:
  VecPolynomial() = default;
  VecPolynomial(int dims, int degree, Normalization norm,
                std::vector<std::vector<double>> coeffs_per_stat);

  /// Non-owning: `table` must point at kStatCount * monomial_count(dims,
  /// degree) doubles, row-major [stat][monomial], 8-byte aligned, alive
  /// for as long as this polynomial (and every move of it) is used.
  struct Borrow {};
  VecPolynomial(int dims, int degree, Normalization norm,
                const double* table, Borrow);

  VecPolynomial(const VecPolynomial& other);
  VecPolynomial(VecPolynomial&& other) noexcept;
  VecPolynomial& operator=(const VecPolynomial& other);
  VecPolynomial& operator=(VecPolynomial&& other) noexcept;
  ~VecPolynomial() = default;

  [[nodiscard]] int dims() const noexcept { return dims_; }
  [[nodiscard]] int degree() const noexcept { return degree_; }
  [[nodiscard]] const Normalization& normalization() const noexcept {
    return norm_;
  }
  [[nodiscard]] std::span<const double> coefficients(Stat s) const {
    return {table_ + static_cast<std::size_t>(s) * ncoef_, ncoef_};
  }
  /// True when the coefficient table lives in this object (false: it is a
  /// view into external storage, e.g. an mmap'ed model container).
  [[nodiscard]] bool owns_coefficients() const noexcept {
    return table_ == nullptr || table_ == owned_.data();
  }

  /// Evaluates every statistic at x. Statistics that must be nonnegative
  /// (all of ours: tick summaries) are clamped at 0.
  [[nodiscard]] SampleStats evaluate(const std::vector<double>& x) const;

  /// Batched evaluation: one SampleStats per point, out[i] bit-identical
  /// to evaluate(*points[i]). The normalization/basis scratch buffers are
  /// allocated once for the whole batch instead of per point.
  void evaluate_many(const std::vector<const std::vector<double>*>& points,
                     std::vector<SampleStats>& out) const;

  /// Evaluates a single statistic (no clamping).
  [[nodiscard]] double evaluate_stat(Stat s,
                                     const std::vector<double>& x) const;

 private:
  /// Shared per-point kernel of evaluate / evaluate_many: z and phi are
  /// caller-provided scratch, resized as needed.
  [[nodiscard]] SampleStats evaluate_into(const std::vector<double>& x,
                                          std::vector<double>& z,
                                          std::vector<double>& phi) const;

  int dims_ = 0;
  int degree_ = 0;
  Normalization norm_;
  std::vector<double> owned_;        // backing store when owning (else empty)
  const double* table_ = nullptr;    // flat [stat][monomial]; owned_ or borrowed
  std::size_t ncoef_ = 0;            // monomials per stat
  std::vector<std::vector<int>> basis_;  // cached monomial exponents
};

/// Evaluates the monomial basis at normalized point z (helper shared by
/// evaluation and design-matrix assembly).
void evaluate_basis(const std::vector<std::vector<int>>& basis,
                    const std::vector<double>& z, std::vector<double>& out);

}  // namespace dlap
