#include "modeler/model.hpp"

#include <algorithm>
#include <limits>

namespace dlap {

PiecewiseModel::PiecewiseModel(Region domain, std::vector<RegionModel> pieces)
    : domain_(std::move(domain)), pieces_(std::move(pieces)) {
  DLAP_REQUIRE(!pieces_.empty(), "piecewise model needs at least one region");
  for (const RegionModel& p : pieces_) {
    DLAP_REQUIRE(p.region.dims() == domain_.dims(),
                 "piece dimensionality mismatch");
  }
}

SampleStats PiecewiseModel::evaluate(const std::vector<double>& point) const {
  DLAP_REQUIRE(!pieces_.empty(), "evaluating an empty model");
  DLAP_REQUIRE(static_cast<int>(point.size()) == dims(),
               "point dimensionality mismatch");

  // Most accurate containing region wins.
  const RegionModel* best = nullptr;
  for (const RegionModel& p : pieces_) {
    if (!p.region.contains(point)) continue;
    if (best == nullptr || p.fit_error < best->fit_error) best = &p;
  }
  if (best != nullptr) return best->poly.evaluate(point);

  // No containing region: project onto the nearest one (clamping policy).
  double best_dist = std::numeric_limits<double>::infinity();
  for (const RegionModel& p : pieces_) {
    const double d = p.region.distance(point);
    if (d < best_dist) {
      best_dist = d;
      best = &p;
    }
  }
  std::vector<double> clamped = point;
  for (int d = 0; d < dims(); ++d) {
    clamped[d] = std::clamp(clamped[d],
                            static_cast<double>(best->region.lo(d)),
                            static_cast<double>(best->region.hi(d)));
  }
  return best->poly.evaluate(clamped);
}

SampleStats PiecewiseModel::evaluate(const std::vector<index_t>& point) const {
  std::vector<double> p(point.size());
  for (std::size_t i = 0; i < point.size(); ++i) {
    p[i] = static_cast<double>(point[i]);
  }
  return evaluate(p);
}

double PiecewiseModel::average_error() const {
  double wsum = 0.0;
  double esum = 0.0;
  for (const RegionModel& p : pieces_) {
    const double w = static_cast<double>(std::max<index_t>(p.samples_used, 1));
    wsum += w;
    esum += w * p.mean_error;
  }
  return (wsum > 0.0) ? esum / wsum : 0.0;
}

index_t PiecewiseModel::total_samples() const {
  index_t s = 0;
  for (const RegionModel& p : pieces_) s += p.samples_used;
  return s;
}

}  // namespace dlap
