#include "modeler/model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

namespace dlap {

// ------------------------------------------------------------ RegionIndex
//
// Per-axis interval grid over the pieces' (integer, inclusive) bounds.
// Axis d's cell edges are the sorted unique {lo(d), hi(d) + 1} values of
// every piece, so within one cell every piece either contains the whole
// cell or none of it; each cell precomputes the winning piece (most
// accurate containing one, earliest on fit_error ties -- exactly the
// linear scan's rule). A lookup is one binary search per axis.
//
// The grid covers integer lattice points only (the predict path always
// evaluates at integer sizes). Non-integral or NaN coordinates fall back
// to the reference linear scan, so results stay bit-identical for every
// input.
struct PiecewiseModel::RegionIndex {
  std::vector<std::vector<index_t>> edges;  ///< per axis, sorted cell edges
  std::vector<std::size_t> stride;          ///< flattening strides
  std::vector<std::int32_t> winner;         ///< per cell; -1 = uncontained
  bool usable = false;  ///< false when the grid would be degenerate/huge

  static constexpr std::size_t kMaxCells = std::size_t{1} << 20;

  explicit RegionIndex(const std::vector<RegionModel>& pieces) {
    if (pieces.empty()) return;
    const int dims = pieces.front().region.dims();
    edges.resize(static_cast<std::size_t>(dims));
    for (int d = 0; d < dims; ++d) {
      auto& e = edges[static_cast<std::size_t>(d)];
      e.reserve(2 * pieces.size());
      for (const RegionModel& p : pieces) {
        e.push_back(p.region.lo(d));
        e.push_back(p.region.hi(d) + 1);
      }
      std::sort(e.begin(), e.end());
      e.erase(std::unique(e.begin(), e.end()), e.end());
    }
    std::size_t cells = 1;
    stride.assign(static_cast<std::size_t>(dims), 0);
    for (int d = dims - 1; d >= 0; --d) {
      const std::size_t nd = edges[static_cast<std::size_t>(d)].size() - 1;
      stride[static_cast<std::size_t>(d)] = cells;
      if (nd == 0 || cells > kMaxCells / nd) return;  // overflow / too big
      cells *= nd;
    }
    winner.assign(cells, -1);
    // Rasterize piece by piece instead of scanning all pieces per cell:
    // each piece covers a contiguous sub-grid of cells (its bounds are
    // cell edges by construction), so walking only that sub-grid costs
    // O(sum of per-piece cells), not O(cells * pieces). Ascending piece
    // order with a strict fit_error comparison reproduces the linear
    // scan's tie-break (most accurate wins, earliest on ties).
    std::vector<std::size_t> lo_cell(static_cast<std::size_t>(dims));
    std::vector<std::size_t> hi_cell(static_cast<std::size_t>(dims));
    std::vector<std::size_t> idx(static_cast<std::size_t>(dims));
    for (std::size_t p = 0; p < pieces.size(); ++p) {
      for (int d = 0; d < dims; ++d) {
        const auto& e = edges[static_cast<std::size_t>(d)];
        // lo and hi+1 are both edges; the piece spans the cells between.
        lo_cell[static_cast<std::size_t>(d)] = static_cast<std::size_t>(
            std::lower_bound(e.begin(), e.end(), pieces[p].region.lo(d)) -
            e.begin());
        hi_cell[static_cast<std::size_t>(d)] = static_cast<std::size_t>(
            std::lower_bound(e.begin(), e.end(),
                             pieces[p].region.hi(d) + 1) -
            e.begin());
      }
      idx = lo_cell;
      for (;;) {
        std::size_t flat = 0;
        for (int d = 0; d < dims; ++d) {
          flat += idx[static_cast<std::size_t>(d)] *
                  stride[static_cast<std::size_t>(d)];
        }
        std::int32_t& best = winner[flat];
        if (best < 0 || pieces[p].fit_error <
                            pieces[static_cast<std::size_t>(best)].fit_error) {
          best = static_cast<std::int32_t>(p);
        }
        // Odometer over the piece's cell sub-range (last axis fastest).
        int d = dims - 1;
        for (; d >= 0; --d) {
          auto& i = idx[static_cast<std::size_t>(d)];
          if (++i < hi_cell[static_cast<std::size_t>(d)]) break;
          i = lo_cell[static_cast<std::size_t>(d)];
        }
        if (d < 0) break;
      }
    }
    usable = true;
  }

  /// Looks the point up. Returns true when the index could decide (point
  /// is an in-range lattice point); *piece is then the winner or -1.
  [[nodiscard]] bool lookup(const std::vector<double>& point,
                            std::int32_t* piece) const {
    if (!usable) return false;
    std::size_t flat = 0;
    for (std::size_t d = 0; d < edges.size(); ++d) {
      const double x = point[d];
      if (!(x == std::floor(x))) return false;  // non-integral (or NaN)
      const auto& e = edges[d];
      if (x < static_cast<double>(e.front()) ||
          x >= static_cast<double>(e.back())) {
        *piece = -1;  // outside every piece's bound on this axis
        return true;
      }
      const index_t xi = static_cast<index_t>(x);
      const std::size_t cell = static_cast<std::size_t>(
          std::upper_bound(e.begin(), e.end(), xi) - e.begin() - 1);
      flat += cell * stride[d];
    }
    *piece = winner[flat];
    return true;
  }
};

PiecewiseModel::PiecewiseModel(Region domain, std::vector<RegionModel> pieces)
    : domain_(std::move(domain)), pieces_(std::move(pieces)) {
  DLAP_REQUIRE(!pieces_.empty(), "piecewise model needs at least one region");
  for (const RegionModel& p : pieces_) {
    DLAP_REQUIRE(p.region.dims() == domain_.dims(),
                 "piece dimensionality mismatch");
  }
}

PiecewiseModel::PiecewiseModel(const PiecewiseModel& other)
    : domain_(other.domain_), pieces_(other.pieces_) {}

PiecewiseModel::PiecewiseModel(PiecewiseModel&& other) noexcept
    : domain_(std::move(other.domain_)), pieces_(std::move(other.pieces_)) {
  // The index holds indices into pieces_, which just moved here -- taking
  // ownership of the already built index is safe and avoids a rebuild.
  index_.store(other.index_.exchange(nullptr, std::memory_order_acq_rel),
               std::memory_order_release);
}

PiecewiseModel& PiecewiseModel::operator=(const PiecewiseModel& other) {
  if (this == &other) return *this;
  domain_ = other.domain_;
  pieces_ = other.pieces_;
  delete index_.exchange(nullptr, std::memory_order_acq_rel);
  return *this;
}

PiecewiseModel& PiecewiseModel::operator=(PiecewiseModel&& other) noexcept {
  if (this == &other) return *this;
  domain_ = std::move(other.domain_);
  pieces_ = std::move(other.pieces_);
  delete index_.exchange(
      other.index_.exchange(nullptr, std::memory_order_acq_rel),
      std::memory_order_acq_rel);
  return *this;
}

PiecewiseModel::~PiecewiseModel() {
  delete index_.load(std::memory_order_acquire);
}

const PiecewiseModel::RegionIndex& PiecewiseModel::index() const {
  const RegionIndex* idx = index_.load(std::memory_order_acquire);
  if (idx != nullptr) return *idx;
  auto built = std::make_unique<RegionIndex>(pieces_);
  const RegionIndex* expected = nullptr;
  if (index_.compare_exchange_strong(expected, built.get(),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
    return *built.release();
  }
  return *expected;  // another thread won the build race
}

const RegionModel* PiecewiseModel::containing_piece_linear(
    const std::vector<double>& point) const {
  const RegionModel* best = nullptr;
  for (const RegionModel& p : pieces_) {
    if (!p.region.contains(point)) continue;
    if (best == nullptr || p.fit_error < best->fit_error) best = &p;
  }
  return best;
}

const RegionModel* PiecewiseModel::containing_piece(
    const std::vector<double>& point) const {
  std::int32_t piece = -1;
  if (index().lookup(point, &piece)) {
    return piece < 0 ? nullptr : &pieces_[static_cast<std::size_t>(piece)];
  }
  return containing_piece_linear(point);
}

SampleStats PiecewiseModel::evaluate_projected(
    const std::vector<double>& point) const {
  // No containing region: project onto the nearest one (clamping policy).
  const RegionModel* best = nullptr;
  double best_dist = std::numeric_limits<double>::infinity();
  for (const RegionModel& p : pieces_) {
    const double d = p.region.distance(point);
    if (d < best_dist) {
      best_dist = d;
      best = &p;
    }
  }
  return best->poly.evaluate(best->region.clamp(point));
}

SampleStats PiecewiseModel::evaluate(const std::vector<double>& point) const {
  DLAP_REQUIRE(!pieces_.empty(), "evaluating an empty model");
  DLAP_REQUIRE(static_cast<int>(point.size()) == dims(),
               "point dimensionality mismatch");
  if (const RegionModel* best = containing_piece(point)) {
    return best->poly.evaluate(point);
  }
  return evaluate_projected(point);
}

SampleStats PiecewiseModel::evaluate(const std::vector<index_t>& point) const {
  std::vector<double> p(point.size());
  for (std::size_t i = 0; i < point.size(); ++i) {
    p[i] = static_cast<double>(point[i]);
  }
  return evaluate(p);
}

void PiecewiseModel::evaluate_many(
    const std::vector<const std::vector<double>*>& points,
    std::vector<SampleStats>& out) const {
  DLAP_REQUIRE(!pieces_.empty(), "evaluating an empty model");
  out.resize(points.size());
  // Group points by winning piece so one region's polynomial runs over a
  // whole batch; projected points take the (rare) per-point path.
  std::vector<std::vector<std::size_t>> groups(pieces_.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    DLAP_REQUIRE(static_cast<int>(points[i]->size()) == dims(),
                 "point dimensionality mismatch");
    if (const RegionModel* best = containing_piece(*points[i])) {
      groups[static_cast<std::size_t>(best - pieces_.data())].push_back(i);
    } else {
      out[i] = evaluate_projected(*points[i]);
    }
  }
  std::vector<const std::vector<double>*> batch;
  std::vector<SampleStats> batch_out;
  for (std::size_t p = 0; p < groups.size(); ++p) {
    if (groups[p].empty()) continue;
    batch.clear();
    for (std::size_t i : groups[p]) batch.push_back(points[i]);
    pieces_[p].poly.evaluate_many(batch, batch_out);
    for (std::size_t j = 0; j < groups[p].size(); ++j) {
      out[groups[p][j]] = batch_out[j];
    }
  }
}

double PiecewiseModel::average_error() const {
  double wsum = 0.0;
  double esum = 0.0;
  for (const RegionModel& p : pieces_) {
    const double w = static_cast<double>(std::max<index_t>(p.samples_used, 1));
    wsum += w;
    esum += w * p.mean_error;
  }
  return (wsum > 0.0) ? esum / wsum : 0.0;
}

index_t PiecewiseModel::total_samples() const {
  index_t s = 0;
  for (const RegionModel& p : pieces_) s += p.samples_used;
  return s;
}

}  // namespace dlap
