#include "modeler/repository.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iomanip>
#include <span>
#include <sstream>
#include <thread>

#include "common/str.hpp"
#include "storage/container.hpp"

namespace dlap {

namespace {

constexpr const char* kMagic = "dlaperf-model v1";

void write_doubles(std::ostream& os, std::span<const double> v) {
  os << std::setprecision(17);
  for (double x : v) os << ' ' << x;
}

std::vector<double> read_doubles(std::istringstream& is, std::size_t n) {
  std::vector<double> out(n);
  for (double& x : out) {
    if (!(is >> x)) throw parse_error("model file: truncated double list");
  }
  return out;
}

std::vector<index_t> read_indices(std::istringstream& is, std::size_t n) {
  std::vector<index_t> out(n);
  for (index_t& x : out) {
    if (!(is >> x)) throw parse_error("model file: truncated index list");
  }
  return out;
}

// Components are escaped injectively (common/str.hpp) and joined with
// '.', which never survives escaping, so distinct keys always map to
// distinct file names ("packed@8" vs a backend literally named
// "packed-t8", flags containing '/', '.', ' ', ...).
std::string escape_component(const std::string& component) {
  return escape_filename_component(component);
}

}  // namespace

ModelRepository::ModelRepository(std::filesystem::path dir)
    : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
  const std::filesystem::path packed = dir_ / storage::kContainerFilename;
  if (std::filesystem::exists(packed)) {
    container_ = storage::ContainerReader::open(packed);
  }
}

void ModelRepository::attach_container(
    std::shared_ptr<const storage::ContainerReader> reader) {
  std::lock_guard<std::mutex> lock(mutex_);
  container_ = std::move(reader);
}

std::shared_ptr<const storage::ContainerReader> ModelRepository::container()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return container_;
}

std::string ModelRepository::filename(const ModelKey& key) {
  // Empty flags use the same "-" marker as the serialized format; escaped
  // components can never be a bare "-" (a literal '-' escapes to "-x2d"),
  // so the marker cannot collide with any real flag string.
  return escape_component(key.routine) + "." +
         escape_component(key.backend) + "." +
         std::string(locality_name(key.locality)) + "." +
         (key.flags.empty() ? "-" : escape_component(key.flags)) +
         ".model";
}

std::string ModelRepository::serialize(const RoutineModel& m) {
  std::ostringstream os;
  os << kMagic << '\n';
  os << "routine " << m.key.routine << '\n';
  os << "backend " << m.key.backend << '\n';
  os << "locality " << locality_name(m.key.locality) << '\n';
  os << "flags " << (m.key.flags.empty() ? "-" : m.key.flags) << '\n';
  os << "strategy " << (m.strategy.empty() ? "-" : m.strategy) << '\n';
  os << "unique_samples " << m.unique_samples << '\n';
  os << std::setprecision(17);
  os << "average_error " << m.average_error << '\n';

  const PiecewiseModel& pm = m.model;
  os << "dims " << pm.dims() << '\n';
  os << "domain";
  for (int d = 0; d < pm.dims(); ++d) {
    os << ' ' << pm.domain().lo(d) << ' ' << pm.domain().hi(d);
  }
  os << '\n';
  os << "pieces " << pm.pieces().size() << '\n';
  for (const RegionModel& p : pm.pieces()) {
    os << "piece\n";
    os << "  bounds";
    for (int d = 0; d < pm.dims(); ++d) {
      os << ' ' << p.region.lo(d) << ' ' << p.region.hi(d);
    }
    os << '\n';
    os << "  fit_error " << p.fit_error << '\n';
    os << "  mean_error " << p.mean_error << '\n';
    os << "  samples " << p.samples_used << '\n';
    os << "  degree " << p.poly.degree() << '\n';
    os << "  shift";
    write_doubles(os, p.poly.normalization().shift);
    os << '\n';
    os << "  scale";
    write_doubles(os, p.poly.normalization().scale);
    os << '\n';
    for (int s = 0; s < kStatCount; ++s) {
      os << "  coef " << stat_name(static_cast<Stat>(s));
      write_doubles(os, p.poly.coefficients(static_cast<Stat>(s)));
      os << '\n';
    }
  }
  return os.str();
}

RoutineModel ModelRepository::deserialize(const std::string& text) {
  return deserialize(text, "<model text>");
}

RoutineModel ModelRepository::deserialize(const std::string& text,
                                          const std::string& source) {
  std::istringstream lines(text);
  std::string line;
  std::size_t lineno = 0;  // 1-based number of the line being parsed

  auto next_line = [&]() -> std::string {
    while (std::getline(lines, line)) {
      ++lineno;
      const std::string_view t = trim(line);
      if (!t.empty()) return std::string(t);
    }
    ++lineno;
    throw parse_error("model file: unexpected end of file");
  };
  auto expect_kv = [&](const std::string& key) -> std::string {
    const std::string l = next_line();
    if (!starts_with(l, key + " ") && l != key) {
      throw parse_error("model file: expected '" + key + "', got '" + l +
                        "'");
    }
    return l.size() > key.size() ? std::string(trim(l.substr(key.size())))
                                 : std::string();
  };

  try {
    if (next_line() != kMagic) {
      throw parse_error("model file: bad magic (not a dlaperf model)");
    }

    RoutineModel m;
    m.source = ModelSource::TextFile;
    m.key.routine = expect_kv("routine");
    m.key.backend = expect_kv("backend");
    m.key.locality = locality_from_name(expect_kv("locality"));
    const std::string flags = expect_kv("flags");
    m.key.flags = (flags == "-") ? "" : flags;
    const std::string strategy = expect_kv("strategy");
    m.strategy = (strategy == "-") ? "" : strategy;
    m.unique_samples =
        static_cast<index_t>(parse_int(expect_kv("unique_samples")));
    m.average_error = parse_double(expect_kv("average_error"));

    const int dims = static_cast<int>(parse_int(expect_kv("dims")));
    DLAP_REQUIRE(dims >= 1 && dims <= 8, "model file: implausible dims");

    std::istringstream dom(expect_kv("domain"));
    const std::vector<index_t> dbounds = read_indices(dom, 2 * dims);
    std::vector<index_t> dlo(dims), dhi(dims);
    for (int d = 0; d < dims; ++d) {
      dlo[d] = dbounds[2 * d];
      dhi[d] = dbounds[2 * d + 1];
    }

    const auto npieces = parse_int(expect_kv("pieces"));
    DLAP_REQUIRE(npieces >= 1, "model file: no pieces");
    std::vector<RegionModel> pieces;
    pieces.reserve(static_cast<std::size_t>(npieces));

    for (long long pi = 0; pi < npieces; ++pi) {
      if (next_line() != "piece") {
        throw parse_error("model file: missing piece");
      }
      std::istringstream bnd(expect_kv("bounds"));
      const std::vector<index_t> bounds = read_indices(bnd, 2 * dims);
      std::vector<index_t> lo(dims), hi(dims);
      for (int d = 0; d < dims; ++d) {
        lo[d] = bounds[2 * d];
        hi[d] = bounds[2 * d + 1];
      }
      RegionModel piece;
      piece.region = Region(lo, hi);
      piece.fit_error = parse_double(expect_kv("fit_error"));
      piece.mean_error = parse_double(expect_kv("mean_error"));
      piece.samples_used =
          static_cast<index_t>(parse_int(expect_kv("samples")));
      const int degree = static_cast<int>(parse_int(expect_kv("degree")));

      Normalization norm;
      std::istringstream sh(expect_kv("shift"));
      norm.shift = read_doubles(sh, static_cast<std::size_t>(dims));
      std::istringstream sc(expect_kv("scale"));
      norm.scale = read_doubles(sc, static_cast<std::size_t>(dims));

      const std::size_t ncoef =
          static_cast<std::size_t>(monomial_count(dims, degree));
      std::vector<std::vector<double>> coeffs(kStatCount);
      for (int s = 0; s < kStatCount; ++s) {
        std::istringstream cs(expect_kv("coef"));
        std::string name;
        cs >> name;
        const Stat stat = stat_from_name(name);
        coeffs[static_cast<std::size_t>(stat)] = read_doubles(cs, ncoef);
      }
      piece.poly = VecPolynomial(dims, degree, std::move(norm),
                                 std::move(coeffs));
      pieces.push_back(std::move(piece));
    }

    m.model = PiecewiseModel(Region(dlo, dhi), std::move(pieces));
    return m;
  } catch (const parse_error& e) {
    // Re-throw with the offending source and line number prepended, so a
    // damaged file in a repository of hundreds is locatable immediately.
    throw parse_error(source + ":" + std::to_string(lineno) + ": " +
                      e.what());
  } catch (const invalid_argument_error& e) {
    // Structural rejections (implausible dims, bad regions/polynomials)
    // are parse errors when the data came from a file.
    throw parse_error(source + ":" + std::to_string(lineno) + ": " +
                      e.what());
  }
}

void ModelRepository::store(const RoutineModel& model) {
  const std::filesystem::path path = dir_ / filename(model.key);
  // Atomic publication: write a writer-unique temp file, then rename it
  // over the destination, so concurrent readers never see a partial model
  // and concurrent writers of one key serialize to "last store wins".
  const auto tid = std::hash<std::thread::id>{}(std::this_thread::get_id());
  const std::filesystem::path tmp =
      path.string() + ".tmp" + std::to_string(tid);
  {
    std::ofstream out(tmp);
    DLAP_REQUIRE(out.good(), "cannot write model file: " + tmp.string());
    out << serialize(model);
  }
  std::filesystem::rename(tmp, path);

  std::lock_guard<std::mutex> lock(mutex_);
  cache_[model.key] = std::make_shared<const RoutineModel>(model);
}

std::shared_ptr<const RoutineModel> ModelRepository::load_uncached(
    const ModelKey& key) const {
  const std::filesystem::path path = dir_ / filename(key);
  std::ifstream in(path);
  if (!in.good()) return nullptr;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::make_shared<const RoutineModel>(
      deserialize(buf.str(), path.string()));
}

std::shared_ptr<const RoutineModel> ModelRepository::load_from_container(
    const ModelKey& key) const {
  std::shared_ptr<const storage::ContainerReader> packed = container();
  if (packed == nullptr) return nullptr;
  const auto index = packed->find_model(ModelKeyRef::of(key));
  if (!index.has_value()) return nullptr;
  return packed->model(*index).load();
}

std::shared_ptr<const RoutineModel> ModelRepository::find(
    const ModelKey& key) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  // Parse outside the lock; a racing find() of the same key at worst
  // parses twice and both end up with equivalent immutable models. A
  // per-key text file shadows the attached container (newer stores win).
  std::shared_ptr<const RoutineModel> fresh = load_uncached(key);
  if (fresh == nullptr) fresh = load_from_container(key);
  if (fresh == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = cache_.emplace(key, fresh);
  return inserted ? fresh : it->second;
}

std::shared_ptr<const RoutineModel> ModelRepository::load_shared(
    const ModelKey& key) const {
  std::shared_ptr<const RoutineModel> model = find(key);
  if (model == nullptr) {
    throw lookup_error("no model stored for " + key.to_string() + " (" +
                       (dir_ / filename(key)).string() + ")");
  }
  return model;
}

RoutineModel ModelRepository::load(const ModelKey& key) const {
  return *load_shared(key);
}

bool ModelRepository::contains(const ModelKey& key) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (cache_.count(key) > 0) return true;
  }
  if (std::filesystem::exists(dir_ / filename(key))) return true;
  const std::shared_ptr<const storage::ContainerReader> packed = container();
  return packed != nullptr &&
         packed->find_model(ModelKeyRef::of(key)).has_value();
}

std::vector<ModelKey> ModelRepository::list() const {
  // Deterministic listing: collect from both layers, then sort by the
  // canonical key order and deduplicate (a text file shadowing a packed
  // model contributes one entry).
  std::vector<ModelKey> keys;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() != ".model") continue;
    std::ifstream in(entry.path());
    std::ostringstream buf;
    buf << in.rdbuf();
    keys.push_back(deserialize(buf.str(), entry.path().string()).key);
  }
  const std::shared_ptr<const storage::ContainerReader> packed = container();
  if (packed != nullptr) {
    std::vector<ModelKey> packed_keys = packed->model_keys();
    keys.insert(keys.end(), std::make_move_iterator(packed_keys.begin()),
                std::make_move_iterator(packed_keys.end()));
  }
  std::sort(keys.begin(), keys.end(), ModelKeyLess{});
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

std::size_t ModelRepository::cache_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

void ModelRepository::invalidate_cache() {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.clear();
}

}  // namespace dlap
