#pragma once
// Dense least-squares solver for polynomial fitting.
//
// The paper uses SciPy's SVD-based linalg.lstsq; we provide the same
// functionality in-library: Householder QR with column pivoting (the
// workhorse, shared across the five right-hand sides of a vector-valued
// fit) plus a one-sided Jacobi SVD for singular-value diagnostics.

#include <vector>

#include "common/matrix.hpp"
#include "common/types.hpp"

namespace dlap {

struct LstsqResult {
  /// Solution matrix X (n x nrhs), column-major, minimizing ||A X - B||_F.
  Matrix x;
  /// Numerical rank detected by the pivoted QR.
  index_t rank = 0;
};

/// Solves min ||A X - B||_F for X with A (m x n, m >= 1) and B (m x nrhs).
/// Rank-deficient systems are handled by truncating to the detected rank
/// (pivoted columns beyond it get zero coefficients), which is the
/// standard "basic solution"; tol is relative to the largest column norm.
[[nodiscard]] LstsqResult lstsq(ConstMatrixView a, ConstMatrixView b,
                                double tol = 1e-12);

/// Singular values of A (m x n, any shape) via one-sided Jacobi on A or
/// A^T (whichever is taller), descending order. O(min^2 * max) per sweep;
/// intended for the small design matrices of model fitting.
[[nodiscard]] std::vector<double> singular_values(ConstMatrixView a,
                                                  int max_sweeps = 30);

}  // namespace dlap
