#include "modeler/modeler.hpp"

#include <algorithm>
#include <memory>

namespace dlap {

std::string ModelKey::to_string() const {
  return routine + "/" + backend + "/" + locality_name(locality) + "/" +
         (flags.empty() ? "noflags" : flags);
}

bool ModelKey::operator<(const ModelKey& o) const {
  return ModelKeyLess::less(ModelKeyRef::of(*this), ModelKeyRef::of(o));
}

ModelKey model_key_for(const ModelingRequest& request,
                       const std::string& backend_name) {
  ModelKey key;
  key.routine = routine_name(request.routine);
  key.backend = backend_name;
  key.locality = request.sampler.locality;
  key.flags.assign(request.flags.begin(), request.flags.end());
  return key;
}

KernelCall make_call(const ModelingRequest& request,
                     const std::vector<index_t>& point) {
  KernelCall call;
  call.routine = request.routine;
  call.flags = request.flags;
  call.sizes = point;

  const auto& sig = routine_signature(request.routine);
  const auto nscalars = std::count(sig.begin(), sig.end(), ArgKind::Scalar);
  if (!request.scalars.empty()) {
    call.scalars = request.scalars;
  } else {
    call.scalars.assign(static_cast<std::size_t>(nscalars), 1.0);
  }
  const auto nleads = std::count(sig.begin(), sig.end(), ArgKind::Lead);
  call.leads.assign(static_cast<std::size_t>(nleads), request.fixed_ld);

  // Raise any leading dimension that is smaller than its operand (keeps
  // the fixed-ld convention valid on domains larger than fixed_ld).
  const auto shapes = operand_shapes(call);
  DLAP_REQUIRE(shapes.size() == call.leads.size(),
               "signature lead/data count mismatch");
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    call.leads[i] = std::max<index_t>(call.leads[i],
                                      std::max<index_t>(1, shapes[i].rows));
  }
  validate_call(call);
  return call;
}

MeasureFn Modeler::make_measure_fn(const ModelingRequest& request) {
  // The sampler is shared across all measurements of one generation run.
  auto sampler = std::make_shared<Sampler>(*backend_, request.sampler);
  const ModelingRequest req = request;
  return [sampler, req](const std::vector<index_t>& point) {
    return sampler->measure(make_call(req, point));
  };
}

ModelKey Modeler::key_for(const ModelingRequest& request) const {
  return model_key_for(request, backend_->name());
}

GenerationResult Modeler::run_expansion(const ModelingRequest& request,
                                        const ExpansionConfig& config) {
  return generate_model_expansion(request.domain, make_measure_fn(request),
                                  config);
}

GenerationResult Modeler::run_refinement(const ModelingRequest& request,
                                         const RefinementConfig& config) {
  return generate_adaptive_refinement(request.domain,
                                      make_measure_fn(request), config);
}

RoutineModel Modeler::build_expansion(const ModelingRequest& request,
                                      const ExpansionConfig& config) {
  GenerationResult gen = run_expansion(request, config);
  RoutineModel out;
  out.key = key_for(request);
  out.model = std::move(gen.model);
  out.unique_samples = gen.unique_samples;
  out.average_error = gen.average_error;
  out.strategy = "expansion";
  return out;
}

RoutineModel Modeler::build_refinement(const ModelingRequest& request,
                                       const RefinementConfig& config) {
  GenerationResult gen = run_refinement(request, config);
  RoutineModel out;
  out.key = key_for(request);
  out.model = std::move(gen.model);
  out.unique_samples = gen.unique_samples;
  out.average_error = gen.average_error;
  out.strategy = "refinement";
  return out;
}

std::vector<RoutineModel> Modeler::build_batch(
    const std::vector<ModelingRequest>& requests,
    const RefinementConfig& config) {
  std::vector<RoutineModel> out;
  out.reserve(requests.size());
  for (const ModelingRequest& request : requests) {
    out.push_back(build_refinement(request, config));
  }
  return out;
}

}  // namespace dlap
