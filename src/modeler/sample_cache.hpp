#pragma once
// Point-keyed measurement cache shared by the generation strategies.
//
// Strategies repeatedly re-fit overlapping grids; caching by parameter
// point makes "samples" mean distinct measured points (the quantity the
// paper reports on the x-axis of Fig III.8) and avoids paying twice for
// shared region boundaries.

#include <map>
#include <vector>

#include "modeler/strategies.hpp"

namespace dlap {

class SampleCache {
 public:
  explicit SampleCache(const MeasureFn& fn) : fn_(&fn) {}

  [[nodiscard]] const SampleStats& get(const std::vector<index_t>& point) {
    auto it = cache_.find(point);
    if (it == cache_.end()) {
      it = cache_.emplace(point, (*fn_)(point)).first;
    }
    return it->second;
  }

  /// Gathers samples for all grid points (measuring the missing ones).
  [[nodiscard]] std::vector<SamplePoint> gather(
      const std::vector<std::vector<index_t>>& grid) {
    std::vector<SamplePoint> out;
    out.reserve(grid.size());
    for (const auto& p : grid) out.push_back({p, get(p)});
    return out;
  }

  [[nodiscard]] index_t unique_samples() const {
    return static_cast<index_t>(cache_.size());
  }

 private:
  const MeasureFn* fn_;
  std::map<std::vector<index_t>, SampleStats> cache_;
};

}  // namespace dlap
