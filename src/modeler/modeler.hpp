#pragma once
// The Modeler (paper Section III): generates piecewise-polynomial
// performance models for routines automatically, by driving the Sampler
// through one of the two generation strategies. Each model is specific to
// a (routine, flag combination, implementation/backend, memory locality)
// tuple -- the "fixed implementation, system, and memory locality
// situation" of Section III-B.

#include <string>
#include <string_view>
#include <vector>

#include "blas/backend.hpp"
#include "modeler/model.hpp"
#include "modeler/strategies.hpp"
#include "sampler/calls.hpp"
#include "sampler/sampler.hpp"

namespace dlap {

/// Identity of a model in the repository.
struct ModelKey {
  std::string routine;  ///< e.g. "dtrsm"
  std::string backend;  ///< e.g. "blocked" or "packed@8"
  Locality locality = Locality::InCache;
  std::string flags;    ///< flag values joined, e.g. "LLNN" ("" if none)

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] bool operator==(const ModelKey&) const = default;
  [[nodiscard]] bool operator<(const ModelKey& o) const;
};

/// A borrowed view of a ModelKey; the referenced storage must outlive the
/// call it is passed to. Hot-path lookups (the engine's key interner)
/// probe with refs assembled straight from trace data, so no temporary
/// strings are constructed.
struct ModelKeyRef {
  std::string_view routine;
  std::string_view backend;
  Locality locality = Locality::InCache;
  std::string_view flags;

  [[nodiscard]] static ModelKeyRef of(const ModelKey& key) noexcept {
    return {key.routine, key.backend, key.locality, key.flags};
  }

  [[nodiscard]] ModelKey materialize() const {
    return ModelKey{std::string(routine), std::string(backend), locality,
                    std::string(flags)};
  }
};

/// Transparent strict-weak-order over ModelKey / ModelKeyRef mixes. This
/// is THE ModelKey ordering: ModelKey::operator< delegates here, so the
/// heterogeneous and native comparisons can never drift apart.
struct ModelKeyLess {
  using is_transparent = void;

  [[nodiscard]] static bool less(const ModelKeyRef& a,
                                 const ModelKeyRef& b) noexcept {
    if (a.routine != b.routine) return a.routine < b.routine;
    if (a.backend != b.backend) return a.backend < b.backend;
    if (a.locality != b.locality) {
      return static_cast<int>(a.locality) < static_cast<int>(b.locality);
    }
    return a.flags < b.flags;
  }

  template <class A, class B>
  [[nodiscard]] bool operator()(const A& a, const B& b) const noexcept {
    return less(ref(a), ref(b));
  }

 private:
  [[nodiscard]] static ModelKeyRef ref(const ModelKey& k) noexcept {
    return ModelKeyRef::of(k);
  }
  [[nodiscard]] static ModelKeyRef ref(const ModelKeyRef& k) noexcept {
    return k;
  }
};

/// Where a RoutineModel came from (provenance surfaced through the
/// service's GenerationStats and the engine's PrepareReport).
enum class ModelSource {
  Generated,  ///< built by the Modeler in this process
  TextFile,   ///< deserialized from a per-model text file
  Container,  ///< loaded from a .dlapc binary container
};

[[nodiscard]] constexpr const char* to_string(ModelSource s) noexcept {
  switch (s) {
    case ModelSource::Generated: return "generated";
    case ModelSource::TextFile: return "text";
    case ModelSource::Container: return "container";
  }
  return "?";
}

/// A generated model plus provenance.
struct RoutineModel {
  ModelKey key;
  PiecewiseModel model;
  index_t unique_samples = 0;
  double average_error = 0.0;
  std::string strategy;  ///< "expansion" or "refinement"
  ModelSource source = ModelSource::Generated;
};

/// What to model: the call family (routine + fixed flags/scalars/leading
/// dimensions) and the integer-parameter domain spanned by the size
/// arguments.
struct ModelingRequest {
  RoutineId routine = RoutineId::Trsm;
  std::vector<char> flags;      ///< one value per flag argument
  std::vector<double> scalars;  ///< empty = defaults (alpha=1, beta=1)
  /// All leading dimensions are fixed to this (raised per-operand when an
  /// operand is taller); the paper fixes 2500 throughout generation.
  index_t fixed_ld = 2500;
  Region domain;                ///< over the size arguments, in order
  SamplerConfig sampler;        ///< locality, reps, seed
};

/// The repository key a request's model will carry when generated on the
/// named backend (registry spec and backend name coincide for all
/// built-in backends).
[[nodiscard]] ModelKey model_key_for(const ModelingRequest& request,
                                     const std::string& backend_name);

/// Builds the KernelCall for a parameter point of the request.
[[nodiscard]] KernelCall make_call(const ModelingRequest& request,
                                   const std::vector<index_t>& point);

/// A Modeler instance drives one backend. It holds no mutable state of its
/// own, so distinct instances (each with its own backend) are safe to run
/// concurrently from different threads -- the model service does exactly
/// that; one instance is also safe to drive from multiple threads when its
/// backend's kernels are reentrant. Engine-wide measurement reuse (the
/// sample store and its on-disk journals) is NOT the Modeler's concern:
/// the service's MeasurementScheduler layers it over the per-point
/// measure function this class produces.
class Modeler {
 public:
  explicit Modeler(Level3Backend& backend) : backend_(&backend) {}

  /// Measurement source for the request (caching is applied inside the
  /// strategies, not here).
  [[nodiscard]] MeasureFn make_measure_fn(const ModelingRequest& request);

  [[nodiscard]] RoutineModel build_expansion(const ModelingRequest& request,
                                             const ExpansionConfig& config);
  [[nodiscard]] RoutineModel build_refinement(const ModelingRequest& request,
                                              const RefinementConfig& config);

  /// Batch generation: one model per request, in request order, all
  /// sequential on this Modeler's backend. This is the reference path the
  /// concurrent ModelService::generate_all is checked against.
  [[nodiscard]] std::vector<RoutineModel> build_batch(
      const std::vector<ModelingRequest>& requests,
      const RefinementConfig& config);

  /// Full generation result (with events) for strategy-analysis benches.
  [[nodiscard]] GenerationResult run_expansion(const ModelingRequest& request,
                                               const ExpansionConfig& config);
  [[nodiscard]] GenerationResult run_refinement(
      const ModelingRequest& request, const RefinementConfig& config);

 private:
  [[nodiscard]] ModelKey key_for(const ModelingRequest& request) const;

  Level3Backend* backend_;
};

}  // namespace dlap
