#pragma once
// Polynomial fitting of sampled performance data (paper Section III-C).
//
// A set of (parameter point, SampleStats) pairs is approximated by a
// vector-valued polynomial via least squares, one statistic at a time on a
// shared design matrix. Model quality is judged by the maximum relative
// error e_relmax of the *median* statistic across the fitted samples,
// exactly the paper's accuracy gate.

#include <vector>

#include "modeler/polynomial.hpp"
#include "modeler/region.hpp"
#include "sampler/stats.hpp"

namespace dlap {

/// One measured parameter point.
struct SamplePoint {
  std::vector<index_t> x;
  SampleStats stats;
};

struct FitResult {
  VecPolynomial poly;
  /// max_i |p(x_i) - v_i| / |v_i| for the median statistic.
  double erelmax = 0.0;
  /// mean_i |p(x_i) - v_i| / |v_i| for the median statistic (reporting).
  double mean_rel_error = 0.0;
  /// Numerical rank of the fit (== basis size when well-posed).
  index_t rank = 0;
};

/// Fits all statistics over the given samples with polynomials of total
/// degree `degree`, normalized to the region (inputs mapped to [-1, 1]).
/// Requires at least one sample; under-determined fits degrade gracefully
/// through rank truncation.
[[nodiscard]] FitResult fit_polynomial(const Region& region,
                                       const std::vector<SamplePoint>& samples,
                                       int degree);

/// Relative-error helper shared with the strategy code: |est-obs|/|obs|
/// with the denominator floored to avoid division by ~0.
[[nodiscard]] double relative_error(double estimate, double observed);

}  // namespace dlap
