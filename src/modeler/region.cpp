#include "modeler/region.hpp"

#include <algorithm>
#include <cmath>

namespace dlap {

Region::Region(std::vector<index_t> lo, std::vector<index_t> hi)
    : lo_(std::move(lo)), hi_(std::move(hi)) {
  DLAP_REQUIRE(lo_.size() == hi_.size() && !lo_.empty(),
               "region bounds dimension mismatch");
  for (std::size_t d = 0; d < lo_.size(); ++d) {
    DLAP_REQUIRE(lo_[d] <= hi_[d], "region with empty dimension " +
                                       std::to_string(d));
  }
}

bool Region::contains(const std::vector<index_t>& p) const {
  DLAP_REQUIRE(static_cast<int>(p.size()) == dims(), "point dim mismatch");
  for (int d = 0; d < dims(); ++d) {
    if (p[d] < lo_[d] || p[d] > hi_[d]) return false;
  }
  return true;
}

bool Region::contains(const std::vector<double>& p) const {
  DLAP_REQUIRE(static_cast<int>(p.size()) == dims(), "point dim mismatch");
  for (int d = 0; d < dims(); ++d) {
    if (p[d] < static_cast<double>(lo_[d]) ||
        p[d] > static_cast<double>(hi_[d])) {
      return false;
    }
  }
  return true;
}

bool Region::intersects(const Region& other) const {
  DLAP_REQUIRE(other.dims() == dims(), "region dim mismatch");
  for (int d = 0; d < dims(); ++d) {
    if (other.hi_[d] < lo_[d] || other.lo_[d] > hi_[d]) return false;
  }
  return true;
}

bool Region::covers(const Region& other) const {
  if (other.dims() != dims()) return false;
  for (int d = 0; d < dims(); ++d) {
    if (lo_[d] > other.lo_[d] || hi_[d] < other.hi_[d]) return false;
  }
  return true;
}

double Region::volume() const {
  double v = 1.0;
  for (int d = 0; d < dims(); ++d) {
    v *= static_cast<double>(extent(d) + 1);
  }
  return v;
}

double Region::distance(const std::vector<double>& p) const {
  double dist = 0.0;
  for (int d = 0; d < dims(); ++d) {
    double excess = 0.0;
    if (p[d] < static_cast<double>(lo_[d])) {
      excess = static_cast<double>(lo_[d]) - p[d];
    } else if (p[d] > static_cast<double>(hi_[d])) {
      excess = p[d] - static_cast<double>(hi_[d]);
    }
    dist = std::max(dist, excess);
  }
  return dist;
}

std::vector<double> Region::clamp(const std::vector<double>& p) const {
  DLAP_REQUIRE(static_cast<int>(p.size()) == dims(), "point dim mismatch");
  std::vector<double> c = p;
  for (int d = 0; d < dims(); ++d) {
    c[d] = std::clamp(c[d], static_cast<double>(lo_[d]),
                      static_cast<double>(hi_[d]));
  }
  return c;
}

std::vector<double> Region::center() const {
  std::vector<double> c(static_cast<std::size_t>(dims()));
  for (int d = 0; d < dims(); ++d) {
    c[d] = 0.5 * static_cast<double>(lo_[d] + hi_[d]);
  }
  return c;
}

index_t snap_to_grid(index_t x, index_t g, index_t lo, index_t hi) {
  DLAP_REQUIRE(g >= 1 && lo <= hi, "bad snap arguments");
  index_t snapped = ((x + g / 2) / g) * g;
  snapped = std::clamp(snapped, lo, hi);
  return snapped;
}

std::vector<Region> Region::split(index_t min_size,
                                  index_t granularity) const {
  std::vector<int> split_dims;
  std::vector<index_t> mid(static_cast<std::size_t>(dims()));
  for (int d = 0; d < dims(); ++d) {
    if (extent(d) >= 2 * min_size) {
      index_t m = snap_to_grid(lo_[d] + extent(d) / 2, granularity, lo_[d],
                               hi_[d]);
      // Guard against degenerate children after snapping.
      if (m > lo_[d] && m < hi_[d]) {
        split_dims.push_back(d);
        mid[d] = m;
      }
    }
  }
  if (split_dims.empty()) return {*this};

  std::vector<Region> children;
  const std::size_t combos = std::size_t{1} << split_dims.size();
  for (std::size_t mask = 0; mask < combos; ++mask) {
    std::vector<index_t> clo = lo_;
    std::vector<index_t> chi = hi_;
    for (std::size_t b = 0; b < split_dims.size(); ++b) {
      const int d = split_dims[b];
      if (mask & (std::size_t{1} << b)) {
        clo[d] = mid[d];  // upper half (midpoint shared: cheap sample reuse)
      } else {
        chi[d] = mid[d];
      }
    }
    children.emplace_back(std::move(clo), std::move(chi));
  }
  return children;
}

std::vector<std::vector<index_t>> Region::sample_grid(
    index_t points_per_dim, index_t granularity) const {
  DLAP_REQUIRE(points_per_dim >= 2, "need at least endpoint samples");
  std::vector<std::vector<index_t>> axes(static_cast<std::size_t>(dims()));
  for (int d = 0; d < dims(); ++d) {
    std::vector<index_t>& axis = axes[d];
    const index_t npts = std::min<index_t>(
        points_per_dim, std::max<index_t>(2, extent(d) / granularity + 1));
    for (index_t i = 0; i < npts; ++i) {
      const double frac =
          static_cast<double>(i) / static_cast<double>(npts - 1);
      const index_t raw =
          lo_[d] + static_cast<index_t>(std::llround(
                       frac * static_cast<double>(extent(d))));
      const index_t snapped = snap_to_grid(raw, granularity, lo_[d], hi_[d]);
      if (axis.empty() || axis.back() != snapped) axis.push_back(snapped);
    }
    if (axis.empty()) axis.push_back(lo_[d]);
  }

  // Cartesian product.
  std::vector<std::vector<index_t>> grid;
  std::vector<std::size_t> idx(axes.size(), 0);
  for (;;) {
    std::vector<index_t> p(axes.size());
    for (std::size_t d = 0; d < axes.size(); ++d) p[d] = axes[d][idx[d]];
    grid.push_back(std::move(p));
    std::size_t d = 0;
    while (d < axes.size()) {
      if (++idx[d] < axes[d].size()) break;
      idx[d] = 0;
      ++d;
    }
    if (d == axes.size()) break;
  }
  return grid;
}

std::string Region::to_string() const {
  std::string s = "[";
  for (int d = 0; d < dims(); ++d) {
    if (d) s += " x ";
    s += std::to_string(lo_[d]) + ".." + std::to_string(hi_[d]);
  }
  return s + "]";
}

}  // namespace dlap
