#pragma once
// Call-trace extraction (paper Section IV): "for each algorithm execution,
// we consider the list of subroutine invocations". TraceContext implements
// the KernelContext interface by recording a KernelCall per invocation
// instead of computing; running a blocked algorithm against it yields the
// exact invocation sequence the paper prints for trinv variant 1.

#include <vector>

#include "algorithms/kernel_context.hpp"
#include "sampler/calls.hpp"

namespace dlap {

using CallTrace = std::vector<KernelCall>;

class TraceContext final : public KernelContext {
 public:
  [[nodiscard]] const CallTrace& trace() const noexcept { return trace_; }

  /// Moves the recorded trace out and resets the context to a clean empty
  /// state, so it is immediately reusable for another recording (a
  /// moved-from vector is only valid-but-unspecified otherwise).
  [[nodiscard]] CallTrace take() {
    CallTrace out = std::move(trace_);
    trace_.clear();
    return out;
  }

  void clear() { trace_.clear(); }

  /// Pre-allocates storage for the expected number of calls (the trace
  /// generators pass their family's call-count estimate, killing
  /// reallocation churn during recording).
  void reserve(index_t calls) {
    if (calls > 0) trace_.reserve(static_cast<std::size_t>(calls));
  }

  void gemm(Trans transa, Trans transb, index_t m, index_t n, index_t k,
            double alpha, const double* a, index_t lda, const double* b,
            index_t ldb, double beta, double* c, index_t ldc) override;
  void trsm(Side side, Uplo uplo, Trans transa, Diag diag, index_t m,
            index_t n, double alpha, const double* a, index_t lda, double* b,
            index_t ldb) override;
  void trmm(Side side, Uplo uplo, Trans transa, Diag diag, index_t m,
            index_t n, double alpha, const double* a, index_t lda, double* b,
            index_t ldb) override;
  void syrk(Uplo uplo, Trans trans, index_t n, index_t k, double alpha,
            const double* a, index_t lda, double beta, double* c,
            index_t ldc) override;
  void trinv_unb(int variant, index_t n, double* l, index_t ldl) override;
  void chol_unb(int variant, index_t n, double* a, index_t lda) override;
  void sylv_unb(index_t m, index_t n, const double* l, index_t ldl,
                const double* u, index_t ldu, double* x,
                index_t ldx) override;

 private:
  CallTrace trace_;
};

/// Call-count estimates for the built-in blocked algorithms (slight upper
/// bounds). The trace generators reserve() their storage from these, and
/// callers sizing downstream structures (e.g. the trace compiler) may use
/// them as capacity hints.
[[nodiscard]] index_t trace_trinv_calls(index_t n, index_t blocksize);
[[nodiscard]] index_t trace_sylv_calls(index_t m, index_t n,
                                       index_t blocksize);
[[nodiscard]] index_t trace_chol_calls(index_t n, index_t blocksize);

/// Trace of trinv variant 1-4 on an n x n matrix (ldL = n) with the given
/// block size; no numerical work is performed.
[[nodiscard]] CallTrace trace_trinv(int variant, index_t n,
                                    index_t blocksize);

/// Trace of sylv variant 1-16 on L (m x m), U (n x n), X (m x n),
/// ldL = ldX = m, ldU = n.
[[nodiscard]] CallTrace trace_sylv(int variant, index_t m, index_t n,
                                   index_t blocksize);

/// Trace of chol variant 1-3 on an n x n matrix (ldA = n) with the given
/// block size; no numerical work is performed.
[[nodiscard]] CallTrace trace_chol(int variant, index_t n,
                                   index_t blocksize);

/// Total flops across a trace (sum of call_flops).
[[nodiscard]] double trace_flops(const CallTrace& trace);

}  // namespace dlap
