#include "predict/compiled_trace.hpp"

#include <cmath>
#include <map>
#include <utility>

namespace dlap {

CompiledTrace CompiledTrace::compile(const CallTrace& trace,
                                     const PredictionOptions& options) {
  CompiledTrace out;
  out.skip_empty_ = options.skip_empty_calls;
  out.source_calls_ = static_cast<index_t>(trace.size());
  out.order_.reserve(trace.size());

  // Dedupe maps. Ordered maps keep compile dependency-free; the compile
  // runs once per (spec, blocksize) point and is then cached, so lookup
  // constants do not sit on the query path.
  std::map<std::pair<int, std::string>, int> key_ids;
  std::map<std::pair<int, std::vector<index_t>>, std::int32_t> entry_ids;

  for (const KernelCall& call : trace) {
    if (options.skip_empty_calls && call_is_degenerate(call)) {
      ++out.skipped_;
      out.order_.push_back(kSkippedCall);
      continue;
    }
    const auto key_probe = std::make_pair(static_cast<int>(call.routine),
                                          call.flag_key());
    auto key_it = key_ids.find(key_probe);
    if (key_it == key_ids.end()) {
      key_it = key_ids.emplace(key_probe,
                               static_cast<int>(out.keys_.size())).first;
      out.keys_.push_back({call.routine, key_probe.second});
      out.key_entries_.emplace_back();
    }
    const int key = key_it->second;

    const auto entry_probe = std::make_pair(key, call.sizes);
    auto entry_it = entry_ids.find(entry_probe);
    if (entry_it == entry_ids.end()) {
      CompiledCall entry;
      entry.key = key;
      entry.sizes = call.sizes;
      entry.point.reserve(call.sizes.size());
      for (index_t s : call.sizes) {
        entry.point.push_back(static_cast<double>(s));
      }
      entry.flops = call_flops(call);
      entry.multiplicity = 0;
      entry.degenerate = call_is_degenerate(call);
      entry_it = entry_ids.emplace(
          entry_probe,
          static_cast<std::int32_t>(out.entries_.size())).first;
      out.key_entries_[static_cast<std::size_t>(key)].push_back(
          static_cast<std::uint32_t>(out.entries_.size()));
      out.entries_.push_back(std::move(entry));
    }
    const std::int32_t entry = entry_it->second;
    ++out.entries_[static_cast<std::size_t>(entry)].multiplicity;
    out.order_.push_back(entry);
  }
  return out;
}

Prediction CompiledTrace::predict(
    const std::vector<const RoutineModel*>& models_by_key) const {
  DLAP_REQUIRE(models_by_key.size() == keys_.size(),
               "CompiledTrace::predict: one model slot per key");

  // Evaluate every unique entry once, batched per key so one model's
  // region index and polynomial basis serve the whole batch.
  std::vector<SampleStats> est(entries_.size());
  std::vector<const std::vector<double>*> batch;
  std::vector<SampleStats> batch_out;
  for (std::size_t k = 0; k < keys_.size(); ++k) {
    const RoutineModel* model = models_by_key[k];
    if (model == nullptr) continue;  // occurrences counted missing below
    const auto& idxs = key_entries_[k];
    batch.clear();
    batch.reserve(idxs.size());
    for (std::uint32_t e : idxs) {
      batch.push_back(&entries_[e].point);
    }
    model->model.evaluate_many(batch, batch_out);
    for (std::size_t j = 0; j < idxs.size(); ++j) {
      est[idxs[j]] = batch_out[j];
    }
  }

  // Accumulate the cached estimates in source-call order: the exact loop
  // of Predictor::predict, with the model evaluation replaced by an array
  // read. This -- not multiplicity-scaled folding -- is what keeps the
  // result bit-identical for arbitrary model values.
  Prediction out;
  double var_sum = 0.0;
  for (const std::int32_t o : order_) {
    if (o == kSkippedCall) {
      ++out.skipped;
      continue;
    }
    const CompiledCall& entry = entries_[static_cast<std::size_t>(o)];
    if (models_by_key[static_cast<std::size_t>(entry.key)] == nullptr) {
      ++out.missing;
      continue;
    }
    const SampleStats& e = est[static_cast<std::size_t>(o)];
    out.ticks.min += e.min;
    out.ticks.median += e.median;
    out.ticks.mean += e.mean;
    out.ticks.max += e.max;
    var_sum += e.stddev * e.stddev;
    out.flops += entry.flops;
    ++out.calls;
  }
  out.ticks.stddev = std::sqrt(var_sum);
  out.ticks.count = out.calls;
  return out;
}

}  // namespace dlap
