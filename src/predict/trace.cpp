#include "predict/trace.hpp"

#include "algorithms/chol.hpp"
#include "algorithms/sylv.hpp"
#include "algorithms/trinv.hpp"
#include "common/matrix.hpp"

namespace dlap {

void TraceContext::gemm(Trans transa, Trans transb, index_t m, index_t n,
                        index_t k, double alpha, const double*, index_t lda,
                        const double*, index_t ldb, double beta, double*,
                        index_t ldc) {
  KernelCall c;
  c.routine = RoutineId::Gemm;
  c.flags = {to_char(transa), to_char(transb)};
  c.sizes = {m, n, k};
  c.scalars = {alpha, beta};
  c.leads = {lda, ldb, ldc};
  trace_.push_back(std::move(c));
}

void TraceContext::trsm(Side side, Uplo uplo, Trans transa, Diag diag,
                        index_t m, index_t n, double alpha, const double*,
                        index_t lda, double*, index_t ldb) {
  KernelCall c;
  c.routine = RoutineId::Trsm;
  c.flags = {to_char(side), to_char(uplo), to_char(transa), to_char(diag)};
  c.sizes = {m, n};
  c.scalars = {alpha};
  c.leads = {lda, ldb};
  trace_.push_back(std::move(c));
}

void TraceContext::trmm(Side side, Uplo uplo, Trans transa, Diag diag,
                        index_t m, index_t n, double alpha, const double*,
                        index_t lda, double*, index_t ldb) {
  KernelCall c;
  c.routine = RoutineId::Trmm;
  c.flags = {to_char(side), to_char(uplo), to_char(transa), to_char(diag)};
  c.sizes = {m, n};
  c.scalars = {alpha};
  c.leads = {lda, ldb};
  trace_.push_back(std::move(c));
}

void TraceContext::syrk(Uplo uplo, Trans trans, index_t n, index_t k,
                        double alpha, const double*, index_t lda, double beta,
                        double*, index_t ldc) {
  KernelCall c;
  c.routine = RoutineId::Syrk;
  c.flags = {to_char(uplo), to_char(trans)};
  c.sizes = {n, k};
  c.scalars = {alpha, beta};
  c.leads = {lda, ldc};
  trace_.push_back(std::move(c));
}

void TraceContext::trinv_unb(int variant, index_t n, double*, index_t ldl) {
  KernelCall c;
  switch (variant) {
    case 1: c.routine = RoutineId::Trinv1Unb; break;
    case 2: c.routine = RoutineId::Trinv2Unb; break;
    case 3: c.routine = RoutineId::Trinv3Unb; break;
    default: c.routine = RoutineId::Trinv4Unb; break;
  }
  c.sizes = {n};
  c.leads = {ldl};
  trace_.push_back(std::move(c));
}

void TraceContext::chol_unb(int variant, index_t n, double*, index_t lda) {
  KernelCall c;
  switch (variant) {
    case 1: c.routine = RoutineId::Chol1Unb; break;
    case 2: c.routine = RoutineId::Chol2Unb; break;
    default: c.routine = RoutineId::Chol3Unb; break;
  }
  c.sizes = {n};
  c.leads = {lda};
  trace_.push_back(std::move(c));
}

void TraceContext::sylv_unb(index_t m, index_t n, const double*, index_t ldl,
                            const double*, index_t ldu, double*,
                            index_t ldx) {
  KernelCall c;
  c.routine = RoutineId::SylvUnb;
  c.sizes = {m, n};
  c.leads = {ldl, ldu, ldx};
  trace_.push_back(std::move(c));
}

namespace {
index_t ceil_div(index_t a, index_t b) { return b > 0 ? (a + b - 1) / b : 0; }
}  // namespace

index_t trace_trinv_calls(index_t n, index_t blocksize) {
  // Per block iteration: at most a trmm, a trsm, a gemm and the unblocked
  // diagonal call (the gemm-free variants simply stay under the bound).
  return 4 * ceil_div(n, blocksize);
}

index_t trace_sylv_calls(index_t m, index_t n, index_t blocksize) {
  // Per X block: the unblocked solve plus a bounded number of prefix
  // updates (pull schedules fold the whole prefix into one gemm each).
  return 4 * ceil_div(m, blocksize) * ceil_div(n, blocksize) +
         ceil_div(m, blocksize) + ceil_div(n, blocksize);
}

index_t trace_chol_calls(index_t n, index_t blocksize) {
  // Per block iteration: at most trsm, syrk, gemm and the unblocked call.
  return 4 * ceil_div(n, blocksize);
}

CallTrace trace_trinv(int variant, index_t n, index_t blocksize) {
  // The algorithm only forms sub-block pointers; an untouched buffer keeps
  // that arithmetic valid without costing real memory pages.
  Matrix dummy(n, n);
  TraceContext ctx;
  ctx.reserve(trace_trinv_calls(n, blocksize));
  trinv_blocked(ctx, variant, n, dummy.data(), n > 0 ? n : 1, blocksize);
  return ctx.take();
}

CallTrace trace_sylv(int variant, index_t m, index_t n, index_t blocksize) {
  Matrix l(m, m), u(n, n), x(m, n);
  TraceContext ctx;
  ctx.reserve(trace_sylv_calls(m, n, blocksize));
  sylv_blocked(ctx, variant, m, n, l.data(), m > 0 ? m : 1, u.data(),
               n > 0 ? n : 1, x.data(), m > 0 ? m : 1, blocksize);
  return ctx.take();
}

CallTrace trace_chol(int variant, index_t n, index_t blocksize) {
  Matrix dummy(n, n);
  TraceContext ctx;
  ctx.reserve(trace_chol_calls(n, blocksize));
  chol_blocked(ctx, variant, n, dummy.data(), n > 0 ? n : 1, blocksize);
  return ctx.take();
}

double trace_flops(const CallTrace& trace) {
  double total = 0.0;
  for (const KernelCall& c : trace) total += call_flops(c);
  return total;
}

}  // namespace dlap
