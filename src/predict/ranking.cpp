#include "predict/ranking.hpp"

#include <algorithm>
#include <numeric>

namespace dlap {

std::vector<index_t> rank_order(const std::vector<double>& values) {
  std::vector<index_t> idx(values.size());
  std::iota(idx.begin(), idx.end(), index_t{0});
  std::stable_sort(idx.begin(), idx.end(), [&](index_t a, index_t b) {
    return values[static_cast<std::size_t>(a)] <
           values[static_cast<std::size_t>(b)];
  });
  return idx;
}

double kendall_tau(const std::vector<double>& a,
                   const std::vector<double>& b) {
  DLAP_REQUIRE(a.size() == b.size(), "kendall_tau: size mismatch");
  if (a.size() < 2) return 0.0;  // no pairs: defined as "no correlation"
  const index_t n = static_cast<index_t>(a.size());
  index_t concordant = 0;
  index_t discordant = 0;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = i + 1; j < n; ++j) {
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      const double prod = da * db;
      if (prod > 0.0) ++concordant;
      else if (prod < 0.0) ++discordant;
      // ties contribute to neither (tau-a convention)
    }
  }
  const double pairs = static_cast<double>(n) * (n - 1) / 2.0;
  return static_cast<double>(concordant - discordant) / pairs;
}

bool same_winner(const std::vector<double>& a, const std::vector<double>& b) {
  DLAP_REQUIRE(a.size() == b.size() && !a.empty(), "same_winner: bad input");
  const auto ia = std::min_element(a.begin(), a.end()) - a.begin();
  const auto ib = std::min_element(b.begin(), b.end()) - b.begin();
  return ia == ib;
}

double topk_overlap(const std::vector<double>& estimate,
                    const std::vector<double>& truth, index_t k) {
  DLAP_REQUIRE(estimate.size() == truth.size(), "topk: size mismatch");
  k = std::clamp<index_t>(k, 0, static_cast<index_t>(truth.size()));
  if (k == 0) return 1.0;  // the empty top set overlaps vacuously
  const auto re = rank_order(estimate);
  const auto rt = rank_order(truth);
  index_t hits = 0;
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = 0; j < k; ++j) {
      if (re[i] == rt[j]) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

std::vector<index_t> crossovers(const std::vector<double>& a,
                                const std::vector<double>& b) {
  DLAP_REQUIRE(a.size() == b.size(), "crossovers: size mismatch");
  std::vector<index_t> out;
  auto sign = [](double v) { return (v > 0.0) - (v < 0.0); };
  for (std::size_t i = 0; i + 1 < a.size(); ++i) {
    const int s0 = sign(a[i] - b[i]);
    const int s1 = sign(a[i + 1] - b[i + 1]);
    if (s0 != 0 && s1 != 0 && s0 != s1) out.push_back(static_cast<index_t>(i));
  }
  return out;
}

std::vector<index_t> fast_group(const std::vector<double>& ticks) {
  if (ticks.empty()) return {};
  if (ticks.size() == 1) return {0};  // a lone entry is its own fast group
  const auto order = rank_order(ticks);
  // Largest relative jump between consecutive sorted values marks the
  // boundary between the fast and the slow group.
  std::size_t cut = 0;
  double best_ratio = 0.0;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    const double lo = ticks[static_cast<std::size_t>(order[i])];
    const double hi = ticks[static_cast<std::size_t>(order[i + 1])];
    if (lo <= 0.0) continue;
    const double ratio = hi / lo;
    if (ratio > best_ratio) {
      best_ratio = ratio;
      cut = i;
    }
  }
  std::vector<index_t> fast(order.begin(),
                            order.begin() + static_cast<std::ptrdiff_t>(cut + 1));
  std::sort(fast.begin(), fast.end());
  return fast;
}

}  // namespace dlap
