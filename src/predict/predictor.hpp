#pragma once
// Prediction by model evaluation and accumulation (paper Section IV):
// "Each invocation corresponds to the evaluation of the corresponding
// performance model; the results are then accumulated, thus generating a
// performance prediction."

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "modeler/modeler.hpp"
#include "predict/trace.hpp"
#include "sampler/stats.hpp"

namespace dlap {

/// Transparent order over (routine, flags) pairs: lookups probe with
/// string_views straight off trace data, no temporary pair of strings per
/// resolved call.
struct RoutineFlagsLess {
  using is_transparent = void;

  template <class A1, class A2, class B1, class B2>
  [[nodiscard]] bool operator()(const std::pair<A1, A2>& a,
                                const std::pair<B1, B2>& b) const noexcept {
    const std::string_view ar(a.first), br(b.first);
    if (ar != br) return ar < br;
    return std::string_view(a.second) < std::string_view(b.second);
  }
};

/// In-memory set of models used by a prediction run; normally all entries
/// share one backend and locality (one "system" in the paper's sense).
/// Entries are held by shared pointer, so a set populated from the
/// repository is a view over the repository's cache: adding a model shares
/// it instead of copying its pieces.
class ModelSet {
 public:
  void add(RoutineModel model);
  void add(std::shared_ptr<const RoutineModel> model);

  /// nullptr when no model covers (routine, flags).
  [[nodiscard]] const RoutineModel* find(std::string_view routine,
                                         std::string_view flags) const;

  [[nodiscard]] std::size_t size() const { return models_.size(); }

 private:
  // Keyed by routine + flag values; backend/locality are properties of the
  // set as a whole.
  std::map<std::pair<std::string, std::string>,
           std::shared_ptr<const RoutineModel>, RoutineFlagsLess>
      models_;
};

struct PredictionOptions {
  /// Calls with any zero-size argument perform no flops; skip them rather
  /// than evaluating models outside their domain (degenerate calls appear
  /// naturally in traces, e.g. the first trinv iteration's dtrmm with
  /// n = 0).
  bool skip_empty_calls = true;
  /// When a model for a traced call is missing: throw (default) or count
  /// the call in Prediction::missing and move on.
  bool strict = true;
};

struct Prediction {
  /// Accumulated tick statistics: sums of min/median/mean/max, stddev
  /// combined as sqrt of summed variances (independence assumption).
  SampleStats ticks;
  double flops = 0.0;
  index_t calls = 0;    ///< calls that contributed estimates
  index_t skipped = 0;  ///< degenerate (zero-work) calls
  index_t missing = 0;  ///< calls without a model (non-strict mode)

  /// Efficiency estimate for a given total flop count (callers often use
  /// the operation's nominal flop formula rather than the trace sum).
  /// Defined for every input: returns 0 when total_flops is nonpositive or
  /// non-finite, and for empty or all-skipped traces (median 0) -- never
  /// NaN.
  [[nodiscard]] double efficiency_median(double total_flops) const;
};

/// Outcome of a non-throwing prediction: the accumulated prediction plus
/// the distinct (routine, flags) pairs that had no model, in first-miss
/// order. Prediction::missing counts every affected call; missing_keys
/// names each key once.
struct PredictReport {
  Prediction prediction;
  std::vector<std::pair<std::string, std::string>> missing_keys;

  [[nodiscard]] bool complete() const { return missing_keys.empty(); }
};

/// Where a Predictor gets its models: maps (routine name, flag values) to
/// a model, or nullptr when none covers the pair. The repository-backed
/// predictor plugs lazy repository loads (and on-demand generation) in
/// through this seam. Arguments are views over the caller's trace data,
/// valid only for the duration of the call -- resolvers that cache must
/// copy them.
using ModelResolver =
    std::function<const RoutineModel*(std::string_view routine,
                                      std::string_view flags)>;

class Predictor {
 public:
  /// Predicts from a fixed, pre-assembled set. The set must outlive the
  /// predictor.
  explicit Predictor(const ModelSet& models, PredictionOptions options = {});

  /// Predicts through a resolver (e.g. backed by the model repository).
  explicit Predictor(ModelResolver resolver, PredictionOptions options = {});

  [[nodiscard]] Prediction predict(const CallTrace& trace) const;

  /// Non-throwing core: like predict() with strict = false regardless of
  /// options, but additionally reports which keys were missing so callers
  /// can diagnose (the engine turns these into MissingModel statuses).
  [[nodiscard]] PredictReport predict_report(const CallTrace& trace) const;

  /// Convenience: prediction for a single call.
  [[nodiscard]] SampleStats predict_call(const KernelCall& call) const;

 private:
  ModelResolver resolve_;
  PredictionOptions options_;
};

/// Hot-path prediction over pre-resolved models: models[ids[i]] is the
/// model for trace[i] (ids.size() == trace.size(); negative or
/// out-of-range ids and nullptr entries count as missing, never throw).
/// The loop performs no resolver calls, no string construction and no
/// locking -- only array indexing -- and accumulates in exactly the same
/// order and arithmetic as Predictor::predict, so results are
/// bit-identical to the string-keyed path.
[[nodiscard]] Prediction predict_with_table(
    const CallTrace& trace, const std::vector<int>& ids,
    const std::vector<const RoutineModel*>& models,
    const PredictionOptions& options = {});

}  // namespace dlap
