#include "predict/predictor.hpp"

#include <algorithm>
#include <cmath>

#include "sampler/machine.hpp"

namespace dlap {

void ModelSet::add(RoutineModel model) {
  add(std::make_shared<const RoutineModel>(std::move(model)));
}

void ModelSet::add(std::shared_ptr<const RoutineModel> model) {
  DLAP_REQUIRE(model != nullptr, "ModelSet::add: null model");
  auto key = std::make_pair(model->key.routine, model->key.flags);
  models_.insert_or_assign(std::move(key), std::move(model));
}

const RoutineModel* ModelSet::find(const std::string& routine,
                                   const std::string& flags) const {
  const auto it = models_.find(std::make_pair(routine, flags));
  return it == models_.end() ? nullptr : it->second.get();
}

double Prediction::efficiency_median(double total_flops) const {
  if (ticks.median <= 0.0) return 0.0;
  return efficiency(total_flops, ticks.median);
}

Predictor::Predictor(const ModelSet& models, PredictionOptions options)
    : resolve_([set = &models](const std::string& routine,
                               const std::string& flags) {
        return set->find(routine, flags);
      }),
      options_(options) {}

Predictor::Predictor(ModelResolver resolver, PredictionOptions options)
    : resolve_(std::move(resolver)), options_(options) {
  DLAP_REQUIRE(resolve_ != nullptr, "Predictor: null model resolver");
}

SampleStats Predictor::predict_call(const KernelCall& call) const {
  const RoutineModel* m =
      resolve_(routine_name(call.routine), call.flag_key());
  if (m == nullptr) {
    throw lookup_error(std::string("no model for ") +
                       routine_name(call.routine) + " flags '" +
                       call.flag_key() + "'");
  }
  return m->model.evaluate(call.sizes);
}

Prediction Predictor::predict(const CallTrace& trace) const {
  Prediction out;
  double var_sum = 0.0;
  for (const KernelCall& call : trace) {
    if (options_.skip_empty_calls &&
        std::any_of(call.sizes.begin(), call.sizes.end(),
                    [](index_t s) { return s == 0; })) {
      ++out.skipped;
      continue;
    }
    const RoutineModel* m =
        resolve_(routine_name(call.routine), call.flag_key());
    if (m == nullptr) {
      if (options_.strict) {
        throw lookup_error(std::string("no model for ") +
                           routine_name(call.routine) + " flags '" +
                           call.flag_key() + "'");
      }
      ++out.missing;
      continue;
    }
    const SampleStats est = m->model.evaluate(call.sizes);
    out.ticks.min += est.min;
    out.ticks.median += est.median;
    out.ticks.mean += est.mean;
    out.ticks.max += est.max;
    var_sum += est.stddev * est.stddev;
    out.flops += call_flops(call);
    ++out.calls;
  }
  out.ticks.stddev = std::sqrt(var_sum);
  out.ticks.count = out.calls;
  return out;
}

}  // namespace dlap
