#include "predict/predictor.hpp"

#include <algorithm>
#include <cmath>

#include "sampler/machine.hpp"

namespace dlap {

namespace {

/// The one accumulation loop every predict path shares. `resolve(call, i)`
/// returns the model for trace[i] (nullptr = missing); `on_missing(call)`
/// runs for every missed call (it may throw -- strict mode -- or record
/// the key). Keeping a single loop guarantees the string-keyed and the
/// interned paths produce bit-identical results.
template <class ResolveFn, class MissFn>
Prediction accumulate_trace(const CallTrace& trace,
                            const PredictionOptions& options,
                            ResolveFn&& resolve, MissFn&& on_missing) {
  Prediction out;
  double var_sum = 0.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const KernelCall& call = trace[i];
    if (options.skip_empty_calls && call_is_degenerate(call)) {
      ++out.skipped;
      continue;
    }
    const RoutineModel* m = resolve(call, i);
    if (m == nullptr) {
      ++out.missing;
      on_missing(call);
      continue;
    }
    const SampleStats est = m->model.evaluate(call.sizes);
    out.ticks.min += est.min;
    out.ticks.median += est.median;
    out.ticks.mean += est.mean;
    out.ticks.max += est.max;
    var_sum += est.stddev * est.stddev;
    out.flops += call_flops(call);
    ++out.calls;
  }
  out.ticks.stddev = std::sqrt(var_sum);
  out.ticks.count = out.calls;
  return out;
}

[[noreturn]] void throw_missing(const KernelCall& call) {
  throw lookup_error(std::string("no model for ") +
                     routine_name(call.routine) + " flags '" +
                     call.flag_key() + "'");
}

}  // namespace

void ModelSet::add(RoutineModel model) {
  add(std::make_shared<const RoutineModel>(std::move(model)));
}

void ModelSet::add(std::shared_ptr<const RoutineModel> model) {
  DLAP_REQUIRE(model != nullptr, "ModelSet::add: null model");
  auto key = std::make_pair(model->key.routine, model->key.flags);
  models_.insert_or_assign(std::move(key), std::move(model));
}

const RoutineModel* ModelSet::find(std::string_view routine,
                                   std::string_view flags) const {
  const auto it = models_.find(std::make_pair(routine, flags));
  return it == models_.end() ? nullptr : it->second.get();
}

double Prediction::efficiency_median(double total_flops) const {
  // Defined everywhere: empty/all-skipped traces (median 0), zero-flop
  // formulas and NaN inputs all yield 0 instead of propagating NaN or
  // tripping efficiency()'s nonpositive-ticks requirement.
  if (!(ticks.median > 0.0) || !(total_flops > 0.0) ||
      !std::isfinite(total_flops)) {
    return 0.0;
  }
  return efficiency(total_flops, ticks.median);
}

Predictor::Predictor(const ModelSet& models, PredictionOptions options)
    : resolve_([set = &models](std::string_view routine,
                               std::string_view flags) {
        return set->find(routine, flags);
      }),
      options_(options) {}

Predictor::Predictor(ModelResolver resolver, PredictionOptions options)
    : resolve_(std::move(resolver)), options_(options) {
  DLAP_REQUIRE(resolve_ != nullptr, "Predictor: null model resolver");
}

SampleStats Predictor::predict_call(const KernelCall& call) const {
  const RoutineModel* m =
      resolve_(routine_name(call.routine), call.flag_view());
  if (m == nullptr) throw_missing(call);
  return m->model.evaluate(call.sizes);
}

Prediction Predictor::predict(const CallTrace& trace) const {
  return accumulate_trace(
      trace, options_,
      [this](const KernelCall& call, std::size_t) {
        // Views straight off the call: no string construction per call.
        return resolve_(routine_name(call.routine), call.flag_view());
      },
      [this](const KernelCall& call) {
        if (options_.strict) throw_missing(call);
      });
}

PredictReport Predictor::predict_report(const CallTrace& trace) const {
  PredictReport report;
  report.prediction = accumulate_trace(
      trace, options_,
      [this](const KernelCall& call, std::size_t) {
        return resolve_(routine_name(call.routine), call.flag_view());
      },
      [&report](const KernelCall& call) {
        auto key = std::make_pair(std::string(routine_name(call.routine)),
                                  call.flag_key());
        if (std::find(report.missing_keys.begin(), report.missing_keys.end(),
                      key) == report.missing_keys.end()) {
          report.missing_keys.push_back(std::move(key));
        }
      });
  return report;
}

Prediction predict_with_table(const CallTrace& trace,
                              const std::vector<int>& ids,
                              const std::vector<const RoutineModel*>& models,
                              const PredictionOptions& options) {
  DLAP_REQUIRE(ids.size() == trace.size(),
               "predict_with_table: one id per traced call");
  return accumulate_trace(
      trace, options,
      [&](const KernelCall&, std::size_t i) -> const RoutineModel* {
        const int id = ids[i];
        if (id < 0 || static_cast<std::size_t>(id) >= models.size()) {
          return nullptr;
        }
        return models[static_cast<std::size_t>(id)];
      },
      [](const KernelCall&) {});
}

}  // namespace dlap
