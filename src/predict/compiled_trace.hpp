#pragma once
// CompiledTrace: the dedicated representation of a call trace for the
// predict hot path.
//
// A blocked algorithm's trace is highly redundant: sylv on an (m, n)
// problem issues O((m/b)*(n/b)) calls but only O(m/b + n/b) distinct
// (routine, flags, sizes) tuples, and every unblocked diagonal call of
// trinv/chol repeats the same full-block size. Compiling a CallTrace
// dedupes it into
//   - keys:    the distinct (routine, flags) resolver keys (what a model
//              is looked up by),
//   - entries: the unique (key, size point) calls, each carrying its
//              multiplicity and precomputed flop count,
//   - order:   per source call, the entry it deduped into (or "skipped"),
// so prediction evaluates each model at each unique point ONCE (batched
// per key through PiecewiseModel::evaluate_many) and then accumulates the
// cached estimates over the original call order.
//
// Accumulating in source order -- rather than folding each entry's
// contribution as multiplicity * estimate (and multiplicity-scaled
// variance for the stddev) -- costs a few additions per call but keeps
// the result BIT-identical to Predictor::predict for arbitrary model
// values: floating-point addition is not associative, so any regrouping
// would drift in the last ulps. The expensive work (resolver lookups,
// region search, polynomial evaluation) is per unique entry either way.

#include <cstdint>
#include <string>
#include <vector>

#include "predict/predictor.hpp"
#include "predict/trace.hpp"

namespace dlap {

/// One distinct (routine, flags) pair of a compiled trace: the unit of
/// model resolution. Backend/locality are properties of the query, not
/// the trace, so a compiled trace is reusable across systems.
struct CompiledKey {
  RoutineId routine = RoutineId::Gemm;
  std::string flags;  ///< flag values joined (KernelCall::flag_key)
};

/// One unique (key, size point) call: the unit of model evaluation.
struct CompiledCall {
  int key = 0;                  ///< index into CompiledTrace::keys()
  std::vector<index_t> sizes;   ///< size arguments in signature order
  std::vector<double> point;    ///< sizes as doubles (evaluation input)
  double flops = 0.0;           ///< flops of ONE occurrence
  index_t multiplicity = 0;     ///< occurrences in the source trace
  bool degenerate = false;      ///< any zero size (present only when
                                ///< compiled with skip_empty_calls off)
};

class CompiledTrace {
 public:
  CompiledTrace() = default;

  /// Compiles `trace`. With options.skip_empty_calls (the default),
  /// degenerate zero-size calls are counted and dropped -- they never
  /// reach a model, exactly as in Predictor::predict. options.strict is
  /// irrelevant here (predict() is table-driven and never throws on
  /// missing models, like predict_with_table).
  [[nodiscard]] static CompiledTrace compile(const CallTrace& trace,
                                             const PredictionOptions& options =
                                                 {});

  [[nodiscard]] const std::vector<CompiledKey>& keys() const noexcept {
    return keys_;
  }
  [[nodiscard]] const std::vector<CompiledCall>& entries() const noexcept {
    return entries_;
  }
  /// Entry indices per key (evaluation batches).
  [[nodiscard]] const std::vector<std::uint32_t>& entries_of(
      int key) const {
    return key_entries_.at(static_cast<std::size_t>(key));
  }

  /// Calls in the source trace.
  [[nodiscard]] index_t source_calls() const noexcept {
    return source_calls_;
  }
  /// Unique (key, point) entries -- the number of model evaluations a
  /// prediction performs.
  [[nodiscard]] index_t unique_calls() const noexcept {
    return static_cast<index_t>(entries_.size());
  }
  /// Degenerate calls dropped at compile time (skip_empty_calls only).
  [[nodiscard]] index_t skipped() const noexcept { return skipped_; }
  [[nodiscard]] bool skip_empty_calls() const noexcept {
    return skip_empty_;
  }

  /// Predicts against pre-resolved models: models_by_key[k] is the model
  /// for keys()[k] (nullptr = missing; such entries' occurrences count
  /// into Prediction::missing, never throw). The result is bit-identical
  /// to Predictor::predict / predict_with_table over the source trace
  /// with the same models and options.
  [[nodiscard]] Prediction predict(
      const std::vector<const RoutineModel*>& models_by_key) const;

 private:
  std::vector<CompiledKey> keys_;
  std::vector<CompiledCall> entries_;
  std::vector<std::vector<std::uint32_t>> key_entries_;
  /// Per source call: entry index, or kSkippedCall for dropped
  /// degenerate calls.
  std::vector<std::int32_t> order_;
  index_t source_calls_ = 0;
  index_t skipped_ = 0;
  bool skip_empty_ = true;

  static constexpr std::int32_t kSkippedCall = -1;
};

}  // namespace dlap
