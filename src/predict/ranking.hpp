#pragma once
// Ranking analysis: the paper's success criterion is not absolute
// accuracy but *correctly ordering* algorithmic variants (Section IV).
// These helpers quantify how well a predicted ordering matches a measured
// one: full ranking, rank correlation, best-variant agreement, group
// separation, and crossover detection.

#include <vector>

#include "common/types.hpp"

namespace dlap {

/// Indices of `values` sorted ascending (rank 0 = smallest = fastest when
/// values are ticks). Ties keep original order.
[[nodiscard]] std::vector<index_t> rank_order(
    const std::vector<double>& values);

/// Kendall rank correlation coefficient tau-a between two score vectors
/// (+1: identical order, -1: reversed). Sizes must match; with fewer than
/// two entries there are no pairs to compare and the result is defined as
/// 0 (no evidence of correlation, rather than NaN or an exception).
[[nodiscard]] double kendall_tau(const std::vector<double>& a,
                                 const std::vector<double>& b);

/// True when both vectors attain their minimum at the same index.
[[nodiscard]] bool same_winner(const std::vector<double>& a,
                               const std::vector<double>& b);

/// Fraction of the k best entries of `truth` that are also among the k
/// best of `estimate` (top-k overlap / k). Sizes must match; k is clamped
/// to [0, size], and k == 0 (including empty inputs) is defined as 1 --
/// the empty top set overlaps vacuously.
[[nodiscard]] double topk_overlap(const std::vector<double>& estimate,
                                  const std::vector<double>& truth,
                                  index_t k);

/// Indices i where the sign of a[i]-b[i] differs from a[i+1]-b[i+1]
/// (series crossovers, e.g. the paper's variant 3/4 crossover at n~650).
[[nodiscard]] std::vector<index_t> crossovers(const std::vector<double>& a,
                                              const std::vector<double>& b);

/// Splits values into a "fast" and a "slow" group at the largest relative
/// gap of the sorted values; returns the indices of the fast group. Used
/// for the Sylvester experiment's two performance groups. Degenerate
/// inputs have defined results: empty -> empty, a single entry -> {0}
/// (the only entry is trivially the fast group).
[[nodiscard]] std::vector<index_t> fast_group(
    const std::vector<double>& ticks);

}  // namespace dlap
