#include "sampler/sample_store.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>
#include <thread>

#include "common/str.hpp"
#include "storage/container.hpp"

namespace dlap {

namespace {

// First line of every journal. Versioned so the format can evolve; a
// file with a different first line is treated as empty (and rewritten by
// the next append through the normal append-only path).
constexpr const char* kMagic = "dlaperf-samples v1";

// One journal line per point:
//   p <dims> <coords...> <min> <median> <mean> <max> <stddev> <count>
// written with 17 significant digits so every double round-trips
// exactly -- warm-started generations must be bit-identical to the runs
// that paid for the measurements.
void write_line(std::ostream& os, const std::vector<index_t>& point,
                const SampleStats& stats) {
  os << "p " << point.size();
  for (const index_t c : point) os << ' ' << c;
  os << std::setprecision(17);
  os << ' ' << stats.min << ' ' << stats.median << ' ' << stats.mean << ' '
     << stats.max << ' ' << stats.stddev << ' ' << stats.count << '\n';
}

}  // namespace

std::string_view SampleStore::journal_magic() { return kMagic; }

std::string SampleStore::format_journal_line(
    const std::vector<index_t>& point, const SampleStats& stats) {
  std::ostringstream os;
  write_line(os, point, stats);
  return os.str();
}

bool SampleStore::parse_journal_line(const std::string& line,
                                     std::vector<index_t>* point,
                                     SampleStats* stats) {
  std::istringstream is(line);
  std::string tag;
  std::size_t dims = 0;
  if (!(is >> tag >> dims) || tag != "p" || dims == 0 || dims > 8) {
    return false;
  }
  point->resize(dims);
  for (index_t& c : *point) {
    if (!(is >> c)) return false;
  }
  if (!(is >> stats->min >> stats->median >> stats->mean >> stats->max >>
        stats->stddev >> stats->count)) {
    return false;
  }
  return true;
}

SampleStore::SampleStore(std::filesystem::path dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) std::filesystem::create_directories(dir_);
}

void SampleStore::attach_container(
    std::shared_ptr<const storage::ContainerReader> reader) {
  std::lock_guard<std::mutex> lock(aux_mutex_);
  container_ = std::move(reader);
}

std::shared_ptr<const storage::ContainerReader> SampleStore::container()
    const {
  std::lock_guard<std::mutex> lock(aux_mutex_);
  return container_;
}

std::vector<std::string> SampleStore::journal_damage_notes() const {
  std::lock_guard<std::mutex> lock(aux_mutex_);
  return damage_notes_;
}

std::string SampleStore::journal_filename(std::string_view engine_key) {
  return escape_filename_component(engine_key) + ".samples";
}

std::string SampleStore::key_from_journal_filename(std::string_view filename) {
  constexpr std::string_view kExt = ".samples";
  if (filename.size() <= kExt.size() ||
      filename.substr(filename.size() - kExt.size()) != kExt) {
    throw parse_error("not a sample journal file name: " +
                      std::string(filename));
  }
  return unescape_filename_component(
      filename.substr(0, filename.size() - kExt.size()));
}

SampleStore::KeyCache& SampleStore::key_cache(std::string_view engine_key) {
  std::lock_guard<std::mutex> lock(table_mutex_);
  const auto it = keys_.find(engine_key);
  if (it != keys_.end()) return it->second;
  return keys_.try_emplace(std::string(engine_key)).first->second;
}

void SampleStore::ensure_replayed(std::string_view engine_key,
                                  KeyCache& cache) {
  if (cache.replayed) return;
  cache.replayed = true;

  if (!dir_.empty()) {
    // Replay the journal, if any. The file is append-only full lines, so
    // the expected damage after a crash is a truncated tail: stop at the
    // first line that does not parse (or lacks its newline) and keep
    // everything before it. Entries replayed here count as Disk when
    // probed. A damaged journal is rewritten from the recovered entries
    // (atomically: temp file + rename) so that future appends land after
    // a clean final newline instead of fusing with the torn tail.
    const std::filesystem::path path = dir_ / journal_filename(engine_key);
    std::string text;
    bool have_file = false;
    {
      std::ifstream in(path, std::ios::binary);
      if (in.good()) {
        have_file = true;
        std::ostringstream buf;
        buf << in.rdbuf();
        text = buf.str();
      }
    }

    if (have_file) {
      bool damaged = false;
      std::string damage_what;
      std::size_t pos = 0;
      std::size_t lineno = 0;  // 1-based number of the line just read
      const auto next_line = [&]() -> std::optional<std::string> {
        if (pos >= text.size()) return std::nullopt;
        ++lineno;
        const auto nl = text.find('\n', pos);
        if (nl == std::string::npos) {
          damaged = true;  // unterminated tail: a crash mid-append
          damage_what = "unterminated final line";
          pos = text.size();
          return std::nullopt;
        }
        std::string line = text.substr(pos, nl - pos);
        pos = nl + 1;
        return line;
      };

      const std::optional<std::string> magic = next_line();
      if (!magic.has_value() || *magic != kMagic) {
        if (!text.empty()) {
          damaged = true;  // not a journal at all
          damage_what = "bad magic (not a dlaperf sample journal)";
        }
      } else {
        std::vector<index_t> point;
        SampleStats stats;
        while (const std::optional<std::string> line = next_line()) {
          if (!parse_journal_line(*line, &point, &stats)) {
            damaged = true;
            damage_what = "malformed sample line";
            break;
          }
          cache.points.emplace(point, Entry{stats, /*from_disk=*/true});
        }
      }

      if (damaged) {
        {
          std::lock_guard<std::mutex> lock(aux_mutex_);
          damage_notes_.push_back(path.string() + ":" +
                                  std::to_string(lineno) + ": " +
                                  damage_what + "; kept " +
                                  std::to_string(cache.points.size()) +
                                  " entries, discarded the rest");
        }
        const std::filesystem::path tmp =
            path.string() + ".tmp" +
            std::to_string(
                std::hash<std::thread::id>{}(std::this_thread::get_id()));
        std::ofstream out(tmp, std::ios::binary);
        if (out.good()) {
          out << kMagic << '\n';
          for (const auto& [p, entry] : cache.points) {
            write_line(out, p, entry.stats);
          }
          out.close();
          std::error_code ec;
          std::filesystem::rename(tmp, path, ec);  // best effort: cache wins
        }
      }
    }
  }

  // Container section, replayed below the journal (emplace keeps the
  // journal's entry on overlap: journal lines are newer than the packed
  // snapshot). Done after the damaged-journal rewrite above so recovery
  // never folds packed entries into the text journal.
  const std::shared_ptr<const storage::ContainerReader> packed = container();
  if (packed != nullptr) {
    const auto section = packed->find_samples(engine_key);
    if (section.has_value()) {
      packed->for_each_sample(
          *section,
          [&](const std::vector<index_t>& point, const SampleStats& stats) {
            cache.points.emplace(point, Entry{stats, /*from_disk=*/true});
          });
    }
  }
}

void SampleStore::append(std::string_view engine_key, KeyCache& cache,
                         const std::vector<index_t>& point,
                         const SampleStats& stats) {
  if (dir_.empty()) return;
  // Non-finite statistics (a hostile measure hook) would serialize as
  // inf/nan, which istream extraction cannot read back -- replay would
  // treat the line as a torn tail and discard every entry after it.
  // Keep such points memory-only instead of poisoning the journal.
  if (!std::isfinite(stats.min) || !std::isfinite(stats.median) ||
      !std::isfinite(stats.mean) || !std::isfinite(stats.max) ||
      !std::isfinite(stats.stddev)) {
    return;
  }
  if (!cache.journal.is_open()) {
    const std::filesystem::path path = dir_ / journal_filename(engine_key);
    const bool fresh =
        !std::filesystem::exists(path) || std::filesystem::file_size(path) == 0;
    // Binary: replay reads in binary and splits on '\n', so text-mode
    // CRLF translation (Windows) would corrupt the magic-line match.
    cache.journal.open(path, std::ios::app | std::ios::binary);
    if (!cache.journal.good()) return;  // read-only repository: stay in memory
    if (fresh) cache.journal << kMagic << '\n';
  }
  // One ostream << chain per line plus a flush: a crash can truncate the
  // final line but never interleave or corrupt earlier ones.
  write_line(cache.journal, point, stats);
  cache.journal.flush();
}

const SampleStore::Entry& SampleStore::insert_locked(
    std::string_view engine_key, KeyCache& cache,
    const std::vector<index_t>& point, const SampleStats& stats) {
  const auto [it, inserted] =
      cache.points.emplace(point, Entry{stats, /*from_disk=*/false});
  if (inserted) append(engine_key, cache, point, stats);
  return it->second;
}

SampleStore::Origin SampleStore::probe(std::string_view engine_key,
                                       const std::vector<index_t>& point,
                                       SampleStats* stats, bool count_miss) {
  KeyCache& cache = key_cache(engine_key);
  std::lock_guard<std::mutex> lock(cache.m);
  ensure_replayed(engine_key, cache);
  const auto it = cache.points.find(point);
  if (it == cache.points.end()) {
    if (count_miss) misses_.fetch_add(1, std::memory_order_relaxed);
    return Origin::Miss;
  }
  if (stats != nullptr) *stats = it->second.stats;
  if (it->second.from_disk) {
    disk_hits_.fetch_add(1, std::memory_order_relaxed);
    return Origin::Disk;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return Origin::Memory;
}

void SampleStore::insert(std::string_view engine_key,
                         const std::vector<index_t>& point,
                         const SampleStats& stats) {
  KeyCache& cache = key_cache(engine_key);
  std::lock_guard<std::mutex> lock(cache.m);
  ensure_replayed(engine_key, cache);
  (void)insert_locked(engine_key, cache, point, stats);
}

SampleStats SampleStore::get_or_measure(std::string_view engine_key,
                                        const std::vector<index_t>& point,
                                        const Measure& measure) {
  SampleStats found;
  if (probe(engine_key, point, &found) != Origin::Miss) return found;
  // Measure outside the lock: sampling is the expensive part, and holding
  // the lock here would serialize all concurrent measurements of the key.
  // Duplicated measurements of one (key, point) pair can race here; the
  // first insert wins and both callers return coherent statistics.
  const SampleStats stats = measure(point);
  KeyCache& cache = key_cache(engine_key);
  std::lock_guard<std::mutex> lock(cache.m);
  return insert_locked(engine_key, cache, point, stats).stats;
}

std::size_t SampleStore::size() const {
  std::lock_guard<std::mutex> lock(table_mutex_);
  std::size_t total = 0;
  for (const auto& [key, cache] : keys_) {
    std::lock_guard<std::mutex> key_lock(cache.m);
    total += cache.points.size();
  }
  return total;
}

std::uint64_t SampleStore::hits() const {
  return hits_.load(std::memory_order_relaxed);
}

std::uint64_t SampleStore::disk_hits() const {
  return disk_hits_.load(std::memory_order_relaxed);
}

std::uint64_t SampleStore::misses() const {
  return misses_.load(std::memory_order_relaxed);
}

void SampleStore::clear() {
  // Nodes are never erased (probers may hold KeyCache references), so
  // clearing empties each key in place: points dropped, journal stream
  // closed, replayed reset so a persistent store re-reads its journals.
  std::lock_guard<std::mutex> lock(table_mutex_);
  for (auto& [key, cache] : keys_) {
    std::lock_guard<std::mutex> key_lock(cache.m);
    cache.points.clear();
    cache.replayed = false;
    if (cache.journal.is_open()) cache.journal.close();
  }
  hits_.store(0, std::memory_order_relaxed);
  disk_hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace dlap
