#pragma once
// Cycle-accurate timing.
//
// The paper's fundamental metric is `ticks`, read from the x86 time stamp
// counter via RDTSC (Section II-A; PAPI ultimately reads the same
// register). On x86-64 we use RDTSCP, which waits for earlier instructions
// to retire; elsewhere we fall back to std::chrono::steady_clock
// nanoseconds (still a monotone "tick" count, only the unit changes).

#include <cstdint>

namespace dlap {

/// Current tick count (TSC cycles on x86-64, nanoseconds elsewhere).
[[nodiscard]] std::uint64_t read_ticks() noexcept;

/// Measured ticks per second, calibrated once per process against
/// steady_clock (used to convert tick counts to seconds for reporting).
[[nodiscard]] double ticks_per_second();

/// True when the tick source is the hardware TSC.
[[nodiscard]] bool ticks_are_tsc() noexcept;

}  // namespace dlap
