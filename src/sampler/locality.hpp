#pragma once
// Memory-locality control (paper Section II-B).
//
// In-cache: operands are touched immediately before the timed run so they
// sit in the lowest cache level that can hold them; this bounds the
// routine's best-case performance. Out-of-cache: the entire cache
// hierarchy is flushed by streaming through a buffer much larger than any
// LLC, so the timed run pays for all data transfers.

#include <string>

#include "common/types.hpp"

namespace dlap {

enum class Locality : int { InCache = 0, OutOfCache = 1 };

[[nodiscard]] const char* locality_name(Locality loc);
[[nodiscard]] Locality locality_from_name(const std::string& name);

/// Evicts cached data by streaming writes+reads over a large buffer
/// (allocated once, lazily). Coarse hammer; on machines whose last-level
/// cache exceeds the buffer it cannot guarantee eviction, which is why the
/// Sampler uses flush_operand instead.
void flush_cache();

/// Evicts exactly the given operand from the entire cache hierarchy via
/// per-cache-line CLFLUSH (x86; falls back to flush_cache elsewhere).
void flush_operand(const double* data, index_t rows, index_t cols,
                   index_t ld);

/// Reads every element of the buffer region (rows x cols, leading
/// dimension ld) to pull it into cache.
void touch_operand(const double* data, index_t rows, index_t cols,
                   index_t ld);

}  // namespace dlap
