#include "sampler/locality.hpp"

#include <vector>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define DLAPERF_HAVE_CLFLUSH 1
#else
#define DLAPERF_HAVE_CLFLUSH 0
#endif

namespace dlap {

const char* locality_name(Locality loc) {
  return loc == Locality::InCache ? "in_cache" : "out_of_cache";
}

Locality locality_from_name(const std::string& name) {
  if (name == "in_cache") return Locality::InCache;
  if (name == "out_of_cache") return Locality::OutOfCache;
  throw parse_error("unknown locality: '" + name + "'");
}

void flush_cache() {
  // 64 MiB of doubles: several times larger than any last-level cache this
  // library is expected to meet. Write-then-read defeats both write
  // allocation tricks and dead-store elimination.
  constexpr std::size_t kFlushDoubles = 8u << 20;
  static std::vector<double> buffer(kFlushDoubles, 1.0);
  double acc = 0.0;
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    buffer[i] += 1.0;
    acc += buffer[i];
  }
  // Publish the accumulator so the loop cannot be optimized away.
  volatile double sink = acc;
  (void)sink;
}

void flush_operand(const double* data, index_t rows, index_t cols,
                   index_t ld) {
  if (rows == 0 || cols == 0) return;
#if DLAPERF_HAVE_CLFLUSH
  constexpr index_t kLine = 64 / static_cast<index_t>(sizeof(double));
  _mm_mfence();
  for (index_t j = 0; j < cols; ++j) {
    const double* col = data + j * ld;
    for (index_t i = 0; i < rows; i += kLine) {
      _mm_clflush(col + i);
    }
    // Columns need not be line-aligned: cover the tail element's line.
    _mm_clflush(col + rows - 1);
  }
  _mm_mfence();
#else
  (void)data;
  (void)ld;
  flush_cache();
#endif
}

void touch_operand(const double* data, index_t rows, index_t cols,
                   index_t ld) {
  double acc = 0.0;
  for (index_t j = 0; j < cols; ++j) {
    const double* col = data + j * ld;
    for (index_t i = 0; i < rows; ++i) acc += col[i];
  }
  volatile double sink = acc;
  (void)sink;
}

}  // namespace dlap
