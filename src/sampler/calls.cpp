#include "sampler/calls.hpp"

#include <algorithm>

#include "algorithms/chol.hpp"
#include "algorithms/sylv.hpp"
#include "algorithms/trinv.hpp"
#include "common/str.hpp"

namespace dlap {

namespace {

struct RoutineMeta {
  const char* name;
  std::vector<ArgKind> signature;
};

const std::vector<RoutineMeta>& routine_table() {
  using K = ArgKind;
  static const std::vector<RoutineMeta> table = {
      // dgemm(transA, transB, m, n, k, alpha, A, ldA, B, ldB, beta, C, ldC)
      {"dgemm",
       {K::Flag, K::Flag, K::Size, K::Size, K::Size, K::Scalar, K::Data,
        K::Lead, K::Data, K::Lead, K::Scalar, K::Data, K::Lead}},
      // dtrsm(side, uplo, transA, diag, m, n, alpha, A, ldA, B, ldB)
      {"dtrsm",
       {K::Flag, K::Flag, K::Flag, K::Flag, K::Size, K::Size, K::Scalar,
        K::Data, K::Lead, K::Data, K::Lead}},
      {"dtrmm",
       {K::Flag, K::Flag, K::Flag, K::Flag, K::Size, K::Size, K::Scalar,
        K::Data, K::Lead, K::Data, K::Lead}},
      // dsyrk(uplo, trans, n, k, alpha, A, ldA, beta, C, ldC)
      {"dsyrk",
       {K::Flag, K::Flag, K::Size, K::Size, K::Scalar, K::Data, K::Lead,
        K::Scalar, K::Data, K::Lead}},
      // dsymm(side, uplo, m, n, alpha, A, ldA, B, ldB, beta, C, ldC)
      {"dsymm",
       {K::Flag, K::Flag, K::Size, K::Size, K::Scalar, K::Data, K::Lead,
        K::Data, K::Lead, K::Scalar, K::Data, K::Lead}},
      // dsyr2k(uplo, trans, n, k, alpha, A, ldA, B, ldB, beta, C, ldC)
      {"dsyr2k",
       {K::Flag, K::Flag, K::Size, K::Size, K::Scalar, K::Data, K::Lead,
        K::Data, K::Lead, K::Scalar, K::Data, K::Lead}},
      // trinvI_unb(n, L, ldL)
      {"trinv1_unb", {K::Size, K::Data, K::Lead}},
      {"trinv2_unb", {K::Size, K::Data, K::Lead}},
      {"trinv3_unb", {K::Size, K::Data, K::Lead}},
      {"trinv4_unb", {K::Size, K::Data, K::Lead}},
      // sylv_unb(m, n, L, ldL, U, ldU, X, ldX)
      {"sylv_unb",
       {K::Size, K::Size, K::Data, K::Lead, K::Data, K::Lead, K::Data,
        K::Lead}},
      // cholI_unb(n, A, ldA)
      {"chol1_unb", {K::Size, K::Data, K::Lead}},
      {"chol2_unb", {K::Size, K::Data, K::Lead}},
      {"chol3_unb", {K::Size, K::Data, K::Lead}},
  };
  return table;
}

const RoutineMeta& meta(RoutineId id) {
  return routine_table()[static_cast<std::size_t>(id)];
}

index_t count_kind(RoutineId id, ArgKind kind) {
  const auto& sig = meta(id).signature;
  return std::count(sig.begin(), sig.end(), kind);
}

}  // namespace

const char* routine_name(RoutineId id) { return meta(id).name; }

RoutineId routine_from_name(const std::string& name) {
  const auto& table = routine_table();
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (name == table[i].name) return static_cast<RoutineId>(i);
  }
  throw lookup_error("unknown routine: '" + name + "'");
}

const std::vector<ArgKind>& routine_signature(RoutineId id) {
  return meta(id).signature;
}

bool call_is_degenerate(const KernelCall& call) {
  return std::any_of(call.sizes.begin(), call.sizes.end(),
                     [](index_t s) { return s == 0; });
}

void validate_call(const KernelCall& c) {
  DLAP_REQUIRE(static_cast<int>(c.routine) >= 0 &&
                   static_cast<int>(c.routine) < kRoutineCount,
               "invalid routine id");
  const auto expect = [&](ArgKind k, index_t have, const char* what) {
    DLAP_REQUIRE(have == count_kind(c.routine, k),
                 std::string(routine_name(c.routine)) + ": wrong number of " +
                     what + " arguments");
  };
  expect(ArgKind::Flag, static_cast<index_t>(c.flags.size()), "flag");
  expect(ArgKind::Size, static_cast<index_t>(c.sizes.size()), "size");
  expect(ArgKind::Scalar, static_cast<index_t>(c.scalars.size()), "scalar");
  expect(ArgKind::Lead, static_cast<index_t>(c.leads.size()), "lead");
  for (index_t s : c.sizes) {
    DLAP_REQUIRE(s >= 0, "negative size argument");
  }
  // Leading dimensions are checked against operand shapes.
  for (const OperandShape& shape : operand_shapes(c)) {
    DLAP_REQUIRE(shape.ld >= std::max<index_t>(1, shape.rows),
                 std::string(routine_name(c.routine)) +
                     ": leading dimension smaller than operand rows");
  }
}

double call_flops(const KernelCall& c) {
  const auto sz = [&](std::size_t i) {
    return static_cast<double>(c.sizes.at(i));
  };
  switch (c.routine) {
    case RoutineId::Gemm:
      return 2.0 * sz(0) * sz(1) * sz(2);
    case RoutineId::Trsm:
    case RoutineId::Trmm: {
      const double m = sz(0);
      const double n = sz(1);
      return (c.flags.at(0) == 'L') ? m * m * n : m * n * n;
    }
    case RoutineId::Syrk:
      return sz(1) * sz(0) * (sz(0) + 1.0);
    case RoutineId::Symm: {
      const double m = sz(0);
      const double n = sz(1);
      return 2.0 * m * n * ((c.flags.at(0) == 'L') ? m : n);
    }
    case RoutineId::Syr2k:
      return 2.0 * sz(1) * sz(0) * (sz(0) + 1.0);
    case RoutineId::Trinv1Unb:
    case RoutineId::Trinv2Unb:
    case RoutineId::Trinv3Unb:
    case RoutineId::Trinv4Unb:
      return trinv_flops(c.sizes.at(0));
    case RoutineId::SylvUnb:
      return sylv_flops(c.sizes.at(0), c.sizes.at(1));
    case RoutineId::Chol1Unb:
    case RoutineId::Chol2Unb:
    case RoutineId::Chol3Unb:
      return chol_flops(c.sizes.at(0));
  }
  return 0.0;
}

std::vector<OperandShape> operand_shapes(const KernelCall& c) {
  using Fill = OperandShape::Fill;
  std::vector<OperandShape> out;
  const auto flag = [&](std::size_t i) { return c.flags.at(i); };
  const auto size = [&](std::size_t i) { return c.sizes.at(i); };
  const auto lead = [&](std::size_t i) { return c.leads.at(i); };

  switch (c.routine) {
    case RoutineId::Gemm: {
      const index_t m = size(0), n = size(1), k = size(2);
      const bool ta = flag(0) != 'N';
      const bool tb = flag(1) != 'N';
      out.push_back({ta ? k : m, ta ? m : k, lead(0), Fill::General, false});
      out.push_back({tb ? n : k, tb ? k : n, lead(1), Fill::General, false});
      out.push_back({m, n, lead(2), Fill::General, true});
      break;
    }
    case RoutineId::Trsm:
    case RoutineId::Trmm: {
      const index_t m = size(0), n = size(1);
      const index_t asz = (flag(0) == 'L') ? m : n;
      const Fill tri = (flag(1) == 'L') ? Fill::LowerTri : Fill::UpperTri;
      out.push_back({asz, asz, lead(0), tri, false});
      out.push_back({m, n, lead(1), Fill::General, true});
      break;
    }
    case RoutineId::Syrk: {
      const index_t n = size(0), k = size(1);
      const bool tr = flag(1) != 'N';
      out.push_back({tr ? k : n, tr ? n : k, lead(0), Fill::General, false});
      out.push_back({n, n, lead(1), Fill::Symmetric, true});
      break;
    }
    case RoutineId::Symm: {
      const index_t m = size(0), n = size(1);
      const index_t asz = (flag(0) == 'L') ? m : n;
      out.push_back({asz, asz, lead(0), Fill::Symmetric, false});
      out.push_back({m, n, lead(1), Fill::General, false});
      out.push_back({m, n, lead(2), Fill::General, true});
      break;
    }
    case RoutineId::Syr2k: {
      const index_t n = size(0), k = size(1);
      const bool tr = flag(1) != 'N';
      out.push_back({tr ? k : n, tr ? n : k, lead(0), Fill::General, false});
      out.push_back({tr ? k : n, tr ? n : k, lead(1), Fill::General, false});
      out.push_back({n, n, lead(2), Fill::Symmetric, true});
      break;
    }
    case RoutineId::Trinv1Unb:
    case RoutineId::Trinv2Unb:
    case RoutineId::Trinv3Unb:
    case RoutineId::Trinv4Unb: {
      const index_t n = size(0);
      out.push_back({n, n, lead(0), Fill::LowerTri, true});
      break;
    }
    case RoutineId::SylvUnb: {
      const index_t m = size(0), n = size(1);
      out.push_back({m, m, lead(0), Fill::LowerTri, false});
      out.push_back({n, n, lead(1), Fill::UpperTri, false});
      out.push_back({m, n, lead(2), Fill::General, true});
      break;
    }
    case RoutineId::Chol1Unb:
    case RoutineId::Chol2Unb:
    case RoutineId::Chol3Unb: {
      const index_t n = size(0);
      out.push_back({n, n, lead(0), Fill::SymPosDef, true});
      break;
    }
  }
  return out;
}

KernelCall parse_call(const std::string& text) {
  const std::string_view t = trim(text);
  const auto open = t.find('(');
  if (open == std::string_view::npos || t.back() != ')') {
    throw parse_error("malformed call: '" + text + "'");
  }
  KernelCall call;
  call.routine = routine_from_name(std::string(trim(t.substr(0, open))));
  const std::string_view inner = t.substr(open + 1, t.size() - open - 2);

  std::vector<std::string> fields;
  if (!trim(inner).empty()) fields = split_trimmed(inner, ',');
  const auto& sig = routine_signature(call.routine);
  if (fields.size() != sig.size()) {
    throw parse_error(std::string(routine_name(call.routine)) + " expects " +
                      std::to_string(sig.size()) + " arguments, got " +
                      std::to_string(fields.size()));
  }
  for (std::size_t i = 0; i < sig.size(); ++i) {
    const std::string& f = fields[i];
    switch (sig[i]) {
      case ArgKind::Flag:
        if (f.size() != 1) {
          throw parse_error("flag argument must be one character: '" + f +
                            "'");
        }
        call.flags.push_back(f[0]);
        break;
      case ArgKind::Size:
        call.sizes.push_back(static_cast<index_t>(parse_int(f)));
        break;
      case ArgKind::Scalar:
        call.scalars.push_back(parse_double(f));
        break;
      case ArgKind::Lead:
        call.leads.push_back(static_cast<index_t>(parse_int(f)));
        break;
      case ArgKind::Data:
        break;  // data args are positional placeholders in text form
    }
  }
  validate_call(call);
  return call;
}

std::string format_call(const KernelCall& call) {
  validate_call(call);
  const auto& sig = routine_signature(call.routine);
  std::vector<std::string> fields;
  fields.reserve(sig.size());
  std::size_t fi = 0, si = 0, ai = 0, li = 0;
  int data_seen = 0;
  for (const ArgKind kind : sig) {
    switch (kind) {
      case ArgKind::Flag:
        fields.emplace_back(1, call.flags[fi++]);
        break;
      case ArgKind::Size:
        fields.push_back(std::to_string(call.sizes[si++]));
        break;
      case ArgKind::Scalar: {
        std::string s = std::to_string(call.scalars[ai++]);
        // Trim trailing zeros for readability (keep at least "x.0" -> "x").
        while (s.find('.') != std::string::npos &&
               (s.back() == '0' || s.back() == '.')) {
          const bool dot = s.back() == '.';
          s.pop_back();
          if (dot) break;
        }
        fields.push_back(std::move(s));
        break;
      }
      case ArgKind::Lead:
        fields.push_back(std::to_string(call.leads[li++]));
        break;
      case ArgKind::Data:
        fields.emplace_back(1, static_cast<char>('A' + data_seen++));
        break;
    }
  }
  return std::string(routine_name(call.routine)) + "(" + join(fields, ",") +
         ")";
}

void execute_call(const KernelCall& c, Level3Backend& backend,
                  const std::vector<double*>& ops) {
  validate_call(c);
  const auto nops = operand_shapes(c).size();
  DLAP_REQUIRE(ops.size() == nops, "execute_call: wrong operand count");
  const auto flag = [&](std::size_t i) { return c.flags.at(i); };
  const auto size = [&](std::size_t i) { return c.sizes.at(i); };
  const auto lead = [&](std::size_t i) { return c.leads.at(i); };

  switch (c.routine) {
    case RoutineId::Gemm:
      backend.gemm(trans_from_char(flag(0)), trans_from_char(flag(1)),
                   size(0), size(1), size(2), c.scalars[0], ops[0], lead(0),
                   ops[1], lead(1), c.scalars[1], ops[2], lead(2));
      break;
    case RoutineId::Trsm:
      backend.trsm(side_from_char(flag(0)), uplo_from_char(flag(1)),
                   trans_from_char(flag(2)), diag_from_char(flag(3)), size(0),
                   size(1), c.scalars[0], ops[0], lead(0), ops[1], lead(1));
      break;
    case RoutineId::Trmm:
      backend.trmm(side_from_char(flag(0)), uplo_from_char(flag(1)),
                   trans_from_char(flag(2)), diag_from_char(flag(3)), size(0),
                   size(1), c.scalars[0], ops[0], lead(0), ops[1], lead(1));
      break;
    case RoutineId::Syrk:
      backend.syrk(uplo_from_char(flag(0)), trans_from_char(flag(1)), size(0),
                   size(1), c.scalars[0], ops[0], lead(0), c.scalars[1],
                   ops[1], lead(1));
      break;
    case RoutineId::Symm:
      backend.symm(side_from_char(flag(0)), uplo_from_char(flag(1)), size(0),
                   size(1), c.scalars[0], ops[0], lead(0), ops[1], lead(1),
                   c.scalars[1], ops[2], lead(2));
      break;
    case RoutineId::Syr2k:
      backend.syr2k(uplo_from_char(flag(0)), trans_from_char(flag(1)),
                    size(0), size(1), c.scalars[0], ops[0], lead(0), ops[1],
                    lead(1), c.scalars[1], ops[2], lead(2));
      break;
    case RoutineId::Trinv1Unb:
      trinv_unblocked(1, size(0), ops[0], lead(0));
      break;
    case RoutineId::Trinv2Unb:
      trinv_unblocked(2, size(0), ops[0], lead(0));
      break;
    case RoutineId::Trinv3Unb:
      trinv_unblocked(3, size(0), ops[0], lead(0));
      break;
    case RoutineId::Trinv4Unb:
      trinv_unblocked(4, size(0), ops[0], lead(0));
      break;
    case RoutineId::SylvUnb:
      sylv_unblocked(size(0), size(1), ops[0], lead(0), ops[1], lead(1),
                     ops[2], lead(2));
      break;
    case RoutineId::Chol1Unb:
      chol_unblocked(1, size(0), ops[0], lead(0));
      break;
    case RoutineId::Chol2Unb:
      chol_unblocked(2, size(0), ops[0], lead(0));
      break;
    case RoutineId::Chol3Unb:
      chol_unblocked(3, size(0), ops[0], lead(0));
      break;
  }
}

}  // namespace dlap
