#pragma once
// The Sampler (paper Section II-C): a lightweight performance measurement
// tool that takes routine invocations (KernelCall tuples or their textual
// form), executes them repeatedly on a chosen BLAS implementation under a
// chosen memory-locality regime, and reports statistical summaries of the
// observed ticks.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "blas/backend.hpp"
#include "sampler/calls.hpp"
#include "sampler/locality.hpp"
#include "sampler/stats.hpp"

namespace dlap {

struct SamplerConfig {
  Locality locality = Locality::InCache;
  /// Timed repetitions per call.
  index_t reps = 5;
  /// Untimed executions before the timed ones. At least one is needed to
  /// absorb the paper's first-invocation initialization outlier; set
  /// `include_first_call` to observe that outlier instead.
  index_t warmup_reps = 1;
  /// When true, no warm-up is performed and the cold first invocation is
  /// part of the samples (used by the Fig II.1 reproduction).
  bool include_first_call = false;
  /// Seed for operand content (performance of dense kernels is
  /// data-independent, but determinism keeps runs comparable).
  std::uint64_t seed = 42;
};

class Sampler {
 public:
  explicit Sampler(Level3Backend& backend, SamplerConfig config = {});

  /// Raw tick counts, one per timed repetition.
  [[nodiscard]] std::vector<double> measure_raw(const KernelCall& call);

  /// Statistical summary over the timed repetitions.
  [[nodiscard]] SampleStats measure(const KernelCall& call);

  /// Convenience: parse the paper-style textual form and measure.
  [[nodiscard]] SampleStats measure_text(const std::string& call_text);

  [[nodiscard]] Level3Backend& backend() const noexcept { return *backend_; }
  [[nodiscard]] const SamplerConfig& config() const noexcept {
    return config_;
  }

  /// Total timed executions performed by this sampler (sample budget
  /// accounting for the Modeler comparisons, Fig III.8). Atomic: one
  /// sampler may serve concurrent measurements (batched generation fans
  /// sampling out across threads when the backend's kernels are
  /// reentrant), and the counter must not lose increments.
  [[nodiscard]] std::uint64_t total_timed_runs() const noexcept {
    return total_timed_runs_.load(std::memory_order_relaxed);
  }

 private:
  Level3Backend* backend_;
  SamplerConfig config_;
  std::atomic<std::uint64_t> total_timed_runs_{0};
};

}  // namespace dlap
