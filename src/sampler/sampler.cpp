#include "sampler/sampler.hpp"

#include "common/matrix.hpp"
#include "common/matrix_util.hpp"
#include "common/rng.hpp"
#include "sampler/ticks.hpp"

namespace dlap {

Sampler::Sampler(Level3Backend& backend, SamplerConfig config)
    : backend_(&backend), config_(config) {
  DLAP_REQUIRE(config_.reps >= 1, "sampler: reps must be >= 1");
  DLAP_REQUIRE(config_.warmup_reps >= 0, "sampler: negative warmup_reps");
}

std::vector<double> Sampler::measure_raw(const KernelCall& call) {
  validate_call(call);
  const std::vector<OperandShape> shapes = operand_shapes(call);

  // Allocate and fill operands; keep pristine copies of written ones so
  // every repetition sees identical inputs (triangular solves would
  // otherwise drift rep over rep).
  Rng rng(config_.seed);
  std::vector<Matrix> operands;
  std::vector<Matrix> pristine;
  operands.reserve(shapes.size());
  for (const OperandShape& s : shapes) {
    Matrix m(s.rows, s.cols, s.ld);
    switch (s.fill) {
      case OperandShape::Fill::LowerTri:
        fill_lower_triangular(m.view(), rng);
        break;
      case OperandShape::Fill::UpperTri:
        fill_upper_triangular(m.view(), rng);
        break;
      case OperandShape::Fill::SymPosDef:
        // The factorization kernels require an actually-SPD operand (a
        // non-PD matrix would throw mid-measurement, not just mis-time).
        fill_spd(m.view(), rng);
        break;
      case OperandShape::Fill::General:
      case OperandShape::Fill::Symmetric:
        // Performance does not depend on symmetry of the values; uniform
        // content suffices (only one triangle is ever read).
        fill_uniform(m.view(), rng);
        break;
    }
    operands.push_back(std::move(m));
  }
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    if (!shapes[i].written) continue;
    Matrix copy(shapes[i].rows, shapes[i].cols, shapes[i].ld);
    copy_matrix(operands[i].view(), copy.view());
    pristine.push_back(std::move(copy));
  }

  std::vector<double*> ptrs;
  ptrs.reserve(operands.size());
  for (Matrix& m : operands) ptrs.push_back(m.data());

  const auto restore_written = [&] {
    std::size_t pi = 0;
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      if (!shapes[i].written) continue;
      copy_matrix(pristine[pi++].view(), operands[i].view());
    }
  };

  // Warm-up: untimed executions that also absorb lazy library/buffer
  // initialization (the paper's first-invocation outlier, Section II-B).
  if (!config_.include_first_call) {
    const index_t warmups = std::max<index_t>(config_.warmup_reps, 1);
    for (index_t w = 0; w < warmups; ++w) {
      restore_written();
      execute_call(call, *backend_, ptrs);
    }
  }

  std::vector<double> ticks;
  ticks.reserve(static_cast<std::size_t>(config_.reps));
  for (index_t r = 0; r < config_.reps; ++r) {
    restore_written();
    if (config_.locality == Locality::OutOfCache) {
      for (std::size_t i = 0; i < shapes.size(); ++i) {
        flush_operand(operands[i].data(), shapes[i].rows, shapes[i].cols,
                      shapes[i].ld);
      }
    } else {
      for (std::size_t i = 0; i < shapes.size(); ++i) {
        touch_operand(operands[i].data(), shapes[i].rows, shapes[i].cols,
                      shapes[i].ld);
      }
    }
    const std::uint64_t t0 = read_ticks();
    execute_call(call, *backend_, ptrs);
    const std::uint64_t t1 = read_ticks();
    ticks.push_back(static_cast<double>(t1 - t0));
    total_timed_runs_.fetch_add(1, std::memory_order_relaxed);
  }
  return ticks;
}

SampleStats Sampler::measure(const KernelCall& call) {
  return summarize(measure_raw(call));
}

SampleStats Sampler::measure_text(const std::string& call_text) {
  return measure(parse_call(call_text));
}

}  // namespace dlap
