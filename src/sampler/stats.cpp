#include "sampler/stats.hpp"

#include <algorithm>
#include <cmath>

namespace dlap {

const char* stat_name(Stat s) {
  switch (s) {
    case Stat::Min: return "min";
    case Stat::Median: return "median";
    case Stat::Mean: return "mean";
    case Stat::Max: return "max";
    case Stat::Stddev: return "stddev";
  }
  return "?";
}

Stat stat_from_name(const std::string& name) {
  for (int i = 0; i < kStatCount; ++i) {
    if (name == stat_name(static_cast<Stat>(i))) return static_cast<Stat>(i);
  }
  throw parse_error("unknown statistic: '" + name + "'");
}

double SampleStats::get(Stat s) const {
  switch (s) {
    case Stat::Min: return min;
    case Stat::Median: return median;
    case Stat::Mean: return mean;
    case Stat::Max: return max;
    case Stat::Stddev: return stddev;
  }
  return 0.0;
}

void SampleStats::set(Stat s, double v) {
  switch (s) {
    case Stat::Min: min = v; break;
    case Stat::Median: median = v; break;
    case Stat::Mean: mean = v; break;
    case Stat::Max: max = v; break;
    case Stat::Stddev: stddev = v; break;
  }
}

std::array<double, kStatCount> SampleStats::as_array() const {
  return {min, median, mean, max, stddev};
}

SampleStats summarize(std::vector<double> samples) {
  DLAP_REQUIRE(!samples.empty(), "summarize: no samples");
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();

  SampleStats out;
  out.count = static_cast<index_t>(n);
  out.min = samples.front();
  out.max = samples.back();
  out.median = (n % 2 == 1)
                   ? samples[n / 2]
                   : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);

  double sum = 0.0;
  for (double v : samples) sum += v;
  out.mean = sum / static_cast<double>(n);

  if (n > 1) {
    double ss = 0.0;
    for (double v : samples) {
      const double d = v - out.mean;
      ss += d * d;
    }
    out.stddev = std::sqrt(ss / static_cast<double>(n - 1));
  }
  return out;
}

double quantile(std::vector<double> samples, double q) {
  DLAP_REQUIRE(!samples.empty(), "quantile: no samples");
  DLAP_REQUIRE(q >= 0.0 && q <= 1.0, "quantile: q out of [0,1]");
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace dlap
