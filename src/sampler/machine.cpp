#include "sampler/machine.hpp"

#include <algorithm>

#include "blas/registry.hpp"
#include "common/env.hpp"
#include "sampler/calls.hpp"
#include "sampler/sampler.hpp"
#include "sampler/ticks.hpp"

namespace dlap {

namespace {

MachineInfo calibrate() {
  MachineInfo info;
  info.ticks_per_second = ticks_per_second();
  info.tsc = ticks_are_tsc();

  const long long override_milli = env_int("DLAPERF_FIPS_MILLI", 0);
  if (override_milli > 0) {
    info.flops_per_tick = static_cast<double>(override_milli) / 1000.0;
    info.calibration = "DLAPERF_FIPS_MILLI override";
    return info;
  }

  // Peak flops/tick of the fastest backend on an in-cache square gemm.
  // 192 is large enough to amortize call overhead, small enough that the
  // operands fit in L2 on any machine this library targets.
  const index_t n = 192;
  KernelCall call;
  call.routine = RoutineId::Gemm;
  call.flags = {'N', 'N'};
  call.sizes = {n, n, n};
  call.scalars = {1.0, 0.0};
  call.leads = {n, n, n};

  SamplerConfig cfg;
  cfg.locality = Locality::InCache;
  cfg.reps = 7;
  Sampler sampler(backend_instance("packed"), cfg);
  const std::vector<double> ticks = sampler.measure_raw(call);
  const double best = *std::min_element(ticks.begin(), ticks.end());
  info.flops_per_tick = call_flops(call) / std::max(best, 1.0);
  info.calibration = "packed dgemm n=192 in-cache peak";
  return info;
}

}  // namespace

const MachineInfo& machine_info() {
  static const MachineInfo info = calibrate();
  return info;
}

double efficiency(double flops, double ticks) {
  DLAP_REQUIRE(ticks > 0.0, "efficiency: nonpositive ticks");
  return flops / (ticks * machine_info().flops_per_tick);
}

}  // namespace dlap
