#include "sampler/ticks.hpp"

#include <chrono>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define DLAPERF_HAVE_TSC 1
#else
#define DLAPERF_HAVE_TSC 0
#endif

namespace dlap {

std::uint64_t read_ticks() noexcept {
#if DLAPERF_HAVE_TSC
  unsigned aux = 0;
  return __rdtscp(&aux);
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

bool ticks_are_tsc() noexcept { return DLAPERF_HAVE_TSC != 0; }

double ticks_per_second() {
  static const double rate = [] {
#if DLAPERF_HAVE_TSC
    // Calibrate the TSC against steady_clock over a short busy interval.
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t c0 = read_ticks();
    for (;;) {
      const auto t1 = std::chrono::steady_clock::now();
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          t1 - t0)
                          .count();
      if (ns >= 10'000'000) {  // 10 ms is plenty for 4-digit accuracy
        const std::uint64_t c1 = read_ticks();
        return static_cast<double>(c1 - c0) * 1e9 /
               static_cast<double>(ns);
      }
    }
#else
    return 1e9;  // nanosecond ticks
#endif
  }();
  return rate;
}

}  // namespace dlap
