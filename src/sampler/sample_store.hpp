#pragma once
// Engine-wide measurement store.
//
// The generation strategies keep a per-invocation cache (so "samples"
// means distinct measured points within one run, as in the paper's
// Fig III.8 accounting); this store sits one level up and is keyed per
// *engine*: one instance lives for the lifetime of a ModelService, shared
// by every generation the service performs. Re-modeling a key -- with a
// wider domain, a different strategy, or after a predictor-triggered
// on-demand generation -- reuses every measurement already paid for,
// instead of re-sampling from scratch.
//
// Thread safety: all members may be called concurrently. Measurements run
// outside the lock, so concurrent generations of different keys never
// serialize on each other's sampling.

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sampler/stats.hpp"

namespace dlap {

class SampleStore {
 public:
  using Measure = std::function<SampleStats(const std::vector<index_t>&)>;

  /// Returns the cached statistics for (engine_key, point), measuring and
  /// inserting them on a miss. engine_key identifies the measurement
  /// context (normally ModelKey::to_string()): points are only shared
  /// between measurements of the same routine/backend/locality/flags.
  [[nodiscard]] SampleStats get_or_measure(const std::string& engine_key,
                                           const std::vector<index_t>& point,
                                           const Measure& measure);

  /// Total points cached, across all engine keys.
  [[nodiscard]] std::size_t size() const;

  /// Cache hit / miss counters (monotonic; for diagnostics and tests).
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;

  void clear();

 private:
  using Key = std::pair<std::string, std::vector<index_t>>;

  mutable std::mutex mutex_;
  std::map<Key, SampleStats> cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace dlap
