#pragma once
// Engine-wide measurement store, optionally backed by an on-disk sample
// repository.
//
// The generation strategies keep a per-invocation cache (so "samples"
// means distinct measured points within one run, as in the paper's
// Fig III.8 accounting); this store sits one level up and is keyed per
// *engine*: one instance lives for the lifetime of a ModelService, shared
// by every generation the service performs. Re-modeling a key -- with a
// wider domain, a different strategy, or after a predictor-triggered
// on-demand generation -- reuses every measurement already paid for,
// instead of re-sampling from scratch.
//
// When constructed with a directory the store becomes *persistent*: every
// engine key owns an append-only text journal (one file per key, beside
// the model repository), each measurement is appended as one flushed
// line, and the journal is replayed lazily on the key's first access.
// A second run, a widened-domain regeneration, or a crash-resume
// therefore warm-starts from every measurement a previous process paid
// for. Appends are single full lines, so a crash can at worst leave a
// truncated final line -- replay tolerates that by discarding the tail.
//
// Thread safety: all members may be called concurrently. Locking is
// per engine key (a global mutex guards only the key table), so
// concurrent generations of different keys never serialize on each
// other's journal replay, appends, or lookups -- and measurements always
// run outside every lock.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "sampler/stats.hpp"

namespace dlap {

namespace storage {
class ContainerReader;
}  // namespace storage

class SampleStore {
 public:
  using Measure = std::function<SampleStats(const std::vector<index_t>&)>;

  /// Where a probed point was found.
  enum class Origin {
    Miss,    ///< not known (neither in memory nor in any journal)
    Memory,  ///< measured earlier by this process
    Disk,    ///< replayed from the key's on-disk journal
  };

  /// Memory-only store (dir empty), or a persistent sample repository
  /// rooted at `dir` (created if absent).
  explicit SampleStore(std::filesystem::path dir = {});

  /// Attaches a binary container as a read-only lower layer: a key's
  /// first access replays its journal AND its container section (journal
  /// entries win on overlap -- they are newer). Container entries count
  /// as Origin::Disk. Pass nullptr to detach. Typically the same reader
  /// the model repository attached (one mmap serves both).
  void attach_container(
      std::shared_ptr<const storage::ContainerReader> reader);

  /// The attached container, if any.
  [[nodiscard]] std::shared_ptr<const storage::ContainerReader> container()
      const;

  /// Returns the cached statistics for (engine_key, point), measuring and
  /// inserting them on a miss. engine_key identifies the measurement
  /// context (normally ModelKey::to_string()): points are only shared
  /// between measurements of the same routine/backend/locality/flags.
  [[nodiscard]] SampleStats get_or_measure(std::string_view engine_key,
                                           const std::vector<index_t>& point,
                                           const Measure& measure);

  /// Cache probe without measuring; fills *stats when found. Hits always
  /// bump the hit counters; a miss bumps misses_ only when `count_miss`
  /// is set (re-checks of a point already counted pass false, keeping
  /// the "points nobody had" diagnostic exact).
  [[nodiscard]] Origin probe(std::string_view engine_key,
                             const std::vector<index_t>& point,
                             SampleStats* stats, bool count_miss = true);

  /// Inserts a measured point (first insert wins) and appends it to the
  /// key's journal when the store is persistent.
  void insert(std::string_view engine_key, const std::vector<index_t>& point,
              const SampleStats& stats);

  /// Total points cached in memory, across all engine keys.
  [[nodiscard]] std::size_t size() const;

  /// Cache counters (monotonic; for diagnostics and tests): hits_ counts
  /// points measured by this process and found again, disk_hits_ points
  /// served from a replayed journal, misses_ points nobody had.
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t disk_hits() const;
  [[nodiscard]] std::uint64_t misses() const;

  /// True when the store writes/replays on-disk journals.
  [[nodiscard]] bool persistent() const noexcept { return !dir_.empty(); }
  [[nodiscard]] const std::filesystem::path& directory() const noexcept {
    return dir_;
  }

  /// Drops the in-memory cache and counters. Journals are untouched:
  /// subsequent lookups of a persistent store replay them again.
  void clear();

  /// Journal file name for an engine key (stable; part of the on-disk
  /// format). The key is escaped injectively, so distinct keys always
  /// map to distinct files.
  [[nodiscard]] static std::string journal_filename(
      std::string_view engine_key);

  /// The engine key a journal file name maps back to (the filename
  /// escaping is injective). Throws dlap::parse_error when `filename` is
  /// not a well-formed journal name.
  [[nodiscard]] static std::string key_from_journal_filename(
      std::string_view filename);

  // Journal text format, exposed so tooling (dlap_pack) can convert
  // journals to and from container sample sections byte-identically.
  /// First line of every journal.
  [[nodiscard]] static std::string_view journal_magic();
  /// One journal line (including trailing newline), 17 significant
  /// digits so every double round-trips exactly.
  [[nodiscard]] static std::string format_journal_line(
      const std::vector<index_t>& point, const SampleStats& stats);
  /// Parses one journal line; false on malformed/truncated content.
  [[nodiscard]] static bool parse_journal_line(const std::string& line,
                                               std::vector<index_t>* point,
                                               SampleStats* stats);

  /// One note per journal whose replay hit damaged content, of the form
  /// "<path>:<line>: <what>" (the damaged tail is discarded and the file
  /// rewritten from the recovered entries). Diagnostic, monotonic.
  [[nodiscard]] std::vector<std::string> journal_damage_notes() const;

 private:
  struct Entry {
    SampleStats stats;
    bool from_disk = false;
  };
  struct KeyCache {
    mutable std::mutex m;  ///< guards everything below (per-key locking)
    std::map<std::vector<index_t>, Entry> points;
    bool replayed = false;  ///< journal already loaded (or none exists)
    std::ofstream journal;  ///< lazily opened append stream
  };

  /// The key's cache node (created if absent). Takes and releases the
  /// table mutex; node addresses are stable (std::map) and nodes are
  /// never erased, so the reference stays valid for the store's life.
  [[nodiscard]] KeyCache& key_cache(std::string_view engine_key);

  /// Replays the key's journal into the cache once. Caller holds
  /// cache.m.
  void ensure_replayed(std::string_view engine_key, KeyCache& cache);

  /// Inserts (first wins) and journals the point. Caller holds cache.m
  /// (with the journal replayed).
  const Entry& insert_locked(std::string_view engine_key, KeyCache& cache,
                             const std::vector<index_t>& point,
                             const SampleStats& stats);

  /// Appends one point to the key's journal (opens it, writing the magic
  /// header, on first use). Caller holds cache.m.
  void append(std::string_view engine_key, KeyCache& cache,
              const std::vector<index_t>& point, const SampleStats& stats);

  std::filesystem::path dir_;
  mutable std::mutex table_mutex_;  ///< guards keys_ lookup/creation only
  std::map<std::string, KeyCache, std::less<>> keys_;
  // aux_mutex_ guards container_ and damage_notes_. It is taken only as
  // the innermost lock (never while acquiring cache.m or table_mutex_),
  // so it cannot participate in an ordering cycle.
  mutable std::mutex aux_mutex_;
  std::shared_ptr<const storage::ContainerReader> container_;
  std::vector<std::string> damage_notes_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> disk_hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace dlap
