#pragma once
// Machine calibration: peak floating-point throughput in flops per tick.
//
// The paper's efficiency metric is flops / (ticks * fips), where fips is
// the CPU's peak floating point instructions per cycle (Section II-A). We
// calibrate fips empirically as the best flops/tick the fastest backend
// achieves on an in-cache gemm, so efficiency = 1 means "as fast as the
// best kernel this library can run on this machine". Override with the
// DLAPERF_FIPS environment variable if an absolute hardware peak is known.

#include <string>

#include "common/types.hpp"

namespace dlap {

struct MachineInfo {
  double flops_per_tick = 1.0;  ///< calibrated (or overridden) peak
  double ticks_per_second = 1.0;
  bool tsc = false;             ///< ticks are hardware TSC cycles
  std::string calibration;      ///< human-readable provenance
};

/// Calibrated once per process (first call runs the calibration gemm).
[[nodiscard]] const MachineInfo& machine_info();

/// flops / (ticks * fips): the fraction of peak ALU throughput used.
[[nodiscard]] double efficiency(double flops, double ticks);

}  // namespace dlap
