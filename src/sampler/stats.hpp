#pragma once
// Summary statistics over repeated measurements.
//
// The paper treats a routine's performance as a probabilistic distribution
// and extracts "certain properties of this distribution, such as minimum,
// average, standard deviation, and median" (Section II-B). SampleStats is
// the vector of those properties; it is the value type carried through
// models and predictions.

#include <array>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace dlap {

/// The statistical quantities tracked for every measured call. Order
/// matters: models fit one polynomial per entry.
enum class Stat : int {
  Min = 0,
  Median = 1,
  Mean = 2,
  Max = 3,
  Stddev = 4,
};

inline constexpr int kStatCount = 5;

[[nodiscard]] const char* stat_name(Stat s);
[[nodiscard]] Stat stat_from_name(const std::string& name);

/// Fixed-size vector of the statistical quantities.
struct SampleStats {
  double min = 0.0;
  double median = 0.0;
  double mean = 0.0;
  double max = 0.0;
  double stddev = 0.0;
  index_t count = 0;

  [[nodiscard]] double get(Stat s) const;
  void set(Stat s, double v);

  /// Element access in Stat order, convenient for fitting loops.
  [[nodiscard]] std::array<double, kStatCount> as_array() const;
};

/// Computes all quantities from raw samples (throws on empty input).
/// Median is the midpoint-of-sorted convention; stddev is the sample
/// standard deviation (n-1 denominator, 0 for a single sample).
[[nodiscard]] SampleStats summarize(std::vector<double> samples);

/// Quantile (0 <= q <= 1) with linear interpolation, for reporting.
[[nodiscard]] double quantile(std::vector<double> samples, double q);

}  // namespace dlap
