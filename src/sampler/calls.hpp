#pragma once
// Kernel-call descriptors.
//
// A KernelCall is the value the whole framework revolves around: the
// Sampler measures calls, the Modeler models the mapping
// (call arguments) -> (performance statistics), the tracer records the
// calls a blocked algorithm makes, and the predictor evaluates models on
// them. Arguments are classified as in the paper (Section III-A): flags,
// sizes, scalars, data, and leading dimensions; models only account for
// flags and sizes.
//
// Calls have a textual form identical in spirit to the paper's tuples,
// e.g.  dtrsm(R,L,N,U,512,128,0.37,A,256,B,512).

#include <string>
#include <string_view>
#include <vector>

#include "blas/backend.hpp"
#include "common/matrix.hpp"
#include "common/types.hpp"

namespace dlap {

/// Routines the framework can measure, model and predict.
enum class RoutineId : int {
  Gemm = 0,
  Trsm,
  Trmm,
  Syrk,
  Symm,
  Syr2k,
  Trinv1Unb,  // unblocked trinv, loop structure of blocked variant 1
  Trinv2Unb,
  Trinv3Unb,
  Trinv4Unb,
  SylvUnb,  // unblocked triangular Sylvester solve
  Chol1Unb,  // unblocked Cholesky, loop structure of blocked variant 1
  Chol2Unb,
  Chol3Unb,
};

inline constexpr int kRoutineCount = 14;

[[nodiscard]] const char* routine_name(RoutineId id);
[[nodiscard]] RoutineId routine_from_name(const std::string& name);

/// The paper's argument classification (Section III-A).
enum class ArgKind : char {
  Flag = 'f',
  Size = 's',
  Scalar = 'a',
  Data = 'D',
  Lead = 'l',
};

/// Ordered argument-kind template of a routine's textual signature.
[[nodiscard]] const std::vector<ArgKind>& routine_signature(RoutineId id);

/// A concrete routine invocation. Data arguments are represented only by
/// position (their buffers are supplied at execution time), exactly as the
/// paper reduces them to size + storage location.
struct KernelCall {
  RoutineId routine = RoutineId::Gemm;
  std::vector<char> flags;     ///< flag values in signature order
  std::vector<index_t> sizes;  ///< size arguments in signature order
  std::vector<double> scalars;
  std::vector<index_t> leads;  ///< leading dimensions in signature order

  /// Submodel key: the flag characters joined, e.g. "LLNN" (empty when the
  /// routine has no flags).
  [[nodiscard]] std::string flag_key() const {
    return std::string(flags.begin(), flags.end());
  }

  /// flag_key without the allocation: a view over the stored flag values
  /// (valid while the call is; the resolver hot path uses this).
  [[nodiscard]] std::string_view flag_view() const noexcept {
    return {flags.data(), flags.size()};
  }
};

/// True when any size argument is zero: the call performs no flops (such
/// calls appear naturally in traces, e.g. the first trinv iteration's
/// dtrmm with n = 0). The planner, the engine's resolver and the
/// predictor all use this one predicate to agree on which calls are
/// degenerate.
[[nodiscard]] bool call_is_degenerate(const KernelCall& call);

/// Throws dlap::invalid_argument_error unless the field counts match the
/// routine's signature and all sizes/leads are valid.
void validate_call(const KernelCall& call);

/// Number of double-precision flops the call performs (mult+add counted
/// separately, matching the efficiency formulas in the paper).
[[nodiscard]] double call_flops(const KernelCall& call);

/// Shape/type of one matrix operand of a call.
struct OperandShape {
  index_t rows = 0;
  index_t cols = 0;
  index_t ld = 0;
  enum class Fill { General, LowerTri, UpperTri, Symmetric, SymPosDef } fill =
      Fill::General;
  bool written = false;  ///< operand is modified by the call
};

/// Shapes of all data operands, in signature order.
[[nodiscard]] std::vector<OperandShape> operand_shapes(const KernelCall& c);

/// Parses the textual form "name(arg,...)"; data arguments accept any
/// token. Throws dlap::parse_error on malformed input.
[[nodiscard]] KernelCall parse_call(const std::string& text);

/// Formats a call into its canonical textual form (data args rendered as
/// A, B, C in order).
[[nodiscard]] std::string format_call(const KernelCall& call);

/// Executes the call on the given operand buffers (one per Data argument,
/// in signature order) using `backend` for level-3 routines and the scalar
/// kernels for unblocked ones.
void execute_call(const KernelCall& call, Level3Backend& backend,
                  const std::vector<double*>& operands);

}  // namespace dlap
