#include "blas/packed_backend.hpp"

#include <algorithm>
#include <vector>

#include "blas/blocked_common.hpp"

namespace dlap {

namespace {

void scale_matrix(index_t m, index_t n, double beta, double* c, index_t ldc) {
  if (beta == 1.0) return;
  for (index_t j = 0; j < n; ++j) {
    double* col = c + j * ldc;
    if (beta == 0.0) {
      for (index_t i = 0; i < m; ++i) col[i] = 0.0;
    } else {
      for (index_t i = 0; i < m; ++i) col[i] *= beta;
    }
  }
}

// Copies the (rows x cols) tile of op(X) starting at op-coordinates
// (r0, c0) into `dst` (column-major, ld = rows). alpha is folded in so the
// kernel below needs no scaling.
void pack_tile(Trans trans, const double* x, index_t ldx, index_t r0,
               index_t c0, index_t rows, index_t cols, double alpha,
               double* dst) {
  if (trans == Trans::NoTrans) {
    for (index_t j = 0; j < cols; ++j) {
      const double* src = x + r0 + (c0 + j) * ldx;
      double* out = dst + j * rows;
      for (index_t i = 0; i < rows; ++i) out[i] = alpha * src[i];
    }
  } else {
    // op(X)(i,j) = X(j,i): gather rows of X.
    for (index_t j = 0; j < cols; ++j) {
      const double* src = x + (c0 + j) + r0 * ldx;
      double* out = dst + j * rows;
      for (index_t i = 0; i < rows; ++i) out[i] = alpha * src[i * ldx];
    }
  }
}

// Unit-stride register kernel on packed tiles: C += Ap * Bp where Ap is
// mb x kb (ld = mb) and Bp is kb x nbt (ld = kb). Four C columns per pass.
void kernel_packed(index_t mb, index_t nbt, index_t kb,
                   const double* __restrict ap, const double* __restrict bp,
                   double* __restrict c, index_t ldc) {
  index_t j = 0;
  for (; j + 4 <= nbt; j += 4) {
    const double* b0 = bp + (j + 0) * kb;
    const double* b1 = bp + (j + 1) * kb;
    const double* b2 = bp + (j + 2) * kb;
    const double* b3 = bp + (j + 3) * kb;
    double* __restrict c0 = c + (j + 0) * ldc;
    double* __restrict c1 = c + (j + 1) * ldc;
    double* __restrict c2 = c + (j + 2) * ldc;
    double* __restrict c3 = c + (j + 3) * ldc;
    for (index_t l = 0; l < kb; ++l) {
      const double* __restrict acol = ap + l * mb;
      const double w0 = b0[l];
      const double w1 = b1[l];
      const double w2 = b2[l];
      const double w3 = b3[l];
      for (index_t i = 0; i < mb; ++i) {
        const double av = acol[i];
        c0[i] += av * w0;
        c1[i] += av * w1;
        c2[i] += av * w2;
        c3[i] += av * w3;
      }
    }
  }
  for (; j < nbt; ++j) {
    const double* bj = bp + j * kb;
    double* __restrict cj = c + j * ldc;
    for (index_t l = 0; l < kb; ++l) {
      const double w = bj[l];
      const double* __restrict acol = ap + l * mb;
      for (index_t i = 0; i < mb; ++i) cj[i] += acol[i] * w;
    }
  }
}

// Lazily grown thread-local packing workspace; deliberately *not*
// preallocated so the first gemm call pays an initialization cost, like a
// real BLAS library's first invocation.
std::vector<double>& pack_buffer_a() {
  thread_local std::vector<double> buf;
  return buf;
}
std::vector<double>& pack_buffer_b() {
  thread_local std::vector<double> buf;
  return buf;
}

}  // namespace

void PackedBackend::gemm(Trans transa, Trans transb, index_t m, index_t n,
                         index_t k, double alpha, const double* a,
                         index_t lda, const double* b, index_t ldb,
                         double beta, double* c, index_t ldc) {
  blas::detail::check_gemm(transa, transb, m, n, k, lda, ldb, ldc);
  if (m == 0 || n == 0) return;
  scale_matrix(m, n, beta, c, ldc);
  if (k == 0 || alpha == 0.0) return;

  std::vector<double>& abuf = pack_buffer_a();
  std::vector<double>& bbuf = pack_buffer_b();
  abuf.resize(static_cast<std::size_t>(mc_ * kc_));
  bbuf.resize(static_cast<std::size_t>(kc_ * nc_));

  for (index_t jc = 0; jc < n; jc += nc_) {
    const index_t nbt = std::min(nc_, n - jc);
    for (index_t pc = 0; pc < k; pc += kc_) {
      const index_t kb = std::min(kc_, k - pc);
      // Pack op(B) tile (pc..pc+kb, jc..jc+nbt); alpha folded into A only.
      pack_tile(transb, b, ldb, pc, jc, kb, nbt, 1.0, bbuf.data());
      for (index_t ic = 0; ic < m; ic += mc_) {
        const index_t mb = std::min(mc_, m - ic);
        pack_tile(transa, a, lda, ic, pc, mb, kb, alpha, abuf.data());
        kernel_packed(mb, nbt, kb, abuf.data(), bbuf.data(),
                      c + ic + jc * ldc, ldc);
      }
    }
  }
}

void PackedBackend::trsm(Side side, Uplo uplo, Trans transa, Diag diag,
                         index_t m, index_t n, double alpha, const double* a,
                         index_t lda, double* b, index_t ldb) {
  blas::blk::trsm(*this, nb_, side, uplo, transa, diag, m, n, alpha, a, lda,
                  b, ldb);
}

void PackedBackend::trmm(Side side, Uplo uplo, Trans transa, Diag diag,
                         index_t m, index_t n, double alpha, const double* a,
                         index_t lda, double* b, index_t ldb) {
  blas::blk::trmm(*this, nb_, side, uplo, transa, diag, m, n, alpha, a, lda,
                  b, ldb);
}

void PackedBackend::syrk(Uplo uplo, Trans trans, index_t n, index_t k,
                         double alpha, const double* a, index_t lda,
                         double beta, double* c, index_t ldc) {
  blas::blk::syrk(*this, nb_, uplo, trans, n, k, alpha, a, lda, beta, c, ldc);
}

void PackedBackend::symm(Side side, Uplo uplo, index_t m, index_t n,
                         double alpha, const double* a, index_t lda,
                         const double* b, index_t ldb, double beta, double* c,
                         index_t ldc) {
  blas::blk::symm(*this, nb_, side, uplo, m, n, alpha, a, lda, b, ldb, beta,
                  c, ldc);
}

void PackedBackend::syr2k(Uplo uplo, Trans trans, index_t n, index_t k,
                          double alpha, const double* a, index_t lda,
                          const double* b, index_t ldb, double beta,
                          double* c, index_t ldc) {
  blas::blk::syr2k(*this, nb_, uplo, trans, n, k, alpha, a, lda, b, ldb,
                   beta, c, ldc);
}

}  // namespace dlap
