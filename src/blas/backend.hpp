#pragma once
// Abstract Level-3 BLAS backend.
//
// The paper models three library implementations (OpenBLAS, MKL, ATLAS)
// that share one interface but differ in performance signature. We
// reproduce that situation with three from-scratch backends ("naive",
// "blocked", "packed") plus a threaded decorator; each implements this
// interface. The Sampler and the algorithms are written against it, so a
// backend is exactly what the paper calls an "implementation".

#include <string>

#include "blas/flags.hpp"
#include "common/types.hpp"

namespace dlap {

class Level3Backend {
 public:
  virtual ~Level3Backend() = default;

  /// Implementation name as registered ("naive", "blocked", "packed",
  /// "blocked@4", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Number of worker threads the backend uses (1 for sequential ones).
  [[nodiscard]] virtual index_t threads() const { return 1; }

  /// C <- alpha * op(A) * op(B) + beta * C.
  /// op(A) is m x k, op(B) is k x n, C is m x n.
  virtual void gemm(Trans transa, Trans transb, index_t m, index_t n,
                    index_t k, double alpha, const double* a, index_t lda,
                    const double* b, index_t ldb, double beta, double* c,
                    index_t ldc) = 0;

  /// B <- alpha * op(A)^{-1} * B (Side::Left) or alpha * B * op(A)^{-1}
  /// (Side::Right). A is triangular (m x m resp. n x n), B is m x n.
  virtual void trsm(Side side, Uplo uplo, Trans transa, Diag diag, index_t m,
                    index_t n, double alpha, const double* a, index_t lda,
                    double* b, index_t ldb) = 0;

  /// B <- alpha * op(A) * B (Side::Left) or alpha * B * op(A)
  /// (Side::Right). A is triangular, B is m x n.
  virtual void trmm(Side side, Uplo uplo, Trans transa, Diag diag, index_t m,
                    index_t n, double alpha, const double* a, index_t lda,
                    double* b, index_t ldb) = 0;

  /// C <- alpha * op(A) * op(A)^T + beta * C, C symmetric n x n (only the
  /// `uplo` triangle referenced/updated); op(A) is n x k.
  virtual void syrk(Uplo uplo, Trans trans, index_t n, index_t k, double alpha,
                    const double* a, index_t lda, double beta, double* c,
                    index_t ldc) = 0;

  /// C <- alpha * A * B + beta * C (Side::Left) or alpha * B * A + beta * C
  /// (Side::Right); A symmetric, stored in `uplo` half; C is m x n.
  virtual void symm(Side side, Uplo uplo, index_t m, index_t n, double alpha,
                    const double* a, index_t lda, const double* b, index_t ldb,
                    double beta, double* c, index_t ldc) = 0;

  /// C <- alpha*(op(A) op(B)^T + op(B) op(A)^T) + beta*C, C symmetric n x n.
  virtual void syr2k(Uplo uplo, Trans trans, index_t n, index_t k,
                     double alpha, const double* a, index_t lda,
                     const double* b, index_t ldb, double beta, double* c,
                     index_t ldc) = 0;
};

namespace blas::detail {
/// Shared argument validation for level-3 entry points; throws
/// dlap::invalid_argument_error on bad dimensions / leading dimensions.
void check_gemm(Trans transa, Trans transb, index_t m, index_t n, index_t k,
                index_t lda, index_t ldb, index_t ldc);
void check_trxm(Side side, index_t m, index_t n, index_t lda, index_t ldb);
void check_syrk(Trans trans, index_t n, index_t k, index_t lda, index_t ldc);
void check_symm(Side side, index_t m, index_t n, index_t lda, index_t ldb,
                index_t ldc);
}  // namespace blas::detail

}  // namespace dlap
