#include "blas/naive_backend.hpp"

#include "blas/ref_kernels.hpp"

namespace dlap {

void NaiveBackend::gemm(Trans transa, Trans transb, index_t m, index_t n,
                        index_t k, double alpha, const double* a, index_t lda,
                        const double* b, index_t ldb, double beta, double* c,
                        index_t ldc) {
  blas::ref::gemm(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c,
                  ldc);
}

void NaiveBackend::trsm(Side side, Uplo uplo, Trans transa, Diag diag,
                        index_t m, index_t n, double alpha, const double* a,
                        index_t lda, double* b, index_t ldb) {
  blas::ref::trsm(side, uplo, transa, diag, m, n, alpha, a, lda, b, ldb);
}

void NaiveBackend::trmm(Side side, Uplo uplo, Trans transa, Diag diag,
                        index_t m, index_t n, double alpha, const double* a,
                        index_t lda, double* b, index_t ldb) {
  blas::ref::trmm(side, uplo, transa, diag, m, n, alpha, a, lda, b, ldb);
}

void NaiveBackend::syrk(Uplo uplo, Trans trans, index_t n, index_t k,
                        double alpha, const double* a, index_t lda,
                        double beta, double* c, index_t ldc) {
  blas::ref::syrk(uplo, trans, n, k, alpha, a, lda, beta, c, ldc);
}

void NaiveBackend::symm(Side side, Uplo uplo, index_t m, index_t n,
                        double alpha, const double* a, index_t lda,
                        const double* b, index_t ldb, double beta, double* c,
                        index_t ldc) {
  blas::ref::symm(side, uplo, m, n, alpha, a, lda, b, ldb, beta, c, ldc);
}

void NaiveBackend::syr2k(Uplo uplo, Trans trans, index_t n, index_t k,
                         double alpha, const double* a, index_t lda,
                         const double* b, index_t ldb, double beta, double* c,
                         index_t ldc) {
  blas::ref::syr2k(uplo, trans, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

}  // namespace dlap
