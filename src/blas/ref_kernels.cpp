#include "blas/ref_kernels.hpp"

#include "blas/backend.hpp"

namespace dlap::blas {

namespace detail {

namespace {
index_t min_ld(index_t rows) { return rows > 0 ? rows : 1; }
}  // namespace

void check_gemm(Trans transa, Trans transb, index_t m, index_t n, index_t k,
                index_t lda, index_t ldb, index_t ldc) {
  DLAP_REQUIRE(m >= 0 && n >= 0 && k >= 0, "gemm: negative dimension");
  const index_t arows = (transa == Trans::NoTrans) ? m : k;
  const index_t brows = (transb == Trans::NoTrans) ? k : n;
  DLAP_REQUIRE(lda >= min_ld(arows), "gemm: lda too small");
  DLAP_REQUIRE(ldb >= min_ld(brows), "gemm: ldb too small");
  DLAP_REQUIRE(ldc >= min_ld(m), "gemm: ldc too small");
}

void check_trxm(Side side, index_t m, index_t n, index_t lda, index_t ldb) {
  DLAP_REQUIRE(m >= 0 && n >= 0, "trsm/trmm: negative dimension");
  const index_t asize = (side == Side::Left) ? m : n;
  DLAP_REQUIRE(lda >= min_ld(asize), "trsm/trmm: lda too small");
  DLAP_REQUIRE(ldb >= min_ld(m), "trsm/trmm: ldb too small");
}

void check_syrk(Trans trans, index_t n, index_t k, index_t lda, index_t ldc) {
  DLAP_REQUIRE(n >= 0 && k >= 0, "syrk: negative dimension");
  const index_t arows = (trans == Trans::NoTrans) ? n : k;
  DLAP_REQUIRE(lda >= min_ld(arows), "syrk: lda too small");
  DLAP_REQUIRE(ldc >= min_ld(n), "syrk: ldc too small");
}

void check_symm(Side side, index_t m, index_t n, index_t lda, index_t ldb,
                index_t ldc) {
  DLAP_REQUIRE(m >= 0 && n >= 0, "symm: negative dimension");
  const index_t asize = (side == Side::Left) ? m : n;
  DLAP_REQUIRE(lda >= min_ld(asize), "symm: lda too small");
  DLAP_REQUIRE(ldb >= min_ld(m), "symm: ldb too small");
  DLAP_REQUIRE(ldc >= min_ld(m), "symm: ldc too small");
}

}  // namespace detail

namespace ref {

namespace {

void scale_matrix(index_t m, index_t n, double beta, double* c, index_t ldc) {
  if (beta == 1.0) return;
  for (index_t j = 0; j < n; ++j) {
    double* col = c + j * ldc;
    if (beta == 0.0) {
      for (index_t i = 0; i < m; ++i) col[i] = 0.0;
    } else {
      for (index_t i = 0; i < m; ++i) col[i] *= beta;
    }
  }
}

double tri_diag(const double* a, index_t lda, Diag diag, index_t i) {
  return diag == Diag::Unit ? 1.0 : a[i + i * lda];
}

double tri_diag_checked(const double* a, index_t lda, Diag diag, index_t i,
                        const char* who) {
  const double d = tri_diag(a, lda, diag, i);
  if (d == 0.0) {
    throw numerical_error(std::string(who) + ": singular triangular matrix");
  }
  return d;
}

}  // namespace

void gemm(Trans transa, Trans transb, index_t m, index_t n, index_t k,
          double alpha, const double* a, index_t lda, const double* b,
          index_t ldb, double beta, double* c, index_t ldc) {
  detail::check_gemm(transa, transb, m, n, k, lda, ldb, ldc);
  if (m == 0 || n == 0) return;
  scale_matrix(m, n, beta, c, ldc);
  if (k == 0 || alpha == 0.0) return;

  // Four loop nests, each ordered so the innermost loop runs down a column
  // (unit stride) wherever possible.
  if (transa == Trans::NoTrans && transb == Trans::NoTrans) {
    for (index_t j = 0; j < n; ++j) {
      for (index_t l = 0; l < k; ++l) {
        const double blj = alpha * b[l + j * ldb];
        if (blj == 0.0) continue;
        const double* acol = a + l * lda;
        double* ccol = c + j * ldc;
        for (index_t i = 0; i < m; ++i) ccol[i] += blj * acol[i];
      }
    }
  } else if (transa == Trans::Transpose && transb == Trans::NoTrans) {
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) {
        const double* acol = a + i * lda;
        const double* bcol = b + j * ldb;
        double sum = 0.0;
        for (index_t l = 0; l < k; ++l) sum += acol[l] * bcol[l];
        c[i + j * ldc] += alpha * sum;
      }
    }
  } else if (transa == Trans::NoTrans && transb == Trans::Transpose) {
    for (index_t j = 0; j < n; ++j) {
      for (index_t l = 0; l < k; ++l) {
        const double bjl = alpha * b[j + l * ldb];
        if (bjl == 0.0) continue;
        const double* acol = a + l * lda;
        double* ccol = c + j * ldc;
        for (index_t i = 0; i < m; ++i) ccol[i] += bjl * acol[i];
      }
    }
  } else {  // T, T
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) {
        const double* acol = a + i * lda;
        double sum = 0.0;
        for (index_t l = 0; l < k; ++l) sum += acol[l] * b[j + l * ldb];
        c[i + j * ldc] += alpha * sum;
      }
    }
  }
}

void trsm(Side side, Uplo uplo, Trans transa, Diag diag, index_t m, index_t n,
          double alpha, const double* a, index_t lda, double* b, index_t ldb) {
  detail::check_trxm(side, m, n, lda, ldb);
  if (m == 0 || n == 0) return;
  scale_matrix(m, n, alpha, b, ldb);
  if (alpha == 0.0) return;

  // op(A)(i,j) accessor.
  auto op = [&](index_t i, index_t j) {
    return transa == Trans::NoTrans ? a[i + j * lda] : a[j + i * lda];
  };
  // Is op(A) effectively lower-triangular?
  const bool lower = (uplo == Uplo::Lower) == (transa == Trans::NoTrans);

  if (side == Side::Left) {
    // Solve op(A) * X = B column by column.
    for (index_t j = 0; j < n; ++j) {
      double* x = b + j * ldb;
      if (lower) {
        for (index_t i = 0; i < m; ++i) {
          double sum = x[i];
          for (index_t l = 0; l < i; ++l) sum -= op(i, l) * x[l];
          x[i] = sum / tri_diag_checked(a, lda, diag, i, "trsm");
        }
      } else {
        for (index_t i = m - 1; i >= 0; --i) {
          double sum = x[i];
          for (index_t l = i + 1; l < m; ++l) sum -= op(i, l) * x[l];
          x[i] = sum / tri_diag_checked(a, lda, diag, i, "trsm");
        }
      }
    }
  } else {
    // Solve X * op(A) = B row by row: X(:,j) depends on X(:,l) with
    // l < j when op(A) is upper (forward sweep), l > j when lower.
    if (lower) {
      for (index_t j = n - 1; j >= 0; --j) {
        double* x = b + j * ldb;
        for (index_t l = j + 1; l < n; ++l) {
          const double alj = op(l, j);
          if (alj == 0.0) continue;
          const double* xl = b + l * ldb;
          for (index_t i = 0; i < m; ++i) x[i] -= xl[i] * alj;
        }
        const double d = tri_diag_checked(a, lda, diag, j, "trsm");
        for (index_t i = 0; i < m; ++i) x[i] /= d;
      }
    } else {
      for (index_t j = 0; j < n; ++j) {
        double* x = b + j * ldb;
        for (index_t l = 0; l < j; ++l) {
          const double alj = op(l, j);
          if (alj == 0.0) continue;
          const double* xl = b + l * ldb;
          for (index_t i = 0; i < m; ++i) x[i] -= xl[i] * alj;
        }
        const double d = tri_diag_checked(a, lda, diag, j, "trsm");
        for (index_t i = 0; i < m; ++i) x[i] /= d;
      }
    }
  }
}

void trmm(Side side, Uplo uplo, Trans transa, Diag diag, index_t m, index_t n,
          double alpha, const double* a, index_t lda, double* b, index_t ldb) {
  detail::check_trxm(side, m, n, lda, ldb);
  if (m == 0 || n == 0) return;
  if (alpha == 0.0) {
    scale_matrix(m, n, 0.0, b, ldb);
    return;
  }

  auto op = [&](index_t i, index_t j) {
    return transa == Trans::NoTrans ? a[i + j * lda] : a[j + i * lda];
  };
  const bool lower = (uplo == Uplo::Lower) == (transa == Trans::NoTrans);

  if (side == Side::Left) {
    // B(:,j) <- alpha * op(A) * B(:,j); traversal order chosen so that
    // still-needed inputs are read before being overwritten.
    for (index_t j = 0; j < n; ++j) {
      double* x = b + j * ldb;
      if (lower) {
        for (index_t i = m - 1; i >= 0; --i) {
          double sum = tri_diag(a, lda, diag, i) * x[i];
          for (index_t l = 0; l < i; ++l) sum += op(i, l) * x[l];
          x[i] = alpha * sum;
        }
      } else {
        for (index_t i = 0; i < m; ++i) {
          double sum = tri_diag(a, lda, diag, i) * x[i];
          for (index_t l = i + 1; l < m; ++l) sum += op(i, l) * x[l];
          x[i] = alpha * sum;
        }
      }
    }
  } else {
    // B <- alpha * B * op(A): column j of the result mixes columns l of B
    // with op(A)(l, j).
    if (lower) {
      for (index_t j = 0; j < n; ++j) {  // ascending: needs original l > j
        double* x = b + j * ldb;
        const double d = tri_diag(a, lda, diag, j);
        for (index_t i = 0; i < m; ++i) x[i] *= alpha * d;
        for (index_t l = j + 1; l < n; ++l) {
          const double alj = op(l, j);
          if (alj == 0.0) continue;
          const double* xl = b + l * ldb;
          for (index_t i = 0; i < m; ++i) x[i] += alpha * alj * xl[i];
        }
      }
    } else {
      for (index_t j = n - 1; j >= 0; --j) {  // descending: needs l < j
        double* x = b + j * ldb;
        const double d = tri_diag(a, lda, diag, j);
        for (index_t i = 0; i < m; ++i) x[i] *= alpha * d;
        for (index_t l = 0; l < j; ++l) {
          const double alj = op(l, j);
          if (alj == 0.0) continue;
          const double* xl = b + l * ldb;
          for (index_t i = 0; i < m; ++i) x[i] += alpha * alj * xl[i];
        }
      }
    }
  }
}

void syrk(Uplo uplo, Trans trans, index_t n, index_t k, double alpha,
          const double* a, index_t lda, double beta, double* c, index_t ldc) {
  detail::check_syrk(trans, n, k, lda, ldc);
  if (n == 0) return;
  // Scale only the referenced triangle.
  for (index_t j = 0; j < n; ++j) {
    const index_t ibegin = (uplo == Uplo::Lower) ? j : 0;
    const index_t iend = (uplo == Uplo::Lower) ? n : j + 1;
    for (index_t i = ibegin; i < iend; ++i) {
      c[i + j * ldc] = (beta == 0.0) ? 0.0 : beta * c[i + j * ldc];
    }
  }
  if (k == 0 || alpha == 0.0) return;

  auto op = [&](index_t i, index_t l) {
    return trans == Trans::NoTrans ? a[i + l * lda] : a[l + i * lda];
  };
  for (index_t j = 0; j < n; ++j) {
    const index_t ibegin = (uplo == Uplo::Lower) ? j : 0;
    const index_t iend = (uplo == Uplo::Lower) ? n : j + 1;
    for (index_t i = ibegin; i < iend; ++i) {
      double sum = 0.0;
      for (index_t l = 0; l < k; ++l) sum += op(i, l) * op(j, l);
      c[i + j * ldc] += alpha * sum;
    }
  }
}

void symm(Side side, Uplo uplo, index_t m, index_t n, double alpha,
          const double* a, index_t lda, const double* b, index_t ldb,
          double beta, double* c, index_t ldc) {
  detail::check_symm(side, m, n, lda, ldb, ldc);
  if (m == 0 || n == 0) return;
  scale_matrix(m, n, beta, c, ldc);
  if (alpha == 0.0) return;

  // Symmetric element accessor reading only the stored triangle.
  auto sym = [&](index_t i, index_t j) {
    const bool stored = (uplo == Uplo::Lower) ? (i >= j) : (i <= j);
    return stored ? a[i + j * lda] : a[j + i * lda];
  };

  if (side == Side::Left) {  // C += alpha * A * B, A is m x m symmetric
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) {
        double sum = 0.0;
        for (index_t l = 0; l < m; ++l) sum += sym(i, l) * b[l + j * ldb];
        c[i + j * ldc] += alpha * sum;
      }
    }
  } else {  // C += alpha * B * A, A is n x n symmetric
    for (index_t j = 0; j < n; ++j) {
      for (index_t l = 0; l < n; ++l) {
        const double alj = alpha * sym(l, j);
        if (alj == 0.0) continue;
        const double* bcol = b + l * ldb;
        double* ccol = c + j * ldc;
        for (index_t i = 0; i < m; ++i) ccol[i] += alj * bcol[i];
      }
    }
  }
}

void syr2k(Uplo uplo, Trans trans, index_t n, index_t k, double alpha,
           const double* a, index_t lda, const double* b, index_t ldb,
           double beta, double* c, index_t ldc) {
  detail::check_syrk(trans, n, k, lda, ldc);
  DLAP_REQUIRE(ldb >= ((trans == Trans::NoTrans ? n : k) > 0
                           ? (trans == Trans::NoTrans ? n : k)
                           : 1),
               "syr2k: ldb too small");
  if (n == 0) return;
  for (index_t j = 0; j < n; ++j) {
    const index_t ibegin = (uplo == Uplo::Lower) ? j : 0;
    const index_t iend = (uplo == Uplo::Lower) ? n : j + 1;
    for (index_t i = ibegin; i < iend; ++i) {
      c[i + j * ldc] = (beta == 0.0) ? 0.0 : beta * c[i + j * ldc];
    }
  }
  if (k == 0 || alpha == 0.0) return;

  auto opa = [&](index_t i, index_t l) {
    return trans == Trans::NoTrans ? a[i + l * lda] : a[l + i * lda];
  };
  auto opb = [&](index_t i, index_t l) {
    return trans == Trans::NoTrans ? b[i + l * ldb] : b[l + i * ldb];
  };
  for (index_t j = 0; j < n; ++j) {
    const index_t ibegin = (uplo == Uplo::Lower) ? j : 0;
    const index_t iend = (uplo == Uplo::Lower) ? n : j + 1;
    for (index_t i = ibegin; i < iend; ++i) {
      double sum = 0.0;
      for (index_t l = 0; l < k; ++l) {
        sum += opa(i, l) * opb(j, l) + opb(i, l) * opa(j, l);
      }
      c[i + j * ldc] += alpha * sum;
    }
  }
}

}  // namespace ref
}  // namespace dlap::blas
