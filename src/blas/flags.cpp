#include "blas/flags.hpp"

namespace dlap {

Side side_from_char(char c) {
  switch (c) {
    case 'L': case 'l': return Side::Left;
    case 'R': case 'r': return Side::Right;
    default: throw parse_error(std::string("bad Side flag: '") + c + "'");
  }
}

Uplo uplo_from_char(char c) {
  switch (c) {
    case 'L': case 'l': return Uplo::Lower;
    case 'U': case 'u': return Uplo::Upper;
    default: throw parse_error(std::string("bad Uplo flag: '") + c + "'");
  }
}

Trans trans_from_char(char c) {
  switch (c) {
    case 'N': case 'n': return Trans::NoTrans;
    case 'T': case 't': case 'C': case 'c': return Trans::Transpose;
    default: throw parse_error(std::string("bad Trans flag: '") + c + "'");
  }
}

Diag diag_from_char(char c) {
  switch (c) {
    case 'N': case 'n': return Diag::NonUnit;
    case 'U': case 'u': return Diag::Unit;
    default: throw parse_error(std::string("bad Diag flag: '") + c + "'");
  }
}

}  // namespace dlap
