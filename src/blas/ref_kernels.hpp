#pragma once
// Reference (textbook) level-3 kernels.
//
// These free functions are the library's correctness oracle and also serve
// as the small-diagonal-block kernels inside the blocked and packed
// backends. They implement the full BLAS semantics (all flag combinations,
// alpha/beta scaling, quick returns) with straightforward loops.

#include "blas/flags.hpp"
#include "common/types.hpp"

namespace dlap::blas::ref {

void gemm(Trans transa, Trans transb, index_t m, index_t n, index_t k,
          double alpha, const double* a, index_t lda, const double* b,
          index_t ldb, double beta, double* c, index_t ldc);

void trsm(Side side, Uplo uplo, Trans transa, Diag diag, index_t m, index_t n,
          double alpha, const double* a, index_t lda, double* b, index_t ldb);

void trmm(Side side, Uplo uplo, Trans transa, Diag diag, index_t m, index_t n,
          double alpha, const double* a, index_t lda, double* b, index_t ldb);

void syrk(Uplo uplo, Trans trans, index_t n, index_t k, double alpha,
          const double* a, index_t lda, double beta, double* c, index_t ldc);

void symm(Side side, Uplo uplo, index_t m, index_t n, double alpha,
          const double* a, index_t lda, const double* b, index_t ldb,
          double beta, double* c, index_t ldc);

void syr2k(Uplo uplo, Trans trans, index_t n, index_t k, double alpha,
           const double* a, index_t lda, const double* b, index_t ldb,
           double beta, double* c, index_t ldc);

}  // namespace dlap::blas::ref
