#include "blas/level1.hpp"

#include <cmath>

namespace dlap::blas {

namespace {
// Negative increments follow BLAS semantics: the vector is traversed
// backwards starting at element (1-n)*inc.
index_t start_index(index_t n, index_t inc) {
  return inc >= 0 ? 0 : (1 - n) * inc;
}
}  // namespace

void dscal(index_t n, double alpha, double* x, index_t incx) {
  if (n <= 0) return;
  if (incx == 1) {
    for (index_t i = 0; i < n; ++i) x[i] *= alpha;
    return;
  }
  index_t ix = start_index(n, incx);
  for (index_t i = 0; i < n; ++i, ix += incx) x[ix] *= alpha;
}

void dcopy(index_t n, const double* x, index_t incx, double* y, index_t incy) {
  if (n <= 0) return;
  if (incx == 1 && incy == 1) {
    for (index_t i = 0; i < n; ++i) y[i] = x[i];
    return;
  }
  index_t ix = start_index(n, incx);
  index_t iy = start_index(n, incy);
  for (index_t i = 0; i < n; ++i, ix += incx, iy += incy) y[iy] = x[ix];
}

void daxpy(index_t n, double alpha, const double* x, index_t incx, double* y,
           index_t incy) {
  if (n <= 0 || alpha == 0.0) return;
  if (incx == 1 && incy == 1) {
    for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
    return;
  }
  index_t ix = start_index(n, incx);
  index_t iy = start_index(n, incy);
  for (index_t i = 0; i < n; ++i, ix += incx, iy += incy) {
    y[iy] += alpha * x[ix];
  }
}

double ddot(index_t n, const double* x, index_t incx, const double* y,
            index_t incy) {
  if (n <= 0) return 0.0;
  double sum = 0.0;
  if (incx == 1 && incy == 1) {
    for (index_t i = 0; i < n; ++i) sum += x[i] * y[i];
    return sum;
  }
  index_t ix = start_index(n, incx);
  index_t iy = start_index(n, incy);
  for (index_t i = 0; i < n; ++i, ix += incx, iy += incy) {
    sum += x[ix] * y[iy];
  }
  return sum;
}

double dnrm2(index_t n, const double* x, index_t incx) {
  if (n <= 0) return 0.0;
  // Two-pass scaled sum of squares (LAPACK dlassq style) for overflow safety.
  double scale = 0.0;
  double ssq = 1.0;
  index_t ix = start_index(n, incx);
  for (index_t i = 0; i < n; ++i, ix += incx) {
    const double a = std::abs(x[ix]);
    if (a == 0.0) continue;
    if (scale < a) {
      const double r = scale / a;
      ssq = 1.0 + ssq * r * r;
      scale = a;
    } else {
      const double r = a / scale;
      ssq += r * r;
    }
  }
  return scale * std::sqrt(ssq);
}

double dasum(index_t n, const double* x, index_t incx) {
  if (n <= 0) return 0.0;
  double sum = 0.0;
  index_t ix = start_index(n, incx);
  for (index_t i = 0; i < n; ++i, ix += incx) sum += std::abs(x[ix]);
  return sum;
}

index_t idamax(index_t n, const double* x, index_t incx) {
  if (n <= 0) return -1;
  index_t best = 0;
  double best_abs = std::abs(x[start_index(n, incx)]);
  index_t ix = start_index(n, incx);
  for (index_t i = 0; i < n; ++i, ix += incx) {
    const double a = std::abs(x[ix]);
    if (a > best_abs) {
      best_abs = a;
      best = i;
    }
  }
  return best;
}

void dswap(index_t n, double* x, index_t incx, double* y, index_t incy) {
  if (n <= 0) return;
  index_t ix = start_index(n, incx);
  index_t iy = start_index(n, incy);
  for (index_t i = 0; i < n; ++i, ix += incx, iy += incy) {
    const double t = x[ix];
    x[ix] = y[iy];
    y[iy] = t;
  }
}

}  // namespace dlap::blas
