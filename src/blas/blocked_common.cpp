#include "blas/blocked_common.hpp"

#include <algorithm>

#include "blas/ref_kernels.hpp"

namespace dlap::blas::blk {

namespace {

void scale_full(index_t m, index_t n, double s, double* c, index_t ldc) {
  if (s == 1.0) return;
  for (index_t j = 0; j < n; ++j) {
    double* col = c + j * ldc;
    if (s == 0.0) {
      for (index_t i = 0; i < m; ++i) col[i] = 0.0;
    } else {
      for (index_t i = 0; i < m; ++i) col[i] *= s;
    }
  }
}

void scale_triangle(Uplo uplo, index_t n, double s, double* c, index_t ldc) {
  if (s == 1.0) return;
  for (index_t j = 0; j < n; ++j) {
    const index_t ibegin = (uplo == Uplo::Lower) ? j : 0;
    const index_t iend = (uplo == Uplo::Lower) ? n : j + 1;
    for (index_t i = ibegin; i < iend; ++i) {
      c[i + j * ldc] = (s == 0.0) ? 0.0 : s * c[i + j * ldc];
    }
  }
}

const double* at(const double* a, index_t lda, index_t i, index_t j) {
  return a + i + j * lda;
}
double* at(double* a, index_t lda, index_t i, index_t j) {
  return a + i + j * lda;
}

}  // namespace

void trsm(Level3Backend& bk, index_t nb, Side side, Uplo uplo, Trans transa,
          Diag diag, index_t m, index_t n, double alpha, const double* a,
          index_t lda, double* b, index_t ldb) {
  detail::check_trxm(side, m, n, lda, ldb);
  if (m == 0 || n == 0) return;
  scale_full(m, n, alpha, b, ldb);
  if (alpha == 0.0) return;

  // Whether op(A) is effectively lower triangular.
  const bool lower = (uplo == Uplo::Lower) == (transa == Trans::NoTrans);
  const bool notrans = (transa == Trans::NoTrans);
  const index_t asz = (side == Side::Left) ? m : n;

  if (side == Side::Left) {
    if (lower) {
      // Forward block substitution.
      for (index_t k0 = 0; k0 < asz; k0 += nb) {
        const index_t kb = std::min(nb, asz - k0);
        const index_t k1 = k0 + kb;
        ref::trsm(side, uplo, transa, diag, kb, n, 1.0, at(a, lda, k0, k0),
                  lda, b + k0, ldb);
        if (k1 < m) {
          // B[k1:m) -= op(A)[k1:m, k0:k1) * X[k0:k1).
          if (notrans) {
            bk.gemm(Trans::NoTrans, Trans::NoTrans, m - k1, n, kb, -1.0,
                    at(a, lda, k1, k0), lda, b + k0, ldb, 1.0, b + k1, ldb);
          } else {
            bk.gemm(Trans::Transpose, Trans::NoTrans, m - k1, n, kb, -1.0,
                    at(a, lda, k0, k1), lda, b + k0, ldb, 1.0, b + k1, ldb);
          }
        }
      }
    } else {
      // Backward block substitution.
      for (index_t k1 = asz; k1 > 0;) {
        const index_t kb = std::min(nb, k1);
        const index_t k0 = k1 - kb;
        ref::trsm(side, uplo, transa, diag, kb, n, 1.0, at(a, lda, k0, k0),
                  lda, b + k0, ldb);
        if (k0 > 0) {
          // B[0:k0) -= op(A)[0:k0, k0:k1) * X[k0:k1).
          if (notrans) {
            bk.gemm(Trans::NoTrans, Trans::NoTrans, k0, n, kb, -1.0,
                    at(a, lda, 0, k0), lda, b + k0, ldb, 1.0, b, ldb);
          } else {
            bk.gemm(Trans::Transpose, Trans::NoTrans, k0, n, kb, -1.0,
                    at(a, lda, k0, 0), lda, b + k0, ldb, 1.0, b, ldb);
          }
        }
        k1 = k0;
      }
    }
  } else {  // Side::Right: solve X * op(A) = B
    if (lower) {
      // Columns depend on later columns: sweep backwards, lazy updates.
      for (index_t k1 = asz; k1 > 0;) {
        const index_t kb = std::min(nb, k1);
        const index_t k0 = k1 - kb;
        if (k1 < n) {
          // B[:, k0:k1) -= X[:, k1:n) * op(A)[k1:n, k0:k1).
          if (notrans) {
            bk.gemm(Trans::NoTrans, Trans::NoTrans, m, kb, n - k1, -1.0,
                    b + k1 * ldb, ldb, at(a, lda, k1, k0), lda, 1.0,
                    b + k0 * ldb, ldb);
          } else {
            bk.gemm(Trans::NoTrans, Trans::Transpose, m, kb, n - k1, -1.0,
                    b + k1 * ldb, ldb, at(a, lda, k0, k1), lda, 1.0,
                    b + k0 * ldb, ldb);
          }
        }
        ref::trsm(side, uplo, transa, diag, m, kb, 1.0, at(a, lda, k0, k0),
                  lda, b + k0 * ldb, ldb);
        k1 = k0;
      }
    } else {
      for (index_t k0 = 0; k0 < asz; k0 += nb) {
        const index_t kb = std::min(nb, asz - k0);
        if (k0 > 0) {
          // B[:, k0:k1) -= X[:, 0:k0) * op(A)[0:k0, k0:k1).
          if (notrans) {
            bk.gemm(Trans::NoTrans, Trans::NoTrans, m, kb, k0, -1.0, b, ldb,
                    at(a, lda, 0, k0), lda, 1.0, b + k0 * ldb, ldb);
          } else {
            bk.gemm(Trans::NoTrans, Trans::Transpose, m, kb, k0, -1.0, b, ldb,
                    at(a, lda, k0, 0), lda, 1.0, b + k0 * ldb, ldb);
          }
        }
        ref::trsm(side, uplo, transa, diag, m, kb, 1.0, at(a, lda, k0, k0),
                  lda, b + k0 * ldb, ldb);
      }
    }
  }
}

void trmm(Level3Backend& bk, index_t nb, Side side, Uplo uplo, Trans transa,
          Diag diag, index_t m, index_t n, double alpha, const double* a,
          index_t lda, double* b, index_t ldb) {
  detail::check_trxm(side, m, n, lda, ldb);
  if (m == 0 || n == 0) return;
  if (alpha == 0.0) {
    scale_full(m, n, 0.0, b, ldb);
    return;
  }

  const bool lower = (uplo == Uplo::Lower) == (transa == Trans::NoTrans);
  const bool notrans = (transa == Trans::NoTrans);
  const index_t asz = (side == Side::Left) ? m : n;

  if (side == Side::Left) {
    if (lower) {
      // Row block k reads original row blocks < k: sweep bottom-up.
      for (index_t k1 = asz; k1 > 0;) {
        const index_t kb = std::min(nb, k1);
        const index_t k0 = k1 - kb;
        ref::trmm(side, uplo, transa, diag, kb, n, alpha,
                  at(a, lda, k0, k0), lda, b + k0, ldb);
        if (k0 > 0) {
          // B[k0:k1) += alpha * op(A)[k0:k1, 0:k0) * B_orig[0:k0).
          if (notrans) {
            bk.gemm(Trans::NoTrans, Trans::NoTrans, kb, n, k0, alpha,
                    at(a, lda, k0, 0), lda, b, ldb, 1.0, b + k0, ldb);
          } else {
            bk.gemm(Trans::Transpose, Trans::NoTrans, kb, n, k0, alpha,
                    at(a, lda, 0, k0), lda, b, ldb, 1.0, b + k0, ldb);
          }
        }
        k1 = k0;
      }
    } else {
      // Row block k reads original row blocks > k: sweep top-down.
      for (index_t k0 = 0; k0 < asz; k0 += nb) {
        const index_t kb = std::min(nb, asz - k0);
        const index_t k1 = k0 + kb;
        ref::trmm(side, uplo, transa, diag, kb, n, alpha,
                  at(a, lda, k0, k0), lda, b + k0, ldb);
        if (k1 < m) {
          if (notrans) {
            bk.gemm(Trans::NoTrans, Trans::NoTrans, kb, n, m - k1, alpha,
                    at(a, lda, k0, k1), lda, b + k1, ldb, 1.0, b + k0, ldb);
          } else {
            bk.gemm(Trans::Transpose, Trans::NoTrans, kb, n, m - k1, alpha,
                    at(a, lda, k1, k0), lda, b + k1, ldb, 1.0, b + k0, ldb);
          }
        }
      }
    }
  } else {  // Side::Right: B <- alpha * B * op(A)
    if (lower) {
      // Column block k reads original column blocks > k: sweep left-right.
      for (index_t k0 = 0; k0 < asz; k0 += nb) {
        const index_t kb = std::min(nb, asz - k0);
        const index_t k1 = k0 + kb;
        ref::trmm(side, uplo, transa, diag, m, kb, alpha,
                  at(a, lda, k0, k0), lda, b + k0 * ldb, ldb);
        if (k1 < n) {
          // B[:,k0:k1) += alpha * B_orig[:,k1:n) * op(A)[k1:n, k0:k1).
          if (notrans) {
            bk.gemm(Trans::NoTrans, Trans::NoTrans, m, kb, n - k1, alpha,
                    b + k1 * ldb, ldb, at(a, lda, k1, k0), lda, 1.0,
                    b + k0 * ldb, ldb);
          } else {
            bk.gemm(Trans::NoTrans, Trans::Transpose, m, kb, n - k1, alpha,
                    b + k1 * ldb, ldb, at(a, lda, k0, k1), lda, 1.0,
                    b + k0 * ldb, ldb);
          }
        }
      }
    } else {
      // Column block k reads original column blocks < k: sweep right-left.
      for (index_t k1 = asz; k1 > 0;) {
        const index_t kb = std::min(nb, k1);
        const index_t k0 = k1 - kb;
        ref::trmm(side, uplo, transa, diag, m, kb, alpha,
                  at(a, lda, k0, k0), lda, b + k0 * ldb, ldb);
        if (k0 > 0) {
          if (notrans) {
            bk.gemm(Trans::NoTrans, Trans::NoTrans, m, kb, k0, alpha, b, ldb,
                    at(a, lda, 0, k0), lda, 1.0, b + k0 * ldb, ldb);
          } else {
            bk.gemm(Trans::NoTrans, Trans::Transpose, m, kb, k0, alpha, b,
                    ldb, at(a, lda, k0, 0), lda, 1.0, b + k0 * ldb, ldb);
          }
        }
        k1 = k0;
      }
    }
  }
}

void syrk(Level3Backend& bk, index_t nb, Uplo uplo, Trans trans, index_t n,
          index_t k, double alpha, const double* a, index_t lda, double beta,
          double* c, index_t ldc) {
  detail::check_syrk(trans, n, k, lda, ldc);
  if (n == 0) return;
  scale_triangle(uplo, n, beta, c, ldc);
  if (k == 0 || alpha == 0.0) return;

  for (index_t j0 = 0; j0 < n; j0 += nb) {
    const index_t jb = std::min(nb, n - j0);
    // Diagonal block via the reference kernel (beta already applied).
    ref::syrk(uplo, trans, jb, k, alpha,
              trans == Trans::NoTrans ? a + j0 : a + j0 * lda, lda, 1.0,
              at(c, ldc, j0, j0), ldc);
    // Off-diagonal panel via gemm.
    const index_t i0 = j0 + jb;
    if (i0 >= n) continue;
    const index_t ib = n - i0;
    if (uplo == Uplo::Lower) {
      // C[i0:n, j0:j0+jb) += alpha * op(A)[i0:n,:] * op(A)[j0:j0+jb,:]^T.
      if (trans == Trans::NoTrans) {
        bk.gemm(Trans::NoTrans, Trans::Transpose, ib, jb, k, alpha, a + i0,
                lda, a + j0, lda, 1.0, at(c, ldc, i0, j0), ldc);
      } else {
        bk.gemm(Trans::Transpose, Trans::NoTrans, ib, jb, k, alpha,
                a + i0 * lda, lda, a + j0 * lda, lda, 1.0,
                at(c, ldc, i0, j0), ldc);
      }
    } else {
      // Upper triangle: block (j0, i0) with the roles swapped.
      if (trans == Trans::NoTrans) {
        bk.gemm(Trans::NoTrans, Trans::Transpose, jb, ib, k, alpha, a + j0,
                lda, a + i0, lda, 1.0, at(c, ldc, j0, i0), ldc);
      } else {
        bk.gemm(Trans::Transpose, Trans::NoTrans, jb, ib, k, alpha,
                a + j0 * lda, lda, a + i0 * lda, lda, 1.0,
                at(c, ldc, j0, i0), ldc);
      }
    }
  }
}

void symm(Level3Backend& bk, index_t nb, Side side, Uplo uplo, index_t m,
          index_t n, double alpha, const double* a, index_t lda,
          const double* b, index_t ldb, double beta, double* c, index_t ldc) {
  detail::check_symm(side, m, n, lda, ldb, ldc);
  if (m == 0 || n == 0) return;
  scale_full(m, n, beta, c, ldc);
  if (alpha == 0.0) return;

  const index_t asz = (side == Side::Left) ? m : n;
  for (index_t i0 = 0; i0 < asz; i0 += nb) {
    const index_t ib = std::min(nb, asz - i0);
    for (index_t l0 = 0; l0 < asz; l0 += nb) {
      const index_t lb = std::min(nb, asz - l0);
      if (i0 == l0) {
        // Diagonal block: true symmetric multiply on the stored triangle.
        if (side == Side::Left) {
          ref::symm(side, uplo, ib, n, alpha, at(a, lda, i0, i0), lda, b + i0,
                    ldb, 1.0, c + i0, ldc);
        } else {
          ref::symm(side, uplo, m, ib, alpha, at(a, lda, i0, i0), lda,
                    b + i0 * ldb, ldb, 1.0, c + i0 * ldc, ldc);
        }
        continue;
      }
      // Off-diagonal block A_sym(i0, l0): stored directly when it lies in
      // the `uplo` triangle, otherwise read transposed from the mirror.
      const bool stored = (uplo == Uplo::Lower) ? (i0 > l0) : (i0 < l0);
      const double* ablk =
          stored ? at(a, lda, i0, l0) : at(a, lda, l0, i0);
      const Trans ta = stored ? Trans::NoTrans : Trans::Transpose;
      if (side == Side::Left) {
        // C[i0 rows] += alpha * A_sym(i0,l0) * B[l0 rows].
        bk.gemm(ta, Trans::NoTrans, ib, n, lb, alpha, ablk, lda, b + l0, ldb,
                1.0, c + i0, ldc);
      } else {
        // C[:, i0 cols] += alpha * B[:, l0 cols] * A_sym(l0, i0).
        // A_sym(l0, i0) = A_sym(i0, l0)^T, so flip the transposition.
        const Trans tb = stored ? Trans::Transpose : Trans::NoTrans;
        bk.gemm(Trans::NoTrans, tb, m, ib, lb, alpha, b + l0 * ldb, ldb, ablk,
                lda, 1.0, c + i0 * ldc, ldc);
      }
    }
  }
}

void syr2k(Level3Backend& bk, index_t nb, Uplo uplo, Trans trans, index_t n,
           index_t k, double alpha, const double* a, index_t lda,
           const double* b, index_t ldb, double beta, double* c,
           index_t ldc) {
  detail::check_syrk(trans, n, k, lda, ldc);
  if (n == 0) return;
  scale_triangle(uplo, n, beta, c, ldc);
  if (k == 0 || alpha == 0.0) return;

  auto panel = [&](const double* p, index_t off) {
    return trans == Trans::NoTrans ? p + off : p + off * lda;
  };
  auto panel_b = [&](index_t off) {
    return trans == Trans::NoTrans ? b + off : b + off * ldb;
  };

  for (index_t j0 = 0; j0 < n; j0 += nb) {
    const index_t jb = std::min(nb, n - j0);
    ref::syr2k(uplo, trans, jb, k, alpha, panel(a, j0), lda, panel_b(j0), ldb,
               1.0, at(c, ldc, j0, j0), ldc);
    const index_t i0 = j0 + jb;
    if (i0 >= n) continue;
    const index_t ib = n - i0;
    const index_t ri = (uplo == Uplo::Lower) ? i0 : j0;
    const index_t rj = (uplo == Uplo::Lower) ? j0 : i0;
    const index_t rm = (uplo == Uplo::Lower) ? ib : jb;
    const index_t rn = (uplo == Uplo::Lower) ? jb : ib;
    const Trans t1 = (trans == Trans::NoTrans) ? Trans::NoTrans
                                               : Trans::Transpose;
    const Trans t2 = (trans == Trans::NoTrans) ? Trans::Transpose
                                               : Trans::NoTrans;
    // C[ri, rj] += alpha*(op(A)[ri] op(B)[rj]^T + op(B)[ri] op(A)[rj]^T).
    bk.gemm(t1, t2, rm, rn, k, alpha, panel(a, ri), lda, panel_b(rj), ldb,
            1.0, at(c, ldc, ri, rj), ldc);
    bk.gemm(t1, t2, rm, rn, k, alpha, panel_b(ri), ldb, panel(a, rj), lda,
            1.0, at(c, ldc, ri, rj), ldc);
  }
}

}  // namespace dlap::blas::blk
