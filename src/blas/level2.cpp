#include "blas/level2.hpp"

#include "blas/level1.hpp"

namespace dlap::blas {

namespace {
void check_ld(index_t rows, index_t ld, const char* who) {
  DLAP_REQUIRE(ld >= (rows > 0 ? rows : 1),
               std::string(who) + ": leading dimension too small");
}
}  // namespace

void dgemv(Trans trans, index_t m, index_t n, double alpha, const double* a,
           index_t lda, const double* x, index_t incx, double beta, double* y,
           index_t incy) {
  DLAP_REQUIRE(m >= 0 && n >= 0, "dgemv: negative dimension");
  check_ld(m, lda, "dgemv");
  const index_t ylen = (trans == Trans::NoTrans) ? m : n;
  const index_t xlen = (trans == Trans::NoTrans) ? n : m;
  if (ylen == 0) return;
  if (beta != 1.0) dscal(ylen, beta, y, incy);
  if (alpha == 0.0 || xlen == 0) return;

  if (trans == Trans::NoTrans) {
    // y += alpha * A * x, column sweep: unit-stride access on A.
    index_t jx = incx >= 0 ? 0 : (1 - n) * incx;
    for (index_t j = 0; j < n; ++j, jx += incx) {
      daxpy(m, alpha * x[jx], a + j * lda, 1, y, incy);
    }
  } else {
    index_t jy = incy >= 0 ? 0 : (1 - n) * incy;
    for (index_t j = 0; j < n; ++j, jy += incy) {
      y[jy] += alpha * ddot(m, a + j * lda, 1, x, incx);
    }
  }
}

void dger(index_t m, index_t n, double alpha, const double* x, index_t incx,
          const double* y, index_t incy, double* a, index_t lda) {
  DLAP_REQUIRE(m >= 0 && n >= 0, "dger: negative dimension");
  check_ld(m, lda, "dger");
  if (m == 0 || n == 0 || alpha == 0.0) return;
  index_t jy = incy >= 0 ? 0 : (1 - n) * incy;
  for (index_t j = 0; j < n; ++j, jy += incy) {
    daxpy(m, alpha * y[jy], x, incx, a + j * lda, 1);
  }
}

void dtrmv(Uplo uplo, Trans trans, Diag diag, index_t n, const double* a,
           index_t lda, double* x, index_t incx) {
  DLAP_REQUIRE(n >= 0, "dtrmv: negative dimension");
  check_ld(n, lda, "dtrmv");
  DLAP_REQUIRE(incx == 1, "dtrmv: only incx == 1 is supported");
  if (n == 0) return;
  const bool unit = (diag == Diag::Unit);

  const bool effective_lower =
      (uplo == Uplo::Lower) == (trans == Trans::NoTrans);
  if (trans == Trans::NoTrans) {
    if (effective_lower) {
      // x_i depends on x_{j<=i}: sweep from the bottom.
      for (index_t i = n - 1; i >= 0; --i) {
        double sum = unit ? x[i] : a[i + i * lda] * x[i];
        for (index_t j = 0; j < i; ++j) sum += a[i + j * lda] * x[j];
        x[i] = sum;
      }
    } else {
      for (index_t i = 0; i < n; ++i) {
        double sum = unit ? x[i] : a[i + i * lda] * x[i];
        for (index_t j = i + 1; j < n; ++j) sum += a[i + j * lda] * x[j];
        x[i] = sum;
      }
    }
  } else {
    // op(A) = A^T: element (i,j) of op(A) is a[j + i*lda].
    if (effective_lower) {
      for (index_t i = n - 1; i >= 0; --i) {
        double sum = unit ? x[i] : a[i + i * lda] * x[i];
        for (index_t j = 0; j < i; ++j) sum += a[j + i * lda] * x[j];
        x[i] = sum;
      }
    } else {
      for (index_t i = 0; i < n; ++i) {
        double sum = unit ? x[i] : a[i + i * lda] * x[i];
        for (index_t j = i + 1; j < n; ++j) sum += a[j + i * lda] * x[j];
        x[i] = sum;
      }
    }
  }
}

void dtrsv(Uplo uplo, Trans trans, Diag diag, index_t n, const double* a,
           index_t lda, double* x, index_t incx) {
  DLAP_REQUIRE(n >= 0, "dtrsv: negative dimension");
  check_ld(n, lda, "dtrsv");
  DLAP_REQUIRE(incx == 1, "dtrsv: only incx == 1 is supported");
  if (n == 0) return;
  const bool unit = (diag == Diag::Unit);

  auto elem = [&](index_t i, index_t j) {
    return (trans == Trans::NoTrans) ? a[i + j * lda] : a[j + i * lda];
  };
  auto diag_elem = [&](index_t i) -> double {
    if (unit) return 1.0;
    const double d = a[i + i * lda];
    if (d == 0.0) throw numerical_error("dtrsv: singular triangular matrix");
    return d;
  };

  const bool effective_lower =
      (uplo == Uplo::Lower) == (trans == Trans::NoTrans);
  if (effective_lower) {
    for (index_t i = 0; i < n; ++i) {
      double sum = x[i];
      for (index_t j = 0; j < i; ++j) sum -= elem(i, j) * x[j];
      x[i] = sum / diag_elem(i);
    }
  } else {
    for (index_t i = n - 1; i >= 0; --i) {
      double sum = x[i];
      for (index_t j = i + 1; j < n; ++j) sum -= elem(i, j) * x[j];
      x[i] = sum / diag_elem(i);
    }
  }
}

void dsymv(Uplo uplo, index_t n, double alpha, const double* a, index_t lda,
           const double* x, index_t incx, double beta, double* y,
           index_t incy) {
  DLAP_REQUIRE(n >= 0, "dsymv: negative dimension");
  check_ld(n, lda, "dsymv");
  DLAP_REQUIRE(incx == 1 && incy == 1,
               "dsymv: only unit increments are supported");
  if (n == 0) return;
  if (beta != 1.0) dscal(n, beta, y, incy);
  if (alpha == 0.0) return;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      const bool use_stored = (uplo == Uplo::Lower) ? (i >= j) : (i <= j);
      const double aij = use_stored ? a[i + j * lda] : a[j + i * lda];
      y[i] += alpha * aij * x[j];
    }
  }
}

}  // namespace dlap::blas
