#include "blas/registry.hpp"

#include <map>
#include <mutex>

#include "blas/blocked_backend.hpp"
#include "blas/naive_backend.hpp"
#include "blas/packed_backend.hpp"
#include "blas/threaded_backend.hpp"
#include "common/str.hpp"

namespace dlap {

namespace {

std::unique_ptr<Level3Backend> make_sequential(const std::string& name) {
  if (name == "naive") return std::make_unique<NaiveBackend>();
  if (name == "blocked") return std::make_unique<BlockedBackend>();
  if (name == "packed") return std::make_unique<PackedBackend>();
  throw lookup_error("unknown BLAS backend: '" + name + "'");
}

}  // namespace

std::unique_ptr<Level3Backend> make_backend(const std::string& spec) {
  const auto at = spec.find('@');
  if (at == std::string::npos) return make_sequential(spec);
  const std::string base = spec.substr(0, at);
  const long long threads = parse_int(spec.substr(at + 1));
  DLAP_REQUIRE(threads >= 1 && threads <= 1024,
               "thread count out of range in backend spec '" + spec + "'");
  return std::make_unique<ThreadedBackend>(make_sequential(base),
                                           static_cast<index_t>(threads));
}

Level3Backend& backend_instance(const std::string& spec) {
  static std::mutex mutex;
  static std::map<std::string, std::unique_ptr<Level3Backend>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(spec);
  if (it == cache.end()) {
    it = cache.emplace(spec, make_backend(spec)).first;
  }
  return *it->second;
}

std::vector<std::string> builtin_backend_names() {
  return {"naive", "blocked", "packed"};
}

}  // namespace dlap
