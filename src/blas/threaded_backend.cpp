#include "blas/threaded_backend.hpp"

#include <algorithm>

namespace dlap {

ThreadedBackend::ThreadedBackend(std::unique_ptr<Level3Backend> inner,
                                 index_t threads)
    : inner_(std::move(inner)), nthreads_(threads) {
  DLAP_REQUIRE(inner_ != nullptr, "threaded backend needs an inner backend");
  DLAP_REQUIRE(threads >= 1, "thread count must be >= 1");
  // The calling thread participates in parallel_for, so the pool itself
  // only needs threads-1 workers.
  pool_ = std::make_unique<ThreadPool>(std::max<index_t>(1, threads - 1));
}

std::string ThreadedBackend::name() const {
  return inner_->name() + "@" + std::to_string(nthreads_);
}

void ThreadedBackend::gemm(Trans transa, Trans transb, index_t m, index_t n,
                           index_t k, double alpha, const double* a,
                           index_t lda, const double* b, index_t ldb,
                           double beta, double* c, index_t ldc) {
  if (m * n <= kSequentialCutoff || nthreads_ == 1) {
    inner_->gemm(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c,
                 ldc);
    return;
  }
  // Partition the widest output dimension so chunks stay column-shaped.
  if (n >= m) {
    pool_->parallel_for(0, n, [&](index_t j0, index_t j1) {
      if (j0 == j1) return;
      const double* bchunk = (transb == Trans::NoTrans) ? b + j0 * ldb
                                                        : b + j0;
      inner_->gemm(transa, transb, m, j1 - j0, k, alpha, a, lda, bchunk, ldb,
                   beta, c + j0 * ldc, ldc);
    });
  } else {
    pool_->parallel_for(0, m, [&](index_t i0, index_t i1) {
      if (i0 == i1) return;
      const double* achunk = (transa == Trans::NoTrans) ? a + i0
                                                        : a + i0 * lda;
      inner_->gemm(transa, transb, i1 - i0, n, k, alpha, achunk, lda, b, ldb,
                   beta, c + i0, ldc);
    });
  }
}

void ThreadedBackend::trsm(Side side, Uplo uplo, Trans transa, Diag diag,
                           index_t m, index_t n, double alpha,
                           const double* a, index_t lda, double* b,
                           index_t ldb) {
  if (m * n <= kSequentialCutoff || nthreads_ == 1) {
    inner_->trsm(side, uplo, transa, diag, m, n, alpha, a, lda, b, ldb);
    return;
  }
  if (side == Side::Left) {
    // Columns of B are independent solves.
    pool_->parallel_for(0, n, [&](index_t j0, index_t j1) {
      if (j0 == j1) return;
      inner_->trsm(side, uplo, transa, diag, m, j1 - j0, alpha, a, lda,
                   b + j0 * ldb, ldb);
    });
  } else {
    // Rows of B are independent solves.
    pool_->parallel_for(0, m, [&](index_t i0, index_t i1) {
      if (i0 == i1) return;
      inner_->trsm(side, uplo, transa, diag, i1 - i0, n, alpha, a, lda,
                   b + i0, ldb);
    });
  }
}

void ThreadedBackend::trmm(Side side, Uplo uplo, Trans transa, Diag diag,
                           index_t m, index_t n, double alpha,
                           const double* a, index_t lda, double* b,
                           index_t ldb) {
  if (m * n <= kSequentialCutoff || nthreads_ == 1) {
    inner_->trmm(side, uplo, transa, diag, m, n, alpha, a, lda, b, ldb);
    return;
  }
  if (side == Side::Left) {
    pool_->parallel_for(0, n, [&](index_t j0, index_t j1) {
      if (j0 == j1) return;
      inner_->trmm(side, uplo, transa, diag, m, j1 - j0, alpha, a, lda,
                   b + j0 * ldb, ldb);
    });
  } else {
    pool_->parallel_for(0, m, [&](index_t i0, index_t i1) {
      if (i0 == i1) return;
      inner_->trmm(side, uplo, transa, diag, i1 - i0, n, alpha, a, lda,
                   b + i0, ldb);
    });
  }
}

void ThreadedBackend::syrk(Uplo uplo, Trans trans, index_t n, index_t k,
                           double alpha, const double* a, index_t lda,
                           double beta, double* c, index_t ldc) {
  if (n * n <= kSequentialCutoff || nthreads_ == 1) {
    inner_->syrk(uplo, trans, n, k, alpha, a, lda, beta, c, ldc);
    return;
  }
  // Each chunk of block-columns [c0, c1) owns a disjoint part of the
  // triangle: a small diagonal triangle plus a rectangular panel.
  pool_->parallel_for(0, n, [&](index_t c0, index_t c1) {
    if (c0 == c1) return;
    const index_t w = c1 - c0;
    const double* adiag = (trans == Trans::NoTrans) ? a + c0 : a + c0 * lda;
    inner_->syrk(uplo, trans, w, k, alpha, adiag, lda, beta,
                 c + c0 + c0 * ldc, ldc);
    // Rectangle: rows below (Lower) resp. above (Upper) the diagonal chunk.
    if (uplo == Uplo::Lower && c1 < n) {
      const double* arow = (trans == Trans::NoTrans) ? a + c1 : a + c1 * lda;
      if (trans == Trans::NoTrans) {
        inner_->gemm(Trans::NoTrans, Trans::Transpose, n - c1, w, k, alpha,
                     arow, lda, adiag, lda, beta, c + c1 + c0 * ldc, ldc);
      } else {
        inner_->gemm(Trans::Transpose, Trans::NoTrans, n - c1, w, k, alpha,
                     arow, lda, adiag, lda, beta, c + c1 + c0 * ldc, ldc);
      }
    } else if (uplo == Uplo::Upper && c0 > 0) {
      const double* atop = a;
      if (trans == Trans::NoTrans) {
        inner_->gemm(Trans::NoTrans, Trans::Transpose, c0, w, k, alpha, atop,
                     lda, adiag, lda, beta, c + c0 * ldc, ldc);
      } else {
        inner_->gemm(Trans::Transpose, Trans::NoTrans, c0, w, k, alpha, atop,
                     lda, adiag, lda, beta, c + c0 * ldc, ldc);
      }
    }
  });
}

void ThreadedBackend::symm(Side side, Uplo uplo, index_t m, index_t n,
                           double alpha, const double* a, index_t lda,
                           const double* b, index_t ldb, double beta,
                           double* c, index_t ldc) {
  if (m * n <= kSequentialCutoff || nthreads_ == 1) {
    inner_->symm(side, uplo, m, n, alpha, a, lda, b, ldb, beta, c, ldc);
    return;
  }
  if (side == Side::Left) {
    // Column chunks of C are independent.
    pool_->parallel_for(0, n, [&](index_t j0, index_t j1) {
      if (j0 == j1) return;
      inner_->symm(side, uplo, m, j1 - j0, alpha, a, lda, b + j0 * ldb, ldb,
                   beta, c + j0 * ldc, ldc);
    });
  } else {
    // Row chunks of C are independent.
    pool_->parallel_for(0, m, [&](index_t i0, index_t i1) {
      if (i0 == i1) return;
      inner_->symm(side, uplo, i1 - i0, n, alpha, a, lda, b + i0, ldb, beta,
                   c + i0, ldc);
    });
  }
}

void ThreadedBackend::syr2k(Uplo uplo, Trans trans, index_t n, index_t k,
                            double alpha, const double* a, index_t lda,
                            const double* b, index_t ldb, double beta,
                            double* c, index_t ldc) {
  if (n * n <= kSequentialCutoff || nthreads_ == 1) {
    inner_->syr2k(uplo, trans, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    return;
  }
  pool_->parallel_for(0, n, [&](index_t c0, index_t c1) {
    if (c0 == c1) return;
    const index_t w = c1 - c0;
    auto panel = [&](const double* p, index_t ld, index_t off) {
      return (trans == Trans::NoTrans) ? p + off : p + off * ld;
    };
    inner_->syr2k(uplo, trans, w, k, alpha, panel(a, lda, c0), lda,
                  panel(b, ldb, c0), ldb, beta, c + c0 + c0 * ldc, ldc);
    const Trans t1 = (trans == Trans::NoTrans) ? Trans::NoTrans
                                               : Trans::Transpose;
    const Trans t2 = (trans == Trans::NoTrans) ? Trans::Transpose
                                               : Trans::NoTrans;
    if (uplo == Uplo::Lower && c1 < n) {
      inner_->gemm(t1, t2, n - c1, w, k, alpha, panel(a, lda, c1), lda,
                   panel(b, ldb, c0), ldb, beta, c + c1 + c0 * ldc, ldc);
      inner_->gemm(t1, t2, n - c1, w, k, alpha, panel(b, ldb, c1), ldb,
                   panel(a, lda, c0), lda, 1.0, c + c1 + c0 * ldc, ldc);
    } else if (uplo == Uplo::Upper && c0 > 0) {
      inner_->gemm(t1, t2, c0, w, k, alpha, panel(a, lda, 0), lda,
                   panel(b, ldb, c0), ldb, beta, c + c0 * ldc, ldc);
      inner_->gemm(t1, t2, c0, w, k, alpha, panel(b, ldb, 0), ldb,
                   panel(a, lda, c0), lda, 1.0, c + c0 * ldc, ldc);
    }
  });
}

}  // namespace dlap
