#pragma once
// Blocked level-3 routines layered on top of an arbitrary gemm.
//
// trsm/trmm/syrk/symm/syr2k are reformulated as sequences of small
// reference kernels on nb x nb diagonal blocks plus large gemm updates, the
// standard high-performance BLAS construction. Both the "blocked" and the
// "packed" backend reuse these, differing only in the gemm they provide and
// the block size nb.

#include "blas/backend.hpp"

namespace dlap::blas::blk {

/// B <- alpha * op(A)^{-1} B or alpha * B op(A)^{-1}; gemm calls are
/// dispatched through `bk` so the host backend's optimized gemm is used.
void trsm(Level3Backend& bk, index_t nb, Side side, Uplo uplo, Trans transa,
          Diag diag, index_t m, index_t n, double alpha, const double* a,
          index_t lda, double* b, index_t ldb);

/// B <- alpha * op(A) B or alpha * B op(A).
void trmm(Level3Backend& bk, index_t nb, Side side, Uplo uplo, Trans transa,
          Diag diag, index_t m, index_t n, double alpha, const double* a,
          index_t lda, double* b, index_t ldb);

/// C <- alpha op(A) op(A)^T + beta C (triangle only).
void syrk(Level3Backend& bk, index_t nb, Uplo uplo, Trans trans, index_t n,
          index_t k, double alpha, const double* a, index_t lda, double beta,
          double* c, index_t ldc);

/// C <- alpha A B + beta C with symmetric A (Side selects the A side).
void symm(Level3Backend& bk, index_t nb, Side side, Uplo uplo, index_t m,
          index_t n, double alpha, const double* a, index_t lda,
          const double* b, index_t ldb, double beta, double* c, index_t ldc);

/// C <- alpha (op(A) op(B)^T + op(B) op(A)^T) + beta C (triangle only).
void syr2k(Level3Backend& bk, index_t nb, Uplo uplo, Trans trans, index_t n,
           index_t k, double alpha, const double* a, index_t lda,
           const double* b, index_t ldb, double beta, double* c, index_t ldc);

}  // namespace dlap::blas::blk
