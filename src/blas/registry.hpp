#pragma once
// Backend registry: resolves implementation names to live backends.
//
// Model repository entries are keyed by implementation name (the paper's
// "fixed implementation" in Section III-B); the registry maps those names
// back to executable backends. Spec grammar:
//   "naive" | "blocked" | "packed"          sequential backends
//   "<name>@<threads>"                      threaded decorator, e.g.
//                                           "blocked@8"

#include <memory>
#include <string>
#include <vector>

#include "blas/backend.hpp"

namespace dlap {

/// Creates a fresh backend from a spec; throws dlap::lookup_error on an
/// unknown name and dlap::parse_error on a malformed thread suffix.
[[nodiscard]] std::unique_ptr<Level3Backend> make_backend(
    const std::string& spec);

/// Process-wide cache of backends by spec (threaded backends own thread
/// pools, so reusing instances matters). Thread-safe.
[[nodiscard]] Level3Backend& backend_instance(const std::string& spec);

/// Names of the three sequential built-in backends.
[[nodiscard]] std::vector<std::string> builtin_backend_names();

}  // namespace dlap
