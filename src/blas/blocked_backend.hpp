#pragma once
// "blocked" backend: cache-blocked gemm (no packing) + blocked trxm/syxx.
//
// Middle of the three performance signatures: tiles A/B/C so the working
// set fits in cache, with a 4-column register kernel, but leaves operands
// in place (strided access across tiles). Plays the role of a decent
// hand-blocked library.

#include "blas/backend.hpp"

namespace dlap {

class BlockedBackend final : public Level3Backend {
 public:
  /// Tile sizes are tunable for the ablation benches; defaults are chosen
  /// for common L1/L2 sizes.
  explicit BlockedBackend(index_t mc = 96, index_t kc = 128, index_t nb = 64)
      : mc_(mc), kc_(kc), nb_(nb) {
    DLAP_REQUIRE(mc > 0 && kc > 0 && nb > 0, "tile sizes must be positive");
  }

  [[nodiscard]] std::string name() const override { return "blocked"; }

  void gemm(Trans transa, Trans transb, index_t m, index_t n, index_t k,
            double alpha, const double* a, index_t lda, const double* b,
            index_t ldb, double beta, double* c, index_t ldc) override;
  void trsm(Side side, Uplo uplo, Trans transa, Diag diag, index_t m,
            index_t n, double alpha, const double* a, index_t lda, double* b,
            index_t ldb) override;
  void trmm(Side side, Uplo uplo, Trans transa, Diag diag, index_t m,
            index_t n, double alpha, const double* a, index_t lda, double* b,
            index_t ldb) override;
  void syrk(Uplo uplo, Trans trans, index_t n, index_t k, double alpha,
            const double* a, index_t lda, double beta, double* c,
            index_t ldc) override;
  void symm(Side side, Uplo uplo, index_t m, index_t n, double alpha,
            const double* a, index_t lda, const double* b, index_t ldb,
            double beta, double* c, index_t ldc) override;
  void syr2k(Uplo uplo, Trans trans, index_t n, index_t k, double alpha,
             const double* a, index_t lda, const double* b, index_t ldb,
             double beta, double* c, index_t ldc) override;

 private:
  index_t mc_;
  index_t kc_;
  index_t nb_;
};

}  // namespace dlap
