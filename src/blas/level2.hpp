#pragma once
// Level-2 BLAS: matrix-vector kernels (column-major, leading-dimension
// convention). One scalar implementation shared by all backends.

#include "blas/flags.hpp"
#include "common/types.hpp"

namespace dlap::blas {

/// y <- alpha * op(A) * x + beta * y,  A is m x n.
void dgemv(Trans trans, index_t m, index_t n, double alpha, const double* a,
           index_t lda, const double* x, index_t incx, double beta, double* y,
           index_t incy);

/// A <- alpha * x * y^T + A,  A is m x n.
void dger(index_t m, index_t n, double alpha, const double* x, index_t incx,
          const double* y, index_t incy, double* a, index_t lda);

/// x <- op(A) * x,  A triangular n x n.
void dtrmv(Uplo uplo, Trans trans, Diag diag, index_t n, const double* a,
           index_t lda, double* x, index_t incx);

/// x <- op(A)^{-1} * x,  A triangular n x n. Throws dlap::numerical_error on
/// an exactly-zero diagonal element (singular system).
void dtrsv(Uplo uplo, Trans trans, Diag diag, index_t n, const double* a,
           index_t lda, double* x, index_t incx);

/// y <- alpha * A * x + beta * y,  A symmetric n x n stored in `uplo` half.
void dsymv(Uplo uplo, index_t n, double alpha, const double* a, index_t lda,
           const double* x, index_t incx, double beta, double* y,
           index_t incy);

}  // namespace dlap::blas
