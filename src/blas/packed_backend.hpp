#pragma once
// "packed" backend: blocked gemm with operand packing.
//
// The fastest of the three signatures: op(A) and op(B) tiles are copied
// into contiguous thread-local buffers before the register kernel runs, so
// all four transpose combinations share one unit-stride kernel. The packing
// buffers are allocated lazily on first use, which reproduces the paper's
// observation that the first invocation of a BLAS library is much slower
// than subsequent ones (Section II-B).

#include "blas/backend.hpp"

namespace dlap {

class PackedBackend final : public Level3Backend {
 public:
  explicit PackedBackend(index_t mc = 96, index_t kc = 128, index_t nc = 256,
                         index_t nb = 96)
      : mc_(mc), kc_(kc), nc_(nc), nb_(nb) {
    DLAP_REQUIRE(mc > 0 && kc > 0 && nc > 0 && nb > 0,
                 "tile sizes must be positive");
  }

  [[nodiscard]] std::string name() const override { return "packed"; }

  void gemm(Trans transa, Trans transb, index_t m, index_t n, index_t k,
            double alpha, const double* a, index_t lda, const double* b,
            index_t ldb, double beta, double* c, index_t ldc) override;
  void trsm(Side side, Uplo uplo, Trans transa, Diag diag, index_t m,
            index_t n, double alpha, const double* a, index_t lda, double* b,
            index_t ldb) override;
  void trmm(Side side, Uplo uplo, Trans transa, Diag diag, index_t m,
            index_t n, double alpha, const double* a, index_t lda, double* b,
            index_t ldb) override;
  void syrk(Uplo uplo, Trans trans, index_t n, index_t k, double alpha,
            const double* a, index_t lda, double beta, double* c,
            index_t ldc) override;
  void symm(Side side, Uplo uplo, index_t m, index_t n, double alpha,
            const double* a, index_t lda, const double* b, index_t ldb,
            double beta, double* c, index_t ldc) override;
  void syr2k(Uplo uplo, Trans trans, index_t n, index_t k, double alpha,
             const double* a, index_t lda, const double* b, index_t ldb,
             double beta, double* c, index_t ldc) override;

 private:
  index_t mc_;
  index_t kc_;
  index_t nc_;
  index_t nb_;
};

}  // namespace dlap
