#pragma once
// "naive" backend: textbook kernels without blocking.
//
// Plays the role of the slowest library in the paper's three-way
// comparisons (its performance signature degrades sharply once operands
// fall out of cache, exactly the contrast the Modeler needs to capture).

#include "blas/backend.hpp"

namespace dlap {

class NaiveBackend final : public Level3Backend {
 public:
  [[nodiscard]] std::string name() const override { return "naive"; }

  void gemm(Trans transa, Trans transb, index_t m, index_t n, index_t k,
            double alpha, const double* a, index_t lda, const double* b,
            index_t ldb, double beta, double* c, index_t ldc) override;
  void trsm(Side side, Uplo uplo, Trans transa, Diag diag, index_t m,
            index_t n, double alpha, const double* a, index_t lda, double* b,
            index_t ldb) override;
  void trmm(Side side, Uplo uplo, Trans transa, Diag diag, index_t m,
            index_t n, double alpha, const double* a, index_t lda, double* b,
            index_t ldb) override;
  void syrk(Uplo uplo, Trans trans, index_t n, index_t k, double alpha,
            const double* a, index_t lda, double beta, double* c,
            index_t ldc) override;
  void symm(Side side, Uplo uplo, index_t m, index_t n, double alpha,
            const double* a, index_t lda, const double* b, index_t ldb,
            double beta, double* c, index_t ldc) override;
  void syr2k(Uplo uplo, Trans trans, index_t n, index_t k, double alpha,
             const double* a, index_t lda, const double* b, index_t ldb,
             double beta, double* c, index_t ldc) override;
};

}  // namespace dlap
