#pragma once
// BLAS flag arguments (the paper's "flag" argument class, Section III-A1):
// each takes one of two values and is modeled by a separate submodel.

#include <string>

#include "common/types.hpp"

namespace dlap {

enum class Side : char { Left = 'L', Right = 'R' };
enum class Uplo : char { Lower = 'L', Upper = 'U' };
enum class Trans : char { NoTrans = 'N', Transpose = 'T' };
enum class Diag : char { NonUnit = 'N', Unit = 'U' };

[[nodiscard]] constexpr char to_char(Side s) { return static_cast<char>(s); }
[[nodiscard]] constexpr char to_char(Uplo u) { return static_cast<char>(u); }
[[nodiscard]] constexpr char to_char(Trans t) { return static_cast<char>(t); }
[[nodiscard]] constexpr char to_char(Diag d) { return static_cast<char>(d); }

[[nodiscard]] Side side_from_char(char c);
[[nodiscard]] Uplo uplo_from_char(char c);
[[nodiscard]] Trans trans_from_char(char c);
[[nodiscard]] Diag diag_from_char(char c);

/// "L"/"R"/... one-character strings, convenient for call serialization.
[[nodiscard]] inline std::string to_string(Side s) { return {to_char(s)}; }
[[nodiscard]] inline std::string to_string(Uplo u) { return {to_char(u)}; }
[[nodiscard]] inline std::string to_string(Trans t) { return {to_char(t)}; }
[[nodiscard]] inline std::string to_string(Diag d) { return {to_char(d)}; }

}  // namespace dlap
