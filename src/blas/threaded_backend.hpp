#pragma once
// Threaded decorator over any sequential Level3Backend.
//
// Mirrors the paper's "multithreaded version of the OpenBLAS library"
// (Section IV-A4): the same kernel interface, but level-3 calls are
// partitioned across a thread pool. Partitioning is by independent output
// regions, so no synchronization beyond the fork/join per call is needed.

#include <memory>

#include "blas/backend.hpp"
#include "common/threadpool.hpp"

namespace dlap {

class ThreadedBackend final : public Level3Backend {
 public:
  /// Takes ownership of the sequential backend used by every worker.
  ThreadedBackend(std::unique_ptr<Level3Backend> inner, index_t threads);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] index_t threads() const override { return nthreads_; }

  void gemm(Trans transa, Trans transb, index_t m, index_t n, index_t k,
            double alpha, const double* a, index_t lda, const double* b,
            index_t ldb, double beta, double* c, index_t ldc) override;
  void trsm(Side side, Uplo uplo, Trans transa, Diag diag, index_t m,
            index_t n, double alpha, const double* a, index_t lda, double* b,
            index_t ldb) override;
  void trmm(Side side, Uplo uplo, Trans transa, Diag diag, index_t m,
            index_t n, double alpha, const double* a, index_t lda, double* b,
            index_t ldb) override;
  void syrk(Uplo uplo, Trans trans, index_t n, index_t k, double alpha,
            const double* a, index_t lda, double beta, double* c,
            index_t ldc) override;
  void symm(Side side, Uplo uplo, index_t m, index_t n, double alpha,
            const double* a, index_t lda, const double* b, index_t ldb,
            double beta, double* c, index_t ldc) override;
  void syr2k(Uplo uplo, Trans trans, index_t n, index_t k, double alpha,
             const double* a, index_t lda, const double* b, index_t ldb,
             double beta, double* c, index_t ldc) override;

 private:
  /// Work below this many output elements runs sequentially: fork/join
  /// overhead would dominate (also keeps tiny model-generation samples
  /// meaningful).
  static constexpr index_t kSequentialCutoff = 64 * 64;

  std::unique_ptr<Level3Backend> inner_;
  std::unique_ptr<ThreadPool> pool_;
  index_t nthreads_;
};

}  // namespace dlap
