#pragma once
// Level-1 BLAS: vector-vector kernels with BLAS increment semantics.
// Shared by all backends (they dominate nothing at level 3, so one tuned
// scalar implementation suffices).

#include "common/types.hpp"

namespace dlap::blas {

/// x <- alpha * x
void dscal(index_t n, double alpha, double* x, index_t incx);

/// y <- x
void dcopy(index_t n, const double* x, index_t incx, double* y, index_t incy);

/// y <- alpha * x + y
void daxpy(index_t n, double alpha, const double* x, index_t incx, double* y,
           index_t incy);

/// returns x . y
[[nodiscard]] double ddot(index_t n, const double* x, index_t incx,
                          const double* y, index_t incy);

/// returns ||x||_2 (scaled to avoid overflow)
[[nodiscard]] double dnrm2(index_t n, const double* x, index_t incx);

/// returns sum |x_i|
[[nodiscard]] double dasum(index_t n, const double* x, index_t incx);

/// returns index (0-based) of max |x_i|; -1 for empty vectors
[[nodiscard]] index_t idamax(index_t n, const double* x, index_t incx);

/// swaps x and y
void dswap(index_t n, double* x, index_t incx, double* y, index_t incy);

}  // namespace dlap::blas
