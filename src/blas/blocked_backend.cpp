#include "blas/blocked_backend.hpp"

#include <algorithm>

#include "blas/blocked_common.hpp"

namespace dlap {

namespace {

void scale_matrix(index_t m, index_t n, double beta, double* c, index_t ldc) {
  if (beta == 1.0) return;
  for (index_t j = 0; j < n; ++j) {
    double* col = c + j * ldc;
    if (beta == 0.0) {
      for (index_t i = 0; i < m; ++i) col[i] = 0.0;
    } else {
      for (index_t i = 0; i < m; ++i) col[i] *= beta;
    }
  }
}

// C tile += alpha * A_tile * B_tile for the NoTrans/NoTrans case:
// axpy-style rank-updates, 4 C columns per pass so each A column is loaded
// once per 4 columns.
void tile_nn(index_t mb, index_t nbt, index_t kb, double alpha,
             const double* a, index_t lda, const double* b, index_t ldb,
             double* c, index_t ldc) {
  index_t j = 0;
  for (; j + 4 <= nbt; j += 4) {
    const double* b0 = b + (j + 0) * ldb;
    const double* b1 = b + (j + 1) * ldb;
    const double* b2 = b + (j + 2) * ldb;
    const double* b3 = b + (j + 3) * ldb;
    double* c0 = c + (j + 0) * ldc;
    double* c1 = c + (j + 1) * ldc;
    double* c2 = c + (j + 2) * ldc;
    double* c3 = c + (j + 3) * ldc;
    for (index_t l = 0; l < kb; ++l) {
      const double* acol = a + l * lda;
      const double w0 = alpha * b0[l];
      const double w1 = alpha * b1[l];
      const double w2 = alpha * b2[l];
      const double w3 = alpha * b3[l];
      for (index_t i = 0; i < mb; ++i) {
        const double av = acol[i];
        c0[i] += av * w0;
        c1[i] += av * w1;
        c2[i] += av * w2;
        c3[i] += av * w3;
      }
    }
  }
  for (; j < nbt; ++j) {
    const double* bj = b + j * ldb;
    double* cj = c + j * ldc;
    for (index_t l = 0; l < kb; ++l) {
      const double w = alpha * bj[l];
      const double* acol = a + l * lda;
      for (index_t i = 0; i < mb; ++i) cj[i] += acol[i] * w;
    }
  }
}

// C tile += alpha * A_tile^T * B_tile: dot products down columns of A and B
// (both unit stride), 2x2 outer unroll for register reuse.
void tile_tn(index_t mb, index_t nbt, index_t kb, double alpha,
             const double* a, index_t lda, const double* b, index_t ldb,
             double* c, index_t ldc) {
  index_t j = 0;
  for (; j + 2 <= nbt; j += 2) {
    const double* bj0 = b + (j + 0) * ldb;
    const double* bj1 = b + (j + 1) * ldb;
    index_t i = 0;
    for (; i + 2 <= mb; i += 2) {
      const double* ai0 = a + (i + 0) * lda;
      const double* ai1 = a + (i + 1) * lda;
      double s00 = 0.0, s01 = 0.0, s10 = 0.0, s11 = 0.0;
      for (index_t l = 0; l < kb; ++l) {
        const double b0 = bj0[l];
        const double b1 = bj1[l];
        s00 += ai0[l] * b0;
        s01 += ai0[l] * b1;
        s10 += ai1[l] * b0;
        s11 += ai1[l] * b1;
      }
      c[i + j * ldc] += alpha * s00;
      c[i + (j + 1) * ldc] += alpha * s01;
      c[i + 1 + j * ldc] += alpha * s10;
      c[i + 1 + (j + 1) * ldc] += alpha * s11;
    }
    for (; i < mb; ++i) {
      const double* ai = a + i * lda;
      double s0 = 0.0, s1 = 0.0;
      for (index_t l = 0; l < kb; ++l) {
        s0 += ai[l] * bj0[l];
        s1 += ai[l] * bj1[l];
      }
      c[i + j * ldc] += alpha * s0;
      c[i + (j + 1) * ldc] += alpha * s1;
    }
  }
  for (; j < nbt; ++j) {
    const double* bj = b + j * ldb;
    for (index_t i = 0; i < mb; ++i) {
      const double* ai = a + i * lda;
      double s = 0.0;
      for (index_t l = 0; l < kb; ++l) s += ai[l] * bj[l];
      c[i + j * ldc] += alpha * s;
    }
  }
}

// C tile += alpha * A_tile * B_tile^T: axpy form with strided B reads.
void tile_nt(index_t mb, index_t nbt, index_t kb, double alpha,
             const double* a, index_t lda, const double* b, index_t ldb,
             double* c, index_t ldc) {
  for (index_t j = 0; j < nbt; ++j) {
    double* cj = c + j * ldc;
    for (index_t l = 0; l < kb; ++l) {
      const double w = alpha * b[j + l * ldb];
      if (w == 0.0) continue;
      const double* acol = a + l * lda;
      for (index_t i = 0; i < mb; ++i) cj[i] += acol[i] * w;
    }
  }
}

// C tile += alpha * A_tile^T * B_tile^T: dot form with strided B reads.
void tile_tt(index_t mb, index_t nbt, index_t kb, double alpha,
             const double* a, index_t lda, const double* b, index_t ldb,
             double* c, index_t ldc) {
  for (index_t j = 0; j < nbt; ++j) {
    for (index_t i = 0; i < mb; ++i) {
      const double* ai = a + i * lda;
      double s = 0.0;
      for (index_t l = 0; l < kb; ++l) s += ai[l] * b[j + l * ldb];
      c[i + j * ldc] += alpha * s;
    }
  }
}

}  // namespace

void BlockedBackend::gemm(Trans transa, Trans transb, index_t m, index_t n,
                          index_t k, double alpha, const double* a,
                          index_t lda, const double* b, index_t ldb,
                          double beta, double* c, index_t ldc) {
  blas::detail::check_gemm(transa, transb, m, n, k, lda, ldb, ldc);
  if (m == 0 || n == 0) return;
  scale_matrix(m, n, beta, c, ldc);
  if (k == 0 || alpha == 0.0) return;

  for (index_t pc = 0; pc < k; pc += kc_) {
    const index_t kb = std::min(kc_, k - pc);
    for (index_t ic = 0; ic < m; ic += mc_) {
      const index_t mb = std::min(mc_, m - ic);
      // Tile origin of op(A): (ic, pc).
      const double* atile = (transa == Trans::NoTrans)
                                ? a + ic + pc * lda
                                : a + pc + ic * lda;
      // Tile origin of op(B): (pc, 0) within each column sweep.
      if (transa == Trans::NoTrans && transb == Trans::NoTrans) {
        tile_nn(mb, n, kb, alpha, atile, lda, b + pc, ldb, c + ic, ldc);
      } else if (transa == Trans::Transpose && transb == Trans::NoTrans) {
        tile_tn(mb, n, kb, alpha, atile, lda, b + pc, ldb, c + ic, ldc);
      } else if (transa == Trans::NoTrans && transb == Trans::Transpose) {
        tile_nt(mb, n, kb, alpha, atile, lda, b + pc * ldb, ldb, c + ic, ldc);
      } else {
        tile_tt(mb, n, kb, alpha, atile, lda, b + pc * ldb, ldb, c + ic, ldc);
      }
    }
  }
}

void BlockedBackend::trsm(Side side, Uplo uplo, Trans transa, Diag diag,
                          index_t m, index_t n, double alpha, const double* a,
                          index_t lda, double* b, index_t ldb) {
  blas::blk::trsm(*this, nb_, side, uplo, transa, diag, m, n, alpha, a, lda,
                  b, ldb);
}

void BlockedBackend::trmm(Side side, Uplo uplo, Trans transa, Diag diag,
                          index_t m, index_t n, double alpha, const double* a,
                          index_t lda, double* b, index_t ldb) {
  blas::blk::trmm(*this, nb_, side, uplo, transa, diag, m, n, alpha, a, lda,
                  b, ldb);
}

void BlockedBackend::syrk(Uplo uplo, Trans trans, index_t n, index_t k,
                          double alpha, const double* a, index_t lda,
                          double beta, double* c, index_t ldc) {
  blas::blk::syrk(*this, nb_, uplo, trans, n, k, alpha, a, lda, beta, c, ldc);
}

void BlockedBackend::symm(Side side, Uplo uplo, index_t m, index_t n,
                          double alpha, const double* a, index_t lda,
                          const double* b, index_t ldb, double beta, double* c,
                          index_t ldc) {
  blas::blk::symm(*this, nb_, side, uplo, m, n, alpha, a, lda, b, ldb, beta,
                  c, ldc);
}

void BlockedBackend::syr2k(Uplo uplo, Trans trans, index_t n, index_t k,
                           double alpha, const double* a, index_t lda,
                           const double* b, index_t ldb, double beta,
                           double* c, index_t ldc) {
  blas::blk::syr2k(*this, nb_, uplo, trans, n, k, alpha, a, lda, b, ldb, beta,
                   c, ldc);
}

}  // namespace dlap
