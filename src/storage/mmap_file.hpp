#pragma once
// Read-only memory mapping of a whole file, with a plain read() fallback.
//
// The container reader serves model coefficient tables straight out of
// this mapping (zero-copy load), so the mapping must stay alive as long
// as any loaded model does -- MappedFile is therefore only handed out as
// a shared_ptr, which the storage layer pins inside every shared model it
// returns. On platforms without mmap (or when mapping fails, e.g. on a
// pseudo-filesystem) the file is read into an owned buffer instead; the
// reader does not care which it got.

#include <cstddef>
#include <filesystem>
#include <memory>
#include <vector>

namespace dlap::storage {

class MappedFile {
 public:
  /// Maps (or, failing that, reads) the file read-only. Throws
  /// dlap::container_error when the file cannot be opened or read.
  [[nodiscard]] static std::shared_ptr<const MappedFile> open(
      const std::filesystem::path& path);

  /// Wraps an in-memory image (tests, tools). `offset` bytes of `bytes`
  /// are skipped, which lets tests present a deliberately misaligned
  /// view of a container image.
  [[nodiscard]] static std::shared_ptr<const MappedFile> from_buffer(
      std::vector<std::byte> bytes, std::size_t offset = 0);

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  [[nodiscard]] const std::byte* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// True when the bytes come from an actual mmap (false: owned buffer).
  [[nodiscard]] bool is_mapped() const noexcept { return mapped_; }

 private:
  MappedFile() = default;

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  void* map_base_ = nullptr;       // munmap handle (mapped case)
  std::size_t map_length_ = 0;
  std::vector<std::byte> buffer_;  // fallback / from_buffer storage
};

}  // namespace dlap::storage
