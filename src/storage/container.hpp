#pragma once
// The .dlapc binary container: one file holding an entire repository --
// every RoutineModel and, in a second section, the compacted sample
// journals -- laid out so that a single mmap makes it servable with O(1)
// parse work per open (ROADMAP item "Binary model + sample format with
// mmap zero-copy load"; the format follows the ggml single-file
// magic+version pattern).
//
// Layout (all integers and doubles fixed-width, writer-native byte order,
// every section and record 8-byte aligned):
//
//   header (80 B)    magic "dlapcbin", endianness tag, format version,
//                    total file size, section table (offset + count of
//                    the model index, sample index, string table)
//   model payloads   per model: piece count, domain bounds, then per
//                    piece: bounds, fit stats, degree, normalization,
//                    and the coefficient table (kStatCount x ncoef
//                    doubles, row-major) -- the zero-copy target
//   sample payloads  per engine key: fixed-width measurement records in
//                    journal order (point coords + SampleStats)
//   model index      fixed-width entries (string refs for the key
//                    components, locality, dims, payload offset/size),
//                    sorted by ModelKeyLess
//   sample index     fixed-width entries (key string ref, dims, payload
//                    offset, record count), sorted by key string
//   string table     all key/strategy strings, referenced as (offset,
//                    length) pairs
//
// Reading: ContainerReader validates the header and every index entry
// against the actual file size up front (a truncated or corrupt file
// yields container_error, never UB -- all access is bounds-checked
// through storage::Cursor), then serves ModelViews whose coefficient
// tables alias the mapping directly. A foreign-endian or misaligned file
// degrades gracefully to a privately converted copy; the loaded models
// are value-identical either way.

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "modeler/modeler.hpp"
#include "storage/cursor.hpp"
#include "storage/mmap_file.hpp"

namespace dlap::storage {

inline constexpr char kContainerMagic[8] = {'d', 'l', 'a', 'p',
                                            'c', 'b', 'i', 'n'};
inline constexpr std::uint32_t kContainerVersion = 1;
inline constexpr std::uint32_t kEndianTag = 0x01020304;
/// Default container file name inside a repository directory; a file
/// with this name is attached automatically when the repository opens.
inline constexpr const char* kContainerFilename = "repository.dlapc";

/// One measurement record of a sample section (journal order preserved).
struct SamplePoint {
  std::vector<index_t> point;
  SampleStats stats;
};

struct ContainerWriteOptions {
  /// Writes every multi-byte field byte-swapped, with the matching
  /// endianness tag: produces a valid foreign-endian container. Test
  /// hook for the reader's converted-copy fallback path.
  bool byte_swap = false;
};

/// Assembles a container in memory and writes it atomically. Models are
/// indexed sorted by ModelKeyLess and sample sections sorted by engine
/// key, so packing the same inputs always produces the same bytes.
class ContainerWriter {
 public:
  explicit ContainerWriter(ContainerWriteOptions options = {})
      : options_(options) {}

  /// Adds a model (last add of a key wins).
  void add_model(const RoutineModel& model);

  /// Adds an engine key's measurement records, preserving their order
  /// (last add of a key wins). All records must share one dimensionality.
  void add_samples(const std::string& engine_key,
                   std::vector<SamplePoint> entries);

  [[nodiscard]] std::size_t model_count() const noexcept {
    return models_.size();
  }
  [[nodiscard]] std::size_t sample_key_count() const noexcept {
    return samples_.size();
  }

  /// The complete container image.
  [[nodiscard]] std::vector<std::byte> serialize() const;

  /// Writes the image to `path` atomically (writer-unique temp file +
  /// rename), so a concurrently opening reader never sees a partial
  /// container. Throws container_error on I/O failure.
  void write(const std::filesystem::path& path) const;

 private:
  ContainerWriteOptions options_;
  std::map<ModelKey, RoutineModel> models_;
  std::map<std::string, std::vector<SamplePoint>> samples_;
};

class ContainerReader;

/// Non-owning view of one model record inside an open container. Cheap
/// to copy; valid while the reader lives (the models it loads stay valid
/// independently -- they pin the file mapping).
class ModelView {
 public:
  [[nodiscard]] const ModelKey& key() const;
  [[nodiscard]] index_t unique_samples() const;
  [[nodiscard]] double average_error() const;
  [[nodiscard]] std::string_view strategy() const;

  /// True when load() will alias the mapping (native byte order and
  /// 8-byte-aligned tables) instead of materializing a private copy.
  [[nodiscard]] bool zero_copy() const;

  /// Materializes the RoutineModel. Coefficient tables are borrowed
  /// straight from the mapped file when zero_copy() holds (no per-load
  /// allocation or parsing beyond the piece headers) and deep-copied
  /// otherwise; the returned pointer pins the mapping either way, so
  /// the model outlives the reader safely. Throws container_error on a
  /// corrupt record.
  [[nodiscard]] std::shared_ptr<const RoutineModel> load() const;

 private:
  friend class ContainerReader;
  ModelView(const ContainerReader* reader, std::size_t index)
      : reader_(reader), index_(index) {}

  const ContainerReader* reader_;
  std::size_t index_;
};

/// An open container: header validated, indexes decoded, payload access
/// bounds-checked. Immutable after open, so one reader may be shared
/// freely across threads (the model repository and the sample store
/// attach the same instance).
class ContainerReader {
 public:
  /// Opens (mmap, falling back to a buffered read) and validates.
  /// Throws container_error on any malformed input.
  [[nodiscard]] static std::shared_ptr<const ContainerReader> open(
      const std::filesystem::path& path);

  /// Validates an already-materialized image (tests, tools).
  [[nodiscard]] static std::shared_ptr<const ContainerReader> from_file(
      std::shared_ptr<const MappedFile> file);

  ContainerReader(const ContainerReader&) = delete;
  ContainerReader& operator=(const ContainerReader&) = delete;

  [[nodiscard]] std::uint32_t version() const noexcept { return version_; }
  /// False when the file was written on a foreign-endian machine (loads
  /// then go through the converted-copy path).
  [[nodiscard]] bool native_endian() const noexcept { return !swap_; }
  [[nodiscard]] bool mapped() const noexcept { return file_->is_mapped(); }
  [[nodiscard]] std::size_t file_size() const noexcept {
    return file_->size();
  }

  // ------------------------------------------------------------- models
  [[nodiscard]] std::size_t model_count() const noexcept {
    return models_.size();
  }
  [[nodiscard]] ModelView model(std::size_t i) const;
  /// Index lookup by key (the index is decoded at open; lookups are one
  /// map probe, no file access).
  [[nodiscard]] std::optional<std::size_t> find_model(
      const ModelKeyRef& key) const;
  /// All model keys, in index (ModelKeyLess) order.
  [[nodiscard]] std::vector<ModelKey> model_keys() const;

  // ------------------------------------------------------------ samples
  [[nodiscard]] std::size_t sample_key_count() const noexcept {
    return samples_.size();
  }
  [[nodiscard]] std::string_view sample_key(std::size_t i) const;
  [[nodiscard]] std::optional<std::size_t> find_samples(
      std::string_view engine_key) const;
  [[nodiscard]] std::size_t sample_entry_count(std::size_t i) const;
  /// Streams section `i`'s records in stored (journal) order.
  void for_each_sample(
      std::size_t i,
      const std::function<void(const std::vector<index_t>&,
                               const SampleStats&)>& fn) const;
  /// Total measurement records across all sections (diagnostics).
  [[nodiscard]] std::size_t total_sample_entries() const;

 private:
  friend class ModelView;

  struct ModelEntry {
    ModelKey key;
    std::string strategy;
    int dims = 0;
    std::uint64_t payload_offset = 0;
    std::uint64_t payload_size = 0;
    index_t unique_samples = 0;
    double average_error = 0.0;
  };
  struct SampleSection {
    std::string key;
    int dims = 0;
    std::uint64_t payload_offset = 0;
    std::uint64_t entry_count = 0;
  };

  ContainerReader() = default;

  void parse(std::shared_ptr<const MappedFile> file);
  [[nodiscard]] std::string_view str(std::uint32_t off,
                                     std::uint32_t len) const;
  [[nodiscard]] std::shared_ptr<const RoutineModel> load_entry(
      const ModelEntry& entry) const;
  [[nodiscard]] bool entry_zero_copy(const ModelEntry& entry) const;

  std::shared_ptr<const MappedFile> file_;
  bool swap_ = false;
  std::uint32_t version_ = 0;
  const char* strings_ = nullptr;
  std::size_t strings_size_ = 0;
  std::vector<ModelEntry> models_;
  std::map<ModelKey, std::size_t, ModelKeyLess> model_index_;
  std::vector<SampleSection> samples_;
  std::map<std::string, std::size_t, std::less<>> sample_index_;
};

}  // namespace dlap::storage
