#pragma once
// Bounds-checked reading primitives for the binary model container.
//
// Every access to a mapped (or buffered) container file goes through a
// Cursor: reads are memcpy-based (no alignment assumptions, no strict-
// aliasing UB on hostile files) and range-checked against the region the
// cursor was created over, so a truncated or corrupt file yields a typed
// container_error instead of undefined behavior. The cursor also owns
// byte-order conversion: created with swap=true (a foreign-endian file),
// every multi-byte read is byte-reversed, which is what lets the reader
// fall back to a private converted copy instead of rejecting such files.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/types.hpp"

namespace dlap {

/// Malformed, truncated, or otherwise unreadable binary container.
/// Derives from parse_error so callers that already tolerate corrupt
/// text model files (ModelService::find) handle corrupt containers the
/// same way, while tests can still match the container type exactly.
class container_error : public parse_error {
 public:
  using parse_error::parse_error;
};

namespace storage {

[[nodiscard]] constexpr std::uint64_t byteswap64(std::uint64_t v) noexcept {
  v = ((v & 0x00ff00ff00ff00ffULL) << 8) | ((v >> 8) & 0x00ff00ff00ff00ffULL);
  v = ((v & 0x0000ffff0000ffffULL) << 16) |
      ((v >> 16) & 0x0000ffff0000ffffULL);
  return (v << 32) | (v >> 32);
}

[[nodiscard]] constexpr std::uint32_t byteswap32(std::uint32_t v) noexcept {
  v = ((v & 0x00ff00ffU) << 8) | ((v >> 8) & 0x00ff00ffU);
  return (v << 16) | (v >> 16);
}

/// Sequential bounds-checked reader over one byte region.
class Cursor {
 public:
  Cursor(const std::byte* base, std::size_t size, bool swap,
         std::string what = "container")
      : base_(base), size_(size), swap_(swap), what_(std::move(what)) {}

  [[nodiscard]] std::size_t offset() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return size_ - pos_;
  }

  void seek(std::uint64_t off) {
    if (off > size_) {
      throw container_error(what_ + ": offset " + std::to_string(off) +
                            " past end of region (" + std::to_string(size_) +
                            " bytes)");
    }
    pos_ = static_cast<std::size_t>(off);
  }

  /// Checks that `n` more bytes exist and returns a pointer to them,
  /// advancing the cursor.
  [[nodiscard]] const std::byte* bytes(std::size_t n) {
    if (n > size_ - pos_) {
      throw container_error(what_ + ": truncated (need " + std::to_string(n) +
                            " bytes at offset " + std::to_string(pos_) +
                            ", region holds " + std::to_string(size_) + ")");
    }
    const std::byte* p = base_ + pos_;
    pos_ += n;
    return p;
  }

  [[nodiscard]] std::uint32_t u32() {
    std::uint32_t v;
    std::memcpy(&v, bytes(sizeof v), sizeof v);
    return swap_ ? byteswap32(v) : v;
  }

  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t v;
    std::memcpy(&v, bytes(sizeof v), sizeof v);
    return swap_ ? byteswap64(v) : v;
  }

  [[nodiscard]] std::int64_t i64() {
    return static_cast<std::int64_t>(u64());
  }

  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

 private:
  const std::byte* base_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool swap_;
  std::string what_;
};

}  // namespace storage
}  // namespace dlap
