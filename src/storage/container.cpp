#include "storage/container.hpp"

#include <cstring>
#include <fstream>
#include <thread>

#include "modeler/polynomial.hpp"

namespace dlap::storage {

namespace {

constexpr std::size_t kHeaderSize = 80;
constexpr std::size_t kModelEntrySize = 72;
constexpr std::size_t kSampleEntrySize = 32;
constexpr int kMaxDims = 8;
constexpr std::uint32_t kMaxDegree = 16;

// ------------------------------------------------------------- emitters

void put_u32(std::vector<std::byte>& out, std::uint32_t v, bool swap) {
  if (swap) v = byteswap32(v);
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v, bool swap) {
  if (swap) v = byteswap64(v);
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}

void put_i64(std::vector<std::byte>& out, std::int64_t v, bool swap) {
  put_u64(out, static_cast<std::uint64_t>(v), swap);
}

void put_f64(std::vector<std::byte>& out, double v, bool swap) {
  put_u64(out, std::bit_cast<std::uint64_t>(v), swap);
}

/// Deduplicating string-table builder; refs are (offset, length) pairs.
class StringTable {
 public:
  std::pair<std::uint32_t, std::uint32_t> ref(std::string_view s) {
    const auto it = offsets_.find(s);
    if (it != offsets_.end()) {
      return {it->second, static_cast<std::uint32_t>(s.size())};
    }
    DLAP_REQUIRE(blob_.size() + s.size() <= UINT32_MAX,
                 "container string table exceeds 4 GiB");
    const auto off = static_cast<std::uint32_t>(blob_.size());
    blob_.append(s);
    offsets_.emplace(std::string(s), off);
    return {off, static_cast<std::uint32_t>(s.size())};
  }

  [[nodiscard]] const std::string& blob() const noexcept { return blob_; }

 private:
  std::string blob_;
  std::map<std::string, std::uint32_t, std::less<>> offsets_;
};

}  // namespace

// ------------------------------------------------------------------ writer

void ContainerWriter::add_model(const RoutineModel& model) {
  const PiecewiseModel& pm = model.model;
  DLAP_REQUIRE(!pm.empty(), "cannot pack a model with no pieces");
  DLAP_REQUIRE(pm.dims() >= 1 && pm.dims() <= kMaxDims,
               "cannot pack a model with implausible dims");
  for (const RegionModel& p : pm.pieces()) {
    DLAP_REQUIRE(p.poly.dims() == pm.dims() &&
                     p.region.dims() == pm.dims() &&
                     p.poly.normalization().shift.size() ==
                         static_cast<std::size_t>(pm.dims()) &&
                     p.poly.normalization().scale.size() ==
                         static_cast<std::size_t>(pm.dims()),
                 "piece dimensionality disagrees with the model domain");
    DLAP_REQUIRE(p.poly.degree() >= 0 &&
                     p.poly.degree() <= static_cast<int>(kMaxDegree),
                 "cannot pack a polynomial of implausible degree");
  }
  models_[model.key] = model;
}

void ContainerWriter::add_samples(const std::string& engine_key,
                                  std::vector<SamplePoint> entries) {
  if (!entries.empty()) {
    const std::size_t dims = entries.front().point.size();
    DLAP_REQUIRE(dims >= 1 && dims <= static_cast<std::size_t>(kMaxDims),
                 "cannot pack sample points of implausible dims");
    for (const SamplePoint& e : entries) {
      DLAP_REQUIRE(e.point.size() == dims,
                   "sample points of one key must share a dimensionality");
    }
  }
  samples_[engine_key] = std::move(entries);
}

std::vector<std::byte> ContainerWriter::serialize() const {
  const bool swap = options_.byte_swap;
  StringTable strings;

  // Model payloads, recording each model's (offset, size) relative to
  // the payload base (the header end, so everything stays 8-aligned).
  std::vector<std::byte> payload;
  struct ModelLoc {
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
  };
  std::vector<ModelLoc> model_locs;
  model_locs.reserve(models_.size());
  for (const auto& [key, model] : models_) {
    const PiecewiseModel& pm = model.model;
    const int dims = pm.dims();
    ModelLoc loc;
    loc.offset = payload.size();
    put_u64(payload, pm.pieces().size(), swap);
    for (int d = 0; d < dims; ++d) {
      put_i64(payload, pm.domain().lo(d), swap);
      put_i64(payload, pm.domain().hi(d), swap);
    }
    for (const RegionModel& p : pm.pieces()) {
      for (int d = 0; d < dims; ++d) {
        put_i64(payload, p.region.lo(d), swap);
        put_i64(payload, p.region.hi(d), swap);
      }
      put_f64(payload, p.fit_error, swap);
      put_f64(payload, p.mean_error, swap);
      put_i64(payload, p.samples_used, swap);
      put_u32(payload, static_cast<std::uint32_t>(p.poly.degree()), swap);
      const std::size_t ncoef = p.poly.coefficients(Stat::Min).size();
      put_u32(payload, static_cast<std::uint32_t>(ncoef), swap);
      const Normalization& norm = p.poly.normalization();
      for (int d = 0; d < dims; ++d) put_f64(payload, norm.shift[d], swap);
      for (int d = 0; d < dims; ++d) put_f64(payload, norm.scale[d], swap);
      for (int s = 0; s < kStatCount; ++s) {
        for (const double c : p.poly.coefficients(static_cast<Stat>(s))) {
          put_f64(payload, c, swap);
        }
      }
    }
    loc.size = payload.size() - loc.offset;
    model_locs.push_back(loc);
  }

  // Sample payloads (journal order preserved within each key).
  std::vector<std::uint64_t> sample_offsets;
  sample_offsets.reserve(samples_.size());
  for (const auto& [key, entries] : samples_) {
    sample_offsets.push_back(payload.size());
    for (const SamplePoint& e : entries) {
      for (const index_t c : e.point) put_i64(payload, c, swap);
      put_f64(payload, e.stats.min, swap);
      put_f64(payload, e.stats.median, swap);
      put_f64(payload, e.stats.mean, swap);
      put_f64(payload, e.stats.max, swap);
      put_f64(payload, e.stats.stddev, swap);
      put_i64(payload, e.stats.count, swap);
    }
  }

  const std::uint64_t payload_base = kHeaderSize;
  const std::uint64_t model_index_offset = payload_base + payload.size();
  const std::uint64_t sample_index_offset =
      model_index_offset + kModelEntrySize * models_.size();
  const std::uint64_t string_table_offset =
      sample_index_offset + kSampleEntrySize * samples_.size();

  // Indexes (string refs interned as they are emitted).
  std::vector<std::byte> model_index;
  std::size_t mi = 0;
  for (const auto& [key, model] : models_) {
    const auto [r_off, r_len] = strings.ref(key.routine);
    const auto [b_off, b_len] = strings.ref(key.backend);
    const auto [f_off, f_len] = strings.ref(key.flags);
    const auto [s_off, s_len] = strings.ref(model.strategy);
    put_u32(model_index, r_off, swap);
    put_u32(model_index, r_len, swap);
    put_u32(model_index, b_off, swap);
    put_u32(model_index, b_len, swap);
    put_u32(model_index, f_off, swap);
    put_u32(model_index, f_len, swap);
    put_u32(model_index, s_off, swap);
    put_u32(model_index, s_len, swap);
    put_u32(model_index, static_cast<std::uint32_t>(key.locality), swap);
    put_u32(model_index, static_cast<std::uint32_t>(model.model.dims()),
            swap);
    put_u64(model_index, payload_base + model_locs[mi].offset, swap);
    put_u64(model_index, model_locs[mi].size, swap);
    put_i64(model_index, model.unique_samples, swap);
    put_f64(model_index, model.average_error, swap);
    ++mi;
  }

  std::vector<std::byte> sample_index;
  std::size_t si = 0;
  for (const auto& [key, entries] : samples_) {
    const auto [k_off, k_len] = strings.ref(key);
    const std::uint32_t dims =
        entries.empty() ? 1 : static_cast<std::uint32_t>(
                                  entries.front().point.size());
    put_u32(sample_index, k_off, swap);
    put_u32(sample_index, k_len, swap);
    put_u32(sample_index, dims, swap);
    put_u32(sample_index, 0, swap);
    put_u64(sample_index, payload_base + sample_offsets[si], swap);
    put_u64(sample_index, entries.size(), swap);
    ++si;
  }

  const std::uint64_t file_size = string_table_offset + strings.blob().size();

  std::vector<std::byte> out;
  out.reserve(static_cast<std::size_t>(file_size));
  const auto* magic = reinterpret_cast<const std::byte*>(kContainerMagic);
  out.insert(out.end(), magic, magic + sizeof kContainerMagic);
  put_u32(out, kEndianTag, swap);
  put_u32(out, kContainerVersion, swap);
  put_u64(out, file_size, swap);
  put_u64(out, string_table_offset, swap);
  put_u64(out, strings.blob().size(), swap);
  put_u64(out, model_index_offset, swap);
  put_u64(out, models_.size(), swap);
  put_u64(out, sample_index_offset, swap);
  put_u64(out, samples_.size(), swap);
  put_u64(out, 0, swap);  // reserved
  DLAP_ASSERT(out.size() == kHeaderSize);

  out.insert(out.end(), payload.begin(), payload.end());
  out.insert(out.end(), model_index.begin(), model_index.end());
  out.insert(out.end(), sample_index.begin(), sample_index.end());
  const auto* sp = reinterpret_cast<const std::byte*>(strings.blob().data());
  out.insert(out.end(), sp, sp + strings.blob().size());
  DLAP_ASSERT(out.size() == file_size);
  return out;
}

void ContainerWriter::write(const std::filesystem::path& path) const {
  const std::vector<std::byte> image = serialize();
  const auto tid = std::hash<std::thread::id>{}(std::this_thread::get_id());
  const std::filesystem::path tmp =
      path.string() + ".tmp" + std::to_string(tid);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      throw container_error("cannot write container: " + tmp.string());
    }
    out.write(reinterpret_cast<const char*>(image.data()),
              static_cast<std::streamsize>(image.size()));
    if (!out.good()) {
      throw container_error("cannot write container: " + tmp.string());
    }
  }
  std::filesystem::rename(tmp, path);
}

// ------------------------------------------------------------------ reader

std::shared_ptr<const ContainerReader> ContainerReader::open(
    const std::filesystem::path& path) {
  try {
    return from_file(MappedFile::open(path));
  } catch (const container_error& e) {
    throw container_error(path.string() + ": " + e.what());
  }
}

std::shared_ptr<const ContainerReader> ContainerReader::from_file(
    std::shared_ptr<const MappedFile> file) {
  auto reader = std::shared_ptr<ContainerReader>(new ContainerReader());
  reader->parse(std::move(file));
  return reader;
}

void ContainerReader::parse(std::shared_ptr<const MappedFile> file) {
  file_ = std::move(file);
  const std::byte* data = file_->data();
  const std::size_t size = file_->size();

  if (size < kHeaderSize) {
    throw container_error("truncated container header (" +
                          std::to_string(size) + " bytes)");
  }
  if (std::memcmp(data, kContainerMagic, sizeof kContainerMagic) != 0) {
    throw container_error("not a dlapc container (bad magic)");
  }
  std::uint32_t tag;
  std::memcpy(&tag, data + sizeof kContainerMagic, sizeof tag);
  if (tag == kEndianTag) {
    swap_ = false;
  } else if (byteswap32(tag) == kEndianTag) {
    swap_ = true;
  } else {
    throw container_error("bad endianness tag");
  }

  Cursor cur(data, size, swap_, "container header");
  cur.seek(sizeof kContainerMagic + sizeof tag);
  version_ = cur.u32();
  if (version_ != kContainerVersion) {
    throw container_error("unsupported container version " +
                          std::to_string(version_) + " (expected " +
                          std::to_string(kContainerVersion) + ")");
  }
  const std::uint64_t file_size = cur.u64();
  if (file_size != size) {
    throw container_error("container size mismatch: header says " +
                          std::to_string(file_size) + " bytes, file holds " +
                          std::to_string(size) + " (truncated?)");
  }
  const std::uint64_t str_off = cur.u64();
  const std::uint64_t str_size = cur.u64();
  const std::uint64_t model_off = cur.u64();
  const std::uint64_t model_count = cur.u64();
  const std::uint64_t sample_off = cur.u64();
  const std::uint64_t sample_count = cur.u64();

  const auto check_section = [&](std::uint64_t off, std::uint64_t count,
                                 std::uint64_t entry_size, const char* what) {
    if (off > size || count > (size - off) / entry_size) {
      throw container_error(std::string(what) +
                            " index out of bounds (offset " +
                            std::to_string(off) + ", " +
                            std::to_string(count) + " entries)");
    }
  };
  if (str_off > size || str_size > size - str_off) {
    throw container_error("string table out of bounds");
  }
  strings_ = reinterpret_cast<const char*>(data + str_off);
  strings_size_ = static_cast<std::size_t>(str_size);
  check_section(model_off, model_count, kModelEntrySize, "model");
  check_section(sample_off, sample_count, kSampleEntrySize, "sample");

  const auto checked_str = [&](std::uint32_t off,
                               std::uint32_t len) -> std::string_view {
    if (off > strings_size_ || len > strings_size_ - off) {
      throw container_error("string reference past end of string table");
    }
    return {strings_ + off, len};
  };

  Cursor mcur(data, size, swap_, "model index");
  mcur.seek(model_off);
  models_.reserve(static_cast<std::size_t>(model_count));
  for (std::uint64_t i = 0; i < model_count; ++i) {
    ModelEntry e;
    const std::uint32_t r_off = mcur.u32(), r_len = mcur.u32();
    const std::uint32_t b_off = mcur.u32(), b_len = mcur.u32();
    const std::uint32_t f_off = mcur.u32(), f_len = mcur.u32();
    const std::uint32_t s_off = mcur.u32(), s_len = mcur.u32();
    e.key.routine = std::string(checked_str(r_off, r_len));
    e.key.backend = std::string(checked_str(b_off, b_len));
    e.key.flags = std::string(checked_str(f_off, f_len));
    e.strategy = std::string(checked_str(s_off, s_len));
    const std::uint32_t locality = mcur.u32();
    if (locality > 1) {
      throw container_error("model index entry " + std::to_string(i) +
                            ": bad locality " + std::to_string(locality));
    }
    e.key.locality = static_cast<Locality>(locality);
    const std::uint32_t dims = mcur.u32();
    if (dims < 1 || dims > static_cast<std::uint32_t>(kMaxDims)) {
      throw container_error("model index entry " + std::to_string(i) +
                            ": implausible dims " + std::to_string(dims));
    }
    e.dims = static_cast<int>(dims);
    e.payload_offset = mcur.u64();
    e.payload_size = mcur.u64();
    if (e.payload_offset > size || e.payload_size > size - e.payload_offset) {
      throw container_error("model index entry " + std::to_string(i) + " (" +
                            e.key.to_string() +
                            "): payload out of bounds (offset " +
                            std::to_string(e.payload_offset) + ", size " +
                            std::to_string(e.payload_size) + ")");
    }
    e.unique_samples = mcur.i64();
    e.average_error = mcur.f64();
    if (!model_index_.emplace(e.key, models_.size()).second) {
      throw container_error("duplicate model key in container index: " +
                            e.key.to_string());
    }
    models_.push_back(std::move(e));
  }

  Cursor scur(data, size, swap_, "sample index");
  scur.seek(sample_off);
  samples_.reserve(static_cast<std::size_t>(sample_count));
  for (std::uint64_t i = 0; i < sample_count; ++i) {
    SampleSection s;
    const std::uint32_t k_off = scur.u32(), k_len = scur.u32();
    s.key = std::string(checked_str(k_off, k_len));
    const std::uint32_t dims = scur.u32();
    (void)scur.u32();  // reserved
    if (dims < 1 || dims > static_cast<std::uint32_t>(kMaxDims)) {
      throw container_error("sample index entry " + std::to_string(i) +
                            ": implausible dims " + std::to_string(dims));
    }
    s.dims = static_cast<int>(dims);
    s.payload_offset = scur.u64();
    s.entry_count = scur.u64();
    const std::uint64_t entry_size = 8ULL * dims + 48;
    if (s.payload_offset > size ||
        s.entry_count > (size - s.payload_offset) / entry_size) {
      throw container_error("sample index entry " + std::to_string(i) +
                            " (" + s.key + "): payload out of bounds");
    }
    if (!sample_index_.emplace(s.key, samples_.size()).second) {
      throw container_error("duplicate sample key in container index: " +
                            s.key);
    }
    samples_.push_back(std::move(s));
  }
}

std::string_view ContainerReader::str(std::uint32_t off,
                                      std::uint32_t len) const {
  if (off > strings_size_ || len > strings_size_ - off) {
    throw container_error("string reference past end of string table");
  }
  return {strings_ + off, len};
}

ModelView ContainerReader::model(std::size_t i) const {
  DLAP_REQUIRE(i < models_.size(), "model index out of range");
  return ModelView(this, i);
}

std::optional<std::size_t> ContainerReader::find_model(
    const ModelKeyRef& key) const {
  const auto it = model_index_.find(key);
  if (it == model_index_.end()) return std::nullopt;
  return it->second;
}

std::vector<ModelKey> ContainerReader::model_keys() const {
  std::vector<ModelKey> keys;
  keys.reserve(models_.size());
  for (const auto& [key, index] : model_index_) keys.push_back(key);
  return keys;
}

bool ContainerReader::entry_zero_copy(const ModelEntry& entry) const {
  // Every offset inside a well-formed payload is a multiple of 8, so the
  // whole record's tables are aligned iff its base is.
  const auto base = reinterpret_cast<std::uintptr_t>(file_->data()) +
                    static_cast<std::uintptr_t>(entry.payload_offset);
  return !swap_ && base % alignof(double) == 0;
}

std::shared_ptr<const RoutineModel> ContainerReader::load_entry(
    const ModelEntry& entry) const {
  try {
    const std::byte* base = file_->data() + entry.payload_offset;
    Cursor cur(base, static_cast<std::size_t>(entry.payload_size), swap_,
               "model record " + entry.key.to_string());
    const int dims = entry.dims;

    const std::uint64_t piece_count = cur.u64();
    if (piece_count < 1 || piece_count > entry.payload_size / 8) {
      throw container_error("model record " + entry.key.to_string() +
                            ": implausible piece count " +
                            std::to_string(piece_count));
    }
    const auto read_bounds = [&](std::vector<index_t>& lo,
                                 std::vector<index_t>& hi) {
      lo.resize(dims);
      hi.resize(dims);
      for (int d = 0; d < dims; ++d) {
        lo[d] = cur.i64();
        hi[d] = cur.i64();
      }
    };
    std::vector<index_t> lo, hi;
    read_bounds(lo, hi);
    const Region domain(lo, hi);

    std::vector<RegionModel> pieces;
    pieces.reserve(static_cast<std::size_t>(piece_count));
    for (std::uint64_t p = 0; p < piece_count; ++p) {
      RegionModel piece;
      read_bounds(lo, hi);
      piece.region = Region(lo, hi);
      piece.fit_error = cur.f64();
      piece.mean_error = cur.f64();
      piece.samples_used = cur.i64();
      const std::uint32_t degree = cur.u32();
      const std::uint32_t ncoef = cur.u32();
      if (degree > kMaxDegree ||
          ncoef != static_cast<std::uint32_t>(
                       monomial_count(dims, static_cast<int>(degree)))) {
        throw container_error("model record " + entry.key.to_string() +
                              ": coefficient count " + std::to_string(ncoef) +
                              " does not match degree " +
                              std::to_string(degree));
      }
      Normalization norm;
      norm.shift.resize(dims);
      norm.scale.resize(dims);
      for (int d = 0; d < dims; ++d) norm.shift[d] = cur.f64();
      for (int d = 0; d < dims; ++d) norm.scale[d] = cur.f64();

      const std::size_t table_doubles =
          static_cast<std::size_t>(kStatCount) * ncoef;
      const std::byte* table = cur.bytes(table_doubles * sizeof(double));
      const bool aligned =
          reinterpret_cast<std::uintptr_t>(table) % alignof(double) == 0;
      if (!swap_ && aligned) {
        // Zero-copy: the polynomial reads its coefficients straight out
        // of the mapping (pinned by the holder below).
        piece.poly = VecPolynomial(
            dims, static_cast<int>(degree), std::move(norm),
            reinterpret_cast<const double*>(table), VecPolynomial::Borrow{});
      } else {
        // Foreign byte order or misaligned file: private converted copy.
        std::vector<std::vector<double>> coeffs(kStatCount);
        const std::byte* src = table;
        for (int s = 0; s < kStatCount; ++s) {
          coeffs[static_cast<std::size_t>(s)].resize(ncoef);
          for (std::uint32_t m = 0; m < ncoef; ++m) {
            std::uint64_t bits;
            std::memcpy(&bits, src, sizeof bits);
            src += sizeof bits;
            if (swap_) bits = byteswap64(bits);
            coeffs[static_cast<std::size_t>(s)][m] =
                std::bit_cast<double>(bits);
          }
        }
        piece.poly = VecPolynomial(dims, static_cast<int>(degree),
                                   std::move(norm), std::move(coeffs));
      }
      pieces.push_back(std::move(piece));
    }
    if (cur.remaining() != 0) {
      throw container_error("model record " + entry.key.to_string() + ": " +
                            std::to_string(cur.remaining()) +
                            " trailing bytes");
    }

    // The holder pins the mapping, so borrowed coefficient tables stay
    // valid for as long as anyone holds the returned model -- even after
    // the reader itself is gone.
    struct Holder {
      std::shared_ptr<const MappedFile> pin;
      RoutineModel model;
    };
    auto holder = std::make_shared<Holder>();
    holder->pin = file_;
    holder->model.key = entry.key;
    holder->model.strategy = entry.strategy;
    holder->model.unique_samples = entry.unique_samples;
    holder->model.average_error = entry.average_error;
    holder->model.source = ModelSource::Container;
    holder->model.model = PiecewiseModel(domain, std::move(pieces));
    return std::shared_ptr<const RoutineModel>(holder, &holder->model);
  } catch (const container_error&) {
    throw;
  } catch (const std::exception& e) {
    // Region/polynomial constructors reject inconsistent data with
    // invalid_argument_error; surface it as the container's typed error.
    throw container_error("model record " + entry.key.to_string() +
                          ": corrupt payload: " + e.what());
  }
}

std::string_view ContainerReader::sample_key(std::size_t i) const {
  DLAP_REQUIRE(i < samples_.size(), "sample index out of range");
  return samples_[i].key;
}

std::optional<std::size_t> ContainerReader::find_samples(
    std::string_view engine_key) const {
  const auto it = sample_index_.find(engine_key);
  if (it == sample_index_.end()) return std::nullopt;
  return it->second;
}

std::size_t ContainerReader::sample_entry_count(std::size_t i) const {
  DLAP_REQUIRE(i < samples_.size(), "sample index out of range");
  return static_cast<std::size_t>(samples_[i].entry_count);
}

void ContainerReader::for_each_sample(
    std::size_t i,
    const std::function<void(const std::vector<index_t>&,
                             const SampleStats&)>& fn) const {
  DLAP_REQUIRE(i < samples_.size(), "sample index out of range");
  const SampleSection& s = samples_[i];
  const std::uint64_t entry_size = 8ULL * s.dims + 48;
  Cursor cur(file_->data() + s.payload_offset,
             static_cast<std::size_t>(entry_size * s.entry_count), swap_,
             "sample section " + s.key);
  std::vector<index_t> point(static_cast<std::size_t>(s.dims));
  for (std::uint64_t e = 0; e < s.entry_count; ++e) {
    for (index_t& c : point) c = cur.i64();
    SampleStats stats;
    stats.min = cur.f64();
    stats.median = cur.f64();
    stats.mean = cur.f64();
    stats.max = cur.f64();
    stats.stddev = cur.f64();
    stats.count = cur.i64();
    fn(point, stats);
  }
}

std::size_t ContainerReader::total_sample_entries() const {
  std::size_t total = 0;
  for (const SampleSection& s : samples_) {
    total += static_cast<std::size_t>(s.entry_count);
  }
  return total;
}

// --------------------------------------------------------------- ModelView

const ModelKey& ModelView::key() const {
  return reader_->models_[index_].key;
}

index_t ModelView::unique_samples() const {
  return reader_->models_[index_].unique_samples;
}

double ModelView::average_error() const {
  return reader_->models_[index_].average_error;
}

std::string_view ModelView::strategy() const {
  return reader_->models_[index_].strategy;
}

bool ModelView::zero_copy() const {
  return reader_->entry_zero_copy(reader_->models_[index_]);
}

std::shared_ptr<const RoutineModel> ModelView::load() const {
  return reader_->load_entry(reader_->models_[index_]);
}

}  // namespace dlap::storage
