#include "storage/pack.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "modeler/repository.hpp"
#include "sampler/sample_store.hpp"

namespace dlap::storage {

namespace {

std::string read_text_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw parse_error("cannot open: " + path.string());
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Strict journal parse for packing: any damage (bad magic, malformed
/// line, unterminated tail) throws parse_error naming path and line --
/// packing must not silently drop measurements the way lazy replay
/// recovery is allowed to.
std::vector<SamplePoint> parse_journal_strict(
    const std::filesystem::path& path, const std::string& text) {
  std::vector<SamplePoint> entries;
  std::size_t pos = 0;
  std::size_t lineno = 0;
  const auto fail = [&](const std::string& what) {
    throw parse_error(path.string() + ":" + std::to_string(lineno) + ": " +
                      what);
  };
  const auto next_line = [&]() -> std::optional<std::string> {
    if (pos >= text.size()) return std::nullopt;
    ++lineno;
    const auto nl = text.find('\n', pos);
    if (nl == std::string::npos) fail("unterminated final line");
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
  };

  const std::optional<std::string> magic = next_line();
  if (!magic.has_value() || *magic != SampleStore::journal_magic()) {
    lineno = 1;
    fail("bad magic (not a dlaperf sample journal)");
  }
  std::size_t dims = 0;
  while (const std::optional<std::string> line = next_line()) {
    SamplePoint e;
    if (!SampleStore::parse_journal_line(*line, &e.point, &e.stats)) {
      fail("malformed sample line");
    }
    if (dims == 0) {
      dims = e.point.size();
    } else if (e.point.size() != dims) {
      fail("inconsistent point dimensionality");
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

void write_text_file(const std::filesystem::path& path,
                     const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    throw parse_error("cannot write: " + path.string());
  }
  out << text;
  if (!out.good()) {
    throw parse_error("cannot write: " + path.string());
  }
}

struct RepositoryScan {
  std::vector<std::filesystem::path> model_files;
  std::vector<std::filesystem::path> journal_files;
};

RepositoryScan scan_repository(const std::filesystem::path& repo_dir) {
  if (!std::filesystem::is_directory(repo_dir)) {
    throw parse_error("not a repository directory: " + repo_dir.string());
  }
  RepositoryScan scan;
  const auto collect = [&](const std::filesystem::path& dir) {
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      if (entry.path().extension() == ".model") {
        scan.model_files.push_back(entry.path());
      } else if (entry.path().extension() == ".samples") {
        scan.journal_files.push_back(entry.path());
      }
    }
  };
  collect(repo_dir);
  // The engine's default layout keeps journals in a "samples/"
  // subdirectory beside the model files; fold those too.
  const std::filesystem::path sample_dir = repo_dir / "samples";
  if (std::filesystem::is_directory(sample_dir)) collect(sample_dir);
  // Deterministic processing order regardless of directory iteration.
  std::sort(scan.model_files.begin(), scan.model_files.end());
  std::sort(scan.journal_files.begin(), scan.journal_files.end());
  return scan;
}

void add_text_files(const RepositoryScan& scan, ContainerWriter& writer,
                    PackStats& stats) {
  for (const std::filesystem::path& path : scan.model_files) {
    writer.add_model(
        ModelRepository::deserialize(read_text_file(path), path.string()));
    ++stats.models;
  }
  for (const std::filesystem::path& path : scan.journal_files) {
    const std::string key = SampleStore::key_from_journal_filename(
        path.filename().string());
    std::vector<SamplePoint> entries =
        parse_journal_strict(path, read_text_file(path));
    stats.sample_entries += entries.size();
    ++stats.sample_keys;
    writer.add_samples(key, std::move(entries));
  }
}

}  // namespace

PackStats pack_repository(const std::filesystem::path& repo_dir,
                          const std::filesystem::path& out_file,
                          ContainerWriteOptions options) {
  const RepositoryScan scan = scan_repository(repo_dir);
  ContainerWriter writer(options);
  PackStats stats;
  add_text_files(scan, writer, stats);
  writer.write(out_file);
  stats.bytes = static_cast<std::size_t>(std::filesystem::file_size(out_file));
  return stats;
}

PackStats unpack_container(const std::filesystem::path& container_file,
                           const std::filesystem::path& out_dir) {
  const std::shared_ptr<const ContainerReader> reader =
      ContainerReader::open(container_file);
  std::filesystem::create_directories(out_dir);
  PackStats stats;
  stats.bytes = reader->file_size();

  for (std::size_t i = 0; i < reader->model_count(); ++i) {
    const std::shared_ptr<const RoutineModel> model =
        reader->model(i).load();
    write_text_file(out_dir / ModelRepository::filename(model->key),
                    ModelRepository::serialize(*model));
    ++stats.models;
  }

  // Journals land in the "samples/" subdirectory -- the engine's default
  // layout, and the inverse of where pack_repository reads them from.
  const std::filesystem::path sample_dir = out_dir / "samples";
  if (reader->sample_key_count() > 0) {
    std::filesystem::create_directories(sample_dir);
  }
  for (std::size_t i = 0; i < reader->sample_key_count(); ++i) {
    std::ostringstream os;
    os << SampleStore::journal_magic() << '\n';
    reader->for_each_sample(
        i, [&](const std::vector<index_t>& point, const SampleStats& s) {
          os << SampleStore::format_journal_line(point, s);
          ++stats.sample_entries;
        });
    write_text_file(
        sample_dir / SampleStore::journal_filename(reader->sample_key(i)),
        os.str());
    ++stats.sample_keys;
  }
  return stats;
}

PackStats compact_repository(const std::filesystem::path& repo_dir,
                             ContainerWriteOptions options) {
  const RepositoryScan scan = scan_repository(repo_dir);
  const std::filesystem::path container_path =
      repo_dir / kContainerFilename;

  ContainerWriter writer(options);

  // Start from the existing container, if any: its models first (text
  // files added below override them -- they are newer), and its sample
  // sections into the merge buffer.
  std::map<std::string, std::vector<SamplePoint>> merged;
  if (std::filesystem::exists(container_path)) {
    const std::shared_ptr<const ContainerReader> old =
        ContainerReader::open(container_path);
    for (std::size_t i = 0; i < old->model_count(); ++i) {
      writer.add_model(*old->model(i).load());
    }
    for (std::size_t i = 0; i < old->sample_key_count(); ++i) {
      std::vector<SamplePoint>& entries =
          merged[std::string(old->sample_key(i))];
      old->for_each_sample(
          i, [&](const std::vector<index_t>& point, const SampleStats& s) {
            entries.push_back(SamplePoint{point, s});
          });
    }
  }

  PackStats stats;
  for (const std::filesystem::path& path : scan.model_files) {
    writer.add_model(
        ModelRepository::deserialize(read_text_file(path), path.string()));
  }
  // Journal records merge over the packed section: first-seen order is
  // kept, journal statistics win on points both layers measured.
  for (const std::filesystem::path& path : scan.journal_files) {
    const std::string key = SampleStore::key_from_journal_filename(
        path.filename().string());
    std::vector<SamplePoint>& entries = merged[key];
    std::map<std::vector<index_t>, std::size_t> by_point;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      by_point.emplace(entries[i].point, i);
    }
    for (SamplePoint& e : parse_journal_strict(path, read_text_file(path))) {
      const auto [it, inserted] = by_point.emplace(e.point, entries.size());
      if (inserted) {
        entries.push_back(std::move(e));
      } else {
        entries[it->second].stats = e.stats;
      }
    }
  }
  for (auto& [key, entries] : merged) {
    stats.sample_entries += entries.size();
    writer.add_samples(key, std::move(entries));
  }
  stats.models = writer.model_count();
  stats.sample_keys = writer.sample_key_count();

  // Atomic publication, THEN deletion of the folded text files: a crash
  // in between leaves both layers present, which reads correctly (text
  // shadows the container) and the next compaction converges.
  writer.write(container_path);
  stats.bytes =
      static_cast<std::size_t>(std::filesystem::file_size(container_path));
  for (const std::filesystem::path& path : scan.model_files) {
    std::filesystem::remove(path);
  }
  for (const std::filesystem::path& path : scan.journal_files) {
    std::filesystem::remove(path);
  }
  return stats;
}

void inspect_container(const std::filesystem::path& container_file,
                       std::ostream& os) {
  const std::shared_ptr<const ContainerReader> reader =
      ContainerReader::open(container_file);
  os << container_file.string() << ":\n";
  os << "  format version " << reader->version() << ", "
     << (reader->native_endian() ? "native" : "foreign") << " byte order, "
     << reader->file_size() << " bytes, "
     << (reader->mapped() ? "mmap" : "buffered") << " access\n";
  os << "  models: " << reader->model_count() << '\n';
  for (std::size_t i = 0; i < reader->model_count(); ++i) {
    const ModelView view = reader->model(i);
    os << "    " << view.key().to_string() << "  strategy="
       << (view.strategy().empty() ? "-" : view.strategy())
       << " unique_samples=" << view.unique_samples()
       << " average_error=" << view.average_error()
       << (view.zero_copy() ? "" : " (copy-on-load)") << '\n';
  }
  os << "  sample sections: " << reader->sample_key_count() << " ("
     << reader->total_sample_entries() << " measurements)\n";
  for (std::size_t i = 0; i < reader->sample_key_count(); ++i) {
    os << "    " << reader->sample_key(i) << "  "
       << reader->sample_entry_count(i) << " measurements\n";
  }
}

}  // namespace dlap::storage
