#pragma once
// Conversions between the text repository layout (one .model / .samples
// file per key) and the .dlapc binary container, plus the compaction
// lifecycle: fold every text file into the repository's container and
// delete the folded files, so a long-lived repository converges to one
// mmap-servable file regardless of how many generations produced it.
//
// pack -> unpack round-trips byte-identically: both text formats print
// doubles at 17 significant digits (exact double round-trip), the
// container preserves journal record order, and unpacking re-serializes
// through the same formatting helpers the engine writes with.

#include <cstddef>
#include <filesystem>
#include <ostream>

#include "storage/container.hpp"

namespace dlap::storage {

/// What a pack/unpack/compact touched (diagnostics, CLI reporting).
struct PackStats {
  std::size_t models = 0;          ///< model records converted
  std::size_t sample_keys = 0;     ///< sample sections converted
  std::size_t sample_entries = 0;  ///< measurement records converted
  std::size_t bytes = 0;           ///< container image size
};

/// Packs every text model and sample journal under `repo_dir` (and its
/// "samples/" subdirectory, the engine's default journal location) into
/// a container at `out_file` (atomically). Throws parse_error (with the
/// offending file path and line) on damaged inputs -- nothing is written
/// then. The repository's own container file, if present, is NOT folded
/// in; use compact_repository for that.
PackStats pack_repository(const std::filesystem::path& repo_dir,
                          const std::filesystem::path& out_file,
                          ContainerWriteOptions options = {});

/// Unpacks a container into text files under `out_dir` (created if
/// needed): one .model file per model, one .samples journal per sample
/// section (under "out_dir/samples/", the engine's default layout),
/// named exactly as the engine names them.
PackStats unpack_container(const std::filesystem::path& container_file,
                           const std::filesystem::path& out_dir);

/// Folds `repo_dir`'s text models and journals INTO its container
/// (repository.dlapc, merged with the existing one if present -- text
/// entries win, and journal records are merged over the packed section
/// with journal stats winning on overlapping points), writes it
/// atomically, then deletes the folded text files. Returns what the new
/// container holds. A repository that is all container afterwards opens
/// with O(1) parse work.
PackStats compact_repository(const std::filesystem::path& repo_dir,
                             ContainerWriteOptions options = {});

/// Human-readable summary of a container (header fields, per-model and
/// per-section listings) to `os`.
void inspect_container(const std::filesystem::path& container_file,
                       std::ostream& os);

}  // namespace dlap::storage
