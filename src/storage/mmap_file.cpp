#include "storage/mmap_file.hpp"

#include <fstream>
#include <sstream>

#include "storage/cursor.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define DLAP_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace dlap::storage {

namespace {

std::vector<std::byte> read_whole_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw container_error("cannot open container: " + path.string());
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) {
    throw container_error("cannot read container: " + path.string());
  }
  const std::string s = buf.str();
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return std::vector<std::byte>(p, p + s.size());
}

}  // namespace

std::shared_ptr<const MappedFile> MappedFile::open(
    const std::filesystem::path& path) {
  auto file = std::shared_ptr<MappedFile>(new MappedFile());
#if DLAP_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st {};
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      const auto size = static_cast<std::size_t>(st.st_size);
      if (size == 0) {
        // mmap of length 0 is invalid; an empty file is a valid (if
        // always-rejected-later) input, represented by an empty buffer.
        ::close(fd);
        file->data_ = file->buffer_.data();
        return file;
      }
      void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (base != MAP_FAILED) {
        file->data_ = static_cast<const std::byte*>(base);
        file->size_ = size;
        file->mapped_ = true;
        file->map_base_ = base;
        file->map_length_ = size;
        return file;
      }
    } else {
      ::close(fd);
    }
  }
  // Fall through to the buffered read: the path may still be readable
  // through the stream API (or produce a proper error message).
#endif
  file->buffer_ = read_whole_file(path);
  file->data_ = file->buffer_.data();
  file->size_ = file->buffer_.size();
  return file;
}

std::shared_ptr<const MappedFile> MappedFile::from_buffer(
    std::vector<std::byte> bytes, std::size_t offset) {
  if (offset > bytes.size()) {
    throw container_error("buffer offset past end of buffer");
  }
  auto file = std::shared_ptr<MappedFile>(new MappedFile());
  file->buffer_ = std::move(bytes);
  file->data_ = file->buffer_.data() + offset;
  file->size_ = file->buffer_.size() - offset;
  return file;
}

MappedFile::~MappedFile() {
#if DLAP_HAVE_MMAP
  if (map_base_ != nullptr) ::munmap(map_base_, map_length_);
#endif
}

}  // namespace dlap::storage
