// Built-in operation families: the paper's two worked examples (trinv,
// sylv) plus blocked Cholesky, registered as OperationDescriptors. This is
// the only translation unit that knows the built-in family names; the api
// layer reaches every family through OperationRegistry lookups.
//
// The spec/query convenience factories (OperationSpec::trinv, ...,
// RankQuery::chol_variants) are defined here too, next to the
// registrations they depend on — they are pure sugar over
// OperationSpec::of / RankQuery::all_variants.

#include "algorithms/chol.hpp"
#include "algorithms/sylv.hpp"
#include "algorithms/trinv.hpp"
#include "ops/registry.hpp"
#include "predict/trace.hpp"

namespace dlap {

namespace ops {

void register_builtin_families(OperationRegistry& registry) {
  // Triangular inversion L <- L^{-1} (paper Section IV-A): 4 blocked
  // variants over one size axis.
  OperationDescriptor trinv;
  trinv.name = "trinv";
  trinv.variant_count = kTrinvVariantCount;
  trinv.size_axes = 1;
  trinv.trace = [](const OperationSpec& s) {
    return trace_trinv(s.variant, s.n, s.blocksize);
  };
  trinv.nominal_flops = [](const OperationSpec& s) {
    return trinv_flops(s.n);
  };
  registry.register_family(std::move(trinv));

  // Triangular Sylvester solve L X + X U = C (Section IV-B): 16 block
  // dataflow schedules over two size axes.
  OperationDescriptor sylv;
  sylv.name = "sylv";
  sylv.variant_count = kSylvVariantCount;
  sylv.size_axes = 2;
  sylv.trace = [](const OperationSpec& s) {
    return trace_sylv(s.variant, s.m, s.n, s.blocksize);
  };
  sylv.nominal_flops = [](const OperationSpec& s) {
    return sylv_flops(s.m, s.n);
  };
  registry.register_family(std::move(sylv));

  // Cholesky factorization A = L L^T (algorithms/chol.hpp): 3 classic
  // blocked variants over one size axis.
  OperationDescriptor chol;
  chol.name = "chol";
  chol.variant_count = kCholVariantCount;
  chol.size_axes = 1;
  chol.trace = [](const OperationSpec& s) {
    return trace_chol(s.variant, s.n, s.blocksize);
  };
  chol.nominal_flops = [](const OperationSpec& s) {
    return chol_flops(s.n);
  };
  registry.register_family(std::move(chol));
}

}  // namespace ops

OperationSpec OperationSpec::trinv(int variant, index_t n,
                                   index_t blocksize) {
  return of("trinv", variant, /*m=*/0, n, blocksize);
}

OperationSpec OperationSpec::sylv(int variant, index_t m, index_t n,
                                  index_t blocksize) {
  return of("sylv", variant, m, n, blocksize);
}

OperationSpec OperationSpec::chol(int variant, index_t n,
                                  index_t blocksize) {
  return of("chol", variant, /*m=*/0, n, blocksize);
}

RankQuery RankQuery::trinv_variants(index_t n, index_t blocksize) {
  return all_variants(OperationSpec::trinv(1, n, blocksize));
}

RankQuery RankQuery::sylv_variants(index_t m, index_t n, index_t blocksize) {
  return all_variants(OperationSpec::sylv(1, m, n, blocksize));
}

RankQuery RankQuery::chol_variants(index_t n, index_t blocksize) {
  return all_variants(OperationSpec::chol(1, n, blocksize));
}

}  // namespace dlap
