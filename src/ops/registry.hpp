#pragma once
// OperationRegistry: pluggable operation families.
//
// The paper's pipeline generalizes across operations — trinv and sylv are
// merely its two worked examples. This registry makes that generality
// concrete: every blocked-operation family the engine can reason about
// registers one OperationDescriptor (its name, variant count, size axes,
// call-trace generator, nominal flop count, and domain planner), and the
// api layer (`OperationSpec`, `RankQuery`, spec→job planning, Engine
// validation) performs registry lookups instead of branching over
// hardcoded family names. Adding a workload is a one-file registration
// (docs/ADDING_AN_OPERATION.md walks through the Cholesky family,
// src/ops/families.cpp, end to end).
//
// Layering: src/ops sits between the domain layers (algorithms, predict,
// service) and the api facade. The descriptor signatures reference the
// api's value types (OperationSpec, SystemSpec, PlanningPolicy), whose
// headers depend on nothing in src/ops; the api's *implementations* call
// back into the registry.

#include <functional>
#include <map>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "api/plan.hpp"
#include "api/query.hpp"
#include "predict/trace.hpp"
#include "service/model_service.hpp"

namespace dlap {

/// Plans the model-generation jobs a set of same-family specs needs on
/// `system`: which (routine, flags) pairs to model and over which size
/// domains. The jobs MUST cover every non-degenerate call of every spec's
/// trace, or prediction fails with UncoveredDomain.
using DomainPlanner = std::function<std::vector<ModelJob>(
    const std::vector<OperationSpec>& specs, const SystemSpec& system,
    const PlanningPolicy& policy)>;

/// Everything the engine needs to know about one operation family.
struct OperationDescriptor {
  /// Family name; the `op` field of an OperationSpec ("trinv", "sylv",
  /// "chol", ...). Also the registry key.
  std::string name;
  /// Number of algorithmic variants, numbered 1..variant_count.
  int variant_count = 0;
  /// Problem-size axes: 1 (square problems, `n` alone) or 2 (`m` and `n`).
  int size_axes = 1;
  /// The operation's exact invocation sequence for a validated spec.
  std::function<CallTrace(const OperationSpec&)> trace;
  /// Nominal flop count (the paper's efficiency formulas use this, not
  /// the trace sum).
  std::function<double(const OperationSpec&)> nominal_flops;
  /// Domain planner; leave empty to get the trace-driven default (one job
  /// per distinct (routine, flags) the traces invoke, domains spanning
  /// the union of the calls' size arguments — api/plan.hpp).
  DomainPlanner plan;
};

/// Process-wide, thread-safe family table. The built-in families (trinv,
/// sylv, chol — src/ops/families.cpp) are registered on first use;
/// callers may register additional families at any time.
class OperationRegistry {
 public:
  /// The singleton. First access registers the built-in families.
  [[nodiscard]] static OperationRegistry& instance();

  /// Registers a family. Registration is idempotent by name: a second
  /// descriptor under an existing name is ignored and `false` is
  /// returned, so repeated registration (static initializers, repeated
  /// test setup) is safe. Throws dlap::invalid_argument_error when the
  /// descriptor is malformed (empty name, no variants, missing trace or
  /// flop callbacks, size_axes outside {1, 2}).
  bool register_family(OperationDescriptor descriptor);

  /// nullptr when no family with that name is registered. The returned
  /// descriptor lives as long as the registry (families are never
  /// unregistered).
  [[nodiscard]] const OperationDescriptor* find(std::string_view name) const;

  /// Like find, but throws dlap::lookup_error on unknown names.
  [[nodiscard]] const OperationDescriptor& require(
      std::string_view name) const;

  /// Registered family names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  OperationRegistry();

  mutable std::shared_mutex mutex_;
  // Node-based map: descriptor addresses stay valid across registrations.
  std::map<std::string, OperationDescriptor, std::less<>> families_;
};

/// Jobs covering every kernel the specs' traces invoke on `system`,
/// planned per family through each descriptor's DomainPlanner and merged
/// across families (same-key jobs keep one entry whose domain is the
/// region union). Specs must name registered families (dlap::lookup_error
/// otherwise — Engine validates specs before planning).
[[nodiscard]] std::vector<ModelJob> plan_jobs_for_specs(
    const std::vector<OperationSpec>& specs, const SystemSpec& system,
    const PlanningPolicy& policy);

namespace ops {
/// Registers trinv, sylv and chol (called once by
/// OperationRegistry::instance; exposed for documentation/tests).
void register_builtin_families(OperationRegistry& registry);
}  // namespace ops

}  // namespace dlap
