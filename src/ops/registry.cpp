#include "ops/registry.hpp"

#include <algorithm>
#include <utility>

namespace dlap {

namespace {

// The trace-driven default planner: derive jobs from the union of the
// specs' call traces (api/plan.hpp). Installed for descriptors that leave
// `plan` empty, so every registered family has a real planner.
//
// Re-traces the specs even though the engine holds the query's traces
// already: planners are keyed on specs so custom ones can plan without
// tracing at all, and this path only runs on a model miss, where the
// sampling it triggers outweighs an in-memory re-trace by orders of
// magnitude.
std::vector<ModelJob> trace_driven_plan(
    const std::vector<OperationSpec>& specs, const SystemSpec& system,
    const PlanningPolicy& policy) {
  std::vector<CallTrace> traces;
  traces.reserve(specs.size());
  for (const OperationSpec& spec : specs) traces.push_back(spec.trace());
  std::vector<const CallTrace*> ptrs;
  ptrs.reserve(traces.size());
  for (const CallTrace& t : traces) ptrs.push_back(&t);
  return plan_jobs(ptrs, system, policy);
}

}  // namespace

OperationRegistry::OperationRegistry() { ops::register_builtin_families(*this); }

OperationRegistry& OperationRegistry::instance() {
  static OperationRegistry registry;
  return registry;
}

bool OperationRegistry::register_family(OperationDescriptor descriptor) {
  DLAP_REQUIRE(!descriptor.name.empty(),
               "OperationRegistry: descriptor needs a name");
  DLAP_REQUIRE(descriptor.variant_count >= 1,
               "OperationRegistry: '" + descriptor.name +
                   "' needs at least one variant");
  DLAP_REQUIRE(descriptor.size_axes == 1 || descriptor.size_axes == 2,
               "OperationRegistry: '" + descriptor.name +
                   "' size_axes must be 1 or 2");
  DLAP_REQUIRE(descriptor.trace != nullptr,
               "OperationRegistry: '" + descriptor.name +
                   "' needs a trace generator");
  DLAP_REQUIRE(descriptor.nominal_flops != nullptr,
               "OperationRegistry: '" + descriptor.name +
                   "' needs a flop count");
  if (!descriptor.plan) descriptor.plan = trace_driven_plan;

  std::unique_lock<std::shared_mutex> lock(mutex_);
  return families_.emplace(descriptor.name, std::move(descriptor)).second;
}

const OperationDescriptor* OperationRegistry::find(
    std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = families_.find(name);
  return it == families_.end() ? nullptr : &it->second;
}

const OperationDescriptor& OperationRegistry::require(
    std::string_view name) const {
  const OperationDescriptor* descriptor = find(name);
  if (descriptor == nullptr) {
    throw lookup_error("unknown operation family: '" + std::string(name) +
                       "'");
  }
  return *descriptor;
}

std::vector<std::string> OperationRegistry::names() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(families_.size());
  for (const auto& [name, descriptor] : families_) out.push_back(name);
  return out;  // std::map iterates sorted
}

std::vector<ModelJob> plan_jobs_for_specs(
    const std::vector<OperationSpec>& specs, const SystemSpec& system,
    const PlanningPolicy& policy) {
  // Group specs by family, preserving first-seen order for determinism.
  std::vector<std::pair<std::string, std::vector<OperationSpec>>> groups;
  for (const OperationSpec& spec : specs) {
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == spec.op; });
    if (it == groups.end()) {
      groups.push_back({spec.op, {spec}});
    } else {
      it->second.push_back(spec);
    }
  }

  // Plan each family through its descriptor, then merge by model key: one
  // job per key, its domain the union of the per-family domains (mirrors
  // the engine's grow-don't-replace rule for stored models).
  std::vector<ModelJob> merged;
  std::map<ModelKey, std::size_t> index;
  const OperationRegistry& registry = OperationRegistry::instance();
  for (const auto& [name, group] : groups) {
    const OperationDescriptor& descriptor = registry.require(name);
    for (ModelJob& job : descriptor.plan(group, system, policy)) {
      const ModelKey key = ModelService::key_for(job);
      const auto [it, inserted] = index.emplace(key, merged.size());
      if (inserted) {
        merged.push_back(std::move(job));
        continue;
      }
      ModelJob& existing = merged[it->second];
      DLAP_REQUIRE(
          existing.request.domain.dims() == job.request.domain.dims(),
          "plan_jobs_for_specs: families disagree on the arity of " +
              key.to_string());
      existing.request.domain =
          region_union(existing.request.domain, job.request.domain);
    }
  }
  return merged;
}

}  // namespace dlap
