#pragma once
// Fundamental types and error-handling helpers shared by every dlaperf
// module.
//
// The library follows the C++ Core Guidelines: exceptions for contract
// violations that callers may reasonably trigger (bad arguments, malformed
// files), assertions via DLAP_ASSERT for internal invariants.

#include <cstdint>
#include <stdexcept>
#include <string>

namespace dlap {

/// Index type used for all matrix dimensions and loop counters.
///
/// Signed (per ES.100/ES.102) so that reverse loops and differences are
/// safe; 64-bit so that element counts of large operands never overflow.
using index_t = std::int64_t;

/// Exception thrown on invalid arguments to public API entry points.
class invalid_argument_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Exception thrown when a numerical operation cannot proceed
/// (e.g. singular triangular solve, rank-deficient fit without fallback).
class numerical_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Exception thrown on malformed serialized data (model files, call strings).
class parse_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Exception thrown when a repository lookup fails.
class lookup_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void throw_invalid(const char* cond, const char* file,
                                       int line, const std::string& msg) {
  throw invalid_argument_error(std::string(file) + ":" + std::to_string(line) +
                               ": requirement `" + cond + "` violated" +
                               (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace dlap

/// Precondition check on public API boundaries; throws
/// dlap::invalid_argument_error with source location when violated.
#define DLAP_REQUIRE(cond, msg)                                         \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::dlap::detail::throw_invalid(#cond, __FILE__, __LINE__, (msg));  \
    }                                                                   \
  } while (false)

/// Internal invariant check; compiled out in release unless
/// DLAPERF_CHECKED_BUILD is defined. Kept cheap so hot kernels can use it.
#if defined(DLAPERF_CHECKED_BUILD) || !defined(NDEBUG)
#define DLAP_ASSERT(cond) DLAP_REQUIRE(cond, "internal invariant")
#else
#define DLAP_ASSERT(cond) ((void)0)
#endif
