#include "common/matrix_util.hpp"

#include <algorithm>
#include <cmath>

namespace dlap {

void fill_uniform(MatrixView a, Rng& rng, double lo, double hi) {
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t i = 0; i < a.rows(); ++i) {
      a(i, j) = rng.uniform(lo, hi);
    }
  }
}

namespace {
// Triangular factor with unit-magnitude diagonal and small off-diagonal
// entries keeps cond(L) modest, so L^{-1} and Sylvester solves are
// numerically trustworthy for any test size.
void fill_triangular(MatrixView a, Rng& rng, bool lower) {
  DLAP_REQUIRE(a.rows() == a.cols(), "triangular fill needs a square matrix");
  const index_t n = a.rows();
  const double scale = (n > 0) ? 1.0 / static_cast<double>(n) : 1.0;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      const bool in_triangle = lower ? (i > j) : (i < j);
      if (i == j) {
        // Diagonal in [1, 2): bounded away from zero, same sign.
        a(i, j) = 1.0 + rng.uniform();
      } else if (in_triangle) {
        a(i, j) = rng.uniform(-1.0, 1.0) * scale;
      } else {
        a(i, j) = 0.0;
      }
    }
  }
}
}  // namespace

void fill_lower_triangular(MatrixView a, Rng& rng) {
  fill_triangular(a, rng, /*lower=*/true);
}

void fill_upper_triangular(MatrixView a, Rng& rng) {
  fill_triangular(a, rng, /*lower=*/false);
}

void fill_spd(MatrixView a, Rng& rng) {
  DLAP_REQUIRE(a.rows() == a.cols(), "SPD fill needs a square matrix");
  const index_t n = a.rows();
  const double scale = (n > 0) ? 1.0 / static_cast<double>(n) : 1.0;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      if (i == j) {
        // Diagonal in [1, 2): strictly dominates the (n-1)/n worst-case
        // off-diagonal row sum, so the matrix is SPD by Gershgorin.
        a(i, j) = 1.0 + rng.uniform();
      } else {
        const double v = rng.uniform(-1.0, 1.0) * scale;
        a(i, j) = v;
        a(j, i) = v;
      }
    }
  }
}

void copy_matrix(ConstMatrixView src, MatrixView dst) {
  DLAP_REQUIRE(src.rows() == dst.rows() && src.cols() == dst.cols(),
               "shape mismatch in copy_matrix");
  for (index_t j = 0; j < src.cols(); ++j) {
    for (index_t i = 0; i < src.rows(); ++i) {
      dst(i, j) = src(i, j);
    }
  }
}

void set_identity(MatrixView a) {
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t i = 0; i < a.rows(); ++i) {
      a(i, j) = (i == j) ? 1.0 : 0.0;
    }
  }
}

double frobenius_norm(ConstMatrixView a) {
  double sum = 0.0;
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t i = 0; i < a.rows(); ++i) {
      sum += a(i, j) * a(i, j);
    }
  }
  return std::sqrt(sum);
}

double max_abs(ConstMatrixView a) {
  double m = 0.0;
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t i = 0; i < a.rows(); ++i) {
      m = std::max(m, std::abs(a(i, j)));
    }
  }
  return m;
}

double relative_diff(ConstMatrixView a, ConstMatrixView b) {
  DLAP_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
               "shape mismatch in relative_diff");
  double num = 0.0;
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t i = 0; i < a.rows(); ++i) {
      const double d = a(i, j) - b(i, j);
      num += d * d;
    }
  }
  const double den = frobenius_norm(b);
  return std::sqrt(num) / std::max(1.0, den);
}

}  // namespace dlap
