#pragma once
// Column-major matrix container and non-owning views.
//
// The whole library speaks the BLAS storage convention: an m x n matrix is
// a pointer plus a leading dimension ld >= m; element (i, j) lives at
// data[i + j * ld]. `Matrix` owns its buffer; `MatrixView` /
// `ConstMatrixView` are cheap non-owning windows used to express the
// submatrix partitionings of blocked algorithms (L00, L10, ... in the
// paper's notation).

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace dlap {

class ConstMatrixView;

/// Mutable non-owning view of a column-major matrix block.
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(double* data, index_t rows, index_t cols, index_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    DLAP_REQUIRE(rows >= 0 && cols >= 0, "negative dimension");
    DLAP_REQUIRE(ld >= rows || (rows == 0 && ld >= 0), "ld must be >= rows");
  }

  [[nodiscard]] double* data() const noexcept { return data_; }
  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t ld() const noexcept { return ld_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  [[nodiscard]] double& operator()(index_t i, index_t j) const {
    DLAP_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i + j * ld_];
  }

  /// Sub-block of size r x c with top-left corner (i, j).
  [[nodiscard]] MatrixView block(index_t i, index_t j, index_t r,
                                 index_t c) const {
    DLAP_REQUIRE(i >= 0 && j >= 0 && r >= 0 && c >= 0, "negative block spec");
    DLAP_REQUIRE(i + r <= rows_ && j + c <= cols_, "block out of range");
    return MatrixView(data_ + i + j * ld_, r, c, ld_);
  }

 private:
  double* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 0;
};

/// Read-only non-owning view of a column-major matrix block.
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const double* data, index_t rows, index_t cols, index_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    DLAP_REQUIRE(rows >= 0 && cols >= 0, "negative dimension");
    DLAP_REQUIRE(ld >= rows || (rows == 0 && ld >= 0), "ld must be >= rows");
  }
  ConstMatrixView(MatrixView v)  // NOLINT(google-explicit-constructor)
      : data_(v.data()), rows_(v.rows()), cols_(v.cols()), ld_(v.ld()) {}

  [[nodiscard]] const double* data() const noexcept { return data_; }
  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t ld() const noexcept { return ld_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  [[nodiscard]] const double& operator()(index_t i, index_t j) const {
    DLAP_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i + j * ld_];
  }

  [[nodiscard]] ConstMatrixView block(index_t i, index_t j, index_t r,
                                      index_t c) const {
    DLAP_REQUIRE(i >= 0 && j >= 0 && r >= 0 && c >= 0, "negative block spec");
    DLAP_REQUIRE(i + r <= rows_ && j + c <= cols_, "block out of range");
    return ConstMatrixView(data_ + i + j * ld_, r, c, ld_);
  }

 private:
  const double* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 0;
};

/// Owning column-major matrix. The leading dimension may exceed the row
/// count (as the paper's model generation fixes ld = 2500 regardless of m).
class Matrix {
 public:
  Matrix() = default;

  /// m x n matrix with ld == m, zero-initialized.
  Matrix(index_t rows, index_t cols) : Matrix(rows, cols, rows) {}

  /// m x n matrix with explicit leading dimension, zero-initialized.
  Matrix(index_t rows, index_t cols, index_t ld)
      : rows_(rows), cols_(cols), ld_(ld) {
    DLAP_REQUIRE(rows >= 0 && cols >= 0, "negative dimension");
    DLAP_REQUIRE(ld >= rows || (rows == 0 && ld >= 0), "ld must be >= rows");
    buffer_.assign(static_cast<std::size_t>(ld_ * cols_), 0.0);
  }

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t ld() const noexcept { return ld_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  [[nodiscard]] double* data() noexcept { return buffer_.data(); }
  [[nodiscard]] const double* data() const noexcept { return buffer_.data(); }

  [[nodiscard]] double& operator()(index_t i, index_t j) {
    DLAP_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return buffer_[static_cast<std::size_t>(i + j * ld_)];
  }
  [[nodiscard]] const double& operator()(index_t i, index_t j) const {
    DLAP_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return buffer_[static_cast<std::size_t>(i + j * ld_)];
  }

  [[nodiscard]] MatrixView view() {
    return MatrixView(data(), rows_, cols_, ld_);
  }
  [[nodiscard]] ConstMatrixView view() const {
    return ConstMatrixView(data(), rows_, cols_, ld_);
  }
  [[nodiscard]] MatrixView block(index_t i, index_t j, index_t r, index_t c) {
    return view().block(i, j, r, c);
  }
  [[nodiscard]] ConstMatrixView block(index_t i, index_t j, index_t r,
                                      index_t c) const {
    return view().block(i, j, r, c);
  }

 private:
  std::vector<double> buffer_;
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 0;
};

}  // namespace dlap
