#pragma once
// Sharded LRU cache: a fixed-capacity key -> shared_ptr<Value> map with
// least-recently-used eviction, split into independently locked shards so
// concurrent lookups from a query fan-out do not serialize on one mutex.
//
// Values are handed out as shared_ptr, so an evicted entry stays alive for
// readers that already hold it. The cache never blocks on value
// construction: callers look up, build a missing value outside any lock,
// and insert -- a concurrent duplicate build is benign (last insert wins).

#include <algorithm>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace dlap {

struct LruStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;  ///< entries currently cached (across shards)
};

template <class Key, class Value, class Hash = std::hash<Key>>
class ShardedLru {
 public:
  /// `capacity` 0 disables the cache (every find misses, inserts are
  /// dropped). Capacity splits across shards as ceil(capacity/shards);
  /// the shard count shrinks for small capacities (at least 8 entries
  /// per shard) so a tiny cache is one exactly-sized LRU instead of many
  /// one-entry shards thrashing each other. Total held entries are
  /// within [capacity, capacity + shards).
  explicit ShardedLru(std::size_t capacity, std::size_t shards = 8) {
    capacity_ = capacity;
    const std::size_t usable = std::max<std::size_t>(1, capacity);
    shards_.resize(std::clamp<std::size_t>(usable / 8, 1,
                                           std::max<std::size_t>(1, shards)));
    per_shard_ = (usable + shards_.size() - 1) / shards_.size();
    for (auto& s : shards_) s = std::make_unique<Shard>();
  }

  /// The cached value (promoted to most recently used) or nullptr.
  [[nodiscard]] std::shared_ptr<Value> find(const Key& key) {
    if (capacity_ == 0) return nullptr;
    Shard& s = shard(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.map.find(key);
    if (it == s.map.end()) {
      ++s.misses;
      return nullptr;
    }
    ++s.hits;
    s.order.splice(s.order.begin(), s.order, it->second);
    return it->second->second;
  }

  /// Inserts (or replaces) the entry as most recently used, evicting the
  /// shard's least recently used entry when over capacity.
  void insert(const Key& key, std::shared_ptr<Value> value) {
    if (capacity_ == 0) return;
    Shard& s = shard(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.map.find(key);
    if (it != s.map.end()) {
      it->second->second = std::move(value);
      s.order.splice(s.order.begin(), s.order, it->second);
      return;
    }
    s.order.emplace_front(key, std::move(value));
    s.map.emplace(key, s.order.begin());
    if (s.map.size() > per_shard_) {
      s.map.erase(s.order.back().first);
      s.order.pop_back();
      ++s.evictions;
    }
  }

  void clear() {
    for (auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mutex);
      s->map.clear();
      s->order.clear();
    }
  }

  [[nodiscard]] LruStats stats() const {
    LruStats out;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mutex);
      out.hits += s->hits;
      out.misses += s->misses;
      out.evictions += s->evictions;
      out.size += s->map.size();
    }
    return out;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::list<std::pair<Key, std::shared_ptr<Value>>> order;  // MRU first
    std::unordered_map<Key,
                       typename std::list<
                           std::pair<Key, std::shared_ptr<Value>>>::iterator,
                       Hash>
        map;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard(const Key& key) {
    // Spread the hash's low bits (unordered_map uses them too) before
    // picking a shard, so shard choice and bucket choice decorrelate.
    const std::size_t h = Hash{}(key);
    return *shards_[(h ^ (h >> 16)) % shards_.size()];
  }

  std::size_t capacity_;
  std::size_t per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace dlap
