#pragma once
// Operand construction and comparison helpers used by tests, examples and
// the experiment harness: random fills, well-conditioned triangular
// factors, norms and relative differences.

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace dlap {

/// Fills every element of `a` with uniform values in [lo, hi).
void fill_uniform(MatrixView a, Rng& rng, double lo = -1.0, double hi = 1.0);

/// Fills `a` with a well-conditioned lower-triangular matrix: off-diagonal
/// uniform in [-1,1]/rows, diagonal shifted to ~1 so inverses stay bounded.
/// The strictly upper part is zeroed.
void fill_lower_triangular(MatrixView a, Rng& rng);

/// Same, upper-triangular (strictly lower part zeroed).
void fill_upper_triangular(MatrixView a, Rng& rng);

/// Fills `a` with a well-conditioned symmetric positive-definite matrix:
/// off-diagonal symmetric uniform in [-1,1]/rows, diagonal in [1,2), so
/// the matrix is strictly diagonally dominant (hence SPD) and Cholesky
/// factors exist for any size.
void fill_spd(MatrixView a, Rng& rng);

/// Copies src into dst elementwise; shapes must match (lds may differ).
void copy_matrix(ConstMatrixView src, MatrixView dst);

/// Sets `a` to the identity (rectangular: ones on the main diagonal).
void set_identity(MatrixView a);

/// Frobenius norm.
[[nodiscard]] double frobenius_norm(ConstMatrixView a);

/// Max-abs-element norm.
[[nodiscard]] double max_abs(ConstMatrixView a);

/// ||a - b||_F / max(1, ||b||_F); shapes must match.
[[nodiscard]] double relative_diff(ConstMatrixView a, ConstMatrixView b);

}  // namespace dlap
