#pragma once
// Deterministic pseudo-random number generation.
//
// All experiment workloads are generated from explicit seeds so that every
// figure is reproducible run-to-run. We use our own splitmix64/xoshiro256**
// implementation instead of std::mt19937 to guarantee identical streams
// across standard libraries.

#include <cstdint>

#include "common/types.hpp"

namespace dlap {

/// xoshiro256** generator (public-domain algorithm by Blackman & Vigna),
/// seeded via splitmix64 so any 64-bit seed yields a well-mixed state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  index_t uniform_int(index_t lo, index_t hi);

  /// Standard normal via Box-Muller.
  double normal();

 private:
  std::uint64_t state_[4] = {};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace dlap
