#include "common/threadpool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace dlap {

// Per-parallel_for completion state shared between the caller and workers.
struct Sync {
  std::mutex m;
  std::condition_variable done_cv;
  index_t pending = 0;
  std::exception_ptr error;

  void finish_one(std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(m);
    if (e && !error) error = e;
    if (--pending == 0) done_cv.notify_all();
  }
};

ThreadPool::ThreadPool(index_t workers) {
  index_t n = workers;
  if (n <= 0) {
    n = static_cast<index_t>(std::thread::hardware_concurrency());
    if (n <= 0) n = 1;
  }
  threads_.reserve(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = queue_.front();
      queue_.pop();
    }
    std::exception_ptr error;
    try {
      (*task.fn)(task.begin, task.end);
    } catch (...) {
      error = std::current_exception();
    }
    task.sync->finish_one(error);
  }
}

void ThreadPool::parallel_for(
    index_t begin, index_t end,
    const std::function<void(index_t, index_t)>& fn) {
  DLAP_REQUIRE(begin <= end, "empty-or-reversed range");
  const index_t total = end - begin;
  if (total == 0) return;

  const index_t nchunks =
      std::min<index_t>(worker_count() + 1, total);  // +1: caller joins in
  const index_t base = total / nchunks;
  const index_t extra = total % nchunks;

  Sync sync;
  sync.pending = nchunks - 1;  // chunks handed to the pool

  index_t cursor = begin;
  // Enqueue all but the last chunk; the caller runs the last one itself so
  // a pool of size zero (or a busy pool) can never deadlock.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (index_t c = 0; c + 1 < nchunks; ++c) {
      const index_t len = base + (c < extra ? 1 : 0);
      queue_.push(Task{cursor, cursor + len, &fn, &sync});
      cursor += len;
    }
  }
  cv_.notify_all();

  std::exception_ptr my_error;
  try {
    fn(cursor, end);
  } catch (...) {
    my_error = std::current_exception();
  }

  if (nchunks > 1) {
    std::unique_lock<std::mutex> lock(sync.m);
    sync.done_cv.wait(lock, [&sync] { return sync.pending == 0; });
  }
  if (my_error) std::rethrow_exception(my_error);
  if (sync.error) std::rethrow_exception(sync.error);
}

}  // namespace dlap
