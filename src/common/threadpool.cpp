#include "common/threadpool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace dlap {

namespace {

// Completion state shared between the caller of a bulk operation and the
// workers executing its pieces.
struct BulkSync {
  std::mutex m;
  std::condition_variable done_cv;
  index_t pending = 0;
  std::exception_ptr error;

  void finish_one(std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(m);
    if (e && !error) error = e;
    if (--pending == 0) done_cv.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> lock(m);
    done_cv.wait(lock, [this] { return pending == 0; });
  }
};

}  // namespace

ThreadPool::ThreadPool(index_t workers) {
  index_t n = workers;
  if (n <= 0) {
    n = static_cast<index_t>(std::thread::hardware_concurrency());
    if (n <= 0) n = 1;
  }
  threads_.reserve(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop();
    }
    job();
  }
}

void ThreadPool::parallel_for(
    index_t begin, index_t end,
    const std::function<void(index_t, index_t)>& fn) {
  DLAP_REQUIRE(begin <= end, "empty-or-reversed range");
  const index_t total = end - begin;
  if (total == 0) return;

  const index_t nchunks =
      std::min<index_t>(worker_count() + 1, total);  // +1: caller joins in
  const index_t base = total / nchunks;
  const index_t extra = total % nchunks;

  BulkSync sync;
  sync.pending = nchunks - 1;  // chunks handed to the pool

  index_t cursor = begin;
  // Enqueue all but the last chunk; the caller runs the last one itself so
  // a busy pool can never deadlock the call.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (index_t c = 0; c + 1 < nchunks; ++c) {
      const index_t len = base + (c < extra ? 1 : 0);
      const index_t b = cursor;
      const index_t e = cursor + len;
      queue_.push([&fn, b, e, &sync] {
        std::exception_ptr error;
        try {
          fn(b, e);
        } catch (...) {
          error = std::current_exception();
        }
        sync.finish_one(error);
      });
      cursor += len;
    }
  }
  cv_.notify_all();

  std::exception_ptr my_error;
  try {
    fn(cursor, end);
  } catch (...) {
    my_error = std::current_exception();
  }

  if (nchunks > 1) sync.wait();
  if (my_error) std::rethrow_exception(my_error);
  if (sync.error) std::rethrow_exception(sync.error);
}

void ThreadPool::parallel_for_each(index_t count,
                                   const std::function<void(index_t)>& fn) {
  DLAP_REQUIRE(count >= 0, "negative item count");
  if (count == 0) return;

  // Dynamic self-scheduling: each drainer (pool workers plus the caller)
  // repeatedly claims the next unclaimed index until none remain.
  //
  // Completion is tracked per *item*, not per helper job: the caller
  // returns as soon as every item has finished, even when the enqueued
  // helpers never got a thread (they find no work and discard the shared
  // state when they eventually run). That makes NESTED calls on one pool
  // safe -- a worker that fans out again can always complete the inner
  // batch on its own stack while its siblings are parked in their own
  // waits -- where waiting on the helper jobs themselves would deadlock
  // a pool whose workers all fan out. The batched measurement scheduler
  // relies on exactly that (generation tasks fanning sample batches out
  // over the same pool).
  struct State {
    std::atomic<index_t> next{0};
    index_t count = 0;
    std::function<void(index_t)> fn;  // owned: helpers may outlive caller
    std::mutex m;
    std::condition_variable done_cv;
    index_t completed = 0;
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();
  state->count = count;
  state->fn = fn;

  const auto drain = [](State& s) {
    for (;;) {
      const index_t i = s.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s.count) return;
      std::exception_ptr error;
      try {
        s.fn(i);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(s.m);
      if (error && !s.error) s.error = error;
      if (++s.completed == s.count) s.done_cv.notify_all();
    }
  };

  const index_t helpers = std::min<index_t>(worker_count(), count - 1);
  if (helpers > 0) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (index_t h = 0; h < helpers; ++h) {
        queue_.push([state, drain] { drain(*state); });
      }
    }
    cv_.notify_all();
  }

  drain(*state);

  std::unique_lock<std::mutex> lock(state->m);
  state->done_cv.wait(lock,
                      [&] { return state->completed == state->count; });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace dlap
