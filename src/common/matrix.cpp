#include "common/matrix.hpp"

// Matrix and its views are header-only; this translation unit exists so the
// module library always has at least one object file and to anchor vtables
// if views ever grow virtual behaviour.

namespace dlap {
namespace {
// Compile-time sanity: views must remain trivially copyable so they can be
// passed by value through kernel interfaces without cost.
static_assert(std::is_trivially_copyable_v<MatrixView>);
static_assert(std::is_trivially_copyable_v<ConstMatrixView>);
}  // namespace
}  // namespace dlap
