#pragma once
// Fixed-size thread pool with a blocking parallel_for, a dynamically
// scheduled parallel_for_each, and a future-based submit.
//
// The threaded BLAS layer (blas/threaded.hpp) uses this pool to partition
// level-3 kernels across worker threads, mirroring the paper's use of
// multithreaded OpenBLAS in Section IV-A4. The model service
// (service/model_service.hpp) uses the same pool type to fan model
// generation out across (routine, backend, locality, flags) keys. The pool
// is deliberately simple: a shared queue of jobs, condition-variable
// wakeups, and a completion latch per bulk call. It is safe to create a
// pool with more workers than hardware threads (the single-core CI machine
// oversubscribes).

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/types.hpp"

namespace dlap {

class ThreadPool {
 public:
  /// Spawns `workers` threads; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(index_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] index_t worker_count() const noexcept {
    return static_cast<index_t>(threads_.size());
  }

  /// Runs fn(chunk_begin, chunk_end) over [begin, end) split into roughly
  /// equal contiguous chunks, one per worker; blocks until all complete.
  /// The calling thread participates, so the pool also works when the body
  /// itself is cheap. Exceptions from the body propagate to the caller
  /// (first one wins).
  void parallel_for(index_t begin, index_t end,
                    const std::function<void(index_t, index_t)>& fn);

  /// Runs fn(i) for every i in [0, count) with dynamic self-scheduling:
  /// workers (and the calling thread, which participates) repeatedly claim
  /// the next unclaimed index. Unlike parallel_for's static chunks, this
  /// balances loads whose per-item cost varies wildly -- the model
  /// service's generation tasks. Blocks until all items complete;
  /// exceptions propagate to the caller (first one wins). Safe to call
  /// from a pool worker (nested fan-out): completion is tracked per item,
  /// so the nested caller can finish its batch alone even when every
  /// other worker is parked in a wait of its own -- the measurement
  /// scheduler fans generation batches out this way.
  void parallel_for_each(index_t count,
                         const std::function<void(index_t)>& fn);

  /// Enqueues a callable to run on some worker thread; the returned future
  /// carries its result (or exception).
  template <class F>
  [[nodiscard]] auto submit(F&& fn) -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace dlap
