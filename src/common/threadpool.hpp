#pragma once
// Fixed-size thread pool with a blocking parallel_for.
//
// The threaded BLAS layer (blas/threaded.hpp) uses this pool to partition
// level-3 kernels across worker threads, mirroring the paper's use of
// multithreaded OpenBLAS in Section IV-A4. The pool is deliberately simple:
// a shared queue of range-tasks, condition-variable wakeups, and a
// completion latch per parallel_for. It is safe to create a pool with more
// workers than hardware threads (the single-core CI machine oversubscribes).

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace dlap {

class ThreadPool {
 public:
  /// Spawns `workers` threads; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(index_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] index_t worker_count() const noexcept {
    return static_cast<index_t>(threads_.size());
  }

  /// Runs fn(chunk_begin, chunk_end) over [begin, end) split into roughly
  /// equal contiguous chunks, one per worker; blocks until all complete.
  /// The calling thread participates, so the pool also works when the body
  /// itself is cheap. Exceptions from the body propagate to the caller
  /// (first one wins).
  void parallel_for(index_t begin, index_t end,
                    const std::function<void(index_t, index_t)>& fn);

 private:
  struct Task {
    index_t begin = 0;
    index_t end = 0;
    const std::function<void(index_t, index_t)>* fn = nullptr;
    struct Sync* sync = nullptr;
  };

  void worker_loop();

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<Task> queue_;
  bool stop_ = false;
};

}  // namespace dlap
