#pragma once
// Environment-variable driven configuration.
//
// Every figure-reproduction binary supports two scales:
//   - default: CI-friendly domains that finish in seconds/minutes,
//   - DLAPERF_PAPER_SCALE=1: the exact domains used in the paper.

#include <string>

#include "common/types.hpp"

namespace dlap {

/// Returns the value of environment variable `name`, or `fallback` if unset.
[[nodiscard]] std::string env_string(const char* name,
                                     const std::string& fallback);

/// Returns an integer environment variable, or `fallback` if unset/bad.
[[nodiscard]] long long env_int(const char* name, long long fallback);

/// True when DLAPERF_PAPER_SCALE is set to a non-zero/non-empty value;
/// benches then use the paper's full parameter domains.
[[nodiscard]] bool paper_scale();

/// Global sampling-effort multiplier (DLAPERF_REPS, default 1); benches
/// multiply their repetition counts by this.
[[nodiscard]] long long rep_multiplier();

}  // namespace dlap
