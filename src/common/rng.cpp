#include "common/rng.hpp"

#include <cmath>

namespace dlap {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  have_spare_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  DLAP_REQUIRE(lo <= hi, "empty interval");
  return lo + (hi - lo) * uniform();
}

index_t Rng::uniform_int(index_t lo, index_t hi) {
  DLAP_REQUIRE(lo <= hi, "empty interval");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection-free modulo is fine here: span is tiny vs 2^64, bias < 2^-40.
  return lo + static_cast<index_t>(next_u64() % span);
}

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return r * std::cos(theta);
}

}  // namespace dlap
