#pragma once
// Small string utilities used by the sampler's textual call interface and
// the model repository's serialization format.

#include <string>
#include <string_view>
#include <vector>

namespace dlap {

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Splits `s` at every occurrence of `sep`; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Splits and trims each field; empty fields after trimming are preserved.
[[nodiscard]] std::vector<std::string> split_trimmed(std::string_view s,
                                                     char sep);

/// Joins `parts` with `sep` between consecutive elements.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Lower-cases ASCII characters.
[[nodiscard]] std::string to_lower(std::string_view s);

/// Parses a signed integer; throws dlap::parse_error on malformed input.
[[nodiscard]] long long parse_int(std::string_view s);

/// Parses a double; throws dlap::parse_error on malformed input.
[[nodiscard]] double parse_double(std::string_view s);

}  // namespace dlap
