#pragma once
// Small string utilities used by the sampler's textual call interface and
// the model repository's serialization format.

#include <string>
#include <string_view>
#include <vector>

namespace dlap {

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Splits `s` at every occurrence of `sep`; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Splits and trims each field; empty fields after trimming are preserved.
[[nodiscard]] std::vector<std::string> split_trimmed(std::string_view s,
                                                     char sep);

/// Joins `parts` with `sep` between consecutive elements.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Lower-cases ASCII characters.
[[nodiscard]] std::string to_lower(std::string_view s);

/// Parses a signed integer; throws dlap::parse_error on malformed input.
[[nodiscard]] long long parse_int(std::string_view s);

/// Parses a double; throws dlap::parse_error on malformed input.
[[nodiscard]] double parse_double(std::string_view s);

/// Escapes one file-name component injectively: alphanumerics and '_'
/// pass through, '@' (the threaded-backend separator) becomes "-t" for
/// readability, and every other character -- including '-' itself, so
/// '-' always starts an escape and the encoding stays unambiguous --
/// becomes "-x" plus two hex digits. Used by the model repository and
/// the sample repository so distinct keys always map to distinct file
/// names, even for path-hostile backend specs or flag strings.
[[nodiscard]] std::string escape_filename_component(std::string_view s);

/// Inverse of escape_filename_component; throws dlap::parse_error on a
/// malformed escape sequence (a component that the escaper cannot have
/// produced). Used by the container packer to recover engine keys from
/// sample-journal file names.
[[nodiscard]] std::string unescape_filename_component(std::string_view s);

}  // namespace dlap
