#include "common/env.hpp"

#include <cstdlib>

namespace dlap {

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr) ? fallback : std::string(v);
}

long long env_int(const char* name, long long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

bool paper_scale() {
  const std::string v = env_string("DLAPERF_PAPER_SCALE", "");
  return !v.empty() && v != "0";
}

long long rep_multiplier() {
  const long long r = env_int("DLAPERF_REPS", 1);
  return r > 0 ? r : 1;
}

}  // namespace dlap
