#include "common/str.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

#include "common/types.hpp"

namespace dlap {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_trimmed(std::string_view s, char sep) {
  std::vector<std::string> out = split(s, sep);
  for (std::string& f : out) f = std::string(trim(f));
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

long long parse_int(std::string_view s) {
  s = trim(s);
  long long value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) {
    throw parse_error("not an integer: '" + std::string(s) + "'");
  }
  return value;
}

double parse_double(std::string_view s) {
  s = trim(s);
  // std::from_chars for double is available in libstdc++ 11+; use it and
  // fall back to strtod semantics through a NUL-terminated copy otherwise.
  std::string buf(s);
  if (buf.empty()) throw parse_error("not a number: ''");
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    throw parse_error("not a number: '" + buf + "'");
  }
  return value;
}

std::string escape_filename_component(std::string_view s) {
  static const char* hex = "0123456789abcdef";
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (std::isalnum(u) || c == '_') {
      out.push_back(c);
    } else if (c == '@') {
      out += "-t";
    } else {
      out += "-x";
      out.push_back(hex[u >> 4]);
      out.push_back(hex[u & 0xf]);
    }
  }
  return out;
}

std::string unescape_filename_component(std::string_view s) {
  const auto hex_digit = [&](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    throw parse_error("bad escaped file name component: '" + std::string(s) +
                      "'");
  };
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c != '-') {
      const auto u = static_cast<unsigned char>(c);
      if (!std::isalnum(u) && c != '_') {
        throw parse_error("bad escaped file name component: '" +
                          std::string(s) + "'");
      }
      out.push_back(c);
      continue;
    }
    if (i + 1 < s.size() && s[i + 1] == 't') {
      out.push_back('@');
      i += 1;
    } else if (i + 3 < s.size() && s[i + 1] == 'x') {
      out.push_back(static_cast<char>(16 * hex_digit(s[i + 2]) +
                                      hex_digit(s[i + 3])));
      i += 3;
    } else {
      throw parse_error("bad escaped file name component: '" +
                        std::string(s) + "'");
    }
  }
  return out;
}

}  // namespace dlap
