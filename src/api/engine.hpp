#pragma once
// dlap::Engine -- the user-facing facade of the library: a long-lived
// prediction engine answering typed queries (predict / rank / tune), the
// way Peise's dissertation frames the model repository as a service
// consulted by many decision runs.
//
// What the facade adds over wiring the pipeline by hand:
//   - typed queries: callers say *what they want decided* (an operation
//     spec, a candidate set, a swept parameter); specs are validated and
//     traced through the OperationRegistry (src/ops/registry.hpp), the
//     engine derives the modeling jobs (per-family domain planners,
//     falling back to trace-driven planning in api/plan.hpp) and
//     generates missing models on demand through its ModelService;
//   - non-throwing answers: every entry point returns Result<T>
//     (api/result.hpp) -- a failed query reports a status instead of
//     unwinding the caller;
//   - batched and async entry points: predict_many fans independent
//     queries out across the service's ThreadPool; submit returns a
//     std::future;
//   - the compiled sweep path: every query point is compiled to a
//     CompiledTrace (deduped calls, predict/compiled_trace.hpp) with its
//     resolver keys interned to dense ids (api/intern.hpp) and its models
//     held in a versioned slot snapshot; compiled points are cached in a
//     sharded LRU keyed by (family, variant, sizes, blocksize, system)
//     (api/trace_cache.hpp), so a repeated or overlapping sweep skips
//     trace generation, compilation, interning and model resolution, and
//     prediction evaluates each model once per unique call.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "api/intern.hpp"
#include "api/plan.hpp"
#include "api/query.hpp"
#include "api/result.hpp"
#include "api/trace_cache.hpp"
#include "service/model_service.hpp"

namespace dlap {

struct EngineConfig {
  /// The owned ModelService (repository directory, generation workers,
  /// refinement strategy, measurement hook).
  ServiceConfig service;
  /// Default system for queries that do not name one.
  SystemSpec system;
  /// How modeling jobs are derived from query traces (consumed by the
  /// registry's domain planners and the trace-driven fallback).
  PlanningPolicy planning;
  /// Generate models a query needs but the repository lacks (or only
  /// covers too small a domain for). When false such queries fail with
  /// MissingModel / UncoveredDomain instead.
  bool generate_missing = true;
  /// Prediction accumulation options. `strict` is ignored: the engine
  /// reports missing models through Result statuses, never exceptions.
  PredictionOptions prediction;
  /// Compiled sweep points kept in the trace cache (0 disables caching;
  /// every spec query then recompiles its trace).
  index_t trace_cache_capacity = 4096;
  /// Test/bench hook: invoked once per predict-query evaluation, after
  /// model resolution and before the accumulation loop. Lets throughput
  /// benches make queries latency-bound to measure dispatch overlap
  /// independently of the host's core count (the same trick
  /// ServiceConfig::measure_factory plays for generation). Production
  /// leaves it empty.
  std::function<void()> query_hook;
};

/// What Engine::prepare did for the models a spec batch needs
/// (generation observability, mirroring the trace-cache stats of the
/// prediction path): which keys were generated versus reused, and where
/// their sample points came from -- newly measured, the in-memory store,
/// or the on-disk sample repository. Attribution is best-effort when
/// other threads generate concurrently: work another caller performs on
/// a shared key while this prepare runs may appear in this report.
struct PrepareReport {
  struct Key {
    ModelKey key;
    /// True when this prepare call (re)generated the model; false when a
    /// repository/cache model already covered the needed domain.
    bool generated = false;
    /// Provenance of the model now serving this key: Generated,
    /// TextFile, or Container (loaded zero-copy from a .dlapc file).
    ModelSource source = ModelSource::Generated;
    /// Convenience: source == ModelSource::Container.
    [[nodiscard]] bool from_container() const noexcept {
      return source == ModelSource::Container;
    }
    index_t unique_samples = 0;
    index_t points_measured = 0;
    index_t points_from_memory = 0;
    index_t points_from_disk = 0;
    double wall_ms = 0.0;
  };
  std::vector<Key> keys;

  [[nodiscard]] index_t keys_generated() const noexcept;
  [[nodiscard]] index_t keys_reused() const noexcept;
  /// Keys whose serving model came out of a binary container.
  [[nodiscard]] index_t keys_from_container() const noexcept;
  [[nodiscard]] index_t points_measured() const noexcept;
  [[nodiscard]] index_t points_from_memory() const noexcept;
  [[nodiscard]] index_t points_from_disk() const noexcept;
};

class Engine {
 public:
  explicit Engine(EngineConfig config = {});

  /// Blocks until every outstanding submit()ted query has finished:
  /// dropping a future is legal, so the engine must not die under a
  /// still-queued task.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] const EngineConfig& config() const noexcept {
    return config_;
  }
  /// The underlying pipeline, for callers that need the low-level surface.
  [[nodiscard]] ModelService& service() noexcept { return service_; }

  // ------------------------------------------------ synchronous queries

  /// Predicted runtime of one operation (or raw trace).
  [[nodiscard]] Result<Prediction> predict(const PredictQuery& query) noexcept;

  /// Candidate operations ordered by predicted runtime, with the full
  /// per-candidate predictions.
  [[nodiscard]] Result<Ranking> rank(const RankQuery& query) noexcept;

  /// Block-size sweep of one operation; picks the predicted-fastest value.
  [[nodiscard]] Result<TuneResult> tune(const TuneQuery& query) noexcept;

  /// Prediction for a single call given in the paper's textual tuple form,
  /// e.g. "dtrsm(L,L,N,N,144,112,1,A,256,B,256)". Malformed text yields
  /// ParseError / InvalidQuery statuses, never exceptions.
  [[nodiscard]] Result<SampleStats> predict_call(
      const std::string& call_text,
      std::optional<SystemSpec> system = {}) noexcept;

  // --------------------------------------------------- batched / async

  /// Evaluates independent queries concurrently across the service pool;
  /// results come back in query order. Each query fails or succeeds on
  /// its own.
  [[nodiscard]] std::vector<Result<Prediction>> predict_many(
      const std::vector<PredictQuery>& queries);

  /// Asynchronous single queries on the service pool.
  [[nodiscard]] std::future<Result<Prediction>> submit(PredictQuery query);
  [[nodiscard]] std::future<Result<Ranking>> submit(RankQuery query);
  [[nodiscard]] std::future<Result<TuneResult>> submit(TuneQuery query);

  // ----------------------------------------------------------- warm-up

  /// Generates every model the specs need (union of their traces) as one
  /// concurrent batch and warms the resolver cache AND the compiled-trace
  /// cache -- call before a query sweep so no query pays generation or
  /// compilation latency. When `report` is non-null it is filled with
  /// per-key generation accounting: what was generated vs. reused, and
  /// how many points were measured vs. warm-started from the in-memory
  /// store or the on-disk sample repository.
  [[nodiscard]] Status prepare(const std::vector<OperationSpec>& specs,
                               std::optional<SystemSpec> system = {},
                               PrepareReport* report = nullptr) noexcept;

  // ------------------------------------------------------------ reload

  /// Hot model reload, the dlapd admin path: re-attaches the service's
  /// binary container (picking up a repository.dlapc replaced on disk),
  /// drops the engine's model cache and expires every compiled-trace
  /// snapshot (version bump), then -- when `specs` is non-empty --
  /// regenerates/loads the models those specs need (Engine::prepare).
  /// Concurrent queries are never stalled: in-flight predictions finish
  /// on the model snapshots they pinned, later queries re-resolve from
  /// the reloaded repository. A query racing the reload may briefly
  /// re-publish its pinned pre-reload model into the engine cache; the
  /// version bump makes the next resolve of that key re-check coverage,
  /// and a subsequent prepare/regeneration supersedes it.
  [[nodiscard]] Status reload(const std::vector<OperationSpec>& specs = {},
                              std::optional<SystemSpec> system = {},
                              PrepareReport* report = nullptr) noexcept;

  // ----------------------------------------------------- observability

  /// Resolver keys interned so far.
  [[nodiscard]] std::size_t interned_keys() const { return interner_.size(); }

  /// Compiled-trace cache counters (hits/misses/evictions/size).
  [[nodiscard]] LruStats trace_cache_stats() const {
    return trace_cache_.stats();
  }

  /// Drops every cached compiled sweep point (model caches are
  /// unaffected). Mainly for benchmarks that measure the cold path.
  void clear_trace_cache() { trace_cache_.clear(); }

 private:
  /// Lazily produces the modeling jobs of the current query; only invoked
  /// when some model is missing. Spec-based queries plan through the
  /// OperationRegistry's per-family domain planners
  /// (plan_jobs_for_specs); raw-trace queries fall back to trace-driven
  /// planning (api/plan.hpp).
  using PlanFn = std::function<std::vector<ModelJob>()>;

  [[nodiscard]] SystemSpec effective_system(
      const std::optional<SystemSpec>& override_spec) const {
    return override_spec.value_or(config_.system);
  }

  /// Compiles a raw trace into an (uncached) sweep point: dedupe the
  /// calls, intern the resolver keys under `system`.
  [[nodiscard]] std::shared_ptr<CompiledSweepPoint> compile_trace(
      const CallTrace& trace, const SystemSpec& system);

  /// Cached compilation of a validated spec: trace-cache lookup, or
  /// trace + compile + intern + insert on a miss.
  [[nodiscard]] std::shared_ptr<CompiledSweepPoint> compile_spec(
      const OperationSpec& spec, const SystemSpec& system);

  /// Produces one current slot snapshot per sweep point: fresh snapshots
  /// are reused as-is; stale ones trigger model resolution (engine cache
  /// -> repository -> on-demand generation), coverage verification
  /// against the points' unique calls, and a version-stamped rebuild.
  [[nodiscard]] Status resolve(
      const std::vector<const CompiledSweepPoint*>& points,
      const SystemSpec& system, const PlanFn& plan,
      std::vector<std::shared_ptr<const ResolvedSlots>>* slots) noexcept;

  /// PlanFn for a spec-based query: registry-planned jobs for `specs`.
  [[nodiscard]] PlanFn spec_plan(std::vector<OperationSpec> specs,
                                 const SystemSpec& system) const;

  /// Wraps a submitted task: counts it as pending until it finishes, so
  /// the destructor can wait for the pool to drain dropped futures.
  template <class Fn>
  [[nodiscard]] auto submit_tracked(Fn&& fn)
      -> std::future<decltype(fn())>;

  EngineConfig config_;
  KeyInterner interner_;

  // Model cache indexed by interned id; entries only ever widen (a model
  // is replaced by one covering a larger domain). Readers snapshot under
  // the shared lock and pin entries via shared_ptr, so the predict loop
  // itself runs lock-free on its local snapshot.
  mutable std::shared_mutex cache_mutex_;
  std::vector<std::shared_ptr<const RoutineModel>> cache_;

  // Monotonic model-cache version: bumped whenever an entry of cache_
  // changes, which is what invalidates ResolvedSlots snapshots
  // (invalidation-on-regeneration for the compiled sweep path).
  std::atomic<std::uint64_t> model_version_{0};

  // Compiled sweep points, shared across all queries of this engine.
  mutable CompiledTraceCache trace_cache_;

  // Outstanding submit() tasks; ~Engine waits for zero.
  std::mutex pending_mutex_;
  std::condition_variable pending_cv_;
  index_t pending_ = 0;

  // Declared last, so it is destroyed FIRST: the service's ThreadPool
  // drains still-queued submit() tasks during destruction, and those
  // tasks touch every member above -- which must outlive the drain.
  ModelService service_;
};

}  // namespace dlap
