#include "api/query.hpp"

#include "algorithms/sylv.hpp"
#include "algorithms/trinv.hpp"
#include "predict/ranking.hpp"

namespace dlap {

std::string SystemSpec::to_string() const {
  return backend + "/" + locality_name(locality);
}

OperationSpec OperationSpec::trinv(int variant, index_t n,
                                   index_t blocksize) {
  OperationSpec spec;
  spec.kind = Kind::Trinv;
  spec.variant = variant;
  spec.n = n;
  spec.blocksize = blocksize;
  return spec;
}

OperationSpec OperationSpec::sylv(int variant, index_t m, index_t n,
                                  index_t blocksize) {
  OperationSpec spec;
  spec.kind = Kind::Sylv;
  spec.variant = variant;
  spec.m = m;
  spec.n = n;
  spec.blocksize = blocksize;
  return spec;
}

Status OperationSpec::validate() const {
  const int max_variant =
      kind == Kind::Trinv ? kTrinvVariantCount : kSylvVariantCount;
  if (variant < 1 || variant > max_variant) {
    return Status::error(StatusCode::InvalidQuery,
                         to_string() + ": variant must be in [1, " +
                             std::to_string(max_variant) + "]");
  }
  if (n < 1 || (kind == Kind::Sylv && m < 1)) {
    return Status::error(StatusCode::InvalidQuery,
                         to_string() + ": sizes must be >= 1");
  }
  if (blocksize < 1) {
    return Status::error(StatusCode::InvalidQuery,
                         to_string() + ": blocksize must be >= 1");
  }
  return {};
}

CallTrace OperationSpec::trace() const {
  return kind == Kind::Trinv ? trace_trinv(variant, n, blocksize)
                             : trace_sylv(variant, m, n, blocksize);
}

double OperationSpec::nominal_flops() const {
  return kind == Kind::Trinv ? trinv_flops(n) : sylv_flops(m, n);
}

std::string OperationSpec::to_string() const {
  std::string out = kind == Kind::Trinv ? "trinv" : "sylv";
  out += " v" + std::to_string(variant);
  if (kind == Kind::Sylv) out += " m=" + std::to_string(m);
  out += " n=" + std::to_string(n);
  out += " b=" + std::to_string(blocksize);
  return out;
}

PredictQuery PredictQuery::of(OperationSpec spec) {
  PredictQuery q;
  q.spec = spec;
  return q;
}

PredictQuery PredictQuery::of(CallTrace trace) {
  PredictQuery q;
  q.trace = std::move(trace);
  return q;
}

RankQuery RankQuery::trinv_variants(index_t n, index_t blocksize) {
  RankQuery q;
  for (int v = 1; v <= kTrinvVariantCount; ++v) {
    q.candidates.push_back(OperationSpec::trinv(v, n, blocksize));
  }
  return q;
}

RankQuery RankQuery::sylv_variants(index_t m, index_t n, index_t blocksize) {
  RankQuery q;
  for (int v = 1; v <= kSylvVariantCount; ++v) {
    q.candidates.push_back(OperationSpec::sylv(v, m, n, blocksize));
  }
  return q;
}

std::vector<double> Ranking::median_ticks() const {
  std::vector<double> out;
  out.reserve(predictions.size());
  for (const Prediction& p : predictions) out.push_back(p.ticks.median);
  return out;
}

std::vector<double> TuneResult::median_ticks() const {
  std::vector<double> out;
  out.reserve(predictions.size());
  for (const Prediction& p : predictions) out.push_back(p.ticks.median);
  return out;
}

}  // namespace dlap
