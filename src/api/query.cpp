#include "api/query.hpp"

#include <utility>

#include "ops/registry.hpp"
#include "predict/ranking.hpp"

namespace dlap {

std::string SystemSpec::to_string() const {
  return backend + "/" + locality_name(locality);
}

OperationSpec OperationSpec::of(std::string op, int variant, index_t m,
                                index_t n, index_t blocksize) {
  OperationSpec spec;
  spec.op = std::move(op);
  spec.variant = variant;
  spec.m = m;
  spec.n = n;
  spec.blocksize = blocksize;
  return spec;
}

Status OperationSpec::validate() const {
  const OperationDescriptor* family = OperationRegistry::instance().find(op);
  if (family == nullptr) {
    std::string known;
    for (const std::string& name : OperationRegistry::instance().names()) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    return Status::error(StatusCode::ParseError,
                         to_string() + ": unknown operation family '" + op +
                             "' (registered: " + known + ")");
  }
  if (variant < 1 || variant > family->variant_count) {
    return Status::error(StatusCode::InvalidQuery,
                         to_string() + ": variant must be in [1, " +
                             std::to_string(family->variant_count) + "]");
  }
  if (n < 1 || (family->size_axes >= 2 && m < 1)) {
    return Status::error(StatusCode::InvalidQuery,
                         to_string() + ": sizes must be >= 1");
  }
  if (blocksize < 1) {
    return Status::error(StatusCode::InvalidQuery,
                         to_string() + ": blocksize must be >= 1");
  }
  return {};
}

CallTrace OperationSpec::trace() const {
  return OperationRegistry::instance().require(op).trace(*this);
}

double OperationSpec::nominal_flops() const {
  return OperationRegistry::instance().require(op).nominal_flops(*this);
}

std::string OperationSpec::to_string() const {
  const OperationDescriptor* family = OperationRegistry::instance().find(op);
  std::string out = op + " v" + std::to_string(variant);
  if (family != nullptr && family->size_axes >= 2) {
    out += " m=" + std::to_string(m);
  }
  out += " n=" + std::to_string(n);
  out += " b=" + std::to_string(blocksize);
  return out;
}

PredictQuery PredictQuery::of(OperationSpec spec) {
  PredictQuery q;
  q.spec = std::move(spec);
  return q;
}

PredictQuery PredictQuery::of(CallTrace trace) {
  PredictQuery q;
  q.trace = std::move(trace);
  return q;
}

RankQuery RankQuery::all_variants(OperationSpec prototype) {
  RankQuery q;
  const OperationDescriptor* family =
      OperationRegistry::instance().find(prototype.op);
  if (family == nullptr) {
    // Unknown family: carry the prototype so rank() surfaces its
    // validation status instead of silently answering an empty query.
    q.candidates.push_back(std::move(prototype));
    return q;
  }
  q.candidates.reserve(static_cast<std::size_t>(family->variant_count));
  for (int v = 1; v <= family->variant_count; ++v) {
    OperationSpec spec = prototype;
    spec.variant = v;
    q.candidates.push_back(std::move(spec));
  }
  return q;
}

std::vector<double> Ranking::median_ticks() const {
  std::vector<double> out;
  out.reserve(predictions.size());
  for (const Prediction& p : predictions) out.push_back(p.ticks.median);
  return out;
}

std::vector<double> TuneResult::median_ticks() const {
  std::vector<double> out;
  out.reserve(predictions.size());
  for (const Prediction& p : predictions) out.push_back(p.ticks.median);
  return out;
}

}  // namespace dlap
