#pragma once
// Typed queries: callers describe *what they want decided* and the engine
// derives the modeling work. Three query shapes cover the paper's three
// decision services (Section IV):
//   PredictQuery -- how long will this operation (or raw call trace) take?
//   RankQuery    -- which of these candidate operations is fastest?
//                   (ranking variants, IV-A1 / IV-B)
//   TuneQuery    -- which value of a swept parameter is best?
//                   (block-size optimization, IV-A2)
// Each query may name the "system" (backend + memory locality) it asks
// about; unset, the engine's configured default applies.

#include <optional>
#include <string>
#include <vector>

#include "api/result.hpp"
#include "predict/predictor.hpp"
#include "predict/trace.hpp"
#include "sampler/locality.hpp"

namespace dlap {

/// The paper's "fixed implementation and memory locality situation": which
/// backend's models answer the query, generated under which locality.
struct SystemSpec {
  std::string backend = "blocked";
  Locality locality = Locality::InCache;

  [[nodiscard]] bool operator==(const SystemSpec&) const = default;
  [[nodiscard]] std::string to_string() const;
};

/// A blocked operation the engine knows how to trace, named by its family
/// in the OperationRegistry (src/ops/registry.hpp). Built-in families:
/// triangular inversion (trinv, variants 1-4), triangular Sylvester solve
/// (sylv, schedules 1-16) and Cholesky factorization (chol, variants
/// 1-3); registered families extend this set without touching the api
/// layer.
struct OperationSpec {
  /// Family name in the OperationRegistry. A default-constructed spec
  /// names no family and fails validate() with ParseError.
  std::string op;
  int variant = 1;           ///< algorithmic variant, 1..variant_count
  index_t m = 0;  ///< rows (two-axis families; one-axis ones use n alone)
  index_t n = 0;
  index_t blocksize = 64;

  /// Spec for any registered family. Single-size families ignore `m`
  /// (pass 0). Whether `op` names a registered family is reported by
  /// validate(), not here.
  [[nodiscard]] static OperationSpec of(std::string op, int variant,
                                        index_t m, index_t n,
                                        index_t blocksize);

  // Sugar over of() for the built-in families (src/ops/families.cpp).
  [[nodiscard]] static OperationSpec trinv(int variant, index_t n,
                                           index_t blocksize);
  [[nodiscard]] static OperationSpec sylv(int variant, index_t m, index_t n,
                                          index_t blocksize);
  [[nodiscard]] static OperationSpec chol(int variant, index_t n,
                                          index_t blocksize);

  /// Ok when `op` names a registered family (ParseError otherwise) and
  /// variant/sizes/blocksize form a traceable operation (InvalidQuery
  /// otherwise).
  [[nodiscard]] Status validate() const;

  /// The operation's exact invocation sequence (requires validate().ok();
  /// throws dlap::lookup_error on unregistered families).
  [[nodiscard]] CallTrace trace() const;

  /// Nominal flop count of the operation (the paper's efficiency formulas
  /// use this, not the trace sum; requires validate().ok()).
  [[nodiscard]] double nominal_flops() const;

  [[nodiscard]] std::string to_string() const;
};

/// One prediction: either an operation spec (the engine traces it) or a
/// raw CallTrace supplied by the caller.
struct PredictQuery {
  std::optional<OperationSpec> spec;
  CallTrace trace;  ///< used when `spec` is empty
  std::optional<SystemSpec> system;

  [[nodiscard]] static PredictQuery of(OperationSpec spec);
  [[nodiscard]] static PredictQuery of(CallTrace trace);
};

/// Rank a set of candidate operations by predicted runtime.
struct RankQuery {
  std::vector<OperationSpec> candidates;
  std::optional<SystemSpec> system;

  /// Every variant of the prototype's family (1..variant_count, registry
  /// lookup) at the prototype's sizes. When the prototype names an
  /// unregistered family the query carries the prototype alone, and
  /// Engine::rank reports its validation status (ParseError).
  [[nodiscard]] static RankQuery all_variants(OperationSpec prototype);

  // Sugar over all_variants for the built-in families
  // (src/ops/families.cpp).
  /// All four trinv variants at (n, blocksize).
  [[nodiscard]] static RankQuery trinv_variants(index_t n, index_t blocksize);
  /// All sixteen sylv schedules at (m, n, blocksize).
  [[nodiscard]] static RankQuery sylv_variants(index_t m, index_t n,
                                               index_t blocksize);
  /// All three chol variants at (n, blocksize).
  [[nodiscard]] static RankQuery chol_variants(index_t n, index_t blocksize);
};

/// Sweep the operation's block size over {lo, lo+step, ...} <= hi and pick
/// the predicted-fastest value (the spec's own blocksize is ignored).
struct TuneQuery {
  OperationSpec spec;
  index_t lo = 16;
  index_t hi = 160;
  index_t step = 16;
  std::optional<SystemSpec> system;
};

/// Answer to a RankQuery: the full prediction per candidate plus the
/// derived ordering (fastest first, by median ticks).
struct Ranking {
  std::vector<OperationSpec> candidates;  ///< echo of the query
  std::vector<Prediction> predictions;    ///< one per candidate, in order
  std::vector<index_t> order;             ///< candidate indices, fastest first

  /// Index of the predicted-fastest candidate.
  [[nodiscard]] index_t best() const { return order.front(); }
  /// Median predicted ticks per candidate (candidate order).
  [[nodiscard]] std::vector<double> median_ticks() const;
};

/// Answer to a TuneQuery: predictions over the sweep plus the argmin.
struct TuneResult {
  std::vector<index_t> values;          ///< swept parameter values
  std::vector<Prediction> predictions;  ///< one per value, in order
  index_t best_index = 0;

  [[nodiscard]] index_t best_value() const { return values[best_index]; }
  [[nodiscard]] std::vector<double> median_ticks() const;
};

}  // namespace dlap
