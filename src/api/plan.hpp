#pragma once
// Trace -> job planning: derive the modeling jobs a query needs from its
// call trace(s), instead of making callers assemble ModelJob fields by
// hand. One job per distinct (routine, flags) pair the traces invoke, the
// domain spanning the union of the calls' size arguments -- exactly what
// examples/tune_blocksize.cpp used to wire manually.
//
// This is also the default DomainPlanner every operation family gets
// when it registers without its own (src/ops/registry.hpp); spec-based
// engine queries plan per family through plan_jobs_for_specs.

#include <string>
#include <vector>

#include "api/query.hpp"
#include "predict/trace.hpp"
#include "service/model_service.hpp"

namespace dlap {

/// Knobs of the derivation; engine-wide, not per query.
struct PlanningPolicy {
  /// Domain lower bound per size dimension (the paper samples from 8).
  index_t domain_lo = 8;
  /// Domain upper bound floor, so one tiny trace still yields a model
  /// usable for neighboring queries.
  index_t min_domain_hi = 64;
  /// Leading dimension fixed throughout generation (the paper uses 2500).
  index_t fixed_ld = 512;
  /// Sampler repetitions per measured point.
  index_t reps = 3;
  /// Out-of-cache measurements fluctuate more; extra repetitions keep the
  /// refinement from chasing noise.
  index_t out_of_cache_extra_reps = 2;
};

/// Jobs covering every kernel the traces invoke on `system`: one per
/// distinct (routine, flags), domain [domain_lo, max size seen] per
/// dimension (floored at min_domain_hi). Calls with any zero size are
/// ignored (they are skipped at prediction time too).
[[nodiscard]] std::vector<ModelJob> plan_jobs(
    const std::vector<const CallTrace*>& traces, const SystemSpec& system,
    const PlanningPolicy& policy);

[[nodiscard]] std::vector<ModelJob> plan_jobs(const CallTrace& trace,
                                              const SystemSpec& system,
                                              const PlanningPolicy& policy);

/// Bounding box of two same-dimensional regions. Used to grow a stored
/// model's domain instead of replacing it when a new query needs points
/// outside it (prevents regeneration ping-pong between disjoint domains).
[[nodiscard]] Region region_union(const Region& a, const Region& b);

}  // namespace dlap
