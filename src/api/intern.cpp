#include "api/intern.hpp"

#include <mutex>

namespace dlap {

int KeyInterner::intern(const ModelKeyRef& key) {
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const auto it = ids_.find(key);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  // Re-probe under the exclusive lock (another thread may have won), and
  // only materialize the owned key for a genuinely new id.
  const auto it = ids_.find(key);
  if (it != ids_.end()) return it->second;
  return ids_.emplace(key.materialize(), static_cast<int>(ids_.size()))
      .first->second;
}

int KeyInterner::find(const ModelKeyRef& key) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = ids_.find(key);
  return it == ids_.end() ? -1 : it->second;
}

std::size_t KeyInterner::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return ids_.size();
}

}  // namespace dlap
