#include "api/intern.hpp"

#include <mutex>

namespace dlap {

int KeyInterner::intern(const ModelKey& key) {
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const auto it = ids_.find(key);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  const auto [it, inserted] =
      ids_.emplace(key, static_cast<int>(ids_.size()));
  (void)inserted;  // a racing intern of the same key wins identically
  return it->second;
}

int KeyInterner::find(const ModelKey& key) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = ids_.find(key);
  return it == ids_.end() ? -1 : it->second;
}

std::size_t KeyInterner::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return ids_.size();
}

}  // namespace dlap
