#pragma once
// Resolver-key interning: maps full model identities (routine, backend,
// locality, flags) to dense integer ids assigned in first-seen order. Ids
// never change once assigned, so flat arrays indexed by id replace
// string-keyed map lookups on the predict hot path -- the engine resolves
// a compiled trace's keys to ids once, then prediction is pure array
// indexing.
//
// Lookups are heterogeneous: a ModelKeyRef carries string_views, so
// probing the interner from trace data never constructs a temporary
// ModelKey (four std::string copies) -- the key is only materialized when
// a genuinely new id is assigned.

#include <map>
#include <shared_mutex>

#include "modeler/modeler.hpp"

namespace dlap {

class KeyInterner {
 public:
  /// Returns the key's id, assigning the next dense id on first sight.
  /// Thread-safe; ids are stable for the interner's lifetime.
  [[nodiscard]] int intern(const ModelKeyRef& key);
  [[nodiscard]] int intern(const ModelKey& key) {
    return intern(ModelKeyRef::of(key));
  }

  /// The key's id, or -1 when it has never been interned.
  [[nodiscard]] int find(const ModelKeyRef& key) const;
  [[nodiscard]] int find(const ModelKey& key) const {
    return find(ModelKeyRef::of(key));
  }

  /// Number of ids assigned so far (ids are 0 .. size()-1).
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::shared_mutex mutex_;
  std::map<ModelKey, int, ModelKeyLess> ids_;
};

}  // namespace dlap
