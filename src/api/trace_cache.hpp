#pragma once
// The engine-level sweep compiler's cache types.
//
// A sweep (blocksize tuning, variant ranking, a predict_many burst)
// revisits the same (family, variant, sizes, blocksize) points over and
// over -- across the sweep's own iterations, across repeated user
// queries, and across overlapping queries from many users. Each point's
// work factors into three layers of decreasing volatility:
//
//   1. the call trace and its compiled form   -- fixed per sweep point,
//   2. the interned resolver ids of its keys  -- fixed per engine,
//   3. the resolved model pointers            -- valid until some model
//                                                is (re)generated.
//
// CompiledSweepPoint captures 1+2 immutably and 3 as a versioned snapshot
// (ResolvedSlots) stamped with the engine's model-cache version; when a
// generation widens any model the version moves on and the snapshot is
// rebuilt on next use (invalidation-on-regeneration). The points live in
// a sharded LRU keyed by SweepPointKey, so a repeated or overlapping
// sweep skips trace generation, compilation and interning entirely.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/lru.hpp"
#include "predict/compiled_trace.hpp"
#include "sampler/locality.hpp"

namespace dlap {

/// Identity of one sweep point: the operation coordinates plus the system
/// whose interned ids the compiled form carries.
struct SweepPointKey {
  std::string op;  ///< operation family name ("trinv", "sylv", ...)
  int variant = 0;
  index_t m = 0;
  index_t n = 0;
  index_t blocksize = 0;
  std::string backend;
  Locality locality = Locality::InCache;

  [[nodiscard]] bool operator==(const SweepPointKey&) const = default;
};

struct SweepPointKeyHash {
  [[nodiscard]] std::size_t operator()(const SweepPointKey& k) const {
    std::size_t h = std::hash<std::string>{}(k.op);
    const auto mix = [&h](std::size_t v) {
      h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    mix(static_cast<std::size_t>(k.variant));
    mix(static_cast<std::size_t>(k.m));
    mix(static_cast<std::size_t>(k.n));
    mix(static_cast<std::size_t>(k.blocksize));
    mix(std::hash<std::string>{}(k.backend));
    mix(static_cast<std::size_t>(k.locality));
    return h;
  }
};

/// Immutable snapshot of the models resolved for a compiled trace's keys,
/// stamped with the engine model-cache version it was built against.
/// `pins[k]` answers keys()[k] (null only for keys the prediction never
/// consults) and keeps it alive for the snapshot's lifetime; `models` is
/// the raw-pointer mirror the lock-free predict loop indexes.
struct ResolvedSlots {
  std::uint64_t version = 0;
  std::vector<const RoutineModel*> models;
  std::vector<std::shared_ptr<const RoutineModel>> pins;  // aligned per key

  void assign(std::size_t keys, std::uint64_t v) {
    version = v;
    models.assign(keys, nullptr);
    pins.assign(keys, nullptr);
  }
  void set(std::size_t k, std::shared_ptr<const RoutineModel> model) {
    models[k] = model.get();
    pins[k] = std::move(model);
  }
};

/// One cached sweep point: the compiled trace, its keys' interned ids
/// (stable for the owning engine's lifetime), and the current slot
/// snapshot.
class CompiledSweepPoint {
 public:
  CompiledSweepPoint(CompiledTrace trace, std::vector<int> ids)
      : trace_(std::move(trace)), ids_(std::move(ids)) {}

  [[nodiscard]] const CompiledTrace& trace() const noexcept { return trace_; }
  /// Interned resolver id per compiled key.
  [[nodiscard]] const std::vector<int>& ids() const noexcept { return ids_; }

  /// The snapshot if it is still current at `version`, nullptr otherwise
  /// (the caller then re-resolves and stores a fresh one).
  [[nodiscard]] std::shared_ptr<const ResolvedSlots> slots(
      std::uint64_t version) const {
    std::lock_guard<std::mutex> lock(mutex_);
    if (slots_ == nullptr || slots_->version != version) return nullptr;
    return slots_;
  }

  void store_slots(std::shared_ptr<const ResolvedSlots> slots) const {
    std::lock_guard<std::mutex> lock(mutex_);
    slots_ = std::move(slots);
  }

 private:
  CompiledTrace trace_;
  std::vector<int> ids_;
  mutable std::mutex mutex_;
  mutable std::shared_ptr<const ResolvedSlots> slots_;
};

using CompiledTraceCache =
    ShardedLru<SweepPointKey, CompiledSweepPoint, SweepPointKeyHash>;

}  // namespace dlap
