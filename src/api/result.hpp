#pragma once
// Non-throwing outcome types for the query API.
//
// The engine answers every query with a Result<T>: either a value or a
// Status describing why no value could be produced (missing model,
// uncovered domain, malformed call text, ...). This is the
// std::expected-style surface the facade presents instead of the
// exception-based contracts of the lower layers -- a long-lived engine
// serving many queries must be able to fail one query without unwinding
// the caller.

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/types.hpp"

namespace dlap {

enum class StatusCode : int {
  Ok = 0,
  /// The query itself is malformed (bad variant number, nonpositive
  /// sizes, empty candidate set, reversed sweep bounds).
  InvalidQuery,
  /// Textual call input could not be parsed.
  ParseError,
  /// No model exists for a (routine, flags) pair the query needs and
  /// on-demand generation is disabled.
  MissingModel,
  /// A stored model exists but its domain does not cover the query's
  /// parameter points, and on-demand generation is disabled.
  UncoveredDomain,
  /// On-demand model generation was attempted and failed.
  GenerationFailed,
  /// Unexpected failure inside the engine (bug or environment error).
  InternalError,
};

[[nodiscard]] const char* status_code_name(StatusCode code);

/// Inverse of status_code_name (nullopt for unknown names), so wire
/// protocols can round-trip codes through their textual form.
[[nodiscard]] std::optional<StatusCode> status_code_from_name(
    std::string_view name);

/// One row of the Status -> HTTP mapping. kStatusHttpTable is the single
/// source of truth the server layer renders responses from: every
/// StatusCode has exactly one row (enforced by a round-trip test), so a
/// typed failure like MissingModel or ParseError can never silently
/// collapse to a generic 500.
struct StatusHttpMapping {
  StatusCode code;
  int http_status;
};

inline constexpr StatusHttpMapping kStatusHttpTable[] = {
    {StatusCode::Ok, 200},
    {StatusCode::InvalidQuery, 422},      // well-formed but unsatisfiable
    {StatusCode::ParseError, 400},        // malformed request content
    {StatusCode::MissingModel, 404},      // no model for a needed key
    {StatusCode::UncoveredDomain, 422},   // model exists, domain too small
    {StatusCode::GenerationFailed, 503},  // transient: retry may succeed
    {StatusCode::InternalError, 500},
};

/// HTTP status for a StatusCode, via kStatusHttpTable. Only
/// InternalError (and a code missing from the table, which the round-trip
/// test rules out) maps to 500.
[[nodiscard]] int http_status_for(StatusCode code);

/// Outcome of an engine operation: a code plus a human-readable
/// diagnostic. Default-constructed Status is Ok.
struct Status {
  StatusCode code = StatusCode::Ok;
  std::string message;

  [[nodiscard]] bool ok() const noexcept { return code == StatusCode::Ok; }

  /// "UNCOVERED_DOMAIN: dgemm 'NN' needs [8,512]^3 ..." (or "OK").
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] static Status error(StatusCode code, std::string message) {
    return Status{code, std::move(message)};
  }
};

/// Either a T or the Status explaining its absence. Accessing value() on
/// an error result is a programming error (DLAP_REQUIRE).
template <class T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-*)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    DLAP_REQUIRE(!status_.ok(), "Result: Ok status carries no value");
  }

  [[nodiscard]] bool ok() const noexcept { return value_.has_value(); }
  [[nodiscard]] explicit operator bool() const noexcept { return ok(); }

  /// Ok when the result holds a value.
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  [[nodiscard]] const T& value() const {
    DLAP_REQUIRE(ok(), "Result::value on error: " + status_.to_string());
    return *value_;
  }
  [[nodiscard]] T& value() {
    DLAP_REQUIRE(ok(), "Result::value on error: " + status_.to_string());
    return *value_;
  }

  [[nodiscard]] const T& operator*() const { return value(); }
  [[nodiscard]] T& operator*() { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // Ok iff value_ holds
};

}  // namespace dlap
