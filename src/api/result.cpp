#include "api/result.hpp"

namespace dlap {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::Ok: return "OK";
    case StatusCode::InvalidQuery: return "INVALID_QUERY";
    case StatusCode::ParseError: return "PARSE_ERROR";
    case StatusCode::MissingModel: return "MISSING_MODEL";
    case StatusCode::UncoveredDomain: return "UNCOVERED_DOMAIN";
    case StatusCode::GenerationFailed: return "GENERATION_FAILED";
    case StatusCode::InternalError: return "INTERNAL_ERROR";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  std::string out = status_code_name(code);
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  return out;
}

}  // namespace dlap
