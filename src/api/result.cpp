#include "api/result.hpp"

namespace dlap {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::Ok: return "OK";
    case StatusCode::InvalidQuery: return "INVALID_QUERY";
    case StatusCode::ParseError: return "PARSE_ERROR";
    case StatusCode::MissingModel: return "MISSING_MODEL";
    case StatusCode::UncoveredDomain: return "UNCOVERED_DOMAIN";
    case StatusCode::GenerationFailed: return "GENERATION_FAILED";
    case StatusCode::InternalError: return "INTERNAL_ERROR";
  }
  return "UNKNOWN";
}

std::optional<StatusCode> status_code_from_name(std::string_view name) {
  for (const StatusHttpMapping& row : kStatusHttpTable) {
    if (name == status_code_name(row.code)) return row.code;
  }
  return std::nullopt;
}

int http_status_for(StatusCode code) {
  for (const StatusHttpMapping& row : kStatusHttpTable) {
    if (row.code == code) return row.http_status;
  }
  return 500;  // unreachable while the table stays total (tested)
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  std::string out = status_code_name(code);
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  return out;
}

}  // namespace dlap
