#include "api/plan.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace dlap {

Region region_union(const Region& a, const Region& b) {
  DLAP_REQUIRE(a.dims() == b.dims(), "region_union: dimension mismatch");
  std::vector<index_t> lo(a.lo()), hi(a.hi());
  for (int d = 0; d < a.dims(); ++d) {
    lo[static_cast<std::size_t>(d)] = std::min(a.lo(d), b.lo(d));
    hi[static_cast<std::size_t>(d)] = std::max(a.hi(d), b.hi(d));
  }
  return Region(std::move(lo), std::move(hi));
}

std::vector<ModelJob> plan_jobs(const std::vector<const CallTrace*>& traces,
                                const SystemSpec& system,
                                const PlanningPolicy& policy) {
  // Per distinct (routine, flags): the per-dimension size range the calls
  // span across all traces.
  struct SizeRange {
    std::vector<index_t> min, max;
  };
  std::map<std::pair<RoutineId, std::string>, SizeRange> ranges;
  for (const CallTrace* trace : traces) {
    for (const KernelCall& call : *trace) {
      if (call_is_degenerate(call)) continue;
      auto& range = ranges[{call.routine, call.flag_key()}];
      if (range.min.empty()) {
        range.min = call.sizes;
        range.max = call.sizes;
        continue;
      }
      DLAP_REQUIRE(range.min.size() == call.sizes.size(),
                   "plan_jobs: inconsistent call arity");
      for (std::size_t d = 0; d < range.min.size(); ++d) {
        range.min[d] = std::min(range.min[d], call.sizes[d]);
        range.max[d] = std::max(range.max[d], call.sizes[d]);
      }
    }
  }

  std::vector<ModelJob> jobs;
  jobs.reserve(ranges.size());
  for (const auto& [key, range] : ranges) {
    ModelJob job;
    job.backend = system.backend;
    job.request.routine = key.first;
    job.request.flags.assign(key.second.begin(), key.second.end());
    job.request.fixed_ld = policy.fixed_ld;
    job.request.sampler.locality = system.locality;
    job.request.sampler.reps =
        policy.reps + (system.locality == Locality::OutOfCache
                           ? policy.out_of_cache_extra_reps
                           : 0);
    std::vector<index_t> lo(range.min.size());
    std::vector<index_t> hi(range.max.size());
    for (std::size_t d = 0; d < range.min.size(); ++d) {
      // The domain must contain every traced point, so the bounds widen
      // beyond the policy's defaults when calls fall outside them.
      lo[d] = std::min(policy.domain_lo, range.min[d]);
      hi[d] = std::max(range.max[d], policy.min_domain_hi);
    }
    job.request.domain = Region(std::move(lo), std::move(hi));
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<ModelJob> plan_jobs(const CallTrace& trace,
                                const SystemSpec& system,
                                const PlanningPolicy& policy) {
  return plan_jobs(std::vector<const CallTrace*>{&trace}, system, policy);
}

}  // namespace dlap
