#include "api/engine.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "ops/registry.hpp"
#include "predict/ranking.hpp"

namespace dlap {

namespace {

// True while the current thread is executing an engine task on the
// service's ThreadPool. Fanning out again from such a thread (nested
// parallel_for_each / generate_all) can deadlock a saturated pool, so
// pool-side work generates inline and runs batches sequentially instead.
thread_local bool tls_on_engine_pool = false;

struct PoolScope {
  bool prev = tls_on_engine_pool;
  PoolScope() { tls_on_engine_pool = true; }
  ~PoolScope() { tls_on_engine_pool = prev; }
};

/// True when `model` exists and its domain covers `needed` (no constraint
/// when the trace had no non-degenerate call for the key).
bool covers_needed(const RoutineModel* model,
                   const std::optional<Region>& needed) {
  if (model == nullptr) return false;
  if (!needed.has_value()) return true;
  return model->model.domain().dims() == needed->dims() &&
         model->model.domain().covers(*needed);
}

Status internal_error(const char* where, const std::exception& e) {
  return Status::error(StatusCode::InternalError,
                       std::string(where) + ": " + e.what());
}

}  // namespace

Engine::Engine(EngineConfig config)
    : config_(std::move(config)), service_(config_.service) {}

Engine::~Engine() {
  std::unique_lock<std::mutex> lock(pending_mutex_);
  pending_cv_.wait(lock, [this] { return pending_ == 0; });
}

template <class Fn>
auto Engine::submit_tracked(Fn&& fn) -> std::future<decltype(fn())> {
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    ++pending_;
  }
  try {
    return service_.pool().submit(
        [this, fn = std::forward<Fn>(fn)]() -> decltype(fn()) {
          struct Finish {
            Engine* engine;
            ~Finish() {
              std::lock_guard<std::mutex> lock(engine->pending_mutex_);
              if (--engine->pending_ == 0) engine->pending_cv_.notify_all();
            }
          } finish{this};
          PoolScope scope;
          return fn();
        });
  } catch (...) {
    // Enqueue failed: no task will ever run the Finish guard, so roll the
    // count back or ~Engine waits forever.
    std::lock_guard<std::mutex> lock(pending_mutex_);
    if (--pending_ == 0) pending_cv_.notify_all();
    throw;
  }
}

Engine::PlanFn Engine::spec_plan(std::vector<OperationSpec> specs,
                                 const SystemSpec& system) const {
  return [specs = std::move(specs), system, policy = config_.planning] {
    return plan_jobs_for_specs(specs, system, policy);
  };
}

Status Engine::resolve(const std::vector<const CallTrace*>& traces,
                       const SystemSpec& system, Resolution* out,
                       const PlanFn& plan) noexcept {
  try {
    // --- Intern every call; gather the per-key parameter range needed. --
    struct Need {
      ModelKey key;
      std::optional<Region> needed;  // bounding box of non-degenerate calls
      std::vector<index_t> lo, hi;
    };
    std::map<int, Need> needs;
    out->ids.resize(traces.size());
    for (std::size_t t = 0; t < traces.size(); ++t) {
      out->ids[t].clear();
      out->ids[t].reserve(traces[t]->size());
      for (const KernelCall& call : *traces[t]) {
        ModelKey key{std::string(routine_name(call.routine)), system.backend,
                     system.locality, call.flag_key()};
        const int id = interner_.intern(key);
        out->ids[t].push_back(id);
        Need& need = needs[id];
        if (need.key.routine.empty()) need.key = std::move(key);
        if (call_is_degenerate(call)) continue;  // clamp-evaluated if predicted
        if (need.lo.empty()) {
          need.lo = call.sizes;
          need.hi = call.sizes;
        } else {
          for (std::size_t d = 0; d < need.lo.size(); ++d) {
            need.lo[d] = std::min(need.lo[d], call.sizes[d]);
            need.hi[d] = std::max(need.hi[d], call.sizes[d]);
          }
        }
      }
    }
    for (auto& [id, need] : needs) {
      if (!need.lo.empty()) need.needed = Region(need.lo, need.hi);
    }

    // --- Phase A: satisfy from the engine cache, then the repository. ---
    std::map<int, std::shared_ptr<const RoutineModel>> resolved;
    {
      std::shared_lock<std::shared_mutex> lock(cache_mutex_);
      for (const auto& [id, need] : needs) {
        if (static_cast<std::size_t>(id) < cache_.size() &&
            covers_needed(cache_[static_cast<std::size_t>(id)].get(),
                          need.needed)) {
          resolved[id] = cache_[static_cast<std::size_t>(id)];
        }
      }
    }
    struct PendingGen {
      int id;
      ModelJob job;
    };
    std::vector<PendingGen> to_generate;
    std::vector<ModelJob> planned;
    bool planned_built = false;
    for (const auto& [id, need] : needs) {
      if (resolved.count(id) != 0) continue;
      std::shared_ptr<const RoutineModel> stored = service_.find(need.key);
      if (covers_needed(stored.get(), need.needed)) {
        resolved[id] = std::move(stored);
        continue;
      }
      if (!need.needed.has_value()) {
        // Only degenerate calls reference this key, so no domain can be
        // planned for it. With skip_empty_calls the predict loop never
        // consults the entry; without it the missing model must surface
        // as a status, not a silent zero contribution.
        if (!config_.prediction.skip_empty_calls) {
          return Status::error(
              StatusCode::MissingModel,
              "no model for " + need.key.to_string() +
                  " and only zero-size calls reference it, so none can "
                  "be planned (skip_empty_calls is off)");
        }
        continue;
      }
      if (!config_.generate_missing) {
        if (stored == nullptr) {
          return Status::error(StatusCode::MissingModel,
                               "no model for " + need.key.to_string() +
                                   " and on-demand generation is disabled");
        }
        return Status::error(
            StatusCode::UncoveredDomain,
            "stored model " + need.key.to_string() + " covers " +
                stored->model.domain().to_string() + " but the query needs " +
                need.needed->to_string() +
                " and on-demand generation is disabled");
      }
      if (!planned_built) {
        planned = plan ? plan() : plan_jobs(traces, system, config_.planning);
        planned_built = true;
      }
      const auto it = std::find_if(
          planned.begin(), planned.end(), [&need = need](const ModelJob& j) {
            return ModelService::key_for(j) == need.key;
          });
      if (it == planned.end()) {
        return Status::error(StatusCode::InternalError,
                             "planner produced no job for " +
                                 need.key.to_string());
      }
      ModelJob job = *it;
      if (stored != nullptr &&
          stored->model.domain().dims() == job.request.domain.dims()) {
        // Grow the stored domain instead of replacing it, so queries with
        // disjoint parameter ranges do not regenerate back and forth.
        job.request.domain =
            region_union(job.request.domain, stored->model.domain());
      }
      to_generate.push_back({id, std::move(job)});
    }

    // --- Phase B: generate what is missing. One concurrent batch when on
    // the caller's thread; inline when already on a pool worker (nested
    // fan-out could deadlock a saturated pool). -------------------------
    if (!to_generate.empty()) {
      if (!tls_on_engine_pool) {
        std::vector<ModelJob> jobs;
        jobs.reserve(to_generate.size());
        for (const PendingGen& p : to_generate) jobs.push_back(p.job);
        try {
          const auto models = service_.generate_all(jobs);
          for (std::size_t i = 0; i < to_generate.size(); ++i) {
            resolved[to_generate[i].id] = models[i];
          }
        } catch (const std::exception& e) {
          return Status::error(StatusCode::GenerationFailed, e.what());
        }
      } else {
        for (const PendingGen& p : to_generate) {
          std::string error;
          auto model = service_.try_get_or_generate(p.job, &error);
          if (model == nullptr) {
            return Status::error(StatusCode::GenerationFailed,
                                 needs[p.id].key.to_string() + ": " + error);
          }
          resolved[p.id] = std::move(model);
        }
      }
    }

    // --- Phase C: verify coverage, build the flat table, warm the cache.
    out->table.assign(interner_.size(), nullptr);
    out->pins.clear();
    for (const auto& [id, need] : needs) {
      const auto it = resolved.find(id);
      if (it == resolved.end()) continue;  // degenerate-only key, no model
      if (!covers_needed(it->second.get(), need.needed)) {
        return Status::error(
            StatusCode::UncoveredDomain,
            "model " + need.key.to_string() + " covers " +
                it->second->model.domain().to_string() +
                " but the query needs " + need.needed->to_string());
      }
      out->table[static_cast<std::size_t>(id)] = it->second.get();
      out->pins.push_back(it->second);
    }
    {
      std::unique_lock<std::shared_mutex> lock(cache_mutex_);
      if (cache_.size() < out->table.size()) cache_.resize(out->table.size());
      for (const auto& [id, model] : resolved) {
        auto& slot = cache_[static_cast<std::size_t>(id)];
        // Entries only ever widen: a concurrent resolve that satisfied a
        // narrower query from the repository must not shrink a wider
        // cached model.
        if (slot == nullptr ||
            (model->model.domain().dims() == slot->model.domain().dims() &&
             model->model.domain().covers(slot->model.domain()))) {
          slot = model;
        }
      }
    }
    return {};
  } catch (const std::exception& e) {
    return internal_error("Engine::resolve", e);
  }
}

Result<Prediction> Engine::predict_trace(const CallTrace& trace,
                                         const SystemSpec& system,
                                         const PlanFn& plan) noexcept {
  try {
    Resolution res;
    if (Status s = resolve({&trace}, system, &res, plan); !s.ok()) return s;
    if (config_.query_hook) config_.query_hook();
    return predict_with_table(trace, res.ids[0], res.table,
                              config_.prediction);
  } catch (const std::exception& e) {
    return internal_error("Engine::predict", e);
  }
}

Result<Prediction> Engine::predict(const PredictQuery& query) noexcept {
  try {
    const SystemSpec system = effective_system(query.system);
    if (query.spec.has_value()) {
      if (Status s = query.spec->validate(); !s.ok()) return s;
      return predict_trace(query.spec->trace(), system,
                           spec_plan({*query.spec}, system));
    }
    return predict_trace(query.trace, system);
  } catch (const std::exception& e) {
    return internal_error("Engine::predict", e);
  }
}

Result<Ranking> Engine::rank(const RankQuery& query) noexcept {
  try {
    if (query.candidates.empty()) {
      return Status::error(StatusCode::InvalidQuery,
                           "rank: empty candidate set");
    }
    const SystemSpec system = effective_system(query.system);
    std::vector<CallTrace> traces;
    traces.reserve(query.candidates.size());
    for (const OperationSpec& spec : query.candidates) {
      if (Status s = spec.validate(); !s.ok()) return s;
      traces.push_back(spec.trace());
    }
    std::vector<const CallTrace*> ptrs;
    ptrs.reserve(traces.size());
    for (const CallTrace& t : traces) ptrs.push_back(&t);

    Resolution res;
    if (Status s = resolve(ptrs, system, &res,
                           spec_plan(query.candidates, system));
        !s.ok()) {
      return s;
    }

    Ranking out;
    out.candidates = query.candidates;
    out.predictions.reserve(traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i) {
      out.predictions.push_back(predict_with_table(
          traces[i], res.ids[i], res.table, config_.prediction));
    }
    out.order = rank_order(out.median_ticks());
    return out;
  } catch (const std::exception& e) {
    return internal_error("Engine::rank", e);
  }
}

Result<TuneResult> Engine::tune(const TuneQuery& query) noexcept {
  try {
    if (query.lo < 1 || query.step < 1 || query.hi < query.lo) {
      return Status::error(StatusCode::InvalidQuery,
                           "tune: sweep must satisfy 1 <= lo <= hi, "
                           "step >= 1");
    }
    const SystemSpec system = effective_system(query.system);
    TuneResult out;
    std::vector<OperationSpec> specs;
    std::vector<CallTrace> traces;
    for (index_t b = query.lo; b <= query.hi; b += query.step) {
      OperationSpec spec = query.spec;
      spec.blocksize = b;
      if (Status s = spec.validate(); !s.ok()) return s;
      out.values.push_back(b);
      traces.push_back(spec.trace());
      specs.push_back(std::move(spec));
    }
    std::vector<const CallTrace*> ptrs;
    ptrs.reserve(traces.size());
    for (const CallTrace& t : traces) ptrs.push_back(&t);

    Resolution res;
    if (Status s = resolve(ptrs, system, &res, spec_plan(specs, system));
        !s.ok()) {
      return s;
    }

    out.predictions.reserve(traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i) {
      out.predictions.push_back(predict_with_table(
          traces[i], res.ids[i], res.table, config_.prediction));
    }
    out.best_index = static_cast<index_t>(rank_order(out.median_ticks())[0]);
    return out;
  } catch (const std::exception& e) {
    return internal_error("Engine::tune", e);
  }
}

Result<SampleStats> Engine::predict_call(
    const std::string& call_text, std::optional<SystemSpec> system) noexcept {
  try {
    KernelCall call;
    try {
      call = parse_call(call_text);
      validate_call(call);
    } catch (const parse_error& e) {
      return Status::error(StatusCode::ParseError, e.what());
    } catch (const invalid_argument_error& e) {
      return Status::error(StatusCode::InvalidQuery, e.what());
    }
    const CallTrace trace{call};
    Result<Prediction> p = predict_trace(trace, effective_system(system));
    if (!p.ok()) return p.status();
    return p->ticks;
  } catch (const std::exception& e) {
    return internal_error("Engine::predict_call", e);
  }
}

std::vector<Result<Prediction>> Engine::predict_many(
    const std::vector<PredictQuery>& queries) {
  std::vector<Result<Prediction>> results(
      queries.size(),
      Result<Prediction>(
          Status::error(StatusCode::InternalError, "query not executed")));
  if (queries.empty()) return results;
  if (tls_on_engine_pool) {
    // Already on a pool worker (e.g. a submitted task batching further
    // queries): fanning out again could deadlock; stay sequential.
    for (std::size_t i = 0; i < queries.size(); ++i) {
      results[i] = predict(queries[i]);
    }
    return results;
  }
  service_.pool().parallel_for_each(
      static_cast<index_t>(queries.size()), [&](index_t i) {
        PoolScope scope;
        results[static_cast<std::size_t>(i)] =
            predict(queries[static_cast<std::size_t>(i)]);
      });
  return results;
}

std::future<Result<Prediction>> Engine::submit(PredictQuery query) {
  return submit_tracked(
      [this, query = std::move(query)] { return predict(query); });
}

std::future<Result<Ranking>> Engine::submit(RankQuery query) {
  return submit_tracked(
      [this, query = std::move(query)] { return rank(query); });
}

std::future<Result<TuneResult>> Engine::submit(TuneQuery query) {
  return submit_tracked(
      [this, query = std::move(query)] { return tune(query); });
}

Status Engine::prepare(const std::vector<OperationSpec>& specs,
                       std::optional<SystemSpec> system) noexcept {
  try {
    const SystemSpec sys = effective_system(system);
    std::vector<CallTrace> traces;
    traces.reserve(specs.size());
    for (const OperationSpec& spec : specs) {
      if (Status s = spec.validate(); !s.ok()) return s;
      traces.push_back(spec.trace());
    }
    std::vector<const CallTrace*> ptrs;
    ptrs.reserve(traces.size());
    for (const CallTrace& t : traces) ptrs.push_back(&t);
    Resolution res;
    return resolve(ptrs, sys, &res, spec_plan(specs, sys));
  } catch (const std::exception& e) {
    return internal_error("Engine::prepare", e);
  }
}

}  // namespace dlap
