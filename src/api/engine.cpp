#include "api/engine.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "ops/registry.hpp"
#include "predict/ranking.hpp"

namespace dlap {

namespace {

// True while the current thread is executing an engine task on the
// service's ThreadPool. Fanning out again from such a thread (nested
// parallel_for_each / generate_all) can deadlock a saturated pool, so
// pool-side work generates inline and runs batches sequentially instead.
thread_local bool tls_on_engine_pool = false;

struct PoolScope {
  bool prev = tls_on_engine_pool;
  PoolScope() { tls_on_engine_pool = true; }
  ~PoolScope() { tls_on_engine_pool = prev; }
};

/// True when `model` exists and its domain covers `needed` (no constraint
/// when the trace had no non-degenerate call for the key).
bool covers_needed(const RoutineModel* model,
                   const std::optional<Region>& needed) {
  if (model == nullptr) return false;
  if (!needed.has_value()) return true;
  return model->model.domain().dims() == needed->dims() &&
         model->model.domain().covers(*needed);
}

Status internal_error(const char* where, const std::exception& e) {
  return Status::error(StatusCode::InternalError,
                       std::string(where) + ": " + e.what());
}

}  // namespace

Engine::Engine(EngineConfig config)
    : config_(std::move(config)),
      trace_cache_(static_cast<std::size_t>(
          std::max<index_t>(0, config_.trace_cache_capacity))),
      service_(config_.service) {}

Engine::~Engine() {
  std::unique_lock<std::mutex> lock(pending_mutex_);
  pending_cv_.wait(lock, [this] { return pending_ == 0; });
}

template <class Fn>
auto Engine::submit_tracked(Fn&& fn) -> std::future<decltype(fn())> {
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    ++pending_;
  }
  try {
    return service_.pool().submit(
        [this, fn = std::forward<Fn>(fn)]() -> decltype(fn()) {
          struct Finish {
            Engine* engine;
            ~Finish() {
              std::lock_guard<std::mutex> lock(engine->pending_mutex_);
              if (--engine->pending_ == 0) engine->pending_cv_.notify_all();
            }
          } finish{this};
          PoolScope scope;
          return fn();
        });
  } catch (...) {
    // Enqueue failed: no task will ever run the Finish guard, so roll the
    // count back or ~Engine waits forever.
    std::lock_guard<std::mutex> lock(pending_mutex_);
    if (--pending_ == 0) pending_cv_.notify_all();
    throw;
  }
}

Engine::PlanFn Engine::spec_plan(std::vector<OperationSpec> specs,
                                 const SystemSpec& system) const {
  return [specs = std::move(specs), system, policy = config_.planning] {
    return plan_jobs_for_specs(specs, system, policy);
  };
}

// ------------------------------------------------------------ compilation

std::shared_ptr<CompiledSweepPoint> Engine::compile_trace(
    const CallTrace& trace, const SystemSpec& system) {
  CompiledTrace compiled = CompiledTrace::compile(trace, config_.prediction);
  std::vector<int> ids;
  ids.reserve(compiled.keys().size());
  for (const CompiledKey& key : compiled.keys()) {
    // One interner probe per DISTINCT key of the trace, not per call --
    // and a heterogeneous one: no temporary ModelKey strings.
    ids.push_back(interner_.intern(ModelKeyRef{routine_name(key.routine),
                                               system.backend,
                                               system.locality, key.flags}));
  }
  return std::make_shared<CompiledSweepPoint>(std::move(compiled),
                                              std::move(ids));
}

std::shared_ptr<CompiledSweepPoint> Engine::compile_spec(
    const OperationSpec& spec, const SystemSpec& system) {
  const SweepPointKey key{spec.op,        spec.variant,   spec.m, spec.n,
                          spec.blocksize, system.backend, system.locality};
  if (auto hit = trace_cache_.find(key)) return hit;
  auto point = compile_trace(spec.trace(), system);
  trace_cache_.insert(key, point);
  return point;
}

// ------------------------------------------------------------- resolution

Status Engine::resolve(
    const std::vector<const CompiledSweepPoint*>& points,
    const SystemSpec& system, const PlanFn& plan,
    std::vector<std::shared_ptr<const ResolvedSlots>>* slots) noexcept {
  try {
    slots->assign(points.size(), nullptr);
    const std::uint64_t version = model_version_.load(std::memory_order_acquire);

    // --- Fast path: reuse every snapshot still current at `version`. ---
    std::vector<std::size_t> stale;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (auto snap = points[i]->slots(version)) {
        (*slots)[i] = std::move(snap);
      } else {
        stale.push_back(i);
      }
    }
    if (stale.empty()) return {};

    // --- Gather the per-key parameter ranges the stale points need, ----
    // one Need per interned id, bounding boxes over UNIQUE entries only.
    struct Need {
      ModelKey key;
      std::optional<Region> needed;  // box of non-degenerate unique calls
      std::vector<index_t> lo, hi;
      bool evaluated_degenerate = false;  // degenerate entries that WILL
                                          // be clamp-evaluated (only with
                                          // skip_empty_calls off)
    };
    std::map<int, Need> needs;
    for (const std::size_t i : stale) {
      const CompiledTrace& trace = points[i]->trace();
      const std::vector<int>& ids = points[i]->ids();
      for (std::size_t k = 0; k < trace.keys().size(); ++k) {
        Need& need = needs[ids[k]];
        if (need.key.routine.empty()) {
          const CompiledKey& ck = trace.keys()[k];
          need.key = ModelKey{routine_name(ck.routine), system.backend,
                              system.locality, ck.flags};
        }
        for (const std::uint32_t e : trace.entries_of(static_cast<int>(k))) {
          const CompiledCall& call = trace.entries()[e];
          if (call.degenerate) {
            need.evaluated_degenerate = true;  // clamp-evaluated if predicted
            continue;
          }
          if (need.lo.empty()) {
            need.lo = call.sizes;
            need.hi = call.sizes;
          } else {
            for (std::size_t d = 0; d < need.lo.size(); ++d) {
              need.lo[d] = std::min(need.lo[d], call.sizes[d]);
              need.hi[d] = std::max(need.hi[d], call.sizes[d]);
            }
          }
        }
      }
    }
    for (auto& [id, need] : needs) {
      if (!need.lo.empty()) need.needed = Region(need.lo, need.hi);
    }

    // --- Phase A: satisfy from the engine cache, then the repository. ---
    std::map<int, std::shared_ptr<const RoutineModel>> resolved;
    {
      std::shared_lock<std::shared_mutex> lock(cache_mutex_);
      for (const auto& [id, need] : needs) {
        if (static_cast<std::size_t>(id) < cache_.size() &&
            covers_needed(cache_[static_cast<std::size_t>(id)].get(),
                          need.needed)) {
          resolved[id] = cache_[static_cast<std::size_t>(id)];
        }
      }
    }
    struct PendingGen {
      int id;
      ModelJob job;
    };
    std::vector<PendingGen> to_generate;
    std::vector<ModelJob> planned;
    bool planned_built = false;
    for (const auto& [id, need] : needs) {
      if (resolved.count(id) != 0) continue;
      std::shared_ptr<const RoutineModel> stored = service_.find(need.key);
      if (covers_needed(stored.get(), need.needed)) {
        // With no needed region (degenerate-only key) any stored model
        // covers: its clamp-evaluation answers the zero-size calls.
        resolved[id] = std::move(stored);
        continue;
      }
      if (!need.needed.has_value()) {
        // Only degenerate calls reference this key, so no domain can be
        // planned for it. With skip_empty_calls such calls never compile
        // into entries; without it the missing model must surface as a
        // status, not a silent zero contribution.
        if (need.evaluated_degenerate) {
          return Status::error(
              StatusCode::MissingModel,
              "no model for " + need.key.to_string() +
                  " and only zero-size calls reference it, so none can "
                  "be planned (skip_empty_calls is off)");
        }
        continue;
      }
      if (!config_.generate_missing) {
        if (stored == nullptr) {
          return Status::error(StatusCode::MissingModel,
                               "no model for " + need.key.to_string() +
                                   " and on-demand generation is disabled");
        }
        return Status::error(
            StatusCode::UncoveredDomain,
            "stored model " + need.key.to_string() + " covers " +
                stored->model.domain().to_string() + " but the query needs " +
                need.needed->to_string() +
                " and on-demand generation is disabled");
      }
      if (!planned_built) {
        planned = plan();
        planned_built = true;
      }
      const auto it = std::find_if(
          planned.begin(), planned.end(), [&need = need](const ModelJob& j) {
            return ModelService::key_for(j) == need.key;
          });
      if (it == planned.end()) {
        return Status::error(StatusCode::InternalError,
                             "planner produced no job for " +
                                 need.key.to_string());
      }
      ModelJob job = *it;
      if (stored != nullptr &&
          stored->model.domain().dims() == job.request.domain.dims()) {
        // Grow the stored domain instead of replacing it, so queries with
        // disjoint parameter ranges do not regenerate back and forth.
        job.request.domain =
            region_union(job.request.domain, stored->model.domain());
      }
      to_generate.push_back({id, std::move(job)});
    }

    // --- Phase B: generate what is missing. One concurrent batch when on
    // the caller's thread; inline when already on a pool worker (nested
    // fan-out could deadlock a saturated pool). -------------------------
    if (!to_generate.empty()) {
      if (!tls_on_engine_pool) {
        std::vector<ModelJob> jobs;
        jobs.reserve(to_generate.size());
        for (const PendingGen& p : to_generate) jobs.push_back(p.job);
        try {
          const auto models = service_.generate_all(jobs);
          for (std::size_t i = 0; i < to_generate.size(); ++i) {
            resolved[to_generate[i].id] = models[i];
          }
        } catch (const std::exception& e) {
          return Status::error(StatusCode::GenerationFailed, e.what());
        }
      } else {
        for (const PendingGen& p : to_generate) {
          std::string error;
          auto model = service_.try_get_or_generate(p.job, &error);
          if (model == nullptr) {
            return Status::error(StatusCode::GenerationFailed,
                                 needs[p.id].key.to_string() + ": " + error);
          }
          resolved[p.id] = std::move(model);
        }
      }
    }

    // --- Phase C: verify coverage, warm the model cache, stamp slots. --
    for (const auto& [id, need] : needs) {
      const auto it = resolved.find(id);
      if (it == resolved.end()) continue;  // degenerate-only key, no model
      if (!covers_needed(it->second.get(), need.needed)) {
        return Status::error(
            StatusCode::UncoveredDomain,
            "model " + need.key.to_string() + " covers " +
                it->second->model.domain().to_string() +
                " but the query needs " + need.needed->to_string());
      }
    }
    bool changed = false;
    {
      std::unique_lock<std::shared_mutex> lock(cache_mutex_);
      if (cache_.size() < interner_.size()) cache_.resize(interner_.size());
      for (const auto& [id, model] : resolved) {
        auto& slot = cache_[static_cast<std::size_t>(id)];
        if (slot == model) continue;  // same pointer: nothing to invalidate
        // Entries only ever widen: a concurrent resolve that satisfied a
        // narrower query from the repository must not shrink a wider
        // cached model.
        if (slot == nullptr ||
            (model->model.domain().dims() == slot->model.domain().dims() &&
             model->model.domain().covers(slot->model.domain()))) {
          slot = model;
          changed = true;
        }
      }
      // The bump happens under the SAME lock as the writes: any reader
      // that observes a changed entry through the lock also observes the
      // moved version, so its freshness re-check below cannot miss it.
      if (changed) model_version_.fetch_add(1, std::memory_order_acq_rel);
    }

    // --- Build the snapshots from the verified Phase A/B models. -------
    // Snapshots are stamped with the PRE-resolution version: when this
    // resolve (or a concurrent one) changed models, they self-expire and
    // the next query performs one cheap all-Phase-A refresh, then
    // stabilizes. Stamping the post-change version instead could mask a
    // concurrent generation's update forever.
    const bool version_moved =
        changed ||
        model_version_.load(std::memory_order_acquire) != version;
    for (const std::size_t i : stale) {
      const std::vector<int>& ids = points[i]->ids();
      auto snap = std::make_shared<ResolvedSlots>();
      snap->assign(ids.size(), version);
      for (std::size_t k = 0; k < ids.size(); ++k) {
        const auto it = resolved.find(ids[k]);
        if (it == resolved.end()) continue;  // degenerate-only key
        snap->set(k, it->second);
      }
      // With a moved version this snapshot is only the base for the
      // upgrade pass below, which builds (and stores) the final one.
      if (!version_moved) points[i]->store_slots(snap);
      (*slots)[i] = std::move(snap);
    }

    // When some model changed (here or on a concurrent thread) while this
    // resolve was reading, the per-point results could mix model
    // generations within ONE query (e.g. a ranking comparing candidates
    // resolved before and after a regeneration). Upgrade every point's
    // slots in a single locked pass over the cache: a slot moves to the
    // cached model ONLY when that model covers the verified one's domain
    // (hence the point's needs) -- a concurrently generated model for a
    // disjoint range must not displace the model the point was verified
    // against.
    if (version_moved) {
      std::shared_lock<std::shared_mutex> lock(cache_mutex_);
      for (std::size_t i = 0; i < points.size(); ++i) {
        const std::vector<int>& ids = points[i]->ids();
        const ResolvedSlots& base = *(*slots)[i];
        auto snap = std::make_shared<ResolvedSlots>();
        snap->assign(ids.size(), version);
        for (std::size_t k = 0; k < ids.size(); ++k) {
          const auto id = static_cast<std::size_t>(ids[k]);
          std::shared_ptr<const RoutineModel> use = base.pins[k];
          if (id < cache_.size() && cache_[id] != nullptr &&
              use != nullptr && cache_[id] != use &&
              cache_[id]->model.domain().dims() ==
                  use->model.domain().dims() &&
              cache_[id]->model.domain().covers(use->model.domain())) {
            use = cache_[id];
          }
          snap->set(k, std::move(use));
        }
        points[i]->store_slots(snap);
        (*slots)[i] = std::move(snap);
      }
    }
    return {};
  } catch (const std::exception& e) {
    return internal_error("Engine::resolve", e);
  }
}

// ---------------------------------------------------------------- queries

Result<Prediction> Engine::predict(const PredictQuery& query) noexcept {
  try {
    const SystemSpec system = effective_system(query.system);
    std::shared_ptr<CompiledSweepPoint> point;
    PlanFn plan;
    if (query.spec.has_value()) {
      if (Status s = query.spec->validate(); !s.ok()) return s;
      point = compile_spec(*query.spec, system);
      plan = spec_plan({*query.spec}, system);
    } else {
      point = compile_trace(query.trace, system);
      plan = [trace = &query.trace, system, policy = config_.planning] {
        return plan_jobs(*trace, system, policy);
      };
    }
    std::vector<std::shared_ptr<const ResolvedSlots>> slots;
    if (Status s = resolve({point.get()}, system, plan, &slots); !s.ok()) {
      return s;
    }
    if (config_.query_hook) config_.query_hook();
    return point->trace().predict(slots[0]->models);
  } catch (const std::exception& e) {
    return internal_error("Engine::predict", e);
  }
}

Result<Ranking> Engine::rank(const RankQuery& query) noexcept {
  try {
    if (query.candidates.empty()) {
      return Status::error(StatusCode::InvalidQuery,
                           "rank: empty candidate set");
    }
    const SystemSpec system = effective_system(query.system);
    std::vector<std::shared_ptr<CompiledSweepPoint>> points;
    points.reserve(query.candidates.size());
    for (const OperationSpec& spec : query.candidates) {
      if (Status s = spec.validate(); !s.ok()) return s;
      points.push_back(compile_spec(spec, system));
    }
    std::vector<const CompiledSweepPoint*> ptrs;
    ptrs.reserve(points.size());
    for (const auto& p : points) ptrs.push_back(p.get());

    std::vector<std::shared_ptr<const ResolvedSlots>> slots;
    if (Status s = resolve(ptrs, system, spec_plan(query.candidates, system),
                           &slots);
        !s.ok()) {
      return s;
    }

    Ranking out;
    out.candidates = query.candidates;
    out.predictions.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      out.predictions.push_back(points[i]->trace().predict(slots[i]->models));
    }
    out.order = rank_order(out.median_ticks());
    return out;
  } catch (const std::exception& e) {
    return internal_error("Engine::rank", e);
  }
}

Result<TuneResult> Engine::tune(const TuneQuery& query) noexcept {
  try {
    if (query.lo < 1 || query.step < 1 || query.hi < query.lo) {
      return Status::error(StatusCode::InvalidQuery,
                           "tune: sweep must satisfy 1 <= lo <= hi, "
                           "step >= 1");
    }
    const SystemSpec system = effective_system(query.system);
    TuneResult out;
    std::vector<OperationSpec> specs;
    std::vector<std::shared_ptr<CompiledSweepPoint>> points;
    for (index_t b = query.lo; b <= query.hi; b += query.step) {
      OperationSpec spec = query.spec;
      spec.blocksize = b;
      if (Status s = spec.validate(); !s.ok()) return s;
      out.values.push_back(b);
      points.push_back(compile_spec(spec, system));
      specs.push_back(std::move(spec));
    }
    std::vector<const CompiledSweepPoint*> ptrs;
    ptrs.reserve(points.size());
    for (const auto& p : points) ptrs.push_back(p.get());

    std::vector<std::shared_ptr<const ResolvedSlots>> slots;
    if (Status s = resolve(ptrs, system, spec_plan(specs, system), &slots);
        !s.ok()) {
      return s;
    }

    out.predictions.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      out.predictions.push_back(points[i]->trace().predict(slots[i]->models));
    }
    out.best_index = static_cast<index_t>(rank_order(out.median_ticks())[0]);
    return out;
  } catch (const std::exception& e) {
    return internal_error("Engine::tune", e);
  }
}

Result<SampleStats> Engine::predict_call(
    const std::string& call_text, std::optional<SystemSpec> system) noexcept {
  try {
    KernelCall call;
    try {
      call = parse_call(call_text);
      validate_call(call);
    } catch (const parse_error& e) {
      return Status::error(StatusCode::ParseError, e.what());
    } catch (const invalid_argument_error& e) {
      return Status::error(StatusCode::InvalidQuery, e.what());
    }
    PredictQuery query;
    query.trace = CallTrace{std::move(call)};
    query.system = system;
    Result<Prediction> p = predict(query);
    if (!p.ok()) return p.status();
    return p->ticks;
  } catch (const std::exception& e) {
    return internal_error("Engine::predict_call", e);
  }
}

std::vector<Result<Prediction>> Engine::predict_many(
    const std::vector<PredictQuery>& queries) {
  std::vector<Result<Prediction>> results(
      queries.size(),
      Result<Prediction>(
          Status::error(StatusCode::InternalError, "query not executed")));
  if (queries.empty()) return results;
  if (tls_on_engine_pool) {
    // Already on a pool worker (e.g. a submitted task batching further
    // queries): fanning out again could deadlock; stay sequential.
    for (std::size_t i = 0; i < queries.size(); ++i) {
      results[i] = predict(queries[i]);
    }
    return results;
  }
  service_.pool().parallel_for_each(
      static_cast<index_t>(queries.size()), [&](index_t i) {
        PoolScope scope;
        results[static_cast<std::size_t>(i)] =
            predict(queries[static_cast<std::size_t>(i)]);
      });
  return results;
}

std::future<Result<Prediction>> Engine::submit(PredictQuery query) {
  return submit_tracked(
      [this, query = std::move(query)] { return predict(query); });
}

std::future<Result<Ranking>> Engine::submit(RankQuery query) {
  return submit_tracked(
      [this, query = std::move(query)] { return rank(query); });
}

std::future<Result<TuneResult>> Engine::submit(TuneQuery query) {
  return submit_tracked(
      [this, query = std::move(query)] { return tune(query); });
}

Status Engine::prepare(const std::vector<OperationSpec>& specs,
                       std::optional<SystemSpec> system,
                       PrepareReport* report) noexcept {
  try {
    const SystemSpec sys = effective_system(system);
    // Stats recorded after this stamp were caused by this call (the
    // service stamps every generate/reuse record with a fresh epoch).
    // The attribution is best-effort under concurrent engine use: a
    // record another thread stamps while this prepare runs (overlapping
    // prepare, or on-demand generation of a shared key) is claimed by
    // whichever report reads it -- acceptable for a warm-up diagnostic.
    const std::uint64_t epoch0 = service_.stats_epoch();
    std::vector<std::shared_ptr<CompiledSweepPoint>> points;
    points.reserve(specs.size());
    for (const OperationSpec& spec : specs) {
      if (Status s = spec.validate(); !s.ok()) return s;
      points.push_back(compile_spec(spec, sys));
    }
    std::vector<const CompiledSweepPoint*> ptrs;
    ptrs.reserve(points.size());
    for (const auto& p : points) ptrs.push_back(p.get());

    // Memoize the plan: resolve computes it only when models are
    // missing, and the report loop below reuses that same computation
    // (planning re-traces every spec -- never pay for it twice).
    auto memo = std::make_shared<std::optional<std::vector<ModelJob>>>();
    const PlanFn plan = [memo, inner = spec_plan(specs, sys)] {
      if (!memo->has_value()) *memo = inner();
      return **memo;
    };
    std::vector<std::shared_ptr<const ResolvedSlots>> slots;
    Status status = resolve(ptrs, sys, plan, &slots);
    if (!status.ok() || report == nullptr) return status;

    // Per-key accounting: every key the specs plan to, attributed to
    // this call when its stats record is newer than epoch0 (otherwise
    // the key was satisfied from the engine cache / an earlier run).
    report->keys.clear();
    std::set<ModelKey> seen;
    for (const ModelJob& job : plan()) {
      const ModelKey key = ModelService::key_for(job);
      if (!seen.insert(key).second) continue;
      PrepareReport::Key entry;
      entry.key = key;
      if (const auto stats = service_.generation_stats(key);
          stats.has_value() && stats->epoch > epoch0 && stats->generated) {
        entry.generated = true;
        entry.unique_samples = stats->unique_samples;
        entry.points_measured = stats->points_measured;
        entry.points_from_memory = stats->points_from_memory;
        entry.points_from_disk = stats->points_from_disk;
        entry.wall_ms = stats->wall_ms;
      }
      // Provenance of whatever model now serves the key (reused keys
      // included): text file, binary container, or this-process build.
      if (const auto model = service_.find(key)) {
        entry.source = model->source;
      }
      report->keys.push_back(std::move(entry));
    }
    return status;
  } catch (const std::exception& e) {
    return internal_error("Engine::prepare", e);
  }
}

Status Engine::reload(const std::vector<OperationSpec>& specs,
                      std::optional<SystemSpec> system,
                      PrepareReport* report) noexcept {
  try {
    service_.reload_container();
  } catch (const std::exception& e) {
    // Corrupt/unreadable container file: serving continues on the
    // previous attachment, but the operator must know the swap failed.
    return Status::error(StatusCode::InternalError,
                         std::string("Engine::reload: ") + e.what());
  }
  try {
    {
      std::unique_lock<std::shared_mutex> lock(cache_mutex_);
      for (auto& slot : cache_) slot.reset();
      // Same-lock bump as resolve(): every ResolvedSlots snapshot
      // stamped before this expires, so the next query per sweep point
      // re-resolves against the reloaded repository.
      model_version_.fetch_add(1, std::memory_order_acq_rel);
    }
    if (!specs.empty()) return prepare(specs, system, report);
    return {};
  } catch (const std::exception& e) {
    return internal_error("Engine::reload", e);
  }
}

index_t PrepareReport::keys_generated() const noexcept {
  index_t n = 0;
  for (const Key& k : keys) n += k.generated ? 1 : 0;
  return n;
}

index_t PrepareReport::keys_reused() const noexcept {
  return static_cast<index_t>(keys.size()) - keys_generated();
}

index_t PrepareReport::keys_from_container() const noexcept {
  index_t n = 0;
  for (const Key& k : keys) n += k.from_container() ? 1 : 0;
  return n;
}

index_t PrepareReport::points_measured() const noexcept {
  index_t n = 0;
  for (const Key& k : keys) n += k.points_measured;
  return n;
}

index_t PrepareReport::points_from_memory() const noexcept {
  index_t n = 0;
  for (const Key& k : keys) n += k.points_from_memory;
  return n;
}

index_t PrepareReport::points_from_disk() const noexcept {
  index_t n = 0;
  for (const Key& k : keys) n += k.points_from_disk;
  return n;
}

}  // namespace dlap
