// Fig III.6 -- Model Expansion for dtrsm under four configurations:
//   (a) eps=10%, direction NE (away from origin), s_ini=64
//   (b) eps=10%, direction SW (toward origin),   s_ini=64
//   (c) eps= 5%, direction SW,                   s_ini=64
//   (d) eps= 5%, direction SW,                   s_ini=32
// For each: the region map (bounds + per-region error) plus the sample
// count and average error the paper discusses.
//
// Expected shape: SW expansion needs fewer samples than NE at equal
// accuracy; tightening eps raises the sample count and lowers the error.

#include <map>
#include <memory>

#include "support/bench_util.hpp"

namespace {

// Memoizes the underlying measurements across the four generation runs;
// per-run unique-sample accounting is unaffected (each strategy counts
// its own distinct points), only wall-clock time is saved.
dlap::MeasureFn memoize(dlap::MeasureFn fn) {
  auto cache = std::make_shared<
      std::map<std::vector<dlap::index_t>, dlap::SampleStats>>();
  return [cache, fn = std::move(fn)](const std::vector<dlap::index_t>& p) {
    auto it = cache->find(p);
    if (it == cache->end()) it = cache->emplace(p, fn(p)).first;
    return it->second;
  };
}

}  // namespace

int main() {
  using namespace dlap;
  using namespace dlap::bench;
  const Scales sc = current_scales();
  const index_t hi = sc.model_max_2d;

  ModelingRequest req;
  req.routine = RoutineId::Trsm;
  req.flags = {'L', 'L', 'N', 'N'};
  req.domain = Region({8, 8}, {hi, hi});
  req.fixed_ld = 2500;
  req.sampler.reps = sc.reps;

  Modeler modeler(backend_instance(system_a()));
  const MeasureFn measure = memoize(modeler.make_measure_fn(req));

  struct Config {
    const char* label;
    double eps;
    ExpansionConfig::Direction dir;
    index_t sini;
  };
  const Config configs[] = {
      {"a", 0.10, ExpansionConfig::Direction::AwayFromOrigin, 64},
      {"b", 0.10, ExpansionConfig::Direction::TowardOrigin, 64},
      {"c", 0.05, ExpansionConfig::Direction::TowardOrigin, 64},
      {"d", 0.05, ExpansionConfig::Direction::TowardOrigin, 32},
  };

  print_comment("Fig III.6: Model Expansion for dtrsm(L,L,N,N) on [8," +
                std::to_string(hi) + "]^2, in-cache, backend " + system_a());
  for (const Config& c : configs) {
    ExpansionConfig cfg;
    cfg.base.error_bound = c.eps;
    cfg.base.degree = 3;
    cfg.direction = c.dir;
    cfg.initial_size = c.sini;
    const GenerationResult gen =
        generate_model_expansion(req.domain, measure, cfg);

    print_comment(std::string("config (") + c.label + "): eps=" +
                  std::to_string(100 * c.eps) + "% dir=" +
                  (c.dir == ExpansionConfig::Direction::TowardOrigin ? "SW"
                                                                     : "NE") +
                  " s_ini=" + std::to_string(c.sini));
    print_comment("  samples=" + std::to_string(gen.unique_samples) +
                  " regions=" + std::to_string(gen.model.pieces().size()) +
                  " avg_error=" + std::to_string(100 * gen.average_error) +
                  "%");
    print_header({"m_lo", "m_hi", "n_lo", "n_hi", "fit_err", "mean_err"});
    for (const RegionModel& p : gen.model.pieces()) {
      print_row({static_cast<double>(p.region.lo(0)),
                 static_cast<double>(p.region.hi(0)),
                 static_cast<double>(p.region.lo(1)),
                 static_cast<double>(p.region.hi(1)), p.fit_error,
                 p.mean_error});
    }
  }
  return 0;
}
