// micro_generate -- cold vs. warm model generation through the batched
// measurement scheduler.
//
// Generation wall clock is dominated by *measurement latency*: the
// sampler waits on repeated timed kernel executions for every sampled
// point. The step machines emit a region's whole sample grid as one
// batch, and the MeasurementScheduler fans each batch out across the
// ThreadPool (deterministic sources only -- real timing stays serialized
// per backend instance), so generation overlaps measurement latency both
// *within* one key's batches and *across* concurrently generated keys.
// As in micro_service, the measurement source is a deterministic cost
// surface with a fixed per-point latency, so the speedup reported is the
// scheduling overlap, independent of host core count and timing noise.
//
// Also exercised: the persistent sample repository. A "warm" run points
// a fresh service (empty model repository) at the sample directory a
// cold run populated -- it must regenerate every model with ZERO new
// measurements, entirely from the journals, and produce bit-identical
// model files.
//
// Gates (nonzero exit on failure):
//   - cold generation at 4 workers >= 2x faster than the 1-worker
//     sequential reference path (generate_all_sequential: one thread,
//     every point measured serially),
//   - warm regeneration measures 0 points (all from disk),
//   - every run produces bit-identical model repository files.
//
// The concurrent 1-worker row is informational: parallel_for_each's
// calling thread participates, so even "1 worker" overlaps two
// measurements and the 4-vs-1-concurrent ratio is capped at 5/2.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "service/model_service.hpp"
#include "support/bench_util.hpp"

namespace {

using namespace dlap;
namespace fs = std::filesystem;

constexpr auto kPointLatency = std::chrono::microseconds(700);

MeasureFn latency_bound_measure(double offset) {
  return [offset](const std::vector<index_t>& point) {
    std::this_thread::sleep_for(kPointLatency);  // the "sampling" cost
    double cost = 100.0 + offset;
    for (index_t x : point) {
      const double v = static_cast<double>(x);
      cost += 2.0 * v + 0.03 * v * v;
    }
    SampleStats s;
    s.min = cost * 0.95;
    s.median = cost;
    s.mean = cost * 1.01;
    s.max = cost * 1.10;
    s.stddev = cost * 0.02;
    s.count = 5;
    return s;
  };
}

std::vector<ModelJob> benchmark_jobs() {
  std::vector<ModelJob> jobs;
  const Region d2({8, 8}, {192, 192});
  const char flag_sets[6][4] = {{'L', 'L', 'N', 'N'}, {'L', 'L', 'T', 'N'},
                                {'L', 'U', 'N', 'N'}, {'R', 'L', 'N', 'N'},
                                {'R', 'L', 'T', 'N'}, {'R', 'U', 'N', 'N'}};
  for (const auto& f : flag_sets) {
    ModelJob job;
    job.backend = "blocked";
    job.request.routine = RoutineId::Trsm;
    job.request.flags.assign(f, f + 4);
    job.request.domain = d2;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

ServiceConfig config_for(const fs::path& repo_dir, const fs::path& sample_dir,
                         index_t workers) {
  ServiceConfig cfg;
  cfg.repository_dir = repo_dir;
  cfg.sample_dir = sample_dir;
  cfg.workers = workers;
  // Larger grids = larger per-region batches, so the in-batch fan-out
  // (not just the cross-key one) carries weight in the measurement.
  cfg.refinement.base.grid_points_per_dim = 8;
  cfg.measure_factory = [](const ModelJob& job) {
    double h = 0.0;
    for (char c : ModelService::key_for(job).to_string()) {
      h = 0.9 * h + static_cast<double>(c);
    }
    return latency_bound_measure(h);
  };
  return cfg;
}

std::map<std::string, std::string> model_files(const fs::path& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".model") continue;
    std::ifstream in(entry.path());
    std::ostringstream buf;
    buf << in.rdbuf();
    files[entry.path().filename().string()] = buf.str();
  }
  return files;
}

struct RunResult {
  double wall_ms = 0.0;
  index_t measured = 0;
  index_t from_disk = 0;
  std::map<std::string, std::string> files;
};

// One generation run: fresh model repository; the sample directory is
// preserved between cold and warm runs of one `tag`.
RunResult run(const std::string& tag, index_t workers, bool concurrent,
              bool keep_samples) {
  const fs::path base =
      fs::temp_directory_path() / ("dlap_micro_generate_" + tag);
  const fs::path repo_dir = base / "models";
  const fs::path sample_dir = base / "samples";
  fs::remove_all(repo_dir);
  if (!keep_samples) fs::remove_all(sample_dir);

  ModelService service(config_for(repo_dir, sample_dir, workers));
  const std::vector<ModelJob> jobs = benchmark_jobs();

  const auto t0 = std::chrono::steady_clock::now();
  const auto models = concurrent ? service.generate_all(jobs)
                                 : service.generate_all_sequential(jobs);
  const auto t1 = std::chrono::steady_clock::now();
  if (models.size() != jobs.size()) std::abort();

  RunResult result;
  result.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  for (const ModelJob& job : jobs) {
    const auto stats = service.generation_stats(ModelService::key_for(job));
    if (!stats.has_value()) std::abort();
    result.measured += stats->points_measured;
    result.from_disk += stats->points_from_disk;
  }
  result.files = model_files(repo_dir);
  return result;
}

}  // namespace

int main() {
  using namespace dlap::bench;

  print_comment("micro_generate: batched generation of 6 model keys, "
                "latency-bound synthetic sampling (" +
                std::to_string(kPointLatency.count()) +
                "us/point), persistent sample repository");
  print_header({"workers", "wall_ms", "speedup", "measured", "from_disk"});

  // 1-worker sequential reference: one thread, every point serial. This
  // is the bit-identity baseline AND the speedup denominator.
  const RunResult seq = run("seq", 1, /*concurrent=*/false,
                            /*keep_samples=*/false);
  print_row(0, {seq.wall_ms, 1.0, static_cast<double>(seq.measured),
                static_cast<double>(seq.from_disk)});

  // Cold, 1 worker, concurrent path (informational: the caller
  // participates, so even this overlaps two measurements).
  const RunResult cold1 = run("w1", 1, /*concurrent=*/true,
                              /*keep_samples=*/false);
  print_row(1, {cold1.wall_ms, seq.wall_ms / cold1.wall_ms,
                static_cast<double>(cold1.measured),
                static_cast<double>(cold1.from_disk)});

  // Cold, 4 workers: cross-key and in-batch overlap.
  const RunResult cold4 = run("w4", 4, /*concurrent=*/true,
                              /*keep_samples=*/false);
  const double speedup = seq.wall_ms / cold4.wall_ms;
  print_row(4, {cold4.wall_ms, speedup, static_cast<double>(cold4.measured),
                static_cast<double>(cold4.from_disk)});

  // Warm, 4 workers: fresh model repository, reusing w4's sample
  // journals -- zero measurements allowed.
  const RunResult warm = run("w4", 4, /*concurrent=*/true,
                             /*keep_samples=*/true);
  print_row(44, {warm.wall_ms, seq.wall_ms / warm.wall_ms,
                 static_cast<double>(warm.measured),
                 static_cast<double>(warm.from_disk)});

  const bool identical = cold1.files == cold4.files &&
                         cold1.files == seq.files &&
                         cold1.files == warm.files &&
                         !cold1.files.empty();
  const bool warm_ok = warm.measured == 0 && warm.from_disk > 0;
  const bool speedup_ok = speedup >= 2.0;

  print_comment(std::string("model files bit-identical across runs: ") +
                (identical ? "yes" : "NO"));
  print_comment("warm regeneration measured " +
                std::to_string(warm.measured) + " points (" +
                std::to_string(warm.from_disk) + " from disk)" +
                (warm_ok ? " (PASS)" : " (FAIL, need 0 measured)"));
  print_comment("cold speedup, 4 workers vs 1-worker sequential: " +
                std::to_string(speedup) +
                (speedup_ok ? " (PASS, >= 2x)" : " (FAIL, need >= 2x)"));

  const bool pass = identical && warm_ok && speedup_ok;
  BenchJson json;
  json.set("bench", std::string("micro_generate"));
  json.set("cold_sequential_1_worker_ms", seq.wall_ms);
  json.set("cold_1_worker_concurrent_ms", cold1.wall_ms);
  json.set("cold_4_workers_ms", cold4.wall_ms);
  json.set("cold_speedup_4_workers_vs_sequential", speedup);
  json.set("warm_4_workers_ms", warm.wall_ms);
  json.set("warm_points_measured", warm.measured);
  json.set("warm_points_from_disk", warm.from_disk);
  json.set("deterministic", identical);
  json.set("pass", pass);
  json.write("BENCH_generate.json");

  // Leave no state behind.
  for (const char* tag : {"w1", "w4", "seq"}) {
    fs::remove_all(fs::temp_directory_path() /
                   (std::string("dlap_micro_generate_") + tag));
  }
  return pass ? 0 : 1;
}
