// Fig III.2 -- dgemm: ticks as a function of the size argument
// (m = n = k = ld, multiples of 8), for the three backends.
//
// Expected shape: cubic growth with implementation-specific jumps/kinks at
// blocking boundaries -- the structure that defeats single-polynomial
// models (see fig_iii3).

#include "support/bench_util.hpp"

int main() {
  using namespace dlap;
  using namespace dlap::bench;
  const Scales sc = current_scales();

  print_comment("Fig III.2: dgemm ticks vs n (square, ld = n)");
  print_header({"n", "naive", "blocked", "packed"});

  for (index_t n = 8; n <= sc.sweep_max; n += sc.sweep_step) {
    KernelCall call;
    call.routine = RoutineId::Gemm;
    call.flags = {'N', 'N'};
    call.sizes = {n, n, n};
    call.scalars = {1.0, 1.0};
    call.leads = {n, n, n};

    std::vector<double> row;
    for (const std::string& backend : library_backends()) {
      SamplerConfig cfg;
      cfg.reps = sc.reps;
      Sampler sampler(backend_instance(backend), cfg);
      row.push_back(sampler.measure(call).median);
    }
    print_row(static_cast<double>(n), row);
  }
  return 0;
}
