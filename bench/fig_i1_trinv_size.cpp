// Fig I.1 -- Inversion of a lower triangular matrix: measured efficiency
// as a function of the problem size, for the four algorithmic variants
// (block size fixed to 96, single backend = "system A").
//
// Expected shape (paper): the variants separate clearly; variant 4 is
// significantly slower than the rest across all sizes.

#include "support/bench_util.hpp"

int main() {
  using namespace dlap;
  using namespace dlap::bench;
  const Scales sc = current_scales();
  const std::string backend = system_a();

  print_comment("Fig I.1: trinv efficiency vs matrix size n (blocksize " +
                std::to_string(sc.blocksize) + ", backend " + backend + ")");
  print_comment("efficiency = trinv_flops(n) / (ticks * fips), fips " +
                std::to_string(machine_info().flops_per_tick));
  print_header({"n", "variant1", "variant2", "variant3", "variant4"});

  const index_t step = sc.paper ? 64 : 32;
  for (index_t n = step; n <= sc.sweep_max; n += step) {
    std::vector<double> eff;
    for (int v = 1; v <= kTrinvVariantCount; ++v) {
      const double ticks =
          measure_trinv_ticks(backend, v, n, sc.blocksize, sc.reps);
      eff.push_back(trinv_efficiency(n, ticks));
    }
    print_row(static_cast<double>(n), eff);
  }

  print_comment("shape check: variant 4 should be slowest at the largest n");
  return 0;
}
