// Fig IV.3 -- trinv predictions and observations on a second system.
// The paper moves from Harpertown to Sandy Bridge and regenerates all
// models; we point the same engine queries at the second backend
// configuration ("packed"), whose performance signature differs the same
// way, and the engine regenerates.
//
// Expected shape: the best variant may differ from system A's (on the
// paper's Sandy Bridge, variant 1 overtakes variant 3), variant 4 stays
// slowest, and the ranking is still predicted correctly.

#include "predict/ranking.hpp"
#include "support/bench_util.hpp"

int main() {
  using namespace dlap;
  using namespace dlap::bench;
  const Scales sc = current_scales();
  const std::string backend = system_b();

  Engine& engine = shared_engine();
  const SystemSpec system{backend, Locality::InCache};
  require_ok(engine.prepare(
      RankQuery::trinv_variants(sc.sweep_max, sc.blocksize).candidates,
      system));

  print_comment("Fig IV.3: trinv on the second system (backend " + backend +
                "), blocksize " + std::to_string(sc.blocksize));
  print_header({"n", "meas_v1", "meas_v2", "meas_v3", "meas_v4",
                "pred_v1", "pred_v2", "pred_v3", "pred_v4"});

  const index_t step = sc.paper ? 64 : 32;
  index_t ranked_correctly = 0;
  index_t points = 0;
  for (index_t n = 96; n <= sc.sweep_max; n += step) {
    RankQuery q = RankQuery::trinv_variants(n, sc.blocksize);
    q.system = system;
    const Ranking ranked = require_ok(engine.rank(q));
    const std::vector<double> pred_ticks = ranked.median_ticks();

    std::vector<double> meas_ticks, row;
    for (int v = 1; v <= kTrinvVariantCount; ++v) {
      const double mt =
          measure_trinv_ticks(backend, v, n, sc.blocksize, sc.reps);
      meas_ticks.push_back(mt);
      row.push_back(trinv_efficiency(n, mt));
    }
    for (double pt : pred_ticks) row.push_back(trinv_efficiency(n, pt));
    print_row(static_cast<double>(n), row);
    ++points;
    if (rank_order(pred_ticks) == rank_order(meas_ticks)) ++ranked_correctly;
  }
  print_comment("full ranking correct at " + std::to_string(ranked_correctly) +
                "/" + std::to_string(points) + " sizes on system B");
  return 0;
}
