// micro_server -- loopback dlapd throughput, hot reload and overload.
//
// Drives a real dlapd::Server over 127.0.0.1 with an engine whose
// measurements come from a deterministic synthetic cost surface, so every
// prediction body is exactly reproducible byte for byte. Three phases:
//   1. steady state: concurrent keep-alive clients over a fixed query
//      mix; reports sustained QPS and per-request p50/p99 latency,
//   2. hot reload: the same traffic while /v1/admin/reload re-attaches
//      the container and drops the model cache repeatedly -- models
//      regenerate underneath the queries,
//   3. overload: a second server with a deliberately tiny worker pool and
//      queue is offered 2x its admission capacity of slow requests.
//
// Gates (nonzero exit on failure):
//   - every steady-state and reload-phase response is bit-identical to
//     the direct Engine render (zero torn or malformed responses while
//     models regenerate),
//   - at least one hot reload completes during fire,
//   - under 2x overload every connection is answered (no hangs): served
//     requests get 200, sheds get a well-formed 503 with Retry-After,
//     and both outcomes occur,
//   - BENCH_server.json is written with qps, p50/p99 and the shed rate.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "sampler/stats.hpp"
#include "server/client.hpp"
#include "server/handlers.hpp"
#include "server/server.hpp"
#include "support/bench_util.hpp"

namespace {

using namespace dlap;
using namespace dlap::server;
namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

// ---------------------------------------------------- deterministic engine

/// Synthetic smooth cost surface (the test_server/test_api pattern):
/// modeling "measurements" are a pure function of the sample point and the
/// model key, so regenerated models -- and therefore rendered prediction
/// bodies -- are identical across reloads.
MeasureFn synthetic_measure(double offset) {
  return [offset](const std::vector<index_t>& point) {
    double cost = 100.0 + offset;
    for (index_t x : point) {
      const double v = static_cast<double>(x);
      cost += 2.0 * v + 0.05 * v * v;
    }
    SampleStats s;
    s.min = cost * 0.9;
    s.median = cost;
    s.mean = cost * 1.02;
    s.max = cost * 1.2;
    s.stddev = cost * 0.03;
    s.count = 5;
    return s;
  };
}

EngineConfig engine_config(const fs::path& repo) {
  EngineConfig cfg;
  cfg.service.repository_dir = repo;
  cfg.service.workers = 2;
  cfg.service.measure_factory = [](const ModelJob& job) {
    double h = 0.0;
    for (char c : ModelService::key_for(job).to_string()) {
      h = 0.9 * h + static_cast<double>(c);
    }
    return synthetic_measure(h);
  };
  return cfg;
}

// ------------------------------------------------------------- query mix

struct Probe {
  std::string body;      ///< POST /v1/predict request body
  std::string expected;  ///< bit-exact response body (direct Engine render)
};

/// The steady-state mix: every built-in family, a few variants and sizes.
std::vector<Probe> build_probes(Engine& engine) {
  std::vector<PredictQuery> queries;
  std::vector<std::string> bodies;
  const auto add = [&](OperationSpec spec, std::string body) {
    queries.push_back(PredictQuery::of(std::move(spec)));
    bodies.push_back(std::move(body));
  };
  for (int variant = 1; variant <= 3; ++variant) {
    for (index_t n : {96, 160}) {
      add(OperationSpec::chol(variant, n, 32),
          "{\"op\":\"chol\",\"variant\":" + std::to_string(variant) +
              ",\"n\":" + std::to_string(n) + ",\"blocksize\":32}");
    }
  }
  for (int variant : {1, 4}) {
    add(OperationSpec::trinv(variant, 128, 32),
        "{\"op\":\"trinv\",\"variant\":" + std::to_string(variant) +
            ",\"n\":128,\"blocksize\":32}");
  }
  for (int variant : {1, 7}) {
    add(OperationSpec::sylv(variant, 96, 128, 32),
        "{\"op\":\"sylv\",\"variant\":" + std::to_string(variant) +
            ",\"m\":96,\"n\":128,\"blocksize\":32}");
  }

  // First pass generates every model; the baseline is the SECOND, warm
  // call. The generation-triggering call can differ from all later
  // (compiled-trace) evaluations in the last ulp -- the steady-state
  // render is the value the daemon must reproduce forever after.
  for (PredictQuery& query : queries) {
    (void)bench::require_ok(engine.predict(query));
  }
  std::vector<Probe> probes;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Prediction direct = bench::require_ok(engine.predict(queries[i]));
    probes.push_back({bodies[i], render_prediction(direct).dump()});
  }
  return probes;
}

// ------------------------------------------------------------ client fire

struct FireResult {
  std::uint64_t requests = 0;
  std::uint64_t mismatches = 0;  ///< non-200 or body != expected
  std::vector<double> latencies_us;
};

/// `count` sequential keep-alive requests round-robining the probe mix,
/// checking every response byte against the direct-engine render.
FireResult fire(int port, const std::vector<Probe>& probes, int count,
                std::size_t phase_offset) {
  FireResult result;
  HttpClient client("127.0.0.1", port);
  result.latencies_us.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const Probe& probe =
        probes[(phase_offset + static_cast<std::size_t>(i)) % probes.size()];
    const auto start = Clock::now();
    const auto response =
        client.request("POST", "/v1/predict", probe.body);
    const auto elapsed = Clock::now() - start;
    ++result.requests;
    result.latencies_us.push_back(
        std::chrono::duration<double, std::micro>(elapsed).count());
    if (!response.has_value() || response->status != 200 ||
        response->body != probe.expected) {
      ++result.mismatches;
    }
  }
  return result;
}

/// Runs `threads` concurrent fire() loops and merges the results.
FireResult fire_concurrent(int port, const std::vector<Probe>& probes,
                           int threads, int requests_per_thread) {
  std::vector<FireResult> per_thread(static_cast<std::size_t>(threads));
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      per_thread[static_cast<std::size_t>(t)] =
          fire(port, probes, requests_per_thread,
               static_cast<std::size_t>(t) * 3);
    });
  }
  for (std::thread& thread : pool) thread.join();
  FireResult merged;
  for (FireResult& r : per_thread) {
    merged.requests += r.requests;
    merged.mismatches += r.mismatches;
    merged.latencies_us.insert(merged.latencies_us.end(),
                               r.latencies_us.begin(), r.latencies_us.end());
  }
  return merged;
}

bool eventually(const std::function<bool()>& predicate) {
  for (int i = 0; i < 10000; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

}  // namespace

int main() {
  const fs::path repo =
      fs::temp_directory_path() / "dlaperf_micro_server_repo";
  fs::remove_all(repo);

  bool pass = true;
  bench::BenchJson out;

  {
    Engine engine(engine_config(repo));
    const std::vector<Probe> probes = build_probes(engine);
    std::printf("# %zu probe bodies precomputed (direct Engine renders)\n",
                probes.size());

    ServerConfig config;
    config.workers = 4;
    config.queue_capacity = 64;
    Server server(engine, config);
    bench::require_ok(server.start());
    std::printf("# dlapd on 127.0.0.1:%d (4 workers)\n", server.port());

    // ------------------------------------------------- phase 1: steady QPS
    constexpr int kThreads = 4;
    constexpr int kPerThread = 500;
    const auto t0 = Clock::now();
    FireResult steady =
        fire_concurrent(server.port(), probes, kThreads, kPerThread);
    const double seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    const double qps = static_cast<double>(steady.requests) / seconds;
    const double p50 = quantile(steady.latencies_us, 0.5);
    const double p99 = quantile(steady.latencies_us, 0.99);
    std::printf("# steady: %llu requests in %.3f s -> %.0f qps, "
                "p50 %.1f us, p99 %.1f us, mismatches %llu\n",
                static_cast<unsigned long long>(steady.requests), seconds,
                qps, p50, p99,
                static_cast<unsigned long long>(steady.mismatches));
    const bool gate_steady = steady.mismatches == 0;

    // ------------------------------------------- phase 2: reload under fire
    std::vector<std::thread> pool;
    std::vector<FireResult> reload_fire(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        reload_fire[static_cast<std::size_t>(t)] =
            fire(server.port(), probes, 300, static_cast<std::size_t>(t));
      });
    }
    int reloads = 0;
    bool reload_ok = true;
    {
      HttpClient admin("127.0.0.1", server.port());
      while (reloads < 6) {
        const std::uint64_t done = server.stats().reloads_completed +
                                   server.stats().reloads_failed;
        const auto response =
            admin.request("POST", "/v1/admin/reload", "{}");
        if (!response.has_value() || response->status != 202) {
          reload_ok = false;
          break;
        }
        ++reloads;
        if (!eventually([&] {
              return server.stats().reloads_completed +
                         server.stats().reloads_failed >
                     done;
            })) {
          reload_ok = false;
          break;
        }
      }
    }
    for (std::thread& thread : pool) thread.join();
    std::uint64_t reload_requests = 0;
    std::uint64_t reload_mismatches = 0;
    for (const FireResult& r : reload_fire) {
      reload_requests += r.requests;
      reload_mismatches += r.mismatches;
    }
    const std::uint64_t reloads_completed = server.stats().reloads_completed;
    const std::uint64_t reloads_failed = server.stats().reloads_failed;
    std::printf("# reload: %d reloads (%llu completed, %llu failed) under "
                "%llu requests, mismatches %llu\n",
                reloads, static_cast<unsigned long long>(reloads_completed),
                static_cast<unsigned long long>(reloads_failed),
                static_cast<unsigned long long>(reload_requests),
                static_cast<unsigned long long>(reload_mismatches));
    const bool gate_reload = reload_ok && reload_mismatches == 0 &&
                             reloads_completed >= 1 && reloads_failed == 0;
    server.stop();

    // --------------------------------------------- phase 3: 2x overload
    // A deliberately tiny server: 2 workers + 2 queue slots = 4 admitted
    // connections; every wave offers 2x that. The slow route parks the
    // workers so admission -- not service speed -- decides each wave.
    ServerConfig tiny;
    tiny.workers = 2;
    tiny.queue_capacity = 2;
    Server overloaded(engine, tiny);
    overloaded.router().add(
        "POST", "/v1/slow", [](const HttpRequest&) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          return Router::json_response(
              200, Json::object().set("ok", Json::boolean(true)));
        });
    bench::require_ok(overloaded.start());

    constexpr int kWaves = 6;
    constexpr int kWaveSize = 2 * (2 + 2);  // 2x admission capacity
    std::atomic<std::uint64_t> served{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> malformed{0};
    for (int wave = 0; wave < kWaves; ++wave) {
      std::vector<std::thread> surge;
      for (int i = 0; i < kWaveSize; ++i) {
        surge.emplace_back([&] {
          // One-shot connection per request: admission is per connection.
          HttpClient client("127.0.0.1", overloaded.port());
          const auto response = client.request("POST", "/v1/slow", "{}");
          if (!response.has_value()) {
            ++malformed;  // unanswered connection = a hang bug
          } else if (response->status == 200) {
            ++served;
          } else if ((response->status == 503 || response->status == 429) &&
                     response->header("Retry-After") != nullptr) {
            ++shed;
          } else {
            ++malformed;
          }
        });
      }
      for (std::thread& thread : surge) thread.join();
    }
    overloaded.stop();
    const std::uint64_t offered = kWaves * kWaveSize;
    const double shed_rate =
        static_cast<double>(shed.load()) / static_cast<double>(offered);
    std::printf("# overload: offered %llu at 2x capacity -> served %llu, "
                "shed %llu (rate %.2f), malformed %llu\n",
                static_cast<unsigned long long>(offered),
                static_cast<unsigned long long>(served.load()),
                static_cast<unsigned long long>(shed.load()), shed_rate,
                static_cast<unsigned long long>(malformed.load()));
    const bool gate_overload =
        malformed.load() == 0 && served.load() >= 1 && shed.load() >= 1 &&
        served.load() + shed.load() == offered;

    // ------------------------------------------------------------- report
    out.set("requests", static_cast<index_t>(steady.requests));
    out.set("qps", qps);
    out.set("p50_us", p50);
    out.set("p99_us", p99);
    out.set("reloads_completed", static_cast<index_t>(reloads_completed));
    out.set("reload_requests", static_cast<index_t>(reload_requests));
    out.set("reload_mismatches", static_cast<index_t>(reload_mismatches));
    out.set("overload_offered", static_cast<index_t>(offered));
    out.set("overload_served", static_cast<index_t>(served.load()));
    out.set("overload_shed", static_cast<index_t>(shed.load()));
    out.set("shed_rate", shed_rate);
    out.set("gate_bit_identical", gate_steady);
    out.set("gate_reload_zero_torn", gate_reload);
    out.set("gate_overload_answered", gate_overload);
    pass = gate_steady && gate_reload && gate_overload;
    out.set("pass", pass);
  }

  fs::remove_all(repo);
  out.write("BENCH_server.json");
  if (!pass) {
    std::fprintf(stderr, "micro_server: GATE FAILURE\n");
    return 1;
  }
  std::printf("# all gates passed\n");
  return 0;
}
