// Fig II.1 -- Repeated execution of dtrsm with in-cache and out-of-cache
// operands, for all three backend "libraries"; also reports the
// first-invocation initialization outlier and the run-to-run fluctuation
// the paper quantifies at ~8% (Section II-B).
//
// Expected shape: in-cache ticks <= out-of-cache ticks for every backend
// (the gap widens for bandwidth-bound shapes); the first cold invocation
// is slower than the steady state for backends with lazy initialization.

#include <algorithm>
#include <memory>

#include "support/bench_util.hpp"

int main() {
  using namespace dlap;
  using namespace dlap::bench;
  const Scales sc = current_scales();

  // The paper's call: B <- 0.37 * B * A^{-1}, A 128x128 lower triangular
  // (ldA 256), B 512x128 (ldB 512).
  const KernelCall paper_call =
      parse_call("dtrsm(R,L,N,U,512,128,0.37,A,256,B,512)");

  // First-call outlier: must be measured before anything else runs a
  // kernel in this process (lazy initialization -- packing buffers --
  // happens exactly once per library, like the BLAS init the paper sees).
  print_comment("Fig II.1: repeated dtrsm, in-cache vs out-of-cache");
  print_comment("call: " + format_call(paper_call));
  print_comment("first-call outlier (cold library) vs steady-state median:");
  for (const std::string& backend : library_backends()) {
    SamplerConfig cold;
    cold.include_first_call = true;
    cold.reps = 10;
    auto fresh = make_backend(backend);
    Sampler sampler(*fresh, cold);
    const std::vector<double> raw = sampler.measure_raw(paper_call);
    const double first = raw.front();
    std::vector<double> rest(raw.begin() + 1, raw.end());
    const double steady = summarize(rest).median;
    print_comment("  " + backend + ": first/steady = " +
                  std::to_string(first / steady));
  }

  const index_t reps = sc.paper ? 200 : 50;
  print_header({"rep", "naive_in", "naive_out", "blocked_in", "blocked_out",
                "packed_in", "packed_out"});
  // The six series are interleaved rep-by-rep so that slow machine drift
  // (frequency ramps, noisy-neighbor interference on shared vCPUs) hits
  // all of them equally instead of biasing whichever ran first.
  std::vector<std::unique_ptr<Sampler>> samplers;
  for (const std::string& backend : library_backends()) {
    for (const Locality loc : {Locality::InCache, Locality::OutOfCache}) {
      SamplerConfig cfg;
      cfg.locality = loc;
      cfg.reps = 1;
      samplers.push_back(
          std::make_unique<Sampler>(backend_instance(backend), cfg));
    }
  }
  std::vector<std::vector<double>> series(samplers.size());
  for (index_t r = 0; r < reps; ++r) {
    std::vector<double> row;
    for (std::size_t s = 0; s < samplers.size(); ++s) {
      const double t = samplers[s]->measure_raw(paper_call).front();
      series[s].push_back(t);
      row.push_back(t);
    }
    print_row(static_cast<double>(r), row);
  }
  print_comment("per-series medians (in/out pairs per backend):");
  for (std::size_t s = 0; s < series.size(); s += 2) {
    const double in_med = summarize(series[s]).median;
    const double out_med = summarize(series[s + 1]).median;
    print_comment("  " + library_backends()[s / 2] + ": in " +
                  std::to_string(in_med) + "  out " +
                  std::to_string(out_med) + "  out/in " +
                  std::to_string(out_med / in_med));
  }

  // Fluctuation: relative spread of the in-cache series (median-based so
  // single OS-jitter outliers do not dominate).
  print_comment("in-cache fluctuation (stddev/median, median-of-runs):");
  std::size_t idx = 0;
  for (const std::string& backend : library_backends()) {
    const SampleStats st = summarize(series[idx]);
    idx += 2;
    print_comment("  " + backend + ": " +
                  std::to_string(100.0 * st.stddev / st.median) + " %");
  }

  // Locality gap on a bandwidth-bound shape: a short-and-wide solve does
  // only ~2 flops per byte of B, so the data transfers the out-of-cache
  // scenario pays are visible (the paper's Harpertown shows the same gap
  // on its compute-dense call because its memory was relatively slower).
  const KernelCall bw_call =
      parse_call("dtrsm(R,L,N,U,4096,16,1,A,16,B,4096)");
  print_comment("bandwidth-bound call: " + format_call(bw_call));
  print_header({"backend", "in_cache_med", "out_cache_med", "out/in"});
  int b_idx = 0;
  for (const std::string& backend : library_backends()) {
    double med[2];
    for (const Locality loc : {Locality::InCache, Locality::OutOfCache}) {
      SamplerConfig cfg;
      cfg.locality = loc;
      cfg.reps = std::max<index_t>(9, sc.reps);
      Sampler sampler(backend_instance(backend), cfg);
      med[loc == Locality::OutOfCache] = sampler.measure(bw_call).median;
    }
    std::printf("  %14s", backend.c_str());
    print_row({med[0], med[1], med[1] / med[0]});
    ++b_idx;
  }
  return 0;
}
