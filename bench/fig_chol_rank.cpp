// Cholesky variant ranking: predictions vs observations for the three
// classic blocked variants (bordered / left-looking / right-looking) over
// a size sweep — the registry-driven analogue of the paper's Fig IV.1
// experiment, for the operation family added through the
// OperationRegistry (docs/ADDING_AN_OPERATION.md).
//
// Expected shape: the right-looking variant (syrk-rich trailing update)
// leads once the trailing matrix dominates; the prediction must name the
// measured-best variant at (most of) the swept sizes.

#include "algorithms/chol.hpp"
#include "common/env.hpp"
#include "predict/ranking.hpp"
#include "support/bench_util.hpp"

int main() {
  using namespace dlap;
  using namespace dlap::bench;
  const Scales sc = current_scales();
  const std::string backend = system_a();
  const index_t b = 32;

  // Own engine instead of shared_engine(): the chol variants sit within
  // ~25% of each other, so the paper's ld = 2500 generation convention
  // (operand panels far larger than cache at these sweep sizes) would
  // systematically distort the models relative to the compact-ld
  // executions measured below. Matching the generation ld to the sweep
  // keeps the comparison about variant ranking, not stride effects; the
  // models live in their own repository subdirectory because the model
  // key does not encode the ld.
  EngineConfig cfg;
  cfg.service.repository_dir =
      std::filesystem::path(
          env_string("DLAPERF_MODEL_DIR", "dlaperf_models")) /
      "chol_rank";
  cfg.service.workers = env_int("DLAPERF_WORKERS", 0);
  cfg.service.refinement = paper_refinement_config();
  cfg.service.verbose = true;
  cfg.planning.reps = sc.reps;
  Engine engine(cfg);
  const SystemSpec system{backend, Locality::InCache};
  require_ok(engine.prepare(
      RankQuery::chol_variants(sc.sweep_max, b).candidates, system));

  print_comment("chol: 3 variants, blocksize " + std::to_string(b) +
                ", backend " + backend);
  std::vector<std::string> cols{"n"};
  for (int v = 1; v <= kCholVariantCount; ++v) {
    cols.push_back("meas_v" + std::to_string(v));
  }
  for (int v = 1; v <= kCholVariantCount; ++v) {
    cols.push_back("pred_v" + std::to_string(v));
  }
  print_header(cols);

  const index_t step = sc.paper ? 128 : 64;
  index_t sizes = 0, agreed = 0;
  for (index_t n = 128; n <= sc.sweep_max; n += step) {
    RankQuery q = RankQuery::chol_variants(n, b);
    q.system = system;
    const Ranking ranked = require_ok(engine.rank(q));
    const std::vector<double> pred_ticks = ranked.median_ticks();

    std::vector<double> meas_ticks, row;
    // Median of at least 5 runs: the variants sit close together, so the
    // measured side needs more repetitions than the sweep-style figures.
    const index_t reps = std::max<index_t>(sc.reps, 5);
    for (int v = 1; v <= kCholVariantCount; ++v) {
      const double mt = measure_chol_ticks(backend, v, n, b, reps);
      meas_ticks.push_back(mt);
      row.push_back(chol_efficiency(n, mt));
    }
    for (double pt : pred_ticks) row.push_back(chol_efficiency(n, pt));
    print_row(static_cast<double>(n), row);

    ++sizes;
    agreed += same_winner(pred_ticks, meas_ticks);
  }

  print_comment("predicted-best == measured-best at " +
                std::to_string(agreed) + "/" + std::to_string(sizes) +
                " sizes");
  return 0;
}
