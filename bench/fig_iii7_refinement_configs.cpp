// Fig III.7 -- Adaptive Refinement for dtrsm under four configurations:
//   (a) eps=10%, s_min=64     (b) eps=5%, s_min=64
//   (c) eps=10%, s_min=32     (d) eps=5%, s_min=32
// For each: region map, sample count, average error.
//
// Expected shape: tighter eps and smaller s_min both increase regions and
// samples while decreasing the average error; smaller/less accurate
// regions concentrate at small parameter values.

#include <map>
#include <memory>

#include "support/bench_util.hpp"

namespace {

dlap::MeasureFn memoize(dlap::MeasureFn fn) {
  auto cache = std::make_shared<
      std::map<std::vector<dlap::index_t>, dlap::SampleStats>>();
  return [cache, fn = std::move(fn)](const std::vector<dlap::index_t>& p) {
    auto it = cache->find(p);
    if (it == cache->end()) it = cache->emplace(p, fn(p)).first;
    return it->second;
  };
}

}  // namespace

int main() {
  using namespace dlap;
  using namespace dlap::bench;
  const Scales sc = current_scales();
  const index_t hi = sc.model_max_2d;

  ModelingRequest req;
  req.routine = RoutineId::Trsm;
  req.flags = {'L', 'L', 'N', 'N'};
  req.domain = Region({8, 8}, {hi, hi});
  req.fixed_ld = 2500;
  req.sampler.reps = sc.reps;

  Modeler modeler(backend_instance(system_a()));
  const MeasureFn measure = memoize(modeler.make_measure_fn(req));

  struct Config {
    const char* label;
    double eps;
    index_t smin;
  };
  const Config configs[] = {
      {"a", 0.10, 64}, {"b", 0.05, 64}, {"c", 0.10, 32}, {"d", 0.05, 32}};

  print_comment("Fig III.7: Adaptive Refinement for dtrsm(L,L,N,N) on [8," +
                std::to_string(hi) + "]^2, in-cache, backend " + system_a());
  for (const Config& c : configs) {
    RefinementConfig cfg;
    cfg.base.error_bound = c.eps;
    cfg.base.degree = 3;
    cfg.min_region_size = c.smin;
    const GenerationResult gen =
        generate_adaptive_refinement(req.domain, measure, cfg);

    print_comment(std::string("config (") + c.label + "): eps=" +
                  std::to_string(100 * c.eps) + "% s_min=" +
                  std::to_string(c.smin));
    print_comment("  samples=" + std::to_string(gen.unique_samples) +
                  " regions=" + std::to_string(gen.model.pieces().size()) +
                  " avg_error=" + std::to_string(100 * gen.average_error) +
                  "%");
    print_header({"m_lo", "m_hi", "n_lo", "n_hi", "fit_err", "mean_err"});
    for (const RegionModel& p : gen.model.pieces()) {
      print_row({static_cast<double>(p.region.lo(0)),
                 static_cast<double>(p.region.hi(0)),
                 static_cast<double>(p.region.lo(1)),
                 static_cast<double>(p.region.hi(1)), p.fit_error,
                 p.mean_error});
    }
  }
  return 0;
}
