// Fig IV.2 -- block-size optimization for trinv: predictions and
// measurements as the block size varies at fixed matrix size.
//
// Expected shape: predictions capture the behavior around the most
// efficient block sizes; the predicted optimum block size matches (or
// sits within one grid step of) the measured optimum for each variant.

#include "predict/ranking.hpp"
#include "support/bench_util.hpp"

int main() {
  using namespace dlap;
  using namespace dlap::bench;
  const Scales sc = current_scales();
  const std::string backend = system_a();
  const index_t n = sc.trinv_fixed_n;

  const RepositoryBackedPredictor pred =
      trinv_predictor(backend, Locality::InCache, sc);

  print_comment("Fig IV.2: block-size optimization for trinv at n = " +
                std::to_string(n) + ", backend " + backend);
  print_header({"b", "meas_v1", "meas_v2", "meas_v3", "meas_v4",
                "pred_v1", "pred_v2", "pred_v3", "pred_v4"});

  std::vector<index_t> bs;
  std::vector<std::vector<double>> meas(kTrinvVariantCount),
      predicted(kTrinvVariantCount);
  for (index_t b = 16; b <= sc.bsweep_max; b += 16) {
    bs.push_back(b);
    std::vector<double> row;
    for (int v = 1; v <= kTrinvVariantCount; ++v) {
      const double mt = measure_trinv_ticks(backend, v, n, b, sc.reps);
      meas[v - 1].push_back(mt);
      row.push_back(trinv_efficiency(n, mt));
    }
    for (int v = 1; v <= kTrinvVariantCount; ++v) {
      const double pt = pred.predict(trace_trinv(v, n, b)).ticks.median;
      predicted[v - 1].push_back(pt);
      row.push_back(trinv_efficiency(n, pt));
    }
    print_row(static_cast<double>(b), row);
  }

  print_comment("optimal block size, measured vs predicted:");
  for (int v = 0; v < kTrinvVariantCount; ++v) {
    const index_t mb = bs[rank_order(meas[v])[0]];
    const index_t pb = bs[rank_order(predicted[v])[0]];
    print_comment("  variant " + std::to_string(v + 1) + ": measured b* = " +
                  std::to_string(mb) + ", predicted b* = " +
                  std::to_string(pb));
  }
  return 0;
}
