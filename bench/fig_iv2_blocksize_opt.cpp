// Fig IV.2 -- block-size optimization for trinv: predictions and
// measurements as the block size varies at fixed matrix size. The
// predicted side is one TuneQuery per variant -- the engine's native
// formulation of this figure's question.
//
// Expected shape: predictions capture the behavior around the most
// efficient block sizes; the predicted optimum block size matches (or
// sits within one grid step of) the measured optimum for each variant.

#include "predict/ranking.hpp"
#include "support/bench_util.hpp"

int main() {
  using namespace dlap;
  using namespace dlap::bench;
  const Scales sc = current_scales();
  const std::string backend = system_a();
  const index_t n = sc.trinv_fixed_n;

  Engine& engine = shared_engine();
  const SystemSpec system{backend, Locality::InCache};

  print_comment("Fig IV.2: block-size optimization for trinv at n = " +
                std::to_string(n) + ", backend " + backend);
  print_header({"b", "meas_v1", "meas_v2", "meas_v3", "meas_v4",
                "pred_v1", "pred_v2", "pred_v3", "pred_v4"});

  // One tune query per variant; the engine derives and generates the
  // models covering the whole sweep before predicting it.
  std::vector<TuneResult> tuned;
  for (int v = 1; v <= kTrinvVariantCount; ++v) {
    TuneQuery q;
    q.spec = OperationSpec::trinv(v, n, /*blocksize=*/16);
    q.lo = 16;
    q.hi = sc.bsweep_max;
    q.step = 16;
    q.system = system;
    tuned.push_back(require_ok(engine.tune(q)));
  }
  const std::vector<index_t>& bs = tuned[0].values;

  std::vector<std::vector<double>> meas(kTrinvVariantCount);
  for (std::size_t bi = 0; bi < bs.size(); ++bi) {
    const index_t b = bs[bi];
    std::vector<double> row;
    for (int v = 1; v <= kTrinvVariantCount; ++v) {
      const double mt = measure_trinv_ticks(backend, v, n, b, sc.reps);
      meas[v - 1].push_back(mt);
      row.push_back(trinv_efficiency(n, mt));
    }
    for (int v = 1; v <= kTrinvVariantCount; ++v) {
      row.push_back(trinv_efficiency(
          n, tuned[v - 1].predictions[bi].ticks.median));
    }
    print_row(static_cast<double>(b), row);
  }

  print_comment("optimal block size, measured vs predicted:");
  for (int v = 0; v < kTrinvVariantCount; ++v) {
    const index_t mb = bs[rank_order(meas[v])[0]];
    const index_t pb = tuned[v].best_value();
    print_comment("  variant " + std::to_string(v + 1) + ": measured b* = " +
                  std::to_string(mb) + ", predicted b* = " +
                  std::to_string(pb));
  }
  return 0;
}
