// Fig III.3 -- distance between a least-squares polynomial fit and the
// dgemm measurements of Fig III.2.
//
// Expected shape (paper): the residual of a single global fit is *not*
// noise -- it shows structured intervals separated by jumps/kinks, which
// motivates piecewise models. (The paper fits a quadratic to its
// measurement series; we report both the quadratic and the
// complexity-matching cubic -- both leave structured residuals.)

#include "modeler/fit.hpp"
#include "support/bench_util.hpp"

int main() {
  using namespace dlap;
  using namespace dlap::bench;
  const Scales sc = current_scales();

  // Collect the Fig III.2 series.
  std::vector<index_t> sizes;
  std::vector<std::vector<double>> ticks(library_backends().size());
  for (index_t n = 8; n <= sc.sweep_max; n += sc.sweep_step) {
    sizes.push_back(n);
    KernelCall call;
    call.routine = RoutineId::Gemm;
    call.flags = {'N', 'N'};
    call.sizes = {n, n, n};
    call.scalars = {1.0, 1.0};
    call.leads = {n, n, n};
    std::size_t bi = 0;
    for (const std::string& backend : library_backends()) {
      SamplerConfig cfg;
      cfg.reps = sc.reps;
      Sampler sampler(backend_instance(backend), cfg);
      ticks[bi++].push_back(sampler.measure(call).median);
    }
  }

  const Region domain({sizes.front()}, {sizes.back()});
  const auto residuals = [&](int degree, const std::vector<double>& series) {
    std::vector<SamplePoint> samples;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      SampleStats s;
      s.min = s.median = s.mean = s.max = series[i];
      samples.push_back({{sizes[i]}, s});
    }
    const FitResult fit = fit_polynomial(domain, samples, degree);
    std::vector<double> res(sizes.size());
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      res[i] = series[i] - fit.poly.evaluate_stat(
                               Stat::Median,
                               {static_cast<double>(sizes[i])});
    }
    return res;
  };

  print_comment("Fig III.3: residual (ticks - fit) of global LSQ fits of "
                "the Fig III.2 series");
  print_header({"n", "naive_q2", "blocked_q2", "packed_q2", "naive_q3",
                "blocked_q3", "packed_q3"});
  std::vector<std::vector<double>> all;
  for (int degree : {2, 3}) {
    for (const auto& series : ticks) all.push_back(residuals(degree, series));
  }
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::vector<double> row;
    for (const auto& r : all) row.push_back(r[i]);
    print_row(static_cast<double>(sizes[i]), row);
  }

  // Structure metric: lag-1 autocorrelation of the residual. Pure noise
  // gives ~0; the paper's structured residual gives a value near 1.
  print_comment("lag-1 autocorrelation of residuals (structure indicator):");
  const char* names[] = {"naive_q2", "blocked_q2", "packed_q2",
                         "naive_q3", "blocked_q3", "packed_q3"};
  for (std::size_t s = 0; s < all.size(); ++s) {
    const auto& r = all[s];
    double mean = 0.0;
    for (double v : r) mean += v;
    mean /= static_cast<double>(r.size());
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < r.size(); ++i) {
      den += (r[i] - mean) * (r[i] - mean);
      if (i + 1 < r.size()) num += (r[i] - mean) * (r[i + 1] - mean);
    }
    print_comment("  " + std::string(names[s]) + ": " +
                  std::to_string(num / den));
  }
  return 0;
}
