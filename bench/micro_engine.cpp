// micro_engine -- batched query throughput through the Engine facade:
// sequential single-query calls vs one predict_many fan-out.
//
// A real query's wall clock is dominated by whatever sits behind it --
// model evaluation is cheap, but queries arriving over a network or
// triggering repository I/O wait. To benchmark the engine's *dispatch*
// -- independently of how many cores the host exposes and without timing
// noise -- each query carries a fixed latency via EngineConfig::query_hook
// (the same trick ServiceConfig::measure_factory plays for generation
// benchmarks). Model generation itself uses a deterministic synthetic
// cost surface and is excluded from the timed region via prepare().
//
// Also cross-checks the batching contract: predict_many must return
// results bit-identical to the same queries issued sequentially.
//
// Output: one row per worker count: wall ms for sequential and batched,
// speedup, and the identity check; exits nonzero when 4 workers fail to
// reach the 2x acceptance threshold.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "support/bench_util.hpp"

namespace {

using namespace dlap;
namespace fs = std::filesystem;

constexpr auto kQueryLatency = std::chrono::milliseconds(2);

MeasureFn synthetic_measure(double offset) {
  return [offset](const std::vector<index_t>& point) {
    double cost = 100.0 + offset;
    for (index_t x : point) {
      const double v = static_cast<double>(x);
      cost += 2.0 * v + 0.03 * v * v;
    }
    SampleStats s;
    s.min = cost * 0.95;
    s.median = cost;
    s.mean = cost * 1.01;
    s.max = cost * 1.10;
    s.stddev = cost * 0.02;
    s.count = 5;
    return s;
  };
}

EngineConfig config_for(const fs::path& dir, index_t workers) {
  EngineConfig cfg;
  cfg.service.repository_dir = dir;
  cfg.service.workers = workers;
  cfg.service.measure_factory = [](const ModelJob& job) {
    double h = 0.0;
    for (char c : ModelService::key_for(job).to_string()) {
      h = 0.9 * h + static_cast<double>(c);
    }
    return synthetic_measure(h);
  };
  cfg.query_hook = [] { std::this_thread::sleep_for(kQueryLatency); };
  return cfg;
}

std::vector<PredictQuery> benchmark_queries() {
  std::vector<PredictQuery> queries;
  for (int v = 1; v <= kTrinvVariantCount; ++v) {
    for (index_t n : {64, 96, 128, 160}) {
      for (index_t b : {16, 32}) {
        queries.push_back(PredictQuery::of(OperationSpec::trinv(v, n, b)));
      }
    }
  }
  return queries;  // 4 * 4 * 2 = 32 queries over 7 distinct model keys
}

bool identical(const Prediction& a, const Prediction& b) {
  return a.ticks.min == b.ticks.min && a.ticks.median == b.ticks.median &&
         a.ticks.mean == b.ticks.mean && a.ticks.max == b.ticks.max &&
         a.ticks.stddev == b.ticks.stddev && a.flops == b.flops &&
         a.calls == b.calls && a.skipped == b.skipped &&
         a.missing == b.missing;
}

}  // namespace

int main() {
  using namespace dlap::bench;

  print_comment("micro_engine: 32 typed queries, " +
                std::to_string(kQueryLatency.count()) +
                "ms latency-bound each: sequential loop vs one "
                "predict_many batch");
  print_header({"workers", "seq_ms", "batch_ms", "speedup", "identical"});

  const std::vector<PredictQuery> queries = benchmark_queries();
  bool all_identical = true;
  double speedup_at_4 = 0.0;
  for (dlap::index_t workers : {1, 2, 4, 8}) {
    const fs::path dir =
        fs::temp_directory_path() /
        ("dlap_micro_engine_" + std::to_string(workers));
    fs::remove_all(dir);
    Engine engine(config_for(dir, workers));
    // Generate the 7 models outside the timed region (one batch).
    std::vector<OperationSpec> specs;
    for (const PredictQuery& q : queries) specs.push_back(*q.spec);
    require_ok(engine.prepare(specs));

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<Result<Prediction>> sequential;
    sequential.reserve(queries.size());
    for (const PredictQuery& q : queries) {
      sequential.push_back(engine.predict(q));
    }
    const auto t1 = std::chrono::steady_clock::now();
    const auto batched = engine.predict_many(queries);
    const auto t2 = std::chrono::steady_clock::now();

    bool ident = batched.size() == sequential.size();
    for (std::size_t i = 0; ident && i < batched.size(); ++i) {
      ident = identical(require_ok(sequential[i]), require_ok(batched[i]));
    }
    all_identical = all_identical && ident;

    const double seq_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double batch_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    const double speedup = seq_ms / batch_ms;
    if (workers == 4) speedup_at_4 = speedup;
    print_row(static_cast<double>(workers),
              {seq_ms, batch_ms, speedup, ident ? 1.0 : 0.0});
    fs::remove_all(dir);
  }

  print_comment(all_identical
                    ? "batched results bit-identical to sequential"
                    : "IDENTITY VIOLATION: batched results differ");
  const bool pass = all_identical && speedup_at_4 > 2.0;
  print_comment("speedup at 4 workers: " + std::to_string(speedup_at_4) +
                (pass ? " (PASS, > 2x)" : " (FAIL, need > 2x)"));

  BenchJson json;
  json.set("bench", std::string("micro_engine"));
  json.set("batch_speedup_at_4_workers", speedup_at_4);
  json.set("bit_identical", all_identical);
  json.set("pass", pass);
  json.write("BENCH_engine.json");
  return pass ? 0 : 1;
}
