// micro_load -- text vs. binary-container model loading.
//
// The repository's text format pays a full parse per model: stream
// extraction of every coefficient at every open. The .dlapc container
// (src/storage/) is one mmap'ed file whose coefficient tables are served
// zero-copy, so opening a repository of hundreds of keys costs O(1)
// parse work per key (header + index decode) instead of O(coefficients).
// This bench measures that end to end -- repository open through the
// first prediction of every key -- and pins down the format's loss-free
// guarantees.
//
// Gates (nonzero exit on failure):
//   - open-to-first-predict over ~100 keys from the container is >= 10x
//     faster than from text files,
//   - text evaluations and container evaluations are bit-identical for
//     every key (zero-copy must not change a single bit),
//   - pack -> unpack round-trips every .model file and sample journal
//     byte-identically,
//   - an engine on a COMPACTED repository (text folded into
//     repository.dlapc, text files deleted) answers trinv, sylv and
//     chol queries bit-identically to the engine that generated the
//     models, with every key served from the container.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "modeler/repository.hpp"
#include "sampler/sample_store.hpp"
#include "storage/pack.hpp"
#include "support/bench_util.hpp"

namespace {

using namespace dlap;
namespace fs = std::filesystem;

constexpr int kKeys = 100;

// ------------------------------------------------- synthetic repository

/// Deterministic coefficient soup: arbitrary but reproducible doubles
/// (every double round-trips the 17-digit text format exactly, so the
/// values need no special structure).
double coef(int key, int piece, int stat, int k) {
  const double x = 1.0 + 0.017 * key + 0.13 * piece + 0.7 * stat + 1.9 * k;
  return std::sin(x) * 1e3 + 1e-3 * x;
}

RoutineModel synth_model(int i) {
  RoutineModel m;
  m.key.routine = "synth" + std::to_string(i);
  m.key.backend = "blocked";
  m.key.locality = (i % 2 == 0) ? Locality::InCache : Locality::OutOfCache;
  m.key.flags = "LLNN";
  m.strategy = "refinement";
  m.unique_samples = 100 + i;
  m.average_error = 0.01 + 1e-4 * i;

  constexpr int kDims = 2;
  constexpr int kDegree = 3;
  const index_t ncoef = monomial_count(kDims, kDegree);
  std::vector<RegionModel> pieces;
  int piece_id = 0;
  const index_t edges[2][2] = {{8, 256}, {264, 512}};
  for (const auto& e0 : edges) {
    for (const auto& e1 : edges) {
      RegionModel p;
      p.region = Region({e0[0], e1[0]}, {e0[1], e1[1]});
      p.fit_error = 0.04 + 0.001 * piece_id;
      p.mean_error = 0.02 + 0.001 * piece_id;
      p.samples_used = 25;
      Normalization norm;
      norm.shift = {260.0, 260.0};
      norm.scale = {252.0, 252.0};
      std::vector<std::vector<double>> coeffs(kStatCount);
      for (int s = 0; s < kStatCount; ++s) {
        for (index_t k = 0; k < ncoef; ++k) {
          coeffs[s].push_back(coef(i, piece_id, s, static_cast<int>(k)));
        }
      }
      p.poly = VecPolynomial(kDims, kDegree, std::move(norm),
                             std::move(coeffs));
      pieces.push_back(std::move(p));
      ++piece_id;
    }
  }
  m.model = PiecewiseModel(Region({8, 8}, {512, 512}), std::move(pieces));
  return m;
}

std::vector<ModelKey> populate_text_repository(const fs::path& dir) {
  ModelRepository repo(dir);
  std::vector<ModelKey> keys;
  for (int i = 0; i < kKeys; ++i) {
    RoutineModel m = synth_model(i);
    keys.push_back(m.key);
    repo.store(m);
  }
  // Sample journals for a fifth of the keys (journal order must survive
  // the pack -> unpack round trip).
  SampleStore store(dir / "samples");
  for (int i = 0; i < kKeys; i += 5) {
    const std::string ekey = keys[static_cast<std::size_t>(i)].to_string();
    for (index_t x = 8; x <= 128; x += 24) {
      SampleStats s;
      s.min = coef(i, 0, 0, static_cast<int>(x));
      s.median = s.min * 1.05;
      s.mean = s.min * 1.06;
      s.max = s.min * 1.2;
      s.stddev = std::abs(s.min) * 0.02;
      s.count = 5;
      store.insert(ekey, {x, x + 8}, s);
    }
  }
  return keys;
}

// ------------------------------------------------------ open-to-predict

struct OpenPredict {
  double ms = 0.0;
  std::vector<SampleStats> predictions;  ///< one per key, key order
};

/// Constructs a fresh repository over `dir` and evaluates every key's
/// model once: the cold open-to-first-predict path the engine pays when
/// a prediction run starts.
OpenPredict open_and_predict(const fs::path& dir,
                             const std::vector<ModelKey>& keys) {
  const auto t0 = std::chrono::steady_clock::now();
  ModelRepository repo(dir);
  OpenPredict out;
  out.predictions.reserve(keys.size());
  const std::vector<double> probe = {200.0, 300.0};
  for (const ModelKey& key : keys) {
    const std::shared_ptr<const RoutineModel> m = repo.find(key);
    if (m == nullptr) {
      std::fprintf(stderr, "missing model %s in %s\n",
                   key.to_string().c_str(), dir.string().c_str());
      std::exit(1);
    }
    out.predictions.push_back(m->model.evaluate(probe));
  }
  out.ms = std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
               .count();
  return out;
}

bool stats_identical(const SampleStats& a, const SampleStats& b) {
  return a.min == b.min && a.median == b.median && a.mean == b.mean &&
         a.max == b.max && a.stddev == b.stddev && a.count == b.count;
}

// --------------------------------------------------------- file compare

std::map<std::string, std::string> text_files(const fs::path& dir) {
  std::map<std::string, std::string> files;
  if (!fs::is_directory(dir)) return files;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext != ".model" && ext != ".samples") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    files[fs::relative(entry.path(), dir).string()] = buf.str();
  }
  return files;
}

// ------------------------------------------------------- engine queries

std::vector<OperationSpec> engine_specs() {
  std::vector<OperationSpec> specs;
  for (index_t n : {64, 96}) {
    specs.push_back(OperationSpec::trinv(1, n, 32));
    specs.push_back(OperationSpec::chol(1, n, 32));
  }
  specs.push_back(OperationSpec::sylv(1, 64, 64, 16));
  return specs;
}

EngineConfig engine_config(const fs::path& repo_dir) {
  EngineConfig cfg;
  cfg.service.repository_dir = repo_dir;
  cfg.service.workers = 2;
  // Deterministic, instant measurement source: the bench compares model
  // loading, not sampling.
  cfg.service.measure_factory = [](const ModelJob& job) {
    double h = 0.0;
    for (char c : ModelService::key_for(job).to_string()) {
      h = 0.9 * h + static_cast<double>(c);
    }
    return [h](const std::vector<index_t>& point) {
      double cost = 100.0 + h;
      for (index_t x : point) {
        const double v = static_cast<double>(x);
        cost += 2.0 * v + 0.03 * v * v;
      }
      SampleStats s;
      s.min = cost * 0.95;
      s.median = cost;
      s.mean = cost * 1.01;
      s.max = cost * 1.10;
      s.stddev = cost * 0.02;
      s.count = 5;
      return s;
    };
  };
  return cfg;
}

std::vector<SampleStats> predict_all(Engine& engine,
                                     const std::vector<OperationSpec>& specs) {
  std::vector<PredictQuery> queries;
  queries.reserve(specs.size());
  for (const OperationSpec& spec : specs) {
    queries.push_back(PredictQuery::of(spec));
  }
  std::vector<SampleStats> out;
  for (const Result<Prediction>& r : engine.predict_many(queries)) {
    bench::require_ok(r);
    out.push_back(r->ticks);
  }
  return out;
}

}  // namespace

int main() {
  const fs::path root =
      fs::temp_directory_path() /
      ("dlaperf_micro_load_" +
       std::to_string(static_cast<long long>(::getpid())));
  fs::remove_all(root);
  const fs::path text_dir = root / "text";
  const fs::path packed_dir = root / "packed";
  const fs::path unpacked_dir = root / "unpacked";
  const fs::path engine_dir = root / "engine";

  // ---- synthetic repository, packed twin ------------------------------
  const std::vector<ModelKey> keys = populate_text_repository(text_dir);
  fs::create_directories(packed_dir);
  const storage::PackStats packed = storage::pack_repository(
      text_dir, packed_dir / storage::kContainerFilename);
  std::printf("# packed %d models -> %zu bytes\n", kKeys, packed.bytes);

  // ---- open-to-first-predict timing -----------------------------------
  // Warm-up (page cache, allocator), then best-of-5 for each side.
  (void)open_and_predict(text_dir, keys);
  (void)open_and_predict(packed_dir, keys);
  double text_ms = 1e300;
  double binary_ms = 1e300;
  OpenPredict text_run, binary_run;
  for (int rep = 0; rep < 5; ++rep) {
    OpenPredict t = open_and_predict(text_dir, keys);
    OpenPredict b = open_and_predict(packed_dir, keys);
    text_ms = std::min(text_ms, t.ms);
    binary_ms = std::min(binary_ms, b.ms);
    text_run = std::move(t);
    binary_run = std::move(b);
  }
  const double speedup = text_ms / binary_ms;
  std::printf("# open-to-first-predict, %d keys: text %.3f ms, "
              "container %.3f ms, speedup %.1fx\n",
              kKeys, text_ms, binary_ms, speedup);

  bool eval_identical = true;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (!stats_identical(text_run.predictions[i],
                         binary_run.predictions[i])) {
      eval_identical = false;
      std::fprintf(stderr, "evaluation mismatch for %s\n",
                   keys[i].to_string().c_str());
    }
  }

  // ---- pack -> unpack byte identity -----------------------------------
  (void)storage::unpack_container(packed_dir / storage::kContainerFilename,
                                  unpacked_dir);
  const auto original = text_files(text_dir);
  const auto roundtrip = text_files(unpacked_dir);
  const bool roundtrip_identical = original == roundtrip;
  std::printf("# pack->unpack round-trip: %zu files, %s\n", original.size(),
              roundtrip_identical ? "byte-identical" : "MISMATCH");

  // ---- engine equivalence: text vs. compacted container ---------------
  const std::vector<OperationSpec> specs = engine_specs();
  std::vector<SampleStats> from_text;
  {
    Engine engine(engine_config(engine_dir));
    bench::require_ok(engine.prepare(specs, std::nullopt, nullptr));
    from_text = predict_all(engine, specs);
  }
  const storage::PackStats compacted =
      storage::compact_repository(engine_dir);
  std::printf("# compacted engine repository: %zu models, %zu sample "
              "sections, %zu bytes\n",
              compacted.models, compacted.sample_keys, compacted.bytes);

  bool engine_identical = true;
  index_t keys_from_container = 0;
  index_t keys_regenerated = 0;
  {
    Engine engine(engine_config(engine_dir));
    PrepareReport report;
    bench::require_ok(engine.prepare(specs, std::nullopt, &report));
    keys_from_container = report.keys_from_container();
    keys_regenerated = report.keys_generated();
    const std::vector<SampleStats> from_container =
        predict_all(engine, specs);
    for (std::size_t i = 0; i < from_text.size(); ++i) {
      if (!stats_identical(from_text[i], from_container[i])) {
        engine_identical = false;
        std::fprintf(stderr, "prediction mismatch for spec %zu\n", i);
      }
    }
  }
  std::printf("# engine on compacted repository: %lld/%zu keys from "
              "container, %lld regenerated, predictions %s\n",
              static_cast<long long>(keys_from_container),
              static_cast<std::size_t>(
                  keys_from_container + keys_regenerated),
              static_cast<long long>(keys_regenerated),
              engine_identical ? "bit-identical" : "MISMATCH");

  // ---- gates ----------------------------------------------------------
  const bool gate_speedup = speedup >= 10.0;
  const bool gate_container_served =
      keys_from_container > 0 && keys_regenerated == 0;
  const bool pass = gate_speedup && eval_identical && roundtrip_identical &&
                    engine_identical && gate_container_served;

  bench::BenchJson json;
  json.set("bench", std::string("micro_load"));
  json.set("keys", static_cast<index_t>(kKeys));
  json.set("text_open_predict_ms", text_ms);
  json.set("binary_open_predict_ms", binary_ms);
  json.set("speedup", speedup);
  json.set("container_bytes", static_cast<index_t>(packed.bytes));
  json.set("gate_speedup_10x", gate_speedup);
  json.set("eval_identical", eval_identical);
  json.set("roundtrip_identical", roundtrip_identical);
  json.set("engine_identical", engine_identical);
  json.set("keys_from_container", keys_from_container);
  json.set("pass", pass);
  json.write("BENCH_load.json");

  fs::remove_all(root);
  if (!pass) {
    std::fprintf(stderr, "micro_load: GATE FAILURE\n");
    return 1;
  }
  std::printf("# micro_load: all gates passed\n");
  return 0;
}
