// micro_predict -- the compiled sweep path vs the string-keyed per-call
// path, on the two sweep shapes the paper's Section IV services run:
//
//   - a 16-variant sylv ranking sweep (Fig IV.5): sylv traces carry
//     O((m/b)*(n/b)) calls but only O(m/b + n/b) distinct argument
//     shapes, so compiled prediction evaluates models per UNIQUE call;
//   - a trinv blocksize tuning sweep (Fig IV.2).
//
// The baseline is the pre-compiled-path hot loop: regenerate the trace at
// every sweep point and predict through the string-keyed ModelSet
// resolver (map lookup per call, linear region scan, one polynomial at a
// time). The compiled path is Engine::rank / Engine::tune, which compile
// each sweep point once, cache it in the sharded trace LRU, and predict
// over pre-resolved model slots.
//
// Model generation uses a deterministic synthetic cost surface and runs
// before the timed region (Engine::prepare). Three gates (acceptance
// criteria of the compiled-prediction work):
//   - sylv ranking:  compiled warm sweep >= 5x the string-keyed baseline,
//   - trinv tuning:  compiled warm sweep >= 2x the string-keyed baseline,
//   - trace cache:   second identical Engine sweep >= 10x the first
//                    (cold, cache-cleared) one,
// and every compiled prediction must be bit-identical to the baseline.
// Headline metrics land in BENCH_predict.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "predict/compiled_trace.hpp"
#include "support/bench_util.hpp"

namespace {

using namespace dlap;
namespace fs = std::filesystem;

MeasureFn synthetic_measure(double offset) {
  return [offset](const std::vector<index_t>& point) {
    double cost = 100.0 + offset;
    for (index_t x : point) {
      const double v = static_cast<double>(x);
      cost += 2.0 * v + 0.03 * v * v;
    }
    SampleStats s;
    s.min = cost * 0.95;
    s.median = cost;
    s.mean = cost * 1.01;
    s.max = cost * 1.10;
    s.stddev = cost * 0.02;
    s.count = 5;
    return s;
  };
}

EngineConfig config_for(const fs::path& dir) {
  EngineConfig cfg;
  cfg.service.repository_dir = dir;
  cfg.service.workers = 4;
  cfg.service.measure_factory = [](const ModelJob& job) {
    double h = 0.0;
    for (char c : ModelService::key_for(job).to_string()) {
      h = 0.9 * h + static_cast<double>(c);
    }
    return synthetic_measure(h);
  };
  return cfg;
}

bool identical(const Prediction& a, const Prediction& b) {
  return a.ticks.min == b.ticks.min && a.ticks.median == b.ticks.median &&
         a.ticks.mean == b.ticks.mean && a.ticks.max == b.ticks.max &&
         a.ticks.stddev == b.ticks.stddev && a.flops == b.flops &&
         a.calls == b.calls && a.skipped == b.skipped &&
         a.missing == b.missing;
}

/// Wall milliseconds of `iters` runs of fn (total, not per run).
template <class Fn>
double wall_ms(Fn&& fn, int iters) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// The pre-compiled-path predictor: string-keyed ModelSet over the
/// repository's models for every distinct (routine, flags) of `specs`.
ModelSet baseline_models(Engine& engine,
                         const std::vector<OperationSpec>& specs) {
  ModelSet set;
  for (const OperationSpec& spec : specs) {
    for (const KernelCall& call : spec.trace()) {
      const std::string routine = routine_name(call.routine);
      const std::string flags = call.flag_key();
      if (set.find(routine, flags) != nullptr || call_is_degenerate(call)) {
        continue;
      }
      auto model = engine.service().find(
          ModelKey{routine, engine.config().system.backend,
                   engine.config().system.locality, flags});
      if (model == nullptr) {
        std::fprintf(stderr, "baseline model missing for %s/%s\n",
                     routine.c_str(), flags.c_str());
        std::exit(1);
      }
      set.add(std::move(model));
    }
  }
  return set;
}

struct SweepTimings {
  double baseline_ms = 0.0;  ///< string-keyed per-call path, per sweep
  double cold_ms = 0.0;      ///< compiled path, trace cache cleared
  double warm_ms = 0.0;      ///< compiled path, trace cache hit
  bool identical = true;     ///< compiled == baseline, bit for bit
};

/// Times one sweep shape. `run_engine` executes the engine sweep and
/// returns its predictions; `specs` are the sweep points in order.
template <class RunEngine>
SweepTimings time_sweep(Engine& engine,
                        const std::vector<OperationSpec>& specs,
                        RunEngine&& run_engine, int reps, int warm_iters) {
  using namespace dlap::bench;
  SweepTimings out;
  const ModelSet set = baseline_models(engine, specs);
  const Predictor baseline(set);

  // Bit-identity first (also warms everything once).
  const std::vector<Prediction> compiled = run_engine();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const Prediction reference = baseline.predict(specs[i].trace());
    out.identical = out.identical && identical(compiled[i], reference);
  }

  std::vector<double> baseline_ms, cold_ms, warm_ms;
  for (int r = 0; r < reps; ++r) {
    baseline_ms.push_back(wall_ms(
        [&] {
          // The old hot loop: regenerate the trace at every sweep point,
          // resolve each call by string key, evaluate one call at a time.
          for (const OperationSpec& spec : specs) {
            (void)baseline.predict(spec.trace());
          }
        },
        1));
    engine.clear_trace_cache();
    cold_ms.push_back(wall_ms([&] { (void)run_engine(); }, 1));
    warm_ms.push_back(wall_ms([&] { (void)run_engine(); }, warm_iters) /
                      warm_iters);
  }
  out.baseline_ms = median(baseline_ms);
  out.cold_ms = median(cold_ms);
  out.warm_ms = median(warm_ms);
  return out;
}

}  // namespace

int main() {
  using namespace dlap::bench;

  const fs::path dir = fs::temp_directory_path() / "dlap_micro_predict";
  fs::remove_all(dir);
  Engine engine(config_for(dir));

  // ---------------------------------------------------------- sweeps
  const index_t sylv_mn = 256, sylv_b = 16;
  const RankQuery sylv_rank = RankQuery::sylv_variants(sylv_mn, sylv_mn,
                                                       sylv_b);
  TuneQuery trinv_tune;
  trinv_tune.spec = OperationSpec::trinv(2, 256, 16);
  trinv_tune.lo = 16;
  trinv_tune.hi = 160;
  trinv_tune.step = 16;
  std::vector<OperationSpec> trinv_specs;
  for (index_t b = trinv_tune.lo; b <= trinv_tune.hi; b += trinv_tune.step) {
    OperationSpec s = trinv_tune.spec;
    s.blocksize = b;
    trinv_specs.push_back(s);
  }

  // Models for both sweeps, generated as one batch outside the timing.
  std::vector<OperationSpec> all_specs = sylv_rank.candidates;
  all_specs.insert(all_specs.end(), trinv_specs.begin(), trinv_specs.end());
  require_ok(engine.prepare(all_specs));

  // Trace redundancy the compiler exploits (the issue's O((m/b)(n/b)) vs
  // O(m/b + n/b) structure, printed for the record).
  const dlap::CallTrace sylv_trace =
      dlap::trace_sylv(1, sylv_mn, sylv_mn, sylv_b);
  const auto sylv_compiled = dlap::CompiledTrace::compile(sylv_trace);
  print_comment(
      "sylv variant 1 trace: " + std::to_string(sylv_compiled.source_calls()) +
      " calls, " + std::to_string(sylv_compiled.unique_calls()) +
      " unique -> " +
      std::to_string(static_cast<double>(sylv_compiled.source_calls()) /
                     static_cast<double>(sylv_compiled.unique_calls())) +
      "x evaluation compression");

  // ------------------------------------------------------- measurement
  const int reps = 9;
  const SweepTimings sylv = time_sweep(
      engine, sylv_rank.candidates,
      [&] {
        return require_ok(engine.rank(sylv_rank)).predictions;
      },
      reps, 20);
  const SweepTimings trinv = time_sweep(
      engine, trinv_specs,
      [&] {
        return require_ok(engine.tune(trinv_tune)).predictions;
      },
      reps, 20);

  const double sylv_speedup = sylv.baseline_ms / sylv.warm_ms;
  const double trinv_speedup = trinv.baseline_ms / trinv.warm_ms;
  const double cache_speedup = sylv.cold_ms / sylv.warm_ms;
  const double sylv_ns_per_query =
      sylv.warm_ms * 1e6 / static_cast<double>(sylv_rank.candidates.size());
  const double baseline_ns_per_query =
      sylv.baseline_ms * 1e6 /
      static_cast<double>(sylv_rank.candidates.size());

  print_header({"sweep", "baseline_ms", "cold_ms", "warm_ms", "speedup",
                "identical"});
  std::printf("  %14s", "sylv_rank16");
  print_row({sylv.baseline_ms, sylv.cold_ms, sylv.warm_ms, sylv_speedup,
             sylv.identical ? 1.0 : 0.0});
  std::printf("  %14s", "trinv_tune10");
  print_row({trinv.baseline_ms, trinv.cold_ms, trinv.warm_ms, trinv_speedup,
             trinv.identical ? 1.0 : 0.0});

  const auto cache = engine.trace_cache_stats();
  print_comment("trace cache: " + std::to_string(cache.hits) + " hits, " +
                std::to_string(cache.misses) + " misses, " +
                std::to_string(cache.size) + " entries");

  const bool identical_ok = sylv.identical && trinv.identical;
  const bool pass = identical_ok && sylv_speedup >= 5.0 &&
                    trinv_speedup >= 2.0 && cache_speedup >= 10.0;
  print_comment(identical_ok
                    ? "compiled predictions bit-identical to the "
                      "string-keyed path"
                    : "IDENTITY VIOLATION: compiled differs from baseline");
  print_comment("sylv ranking speedup:  " + std::to_string(sylv_speedup) +
                " (need >= 5)");
  print_comment("trinv tuning speedup:  " + std::to_string(trinv_speedup) +
                " (need >= 2)");
  print_comment("warm vs cold sweep:    " + std::to_string(cache_speedup) +
                " (need >= 10)");
  print_comment(pass ? "PASS" : "FAIL");

  BenchJson json;
  json.set("bench", std::string("micro_predict"));
  json.set("sylv_baseline_ns_per_query", baseline_ns_per_query);
  json.set("sylv_compiled_ns_per_query", sylv_ns_per_query);
  json.set("sylv_rank_speedup", sylv_speedup);
  json.set("trinv_tune_speedup", trinv_speedup);
  json.set("trace_cache_warm_speedup", cache_speedup);
  json.set("sylv_trace_calls", sylv_compiled.source_calls());
  json.set("sylv_trace_unique_calls", sylv_compiled.unique_calls());
  json.set("trace_cache_hits", static_cast<index_t>(cache.hits));
  json.set("trace_cache_misses", static_cast<index_t>(cache.misses));
  json.set("bit_identical", identical_ok);
  json.set("pass", pass);
  json.write("BENCH_predict.json");

  fs::remove_all(dir);
  return pass ? 0 : 1;
}
