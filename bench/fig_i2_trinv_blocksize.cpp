// Fig I.2 -- Inversion of a lower triangular matrix: measured efficiency
// as a function of the block size b at fixed matrix size.
//
// Expected shape (paper): efficiency drops for very small and very large
// block sizes; variants 1-3 peak near b ~ 100.

#include "support/bench_util.hpp"

int main() {
  using namespace dlap;
  using namespace dlap::bench;
  const Scales sc = current_scales();
  const std::string backend = system_a();
  const index_t n = sc.trinv_fixed_n;

  print_comment("Fig I.2: trinv efficiency vs blocksize b (n = " +
                std::to_string(n) + ", backend " + backend + ")");
  print_header({"b", "variant1", "variant2", "variant3", "variant4"});

  for (index_t b = 8; b <= sc.bsweep_max; b += 8) {
    std::vector<double> eff;
    for (int v = 1; v <= kTrinvVariantCount; ++v) {
      const double ticks = measure_trinv_ticks(backend, v, n, b, sc.reps);
      eff.push_back(trinv_efficiency(n, ticks));
    }
    print_row(static_cast<double>(b), eff);
  }
  return 0;
}
