// Fig III.4 -- sequence of steps in the construction of a piecewise model
// through Model Expansion (the paper shows this as a schematic; we emit
// the actual construction event log of a real dtrsm model, which plots to
// the same kind of picture).

#include "support/bench_util.hpp"

int main() {
  using namespace dlap;
  using namespace dlap::bench;
  const Scales sc = current_scales();
  const index_t hi = sc.model_max_2d;

  ModelingRequest req;
  req.routine = RoutineId::Trsm;
  req.flags = {'L', 'L', 'N', 'N'};
  req.domain = Region({8, 8}, {hi, hi});
  req.fixed_ld = 2500;
  req.sampler.reps = sc.reps;

  ExpansionConfig cfg;
  cfg.base.error_bound = 0.10;
  cfg.base.degree = 3;
  cfg.direction = ExpansionConfig::Direction::TowardOrigin;
  cfg.initial_size = 64;

  Modeler modeler(backend_instance(system_a()));
  const GenerationResult gen = modeler.run_expansion(req, cfg);

  print_comment("Fig III.4: Model Expansion construction sequence for "
                "dtrsm(L,L,N,N) on [8," + std::to_string(hi) + "]^2");
  print_header({"step", "event", "m_lo", "m_hi", "n_lo", "n_hi",
                "error", "samples"});
  const char* kind_names[] = {"new", "expand", "reject", "final", "split"};
  index_t step = 0;
  for (const GenerationEvent& e : gen.events) {
    std::printf("  %6lld %8s", static_cast<long long>(step++),
                kind_names[static_cast<int>(e.kind)]);
    print_row({static_cast<double>(e.region.lo(0)),
               static_cast<double>(e.region.hi(0)),
               static_cast<double>(e.region.lo(1)),
               static_cast<double>(e.region.hi(1)), e.error,
               static_cast<double>(e.samples_so_far)});
  }
  print_comment("final model: " + std::to_string(gen.model.pieces().size()) +
                " regions, " + std::to_string(gen.unique_samples) +
                " samples, avg error " +
                std::to_string(100.0 * gen.average_error) + " %");
  return 0;
}
