// Fig III.4 -- sequence of steps in the construction of a piecewise model
// through Model Expansion (the paper shows this as a schematic; we emit
// the actual construction event log of a real dtrsm model, which plots to
// the same kind of picture).
//
// The event stream comes from the incremental step-machine interface
// (make_expansion_stepper): the machine emits each batch of required
// sample points, the bench fulfills it through the real Sampler, and
// events are printed as soon as the machine produces them -- the same
// code path the ModelService's batched generation drives.

#include "support/bench_util.hpp"

int main() {
  using namespace dlap;
  using namespace dlap::bench;
  const Scales sc = current_scales();
  const index_t hi = sc.model_max_2d;

  ModelingRequest req;
  req.routine = RoutineId::Trsm;
  req.flags = {'L', 'L', 'N', 'N'};
  req.domain = Region({8, 8}, {hi, hi});
  req.fixed_ld = 2500;
  req.sampler.reps = sc.reps;

  ExpansionConfig cfg;
  cfg.base.error_bound = 0.10;
  cfg.base.degree = 3;
  cfg.direction = ExpansionConfig::Direction::TowardOrigin;
  cfg.initial_size = 64;

  Modeler modeler(backend_instance(system_a()));
  const MeasureFn measure = modeler.make_measure_fn(req);
  auto stepper = make_expansion_stepper(req.domain, cfg);

  print_comment("Fig III.4: Model Expansion construction sequence for "
                "dtrsm(L,L,N,N) on [8," + std::to_string(hi) + "]^2");
  print_header({"step", "event", "m_lo", "m_hi", "n_lo", "n_hi",
                "error", "samples"});

  std::size_t printed = 0;
  index_t step = 0;
  while (!stepper->done()) {
    print_generation_events(*stepper, &printed, &step);
    // Fulfill the machine's next batch (a region's sample grid) through
    // the real Sampler and advance.
    std::vector<SampleStats> stats;
    stats.reserve(stepper->required().size());
    for (const auto& point : stepper->required()) {
      stats.push_back(measure(point));
    }
    stepper->supply(stats);
  }
  print_generation_events(*stepper, &printed, &step);

  const GenerationResult gen = stepper->take_result();
  print_comment("final model: " + std::to_string(gen.model.pieces().size()) +
                " regions, " + std::to_string(gen.unique_samples) +
                " samples, avg error " +
                std::to_string(100.0 * gen.average_error) + " %");
  return 0;
}
