// Fig IV.4 -- trinv with multithreaded BLAS: predictions and observations
// on all cores. The paper links against multithreaded OpenBLAS on 8
// cores; we point the engine at the thread-pool-decorated system-A
// backend and it regenerates all models from the threaded kernels.
//
// NOTE: the reproduction host may expose a single hardware core; the
// threaded code path is then exercised under oversubscription, which still
// yields a distinct performance signature (fork/join overhead instead of
// speedup) for the models to capture. Crossovers between variants are
// detected and reported like the paper's variant-3/4 crossover at n~650.

#include <thread>

#include "common/env.hpp"
#include "predict/ranking.hpp"
#include "support/bench_util.hpp"

int main() {
  using namespace dlap;
  using namespace dlap::bench;
  const Scales sc = current_scales();

  index_t threads = env_int("DLAPERF_THREADS", 0);
  if (threads <= 0) {
    threads = static_cast<index_t>(std::thread::hardware_concurrency());
    if (threads <= 1) threads = 4;  // oversubscribe: still a real signature
  }
  const std::string backend = system_a() + "@" + std::to_string(threads);

  Engine& engine = shared_engine();
  const SystemSpec system{backend, Locality::InCache};
  require_ok(engine.prepare(
      RankQuery::trinv_variants(sc.sweep_max, sc.blocksize).candidates,
      system));

  print_comment("Fig IV.4: trinv with multithreaded BLAS (" + backend +
                ", hardware threads: " +
                std::to_string(std::thread::hardware_concurrency()) + ")");
  print_header({"n", "meas_v1", "meas_v2", "meas_v3", "meas_v4",
                "pred_v1", "pred_v2", "pred_v3", "pred_v4"});

  const index_t step = sc.paper ? 64 : 32;
  std::vector<std::vector<double>> meas_series(kTrinvVariantCount),
      pred_series(kTrinvVariantCount);
  std::vector<index_t> sizes;
  index_t ranked_correctly = 0;
  index_t points = 0;
  for (index_t n = 96; n <= sc.sweep_max; n += step) {
    sizes.push_back(n);
    RankQuery q = RankQuery::trinv_variants(n, sc.blocksize);
    q.system = system;
    const std::vector<double> pred_ticks =
        require_ok(engine.rank(q)).median_ticks();

    std::vector<double> meas_ticks, row;
    for (int v = 1; v <= kTrinvVariantCount; ++v) {
      const double mt =
          measure_trinv_ticks(backend, v, n, sc.blocksize, sc.reps);
      meas_ticks.push_back(mt);
      meas_series[v - 1].push_back(mt);
      row.push_back(trinv_efficiency(n, mt));
    }
    for (int v = 1; v <= kTrinvVariantCount; ++v) {
      pred_series[v - 1].push_back(pred_ticks[v - 1]);
      row.push_back(trinv_efficiency(n, pred_ticks[v - 1]));
    }
    print_row(static_cast<double>(n), row);
    ++points;
    if (rank_order(pred_ticks) == rank_order(meas_ticks)) ++ranked_correctly;
  }
  print_comment("full ranking correct at " + std::to_string(ranked_correctly) +
                "/" + std::to_string(points) + " sizes");

  // Crossover analysis between every variant pair, measured vs predicted.
  for (int a = 0; a < kTrinvVariantCount; ++a) {
    for (int b = a + 1; b < kTrinvVariantCount; ++b) {
      const auto mx = crossovers(meas_series[a], meas_series[b]);
      const auto px = crossovers(pred_series[a], pred_series[b]);
      if (mx.empty() && px.empty()) continue;
      std::string line = "crossover v" + std::to_string(a + 1) + "/v" +
                         std::to_string(b + 1) + ": measured at n ~ {";
      for (index_t i : mx) line += std::to_string(sizes[i]) + " ";
      line += "}, predicted at n ~ {";
      for (index_t i : px) line += std::to_string(sizes[i]) + " ";
      line += "}";
      print_comment(line);
    }
  }
  return 0;
}
