// Fig IV.5 -- triangular Sylvester equation: predictions vs observations
// for all 16 algorithmic variants (square problems, blocksize per scale).
// Each size is one RankQuery over the sixteen schedules.
//
// Expected shape (paper): the variants fall into two performance groups
// separated by a wide gap (the paper sees 4 variants near 20% efficiency
// and 12 below 2%); the prediction must (1) separate the groups and
// (2) rank the top variants correctly.

#include "predict/ranking.hpp"
#include "support/bench_util.hpp"

int main() {
  using namespace dlap;
  using namespace dlap::bench;
  const Scales sc = current_scales();
  const std::string backend = system_a();
  const index_t b = sc.sylv_blocksize;

  Engine& engine = shared_engine();
  const SystemSpec system{backend, Locality::InCache};
  require_ok(engine.prepare(
      RankQuery::sylv_variants(sc.sylv_max, sc.sylv_max, b).candidates,
      system));

  print_comment("Fig IV.5: sylv, 16 variants, blocksize " +
                std::to_string(b) + ", backend " + backend);
  std::vector<std::string> cols{"n"};
  for (int v = 1; v <= kSylvVariantCount; ++v) {
    cols.push_back("meas_v" + std::to_string(v));
  }
  for (int v = 1; v <= kSylvVariantCount; ++v) {
    cols.push_back("pred_v" + std::to_string(v));
  }
  print_header(cols);

  const index_t step = sc.paper ? 128 : 96;
  std::vector<double> last_meas, last_pred;
  for (index_t n = 96; n <= sc.sylv_max; n += step) {
    RankQuery q = RankQuery::sylv_variants(n, n, b);
    q.system = system;
    const std::vector<double> pred_ticks =
        require_ok(engine.rank(q)).median_ticks();

    std::vector<double> meas_ticks, row;
    for (int v = 1; v <= kSylvVariantCount; ++v) {
      const double mt = measure_sylv_ticks(backend, v, n, b, sc.reps);
      meas_ticks.push_back(mt);
      row.push_back(sylv_efficiency(n, mt));
    }
    for (double pt : pred_ticks) row.push_back(sylv_efficiency(n, pt));
    print_row(static_cast<double>(n), row);
    last_meas = meas_ticks;
    last_pred = pred_ticks;
  }

  // Group analysis at the largest size.
  const auto mfast = fast_group(last_meas);
  const auto pfast = fast_group(last_pred);
  auto group_str = [](const std::vector<index_t>& g) {
    std::string s = "{";
    for (index_t i : g) s += "v" + std::to_string(i + 1) + " ";
    return s + "}";
  };
  print_comment("measured fast group:  " + group_str(mfast));
  print_comment("predicted fast group: " + group_str(pfast));
  // Variants inside one group run within noise of each other, so the
  // robust success metric is group containment: every variant the model
  // calls fast must indeed belong to the measured fast group.
  index_t contained = 0;
  for (index_t v : pfast) {
    for (index_t m : mfast) contained += (v == m);
  }
  print_comment("predicted-fast within measured-fast: " +
                std::to_string(contained) + "/" +
                std::to_string(pfast.size()));
  print_comment("top-4 overlap (predicted vs measured): " +
                std::to_string(topk_overlap(last_pred, last_meas, 4)));
  print_comment("kendall tau over all 16 variants: " +
                std::to_string(kendall_tau(last_pred, last_meas)));

  const auto morder = rank_order(last_meas);
  const double sep = last_meas[morder[morder.size() - 1]] /
                     last_meas[morder[0]];
  print_comment("measured slowest/fastest ratio: " + std::to_string(sep));
  return 0;
}
