// Modeling-cost google-benchmark suite: how expensive are fitting, model
// evaluation, full strategy runs (on synthetic data), trace extraction and
// prediction? These are the framework's own overheads -- the quantities
// that must stay negligible against kernel execution for the paper's
// approach to pay off.

#include <benchmark/benchmark.h>

#include "modeler/fit.hpp"
#include "modeler/repository.hpp"
#include "modeler/strategies.hpp"
#include "predict/predictor.hpp"
#include "predict/trace.hpp"

namespace {

using namespace dlap;

MeasureFn synthetic_fn() {
  return [](const std::vector<index_t>& p) {
    SampleStats s;
    double v = 100.0;
    for (index_t x : p) v += static_cast<double>(x * x);
    s.min = s.median = s.mean = s.max = v;
    s.count = 1;
    return s;
  };
}

void BM_fit_polynomial(benchmark::State& state) {
  const Region r({8, 8}, {512, 512});
  const MeasureFn fn = synthetic_fn();
  std::vector<SamplePoint> samples;
  for (index_t x = 8; x <= 512; x += 56) {
    for (index_t y = 8; y <= 512; y += 56) {
      samples.push_back({{x, y}, fn({x, y})});
    }
  }
  for (auto _ : state) {
    const FitResult fit =
        fit_polynomial(r, samples, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(fit.erelmax);
  }
  state.counters["samples"] = static_cast<double>(samples.size());
}
BENCHMARK(BM_fit_polynomial)->Arg(2)->Arg(3)->Unit(benchmark::kMicrosecond);

void BM_strategy_refinement(benchmark::State& state) {
  const Region domain({8, 8}, {512, 512});
  RefinementConfig cfg;
  cfg.base.error_bound = 0.05;
  cfg.base.degree = 2;  // forces refinement of the quadratic+jump surface
  cfg.min_region_size = static_cast<index_t>(state.range(0));
  const MeasureFn fn = [](const std::vector<index_t>& p) {
    SampleStats s;
    double v = 100.0 + static_cast<double>(p[0] * p[1]);
    if (p[0] > 256) v *= 1.5;  // jump
    s.min = s.median = s.mean = s.max = v;
    s.count = 1;
    return s;
  };
  for (auto _ : state) {
    const GenerationResult gen =
        generate_adaptive_refinement(domain, fn, cfg);
    benchmark::DoNotOptimize(gen.unique_samples);
  }
}
BENCHMARK(BM_strategy_refinement)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_strategy_expansion(benchmark::State& state) {
  const Region domain({8, 8}, {512, 512});
  ExpansionConfig cfg;
  cfg.base.error_bound = 0.05;
  cfg.base.degree = 2;
  cfg.initial_size = static_cast<index_t>(state.range(0));
  cfg.direction = ExpansionConfig::Direction::TowardOrigin;
  const MeasureFn fn = synthetic_fn();
  for (auto _ : state) {
    const GenerationResult gen = generate_model_expansion(domain, fn, cfg);
    benchmark::DoNotOptimize(gen.unique_samples);
  }
}
BENCHMARK(BM_strategy_expansion)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

PiecewiseModel synthetic_model() {
  const Region domain({8, 8}, {512, 512});
  RefinementConfig cfg;
  cfg.base.error_bound = 0.01;
  cfg.base.degree = 2;
  cfg.min_region_size = 64;
  return generate_adaptive_refinement(domain, synthetic_fn(), cfg).model;
}

void BM_model_evaluate(benchmark::State& state) {
  const PiecewiseModel model = synthetic_model();
  std::vector<index_t> p{123, 345};
  for (auto _ : state) {
    const SampleStats s = model.evaluate(p);
    benchmark::DoNotOptimize(s.median);
  }
  state.counters["regions"] = static_cast<double>(model.pieces().size());
}
BENCHMARK(BM_model_evaluate)->Unit(benchmark::kNanosecond);

void BM_trace_trinv(benchmark::State& state) {
  for (auto _ : state) {
    const CallTrace t = trace_trinv(3, state.range(0), 96);
    benchmark::DoNotOptimize(t.size());
  }
}
BENCHMARK(BM_trace_trinv)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_trace_sylv(benchmark::State& state) {
  for (auto _ : state) {
    const CallTrace t = trace_sylv(1, state.range(0), state.range(0), 96);
    benchmark::DoNotOptimize(t.size());
  }
}
BENCHMARK(BM_trace_sylv)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_serialize_roundtrip(benchmark::State& state) {
  RoutineModel m;
  m.key = {"dtrsm", "blocked", Locality::InCache, "LLNN"};
  m.model = synthetic_model();
  for (auto _ : state) {
    const std::string text = ModelRepository::serialize(m);
    const RoutineModel back = ModelRepository::deserialize(text);
    benchmark::DoNotOptimize(back.unique_samples);
  }
}
BENCHMARK(BM_serialize_roundtrip)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
