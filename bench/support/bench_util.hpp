#pragma once
// Shared support for the figure-reproduction benches.
//
// Every fig_* binary prints the series the corresponding paper figure
// plots, as whitespace-aligned columns with a '#'-prefixed header, so the
// output can be fed straight to gnuplot/pandas. Two scales are supported:
//   - default: CI-friendly domains (minutes for the whole suite),
//   - DLAPERF_PAPER_SCALE=1: the paper's exact domains.
// Model access goes through one process-wide Engine: queries derive their
// modeling jobs automatically, generated models land in an on-disk
// repository (DLAPERF_MODEL_DIR, default ./dlaperf_models) keyed by
// routine/backend/locality/flags, so the model-hungry benches share one
// generation pass; a batch of missing models is generated concurrently
// (DLAPERF_WORKERS, default hardware concurrency).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "algorithms/sylv.hpp"
#include "algorithms/trinv.hpp"
#include "blas/registry.hpp"
#include "modeler/modeler.hpp"
#include "modeler/repository.hpp"
#include "modeler/strategies.hpp"
#include "predict/predictor.hpp"
#include "predict/trace.hpp"
#include "sampler/machine.hpp"
#include "sampler/sampler.hpp"
#include "service/model_service.hpp"

namespace dlap::bench {

/// Problem-size scales for the current run.
struct Scales {
  bool paper = false;
  index_t sweep_max = 384;      ///< largest n in size sweeps (paper: 1024)
  index_t sweep_step = 8;       ///< size sweep granularity
  index_t trinv_fixed_n = 256;  ///< block-size sweeps (paper: 1000)
  index_t blocksize = 96;       ///< the paper's default block size
  index_t bsweep_max = 256;     ///< largest block size in b sweeps
  index_t model_max_2d = 384;   ///< 2-D model domain upper bound
  index_t model_max_3d = 256;   ///< 3-D (gemm) model domain upper bound
  index_t model_max_unb = 256;  ///< unblocked-kernel model domain bound
  index_t sylv_max = 384;       ///< sylv sweep bound (paper: 1024)
  /// sylv block size. Default 16: on hosts with very large last-level
  /// caches the memory-traffic penalty of push-style schedules only shows
  /// once the pull gemms become skinny; the paper's 96 is used at paper
  /// scale.
  index_t sylv_blocksize = 16;
  index_t reps = 3;             ///< sampler repetitions
};

/// Reads DLAPERF_PAPER_SCALE / DLAPERF_REPS and derives the scales.
[[nodiscard]] Scales current_scales();

/// The three "libraries" of the paper's comparisons.
[[nodiscard]] std::vector<std::string> library_backends();

/// System A (Harpertown stand-in) and system B (Sandy Bridge stand-in).
[[nodiscard]] std::string system_a();
[[nodiscard]] std::string system_b();

// ------------------------------------------------------------- printing

void print_comment(const std::string& text);
void print_header(const std::vector<std::string>& columns);
void print_row(const std::vector<double>& values);
void print_row(double x, const std::vector<double>& values);

/// Streams a 2-D generation stepper's construction events as table rows
/// (step, event kind, region bounds, error, samples) -- prints only the
/// events produced since the previous call, advancing *printed / *step.
/// Used by the fig_iii4/fig_iii5 walk-throughs between batches.
void print_generation_events(const GenerationStepper& stepper,
                             std::size_t* printed, index_t* step);

// -------------------------------------------------- machine-readable out

/// Tiny flat-JSON-object writer: the micro benches dump their headline
/// metrics (ns/query, speedups, pass/fail gates) as BENCH_<name>.json so
/// the perf trajectory is tracked across PRs (CI uploads the files as
/// artifacts). Fields keep insertion order; non-finite numbers render as
/// null.
class BenchJson {
 public:
  void set(const std::string& key, double value);
  void set(const std::string& key, index_t value);
  void set(const std::string& key, bool value);
  void set(const std::string& key, const std::string& value);

  [[nodiscard]] std::string to_string() const;

  /// Writes the object to `path` (e.g. "BENCH_predict.json") and prints a
  /// comment naming the file. Exits nonzero on I/O failure -- a perf-smoke
  /// run without its artifact is a failed run.
  void write(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;  // key, rendered
};

// -------------------------------------------------------- engine access

/// The Adaptive Refinement configuration the paper selects in III-D3
/// (error bound 10%, minimum region size 32).
[[nodiscard]] RefinementConfig paper_refinement_config();

/// The process-wide engine every bench queries: repository at
/// DLAPERF_MODEL_DIR, DLAPERF_WORKERS generation workers, the paper's
/// refinement configuration and generation leading dimension (2500).
/// Benches call Engine::prepare with their sweep's largest specs so the
/// whole sweep's models are generated as one concurrent batch up front.
[[nodiscard]] Engine& shared_engine();

/// Unwraps a Result or exits with the status on stderr (a bench has no
/// recovery path for a failed query). The lvalue overload returns a
/// reference into the Result; the rvalue overload moves the value out, so
/// unwrapping a temporary (`require_ok(engine.rank(q))`) can never
/// dangle.
template <class T>
const T& require_ok(const Result<T>& result) {
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().to_string().c_str());
    std::exit(1);
  }
  return *result;
}

template <class T>
T require_ok(Result<T>&& result) {
  require_ok(static_cast<const Result<T>&>(result));
  return std::move(*result);
}

/// Exits with the status on stderr unless it is Ok (for Engine::prepare).
void require_ok(const Status& status);

// ----------------------------------------------------- direct execution

/// Median ticks of actually executing trinv variant `variant` with the
/// given backend (fresh well-conditioned operand per repetition).
[[nodiscard]] double measure_trinv_ticks(const std::string& backend,
                                         int variant, index_t n,
                                         index_t blocksize, index_t reps);

/// Median ticks of actually executing sylv variant `variant` (m = n).
[[nodiscard]] double measure_sylv_ticks(const std::string& backend,
                                        int variant, index_t n,
                                        index_t blocksize, index_t reps);

/// Median ticks of actually executing chol variant `variant` (fresh SPD
/// operand per repetition).
[[nodiscard]] double measure_chol_ticks(const std::string& backend,
                                        int variant, index_t n,
                                        index_t blocksize, index_t reps);

/// Efficiency of a trinv / sylv / chol run from its tick count.
[[nodiscard]] double trinv_efficiency(index_t n, double ticks);
[[nodiscard]] double sylv_efficiency(index_t n, double ticks);
[[nodiscard]] double chol_efficiency(index_t n, double ticks);

}  // namespace dlap::bench
