#include "bench_util.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "algorithms/chol.hpp"
#include "algorithms/sylv.hpp"
#include "algorithms/trinv.hpp"
#include "common/env.hpp"
#include "common/matrix.hpp"
#include "common/matrix_util.hpp"
#include "common/rng.hpp"
#include "sampler/stats.hpp"
#include "sampler/ticks.hpp"

namespace dlap::bench {

Scales current_scales() {
  Scales s;
  s.paper = paper_scale();
  if (s.paper) {
    s.sweep_max = 1024;
    s.trinv_fixed_n = 1000;
    s.model_max_2d = 1024;
    s.model_max_3d = 1024;
    s.sylv_max = 1024;
    s.sylv_blocksize = 96;  // the paper's block size
    s.reps = 5;
  }
  s.reps *= static_cast<index_t>(rep_multiplier());
  return s;
}

std::vector<std::string> library_backends() {
  return {"naive", "blocked", "packed"};
}

std::string system_a() { return "blocked"; }
std::string system_b() { return "packed"; }

void print_comment(const std::string& text) {
  std::printf("# %s\n", text.c_str());
}

void print_header(const std::vector<std::string>& columns) {
  std::printf("#");
  for (const auto& c : columns) std::printf(" %14s", c.c_str());
  std::printf("\n");
}

void print_row(const std::vector<double>& values) {
  std::printf(" ");
  for (double v : values) std::printf(" %14.6g", v);
  std::printf("\n");
}

void print_row(double x, const std::vector<double>& values) {
  std::printf("  %14.6g", x);
  for (double v : values) std::printf(" %14.6g", v);
  std::printf("\n");
}

void print_generation_events(const GenerationStepper& stepper,
                             std::size_t* printed, index_t* step) {
  // Label order matches GenerationEvent::Kind.
  static const char* kKindNames[] = {"new", "expand", "reject", "final",
                                     "split"};
  const auto& events = stepper.events();
  for (; *printed < events.size(); ++*printed) {
    const GenerationEvent& e = events[*printed];
    std::printf("  %6lld %8s", static_cast<long long>((*step)++),
                kKindNames[static_cast<int>(e.kind)]);
    print_row({static_cast<double>(e.region.lo(0)),
               static_cast<double>(e.region.hi(0)),
               static_cast<double>(e.region.lo(1)),
               static_cast<double>(e.region.hi(1)), e.error,
               static_cast<double>(e.samples_so_far)});
  }
}

namespace {
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

void BenchJson::set(const std::string& key, double value) {
  char buf[64];
  if (std::isfinite(value)) {
    std::snprintf(buf, sizeof buf, "%.17g", value);
  } else {
    std::snprintf(buf, sizeof buf, "null");
  }
  fields_.emplace_back(key, buf);
}

void BenchJson::set(const std::string& key, index_t value) {
  fields_.emplace_back(key, std::to_string(value));
}

void BenchJson::set(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
}

void BenchJson::set(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, "\"" + json_escape(value) + "\"");
}

std::string BenchJson::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i) out += ",";
    out += "\n  \"" + json_escape(fields_[i].first) +
           "\": " + fields_[i].second;
  }
  out += "\n}\n";
  return out;
}

void BenchJson::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  const std::string body = to_string();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  if (std::fclose(f) != 0 || !ok) {
    std::fprintf(stderr, "short write to %s\n", path.c_str());
    std::exit(1);
  }
  print_comment("wrote " + path);
}

RefinementConfig paper_refinement_config() {
  RefinementConfig cfg;
  cfg.base.error_bound = 0.10;  // the paper's configuration (c)
  cfg.base.degree = 3;
  cfg.base.granularity = 8;
  cfg.base.grid_points_per_dim = 4;
  cfg.min_region_size = 32;
  return cfg;
}

Engine& shared_engine() {
  static Engine engine([] {
    EngineConfig cfg;
    cfg.service.repository_dir =
        env_string("DLAPERF_MODEL_DIR", "dlaperf_models");
    cfg.service.workers = env_int("DLAPERF_WORKERS", 0);
    cfg.service.refinement = paper_refinement_config();
    cfg.service.verbose = true;
    cfg.planning.fixed_ld = 2500;  // the paper fixes ld = 2500 throughout
    cfg.planning.reps = current_scales().reps;
    return cfg;
  }());
  return engine;
}

void require_ok(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "query failed: %s\n", status.to_string().c_str());
    std::exit(1);
  }
}

double measure_trinv_ticks(const std::string& backend, int variant,
                           index_t n, index_t blocksize, index_t reps) {
  ExecContext ctx(backend_instance(backend));
  Rng rng(2026);
  Matrix l0(n, n);
  fill_lower_triangular(l0.view(), rng);
  Matrix work(n, n);

  std::vector<double> ticks;
  // One warm-up run absorbs first-call initialization.
  for (index_t r = 0; r <= reps; ++r) {
    copy_matrix(l0.view(), work.view());
    const std::uint64_t t0 = read_ticks();
    trinv_blocked(ctx, variant, n, work.data(), n, blocksize);
    const std::uint64_t t1 = read_ticks();
    if (r > 0) ticks.push_back(static_cast<double>(t1 - t0));
  }
  return summarize(std::move(ticks)).median;
}

double measure_sylv_ticks(const std::string& backend, int variant, index_t n,
                          index_t blocksize, index_t reps) {
  ExecContext ctx(backend_instance(backend));
  Rng rng(4711);
  Matrix l(n, n), u(n, n), c0(n, n);
  fill_lower_triangular(l.view(), rng);
  fill_upper_triangular(u.view(), rng);
  fill_uniform(c0.view(), rng);
  Matrix work(n, n);

  std::vector<double> ticks;
  for (index_t r = 0; r <= reps; ++r) {
    copy_matrix(c0.view(), work.view());
    const std::uint64_t t0 = read_ticks();
    sylv_blocked(ctx, variant, n, n, l.data(), n, u.data(), n, work.data(),
                 n, blocksize);
    const std::uint64_t t1 = read_ticks();
    if (r > 0) ticks.push_back(static_cast<double>(t1 - t0));
  }
  return summarize(std::move(ticks)).median;
}

double measure_chol_ticks(const std::string& backend, int variant, index_t n,
                          index_t blocksize, index_t reps) {
  ExecContext ctx(backend_instance(backend));
  Rng rng(1789);
  Matrix a0(n, n);
  fill_spd(a0.view(), rng);
  Matrix work(n, n);

  std::vector<double> ticks;
  for (index_t r = 0; r <= reps; ++r) {
    copy_matrix(a0.view(), work.view());
    const std::uint64_t t0 = read_ticks();
    chol_blocked(ctx, variant, n, work.data(), n, blocksize);
    const std::uint64_t t1 = read_ticks();
    if (r > 0) ticks.push_back(static_cast<double>(t1 - t0));
  }
  return summarize(std::move(ticks)).median;
}

double trinv_efficiency(index_t n, double ticks) {
  return efficiency(trinv_flops(n), ticks);
}

double sylv_efficiency(index_t n, double ticks) {
  return efficiency(sylv_flops(n, n), ticks);
}

double chol_efficiency(index_t n, double ticks) {
  return efficiency(chol_flops(n), ticks);
}

}  // namespace dlap::bench
