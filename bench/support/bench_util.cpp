#include "bench_util.hpp"

#include <algorithm>
#include <cstdio>

#include "algorithms/sylv.hpp"
#include "algorithms/trinv.hpp"
#include "common/env.hpp"
#include "common/matrix.hpp"
#include "common/matrix_util.hpp"
#include "common/rng.hpp"
#include "sampler/stats.hpp"
#include "sampler/ticks.hpp"

namespace dlap::bench {

Scales current_scales() {
  Scales s;
  s.paper = paper_scale();
  if (s.paper) {
    s.sweep_max = 1024;
    s.trinv_fixed_n = 1000;
    s.model_max_2d = 1024;
    s.model_max_3d = 1024;
    s.sylv_max = 1024;
    s.sylv_blocksize = 96;  // the paper's block size
    s.reps = 5;
  }
  s.reps *= static_cast<index_t>(rep_multiplier());
  return s;
}

std::vector<std::string> library_backends() {
  return {"naive", "blocked", "packed"};
}

std::string system_a() { return "blocked"; }
std::string system_b() { return "packed"; }

void print_comment(const std::string& text) {
  std::printf("# %s\n", text.c_str());
}

void print_header(const std::vector<std::string>& columns) {
  std::printf("#");
  for (const auto& c : columns) std::printf(" %14s", c.c_str());
  std::printf("\n");
}

void print_row(const std::vector<double>& values) {
  std::printf(" ");
  for (double v : values) std::printf(" %14.6g", v);
  std::printf("\n");
}

void print_row(double x, const std::vector<double>& values) {
  std::printf("  %14.6g", x);
  for (double v : values) std::printf(" %14.6g", v);
  std::printf("\n");
}

RefinementConfig paper_refinement_config() {
  RefinementConfig cfg;
  cfg.base.error_bound = 0.10;  // the paper's configuration (c)
  cfg.base.degree = 3;
  cfg.base.granularity = 8;
  cfg.base.grid_points_per_dim = 4;
  cfg.min_region_size = 32;
  return cfg;
}

namespace {

ModelRepository& model_repo() {
  static ModelRepository repo(
      env_string("DLAPERF_MODEL_DIR", "dlaperf_models"));
  return repo;
}

bool domain_covers(const Region& have, const Region& want) {
  if (have.dims() != want.dims()) return false;
  for (int d = 0; d < have.dims(); ++d) {
    if (have.lo(d) > want.lo(d) || have.hi(d) < want.hi(d)) return false;
  }
  return true;
}

}  // namespace

RoutineModel get_or_build_model(const ModelingRequest& request,
                                const std::string& backend) {
  ModelKey key;
  key.routine = routine_name(request.routine);
  key.backend = backend;
  key.locality = request.sampler.locality;
  key.flags.assign(request.flags.begin(), request.flags.end());

  ModelRepository& repo = model_repo();
  if (repo.contains(key)) {
    RoutineModel cached = repo.load(key);
    if (domain_covers(cached.model.domain(), request.domain)) return cached;
  }
  std::fprintf(stderr, "[dlaperf] generating model %s ...\n",
               key.to_string().c_str());
  Modeler modeler(backend_instance(backend));
  RoutineModel fresh =
      modeler.build_refinement(request, paper_refinement_config());
  repo.store(fresh);
  std::fprintf(stderr, "[dlaperf]   %zu regions, %lld samples, avg err %.2f%%\n",
               fresh.model.pieces().size(),
               static_cast<long long>(fresh.unique_samples),
               100.0 * fresh.average_error);
  return fresh;
}

namespace {

ModelingRequest base_request(RoutineId routine, std::vector<char> flags,
                             Region domain, Locality locality,
                             index_t reps) {
  ModelingRequest req;
  req.routine = routine;
  req.flags = std::move(flags);
  req.domain = std::move(domain);
  req.fixed_ld = 2500;
  req.sampler.locality = locality;
  req.sampler.reps = reps;
  return req;
}

}  // namespace

ModelSet trinv_model_set(const std::string& backend, Locality locality,
                         const Scales& sc) {
  // Out-of-cache measurements fluctuate more; extra repetitions keep the
  // median stable so refinement does not chase noise.
  const index_t reps = sc.reps + (locality == Locality::OutOfCache ? 2 : 0);
  const Region d1({8}, {sc.model_max_unb});
  const Region d2({8, 8}, {sc.model_max_2d, sc.model_max_2d});
  const Region d3({8, 8, 8},
                  {sc.model_max_3d, sc.model_max_3d, sc.model_max_3d});
  ModelSet set;
  set.add(get_or_build_model(
      base_request(RoutineId::Trmm, {'R', 'L', 'N', 'N'}, d2, locality,
                   reps),
      backend));
  set.add(get_or_build_model(
      base_request(RoutineId::Trsm, {'L', 'L', 'N', 'N'}, d2, locality,
                   reps),
      backend));
  set.add(get_or_build_model(
      base_request(RoutineId::Trsm, {'R', 'L', 'N', 'N'}, d2, locality,
                   reps),
      backend));
  set.add(get_or_build_model(
      base_request(RoutineId::Gemm, {'N', 'N'}, d3, locality, reps),
      backend));
  set.add(get_or_build_model(
      base_request(RoutineId::Trinv1Unb, {}, d1, locality, reps),
      backend));
  set.add(get_or_build_model(
      base_request(RoutineId::Trinv2Unb, {}, d1, locality, reps),
      backend));
  set.add(get_or_build_model(
      base_request(RoutineId::Trinv3Unb, {}, d1, locality, reps),
      backend));
  set.add(get_or_build_model(
      base_request(RoutineId::Trinv4Unb, {}, d1, locality, reps),
      backend));
  return set;
}

ModelSet sylv_model_set(const std::string& backend, Locality locality,
                        const Scales& sc) {
  const index_t reps = sc.reps + (locality == Locality::OutOfCache ? 2 : 0);
  const Region d2({8, 8}, {sc.model_max_unb, sc.model_max_unb});
  // Pull-style schedules accumulate gemms whose k grows to the full sweep
  // size, so the gemm model must span the sylv sweep, not just the trinv
  // one.
  const index_t g3 = std::max(sc.model_max_3d, sc.sylv_max);
  const Region d3({8, 8, 8}, {g3, g3, g3});
  ModelSet set;
  set.add(get_or_build_model(
      base_request(RoutineId::Gemm, {'N', 'N'}, d3, locality, reps),
      backend));
  set.add(get_or_build_model(
      base_request(RoutineId::SylvUnb, {}, d2, locality, reps),
      backend));
  return set;
}

double measure_trinv_ticks(const std::string& backend, int variant,
                           index_t n, index_t blocksize, index_t reps) {
  ExecContext ctx(backend_instance(backend));
  Rng rng(2026);
  Matrix l0(n, n);
  fill_lower_triangular(l0.view(), rng);
  Matrix work(n, n);

  std::vector<double> ticks;
  // One warm-up run absorbs first-call initialization.
  for (index_t r = 0; r <= reps; ++r) {
    copy_matrix(l0.view(), work.view());
    const std::uint64_t t0 = read_ticks();
    trinv_blocked(ctx, variant, n, work.data(), n, blocksize);
    const std::uint64_t t1 = read_ticks();
    if (r > 0) ticks.push_back(static_cast<double>(t1 - t0));
  }
  return summarize(std::move(ticks)).median;
}

double measure_sylv_ticks(const std::string& backend, int variant, index_t n,
                          index_t blocksize, index_t reps) {
  ExecContext ctx(backend_instance(backend));
  Rng rng(4711);
  Matrix l(n, n), u(n, n), c0(n, n);
  fill_lower_triangular(l.view(), rng);
  fill_upper_triangular(u.view(), rng);
  fill_uniform(c0.view(), rng);
  Matrix work(n, n);

  std::vector<double> ticks;
  for (index_t r = 0; r <= reps; ++r) {
    copy_matrix(c0.view(), work.view());
    const std::uint64_t t0 = read_ticks();
    sylv_blocked(ctx, variant, n, n, l.data(), n, u.data(), n, work.data(),
                 n, blocksize);
    const std::uint64_t t1 = read_ticks();
    if (r > 0) ticks.push_back(static_cast<double>(t1 - t0));
  }
  return summarize(std::move(ticks)).median;
}

double trinv_efficiency(index_t n, double ticks) {
  return efficiency(trinv_flops(n), ticks);
}

double sylv_efficiency(index_t n, double ticks) {
  return efficiency(sylv_flops(n, n), ticks);
}

}  // namespace dlap::bench
