// Fig IV.1 -- trinv: performance predictions vs observations as the
// matrix size varies (blocksize 96), for the four variants.
//   (a) out-of-cache models underestimate efficiency,
//   (b) in-cache models overestimate it and rank all variants correctly,
//   (c) statistical prediction: median/mean/min/max ranges.
//
// All predictions flow through the shared Engine: one prepare() per
// system generates the sweep's models as a concurrent batch, then each
// size asks for all (variant, system) combinations with one batched
// predict_many call.
//
// Output: per n, measured efficiency of each variant, then the in-cache
// and out-of-cache median predictions and the in-cache min/mean/max for
// variant-level range checks; finally the per-n ranking agreement.

#include "predict/ranking.hpp"
#include "support/bench_util.hpp"

int main() {
  using namespace dlap;
  using namespace dlap::bench;
  const Scales sc = current_scales();
  const std::string backend = system_a();

  Engine& engine = shared_engine();
  const SystemSpec in_sys{backend, Locality::InCache};
  const SystemSpec out_sys{backend, Locality::OutOfCache};
  // Models derived from the largest sweep size cover every smaller one.
  const auto specs =
      RankQuery::trinv_variants(sc.sweep_max, sc.blocksize).candidates;
  require_ok(engine.prepare(specs, in_sys));
  require_ok(engine.prepare(specs, out_sys));

  print_comment("Fig IV.1: trinv predictions vs observations, backend " +
                backend + ", blocksize " + std::to_string(sc.blocksize));
  print_header({"n", "meas_v1", "meas_v2", "meas_v3", "meas_v4",
                "in_v1", "in_v2", "in_v3", "in_v4",
                "out_v1", "out_v2", "out_v3", "out_v4"});

  const index_t step = sc.paper ? 64 : 32;
  index_t ranked_correctly = 0;
  index_t points = 0;
  std::vector<double> top1_hits;
  for (index_t n = 96; n <= sc.sweep_max; n += step) {
    std::vector<PredictQuery> queries;
    for (int v = 1; v <= kTrinvVariantCount; ++v) {
      PredictQuery q =
          PredictQuery::of(OperationSpec::trinv(v, n, sc.blocksize));
      q.system = in_sys;
      queries.push_back(q);
      q.system = out_sys;
      queries.push_back(q);
    }
    const auto predictions = engine.predict_many(queries);

    std::vector<double> meas_eff, in_eff, out_eff;
    std::vector<double> meas_ticks, in_ticks;
    for (int v = 1; v <= kTrinvVariantCount; ++v) {
      const double mt =
          measure_trinv_ticks(backend, v, n, sc.blocksize, sc.reps);
      const std::size_t qi = static_cast<std::size_t>(2 * (v - 1));
      const double it = require_ok(predictions[qi]).ticks.median;
      const double ot = require_ok(predictions[qi + 1]).ticks.median;
      meas_ticks.push_back(mt);
      in_ticks.push_back(it);
      meas_eff.push_back(trinv_efficiency(n, mt));
      in_eff.push_back(trinv_efficiency(n, it));
      out_eff.push_back(trinv_efficiency(n, ot));
    }
    std::vector<double> row = meas_eff;
    row.insert(row.end(), in_eff.begin(), in_eff.end());
    row.insert(row.end(), out_eff.begin(), out_eff.end());
    print_row(static_cast<double>(n), row);

    ++points;
    if (rank_order(in_ticks) == rank_order(meas_ticks)) ++ranked_correctly;
    top1_hits.push_back(same_winner(in_ticks, meas_ticks) ? 1.0 : 0.0);
  }

  print_comment("in-cache median models: exact full ranking at " +
                std::to_string(ranked_correctly) + "/" +
                std::to_string(points) + " sizes");
  double hits = 0;
  for (double h : top1_hits) hits += h;
  print_comment("best-variant identified at " +
                std::to_string(static_cast<index_t>(hits)) + "/" +
                std::to_string(points) + " sizes");

  // Part (c): statistical prediction for the largest size.
  const index_t n = sc.sweep_max;
  print_comment("statistical prediction at n = " + std::to_string(n) +
                " (efficiency from min/median/mean/max ticks):");
  print_header({"variant", "eff_from_max", "eff_median", "eff_mean",
                "eff_from_min", "measured"});
  for (int v = 1; v <= kTrinvVariantCount; ++v) {
    PredictQuery q =
        PredictQuery::of(OperationSpec::trinv(v, n, sc.blocksize));
    q.system = in_sys;
    const Prediction p = require_ok(engine.predict(q));
    const double mt =
        measure_trinv_ticks(backend, v, n, sc.blocksize, sc.reps);
    print_row(static_cast<double>(v),
              {trinv_efficiency(n, p.ticks.max),
               trinv_efficiency(n, p.ticks.median),
               trinv_efficiency(n, p.ticks.mean),
               trinv_efficiency(n, p.ticks.min),
               trinv_efficiency(n, mt)});
  }
  return 0;
}
