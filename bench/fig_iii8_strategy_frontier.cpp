// Fig III.8 -- Model Expansion vs Adaptive Refinement: number of samples
// needed to reach a given average model error (the samples/accuracy
// frontier over the eight configurations of Figs III.6 and III.7).
//
// Expected shape (paper): expansion is more sample-efficient at low
// budgets; refinement reaches the lowest errors when samples are
// plentiful.

#include <map>
#include <memory>

#include "support/bench_util.hpp"

namespace {

dlap::MeasureFn memoize(dlap::MeasureFn fn) {
  auto cache = std::make_shared<
      std::map<std::vector<dlap::index_t>, dlap::SampleStats>>();
  return [cache, fn = std::move(fn)](const std::vector<dlap::index_t>& p) {
    auto it = cache->find(p);
    if (it == cache->end()) it = cache->emplace(p, fn(p)).first;
    return it->second;
  };
}

}  // namespace

int main() {
  using namespace dlap;
  using namespace dlap::bench;
  const Scales sc = current_scales();
  const index_t hi = sc.model_max_2d;

  ModelingRequest req;
  req.routine = RoutineId::Trsm;
  req.flags = {'L', 'L', 'N', 'N'};
  req.domain = Region({8, 8}, {hi, hi});
  req.fixed_ld = 2500;
  req.sampler.reps = sc.reps;

  Modeler modeler(backend_instance(system_a()));
  const MeasureFn measure = memoize(modeler.make_measure_fn(req));

  print_comment("Fig III.8: samples vs average error frontier "
                "(dtrsm(L,L,N,N), in-cache, backend " + system_a() + ")");
  print_header({"strategy", "config", "samples", "avg_error_pct",
                "regions"});

  struct Point {
    std::string strategy;
    std::string label;
    GenerationResult gen;
  };
  std::vector<Point> points;

  const struct { const char* label; double eps;
                 ExpansionConfig::Direction dir; index_t sini; } exp_cfgs[] = {
      {"a", 0.10, ExpansionConfig::Direction::AwayFromOrigin, 64},
      {"b", 0.10, ExpansionConfig::Direction::TowardOrigin, 64},
      {"c", 0.05, ExpansionConfig::Direction::TowardOrigin, 64},
      {"d", 0.05, ExpansionConfig::Direction::TowardOrigin, 32}};
  for (const auto& c : exp_cfgs) {
    ExpansionConfig cfg;
    cfg.base.error_bound = c.eps;
    cfg.base.degree = 3;
    cfg.direction = c.dir;
    cfg.initial_size = c.sini;
    points.push_back(
        {"expansion", c.label,
         generate_model_expansion(req.domain, measure, cfg)});
  }

  const struct { const char* label; double eps; index_t smin; } ref_cfgs[] =
      {{"a", 0.10, 64}, {"b", 0.05, 64}, {"c", 0.10, 32}, {"d", 0.05, 32}};
  for (const auto& c : ref_cfgs) {
    RefinementConfig cfg;
    cfg.base.error_bound = c.eps;
    cfg.base.degree = 3;
    cfg.min_region_size = c.smin;
    points.push_back(
        {"refinement", c.label,
         generate_adaptive_refinement(req.domain, measure, cfg)});
  }

  for (const Point& p : points) {
    std::printf("  %14s %14s", p.strategy.c_str(), p.label.c_str());
    print_row({static_cast<double>(p.gen.unique_samples),
               100.0 * p.gen.average_error,
               static_cast<double>(p.gen.model.pieces().size())});
  }
  return 0;
}
