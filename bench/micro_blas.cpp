// Kernel-level google-benchmark suite: gemm/trsm/trmm across the three
// backends and representative sizes. Complements the figure benches with
// statistically robust per-kernel numbers (and doubles as a quick check
// that the backend performance ordering naive < blocked < packed holds).

#include <benchmark/benchmark.h>

#include "blas/registry.hpp"
#include "common/matrix.hpp"
#include "common/matrix_util.hpp"
#include "common/rng.hpp"

namespace {

using namespace dlap;

const char* backend_name(int idx) {
  static const char* names[] = {"naive", "blocked", "packed"};
  return names[idx];
}

void BM_gemm(benchmark::State& state) {
  Level3Backend& bk = backend_instance(backend_name(
      static_cast<int>(state.range(0))));
  const index_t n = state.range(1);
  Rng rng(1);
  Matrix a(n, n), b(n, n), c(n, n);
  fill_uniform(a.view(), rng);
  fill_uniform(b.view(), rng);
  for (auto _ : state) {
    bk.gemm(Trans::NoTrans, Trans::NoTrans, n, n, n, 1.0, a.data(), n,
            b.data(), n, 0.0, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel(bk.name());
  state.counters["flops/it"] = static_cast<double>(2 * n * n * n);
}
BENCHMARK(BM_gemm)
    ->ArgsProduct({{0, 1, 2}, {64, 128, 256}})
    ->Unit(benchmark::kMicrosecond);

void BM_trsm(benchmark::State& state) {
  Level3Backend& bk = backend_instance(backend_name(
      static_cast<int>(state.range(0))));
  const index_t n = state.range(1);
  Rng rng(2);
  Matrix a(n, n), b0(n, n), b(n, n);
  fill_lower_triangular(a.view(), rng);
  fill_uniform(b0.view(), rng);
  for (auto _ : state) {
    state.PauseTiming();
    copy_matrix(b0.view(), b.view());
    state.ResumeTiming();
    bk.trsm(Side::Left, Uplo::Lower, Trans::NoTrans, Diag::NonUnit, n, n,
            1.0, a.data(), n, b.data(), n);
    benchmark::DoNotOptimize(b.data());
  }
  state.SetLabel(bk.name());
}
BENCHMARK(BM_trsm)
    ->ArgsProduct({{0, 1, 2}, {64, 128, 256}})
    ->Unit(benchmark::kMicrosecond);

void BM_trmm(benchmark::State& state) {
  Level3Backend& bk = backend_instance(backend_name(
      static_cast<int>(state.range(0))));
  const index_t n = state.range(1);
  Rng rng(3);
  Matrix a(n, n), b(n, n);
  fill_lower_triangular(a.view(), rng);
  fill_uniform(b.view(), rng);
  for (auto _ : state) {
    bk.trmm(Side::Right, Uplo::Lower, Trans::NoTrans, Diag::NonUnit, n, n,
            1.0, a.data(), n, b.data(), n);
    benchmark::DoNotOptimize(b.data());
  }
  state.SetLabel(bk.name());
}
BENCHMARK(BM_trmm)
    ->ArgsProduct({{0, 1, 2}, {64, 128}})
    ->Unit(benchmark::kMicrosecond);

void BM_gemm_threaded(benchmark::State& state) {
  Level3Backend& bk = backend_instance(
      "blocked@" + std::to_string(state.range(0)));
  const index_t n = 256;
  Rng rng(4);
  Matrix a(n, n), b(n, n), c(n, n);
  fill_uniform(a.view(), rng);
  fill_uniform(b.view(), rng);
  for (auto _ : state) {
    bk.gemm(Trans::NoTrans, Trans::NoTrans, n, n, n, 1.0, a.data(), n,
            b.data(), n, 0.0, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel(bk.name());
}
BENCHMARK(BM_gemm_threaded)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
