// Fig III.5 -- sequence of steps in the construction of a piecewise model
// through Adaptive Refinement (real construction event log of a dtrsm
// model: whole-domain region first, then recursive splits of inaccurate
// regions, minimum-size regions accepted regardless).
//
// Driven through the incremental step-machine interface
// (make_refinement_stepper): each batch of required points is fulfilled
// through the real Sampler and events stream out as the machine produces
// them -- the same code path the ModelService's batched generation
// drives.

#include "support/bench_util.hpp"

int main() {
  using namespace dlap;
  using namespace dlap::bench;
  const Scales sc = current_scales();
  const index_t hi = sc.model_max_2d;

  ModelingRequest req;
  req.routine = RoutineId::Trsm;
  req.flags = {'L', 'L', 'N', 'N'};
  req.domain = Region({8, 8}, {hi, hi});
  req.fixed_ld = 2500;
  req.sampler.reps = sc.reps;

  const RefinementConfig cfg = paper_refinement_config();

  Modeler modeler(backend_instance(system_a()));
  const MeasureFn measure = modeler.make_measure_fn(req);
  auto stepper = make_refinement_stepper(req.domain, cfg);

  print_comment("Fig III.5: Adaptive Refinement construction sequence for "
                "dtrsm(L,L,N,N) on [8," + std::to_string(hi) + "]^2");
  print_header({"step", "event", "m_lo", "m_hi", "n_lo", "n_hi",
                "error", "samples"});

  std::size_t printed = 0;
  index_t step = 0;
  while (!stepper->done()) {
    print_generation_events(*stepper, &printed, &step);
    std::vector<SampleStats> stats;
    stats.reserve(stepper->required().size());
    for (const auto& point : stepper->required()) {
      stats.push_back(measure(point));
    }
    stepper->supply(stats);
  }
  print_generation_events(*stepper, &printed, &step);

  const GenerationResult gen = stepper->take_result();
  print_comment("final model: " + std::to_string(gen.model.pieces().size()) +
                " regions, " + std::to_string(gen.unique_samples) +
                " samples, avg error " +
                std::to_string(100.0 * gen.average_error) + " %");
  return 0;
}
