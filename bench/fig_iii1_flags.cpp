// Fig III.1 -- dtrsm: ticks as a function of the discrete (flag)
// arguments, all 16 combinations of side/uplo/transA/diag, for the three
// backends; the remaining arguments fixed as in the paper (m = n = 256,
// alpha = 0.5, ldA = ldB = 256).
//
// Expected shape (paper): no clean pattern relating flag values across
// implementations, except that diag has only a minor impact -- the reason
// models key on flag combinations but may share diag.

#include "support/bench_util.hpp"

int main() {
  using namespace dlap;
  using namespace dlap::bench;
  const Scales sc = current_scales();
  const index_t n = sc.paper ? 256 : 192;

  print_comment("Fig III.1: dtrsm ticks for all flag combinations, m=n=" +
                std::to_string(n));
  print_header({"flags(SULD)", "naive", "blocked", "packed"});

  double max_diag_impact = 0.0;
  for (const char side : {'L', 'R'}) {
    for (const char uplo : {'L', 'U'}) {
      for (const char trans : {'N', 'T'}) {
        std::vector<double> with_diag[2];
        for (const char diag : {'N', 'U'}) {
          KernelCall call;
          call.routine = RoutineId::Trsm;
          call.flags = {side, uplo, trans, diag};
          call.sizes = {n, n};
          call.scalars = {0.5};
          call.leads = {n, n};

          std::vector<double> row;
          for (const std::string& backend : library_backends()) {
            SamplerConfig cfg;
            cfg.reps = sc.reps;
            Sampler sampler(backend_instance(backend), cfg);
            row.push_back(sampler.measure(call).median);
          }
          with_diag[diag == 'U'] = row;
          std::printf("  %c%c%c%c          ", side, uplo, trans, diag);
          print_row(row);
        }
        for (std::size_t i = 0; i < with_diag[0].size(); ++i) {
          max_diag_impact = std::max(
              max_diag_impact, std::abs(with_diag[0][i] - with_diag[1][i]) /
                                   with_diag[0][i]);
        }
      }
    }
  }
  print_comment("max relative impact of the diag flag: " +
                std::to_string(100.0 * max_diag_impact) + " %");
  return 0;
}
