// micro_service -- batch model generation through the ModelService:
// sequential pipeline vs concurrent fan-out over the generation pool.
//
// Model-generation wall clock is dominated by *measurement latency*: the
// sampler waits on repeated timed kernel executions for every sampled
// point. To benchmark the service's scheduling -- independently of how
// many cores the host exposes and without timing noise -- the measurement
// source is replaced by a deterministic cost surface with a fixed
// per-point latency (ServiceConfig::measure_factory), exactly the hook
// the service tests use. The speedup reported is therefore the pipeline
// overlap the service achieves on latency-bound sampling.
//
// Also cross-checks the concurrency contract: every run must produce
// bit-identical repository files.
//
// Output: one row per worker count: wall ms, speedup over the sequential
// path, and the determinism check; exits nonzero when 4 workers fail to
// reach the 1.5x acceptance threshold.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "service/model_service.hpp"
#include "support/bench_util.hpp"

namespace {

using namespace dlap;
namespace fs = std::filesystem;

constexpr auto kPointLatency = std::chrono::microseconds(1000);

MeasureFn latency_bound_measure(double offset) {
  return [offset](const std::vector<index_t>& point) {
    std::this_thread::sleep_for(kPointLatency);  // the "sampling" cost
    double cost = 100.0 + offset;
    for (index_t x : point) {
      const double v = static_cast<double>(x);
      cost += 2.0 * v + 0.03 * v * v;
    }
    SampleStats s;
    s.min = cost * 0.95;
    s.median = cost;
    s.mean = cost * 1.01;
    s.max = cost * 1.10;
    s.stddev = cost * 0.02;
    s.count = 5;
    return s;
  };
}

std::vector<ModelJob> benchmark_jobs() {
  std::vector<ModelJob> jobs;
  const Region d2({8, 8}, {256, 256});
  const char flag_sets[8][4] = {{'L', 'L', 'N', 'N'}, {'L', 'L', 'T', 'N'},
                                {'L', 'U', 'N', 'N'}, {'L', 'U', 'T', 'N'},
                                {'R', 'L', 'N', 'N'}, {'R', 'L', 'T', 'N'},
                                {'R', 'U', 'N', 'N'}, {'R', 'U', 'T', 'N'}};
  for (const auto& f : flag_sets) {
    ModelJob job;
    job.backend = "blocked";
    job.request.routine = RoutineId::Trsm;
    job.request.flags.assign(f, f + 4);
    job.request.domain = d2;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

ServiceConfig config_for(const fs::path& dir, index_t workers) {
  ServiceConfig cfg;
  cfg.repository_dir = dir;
  cfg.workers = workers;
  cfg.measure_factory = [](const ModelJob& job) {
    double h = 0.0;
    for (char c : ModelService::key_for(job).to_string()) {
      h = 0.9 * h + static_cast<double>(c);
    }
    return latency_bound_measure(h);
  };
  return cfg;
}

std::map<std::string, std::string> repository_files(const fs::path& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::ifstream in(entry.path());
    std::ostringstream buf;
    buf << in.rdbuf();
    files[entry.path().filename().string()] = buf.str();
  }
  return files;
}

double run_ms(index_t workers, bool concurrent,
              std::map<std::string, std::string>* files_out) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("dlap_micro_service_" + std::to_string(workers) +
       (concurrent ? "p" : "s"));
  fs::remove_all(dir);
  ModelService service(config_for(dir, workers));
  const std::vector<ModelJob> jobs = benchmark_jobs();

  const auto t0 = std::chrono::steady_clock::now();
  const auto models = concurrent ? service.generate_all(jobs)
                                 : service.generate_all_sequential(jobs);
  const auto t1 = std::chrono::steady_clock::now();
  if (models.size() != jobs.size()) std::abort();

  *files_out = repository_files(dir);
  fs::remove_all(dir);
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
  using namespace dlap::bench;

  print_comment("micro_service: batch generation of 8 model keys, "
                "latency-bound synthetic sampling (" +
                std::to_string(kPointLatency.count()) + "us/point)");
  print_header({"workers", "wall_ms", "speedup", "identical"});

  std::map<std::string, std::string> baseline_files;
  const double seq_ms = run_ms(1, /*concurrent=*/false, &baseline_files);
  print_row(0, {seq_ms, 1.0, 1.0});  // workers=0 row: the sequential path

  bool deterministic = true;
  double speedup_at_4 = 0.0;
  for (dlap::index_t workers : {1, 2, 4, 8}) {
    std::map<std::string, std::string> files;
    const double ms = run_ms(workers, /*concurrent=*/true, &files);
    const bool identical = files == baseline_files;
    deterministic = deterministic && identical;
    const double speedup = seq_ms / ms;
    if (workers == 4) speedup_at_4 = speedup;
    print_row(static_cast<double>(workers),
              {ms, speedup, identical ? 1.0 : 0.0});
  }

  print_comment(deterministic
                    ? "all runs produced bit-identical repository files"
                    : "DETERMINISM VIOLATION: repository files differ");
  const bool pass = deterministic && speedup_at_4 > 1.5;
  print_comment("speedup at 4 workers: " + std::to_string(speedup_at_4) +
                (pass ? " (PASS, > 1.5x)" : " (FAIL, need > 1.5x)"));

  BenchJson json;
  json.set("bench", std::string("micro_service"));
  json.set("sequential_ms", seq_ms);
  json.set("batch_speedup_at_4_workers", speedup_at_4);
  json.set("deterministic", deterministic);
  json.set("pass", pass);
  json.write("BENCH_service.json");
  return pass ? 0 : 1;
}
