// Ranking the three blocked Cholesky variants without executing them —
// the operation family registered through the OperationRegistry
// (src/ops/families.cpp; docs/ADDING_AN_OPERATION.md uses it as the
// worked example).
//
// One RankQuery asks the engine to order the variants by predicted
// runtime; the engine derives and generates the kernel models itself (one
// concurrent batch). The predicted ranking is then verified against
// actual executions.
//
// Build & run:  ./build/examples/chol_variants [n] [blocksize]

#include <cstdio>
#include <cstdlib>

#include "api/engine.hpp"
#include "algorithms/chol.hpp"
#include "blas/registry.hpp"
#include "common/matrix_util.hpp"
#include "common/rng.hpp"
#include "predict/ranking.hpp"
#include "sampler/machine.hpp"
#include "sampler/ticks.hpp"

namespace {

using namespace dlap;

double run_chol(Level3Backend& backend, int variant, index_t n, index_t b) {
  ExecContext ctx(backend);
  Rng rng(11);
  Matrix a(n, n);
  fill_spd(a.view(), rng);
  Matrix work(n, n);
  copy_matrix(a.view(), work.view());
  chol_blocked(ctx, variant, n, work.data(), n, b);  // warm-up
  copy_matrix(a.view(), work.view());
  const std::uint64_t t0 = read_ticks();
  chol_blocked(ctx, variant, n, work.data(), n, b);
  const std::uint64_t t1 = read_ticks();
  return static_cast<double>(t1 - t0);
}

}  // namespace

int main(int argc, char** argv) {
  const index_t n = (argc > 1) ? std::atoll(argv[1]) : 320;
  const index_t b = (argc > 2) ? std::atoll(argv[2]) : 32;

  EngineConfig cfg;
  cfg.service.repository_dir =
      std::filesystem::temp_directory_path() / "dlaperf_chol_variants";
  cfg.service.verbose = true;
  Engine engine(cfg);

  std::printf("ranking chol variants at n=%lld, b=%lld on %s "
              "(no execution involved):\n",
              static_cast<long long>(n), static_cast<long long>(b),
              engine.config().system.to_string().c_str());
  const Result<Ranking> result = engine.rank(RankQuery::chol_variants(n, b));
  if (!result.ok()) {
    std::fprintf(stderr, "rank query failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  const Ranking& ranked = *result;

  const std::vector<double> predicted = ranked.median_ticks();
  for (std::size_t i = 0; i < ranked.candidates.size(); ++i) {
    std::printf("  %s: predicted %12.0f ticks (efficiency %.2f)\n",
                ranked.candidates[i].to_string().c_str(), predicted[i],
                ranked.predictions[i].efficiency_median(
                    ranked.candidates[i].nominal_flops()));
  }

  std::printf("\nverifying against actual executions:\n");
  Level3Backend& backend =
      backend_instance(engine.config().system.backend);
  std::vector<double> measured;
  for (int v = 1; v <= kCholVariantCount; ++v) {
    measured.push_back(run_chol(backend, v, n, b));
    std::printf("  variant %d: measured  %12.0f ticks "
                "(efficiency %.2f)\n",
                v, measured.back(),
                efficiency(chol_flops(n), measured.back()));
  }

  const auto mo = rank_order(measured);
  std::printf("\npredicted order: ");
  for (index_t i : ranked.order) {
    std::printf("v%lld ", static_cast<long long>(i + 1));
  }
  std::printf("\nmeasured order:  ");
  for (index_t i : mo) std::printf("v%lld ", static_cast<long long>(i + 1));
  std::printf("\nkendall tau: %.2f, best variant %s\n",
              kendall_tau(predicted, measured),
              same_winner(predicted, measured) ? "MATCHES" : "differs");
  return 0;
}
