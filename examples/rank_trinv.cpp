// Ranking algorithmic variants without executing them (paper Section IV-A).
//
// Generates performance models for the kernels used by the four blocked
// triangular-inversion variants, predicts each variant's runtime from its
// call trace alone, then verifies the predicted ranking against actual
// executions.
//
// Build & run:  ./build/examples/rank_trinv [n] [blocksize]

#include <cstdio>
#include <cstdlib>

#include "algorithms/trinv.hpp"
#include "blas/registry.hpp"
#include "common/matrix_util.hpp"
#include "common/rng.hpp"
#include "predict/ranking.hpp"
#include "predict/trace.hpp"
#include "sampler/machine.hpp"
#include "sampler/ticks.hpp"
#include "service/model_service.hpp"
#include "service/repository_predictor.hpp"

namespace {

using namespace dlap;

ModelJob job_for(RoutineId routine, std::vector<char> flags, Region domain) {
  ModelJob job;
  job.backend = "blocked";
  job.request.routine = routine;
  job.request.flags = std::move(flags);
  job.request.domain = std::move(domain);
  job.request.fixed_ld = 512;
  job.request.sampler.reps = 3;
  return job;
}

double run_trinv(Level3Backend& backend, int variant, index_t n,
                 index_t b) {
  ExecContext ctx(backend);
  Rng rng(7);
  Matrix l(n, n);
  fill_lower_triangular(l.view(), rng);
  Matrix work(n, n);
  copy_matrix(l.view(), work.view());
  trinv_blocked(ctx, variant, n, work.data(), n, b);  // warm-up
  copy_matrix(l.view(), work.view());
  const std::uint64_t t0 = read_ticks();
  trinv_blocked(ctx, variant, n, work.data(), n, b);
  const std::uint64_t t1 = read_ticks();
  return static_cast<double>(t1 - t0);
}

}  // namespace

int main(int argc, char** argv) {
  const index_t n = (argc > 1) ? std::atoll(argv[1]) : 320;
  const index_t b = (argc > 2) ? std::atoll(argv[2]) : 64;
  Level3Backend& backend = backend_instance("blocked");

  ServiceConfig cfg;
  cfg.repository_dir =
      std::filesystem::temp_directory_path() / "dlaperf_rank_trinv";
  cfg.verbose = true;
  ModelService service(cfg);

  std::printf("generating kernel models (backend blocked, "
              "%lld workers):\n",
              static_cast<long long>(service.pool().worker_count()));
  const Region d1({8}, {256});
  const Region d2({8, 8}, {n, n});
  const Region d3({8, 8, 8}, {n, n, n});
  (void)service.generate_all(
      {job_for(RoutineId::Trmm, {'R', 'L', 'N', 'N'}, d2),
       job_for(RoutineId::Trsm, {'L', 'L', 'N', 'N'}, d2),
       job_for(RoutineId::Trsm, {'R', 'L', 'N', 'N'}, d2),
       job_for(RoutineId::Gemm, {'N', 'N'}, d3),
       job_for(RoutineId::Trinv1Unb, {}, d1),
       job_for(RoutineId::Trinv2Unb, {}, d1),
       job_for(RoutineId::Trinv3Unb, {}, d1),
       job_for(RoutineId::Trinv4Unb, {}, d1)});

  const RepositoryBackedPredictor pred(service, "blocked",
                                       Locality::InCache);
  std::printf("\npredicting trinv variants at n=%lld, b=%lld "
              "(no execution involved):\n",
              static_cast<long long>(n), static_cast<long long>(b));
  std::vector<double> predicted, measured;
  for (int v = 1; v <= kTrinvVariantCount; ++v) {
    const Prediction p = pred.predict(trace_trinv(v, n, b));
    predicted.push_back(p.ticks.median);
    std::printf("  variant %d: predicted %12.0f ticks "
                "(efficiency %.2f)\n",
                v, p.ticks.median,
                efficiency(trinv_flops(n), p.ticks.median));
  }

  std::printf("\nverifying against actual executions:\n");
  for (int v = 1; v <= kTrinvVariantCount; ++v) {
    measured.push_back(run_trinv(backend, v, n, b));
    std::printf("  variant %d: measured  %12.0f ticks "
                "(efficiency %.2f)\n",
                v, measured.back(),
                efficiency(trinv_flops(n), measured.back()));
  }

  const auto po = rank_order(predicted);
  const auto mo = rank_order(measured);
  std::printf("\npredicted order: ");
  for (index_t i : po) std::printf("v%lld ", static_cast<long long>(i + 1));
  std::printf("\nmeasured order:  ");
  for (index_t i : mo) std::printf("v%lld ", static_cast<long long>(i + 1));
  std::printf("\nkendall tau: %.2f, best variant %s\n",
              kendall_tau(predicted, measured),
              same_winner(predicted, measured) ? "MATCHES" : "differs");
  return 0;
}
