// Quickstart: the 60-second tour of dlaperf.
//
//  1. measure a BLAS call with the Sampler,
//  2. generate a performance model with the Modeler,
//  3. store and reload it through the repository,
//  4. evaluate the model at an unseen point and compare to a measurement.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <filesystem>

#include "blas/registry.hpp"
#include "modeler/modeler.hpp"
#include "modeler/repository.hpp"
#include "sampler/sampler.hpp"

int main() {
  using namespace dlap;

  // --- 1. Measure one call (the paper's textual tuple form) ------------
  Level3Backend& backend = backend_instance("blocked");
  SamplerConfig scfg;
  scfg.reps = 5;
  scfg.locality = Locality::InCache;
  Sampler sampler(backend, scfg);

  const std::string call = "dtrsm(L,L,N,N,128,128,1,A,256,B,256)";
  const SampleStats stats = sampler.measure_text(call);
  std::printf("measured %s on '%s':\n", call.c_str(),
              backend.name().c_str());
  std::printf("  ticks: min %.0f  median %.0f  mean %.0f  max %.0f  "
              "stddev %.0f\n",
              stats.min, stats.median, stats.mean, stats.max, stats.stddev);

  // --- 2. Generate a model over the (m, n) parameter space -------------
  ModelingRequest req;
  req.routine = RoutineId::Trsm;
  req.flags = {'L', 'L', 'N', 'N'};
  req.domain = Region({8, 8}, {192, 192});
  req.fixed_ld = 256;
  req.sampler = scfg;

  RefinementConfig rcfg;          // the paper's chosen strategy (III-D3)
  rcfg.base.error_bound = 0.10;   // epsilon = 10%
  rcfg.min_region_size = 32;      // s_min = 32
  rcfg.base.degree = 3;

  Modeler modeler(backend);
  const RoutineModel model = modeler.build_refinement(req, rcfg);
  std::printf("\ngenerated model %s: %zu regions from %lld samples "
              "(avg error %.1f%%)\n",
              model.key.to_string().c_str(), model.model.pieces().size(),
              static_cast<long long>(model.unique_samples),
              100.0 * model.average_error);

  // --- 3. Store and reload --------------------------------------------
  ModelRepository repo(std::filesystem::temp_directory_path() /
                       "dlaperf_quickstart");
  repo.store(model);
  const RoutineModel loaded = repo.load(model.key);
  std::printf("round-tripped through %s\n", repo.directory().c_str());

  // --- 4. Predict an unseen point and check against reality ------------
  const std::vector<index_t> point{144, 112};
  const SampleStats predicted = loaded.model.evaluate(point);
  const SampleStats observed =
      sampler.measure_text("dtrsm(L,L,N,N,144,112,1,A,256,B,256)");
  std::printf("\nat m=144, n=112: predicted median %.0f ticks, "
              "observed median %.0f ticks (error %.1f%%)\n",
              predicted.median, observed.median,
              100.0 * std::abs(predicted.median - observed.median) /
                  observed.median);
  return 0;
}
