// Quickstart: the 60-second tour of dlaperf.
//
//  1. measure a BLAS call with the Sampler,
//  2. ask the Engine -- the typed, non-throwing query facade -- for a
//     prediction of a call it has never seen: the engine derives the
//     modeling jobs it needs, generates the models through its
//     ModelService, and answers with a Result instead of throwing,
//  3. fan a batch of typed queries out across the engine's thread pool
//     with predict_many,
//  4. compare the prediction from step 2 to a fresh measurement.
//
// Build & run:  ./build/examples/quickstart

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "api/engine.hpp"
#include "blas/registry.hpp"
#include "sampler/sampler.hpp"

int main() {
  using namespace dlap;

  // --- 1. Measure one call (the paper's textual tuple form) ------------
  Level3Backend& backend = backend_instance("blocked");
  SamplerConfig scfg;
  scfg.reps = 5;
  scfg.locality = Locality::InCache;
  Sampler sampler(backend, scfg);

  const std::string call = "dtrsm(L,L,N,N,144,112,1,A,256,B,256)";
  const SampleStats observed = sampler.measure_text(call);
  std::printf("measured %s on '%s':\n", call.c_str(),
              backend.name().c_str());
  std::printf("  ticks: min %.0f  median %.0f  mean %.0f  max %.0f  "
              "stddev %.0f\n",
              observed.min, observed.median, observed.mean, observed.max,
              observed.stddev);

  // --- 2. Ask the engine -----------------------------------------------
  // No job assembly: the engine plans the dtrsm model from the query
  // itself (domain spanning the call, this leading dimension), generates
  // it, stores it in the repository, and evaluates it.
  EngineConfig cfg;
  cfg.service.repository_dir =
      std::filesystem::temp_directory_path() / "dlaperf_quickstart";
  cfg.service.refinement.base.error_bound = 0.10;  // paper epsilon (III-D3)
  cfg.service.refinement.min_region_size = 32;     // s_min
  cfg.planning.fixed_ld = 256;  // match the measured call's leads
  Engine engine(cfg);

  const Result<SampleStats> predicted = engine.predict_call(call);
  if (!predicted.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 predicted.status().to_string().c_str());
    return 1;
  }
  std::printf("\nrepository: %s (%zu resolver keys interned)\n",
              engine.service().repository().directory().c_str(),
              engine.interned_keys());

  // --- 3. Batched typed queries ----------------------------------------
  // Predict a whole block-size sweep of blocked triangular inversion in
  // one call; independent queries run concurrently on the engine's pool.
  std::vector<PredictQuery> sweep;
  for (index_t b = 32; b <= 128; b += 32) {
    sweep.push_back(PredictQuery::of(OperationSpec::trinv(1, 192, b)));
  }
  const auto results = engine.predict_many(sweep);
  std::printf("\ntrinv variant 1, n=192, predicted median ticks per b:\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    if (!results[i].ok()) {
      std::fprintf(stderr, "  query %zu failed: %s\n", i,
                   results[i].status().to_string().c_str());
      return 1;
    }
    std::printf("  b = %4lld : %12.0f\n",
                static_cast<long long>(sweep[i].spec->blocksize),
                results[i]->ticks.median);
  }

  // --- 4. ... and check step 2 against reality -------------------------
  std::printf("\nat m=144, n=112: predicted median %.0f ticks, "
              "observed median %.0f ticks (error %.1f%%)\n",
              predicted->median, observed.median,
              100.0 * std::abs(predicted->median - observed.median) /
                  observed.median);
  return 0;
}
