// Quickstart: the 60-second tour of dlaperf.
//
//  1. measure a BLAS call with the Sampler,
//  2. generate performance models through the ModelService (the whole
//     sampler -> modeler -> repository pipeline as one engine; batches
//     are generated concurrently),
//  3. predict through the RepositoryBackedPredictor, which loads models
//     lazily from the repository,
//  4. compare a prediction at an unseen point to a fresh measurement.
//
// Build & run:  ./build/examples/quickstart

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "blas/registry.hpp"
#include "sampler/sampler.hpp"
#include "service/model_service.hpp"
#include "service/repository_predictor.hpp"

int main() {
  using namespace dlap;

  // --- 1. Measure one call (the paper's textual tuple form) ------------
  Level3Backend& backend = backend_instance("blocked");
  SamplerConfig scfg;
  scfg.reps = 5;
  scfg.locality = Locality::InCache;
  Sampler sampler(backend, scfg);

  const std::string call = "dtrsm(L,L,N,N,128,128,1,A,256,B,256)";
  const SampleStats stats = sampler.measure_text(call);
  std::printf("measured %s on '%s':\n", call.c_str(),
              backend.name().c_str());
  std::printf("  ticks: min %.0f  median %.0f  mean %.0f  max %.0f  "
              "stddev %.0f\n",
              stats.min, stats.median, stats.mean, stats.max, stats.stddev);

  // --- 2. Generate models as one service batch -------------------------
  ServiceConfig cfg;
  cfg.repository_dir =
      std::filesystem::temp_directory_path() / "dlaperf_quickstart";
  cfg.refinement.base.error_bound = 0.10;  // the paper's epsilon (III-D3)
  cfg.refinement.min_region_size = 32;     // s_min
  ModelService service(cfg);

  ModelJob trsm;
  trsm.backend = "blocked";
  trsm.request.routine = RoutineId::Trsm;
  trsm.request.flags = {'L', 'L', 'N', 'N'};
  trsm.request.domain = Region({8, 8}, {192, 192});
  trsm.request.fixed_ld = 256;
  trsm.request.sampler = scfg;

  ModelJob trmm = trsm;  // model a second kernel in the same batch
  trmm.request.routine = RoutineId::Trmm;
  trmm.request.flags = {'R', 'L', 'N', 'N'};

  const auto models = service.generate_all({trsm, trmm});
  for (const auto& m : models) {
    std::printf("generated %s: %zu regions from %lld samples "
                "(avg error %.1f%%)\n",
                m->key.to_string().c_str(), m->model.pieces().size(),
                static_cast<long long>(m->unique_samples),
                100.0 * m->average_error);
  }
  std::printf("repository: %s\n",
              service.repository().directory().c_str());

  // --- 3. Predict through the repository-backed predictor --------------
  // No pre-assembled ModelSet: the predictor pulls models from the
  // repository by key on first use.
  RepositoryBackedPredictor pred(service, "blocked", Locality::InCache);
  const KernelCall unseen =
      parse_call("dtrsm(L,L,N,N,144,112,1,A,256,B,256)");
  const SampleStats predicted = pred.predict_call(unseen);

  // --- 4. ... and check against reality --------------------------------
  const SampleStats observed =
      sampler.measure_text("dtrsm(L,L,N,N,144,112,1,A,256,B,256)");
  std::printf("\nat m=144, n=112: predicted median %.0f ticks, "
              "observed median %.0f ticks (error %.1f%%)\n",
              predicted.median, observed.median,
              100.0 * std::abs(predicted.median - observed.median) /
                  observed.median);
  return 0;
}
