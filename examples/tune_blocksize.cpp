// Tuning the algorithmic block size from models alone (paper IV-A2).
//
// One TuneQuery sweeps the block size of a chosen trinv variant; the
// engine derives the kernel models the sweep needs (the job assembly this
// example used to do by hand), predicts every block size, and picks the
// best. The choice is then verified by executing the real algorithm.
//
// Build & run:  ./build/examples/tune_blocksize [variant] [n]

#include <cstdio>
#include <cstdlib>

#include "api/engine.hpp"
#include "algorithms/trinv.hpp"
#include "blas/registry.hpp"
#include "common/matrix_util.hpp"
#include "common/rng.hpp"
#include "predict/ranking.hpp"
#include "sampler/ticks.hpp"

int main(int argc, char** argv) {
  using namespace dlap;
  const int variant = (argc > 1) ? std::atoi(argv[1]) : 3;
  const index_t n = (argc > 2) ? std::atoll(argv[2]) : 320;

  EngineConfig cfg;
  cfg.service.repository_dir =
      std::filesystem::temp_directory_path() / "dlaperf_tune_blocksize";
  Engine engine(cfg);

  std::printf("tuning trinv variant %d at n=%lld on %s "
              "(%lld generation workers)...\n",
              variant, static_cast<long long>(n),
              engine.config().system.to_string().c_str(),
              static_cast<long long>(engine.service().pool().worker_count()));

  TuneQuery query;
  query.spec = OperationSpec::trinv(variant, n, /*blocksize=*/16);
  query.lo = 16;
  query.hi = 160;
  query.step = 16;
  const Result<TuneResult> result = engine.tune(query);
  if (!result.ok()) {
    std::fprintf(stderr, "tune query failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  const TuneResult& tuned = *result;

  std::printf("\npredicted ticks per block size (n=%lld):\n",
              static_cast<long long>(n));
  for (std::size_t i = 0; i < tuned.values.size(); ++i) {
    std::printf("  b = %4lld : %12.0f\n",
                static_cast<long long>(tuned.values[i]),
                tuned.predictions[i].ticks.median);
  }
  const index_t best_pred = tuned.best_value();
  std::printf("model says: use b = %lld\n",
              static_cast<long long>(best_pred));

  std::printf("\nverifying by execution:\n");
  ExecContext ctx(backend_instance("blocked"));
  Rng rng(11);
  Matrix l(n, n);
  fill_lower_triangular(l.view(), rng);
  Matrix work(n, n);
  std::vector<double> measured;
  for (index_t b : tuned.values) {
    copy_matrix(l.view(), work.view());
    trinv_blocked(ctx, variant, n, work.data(), n, b);  // warm-up
    copy_matrix(l.view(), work.view());
    const std::uint64_t t0 = read_ticks();
    trinv_blocked(ctx, variant, n, work.data(), n, b);
    const std::uint64_t t1 = read_ticks();
    measured.push_back(static_cast<double>(t1 - t0));
    std::printf("  b = %4lld : %12.0f\n", static_cast<long long>(b),
                measured.back());
  }
  const index_t best_meas = tuned.values[rank_order(measured)[0]];
  std::printf("measurement says: b = %lld; model said b = %lld (%s)\n",
              static_cast<long long>(best_meas),
              static_cast<long long>(best_pred),
              std::llabs(best_meas - best_pred) <= 16 ? "within one step"
                                                      : "differs");
  return 0;
}
