// Tuning the algorithmic block size from models alone (paper IV-A2).
//
// For a chosen trinv variant and matrix size, evaluates the predicted
// runtime over a range of block sizes, picks the best, and verifies the
// choice by executing the real algorithm at several block sizes.
//
// Build & run:  ./build/examples/tune_blocksize [variant] [n]

#include <cstdio>
#include <cstdlib>

#include "algorithms/trinv.hpp"
#include "blas/registry.hpp"
#include "common/matrix_util.hpp"
#include "common/rng.hpp"
#include "predict/ranking.hpp"
#include "predict/trace.hpp"
#include "sampler/ticks.hpp"
#include "service/model_service.hpp"
#include "service/repository_predictor.hpp"

namespace {

using namespace dlap;

ModelJob job_for(RoutineId routine, std::vector<char> flags, Region domain) {
  ModelJob job;
  job.backend = "blocked";
  job.request.routine = routine;
  job.request.flags = std::move(flags);
  job.request.domain = std::move(domain);
  job.request.fixed_ld = 512;
  job.request.sampler.reps = 3;
  return job;
}

}  // namespace

int main(int argc, char** argv) {
  const int variant = (argc > 1) ? std::atoi(argv[1]) : 3;
  const index_t n = (argc > 2) ? std::atoll(argv[2]) : 320;

  ServiceConfig cfg;
  cfg.repository_dir =
      std::filesystem::temp_directory_path() / "dlaperf_tune_blocksize";
  ModelService service(cfg);

  std::printf("modeling kernels for trinv variant %d (backend %s), "
              "%lld generation workers...\n",
              variant, "blocked",
              static_cast<long long>(service.pool().worker_count()));
  const Region d1({8}, {256});
  const Region d2({8, 8}, {n, n});
  const Region d3({8, 8, 8}, {n, n, n});
  const std::vector<ModelJob> jobs{
      job_for(RoutineId::Trmm, {'R', 'L', 'N', 'N'}, d2),
      job_for(RoutineId::Trsm, {'L', 'L', 'N', 'N'}, d2),
      job_for(RoutineId::Trsm, {'R', 'L', 'N', 'N'}, d2),
      job_for(RoutineId::Gemm, {'N', 'N'}, d3),
      job_for(static_cast<RoutineId>(
                  static_cast<int>(RoutineId::Trinv1Unb) + variant - 1),
              {}, d1)};
  (void)service.generate_all(jobs);  // one concurrent batch

  const RepositoryBackedPredictor pred(service, "blocked",
                                       Locality::InCache);

  std::printf("\npredicted ticks per block size (n=%lld):\n",
              static_cast<long long>(n));
  std::vector<index_t> bs;
  std::vector<double> predicted;
  for (index_t b = 16; b <= 160; b += 16) {
    const double t = pred.predict(trace_trinv(variant, n, b)).ticks.median;
    bs.push_back(b);
    predicted.push_back(t);
    std::printf("  b = %4lld : %12.0f\n", static_cast<long long>(b), t);
  }
  const index_t best_pred = bs[rank_order(predicted)[0]];
  std::printf("model says: use b = %lld\n",
              static_cast<long long>(best_pred));

  std::printf("\nverifying by execution:\n");
  ExecContext ctx(backend_instance("blocked"));
  Rng rng(11);
  Matrix l(n, n);
  fill_lower_triangular(l.view(), rng);
  Matrix work(n, n);
  std::vector<double> measured;
  for (index_t b : bs) {
    copy_matrix(l.view(), work.view());
    trinv_blocked(ctx, variant, n, work.data(), n, b);  // warm-up
    copy_matrix(l.view(), work.view());
    const std::uint64_t t0 = read_ticks();
    trinv_blocked(ctx, variant, n, work.data(), n, b);
    const std::uint64_t t1 = read_ticks();
    measured.push_back(static_cast<double>(t1 - t0));
    std::printf("  b = %4lld : %12.0f\n", static_cast<long long>(b),
                measured.back());
  }
  const index_t best_meas = bs[rank_order(measured)[0]];
  std::printf("measurement says: b = %lld; model said b = %lld (%s)\n",
              static_cast<long long>(best_meas),
              static_cast<long long>(best_pred),
              std::llabs(best_meas - best_pred) <= 16 ? "within one step"
                                                      : "differs");
  return 0;
}
