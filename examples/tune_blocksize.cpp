// Tuning the algorithmic block size from models alone (paper IV-A2).
//
// For a chosen trinv variant and matrix size, evaluates the predicted
// runtime over a range of block sizes, picks the best, and verifies the
// choice by executing the real algorithm at several block sizes.
//
// Build & run:  ./build/examples/tune_blocksize [variant] [n]

#include <cstdio>
#include <cstdlib>

#include "algorithms/trinv.hpp"
#include "blas/registry.hpp"
#include "common/matrix_util.hpp"
#include "common/rng.hpp"
#include "modeler/modeler.hpp"
#include "predict/predictor.hpp"
#include "predict/ranking.hpp"
#include "predict/trace.hpp"
#include "sampler/ticks.hpp"

namespace {

using namespace dlap;

RoutineModel build(Modeler& modeler, RoutineId routine,
                   std::vector<char> flags, Region domain) {
  ModelingRequest req;
  req.routine = routine;
  req.flags = std::move(flags);
  req.domain = std::move(domain);
  req.fixed_ld = 512;
  req.sampler.reps = 3;
  RefinementConfig cfg;
  cfg.base.error_bound = 0.10;
  cfg.base.degree = 3;
  cfg.min_region_size = 32;
  return modeler.build_refinement(req, cfg);
}

}  // namespace

int main(int argc, char** argv) {
  const int variant = (argc > 1) ? std::atoi(argv[1]) : 3;
  const index_t n = (argc > 2) ? std::atoll(argv[2]) : 320;
  Level3Backend& backend = backend_instance("blocked");
  Modeler modeler(backend);

  std::printf("modeling kernels for trinv variant %d (backend %s)...\n",
              variant, backend.name().c_str());
  ModelSet models;
  const Region d1({8}, {256});
  const Region d2({8, 8}, {n, n});
  const Region d3({8, 8, 8}, {n, n, n});
  models.add(build(modeler, RoutineId::Trmm, {'R', 'L', 'N', 'N'}, d2));
  models.add(build(modeler, RoutineId::Trsm, {'L', 'L', 'N', 'N'}, d2));
  models.add(build(modeler, RoutineId::Trsm, {'R', 'L', 'N', 'N'}, d2));
  models.add(build(modeler, RoutineId::Gemm, {'N', 'N'}, d3));
  models.add(build(modeler, static_cast<RoutineId>(
                                static_cast<int>(RoutineId::Trinv1Unb) +
                                variant - 1),
                   {}, d1));
  const Predictor pred(models);

  std::printf("\npredicted ticks per block size (n=%lld):\n",
              static_cast<long long>(n));
  std::vector<index_t> bs;
  std::vector<double> predicted;
  for (index_t b = 16; b <= 160; b += 16) {
    const double t = pred.predict(trace_trinv(variant, n, b)).ticks.median;
    bs.push_back(b);
    predicted.push_back(t);
    std::printf("  b = %4lld : %12.0f\n", static_cast<long long>(b), t);
  }
  const index_t best_pred = bs[rank_order(predicted)[0]];
  std::printf("model says: use b = %lld\n",
              static_cast<long long>(best_pred));

  std::printf("\nverifying by execution:\n");
  ExecContext ctx(backend);
  Rng rng(11);
  Matrix l(n, n);
  fill_lower_triangular(l.view(), rng);
  Matrix work(n, n);
  std::vector<double> measured;
  for (index_t b : bs) {
    copy_matrix(l.view(), work.view());
    trinv_blocked(ctx, variant, n, work.data(), n, b);  // warm-up
    copy_matrix(l.view(), work.view());
    const std::uint64_t t0 = read_ticks();
    trinv_blocked(ctx, variant, n, work.data(), n, b);
    const std::uint64_t t1 = read_ticks();
    measured.push_back(static_cast<double>(t1 - t0));
    std::printf("  b = %4lld : %12.0f\n", static_cast<long long>(b),
                measured.back());
  }
  const index_t best_meas = bs[rank_order(measured)[0]];
  std::printf("measurement says: b = %lld; model said b = %lld (%s)\n",
              static_cast<long long>(best_meas),
              static_cast<long long>(best_pred),
              std::llabs(best_meas - best_pred) <= 16 ? "within one step"
                                                      : "differs");
  return 0;
}
