// Separating fast from slow Sylvester-equation algorithms (paper IV-B).
//
// Sixteen blocked schedules solve L X + X U = C; the paper observes that
// twelve land an order of magnitude below the other four. This example
// predicts all sixteen from models of dgemm and the unblocked solver,
// separates the groups, and verifies the split by execution.
//
// Build & run:  ./build/examples/sylvester_groups [n] [blocksize]

#include <cstdio>
#include <cstdlib>

#include "algorithms/sylv.hpp"
#include "blas/registry.hpp"
#include "common/matrix_util.hpp"
#include "common/rng.hpp"
#include "predict/ranking.hpp"
#include "predict/trace.hpp"
#include "sampler/ticks.hpp"
#include "service/model_service.hpp"
#include "service/repository_predictor.hpp"

namespace {

using namespace dlap;

ModelJob job_for(RoutineId routine, Region domain) {
  ModelJob job;
  job.backend = "blocked";
  job.request.routine = routine;
  job.request.flags = (routine == RoutineId::Gemm)
                          ? std::vector<char>{'N', 'N'}
                          : std::vector<char>{};
  job.request.domain = std::move(domain);
  job.request.fixed_ld = 512;
  job.request.sampler.reps = 3;
  return job;
}

std::string group_to_string(const std::vector<index_t>& group) {
  std::string s;
  for (index_t v : group) s += "v" + std::to_string(v + 1) + " ";
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const index_t n = (argc > 1) ? std::atoll(argv[1]) : 240;
  const index_t b = (argc > 2) ? std::atoll(argv[2]) : 48;
  Level3Backend& backend = backend_instance("blocked");

  ServiceConfig cfg;
  cfg.repository_dir =
      std::filesystem::temp_directory_path() / "dlaperf_sylvester_groups";
  ModelService service(cfg);

  std::printf("modeling dgemm and the unblocked Sylvester solver "
              "(one concurrent batch)...\n");
  (void)service.generate_all(
      {job_for(RoutineId::Gemm, Region({8, 8, 8}, {n, n, n})),
       job_for(RoutineId::SylvUnb, Region({8, 8}, {2 * b, 2 * b}))});
  const RepositoryBackedPredictor pred(service, "blocked",
                                       Locality::InCache);

  std::printf("\npredictions for the 16 variants (n=%lld, b=%lld):\n",
              static_cast<long long>(n), static_cast<long long>(b));
  std::vector<double> predicted;
  for (int v = 1; v <= kSylvVariantCount; ++v) {
    const SylvSchedule s = sylv_schedule(v);
    predicted.push_back(
        pred.predict(trace_sylv(v, n, n, b)).ticks.median);
    std::printf("  v%02d (%s row, %s col): %12.0f ticks\n", v,
                s.push_row ? "push" : "pull", s.push_col ? "push" : "pull",
                predicted.back());
  }
  const auto pfast = fast_group(predicted);
  std::printf("predicted fast group: %s\n", group_to_string(pfast).c_str());

  std::printf("\nverifying by execution:\n");
  ExecContext ctx(backend);
  Rng rng(13);
  Matrix l(n, n), u(n, n), c0(n, n);
  fill_lower_triangular(l.view(), rng);
  fill_upper_triangular(u.view(), rng);
  fill_uniform(c0.view(), rng);
  Matrix work(n, n);
  std::vector<double> measured;
  for (int v = 1; v <= kSylvVariantCount; ++v) {
    copy_matrix(c0.view(), work.view());
    sylv_blocked(ctx, v, n, n, l.data(), n, u.data(), n, work.data(), n, b);
    copy_matrix(c0.view(), work.view());
    const std::uint64_t t0 = read_ticks();
    sylv_blocked(ctx, v, n, n, l.data(), n, u.data(), n, work.data(), n, b);
    const std::uint64_t t1 = read_ticks();
    measured.push_back(static_cast<double>(t1 - t0));
  }
  const auto mfast = fast_group(measured);
  std::printf("measured fast group:  %s\n", group_to_string(mfast).c_str());
  std::printf("top-4 overlap: %.0f%%, kendall tau: %.2f\n",
              100.0 * topk_overlap(predicted, measured, 4),
              kendall_tau(predicted, measured));
  return 0;
}
