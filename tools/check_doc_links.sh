#!/usr/bin/env bash
# Checks that every relative markdown link in README.md and docs/*.md
# points at an existing file or directory (anchors and absolute URLs are
# ignored), and prints the example targets the docs mention so CI can
# build exactly what the documentation promises.
#
# Usage: tools/check_doc_links.sh [--list-doc-examples]
#   (exit 1 on the first broken link; with --list-doc-examples, also
#    print the deduplicated example target names found in the docs)

set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
docs=(README.md docs/*.md)

for doc in "${docs[@]}"; do
  dir=$(dirname "$doc")
  # Inline markdown links: [text](target), outside fenced code blocks
  # (lambda-introducers in C++ snippets would otherwise look like
  # links). Reference-style links are not used in this repository.
  prose=$(awk '/^```/ { fenced = !fenced; next } !fenced' "$doc")
  while IFS= read -r target; do
    # Strip a trailing anchor; skip pure anchors and absolute URLs.
    path=${target%%#*}
    [[ -z "$path" ]] && continue
    case "$path" in
      http://*|https://*|mailto:*) continue ;;
    esac
    # Resolve relative to the containing file, falling back to the repo
    # root (used for src/... pointers in docs/).
    if [[ ! -e "$dir/$path" && ! -e "$path" ]]; then
      echo "BROKEN LINK: $doc -> $target" >&2
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' <<<"$prose" | sed -E 's/^\]\(//; s/\)$//')
done

# Keep the docs' code pointers honest too: every `path/file.{cpp,hpp,md,sh}`
# mentioned in backticks must exist, either repo-relative or under src/
# (headers are cited by include path, e.g. `api/engine.hpp`).
while IFS= read -r ref; do
  if [[ ! -e "$ref" && ! -e "src/$ref" ]]; then
    echo "STALE FILE REFERENCE: $ref (mentioned in README.md/docs)" >&2
    fail=1
  fi
done < <(grep -ohE '`[A-Za-z0-9_./-]+\.(cpp|hpp|md|sh)`' "${docs[@]}" \
           | tr -d '`' | grep '/' | sort -u)

if [[ "${1:-}" == "--list-doc-examples" ]]; then
  grep -ohE 'examples/[A-Za-z0-9_]+\.cpp' "${docs[@]}" \
    | sed -E 's#examples/##; s#\.cpp##' | sort -u
fi

if [[ $fail -ne 0 ]]; then
  echo "documentation link check FAILED" >&2
  exit 1
fi
echo "documentation link check OK" >&2
