// dlap_pack -- CLI for the .dlapc binary model+sample container.
//
//   dlap_pack pack <repo_dir> <out.dlapc>   text repository -> container
//   dlap_pack unpack <in.dlapc> <out_dir>   container -> text repository
//   dlap_pack compact <repo_dir>            fold text files into
//                                           <repo_dir>/repository.dlapc
//                                           and delete them
//   dlap_pack inspect <in.dlapc>            print a summary
//
// pack/unpack round-trip byte-identically, so a packed repository can
// always be exploded back into per-key text files for inspection or
// hand-editing and re-packed without loss.

#include <cstring>
#include <iostream>
#include <string>

#include "storage/pack.hpp"

namespace {

int usage() {
  std::cerr << "usage:\n"
            << "  dlap_pack pack <repo_dir> <out.dlapc>\n"
            << "  dlap_pack unpack <in.dlapc> <out_dir>\n"
            << "  dlap_pack compact <repo_dir>\n"
            << "  dlap_pack inspect <in.dlapc>\n";
  return 2;
}

void report(const char* verb, const dlap::storage::PackStats& stats) {
  std::cout << verb << " " << stats.models << " models, "
            << stats.sample_keys << " sample sections ("
            << stats.sample_entries << " measurements), container size "
            << stats.bytes << " bytes\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "pack" && argc == 4) {
      report("packed", dlap::storage::pack_repository(argv[2], argv[3]));
    } else if (cmd == "unpack" && argc == 4) {
      report("unpacked", dlap::storage::unpack_container(argv[2], argv[3]));
    } else if (cmd == "compact" && argc == 3) {
      report("compacted", dlap::storage::compact_repository(argv[2]));
    } else if (cmd == "inspect" && argc == 3) {
      dlap::storage::inspect_container(argv[2], std::cout);
    } else {
      return usage();
    }
  } catch (const std::exception& e) {
    std::cerr << "dlap_pack: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
