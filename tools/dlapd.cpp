// dlapd -- the dlap performance-model query daemon.
//
//   dlapd --repo dlaperf_models [--host 127.0.0.1] [--port 8377]
//         [--workers N] [--conn-workers N] [--queue N]
//         [--rate R --burst B] [--timeout-ms MS] [--no-generate]
//
// Serves the engine's typed queries over HTTP+JSON:
//
//   curl -s localhost:8377/v1/predict -d '{"op":"sylv","m":144,"n":112}'
//   curl -s localhost:8377/v1/rank -d '{"candidates":[...]}'
//   curl -s localhost:8377/v1/tune -d '{"op":"chol","n":512}'
//   curl -s localhost:8377/v1/stats
//   curl -s -X POST localhost:8377/v1/admin/reload -d '{}'
//
// The reload endpoint re-attaches <repo>/repository.dlapc, so models
// regenerated offline (dlap_pack pack) go live without a restart and
// without stalling in-flight queries. SIGINT/SIGTERM shut down
// gracefully: queued connections are answered, then the process exits.

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "server/server.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: dlapd [options]\n"
         "  --repo DIR         model repository directory "
         "(default dlaperf_models)\n"
         "  --host ADDR        bind address (default 127.0.0.1)\n"
         "  --port N           port; 0 picks an ephemeral one "
         "(default 8377)\n"
         "  --workers N        engine generation workers (default: cores)\n"
         "  --conn-workers N   HTTP connection workers (default 4)\n"
         "  --queue N          pending-connection queue capacity "
         "(default 64)\n"
         "  --rate R           per-client requests/second; 0 disables "
         "(default 0)\n"
         "  --burst B          per-client burst size (default 32)\n"
         "  --timeout-ms MS    socket I/O timeout (default 5000)\n"
         "  --no-generate      fail queries needing missing models "
         "instead of generating\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  dlap::EngineConfig engine_config;
  dlapd::ServerConfig server_config;
  server_config.port = 8377;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--repo" && has_value) {
      engine_config.service.repository_dir = argv[++i];
    } else if (arg == "--host" && has_value) {
      server_config.host = argv[++i];
    } else if (arg == "--port" && has_value) {
      server_config.port = std::atoi(argv[++i]);
    } else if (arg == "--workers" && has_value) {
      engine_config.service.workers = std::atoll(argv[++i]);
    } else if (arg == "--conn-workers" && has_value) {
      server_config.workers = std::atoll(argv[++i]);
    } else if (arg == "--queue" && has_value) {
      server_config.queue_capacity =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--rate" && has_value) {
      server_config.rate.requests_per_second = std::atof(argv[++i]);
    } else if (arg == "--burst" && has_value) {
      server_config.rate.burst = std::atof(argv[++i]);
    } else if (arg == "--timeout-ms" && has_value) {
      server_config.io_timeout_ms = std::atoi(argv[++i]);
    } else if (arg == "--no-generate") {
      engine_config.generate_missing = false;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else {
      std::cerr << "dlapd: unknown or incomplete option '" << arg << "'\n";
      return usage();
    }
  }

  // Block the shutdown signals BEFORE any thread spawns, so every server
  // thread inherits the mask and sigwait below is the only consumer.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  try {
    dlap::Engine engine(engine_config);
    dlapd::Server server(engine, server_config);
    const dlap::Status started = server.start();
    if (!started.ok()) {
      std::cerr << "dlapd: " << started.to_string() << '\n';
      return 1;
    }
    std::cout << "dlapd: serving " << server.config().host << ":"
              << server.port() << " (repo "
              << engine.config().service.repository_dir.string()
              << ", conn workers " << server.config().workers << ", queue "
              << server.config().queue_capacity << ")" << std::endl;

    int signal_number = 0;
    sigwait(&signals, &signal_number);
    std::cout << "dlapd: signal " << signal_number
              << ", shutting down" << std::endl;
    server.stop();

    const dlapd::ServerStats stats = server.stats();
    std::cout << "dlapd: served " << stats.requests << " requests ("
              << stats.responses_2xx << " ok, " << stats.responses_4xx
              << " client errors, " << stats.responses_5xx
              << " server errors), shed " << stats.shed_queue_full
              << ", rate-limited " << stats.rate_limited << std::endl;
  } catch (const std::exception& e) {
    std::cerr << "dlapd: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
