// Tests for the measurement substrate: statistics, ticks, kernel-call
// descriptors (parse/format/validate/flops/shapes/dispatch), locality
// control, and the Sampler itself.

#include <gtest/gtest.h>

#include <thread>

#include "algorithms/sylv.hpp"
#include "common/threadpool.hpp"
#include "algorithms/trinv.hpp"
#include "blas/registry.hpp"
#include "common/matrix_util.hpp"
#include "sampler/calls.hpp"
#include "sampler/locality.hpp"
#include "sampler/machine.hpp"
#include "sampler/sampler.hpp"
#include "sampler/stats.hpp"
#include "sampler/ticks.hpp"

namespace dlap {
namespace {

// ------------------------------------------------------------------ stats

TEST(Stats, SummarizeComputesAllQuantities) {
  const SampleStats s = summarize({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);  // even count: midpoint
  EXPECT_NEAR(s.stddev, 1.2909944487358056, 1e-12);
  EXPECT_EQ(s.count, 4);
}

TEST(Stats, OddCountMedianIsMiddleElement) {
  EXPECT_DOUBLE_EQ(summarize({5.0, 1.0, 3.0}).median, 3.0);
}

TEST(Stats, SingleSampleHasZeroStddev) {
  const SampleStats s = summarize({7.0});
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
}

TEST(Stats, EmptyThrows) {
  EXPECT_THROW(summarize({}), invalid_argument_error);
}

TEST(Stats, GetSetRoundTrip) {
  SampleStats s;
  for (int i = 0; i < kStatCount; ++i) {
    s.set(static_cast<Stat>(i), 1.0 + i);
  }
  for (int i = 0; i < kStatCount; ++i) {
    EXPECT_DOUBLE_EQ(s.get(static_cast<Stat>(i)), 1.0 + i);
  }
}

TEST(Stats, StatNamesRoundTrip) {
  for (int i = 0; i < kStatCount; ++i) {
    const Stat s = static_cast<Stat>(i);
    EXPECT_EQ(stat_from_name(stat_name(s)), s);
  }
  EXPECT_THROW(stat_from_name("p99"), parse_error);
}

TEST(Stats, QuantileInterpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_THROW(quantile(v, 1.5), invalid_argument_error);
}

// ------------------------------------------------------------------ ticks

TEST(Ticks, MonotonicallyNonDecreasing) {
  std::uint64_t prev = read_ticks();
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t now = read_ticks();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(Ticks, RateIsPlausible) {
  // Any machine this runs on has a clock between 100 MHz and 10 GHz.
  const double rate = ticks_per_second();
  EXPECT_GT(rate, 1e8);
  EXPECT_LT(rate, 1e10);
}

TEST(Ticks, MeasuresElapsedTime) {
  const std::uint64_t t0 = read_ticks();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const std::uint64_t t1 = read_ticks();
  const double seconds = static_cast<double>(t1 - t0) / ticks_per_second();
  EXPECT_GT(seconds, 0.003);
  EXPECT_LT(seconds, 1.0);
}

// ------------------------------------------------------------------ calls

TEST(Calls, RoutineNamesRoundTrip) {
  for (int i = 0; i < kRoutineCount; ++i) {
    const RoutineId id = static_cast<RoutineId>(i);
    EXPECT_EQ(routine_from_name(routine_name(id)), id);
  }
  EXPECT_THROW(routine_from_name("dgetrf"), lookup_error);
}

TEST(Calls, ParsesThePaperExample) {
  // The exact tuple from paper Section II-B.
  const KernelCall c =
      parse_call("dtrsm(R,L,N,U,512,128,0.37,A,256,B,512)");
  EXPECT_EQ(c.routine, RoutineId::Trsm);
  EXPECT_EQ(c.flag_key(), "RLNU");
  EXPECT_EQ(c.sizes, (std::vector<index_t>{512, 128}));
  EXPECT_DOUBLE_EQ(c.scalars.at(0), 0.37);
  EXPECT_EQ(c.leads, (std::vector<index_t>{256, 512}));
}

TEST(Calls, FormatParseRoundTrip) {
  const char* examples[] = {
      "dgemm(N,T,64,32,16,1,A,64,B,32,0.5,C,64)",
      "dtrsm(L,L,N,N,100,200,-1,A,250,B,250)",
      "dtrmm(R,U,T,U,8,8,1,A,2500,B,2500)",
      "dsyrk(L,N,48,24,1,A,48,0,B,48)",
      "dsymm(L,U,32,16,1,A,32,B,32,1,C,32)",
      "dsyr2k(U,T,24,12,1,A,12,B,12,1,C,24)",
      "trinv1_unb(96,A,250)",
      "trinv4_unb(50,A,250)",
      "sylv_unb(96,96,A,96,B,96,C,96)",
  };
  for (const char* text : examples) {
    const KernelCall c = parse_call(text);
    EXPECT_EQ(format_call(c), text) << text;
  }
}

TEST(Calls, ParseRejectsMalformedInput) {
  EXPECT_THROW(parse_call("dtrsm"), parse_error);
  EXPECT_THROW(parse_call("dtrsm(R,L,N,U)"), parse_error);  // too few args
  EXPECT_THROW(parse_call("nosuch(1,2)"), lookup_error);
  EXPECT_THROW(parse_call("dtrsm(RR,L,N,U,8,8,1,A,8,B,8)"), parse_error);
  EXPECT_THROW(parse_call("dtrsm(R,L,N,U,x,8,1,A,8,B,8)"), parse_error);
}

TEST(Calls, ValidateChecksLeadingDimensions) {
  KernelCall c = parse_call("dgemm(N,N,64,32,16,1,A,64,B,16,1,C,64)");
  EXPECT_NO_THROW(validate_call(c));
  c.leads[0] = 32;  // A has 64 rows
  EXPECT_THROW(validate_call(c), invalid_argument_error);
}

TEST(Calls, FlopCounts) {
  EXPECT_DOUBLE_EQ(
      call_flops(parse_call("dgemm(N,N,10,20,30,1,A,10,B,30,1,C,10)")),
      2.0 * 10 * 20 * 30);
  // trsm from the left: m^2 n.
  EXPECT_DOUBLE_EQ(
      call_flops(parse_call("dtrsm(L,L,N,N,10,20,1,A,10,B,10)")),
      100.0 * 20);
  // trsm from the right: m n^2.
  EXPECT_DOUBLE_EQ(
      call_flops(parse_call("dtrsm(R,L,N,N,10,20,1,A,20,B,10)")),
      10.0 * 400);
  EXPECT_DOUBLE_EQ(call_flops(parse_call("trinv1_unb(10,A,10)")),
                   trinv_flops(10));
  EXPECT_DOUBLE_EQ(call_flops(parse_call("sylv_unb(8,4,A,8,B,4,C,8)")),
                   sylv_flops(8, 4));
}

TEST(Calls, OperandShapesFollowFlags) {
  // gemm with transA: A is k x m.
  const auto s1 =
      operand_shapes(parse_call("dgemm(T,N,10,20,30,1,A,30,B,30,1,C,10)"));
  ASSERT_EQ(s1.size(), 3u);
  EXPECT_EQ(s1[0].rows, 30);
  EXPECT_EQ(s1[0].cols, 10);
  EXPECT_FALSE(s1[0].written);
  EXPECT_TRUE(s1[2].written);

  // trsm side=R: A is n x n.
  const auto s2 =
      operand_shapes(parse_call("dtrsm(R,U,N,N,10,20,1,A,20,B,10)"));
  EXPECT_EQ(s2[0].rows, 20);
  EXPECT_EQ(s2[0].fill, OperandShape::Fill::UpperTri);

  // sylv: L lower m x m, U upper n x n, X m x n.
  const auto s3 = operand_shapes(parse_call("sylv_unb(8,4,A,8,B,4,C,8)"));
  EXPECT_EQ(s3[0].fill, OperandShape::Fill::LowerTri);
  EXPECT_EQ(s3[1].fill, OperandShape::Fill::UpperTri);
  EXPECT_EQ(s3[2].rows, 8);
  EXPECT_EQ(s3[2].cols, 4);
}

TEST(Calls, ExecuteDispatchesCorrectly) {
  // Execute a dgemm through the dispatcher and verify the arithmetic.
  const KernelCall c = parse_call("dgemm(N,N,2,2,2,1,A,2,B,2,0,C,2)");
  std::vector<double> a{1, 2, 3, 4};  // [1 3; 2 4]
  std::vector<double> b{1, 0, 0, 1};  // identity
  std::vector<double> cc{9, 9, 9, 9};
  execute_call(c, backend_instance("naive"), {a.data(), b.data(), cc.data()});
  EXPECT_EQ(cc, a);
}

TEST(Calls, ExecuteRejectsWrongOperandCount) {
  const KernelCall c = parse_call("dgemm(N,N,2,2,2,1,A,2,B,2,0,C,2)");
  std::vector<double> a(4);
  EXPECT_THROW(execute_call(c, backend_instance("naive"), {a.data()}),
               invalid_argument_error);
}

// --------------------------------------------------------------- locality

TEST(Locality, NamesRoundTrip) {
  EXPECT_EQ(locality_from_name(locality_name(Locality::InCache)),
            Locality::InCache);
  EXPECT_EQ(locality_from_name(locality_name(Locality::OutOfCache)),
            Locality::OutOfCache);
  EXPECT_THROW(locality_from_name("warm"), parse_error);
}

TEST(Locality, FlushAndTouchRun) {
  // Smoke: both primitives complete without fault on real buffers.
  Matrix m(64, 64);
  touch_operand(m.data(), 64, 64, 64);
  flush_cache();
}

// ---------------------------------------------------------------- sampler

TEST(Sampler, ProducesRequestedRepCount) {
  SamplerConfig cfg;
  cfg.reps = 7;
  Sampler s(backend_instance("naive"), cfg);
  const auto raw = s.measure_raw(parse_call("dgemm(N,N,16,16,16,1,A,16,B,16,0,C,16)"));
  EXPECT_EQ(raw.size(), 7u);
  for (double t : raw) EXPECT_GT(t, 0.0);
  EXPECT_EQ(s.total_timed_runs(), 7u);
}

TEST(Sampler, StatsAreConsistentWithRaw) {
  SamplerConfig cfg;
  cfg.reps = 5;
  Sampler s(backend_instance("naive"), cfg);
  const SampleStats st =
      s.measure(parse_call("dtrsm(L,L,N,N,32,32,1,A,32,B,32)"));
  EXPECT_GT(st.min, 0.0);
  EXPECT_LE(st.min, st.median);
  EXPECT_LE(st.median, st.max);
  EXPECT_EQ(st.count, 5);
}

TEST(Sampler, LargerProblemsTakeLonger) {
  SamplerConfig cfg;
  cfg.reps = 3;
  Sampler s(backend_instance("naive"), cfg);
  const double small =
      s.measure(parse_call("dgemm(N,N,16,16,16,1,A,16,B,16,0,C,16)")).median;
  const double large =
      s.measure(parse_call("dgemm(N,N,128,128,128,1,A,128,B,128,0,C,128)"))
          .median;
  EXPECT_GT(large, small * 10);
}

TEST(Sampler, MeasureTextAcceptsPaperTuples) {
  SamplerConfig cfg;
  cfg.reps = 2;
  Sampler s(backend_instance("blocked"), cfg);
  const SampleStats st =
      s.measure_text("dtrsm(R,L,N,U,64,32,0.37,A,128,B,64)");
  EXPECT_GT(st.median, 0.0);
}

TEST(Sampler, UnblockedKernelsAreMeasurable) {
  SamplerConfig cfg;
  cfg.reps = 3;
  Sampler s(backend_instance("naive"), cfg);
  EXPECT_GT(s.measure_text("trinv3_unb(64,A,64)").median, 0.0);
  EXPECT_GT(s.measure_text("sylv_unb(32,32,A,32,B,32,C,32)").median, 0.0);
}

TEST(Sampler, RejectsBadConfig) {
  SamplerConfig cfg;
  cfg.reps = 0;
  EXPECT_THROW(Sampler(backend_instance("naive"), cfg),
               invalid_argument_error);
}

TEST(Sampler, ConcurrentMeasurementsCountEveryTimedRun) {
  // Batched generation may fan sampling out across threads; the timed-run
  // counter is atomic so the paper's sample-budget accounting never loses
  // increments (run under TSan in CI). The naive backend's kernels are
  // pure functions of their per-call operands, so one sampler instance is
  // safe to drive from many threads.
  SamplerConfig cfg;
  cfg.reps = 4;
  Sampler s(backend_instance("naive"), cfg);
  const KernelCall call = parse_call("dgemm(N,N,24,24,24,1,A,24,B,24,0,C,24)");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5;
  ThreadPool pool(kThreads);
  pool.parallel_for_each(kThreads, [&](index_t) {
    for (int i = 0; i < kPerThread; ++i) (void)s.measure(call);
  });
  EXPECT_EQ(s.total_timed_runs(),
            static_cast<std::uint64_t>(kThreads * kPerThread * cfg.reps));
}

// ---------------------------------------------------------------- machine

TEST(Machine, CalibrationIsPositiveAndCached) {
  const MachineInfo& a = machine_info();
  EXPECT_GT(a.flops_per_tick, 0.0);
  const MachineInfo& b = machine_info();
  EXPECT_EQ(&a, &b);
}

TEST(Machine, EfficiencyDefinition) {
  const double fips = machine_info().flops_per_tick;
  EXPECT_DOUBLE_EQ(efficiency(fips * 100.0, 100.0), 1.0);
  EXPECT_THROW(efficiency(1.0, 0.0), invalid_argument_error);
}

}  // namespace
}  // namespace dlap
