// Tests for the OperationRegistry: built-in family registration, the
// registry-driven OperationSpec/RankQuery surface, edge cases (unknown
// family names, out-of-range variants, registration idempotence) and
// end-to-end registration of a custom family with its own domain planner.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>

#include "algorithms/chol.hpp"
#include "algorithms/sylv.hpp"
#include "algorithms/trinv.hpp"
#include "ops/registry.hpp"
#include "predict/trace.hpp"

namespace dlap {
namespace {

TEST(OperationRegistry, BuiltinFamiliesAreRegistered) {
  OperationRegistry& reg = OperationRegistry::instance();
  const std::vector<std::string> names = reg.names();
  for (const char* expected : {"chol", "sylv", "trinv"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  EXPECT_EQ(reg.require("trinv").variant_count, kTrinvVariantCount);
  EXPECT_EQ(reg.require("sylv").variant_count, kSylvVariantCount);
  EXPECT_EQ(reg.require("chol").variant_count, kCholVariantCount);
  EXPECT_EQ(reg.require("trinv").size_axes, 1);
  EXPECT_EQ(reg.require("sylv").size_axes, 2);
  EXPECT_EQ(reg.require("chol").size_axes, 1);
}

TEST(OperationRegistry, UnknownFamilyIsParseErrorNotACrash) {
  EXPECT_EQ(OperationRegistry::instance().find("nosuchop"), nullptr);
  EXPECT_THROW((void)OperationRegistry::instance().require("nosuchop"),
               lookup_error);

  const Status s =
      OperationSpec::of("nosuchop", 1, 0, 64, 16).validate();
  EXPECT_EQ(s.code, StatusCode::ParseError);
  EXPECT_NE(s.message.find("nosuchop"), std::string::npos);

  // A default-constructed spec names no family.
  EXPECT_EQ(OperationSpec{}.validate().code, StatusCode::ParseError);

  // all_variants over an unknown family degrades to a single candidate
  // whose validation carries the ParseError.
  const RankQuery q =
      RankQuery::all_variants(OperationSpec::of("nosuchop", 1, 0, 64, 16));
  ASSERT_EQ(q.candidates.size(), 1u);
  EXPECT_EQ(q.candidates[0].validate().code, StatusCode::ParseError);
}

TEST(OperationRegistry, VariantOutOfRangeIsInvalidQuery) {
  EXPECT_EQ(OperationSpec::chol(0, 64, 16).validate().code,
            StatusCode::InvalidQuery);
  EXPECT_EQ(OperationSpec::chol(4, 64, 16).validate().code,
            StatusCode::InvalidQuery);
  EXPECT_EQ(OperationSpec::trinv(5, 64, 16).validate().code,
            StatusCode::InvalidQuery);
  EXPECT_EQ(OperationSpec::sylv(17, 64, 64, 16).validate().code,
            StatusCode::InvalidQuery);
  EXPECT_TRUE(OperationSpec::chol(3, 64, 16).validate().ok());
}

TEST(OperationRegistry, RegistrationIsIdempotent) {
  OperationRegistry& reg = OperationRegistry::instance();

  // Re-registering a built-in name is ignored (and reports so).
  OperationDescriptor clone;
  clone.name = "trinv";
  clone.variant_count = 99;
  clone.trace = [](const OperationSpec&) { return CallTrace{}; };
  clone.nominal_flops = [](const OperationSpec&) { return 0.0; };
  EXPECT_FALSE(reg.register_family(std::move(clone)));
  EXPECT_EQ(reg.require("trinv").variant_count, kTrinvVariantCount);

  // A fresh name registers exactly once.
  OperationDescriptor once;
  once.name = "test_idempotence_op";
  once.variant_count = 2;
  once.trace = [](const OperationSpec& s) { return trace_trinv(1, s.n, s.blocksize); };
  once.nominal_flops = [](const OperationSpec& s) { return trinv_flops(s.n); };
  OperationDescriptor again = once;
  EXPECT_TRUE(reg.register_family(std::move(once)));
  EXPECT_FALSE(reg.register_family(std::move(again)));
  EXPECT_EQ(reg.require("test_idempotence_op").variant_count, 2);
}

TEST(OperationRegistry, RejectsMalformedDescriptors) {
  OperationRegistry& reg = OperationRegistry::instance();
  OperationDescriptor good;
  good.name = "test_malformed_op";
  good.variant_count = 1;
  good.trace = [](const OperationSpec&) { return CallTrace{}; };
  good.nominal_flops = [](const OperationSpec&) { return 0.0; };

  OperationDescriptor nameless = good;
  nameless.name.clear();
  EXPECT_THROW(reg.register_family(std::move(nameless)),
               invalid_argument_error);

  OperationDescriptor variantless = good;
  variantless.variant_count = 0;
  EXPECT_THROW(reg.register_family(std::move(variantless)),
               invalid_argument_error);

  OperationDescriptor traceless = good;
  traceless.trace = nullptr;
  EXPECT_THROW(reg.register_family(std::move(traceless)),
               invalid_argument_error);

  OperationDescriptor flopless = good;
  flopless.nominal_flops = nullptr;
  EXPECT_THROW(reg.register_family(std::move(flopless)),
               invalid_argument_error);

  OperationDescriptor bad_axes = good;
  bad_axes.size_axes = 3;
  EXPECT_THROW(reg.register_family(std::move(bad_axes)),
               invalid_argument_error);

  // None of the rejected descriptors landed in the registry.
  EXPECT_EQ(reg.find("test_malformed_op"), nullptr);
}

TEST(OperationRegistry, CholFamilyDrivesSpecsTracesAndFlops) {
  const OperationSpec spec = OperationSpec::chol(3, 96, 32);
  ASSERT_TRUE(spec.validate().ok());
  EXPECT_EQ(spec.op, "chol");
  EXPECT_DOUBLE_EQ(spec.nominal_flops(), chol_flops(96));
  EXPECT_EQ(spec.to_string(), "chol v3 n=96 b=32");

  // The spec's trace equals the free-function trace, and contains the
  // expected kernel mix: one unblocked factorization per diagonal block,
  // plus trsm/syrk updates.
  const CallTrace via_spec = spec.trace();
  const CallTrace direct = trace_chol(3, 96, 32);
  ASSERT_EQ(via_spec.size(), direct.size());
  index_t unb = 0, trsm = 0, syrk = 0;
  for (std::size_t i = 0; i < via_spec.size(); ++i) {
    EXPECT_EQ(format_call(via_spec[i]), format_call(direct[i]));
    unb += via_spec[i].routine == RoutineId::Chol3Unb;
    trsm += via_spec[i].routine == RoutineId::Trsm;
    syrk += via_spec[i].routine == RoutineId::Syrk;
  }
  EXPECT_EQ(unb, 3);  // ceil(96 / 32) diagonal blocks
  EXPECT_EQ(trsm, 3);
  EXPECT_EQ(syrk, 3);

  EXPECT_EQ(RankQuery::chol_variants(96, 32).candidates.size(), 3u);
}

TEST(OperationRegistry, CustomFamilyWithCustomPlannerEndToEnd) {
  // A square-gemm family: variant 1 issues one dgemm(N,N) of order n. Its
  // planner tags the planned jobs with a recognizable domain instead of
  // using the trace-driven default.
  static std::atomic<int> planner_runs{0};
  OperationDescriptor op;
  op.name = "test_square_gemm";
  op.variant_count = 1;
  op.size_axes = 1;
  op.trace = [](const OperationSpec& s) {
    KernelCall c;
    c.routine = RoutineId::Gemm;
    c.flags = {'N', 'N'};
    c.sizes = {s.n, s.n, s.n};
    c.scalars = {1.0, 0.0};
    c.leads = {s.n, s.n, s.n};
    return CallTrace{c};
  };
  op.nominal_flops = [](const OperationSpec& s) {
    const double n = static_cast<double>(s.n);
    return 2.0 * n * n * n;
  };
  op.plan = [](const std::vector<OperationSpec>& specs,
               const SystemSpec& system, const PlanningPolicy& policy) {
    ++planner_runs;
    index_t hi = policy.min_domain_hi;
    for (const OperationSpec& s : specs) hi = std::max(hi, s.n);
    ModelJob job;
    job.backend = system.backend;
    job.request.routine = RoutineId::Gemm;
    job.request.flags = {'N', 'N'};
    job.request.sampler.locality = system.locality;
    job.request.domain = Region({policy.domain_lo, policy.domain_lo,
                                 policy.domain_lo},
                                {hi, hi, hi});
    return std::vector<ModelJob>{job};
  };
  (void)OperationRegistry::instance().register_family(std::move(op));

  const OperationSpec spec =
      OperationSpec::of("test_square_gemm", 1, 0, 100, 16);
  ASSERT_TRUE(spec.validate().ok()) << spec.validate().to_string();
  EXPECT_EQ(spec.trace().size(), 1u);

  const SystemSpec system{"blocked", Locality::InCache};
  const auto jobs = plan_jobs_for_specs({spec}, system, PlanningPolicy{});
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_GE(planner_runs.load(), 1);
  EXPECT_EQ(jobs[0].request.domain, Region({8, 8, 8}, {100, 100, 100}));
}

TEST(OperationRegistry, PlanJobsForSpecsMergesAcrossFamilies) {
  // trinv and chol both need lower-triangular right-side trsm models but
  // under different flags; the merged plan holds one job per distinct
  // (routine, flags) key, with domains covering each family's calls.
  const std::vector<OperationSpec> specs = {OperationSpec::trinv(3, 160, 32),
                                            OperationSpec::chol(3, 224, 32)};
  const SystemSpec system{"blocked", Locality::InCache};
  const auto jobs = plan_jobs_for_specs(specs, system, PlanningPolicy{});

  std::set<std::string> keys;
  for (const ModelJob& job : jobs) {
    EXPECT_TRUE(keys.insert(ModelService::key_for(job).to_string()).second)
        << "duplicate key in merged plan";
  }

  // Every non-degenerate call of both traces is covered by some job.
  for (const OperationSpec& spec : specs) {
    for (const KernelCall& call : spec.trace()) {
      if (call_is_degenerate(call)) continue;
      const auto it = std::find_if(
          jobs.begin(), jobs.end(), [&](const ModelJob& job) {
            return job.request.routine == call.routine &&
                   std::string(job.request.flags.begin(),
                               job.request.flags.end()) == call.flag_key();
          });
      ASSERT_NE(it, jobs.end()) << format_call(call);
      EXPECT_TRUE(it->request.domain.contains(call.sizes))
          << format_call(call);
    }
  }
}

}  // namespace
}  // namespace dlap
