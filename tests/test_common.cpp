// Unit tests for the common substrate: strings, env, RNG, matrices,
// matrix utilities, and the thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "common/env.hpp"
#include "common/matrix.hpp"
#include "common/matrix_util.hpp"
#include "common/rng.hpp"
#include "common/str.hpp"
#include "common/threadpool.hpp"

namespace dlap {
namespace {

// ---------------------------------------------------------------- strings

TEST(Str, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello "), "hello");
  EXPECT_EQ(trim("\t\na\r "), "a");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-op"), "no-op");
}

TEST(Str, SplitPreservesEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Str, SplitTrimmedTrimsEachField) {
  EXPECT_EQ(split_trimmed(" a , b ,c ", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Str, JoinRoundTripsSplit) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(split(join(parts, ","), ','), parts);
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Str, StartsWith) {
  EXPECT_TRUE(starts_with("dtrsm(...)", "dtrsm"));
  EXPECT_FALSE(starts_with("dtrsm", "dtrsms"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(Str, ParseIntAcceptsSignedIntegers) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
  EXPECT_EQ(parse_int("0"), 0);
}

TEST(Str, ParseIntRejectsGarbage) {
  EXPECT_THROW(parse_int("12x"), parse_error);
  EXPECT_THROW(parse_int(""), parse_error);
  EXPECT_THROW(parse_int("1.5"), parse_error);
}

TEST(Str, ParseDoubleAcceptsFloats) {
  EXPECT_DOUBLE_EQ(parse_double("0.37"), 0.37);
  EXPECT_DOUBLE_EQ(parse_double("-1"), -1.0);
  EXPECT_DOUBLE_EQ(parse_double("1e3"), 1000.0);
}

TEST(Str, ParseDoubleRejectsGarbage) {
  EXPECT_THROW(parse_double("abc"), parse_error);
  EXPECT_THROW(parse_double("1.2.3"), parse_error);
  EXPECT_THROW(parse_double(""), parse_error);
}

// -------------------------------------------------------------------- env

TEST(Env, FallbacksWhenUnset) {
  EXPECT_EQ(env_string("DLAPERF_TEST_SURELY_UNSET", "dflt"), "dflt");
  EXPECT_EQ(env_int("DLAPERF_TEST_SURELY_UNSET", 17), 17);
}

TEST(Env, ReadsSetVariables) {
  ::setenv("DLAPERF_TEST_VAR", "123", 1);
  EXPECT_EQ(env_int("DLAPERF_TEST_VAR", 0), 123);
  EXPECT_EQ(env_string("DLAPERF_TEST_VAR", ""), "123");
  ::setenv("DLAPERF_TEST_VAR", "notanint", 1);
  EXPECT_EQ(env_int("DLAPERF_TEST_VAR", 5), 5);
  ::unsetenv("DLAPERF_TEST_VAR");
}

// -------------------------------------------------------------------- rng

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformWithinBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(11);
  std::set<index_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, NormalHasZeroMeanUnitVariance) {
  Rng rng(5);
  const int n = 20000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.1);
}

// ----------------------------------------------------------------- matrix

TEST(Matrix, ZeroInitializedAndShaped) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.ld(), 3);
  for (index_t j = 0; j < 4; ++j) {
    for (index_t i = 0; i < 3; ++i) EXPECT_EQ(m(i, j), 0.0);
  }
}

TEST(Matrix, ColumnMajorLayoutWithLeadingDimension) {
  Matrix m(2, 3, 5);
  m(1, 2) = 42.0;
  EXPECT_EQ(m.data()[1 + 2 * 5], 42.0);
}

TEST(Matrix, EmptyMatricesAreLegal) {
  Matrix m(0, 0);
  EXPECT_TRUE(m.empty());
  Matrix n(4, 0);
  EXPECT_TRUE(n.empty());
  Matrix p(0, 4);
  EXPECT_TRUE(p.empty());
}

TEST(Matrix, RejectsBadLeadingDimension) {
  EXPECT_THROW(Matrix(4, 2, 3), invalid_argument_error);
  EXPECT_THROW(Matrix(-1, 2), invalid_argument_error);
}

TEST(MatrixView, BlockAddressesSubmatrix) {
  Matrix m(4, 4);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 4; ++i) m(i, j) = static_cast<double>(10 * i + j);
  MatrixView blk = m.block(1, 2, 2, 2);
  EXPECT_EQ(blk.rows(), 2);
  EXPECT_EQ(blk.cols(), 2);
  EXPECT_EQ(blk(0, 0), 12.0);
  EXPECT_EQ(blk(1, 1), 23.0);
  blk(0, 1) = -1.0;
  EXPECT_EQ(m(1, 3), -1.0);
}

TEST(MatrixView, BlockOutOfRangeThrows) {
  Matrix m(4, 4);
  EXPECT_THROW(m.block(2, 2, 3, 1), invalid_argument_error);
  EXPECT_THROW(m.block(0, 0, 5, 5), invalid_argument_error);
}

// ------------------------------------------------------------ matrix_util

TEST(MatrixUtil, FillLowerTriangularZerosUpperPart) {
  Rng rng(1);
  Matrix m(6, 6);
  fill_lower_triangular(m.view(), rng);
  for (index_t j = 0; j < 6; ++j) {
    for (index_t i = 0; i < 6; ++i) {
      if (i < j) {
        EXPECT_EQ(m(i, j), 0.0);
      } else if (i == j) {
        EXPECT_GE(m(i, j), 1.0);
        EXPECT_LT(m(i, j), 2.0);
      }
    }
  }
}

TEST(MatrixUtil, FillUpperTriangularZerosLowerPart) {
  Rng rng(1);
  Matrix m(5, 5);
  fill_upper_triangular(m.view(), rng);
  for (index_t j = 0; j < 5; ++j) {
    for (index_t i = j + 1; i < 5; ++i) EXPECT_EQ(m(i, j), 0.0);
  }
}

TEST(MatrixUtil, CopyHandlesDifferentLds) {
  Rng rng(2);
  Matrix a(3, 3, 7);
  fill_uniform(a.view(), rng);
  Matrix b(3, 3, 4);
  copy_matrix(a.view(), b.view());
  EXPECT_EQ(relative_diff(a.view(), b.view()), 0.0);
}

TEST(MatrixUtil, FrobeniusNormOfIdentity) {
  Matrix id(9, 9);
  set_identity(id.view());
  EXPECT_NEAR(frobenius_norm(id.view()), 3.0, 1e-12);
}

TEST(MatrixUtil, RelativeDiffDetectsPerturbation) {
  Rng rng(3);
  Matrix a(4, 4);
  fill_uniform(a.view(), rng);
  Matrix b(4, 4);
  copy_matrix(a.view(), b.view());
  EXPECT_EQ(relative_diff(a.view(), b.view()), 0.0);
  b(2, 2) += 0.5;
  EXPECT_GT(relative_diff(a.view(), b.view()), 0.0);
}

TEST(MatrixUtil, MaxAbs) {
  Matrix a(2, 2);
  a(0, 0) = -3.5;
  a(1, 1) = 2.0;
  EXPECT_DOUBLE_EQ(max_abs(a.view()), 3.5);
}

// ------------------------------------------------------------- threadpool

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](index_t b, index_t e) {
    for (index_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, [&](index_t, index_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, SmallRangeFewerChunksThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(0, 3, [&](index_t b, index_t e) {
    for (index_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](index_t b, index_t) {
                          if (b >= 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Pool must remain usable afterwards.
  std::atomic<int> n{0};
  pool.parallel_for(0, 10, [&](index_t b, index_t e) {
    n.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPool, ParallelForEachVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(257);
  for (auto& v : visits) v.store(0);
  pool.parallel_for_each(257, [&](index_t i) {
    visits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);

  std::atomic<int> calls{0};
  pool.parallel_for_each(0, [&](index_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ParallelForEachPropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for_each(
                   50,
                   [&](index_t i) {
                     if (i == 17) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
  // Pool must remain usable afterwards.
  std::atomic<int> n{0};
  pool.parallel_for_each(10, [&](index_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPool, SubmitReturnsFutureWithResultOrException) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 6 * 7; });
  auto boom = pool.submit(
      []() -> int { throw std::runtime_error("bad job"); });
  EXPECT_EQ(ok.get(), 42);
  EXPECT_THROW((void)boom.get(), std::runtime_error);

  // void-returning jobs work too.
  std::atomic<bool> ran{false};
  pool.submit([&] { ran.store(true); }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, ManySequentialParallelFors) {
  ThreadPool pool(2);
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(0, 64, [&](index_t b, index_t e) {
      total.fetch_add(e - b);
    });
  }
  EXPECT_EQ(total.load(), 50 * 64);
}

}  // namespace
}  // namespace dlap
