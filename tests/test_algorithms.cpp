// Tests for the target algorithms: the four trinv variants, the sixteen
// Sylvester variants and the three Cholesky variants (blocked and
// unblocked), all checked against independent mathematical properties
// (L * L^{-1} = I, residual of L X + X U = C, ||L L^T - A|| / ||A||),
// across block sizes and rectangular shapes.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "algorithms/chol.hpp"
#include "algorithms/sylv.hpp"
#include "algorithms/trinv.hpp"
#include "blas/registry.hpp"
#include "common/matrix.hpp"
#include "common/matrix_util.hpp"
#include "common/rng.hpp"

namespace dlap {
namespace {

// || L_inv * L_orig - I ||_F / n
double trinv_residual(const Matrix& linv, const Matrix& lorig) {
  const index_t n = lorig.rows();
  Matrix prod(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      double s = 0.0;
      // Both factors lower triangular: k ranges j..i.
      for (index_t k = j; k <= i; ++k) s += linv(i, k) * lorig(k, j);
      prod(i, j) = s;
    }
  }
  Matrix id(n, n);
  set_identity(id.view());
  return relative_diff(prod.view(), id.view());
}

// || L X + X U - C ||_F / ||C||_F
double sylv_residual(const Matrix& l, const Matrix& u, const Matrix& x,
                     const Matrix& c) {
  const index_t m = x.rows();
  const index_t n = x.cols();
  Matrix r(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double s = 0.0;
      for (index_t k = 0; k <= i; ++k) s += l(i, k) * x(k, j);
      for (index_t k = 0; k <= j; ++k) s += x(i, k) * u(k, j);
      r(i, j) = s;
    }
  }
  return relative_diff(r.view(), c.view());
}

// || L L^T - A ||_F / ||A||_F, with L the lower triangle of `factored`
// and A the original symmetric matrix (only its lower triangle read).
double chol_residual(const Matrix& factored, const Matrix& aorig) {
  const index_t n = aorig.rows();
  Matrix prod(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      double s = 0.0;
      // (L L^T)(i,j) = sum_k L(i,k) L(j,k), k <= min(i,j).
      const index_t kmax = std::min(i, j);
      for (index_t k = 0; k <= kmax; ++k) {
        s += factored(i, k) * factored(j, k);
      }
      prod(i, j) = s;
    }
  }
  Matrix full(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      full(i, j) = (i >= j) ? aorig(i, j) : aorig(j, i);
    }
  }
  return relative_diff(prod.view(), full.view());
}

// ------------------------------------------------------------ trinv unb

class TrinvUnblockedTest : public ::testing::TestWithParam<int> {};

TEST_P(TrinvUnblockedTest, InvertsAcrossSizes) {
  const int variant = GetParam();
  Rng rng(100 + variant);
  for (index_t n : {1, 2, 3, 8, 17, 64, 129}) {
    Matrix l(n, n, n + 2);
    fill_lower_triangular(l.view(), rng);
    Matrix l0(n, n);
    copy_matrix(l.view(), l0.view());
    trinv_unblocked(variant, n, l.data(), l.ld());
    EXPECT_LT(trinv_residual(l, l0), 1e-11)
        << "variant " << variant << " n=" << n;
  }
}

TEST_P(TrinvUnblockedTest, ZeroSizeIsNoop) {
  double sentinel = 42.0;
  trinv_unblocked(GetParam(), 0, &sentinel, 1);
  EXPECT_EQ(sentinel, 42.0);
}

INSTANTIATE_TEST_SUITE_P(Variants, TrinvUnblockedTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(TrinvUnblocked, AllVariantsProduceIdenticalResults) {
  Rng rng(7);
  const index_t n = 40;
  Matrix l0(n, n);
  fill_lower_triangular(l0.view(), rng);
  Matrix ref(n, n);
  copy_matrix(l0.view(), ref.view());
  trinv_unblocked(1, n, ref.data(), n);
  for (int v = 2; v <= 4; ++v) {
    Matrix l(n, n);
    copy_matrix(l0.view(), l.view());
    trinv_unblocked(v, n, l.data(), n);
    EXPECT_LT(relative_diff(l.view(), ref.view()), 1e-12) << "variant " << v;
  }
}

TEST(TrinvUnblocked, SingularThrows) {
  Matrix l(3, 3);
  l(0, 0) = 1.0;
  l(1, 1) = 0.0;
  l(2, 2) = 1.0;
  for (int v = 1; v <= 4; ++v) {
    Matrix c(3, 3);
    copy_matrix(l.view(), c.view());
    EXPECT_THROW(trinv_unblocked(v, 3, c.data(), 3), numerical_error)
        << "variant " << v;
  }
}

TEST(TrinvUnblocked, RejectsBadArguments) {
  double x = 1.0;
  EXPECT_THROW(trinv_unblocked(0, 1, &x, 1), invalid_argument_error);
  EXPECT_THROW(trinv_unblocked(5, 1, &x, 1), invalid_argument_error);
  EXPECT_THROW(trinv_unblocked(1, 4, &x, 2), invalid_argument_error);
}

// --------------------------------------------------------- trinv blocked

class TrinvBlockedTest
    : public ::testing::TestWithParam<std::tuple<int, index_t, const char*>> {
};

TEST_P(TrinvBlockedTest, InvertsForAllBlocksizes) {
  const auto [variant, blocksize, bname] = GetParam();
  ExecContext ctx(backend_instance(bname));
  Rng rng(variant * 1000 + blocksize);
  for (index_t n : {1, 13, 96, 150}) {
    Matrix l(n, n);
    fill_lower_triangular(l.view(), rng);
    Matrix l0(n, n);
    copy_matrix(l.view(), l0.view());
    trinv_blocked(ctx, variant, n, l.data(), n > 0 ? n : 1, blocksize);
    EXPECT_LT(trinv_residual(l, l0), 1e-10)
        << "variant " << variant << " b=" << blocksize << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsBlocksizesBackends, TrinvBlockedTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values<index_t>(1, 7, 32, 96, 200),
                       ::testing::Values("naive", "blocked")));

TEST(TrinvBlocked, MatchesUnblockedExactlyAtBlocksizeOne) {
  // Blocked with b = 1 must perform the same arithmetic as unblocked.
  Rng rng(3);
  const index_t n = 24;
  Matrix l0(n, n);
  fill_lower_triangular(l0.view(), rng);
  ExecContext ctx(backend_instance("naive"));
  for (int v = 1; v <= 4; ++v) {
    Matrix a(n, n), b(n, n);
    copy_matrix(l0.view(), a.view());
    copy_matrix(l0.view(), b.view());
    trinv_blocked(ctx, v, n, a.data(), n, 1);
    trinv_unblocked(v, n, b.data(), n);
    EXPECT_LT(relative_diff(a.view(), b.view()), 1e-13) << "variant " << v;
  }
}

TEST(TrinvBlocked, WorksWithLeadingDimensionLargerThanN) {
  Rng rng(4);
  const index_t n = 50, ld = 77;
  Matrix l(n, n, ld);
  fill_lower_triangular(l.view(), rng);
  Matrix l0(n, n);
  copy_matrix(l.view(), l0.view());
  ExecContext ctx(backend_instance("blocked"));
  trinv_blocked(ctx, 3, n, l.data(), ld, 16);
  Matrix result(n, n);
  copy_matrix(l.view(), result.view());
  EXPECT_LT(trinv_residual(result, l0), 1e-10);
}

TEST(TrinvFlops, MatchesPaperFormula) {
  // n(n+1)(n+2)/3; the paper's efficiency divides this by 2*2*ticks.
  EXPECT_DOUBLE_EQ(trinv_flops(1), 2.0);
  EXPECT_DOUBLE_EQ(trinv_flops(10), 440.0);
  const double n = 1000.0;
  EXPECT_NEAR(trinv_flops(1000),
              2.0 * (n * n * n / 6 + n * n / 2 + n / 3), 1e-6);
}

// ------------------------------------------------------------- sylv unb

TEST(SylvUnblocked, SolvesSquareSystem) {
  Rng rng(11);
  for (index_t n : {1, 2, 9, 40}) {
    Matrix l(n, n), u(n, n), x(n, n);
    fill_lower_triangular(l.view(), rng);
    fill_upper_triangular(u.view(), rng);
    fill_uniform(x.view(), rng);
    Matrix c(n, n);
    copy_matrix(x.view(), c.view());
    sylv_unblocked(n, n, l.data(), n, u.data(), n, x.data(), n);
    EXPECT_LT(sylv_residual(l, u, x, c), 1e-12) << "n=" << n;
  }
}

TEST(SylvUnblocked, SolvesRectangularSystems) {
  Rng rng(12);
  const struct { index_t m, n; } cases[] = {{5, 13}, {13, 5}, {1, 8}, {8, 1}};
  for (const auto& cs : cases) {
    Matrix l(cs.m, cs.m), u(cs.n, cs.n), x(cs.m, cs.n);
    fill_lower_triangular(l.view(), rng);
    fill_upper_triangular(u.view(), rng);
    fill_uniform(x.view(), rng);
    Matrix c(cs.m, cs.n);
    copy_matrix(x.view(), c.view());
    sylv_unblocked(cs.m, cs.n, l.data(), cs.m, u.data(), cs.n, x.data(),
                   cs.m);
    EXPECT_LT(sylv_residual(l, u, x, c), 1e-12)
        << "m=" << cs.m << " n=" << cs.n;
  }
}

TEST(SylvUnblocked, SingularOperatorThrows) {
  // l_00 + u_00 == 0 makes the Sylvester operator singular.
  Matrix l(1, 1), u(1, 1), x(1, 1);
  l(0, 0) = 1.0;
  u(0, 0) = -1.0;
  x(0, 0) = 1.0;
  EXPECT_THROW(sylv_unblocked(1, 1, l.data(), 1, u.data(), 1, x.data(), 1),
               numerical_error);
}

TEST(SylvUnblocked, EmptyProblemIsNoop) {
  double dummy = 0.0;
  EXPECT_NO_THROW(
      sylv_unblocked(0, 0, &dummy, 1, &dummy, 1, &dummy, 1));
  EXPECT_NO_THROW(
      sylv_unblocked(0, 5, &dummy, 1, &dummy, 5, &dummy, 1));
}

// ----------------------------------------------------------- sylv sched

TEST(SylvSchedule, SixteenDistinctSchedules) {
  // Every variant decodes to a unique (order, push_row, push_col) triple.
  std::set<std::tuple<int, bool, bool>> seen;
  for (int v = 1; v <= kSylvVariantCount; ++v) {
    const SylvSchedule s = sylv_schedule(v);
    seen.insert({static_cast<int>(s.order), s.push_row, s.push_col});
  }
  EXPECT_EQ(seen.size(), 16u);
}

TEST(SylvSchedule, Variant1IsFullyLazyDiagonal) {
  const SylvSchedule s = sylv_schedule(1);
  EXPECT_FALSE(s.push_row);
  EXPECT_FALSE(s.push_col);
  EXPECT_EQ(s.order, SylvSchedule::Order::DiagCol);
}

TEST(SylvSchedule, Variant16IsFullyEagerRowMajor) {
  const SylvSchedule s = sylv_schedule(16);
  EXPECT_TRUE(s.push_row);
  EXPECT_TRUE(s.push_col);
  EXPECT_EQ(s.order, SylvSchedule::Order::RowMajor);
}

TEST(SylvSchedule, RejectsOutOfRangeVariants) {
  EXPECT_THROW(sylv_schedule(0), invalid_argument_error);
  EXPECT_THROW(sylv_schedule(17), invalid_argument_error);
}

// -------------------------------------------------------- sylv blocked

class SylvBlockedTest
    : public ::testing::TestWithParam<std::tuple<int, index_t>> {};

TEST_P(SylvBlockedTest, AllVariantsSolveSquareAndRectangular) {
  const auto [variant, blocksize] = GetParam();
  ExecContext ctx(backend_instance("blocked"));
  Rng rng(variant * 31 + blocksize);
  const struct { index_t m, n; } cases[] = {{48, 48}, {30, 70}, {70, 30}};
  for (const auto& cs : cases) {
    Matrix l(cs.m, cs.m), u(cs.n, cs.n), x(cs.m, cs.n);
    fill_lower_triangular(l.view(), rng);
    fill_upper_triangular(u.view(), rng);
    fill_uniform(x.view(), rng);
    Matrix c(cs.m, cs.n);
    copy_matrix(x.view(), c.view());
    sylv_blocked(ctx, variant, cs.m, cs.n, l.data(), cs.m, u.data(), cs.n,
                 x.data(), cs.m, blocksize);
    EXPECT_LT(sylv_residual(l, u, x, c), 1e-10)
        << "variant " << variant << " b=" << blocksize << " m=" << cs.m
        << " n=" << cs.n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, SylvBlockedTest,
    ::testing::Combine(::testing::Range(1, kSylvVariantCount + 1),
                       ::testing::Values<index_t>(8, 17, 48)));

TEST(SylvBlocked, AllVariantsAgreeWithEachOther) {
  // Mathematical equivalence: every schedule computes the same X.
  Rng rng(55);
  const index_t m = 56, n = 40;
  Matrix l(m, m), u(n, n), c0(m, n);
  fill_lower_triangular(l.view(), rng);
  fill_upper_triangular(u.view(), rng);
  fill_uniform(c0.view(), rng);
  ExecContext ctx(backend_instance("naive"));

  Matrix ref(m, n);
  copy_matrix(c0.view(), ref.view());
  sylv_blocked(ctx, 1, m, n, l.data(), m, u.data(), n, ref.data(), m, 16);

  for (int v = 2; v <= kSylvVariantCount; ++v) {
    Matrix x(m, n);
    copy_matrix(c0.view(), x.view());
    sylv_blocked(ctx, v, m, n, l.data(), m, u.data(), n, x.data(), m, 16);
    EXPECT_LT(relative_diff(x.view(), ref.view()), 1e-10) << "variant " << v;
  }
}

TEST(SylvBlocked, BlocksizeLargerThanProblemFallsBackToUnblocked) {
  Rng rng(8);
  const index_t m = 10, n = 12;
  Matrix l(m, m), u(n, n), x(m, n);
  fill_lower_triangular(l.view(), rng);
  fill_upper_triangular(u.view(), rng);
  fill_uniform(x.view(), rng);
  Matrix c(m, n);
  copy_matrix(x.view(), c.view());
  ExecContext ctx(backend_instance("naive"));
  sylv_blocked(ctx, 5, m, n, l.data(), m, u.data(), n, x.data(), m, 100);
  EXPECT_LT(sylv_residual(l, u, x, c), 1e-12);
}

TEST(SylvFlops, MatchesPaperFormula) {
  // m n (m+n+2); for m=n the paper's efficiency is (n^3+n^2)/(2 ticks)
  // at 4 flops/cycle, i.e. flops = 2(n^3 + n^2).
  EXPECT_DOUBLE_EQ(sylv_flops(10, 10), 2.0 * (1000.0 + 100.0));
  EXPECT_DOUBLE_EQ(sylv_flops(2, 3), 2.0 * 3.0 * 7.0);
}

// ------------------------------------------------------------- chol unb

class CholUnblockedTest : public ::testing::TestWithParam<int> {};

TEST_P(CholUnblockedTest, FactorsAcrossSizes) {
  const int variant = GetParam();
  Rng rng(300 + variant);
  for (index_t n : {1, 2, 3, 8, 17, 64, 129}) {
    Matrix a(n, n, n + 2);
    fill_spd(a.view(), rng);
    Matrix a0(n, n);
    copy_matrix(a.view(), a0.view());
    chol_unblocked(variant, n, a.data(), a.ld());
    Matrix l(n, n);
    copy_matrix(a.view(), l.view());
    EXPECT_LT(chol_residual(l, a0), 1e-12)
        << "variant " << variant << " n=" << n;
  }
}

TEST_P(CholUnblockedTest, ZeroSizeIsNoop) {
  double sentinel = 42.0;
  chol_unblocked(GetParam(), 0, &sentinel, 1);
  EXPECT_EQ(sentinel, 42.0);
}

INSTANTIATE_TEST_SUITE_P(Variants, CholUnblockedTest,
                         ::testing::Values(1, 2, 3));

TEST(CholUnblocked, AllVariantsProduceIdenticalResults) {
  Rng rng(17);
  const index_t n = 40;
  Matrix a0(n, n);
  fill_spd(a0.view(), rng);
  Matrix ref(n, n);
  copy_matrix(a0.view(), ref.view());
  chol_unblocked(1, n, ref.data(), n);
  for (int v = 2; v <= kCholVariantCount; ++v) {
    Matrix a(n, n);
    copy_matrix(a0.view(), a.view());
    chol_unblocked(v, n, a.data(), n);
    EXPECT_LT(relative_diff(a.view(), ref.view()), 1e-12) << "variant " << v;
  }
}

TEST(CholUnblocked, NotPositiveDefiniteThrows) {
  // A diagonal with a non-positive entry cannot be SPD.
  Matrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;
  a(2, 2) = 1.0;
  for (int v = 1; v <= kCholVariantCount; ++v) {
    Matrix c(3, 3);
    copy_matrix(a.view(), c.view());
    EXPECT_THROW(chol_unblocked(v, 3, c.data(), 3), numerical_error)
        << "variant " << v;
  }
}

TEST(CholUnblocked, RejectsBadArguments) {
  double x = 1.0;
  EXPECT_THROW(chol_unblocked(0, 1, &x, 1), invalid_argument_error);
  EXPECT_THROW(chol_unblocked(4, 1, &x, 1), invalid_argument_error);
  EXPECT_THROW(chol_unblocked(1, 4, &x, 2), invalid_argument_error);
}

// ---------------------------------------------------------- chol blocked

class CholBlockedTest
    : public ::testing::TestWithParam<std::tuple<int, index_t, const char*>> {
};

TEST_P(CholBlockedTest, FactorsForAllBlocksizes) {
  const auto [variant, blocksize, bname] = GetParam();
  ExecContext ctx(backend_instance(bname));
  Rng rng(variant * 2000 + blocksize);
  for (index_t n : {1, 13, 96, 150}) {
    Matrix a(n, n);
    fill_spd(a.view(), rng);
    Matrix a0(n, n);
    copy_matrix(a.view(), a0.view());
    chol_blocked(ctx, variant, n, a.data(), n > 0 ? n : 1, blocksize);
    EXPECT_LT(chol_residual(a, a0), 1e-11)
        << "variant " << variant << " b=" << blocksize << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsBlocksizesBackends, CholBlockedTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values<index_t>(1, 7, 32, 96, 200),
                       ::testing::Values("naive", "blocked")));

TEST(CholBlocked, AgreesWithUnblockedAtBlocksizeOne) {
  // Blocked with b = 1 performs the same mathematical steps as unblocked
  // (backend kernels may reorder the arithmetic, so compare to a tight
  // tolerance rather than bit-exactly).
  Rng rng(23);
  const index_t n = 24;
  Matrix a0(n, n);
  fill_spd(a0.view(), rng);
  ExecContext ctx(backend_instance("naive"));
  for (int v = 1; v <= kCholVariantCount; ++v) {
    Matrix a(n, n), b(n, n);
    copy_matrix(a0.view(), a.view());
    copy_matrix(a0.view(), b.view());
    chol_blocked(ctx, v, n, a.data(), n, 1);
    chol_unblocked(v, n, b.data(), n);
    EXPECT_LT(relative_diff(a.view(), b.view()), 1e-13) << "variant " << v;
  }
}

TEST(CholBlocked, WorksWithLeadingDimensionLargerThanN) {
  Rng rng(24);
  const index_t n = 50, ld = 77;
  Matrix a(n, n, ld);
  fill_spd(a.view(), rng);
  Matrix a0(n, n);
  copy_matrix(a.view(), a0.view());
  ExecContext ctx(backend_instance("blocked"));
  chol_blocked(ctx, 2, n, a.data(), ld, 16);
  Matrix result(n, n);
  copy_matrix(a.view(), result.view());
  EXPECT_LT(chol_residual(result, a0), 1e-11);
}

TEST(CholFlops, MatchesClosedForm) {
  // n(n+1)(2n+1)/6 = n^3/3 + n^2/2 + n/6 (mult + add counted separately).
  EXPECT_DOUBLE_EQ(chol_flops(1), 1.0);
  EXPECT_DOUBLE_EQ(chol_flops(10), 385.0);
  const double n = 1000.0;
  EXPECT_NEAR(chol_flops(1000), n * n * n / 3 + n * n / 2 + n / 6, 1e-6);
}

}  // namespace
}  // namespace dlap
