// Level-3 BLAS backend tests: every backend (naive, blocked, packed, and a
// threaded decorator) is verified against independent dense oracles built
// in this file, across all flag combinations, odd sizes, and leading
// dimensions; plus quick-return and failure-injection cases.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "blas/registry.hpp"
#include "common/matrix.hpp"
#include "common/matrix_util.hpp"
#include "common/rng.hpp"

namespace dlap {
namespace {

// Dense oracle helpers ------------------------------------------------

// Materializes op(T) of a triangular matrix (honoring diag) as dense.
Matrix expand_triangular(const Matrix& a, Uplo uplo, Trans trans, Diag diag) {
  const index_t n = a.rows();
  Matrix full(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      const bool stored = (uplo == Uplo::Lower) ? (i >= j) : (i <= j);
      double v = stored ? a(i, j) : 0.0;
      if (i == j && diag == Diag::Unit) v = 1.0;
      full(i, j) = v;
    }
  }
  if (trans == Trans::NoTrans) return full;
  Matrix t(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) t(i, j) = full(j, i);
  return t;
}

// C = alpha * A * B + beta * C with dense A (rows x inner), B (inner x cols).
void dense_gemm(double alpha, const Matrix& a, const Matrix& b, double beta,
                Matrix& c) {
  for (index_t j = 0; j < c.cols(); ++j) {
    for (index_t i = 0; i < c.rows(); ++i) {
      double s = 0.0;
      for (index_t l = 0; l < a.cols(); ++l) s += a(i, l) * b(l, j);
      c(i, j) = alpha * s + beta * c(i, j);
    }
  }
}

Matrix materialize_op(const Matrix& x, Trans trans) {
  if (trans == Trans::NoTrans) {
    Matrix out(x.rows(), x.cols());
    copy_matrix(x.view(), out.view());
    return out;
  }
  Matrix out(x.cols(), x.rows());
  for (index_t j = 0; j < out.cols(); ++j)
    for (index_t i = 0; i < out.rows(); ++i) out(i, j) = x(j, i);
  return out;
}

Level3Backend& backend(const std::string& name) {
  return backend_instance(name);
}

const char* kBackends[] = {"naive", "blocked", "packed", "blocked@4"};

// ------------------------------------------------------------------ gemm

class GemmTest : public ::testing::TestWithParam<
                     std::tuple<const char*, Trans, Trans>> {};

TEST_P(GemmTest, MatchesDenseOracleOnOddSizes) {
  const auto [bname, ta, tb] = GetParam();
  Rng rng(17);
  const struct { index_t m, n, k; } cases[] = {
      {5, 7, 3}, {97, 65, 33}, {1, 19, 8}, {64, 1, 16}, {33, 29, 1}};
  for (const auto& cs : cases) {
    const index_t am = (ta == Trans::NoTrans) ? cs.m : cs.k;
    const index_t an = (ta == Trans::NoTrans) ? cs.k : cs.m;
    const index_t bm = (tb == Trans::NoTrans) ? cs.k : cs.n;
    const index_t bn = (tb == Trans::NoTrans) ? cs.n : cs.k;
    Matrix a(am, an, am + 3), b(bm, bn, bm + 1), c(cs.m, cs.n, cs.m + 2);
    fill_uniform(a.view(), rng);
    fill_uniform(b.view(), rng);
    fill_uniform(c.view(), rng);

    Matrix expected(cs.m, cs.n);
    copy_matrix(c.view(), expected.view());
    const Matrix opa = materialize_op(a, ta);
    const Matrix opb = materialize_op(b, tb);
    dense_gemm(0.7, opa, opb, -1.3, expected);

    backend(bname).gemm(ta, tb, cs.m, cs.n, cs.k, 0.7, a.data(), a.ld(),
                        b.data(), b.ld(), -1.3, c.data(), c.ld());
    EXPECT_LT(relative_diff(c.view(), expected.view()), 1e-12)
        << bname << " m=" << cs.m << " n=" << cs.n << " k=" << cs.k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsAndTrans, GemmTest,
    ::testing::Combine(::testing::ValuesIn(kBackends),
                       ::testing::Values(Trans::NoTrans, Trans::Transpose),
                       ::testing::Values(Trans::NoTrans, Trans::Transpose)));

class GemmEdgeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GemmEdgeTest, QuickReturnsAndScaling) {
  Rng rng(5);
  Matrix a(8, 8), b(8, 8), c(8, 8);
  fill_uniform(a.view(), rng);
  fill_uniform(b.view(), rng);
  fill_uniform(c.view(), rng);
  Matrix c0(8, 8);
  copy_matrix(c.view(), c0.view());
  Level3Backend& bk = backend(GetParam());

  // m == 0 / n == 0: C untouched.
  bk.gemm(Trans::NoTrans, Trans::NoTrans, 0, 8, 8, 1.0, a.data(), 8, b.data(),
          8, 0.0, c.data(), 8);
  bk.gemm(Trans::NoTrans, Trans::NoTrans, 8, 0, 8, 1.0, a.data(), 8, b.data(),
          8, 0.0, c.data(), 8);
  EXPECT_EQ(relative_diff(c.view(), c0.view()), 0.0);

  // k == 0 with beta: pure scaling.
  bk.gemm(Trans::NoTrans, Trans::NoTrans, 8, 8, 0, 1.0, a.data(), 8, b.data(),
          8, 2.0, c.data(), 8);
  for (index_t j = 0; j < 8; ++j)
    for (index_t i = 0; i < 8; ++i)
      EXPECT_DOUBLE_EQ(c(i, j), 2.0 * c0(i, j));

  // alpha == 0, beta == 0: exact zeroing even with NaN-free guarantee.
  bk.gemm(Trans::NoTrans, Trans::NoTrans, 8, 8, 8, 0.0, a.data(), 8, b.data(),
          8, 0.0, c.data(), 8);
  EXPECT_EQ(max_abs(c.view()), 0.0);
}

TEST_P(GemmEdgeTest, RejectsBadLeadingDimensions) {
  Matrix a(8, 8), b(8, 8), c(8, 8);
  EXPECT_THROW(backend(GetParam()).gemm(Trans::NoTrans, Trans::NoTrans, 8, 8,
                                        8, 1.0, a.data(), 4, b.data(), 8, 0.0,
                                        c.data(), 8),
               invalid_argument_error);
  EXPECT_THROW(backend(GetParam()).gemm(Trans::NoTrans, Trans::NoTrans, -1, 8,
                                        8, 1.0, a.data(), 8, b.data(), 8, 0.0,
                                        c.data(), 8),
               invalid_argument_error);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, GemmEdgeTest,
                         ::testing::ValuesIn(kBackends));

// ------------------------------------------------------------------ trsm

class TrsmTest : public ::testing::TestWithParam<
                     std::tuple<const char*, Side, Uplo, Trans, Diag>> {};

TEST_P(TrsmTest, ResidualOfSolvedSystemIsTiny) {
  const auto [bname, side, uplo, trans, diag] = GetParam();
  Rng rng(23);
  const struct { index_t m, n; } cases[] = {{37, 21}, {96, 100}, {1, 5}};
  for (const auto& cs : cases) {
    const index_t asz = (side == Side::Left) ? cs.m : cs.n;
    Matrix a(asz, asz, asz + 2);
    if (uplo == Uplo::Lower) {
      fill_lower_triangular(a.view(), rng);
    } else {
      fill_upper_triangular(a.view(), rng);
    }
    Matrix b(cs.m, cs.n, cs.m + 1);
    fill_uniform(b.view(), rng);
    Matrix b0(cs.m, cs.n);
    copy_matrix(b.view(), b0.view());

    const double alpha = 0.37;
    backend(bname).trsm(side, uplo, trans, diag, cs.m, cs.n, alpha, a.data(),
                        a.ld(), b.data(), b.ld());

    // Verify op(A) * X == alpha * B0 (left) or X * op(A) == alpha * B0.
    const Matrix opa = expand_triangular(a, uplo, trans, diag);
    Matrix lhs(cs.m, cs.n);
    if (side == Side::Left) {
      Matrix x(cs.m, cs.n);
      copy_matrix(b.view(), x.view());
      dense_gemm(1.0, opa, x, 0.0, lhs);
    } else {
      Matrix x(cs.m, cs.n);
      copy_matrix(b.view(), x.view());
      dense_gemm(1.0, x, opa, 0.0, lhs);
    }
    Matrix rhs(cs.m, cs.n);
    copy_matrix(b0.view(), rhs.view());
    for (index_t j = 0; j < cs.n; ++j)
      for (index_t i = 0; i < cs.m; ++i) rhs(i, j) *= alpha;
    EXPECT_LT(relative_diff(lhs.view(), rhs.view()), 1e-10)
        << bname << " m=" << cs.m << " n=" << cs.n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsAndFlags, TrsmTest,
    ::testing::Combine(::testing::ValuesIn(kBackends),
                       ::testing::Values(Side::Left, Side::Right),
                       ::testing::Values(Uplo::Lower, Uplo::Upper),
                       ::testing::Values(Trans::NoTrans, Trans::Transpose),
                       ::testing::Values(Diag::NonUnit, Diag::Unit)));

TEST(TrsmFailure, SingularMatrixThrowsOnEveryBackend) {
  for (const char* bname : kBackends) {
    Matrix a(4, 4);
    a(0, 0) = 1.0;
    a(1, 1) = 1.0;
    a(2, 2) = 0.0;  // singular
    a(3, 3) = 1.0;
    Matrix b(4, 3);
    Rng rng(1);
    fill_uniform(b.view(), rng);
    EXPECT_THROW(backend(bname).trsm(Side::Left, Uplo::Lower, Trans::NoTrans,
                                     Diag::NonUnit, 4, 3, 1.0, a.data(), 4,
                                     b.data(), 4),
                 numerical_error)
        << bname;
  }
}

// ------------------------------------------------------------------ trmm

class TrmmTest : public ::testing::TestWithParam<
                     std::tuple<const char*, Side, Uplo, Trans, Diag>> {};

TEST_P(TrmmTest, MatchesDenseOracle) {
  const auto [bname, side, uplo, trans, diag] = GetParam();
  Rng rng(31);
  const struct { index_t m, n; } cases[] = {{41, 27}, {100, 96}, {3, 1}};
  for (const auto& cs : cases) {
    const index_t asz = (side == Side::Left) ? cs.m : cs.n;
    Matrix a(asz, asz, asz + 1);
    if (uplo == Uplo::Lower) {
      fill_lower_triangular(a.view(), rng);
    } else {
      fill_upper_triangular(a.view(), rng);
    }
    Matrix b(cs.m, cs.n, cs.m + 4);
    fill_uniform(b.view(), rng);

    const double alpha = -1.5;
    const Matrix opa = expand_triangular(a, uplo, trans, diag);
    Matrix expected(cs.m, cs.n);
    {
      Matrix bb(cs.m, cs.n);
      copy_matrix(b.view(), bb.view());
      if (side == Side::Left) {
        dense_gemm(alpha, opa, bb, 0.0, expected);
      } else {
        dense_gemm(alpha, bb, opa, 0.0, expected);
      }
    }

    backend(bname).trmm(side, uplo, trans, diag, cs.m, cs.n, alpha, a.data(),
                        a.ld(), b.data(), b.ld());
    EXPECT_LT(relative_diff(b.view(), expected.view()), 1e-12)
        << bname << " m=" << cs.m << " n=" << cs.n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsAndFlags, TrmmTest,
    ::testing::Combine(::testing::ValuesIn(kBackends),
                       ::testing::Values(Side::Left, Side::Right),
                       ::testing::Values(Uplo::Lower, Uplo::Upper),
                       ::testing::Values(Trans::NoTrans, Trans::Transpose),
                       ::testing::Values(Diag::NonUnit, Diag::Unit)));

// ------------------------------------------------------------ syrk/symm

class SyrkTest : public ::testing::TestWithParam<
                     std::tuple<const char*, Uplo, Trans>> {};

TEST_P(SyrkTest, MatchesOracleAndPreservesOtherTriangle) {
  const auto [bname, uplo, trans] = GetParam();
  Rng rng(7);
  const index_t n = 67, k = 43;
  Matrix a((trans == Trans::NoTrans) ? n : k,
           (trans == Trans::NoTrans) ? k : n);
  fill_uniform(a.view(), rng);
  Matrix c(n, n);
  fill_uniform(c.view(), rng);
  Matrix c0(n, n);
  copy_matrix(c.view(), c0.view());

  const Matrix opa = materialize_op(a, trans);
  Matrix full(n, n);
  copy_matrix(c.view(), full.view());
  // full = 0.9 * opa * opa^T + 0.4 * c0 (dense, both triangles).
  Matrix opat = materialize_op(opa, Trans::Transpose);
  dense_gemm(0.9, opa, opat, 0.4, full);

  backend(bname).syrk(uplo, trans, n, k, 0.9, a.data(), a.ld(), 0.4, c.data(),
                      c.ld());
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      const bool in_triangle = (uplo == Uplo::Lower) ? (i >= j) : (i <= j);
      const double want = in_triangle ? full(i, j) : c0(i, j);
      EXPECT_NEAR(c(i, j), want, 1e-10 * k)
          << bname << " (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsAndFlags, SyrkTest,
    ::testing::Combine(::testing::ValuesIn(kBackends),
                       ::testing::Values(Uplo::Lower, Uplo::Upper),
                       ::testing::Values(Trans::NoTrans, Trans::Transpose)));

class SymmTest : public ::testing::TestWithParam<
                     std::tuple<const char*, Side, Uplo>> {};

TEST_P(SymmTest, MatchesOracleReadingOnlyStoredTriangle) {
  const auto [bname, side, uplo] = GetParam();
  Rng rng(13);
  const index_t m = 53, n = 38;
  const index_t asz = (side == Side::Left) ? m : n;

  // Build symmetric values, then poison the unstored triangle.
  Matrix a(asz, asz);
  fill_uniform(a.view(), rng);
  for (index_t j = 0; j < asz; ++j)
    for (index_t i = 0; i < j; ++i) a(i, j) = a(j, i);
  Matrix sym(asz, asz);
  copy_matrix(a.view(), sym.view());
  for (index_t j = 0; j < asz; ++j) {
    for (index_t i = 0; i < asz; ++i) {
      const bool stored = (uplo == Uplo::Lower) ? (i >= j) : (i <= j);
      if (!stored) a(i, j) = 1e30;  // must never be read
    }
  }

  Matrix b(m, n), c(m, n);
  fill_uniform(b.view(), rng);
  fill_uniform(c.view(), rng);
  Matrix expected(m, n);
  copy_matrix(c.view(), expected.view());
  if (side == Side::Left) {
    dense_gemm(1.1, sym, b, 0.5, expected);
  } else {
    dense_gemm(1.1, b, sym, 0.5, expected);
  }

  backend(bname).symm(side, uplo, m, n, 1.1, a.data(), a.ld(), b.data(),
                      b.ld(), 0.5, c.data(), c.ld());
  EXPECT_LT(relative_diff(c.view(), expected.view()), 1e-10) << bname;
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsAndFlags, SymmTest,
    ::testing::Combine(::testing::ValuesIn(kBackends),
                       ::testing::Values(Side::Left, Side::Right),
                       ::testing::Values(Uplo::Lower, Uplo::Upper)));

class Syr2kTest : public ::testing::TestWithParam<
                      std::tuple<const char*, Uplo, Trans>> {};

TEST_P(Syr2kTest, MatchesOracle) {
  const auto [bname, uplo, trans] = GetParam();
  Rng rng(29);
  const index_t n = 49, k = 21;
  const index_t rows = (trans == Trans::NoTrans) ? n : k;
  const index_t cols = (trans == Trans::NoTrans) ? k : n;
  Matrix a(rows, cols), b(rows, cols), c(n, n);
  fill_uniform(a.view(), rng);
  fill_uniform(b.view(), rng);
  fill_uniform(c.view(), rng);
  Matrix c0(n, n);
  copy_matrix(c.view(), c0.view());

  const Matrix opa = materialize_op(a, trans);
  const Matrix opb = materialize_op(b, trans);
  Matrix full(n, n);
  copy_matrix(c0.view(), full.view());
  Matrix opbt = materialize_op(opb, Trans::Transpose);
  Matrix opat = materialize_op(opa, Trans::Transpose);
  dense_gemm(0.6, opa, opbt, 0.2, full);
  dense_gemm(0.6, opb, opat, 1.0, full);

  backend(bname).syr2k(uplo, trans, n, k, 0.6, a.data(), a.ld(), b.data(),
                       b.ld(), 0.2, c.data(), c.ld());
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      const bool in_triangle = (uplo == Uplo::Lower) ? (i >= j) : (i <= j);
      const double want = in_triangle ? full(i, j) : c0(i, j);
      EXPECT_NEAR(c(i, j), want, 1e-10 * k) << bname;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsAndFlags, Syr2kTest,
    ::testing::Combine(::testing::ValuesIn(kBackends),
                       ::testing::Values(Uplo::Lower, Uplo::Upper),
                       ::testing::Values(Trans::NoTrans, Trans::Transpose)));

// --------------------------------------------------------------- registry

TEST(Registry, KnownBackendsResolve) {
  for (const std::string& name : builtin_backend_names()) {
    EXPECT_EQ(make_backend(name)->name(), name);
  }
}

TEST(Registry, ThreadedSpecParsing) {
  auto bk = make_backend("blocked@3");
  EXPECT_EQ(bk->name(), "blocked@3");
  EXPECT_EQ(bk->threads(), 3);
}

TEST(Registry, UnknownBackendThrows) {
  EXPECT_THROW(make_backend("mkl"), lookup_error);
  EXPECT_THROW(make_backend("blocked@x"), parse_error);
  EXPECT_THROW(make_backend("blocked@0"), invalid_argument_error);
}

TEST(Registry, InstanceCacheReturnsSameObject) {
  Level3Backend& a = backend_instance("naive");
  Level3Backend& b = backend_instance("naive");
  EXPECT_EQ(&a, &b);
}

// Property: trmm followed by trsm with identical operands restores B
// (checks the two routines agree on semantics within each backend).
class TrxmRoundTrip
    : public ::testing::TestWithParam<std::tuple<const char*, Side, Uplo>> {};

TEST_P(TrxmRoundTrip, TrsmUndoesTrmm) {
  const auto [bname, side, uplo] = GetParam();
  Rng rng(41);
  const index_t m = 60, n = 45;
  const index_t asz = (side == Side::Left) ? m : n;
  Matrix a(asz, asz);
  if (uplo == Uplo::Lower) {
    fill_lower_triangular(a.view(), rng);
  } else {
    fill_upper_triangular(a.view(), rng);
  }
  Matrix b(m, n);
  fill_uniform(b.view(), rng);
  Matrix b0(m, n);
  copy_matrix(b.view(), b0.view());

  Level3Backend& bk = backend(bname);
  bk.trmm(side, uplo, Trans::NoTrans, Diag::NonUnit, m, n, 2.0, a.data(), asz,
          b.data(), m);
  bk.trsm(side, uplo, Trans::NoTrans, Diag::NonUnit, m, n, 0.5, a.data(), asz,
          b.data(), m);
  EXPECT_LT(relative_diff(b.view(), b0.view()), 1e-10) << bname;
}

INSTANTIATE_TEST_SUITE_P(
    Backends, TrxmRoundTrip,
    ::testing::Combine(::testing::ValuesIn(kBackends),
                       ::testing::Values(Side::Left, Side::Right),
                       ::testing::Values(Uplo::Lower, Uplo::Upper)));

}  // namespace
}  // namespace dlap
