// Integration tests across modules.
//
// 1. A deterministic "virtual machine": per-routine analytic cost
//    functions play the role of the hardware. Models are generated from
//    them through the real Modeler strategies, predictions run through the
//    real Predictor, and the resulting variant ranking must equal the
//    ranking computed by summing the same cost function over the traces
//    (ground truth). This exercises the entire pipeline end to end with
//    zero measurement noise.
// 2. A real-measurement smoke test: tiny models are generated from actual
//    timings on the naive backend; predictions must be positive, increase
//    with problem size, and round-trip through the on-disk repository.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <map>

#include "algorithms/chol.hpp"
#include "algorithms/sylv.hpp"
#include "algorithms/trinv.hpp"
#include "api/engine.hpp"
#include "blas/registry.hpp"
#include "common/matrix_util.hpp"
#include "common/rng.hpp"
#include "modeler/modeler.hpp"
#include "sampler/ticks.hpp"
#include "modeler/repository.hpp"
#include "modeler/strategies.hpp"
#include "predict/predictor.hpp"
#include "predict/ranking.hpp"
#include "predict/trace.hpp"

namespace dlap {
namespace {

// ------------------------------------------------- virtual-machine costs

// Analytic cost of a call on the fictitious machine: proportional to
// flops, with a fixed per-call overhead and a penalty for skinny shapes
// (k small), which is what separates push- from pull-style schedules.
double vm_cost(const KernelCall& c) {
  const double flops = call_flops(c);
  double shape_penalty = 1.0;
  if (c.routine == RoutineId::Gemm) {
    const double k = static_cast<double>(c.sizes[2]);
    shape_penalty = 1.0 + 24.0 / std::max(1.0, k);
  }
  // Per-kernel speed factors (like a real library: trmm slower than gemm,
  // right-side trsm slower than left; unblocked kernels at scalar speed).
  double speed = 1.0;
  switch (c.routine) {
    case RoutineId::Trmm:
      speed = 1.2;
      break;
    case RoutineId::Trsm:
      speed = (c.flags[0] == 'R') ? 1.35 : 1.05;
      break;
    case RoutineId::Trinv1Unb:
    case RoutineId::Trinv2Unb:
    case RoutineId::Trinv3Unb:
    case RoutineId::Trinv4Unb:
    case RoutineId::SylvUnb:
    case RoutineId::Chol1Unb:
    case RoutineId::Chol2Unb:
    case RoutineId::Chol3Unb:
      speed = 8.0;
      break;
    default:
      break;
  }
  return 4000.0 + flops * shape_penalty * speed * 0.25;
}

// Ground truth: total cost of a trace on the virtual machine.
double vm_trace_cost(const CallTrace& t) {
  double total = 0.0;
  for (const KernelCall& c : t) {
    bool empty = false;
    for (index_t s : c.sizes) empty = empty || (s == 0);
    if (!empty) total += vm_cost(c);
  }
  return total;
}

// MeasureFn for one call family: plugs the parameter point into the
// template call and returns the analytic cost as all statistics.
MeasureFn vm_measure(const ModelingRequest& req) {
  return [req](const std::vector<index_t>& point) {
    const KernelCall call = make_call(req, point);
    SampleStats s;
    const double v = vm_cost(call);
    s.min = s.median = s.mean = s.max = v;
    s.count = 1;
    return s;
  };
}

ModelingRequest request_for(RoutineId routine, std::vector<char> flags,
                            Region domain) {
  ModelingRequest req;
  req.routine = routine;
  req.flags = std::move(flags);
  req.domain = std::move(domain);
  req.fixed_ld = 2500;
  return req;
}

// Generates a refinement model for a request against the virtual machine.
RoutineModel vm_model(const ModelingRequest& req) {
  RefinementConfig cfg;
  cfg.base.error_bound = 0.05;
  cfg.base.degree = 3;
  cfg.min_region_size = 32;
  GenerationResult gen =
      generate_adaptive_refinement(req.domain, vm_measure(req), cfg);
  RoutineModel m;
  m.key = {routine_name(req.routine), "vm", Locality::InCache,
           std::string(req.flags.begin(), req.flags.end())};
  m.model = std::move(gen.model);
  m.unique_samples = gen.unique_samples;
  m.average_error = gen.average_error;
  m.strategy = "refinement";
  return m;
}

ModelSet vm_trinv_models(index_t hi) {
  const Region d1({8}, {hi});
  const Region d2({8, 8}, {hi, hi});
  const Region d3({8, 8, 8}, {hi, hi, hi});
  ModelSet set;
  set.add(vm_model(request_for(RoutineId::Trmm, {'R', 'L', 'N', 'N'}, d2)));
  set.add(vm_model(request_for(RoutineId::Trsm, {'L', 'L', 'N', 'N'}, d2)));
  set.add(vm_model(request_for(RoutineId::Trsm, {'R', 'L', 'N', 'N'}, d2)));
  set.add(vm_model(request_for(RoutineId::Gemm, {'N', 'N'}, d3)));
  set.add(vm_model(request_for(RoutineId::Trinv1Unb, {}, d1)));
  set.add(vm_model(request_for(RoutineId::Trinv2Unb, {}, d1)));
  set.add(vm_model(request_for(RoutineId::Trinv3Unb, {}, d1)));
  set.add(vm_model(request_for(RoutineId::Trinv4Unb, {}, d1)));
  return set;
}

TEST(IntegrationVM, TrinvRankingRecoveredExactly) {
  const index_t n = 480;
  const index_t b = 96;
  const ModelSet models = vm_trinv_models(512);
  const Predictor pred(models);

  std::vector<double> predicted, truth;
  for (int v = 1; v <= 4; ++v) {
    const CallTrace t = trace_trinv(v, n, b);
    predicted.push_back(pred.predict(t).ticks.median);
    truth.push_back(vm_trace_cost(t));
  }
  // The pipeline must (a) predict each variant's cost within a few
  // percent on a noise-free machine, and (b) rank all variants exactly.
  for (int v = 0; v < 4; ++v) {
    EXPECT_NEAR(predicted[v] / truth[v], 1.0, 0.08) << "variant " << v + 1;
  }
  EXPECT_EQ(rank_order(predicted), rank_order(truth));
  EXPECT_DOUBLE_EQ(kendall_tau(predicted, truth), 1.0);
}

TEST(IntegrationVM, TrinvBlocksizeOptimumRecovered) {
  const ModelSet models = vm_trinv_models(512);
  const Predictor pred(models);
  // Sweep block sizes for variant 3 at n = 384; predicted optimum must
  // match the ground-truth optimum.
  std::vector<double> predicted, truth;
  std::vector<index_t> bsizes;
  for (index_t b = 16; b <= 192; b += 16) {
    const CallTrace t = trace_trinv(3, 384, b);
    bsizes.push_back(b);
    predicted.push_back(pred.predict(t).ticks.median);
    truth.push_back(vm_trace_cost(t));
  }
  const auto popt = rank_order(predicted)[0];
  const auto topt = rank_order(truth)[0];
  EXPECT_EQ(bsizes[popt], bsizes[topt]);
}

TEST(IntegrationVM, SylvGroupsSeparatedAndTopVariantsRanked) {
  // Models for gemm and the unblocked Sylvester solve.
  ModelSet set;
  set.add(vm_model(request_for(RoutineId::Gemm, {'N', 'N'},
                               Region({8, 8, 8}, {512, 512, 512}))));
  set.add(vm_model(
      request_for(RoutineId::SylvUnb, {}, Region({8, 8}, {256, 256}))));
  const Predictor pred(set);

  std::vector<double> predicted, truth;
  for (int v = 1; v <= kSylvVariantCount; ++v) {
    const CallTrace t = trace_sylv(v, 384, 384, 96);
    predicted.push_back(pred.predict(t).ticks.median);
    truth.push_back(vm_trace_cost(t));
  }
  // On the virtual machine the pull/pull schedules (k-rich gemms) are the
  // fastest. Traversal order does not change a schedule's call multiset
  // and m == n makes the two mixed policies symmetric, so the 16 variants
  // collapse into 3 exactly-tied cost groups (Kendall tau-a is then capped
  // at 2/3 by construction); assert per-variant accuracy and group
  // structure instead.
  for (int v = 0; v < kSylvVariantCount; ++v) {
    EXPECT_NEAR(predicted[v] / truth[v], 1.0, 0.02) << "variant " << v + 1;
  }
  EXPECT_DOUBLE_EQ(topk_overlap(predicted, truth, 4), 1.0);
  // The four pull/pull variants are v in {1, 5, 9, 13} (low bits zero).
  const auto top_truth = rank_order(truth);
  for (index_t i = 0; i < 4; ++i) {
    EXPECT_EQ(top_truth[i] % 4, 0) << "truth top-4 not pull/pull";
  }
  // Fast group strictly separated from the rest, in truth and prediction.
  const auto sep = [](const std::vector<double>& vals) {
    auto order = rank_order(vals);
    return vals[order[4]] / vals[order[3]];
  };
  EXPECT_GT(sep(truth), 1.005);
  EXPECT_GT(sep(predicted), 1.005);
}

TEST(IntegrationVM, CholRankingRecoveredExactly) {
  // Same end-to-end pipeline as the trinv test, for the third operation
  // family: models for every kernel the three Cholesky variants invoke,
  // fitted against the virtual machine; the predicted ranking must match
  // the ground-truth ranking of the traces' analytic costs.
  const index_t n = 480;
  const index_t b = 96;
  const Region d1({8}, {512});
  const Region d2({8, 8}, {512, 512});
  const Region d3({8, 8, 8}, {512, 512, 512});
  ModelSet set;
  set.add(vm_model(request_for(RoutineId::Trsm, {'R', 'L', 'T', 'N'}, d2)));
  set.add(vm_model(request_for(RoutineId::Syrk, {'L', 'N'}, d2)));
  set.add(vm_model(request_for(RoutineId::Gemm, {'N', 'T'}, d3)));
  set.add(vm_model(request_for(RoutineId::Chol1Unb, {}, d1)));
  set.add(vm_model(request_for(RoutineId::Chol2Unb, {}, d1)));
  set.add(vm_model(request_for(RoutineId::Chol3Unb, {}, d1)));
  const Predictor pred(set);

  std::vector<double> predicted, truth;
  for (int v = 1; v <= kCholVariantCount; ++v) {
    const CallTrace t = trace_chol(v, n, b);
    predicted.push_back(pred.predict(t).ticks.median);
    truth.push_back(vm_trace_cost(t));
  }
  for (int v = 0; v < kCholVariantCount; ++v) {
    EXPECT_NEAR(predicted[v] / truth[v], 1.0, 0.08) << "variant " << v + 1;
  }
  EXPECT_EQ(rank_order(predicted), rank_order(truth));
}

// --------------------------------------------------- real-sampler smoke

TEST(IntegrationReal, ModelPredictStoreReloadRoundTrip) {
  Modeler modeler(backend_instance("naive"));

  ModelingRequest req;
  req.routine = RoutineId::Trsm;
  req.flags = {'L', 'L', 'N', 'N'};
  req.domain = Region({8, 8}, {96, 96});
  req.fixed_ld = 128;
  // 3 reps: the median of 2 noisy timings occasionally lets a cubic fit
  // dip below zero off-lattice under parallel-ctest load.
  req.sampler.reps = 3;
  req.sampler.locality = Locality::InCache;

  RefinementConfig cfg;
  cfg.base.error_bound = 0.50;  // loose: this is a smoke test
  cfg.base.degree = 3;
  cfg.min_region_size = 32;
  const RoutineModel model = modeler.build_refinement(req, cfg);
  EXPECT_GT(model.unique_samples, 0);
  EXPECT_EQ(model.key.routine, "dtrsm");
  EXPECT_EQ(model.key.backend, "naive");

  // Bigger problems must predict more ticks.
  const double small = model.model.evaluate(std::vector<index_t>{16, 16}).median;
  const double large = model.model.evaluate(std::vector<index_t>{96, 96}).median;
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);

  // Round-trip through the repository preserves predictions bit-exactly.
  const auto dir = std::filesystem::temp_directory_path() /
                   "dlaperf_integration_repo";
  std::filesystem::remove_all(dir);
  ModelRepository repo(dir);
  repo.store(model);
  const RoutineModel back = repo.load(model.key);
  for (index_t x = 8; x <= 96; x += 8) {
    const std::vector<index_t> p{x, x};
    EXPECT_DOUBLE_EQ(back.model.evaluate(p).median,
                     model.model.evaluate(p).median);
  }
  std::filesystem::remove_all(dir);
}

TEST(IntegrationReal, ModelerBatchGeneratesInRequestOrder) {
  Modeler modeler(backend_instance("naive"));

  ModelingRequest trsm;
  trsm.routine = RoutineId::Trsm;
  trsm.flags = {'L', 'L', 'N', 'N'};
  trsm.domain = Region({8, 8}, {48, 48});
  trsm.fixed_ld = 64;
  trsm.sampler.reps = 2;
  ModelingRequest trmm = trsm;
  trmm.routine = RoutineId::Trmm;
  trmm.flags = {'R', 'L', 'N', 'N'};

  RefinementConfig cfg;
  cfg.base.error_bound = 0.50;  // loose: this is a smoke test
  cfg.min_region_size = 32;
  const std::vector<RoutineModel> models =
      modeler.build_batch({trsm, trmm}, cfg);
  ASSERT_EQ(models.size(), 2u);
  EXPECT_EQ(models[0].key.routine, "dtrsm");
  EXPECT_EQ(models[1].key.routine, "dtrmm");
  for (const RoutineModel& m : models) {
    EXPECT_EQ(m.key.backend, "naive");
    EXPECT_EQ(m.strategy, "refinement");
    EXPECT_GT(m.unique_samples, 0);
    EXPECT_GT(m.model.evaluate(std::vector<index_t>{32, 32}).median, 0.0);
  }
}

// Best-of-reps ticks of really executing chol variant `variant` on
// `backend` (fresh SPD operand per repetition, one untimed warm-up).
// Minimum, not median: the measured side must rank variants that sit
// within ~10-25% of each other on machines where concurrent test
// processes preempt runs, and the min is the statistic least distorted
// by preemption outliers.
double measure_chol_ticks(Level3Backend& backend, int variant, index_t n,
                          index_t b, index_t reps) {
  ExecContext ctx(backend);
  Rng rng(91 + variant);
  Matrix a0(n, n);
  fill_spd(a0.view(), rng);
  Matrix work(n, n);
  copy_matrix(a0.view(), work.view());
  chol_blocked(ctx, variant, n, work.data(), n, b);  // warm-up
  double best = 0.0;
  for (index_t r = 0; r < reps; ++r) {
    copy_matrix(a0.view(), work.view());
    const std::uint64_t t0 = read_ticks();
    chol_blocked(ctx, variant, n, work.data(), n, b);
    const std::uint64_t t1 = read_ticks();
    const double t = static_cast<double>(t1 - t0);
    if (r == 0 || t < best) best = t;
  }
  return best;
}

TEST(IntegrationReal, CholPredictedBestMatchesMeasuredBestUsually) {
  // The PR 3 acceptance gate: RankQuery over the three Cholesky variants,
  // with models generated from real measurements, must name the variant
  // that real execution finds fastest at >= 2 of 3 problem sizes (exact
  // agreement at every size would over-promise: within-noise ties between
  // close variants are legitimate).
  const auto dir =
      std::filesystem::temp_directory_path() / "dlaperf_integration_chol";
  std::filesystem::remove_all(dir);
  EngineConfig cfg;
  cfg.service.repository_dir = dir;
  // Sequential generation + extra repetitions: generation-time
  // measurement noise (contended cores, outliers) directly blurs the
  // fitted models, and the three variants are within ~10% of each other.
  cfg.service.workers = 1;
  cfg.planning.reps = 7;
  Engine engine(cfg);
  Level3Backend& backend = backend_instance(cfg.system.backend);

  const index_t b = 32;
  const std::vector<index_t> sizes = {128, 192, 256};

  // One protocol attempt: generate models, rank each size, count how
  // often the predicted-best variant is the measured-best.
  const auto attempt = [&](Engine& eng) {
    EXPECT_TRUE(
        eng.prepare(RankQuery::chol_variants(sizes.back(), b).candidates)
            .ok());
    int matches = 0;
    for (const index_t n : sizes) {
      const Result<Ranking> ranked = eng.rank(RankQuery::chol_variants(n, b));
      EXPECT_TRUE(ranked.ok()) << ranked.status().to_string();
      if (!ranked.ok()) return 0;
      std::vector<double> measured;
      for (int v = 1; v <= kCholVariantCount; ++v) {
        measured.push_back(measure_chol_ticks(backend, v, n, b, 5));
      }
      matches += ranked->best() == rank_order(measured)[0];
    }
    return matches;
  };

  int matches = attempt(engine);
  for (int retry = 0; retry < 2 && matches < 2; ++retry) {
    // A loaded machine (concurrent tests, CI neighbors) can blur one
    // generation pass end to end; a fresh-model repeat separates "the
    // pipeline mispredicts" from "this run's timings were garbage".
    std::filesystem::remove_all(dir);
    Engine retry_engine(cfg);
    matches = attempt(retry_engine);
  }
  EXPECT_GE(matches, 2) << "predicted-best matched measured-best at only "
                        << matches << " of " << sizes.size() << " sizes";
  std::filesystem::remove_all(dir);
}

TEST(IntegrationReal, ExpansionStrategyOnRealMeasurements) {
  Modeler modeler(backend_instance("naive"));
  ModelingRequest req;
  req.routine = RoutineId::Gemm;
  req.flags = {'N', 'N'};
  req.domain = Region({8, 8, 8}, {64, 64, 64});
  req.fixed_ld = 64;
  req.sampler.reps = 2;

  ExpansionConfig cfg;
  cfg.base.error_bound = 0.50;
  cfg.base.degree = 3;
  cfg.initial_size = 32;
  cfg.direction = ExpansionConfig::Direction::TowardOrigin;
  const RoutineModel model = modeler.build_expansion(req, cfg);
  EXPECT_GT(model.unique_samples, 0);
  EXPECT_GT(model.model.evaluate(std::vector<index_t>{64, 64, 64}).median,
            0.0);
}

}  // namespace
}  // namespace dlap
