// Tests for the .dlapc binary container (src/storage/): writer/reader
// round-trips, the zero-copy load path and its aligned/endian fallbacks,
// and -- most of the file -- corruption handling: a damaged container
// must always yield a typed container_error, never a crash or silently
// wrong models. Also covers the storage satellites: repository/journal
// parse errors naming file and line, deterministic ModelRepository::list
// ordering, container shadowing, and the compaction lifecycle.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/str.hpp"
#include "modeler/repository.hpp"
#include "sampler/sample_store.hpp"
#include "storage/container.hpp"
#include "storage/pack.hpp"

namespace dlap {
namespace {

namespace fs = std::filesystem;
using storage::ContainerReader;
using storage::ContainerWriter;
using storage::ContainerWriteOptions;
using storage::MappedFile;
using storage::SamplePoint;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Deterministic, bit-exact-checkable coefficients.
double coef(int model, int piece, int stat, int k) {
  const double x = 1.0 + 0.3 * model + 0.7 * piece + 1.1 * stat + 1.9 * k;
  return std::sin(x) * 1e3 + 1e-3 * x;
}

RoutineModel make_model(int i, int pieces = 2) {
  RoutineModel m;
  m.key.routine = "routine" + std::to_string(i);
  m.key.backend = "blocked";
  m.key.locality = (i % 2 == 0) ? Locality::InCache : Locality::OutOfCache;
  m.key.flags = "LN";
  m.strategy = "refinement";
  m.unique_samples = 40 + i;
  m.average_error = 0.01 * (i + 1);

  constexpr int kDims = 2;
  constexpr int kDegree = 3;
  const index_t ncoef = monomial_count(kDims, kDegree);
  std::vector<RegionModel> parts;
  for (int p = 0; p < pieces; ++p) {
    RegionModel piece;
    const index_t lo = 8 + 100 * p;
    const index_t hi = 107 + 100 * p;
    piece.region = Region({lo, 8}, {hi, 512});
    piece.fit_error = 0.05 + 0.01 * p;
    piece.mean_error = 0.02 + 0.01 * p;
    piece.samples_used = 30 + p;
    Normalization norm;
    norm.shift = {60.0 + p, 260.0};
    norm.scale = {49.5, 252.0};
    std::vector<std::vector<double>> coeffs(kStatCount);
    for (int s = 0; s < kStatCount; ++s) {
      for (index_t k = 0; k < ncoef; ++k) {
        coeffs[s].push_back(coef(i, p, s, static_cast<int>(k)));
      }
    }
    piece.poly =
        VecPolynomial(kDims, kDegree, std::move(norm), std::move(coeffs));
    parts.push_back(std::move(piece));
  }
  m.model = PiecewiseModel(Region({8, 8}, {8 + 100 * pieces - 1, 512}),
                           std::move(parts));
  return m;
}

SampleStats stats_for(int salt, const std::vector<index_t>& point) {
  double cost = 3.0 + salt;
  for (index_t x : point) cost += 1.25 * static_cast<double>(x);
  SampleStats s;
  s.min = cost * 0.875;
  s.median = cost + 1.0 / 3.0;
  s.mean = cost * 1.01 + 1e-13;
  s.max = cost * 1.625;
  s.stddev = cost / 7.0;
  s.count = 4;
  return s;
}

void expect_stats_eq(const SampleStats& a, const SampleStats& b) {
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.median, b.median);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.count, b.count);
}

void expect_models_equal(const RoutineModel& a, const RoutineModel& b) {
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_EQ(a.unique_samples, b.unique_samples);
  EXPECT_EQ(a.average_error, b.average_error);
  // Bit-identical evaluation everywhere is the contract; probe a grid.
  for (double x = 10.0; x < 200.0; x += 37.0) {
    for (double y = 10.0; y < 500.0; y += 117.0) {
      const std::vector<double> at = {x, y};
      expect_stats_eq(a.model.evaluate(at), b.model.evaluate(at));
    }
  }
}

/// A container image with `nmodels` models and one sample section.
std::vector<std::byte> test_image(int nmodels = 3,
                                  ContainerWriteOptions options = {}) {
  ContainerWriter writer(options);
  for (int i = 0; i < nmodels; ++i) writer.add_model(make_model(i));
  std::vector<SamplePoint> entries;
  for (index_t x = 8; x <= 40; x += 16) {
    entries.push_back(SamplePoint{{x, x + 8}, stats_for(1, {x, x + 8})});
  }
  writer.add_samples("dtrsm/blocked/0/LLNN", std::move(entries));
  return writer.serialize();
}

std::shared_ptr<const ContainerReader> open_image(
    std::vector<std::byte> image) {
  return ContainerReader::from_file(MappedFile::from_buffer(std::move(image)));
}

// ------------------------------------------------------------ round trip

TEST(Container, WriterReaderRoundTrip) {
  const auto reader = open_image(test_image());
  EXPECT_EQ(reader->version(), storage::kContainerVersion);
  EXPECT_TRUE(reader->native_endian());
  ASSERT_EQ(reader->model_count(), 3u);
  ASSERT_EQ(reader->sample_key_count(), 1u);

  for (int i = 0; i < 3; ++i) {
    const RoutineModel expected = make_model(i);
    const auto idx = reader->find_model(ModelKeyRef::of(expected.key));
    ASSERT_TRUE(idx.has_value());
    const storage::ModelView view = reader->model(*idx);
    EXPECT_EQ(view.key(), expected.key);
    EXPECT_EQ(view.strategy(), expected.strategy);
    EXPECT_EQ(view.unique_samples(), expected.unique_samples);
    EXPECT_EQ(view.average_error(), expected.average_error);
    const std::shared_ptr<const RoutineModel> loaded = view.load();
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->source, ModelSource::Container);
    expect_models_equal(*loaded, expected);
  }

  EXPECT_EQ(reader->sample_key(0), "dtrsm/blocked/0/LLNN");
  ASSERT_EQ(reader->sample_entry_count(0), 3u);
  std::size_t seen = 0;
  reader->for_each_sample(
      0, [&](const std::vector<index_t>& point, const SampleStats& s) {
        const index_t x = 8 + 16 * static_cast<index_t>(seen);
        EXPECT_EQ(point, (std::vector<index_t>{x, x + 8}));
        expect_stats_eq(s, stats_for(1, point));
        ++seen;
      });
  EXPECT_EQ(seen, 3u);
  EXPECT_EQ(reader->total_sample_entries(), 3u);
}

TEST(Container, ZeroCopyAliasesMappingAndModelOutlivesReader) {
  auto reader = open_image(test_image(1));
  const storage::ModelView view = reader->model(0);
  EXPECT_TRUE(view.zero_copy());
  std::shared_ptr<const RoutineModel> model = view.load();
  // Borrowed table: the coefficients live in the container image, not in
  // the polynomial.
  EXPECT_FALSE(model->model.pieces()[0].poly.owns_coefficients());

  const std::vector<double> at = {50.0, 60.0};
  const SampleStats before = model->model.evaluate(at);
  reader.reset();  // The loaded model pins the mapping by itself.
  expect_stats_eq(model->model.evaluate(at), before);

  // A value copy materializes owned storage, so it can never dangle.
  VecPolynomial copied = model->model.pieces()[0].poly;
  EXPECT_TRUE(copied.owns_coefficients());
}

TEST(Container, DeterministicSerialization) {
  EXPECT_EQ(test_image(), test_image());
}

// ------------------------------------------------- degraded (copy) loads

TEST(Container, ForeignEndianImageLoadsViaConvertedCopy) {
  const auto reader =
      open_image(test_image(2, ContainerWriteOptions{.byte_swap = true}));
  EXPECT_FALSE(reader->native_endian());
  ASSERT_EQ(reader->model_count(), 2u);
  for (int i = 0; i < 2; ++i) {
    const RoutineModel expected = make_model(i);
    const auto idx = reader->find_model(ModelKeyRef::of(expected.key));
    ASSERT_TRUE(idx.has_value());
    EXPECT_FALSE(reader->model(*idx).zero_copy());
    const std::shared_ptr<const RoutineModel> loaded =
        reader->model(*idx).load();
    // Converted copy: values identical, storage owned.
    EXPECT_TRUE(loaded->model.pieces()[0].poly.owns_coefficients());
    expect_models_equal(*loaded, expected);
  }
  std::size_t entries = 0;
  reader->for_each_sample(
      0, [&](const std::vector<index_t>& point, const SampleStats& s) {
        expect_stats_eq(s, stats_for(1, point));
        ++entries;
      });
  EXPECT_EQ(entries, 3u);
}

TEST(Container, MisalignedImageLoadsViaCopy) {
  // Present the image at a 4-byte offset: valid bytes, unusable for
  // double aliasing. The reader must fall back to copying, not fault.
  const std::vector<std::byte> image = test_image(1);
  std::vector<std::byte> padded(image.size() + 4);
  std::memcpy(padded.data() + 4, image.data(), image.size());
  const auto reader =
      ContainerReader::from_file(MappedFile::from_buffer(std::move(padded), 4));
  ASSERT_EQ(reader->model_count(), 1u);
  EXPECT_FALSE(reader->model(0).zero_copy());
  const std::shared_ptr<const RoutineModel> loaded = reader->model(0).load();
  EXPECT_TRUE(loaded->model.pieces()[0].poly.owns_coefficients());
  expect_models_equal(*loaded, make_model(0));
}

// ------------------------------------------------------------ corruption

TEST(Container, TruncationFuzz) {
  // Every truncated prefix of a valid container must be rejected with
  // container_error -- never a crash, never a partially loaded reader.
  const std::vector<std::byte> image = test_image(2);
  ASSERT_GT(image.size(), 80u);
  // Every prefix near the interesting boundaries, plus an LCG sweep of
  // the rest (deterministic stand-in for random truncation points).
  std::vector<std::size_t> cuts;
  for (std::size_t n = 0; n < 96 && n < image.size(); ++n) cuts.push_back(n);
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 400; ++i) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    cuts.push_back(static_cast<std::size_t>(rng % image.size()));
  }
  for (const std::size_t n : cuts) {
    std::vector<std::byte> truncated(image.begin(),
                                     image.begin() + static_cast<long>(n));
    EXPECT_THROW((void)open_image(std::move(truncated)), container_error)
        << "prefix of " << n << " bytes was accepted";
  }
}

TEST(Container, BadMagicRejected) {
  std::vector<std::byte> image = test_image();
  image[0] = std::byte{'X'};
  EXPECT_THROW((void)open_image(std::move(image)), container_error);
}

TEST(Container, WrongVersionRejected) {
  std::vector<std::byte> image = test_image();
  const std::uint32_t bogus = storage::kContainerVersion + 7;
  std::memcpy(image.data() + 12, &bogus, sizeof(bogus));  // version @12
  EXPECT_THROW((void)open_image(std::move(image)), container_error);
}

TEST(Container, FlippedEndianTagRejected) {
  // Flipping ONLY the endianness tag claims "every other field is
  // byte-swapped" about natively written data; the swapped file-size
  // check exposes the lie. (A consistently swapped file is legal -- see
  // ForeignEndianImageLoadsViaConvertedCopy.)
  std::vector<std::byte> image = test_image();
  std::swap(image[8], image[11]);  // endianness tag @8
  std::swap(image[9], image[10]);
  EXPECT_THROW((void)open_image(std::move(image)), container_error);
}

TEST(Container, GarbageEndianTagRejected) {
  std::vector<std::byte> image = test_image();
  image[8] = std::byte{0xAB};
  image[9] = std::byte{0xCD};
  EXPECT_THROW((void)open_image(std::move(image)), container_error);
}

TEST(Container, IndexEntryPastEofRejected) {
  std::vector<std::byte> image = test_image();
  std::uint64_t model_index_offset = 0;
  std::memcpy(&model_index_offset, image.data() + 40, 8);
  // First model entry's payload_offset lives 40 bytes into the entry
  // (after 4 string refs, locality and dims); point it past EOF.
  const std::uint64_t past_eof = image.size() + 1024;
  std::memcpy(image.data() + model_index_offset + 40, &past_eof, 8);
  EXPECT_THROW((void)open_image(std::move(image)), container_error);
}

TEST(Container, StringRefPastStringTableRejected) {
  std::vector<std::byte> image = test_image();
  std::uint64_t model_index_offset = 0;
  std::memcpy(&model_index_offset, image.data() + 40, 8);
  const std::uint32_t bogus_len = 1u << 30;
  // First model entry's routine string ref: offset @0, length @4.
  std::memcpy(image.data() + model_index_offset + 4, &bogus_len, 4);
  EXPECT_THROW((void)open_image(std::move(image)), container_error);
}

TEST(Container, EmptyAndTinyFilesRejected) {
  EXPECT_THROW((void)open_image({}), container_error);
  EXPECT_THROW((void)open_image(std::vector<std::byte>(16)), container_error);
  EXPECT_THROW((void)open_image(std::vector<std::byte>(80)), container_error);
}

TEST(Container, OpenMissingFileThrowsWithPath) {
  try {
    (void)ContainerReader::open("/nonexistent/dir/repository.dlapc");
    FAIL() << "expected container_error";
  } catch (const container_error& e) {
    EXPECT_NE(std::string(e.what()).find("repository.dlapc"),
              std::string::npos);
  }
}

// container_error must be a parse_error so existing corrupt-file
// tolerance (ModelService::find) extends to containers.
static_assert(std::is_base_of_v<parse_error, container_error>);

// ------------------------------------------- repository + store layering

TEST(Repository, ContainerModelsServeAndTextShadows) {
  const fs::path dir = fresh_dir("dlap_test_repo_container");
  {
    ContainerWriter writer;
    writer.add_model(make_model(0));
    writer.add_model(make_model(1));
    writer.write(dir / storage::kContainerFilename);
  }
  ModelRepository repo(dir);  // auto-attaches repository.dlapc
  ASSERT_NE(repo.container(), nullptr);

  const RoutineModel expected0 = make_model(0);
  const std::shared_ptr<const RoutineModel> from_container =
      repo.find(expected0.key);
  ASSERT_NE(from_container, nullptr);
  EXPECT_EQ(from_container->source, ModelSource::Container);
  expect_models_equal(*from_container, expected0);
  EXPECT_TRUE(repo.contains(make_model(1).key));

  // A text file for the same key is newer information: it shadows the
  // container entry.
  RoutineModel shadow = make_model(0);
  shadow.unique_samples = 9999;
  repo.store(shadow);
  ModelRepository reopened(dir);
  const std::shared_ptr<const RoutineModel> found =
      reopened.find(expected0.key);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->unique_samples, 9999);
  EXPECT_EQ(found->source, ModelSource::TextFile);
}

TEST(Repository, ListIsSortedAndDeduped) {
  const fs::path dir = fresh_dir("dlap_test_repo_list");
  {
    ContainerWriter writer;
    writer.add_model(make_model(0));
    writer.add_model(make_model(2));
    writer.write(dir / storage::kContainerFilename);
  }
  ModelRepository repo(dir);
  repo.store(make_model(3));
  repo.store(make_model(1));
  repo.store(make_model(0));  // shadows the container entry -> one listing

  const std::vector<ModelKey> keys = repo.list();
  ASSERT_EQ(keys.size(), 4u);
  for (std::size_t i = 0; i + 1 < keys.size(); ++i) {
    EXPECT_TRUE(ModelKeyLess{}(keys[i], keys[i + 1]))
        << "list() out of order at " << i;
  }
  EXPECT_EQ(keys, ModelRepository(dir).list());
}

TEST(Repository, DeserializeErrorsNameSourceAndLine) {
  try {
    (void)ModelRepository::deserialize("dlaperf-model v1\nnot-a-field\n",
                                       "broken.model");
    FAIL() << "expected parse_error";
  } catch (const parse_error& e) {
    EXPECT_NE(std::string(e.what()).find("broken.model:2:"),
              std::string::npos)
        << e.what();
  }
}

TEST(SampleStoreContainer, ReplayAndJournalWins) {
  const fs::path dir = fresh_dir("dlap_test_store_container");
  const std::string key = "dtrsm/blocked/0/LLNN";

  // Journal knows {8,16} with salt 1; the container claims {8,16} with
  // salt 9 (stale) and additionally {24,32}.
  {
    SampleStore store(dir);
    store.insert(key, {8, 16}, stats_for(1, {8, 16}));
  }
  ContainerWriter writer;
  writer.add_samples(
      key, {SamplePoint{{8, 16}, stats_for(9, {8, 16})},
            SamplePoint{{24, 32}, stats_for(2, {24, 32})}});
  const fs::path container_path = dir / storage::kContainerFilename;
  writer.write(container_path);

  SampleStore store(dir);
  store.attach_container(ContainerReader::open(container_path));
  SampleStats got;
  EXPECT_EQ(store.probe(key, {8, 16}, &got), SampleStore::Origin::Disk);
  expect_stats_eq(got, stats_for(1, {8, 16}));  // journal wins
  EXPECT_EQ(store.probe(key, {24, 32}, &got), SampleStore::Origin::Disk);
  expect_stats_eq(got, stats_for(2, {24, 32}));  // container-only point
  EXPECT_EQ(store.probe(key, {40, 48}, &got), SampleStore::Origin::Miss);
}

TEST(SampleStoreContainer, DamageNotesNamePathAndLine) {
  const fs::path dir = fresh_dir("dlap_test_store_damage");
  fs::create_directories(dir);
  const std::string key = "dtrsm/blocked/0/LLNN";
  const fs::path journal = dir / SampleStore::journal_filename(key);
  {
    std::ofstream out(journal, std::ios::binary);
    out << SampleStore::journal_magic() << '\n'
        << SampleStore::format_journal_line({8, 16}, stats_for(1, {8, 16}))
        << "this line is garbage\n";
  }
  SampleStore store(dir);
  SampleStats got;
  EXPECT_EQ(store.probe(key, {8, 16}, &got), SampleStore::Origin::Disk);
  const std::vector<std::string> notes = store.journal_damage_notes();
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_NE(notes[0].find(journal.string() + ":3:"), std::string::npos)
      << notes[0];
}

TEST(SampleStoreContainer, KeyFilenameRoundTrip) {
  const std::string key = "dtrsm/blocked@8/1/LLNN";
  EXPECT_EQ(SampleStore::key_from_journal_filename(
                SampleStore::journal_filename(key)),
            key);
  EXPECT_EQ(unescape_filename_component(escape_filename_component(key)), key);
  EXPECT_THROW((void)SampleStore::key_from_journal_filename("nope.txt"),
               parse_error);
  EXPECT_THROW((void)unescape_filename_component("bad-x5"), parse_error);
}

// ------------------------------------------------------------ compaction

TEST(Pack, CompactFoldsTextAndIsIdempotent) {
  const fs::path dir = fresh_dir("dlap_test_compact");
  {
    ModelRepository repo(dir);
    repo.store(make_model(0));
    repo.store(make_model(1));
    SampleStore store(dir / "samples");
    store.insert("k1", {8, 16}, stats_for(1, {8, 16}));
    store.insert("k1", {24, 32}, stats_for(2, {24, 32}));
  }

  const storage::PackStats first = storage::compact_repository(dir);
  EXPECT_EQ(first.models, 2u);
  EXPECT_EQ(first.sample_keys, 1u);
  EXPECT_EQ(first.sample_entries, 2u);
  // Folded text files are gone; only the container remains.
  EXPECT_FALSE(fs::exists(dir / ModelRepository::filename(make_model(0).key)));
  EXPECT_FALSE(
      fs::exists(dir / "samples" / SampleStore::journal_filename("k1")));
  EXPECT_TRUE(fs::exists(dir / storage::kContainerFilename));

  // Everything still serves, from the container.
  {
    ModelRepository repo(dir);
    const auto found = repo.find(make_model(0).key);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->source, ModelSource::Container);
    expect_models_equal(*found, make_model(0));
    SampleStore store(dir / "samples");
    store.attach_container(repo.container());
    SampleStats got;
    EXPECT_EQ(store.probe("k1", {8, 16}, &got), SampleStore::Origin::Disk);
    expect_stats_eq(got, stats_for(1, {8, 16}));
  }

  // New text layered on top merges on the next compaction, with the text
  // layer winning the overlapping key.
  {
    ModelRepository repo(dir);
    RoutineModel updated = make_model(0);
    updated.unique_samples = 777;
    repo.store(updated);
    repo.store(make_model(2));
    SampleStore store(dir / "samples");
    store.insert("k1", {8, 16}, stats_for(5, {8, 16}));  // re-measured
    store.insert("k2", {8, 16}, stats_for(3, {8, 16}));
  }
  const storage::PackStats second = storage::compact_repository(dir);
  EXPECT_EQ(second.models, 3u);
  EXPECT_EQ(second.sample_keys, 2u);
  EXPECT_EQ(second.sample_entries, 3u);
  {
    ModelRepository repo(dir);
    const auto found = repo.find(make_model(0).key);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->unique_samples, 777);
    SampleStore store(dir / "samples");
    store.attach_container(repo.container());
    SampleStats got;
    EXPECT_EQ(store.probe("k1", {8, 16}, &got), SampleStore::Origin::Disk);
    expect_stats_eq(got, stats_for(5, {8, 16}));  // journal beat container
  }

  // Compacting an already-compacted repository is a no-op on content.
  const storage::PackStats third = storage::compact_repository(dir);
  EXPECT_EQ(third.models, 3u);
  EXPECT_EQ(third.sample_keys, 2u);
  EXPECT_EQ(third.sample_entries, 3u);
}

TEST(Pack, PackRejectsDamagedJournalWithPathAndLine) {
  const fs::path dir = fresh_dir("dlap_test_pack_damaged");
  {
    ModelRepository repo(dir);
    repo.store(make_model(0));
  }
  fs::create_directories(dir / "samples");
  const fs::path journal =
      dir / "samples" / SampleStore::journal_filename("k1");
  {
    std::ofstream out(journal, std::ios::binary);
    out << SampleStore::journal_magic() << '\n' << "garbage\n";
  }
  try {
    (void)storage::pack_repository(dir, dir / "out.dlapc");
    FAIL() << "expected parse_error";
  } catch (const parse_error& e) {
    EXPECT_NE(std::string(e.what()).find(journal.string() + ":2:"),
              std::string::npos)
        << e.what();
  }
  EXPECT_FALSE(fs::exists(dir / "out.dlapc"));  // nothing was written
}

}  // namespace
}  // namespace dlap
