// Unit tests for level-1 and level-2 BLAS kernels, including BLAS
// increment semantics and failure injection (singular solves).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/level1.hpp"
#include "blas/level2.hpp"
#include "common/matrix.hpp"
#include "common/matrix_util.hpp"
#include "common/rng.hpp"

namespace dlap {
namespace {

using blas::dasum;
using blas::daxpy;
using blas::dcopy;
using blas::ddot;
using blas::dgemv;
using blas::dger;
using blas::dnrm2;
using blas::dscal;
using blas::dswap;
using blas::dsymv;
using blas::dtrmv;
using blas::dtrsv;
using blas::idamax;

TEST(Level1, ScalScalesInPlace) {
  std::vector<double> x{1, 2, 3};
  dscal(3, 2.0, x.data(), 1);
  EXPECT_EQ(x, (std::vector<double>{2, 4, 6}));
}

TEST(Level1, ScalWithStride) {
  std::vector<double> x{1, 9, 2, 9, 3};
  dscal(3, 10.0, x.data(), 2);
  EXPECT_EQ(x, (std::vector<double>{10, 9, 20, 9, 30}));
}

TEST(Level1, ScalEmptyIsNoop) {
  std::vector<double> x{1.0};
  dscal(0, 5.0, x.data(), 1);
  EXPECT_EQ(x[0], 1.0);
}

TEST(Level1, CopyWithNegativeIncrementReverses) {
  // BLAS semantics: inc < 0 traverses backwards from (1-n)*inc.
  std::vector<double> x{1, 2, 3};
  std::vector<double> y(3, 0.0);
  dcopy(3, x.data(), 1, y.data(), -1);
  EXPECT_EQ(y, (std::vector<double>{3, 2, 1}));
}

TEST(Level1, AxpyAccumulates) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{10, 20, 30};
  daxpy(3, 2.0, x.data(), 1, y.data(), 1);
  EXPECT_EQ(y, (std::vector<double>{12, 24, 36}));
}

TEST(Level1, AxpyZeroAlphaIsNoop) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{4, 5, 6};
  daxpy(3, 0.0, x.data(), 1, y.data(), 1);
  EXPECT_EQ(y, (std::vector<double>{4, 5, 6}));
}

TEST(Level1, DotComputesInnerProduct) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{4, 5, 6};
  EXPECT_DOUBLE_EQ(ddot(3, x.data(), 1, y.data(), 1), 32.0);
  EXPECT_DOUBLE_EQ(ddot(0, x.data(), 1, y.data(), 1), 0.0);
}

TEST(Level1, Nrm2MatchesDefinitionAndResistsOverflow) {
  std::vector<double> x{3, 4};
  EXPECT_DOUBLE_EQ(dnrm2(2, x.data(), 1), 5.0);
  // Values whose squares overflow must still give a finite norm.
  std::vector<double> big{1e200, 1e200};
  const double n = dnrm2(2, big.data(), 1);
  EXPECT_TRUE(std::isfinite(n));
  EXPECT_NEAR(n, std::sqrt(2.0) * 1e200, 1e187);
}

TEST(Level1, AsumAndIdamax) {
  std::vector<double> x{-1, 4, -7, 2};
  EXPECT_DOUBLE_EQ(dasum(4, x.data(), 1), 14.0);
  EXPECT_EQ(idamax(4, x.data(), 1), 2);
  EXPECT_EQ(idamax(0, x.data(), 1), -1);
}

TEST(Level1, SwapExchangesContents) {
  std::vector<double> x{1, 2};
  std::vector<double> y{3, 4};
  dswap(2, x.data(), 1, y.data(), 1);
  EXPECT_EQ(x, (std::vector<double>{3, 4}));
  EXPECT_EQ(y, (std::vector<double>{1, 2}));
}

// ------------------------------------------------------------------ gemv

TEST(Level2, GemvNoTrans) {
  // A = [1 2; 3 4] col-major, x = [1, 1]: A*x = [3, 7].
  std::vector<double> a{1, 3, 2, 4};
  std::vector<double> x{1, 1};
  std::vector<double> y{100, 100};
  dgemv(Trans::NoTrans, 2, 2, 1.0, a.data(), 2, x.data(), 1, 0.0, y.data(),
        1);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Level2, GemvTransposeAndBeta) {
  std::vector<double> a{1, 3, 2, 4};
  std::vector<double> x{1, 1};
  std::vector<double> y{1, 1};
  dgemv(Trans::Transpose, 2, 2, 2.0, a.data(), 2, x.data(), 1, 3.0, y.data(),
        1);
  // A^T x = [4, 6]; y = 2*[4,6] + 3*[1,1] = [11, 15].
  EXPECT_DOUBLE_EQ(y[0], 11.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(Level2, GerRankOneUpdate) {
  Matrix a(2, 2);
  std::vector<double> x{1, 2};
  std::vector<double> y{3, 4};
  dger(2, 2, 1.0, x.data(), 1, y.data(), 1, a.data(), 2);
  EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 8.0);
}

// ------------------------------------------------------- trmv/trsv pair

class TrxvRoundTrip : public ::testing::TestWithParam<
                          std::tuple<Uplo, Trans, Diag, index_t>> {};

TEST_P(TrxvRoundTrip, TrsvInvertsTrmv) {
  const auto [uplo, trans, diag, n] = GetParam();
  Rng rng(99);
  Matrix a(n, n);
  if (uplo == Uplo::Lower) {
    fill_lower_triangular(a.view(), rng);
  } else {
    fill_upper_triangular(a.view(), rng);
  }
  std::vector<double> x(n), x0(n);
  for (index_t i = 0; i < n; ++i) x[i] = x0[i] = rng.uniform(-1, 1);

  dtrmv(uplo, trans, diag, n, a.data(), n, x.data(), 1);
  dtrsv(uplo, trans, diag, n, a.data(), n, x.data(), 1);
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x0[i], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    AllFlags, TrxvRoundTrip,
    ::testing::Combine(::testing::Values(Uplo::Lower, Uplo::Upper),
                       ::testing::Values(Trans::NoTrans, Trans::Transpose),
                       ::testing::Values(Diag::NonUnit, Diag::Unit),
                       ::testing::Values<index_t>(1, 7, 32)));

TEST(Level2, TrsvSingularThrows) {
  Matrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = 0.0;  // singular
  a(2, 2) = 1.0;
  std::vector<double> x{1, 1, 1};
  EXPECT_THROW(dtrsv(Uplo::Lower, Trans::NoTrans, Diag::NonUnit, 3, a.data(),
                     3, x.data(), 1),
               numerical_error);
  // Unit diagonal ignores the stored zero.
  EXPECT_NO_THROW(dtrsv(Uplo::Lower, Trans::NoTrans, Diag::Unit, 3, a.data(),
                        3, x.data(), 1));
}

TEST(Level2, SymvUsesOnlyStoredTriangle) {
  // Symmetric A = [2 5; 5 3] stored only in the lower triangle; the upper
  // triangle holds garbage that must not be read.
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(1, 0) = 5.0;
  a(1, 1) = 3.0;
  a(0, 1) = 999.0;  // garbage
  std::vector<double> x{1, 1};
  std::vector<double> y{0, 0};
  dsymv(Uplo::Lower, 2, 1.0, a.data(), 2, x.data(), 1, 0.0, y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 8.0);
}

TEST(Level2, GemvRejectsBadLd) {
  std::vector<double> a(4), x(2), y(2);
  EXPECT_THROW(dgemv(Trans::NoTrans, 2, 2, 1.0, a.data(), 1, x.data(), 1, 0.0,
                     y.data(), 1),
               invalid_argument_error);
}

}  // namespace
}  // namespace dlap
