// Tests for trace extraction, prediction accumulation, and ranking
// analysis. The centerpiece reproduces the paper's printed invocation list
// for trinv variant 1 (n=250, blocksize=100) call for call.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "algorithms/sylv.hpp"
#include "algorithms/trinv.hpp"
#include "predict/predictor.hpp"
#include "predict/ranking.hpp"
#include "predict/trace.hpp"

namespace dlap {
namespace {

// ------------------------------------------------------------------ trace

TEST(Trace, PaperTrinvVariant1Listing) {
  // Section IV-A: "the execution of variant 1 on a matrix of size 250 with
  // block-size 100 produces the following invocations:"
  const CallTrace t = trace_trinv(1, 250, 100);
  const char* expected[] = {
      "dtrmm(R,L,N,N,100,0,1,A,250,B,250)",
      "dtrsm(L,L,N,N,100,0,-1,A,250,B,250)",
      "trinv1_unb(100,A,250)",
      "dtrmm(R,L,N,N,100,100,1,A,250,B,250)",
      "dtrsm(L,L,N,N,100,100,-1,A,250,B,250)",
      "trinv1_unb(100,A,250)",
      "dtrmm(R,L,N,N,50,200,1,A,250,B,250)",
      "dtrsm(L,L,N,N,50,200,-1,A,250,B,250)",
      "trinv1_unb(50,A,250)",
  };
  ASSERT_EQ(t.size(), 9u);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(format_call(t[i]), expected[i]) << "call " << i;
  }
}

TEST(Trace, TrinvVariantsHaveExpectedKernelMix) {
  // Variant 1: trmm + trsm, no gemm. Variant 3: gemm-rich.
  const auto count = [](const CallTrace& t, RoutineId id) {
    index_t n = 0;
    for (const auto& c : t) n += (c.routine == id);
    return n;
  };
  const CallTrace v1 = trace_trinv(1, 480, 96);
  EXPECT_EQ(count(v1, RoutineId::Gemm), 0);
  EXPECT_GT(count(v1, RoutineId::Trmm), 0);
  EXPECT_GT(count(v1, RoutineId::Trsm), 0);
  EXPECT_EQ(count(v1, RoutineId::Trinv1Unb), 5);

  const CallTrace v3 = trace_trinv(3, 480, 96);
  EXPECT_EQ(count(v3, RoutineId::Gemm), 5);
  EXPECT_EQ(count(v3, RoutineId::Trinv3Unb), 5);

  const CallTrace v4 = trace_trinv(4, 480, 96);
  EXPECT_GT(count(v4, RoutineId::Gemm), 0);
  EXPECT_GT(count(v4, RoutineId::Trmm), 0);
  EXPECT_EQ(count(v4, RoutineId::Trinv4Unb), 5);
}

TEST(Trace, TrinvTraceFlopsMatchFormula) {
  // Variants 1-3 perform ~n^3/3 flops like the formula; variant 4 redoes
  // trailing solves and a growing trmm each iteration, costing roughly
  // 3x the minimum -- exactly why the paper finds it "significantly
  // slower" (Fig I.1).
  const index_t n = 240;
  const double formula = trinv_flops(n);
  const double r1 = trace_flops(trace_trinv(1, n, 48)) / formula;
  const double r2 = trace_flops(trace_trinv(2, n, 48)) / formula;
  const double r3 = trace_flops(trace_trinv(3, n, 48)) / formula;
  const double r4 = trace_flops(trace_trinv(4, n, 48)) / formula;
  EXPECT_NEAR(r1, 1.0, 0.35);
  EXPECT_NEAR(r2, 1.0, 0.35);
  EXPECT_NEAR(r3, 1.0, 0.35);
  EXPECT_GT(r4, 1.8);
  EXPECT_LT(r4, 4.0);
}

TEST(Trace, SylvEveryBlockSolvedExactlyOnce) {
  // Any variant's trace contains exactly ceil(m/b)*ceil(n/b) unblocked
  // solves -- each X block is solved exactly once.
  for (int v = 1; v <= kSylvVariantCount; ++v) {
    const CallTrace t = trace_sylv(v, 200, 136, 48);
    index_t solves = 0;
    for (const auto& c : t) solves += (c.routine == RoutineId::SylvUnb);
    EXPECT_EQ(solves, 5 * 3) << "variant " << v;
  }
}

TEST(Trace, SylvPullVariantsUseLargeKGemms) {
  // Pull (lazy) schedules accumulate with k growing to the full prefix;
  // push schedules broadcast rank-b updates only.
  const index_t b = 32;
  const CallTrace pull = trace_sylv(1, 256, 256, b);
  index_t max_k_pull = 0;
  for (const auto& c : pull) {
    if (c.routine == RoutineId::Gemm) {
      max_k_pull = std::max(max_k_pull, c.sizes[2]);
    }
  }
  EXPECT_GT(max_k_pull, b);

  const CallTrace push = trace_sylv(16, 256, 256, b);
  for (const auto& c : push) {
    if (c.routine == RoutineId::Gemm) {
      EXPECT_LE(c.sizes[2], b);  // k never exceeds the block size
    }
  }
}

TEST(Trace, SylvTraceFlopsMatchFormulaAcrossVariants) {
  for (int v : {1, 6, 11, 16}) {
    const CallTrace t = trace_sylv(v, 192, 160, 48);
    EXPECT_NEAR(trace_flops(t) / sylv_flops(192, 160), 1.0, 0.25)
        << "variant " << v;
  }
}

TEST(Trace, RecordsLeadingDimensionsVerbatim) {
  TraceContext ctx;
  ctx.gemm(Trans::NoTrans, Trans::Transpose, 10, 20, 30, 1.5, nullptr, 64,
           nullptr, 128, 0.0, nullptr, 256);
  ASSERT_EQ(ctx.trace().size(), 1u);
  const KernelCall& c = ctx.trace()[0];
  EXPECT_EQ(c.leads, (std::vector<index_t>{64, 128, 256}));
  EXPECT_EQ(c.flag_key(), "NT");
  EXPECT_DOUBLE_EQ(c.scalars[0], 1.5);
}

// -------------------------------------------------------------- predictor

// Constant-valued model: every statistic == value over [lo, hi]^dims.
RoutineModel constant_model(const std::string& routine,
                            const std::string& flags, int dims, double value,
                            index_t lo = 1, index_t hi = 4096) {
  Normalization norm;
  norm.shift.assign(dims, 0.0);
  norm.scale.assign(dims, 1.0);
  std::vector<std::vector<double>> coeffs(kStatCount,
                                          std::vector<double>{value});
  RegionModel piece;
  piece.region = Region(std::vector<index_t>(dims, lo),
                        std::vector<index_t>(dims, hi));
  piece.poly = VecPolynomial(dims, 0, norm, coeffs);
  piece.fit_error = 0.0;
  piece.mean_error = 0.0;
  piece.samples_used = 1;
  RoutineModel m;
  m.key = {routine, "synthetic", Locality::InCache, flags};
  m.model = PiecewiseModel(piece.region, {piece});
  return m;
}

ModelSet trinv_v1_models(double trmm_cost, double trsm_cost,
                         double unb_cost) {
  ModelSet set;
  set.add(constant_model("dtrmm", "RLNN", 2, trmm_cost));
  set.add(constant_model("dtrsm", "LLNN", 2, trsm_cost));
  set.add(constant_model("trinv1_unb", "", 1, unb_cost));
  return set;
}

TEST(Predictor, AccumulatesConstantModelsOverTrace) {
  const ModelSet set = trinv_v1_models(10.0, 20.0, 5.0);
  const Predictor pred(set);
  // n=250, b=100: 3 iterations. First iteration's trmm/trsm have n=0 and
  // are skipped; remaining: 2 trmm + 2 trsm + 3 unblocked.
  const Prediction p = pred.predict(trace_trinv(1, 250, 100));
  EXPECT_EQ(p.skipped, 2);
  EXPECT_EQ(p.calls, 7);
  EXPECT_DOUBLE_EQ(p.ticks.median, 2 * 10.0 + 2 * 20.0 + 3 * 5.0);
  EXPECT_DOUBLE_EQ(p.ticks.min, p.ticks.median);  // constant stats
  EXPECT_GT(p.flops, 0.0);
}

TEST(Predictor, StddevCombinesAsRootSumOfSquares) {
  ModelSet set;
  RoutineModel m = constant_model("trinv1_unb", "", 1, 10.0);
  // Rebuild with stddev = 3.
  {
    Normalization norm{{0.0}, {1.0}};
    std::vector<std::vector<double>> coeffs(kStatCount,
                                            std::vector<double>{10.0});
    coeffs[static_cast<int>(Stat::Stddev)] = {3.0};
    RegionModel piece;
    piece.region = Region({1}, {4096});
    piece.poly = VecPolynomial(1, 0, norm, coeffs);
    m.model = PiecewiseModel(piece.region, {piece});
  }
  set.add(m);
  set.add(constant_model("dtrmm", "RLNN", 2, 0.0));
  set.add(constant_model("dtrsm", "LLNN", 2, 0.0));
  const Predictor pred(set);
  // 4 unblocked calls: stddev = sqrt(4 * 9) = 6... plus trmm/trsm zeros.
  const Prediction p = pred.predict(trace_trinv(1, 256, 64));
  EXPECT_NEAR(p.ticks.stddev, std::sqrt(4 * 9.0), 1e-9);
}

TEST(Predictor, StrictModeThrowsOnMissingModel) {
  ModelSet set;  // empty
  const Predictor strict(set);
  EXPECT_THROW(strict.predict(trace_trinv(1, 128, 64)), lookup_error);

  PredictionOptions opts;
  opts.strict = false;
  const Predictor lax(set, opts);
  const Prediction p = lax.predict(trace_trinv(1, 128, 64));
  EXPECT_GT(p.missing, 0);
  EXPECT_EQ(p.calls, 0);
}

TEST(Predictor, SkipEmptyCallsOptional) {
  const ModelSet set = trinv_v1_models(10.0, 20.0, 5.0);
  PredictionOptions opts;
  opts.skip_empty_calls = false;
  const Predictor pred(set, opts);
  // Degenerate calls now get evaluated via domain clamping.
  const Prediction p = pred.predict(trace_trinv(1, 250, 100));
  EXPECT_EQ(p.skipped, 0);
  EXPECT_EQ(p.calls, 9);
}

TEST(Predictor, PredictCallEvaluatesSingleModel) {
  const ModelSet set = trinv_v1_models(10.0, 20.0, 5.0);
  const Predictor pred(set);
  const SampleStats s = pred.predict_call(parse_call("trinv1_unb(64,A,64)"));
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_THROW(pred.predict_call(parse_call("trinv2_unb(64,A,64)")),
               lookup_error);
}

TEST(Predictor, PredictReportNamesMissingKeysWithoutThrowing) {
  ModelSet set;
  set.add(constant_model("dtrmm", "RLNN", 2, 10.0));  // trsm/unb missing
  const Predictor pred(set);  // strict by default; report must not throw
  const PredictReport report = pred.predict_report(trace_trinv(1, 250, 100));
  EXPECT_FALSE(report.complete());
  // Two distinct keys miss (dtrsm LLNN, trinv1_unb), several calls each.
  ASSERT_EQ(report.missing_keys.size(), 2u);
  EXPECT_GT(report.prediction.missing, 2);
  EXPECT_EQ(report.prediction.calls, 2);  // the two covered trmm calls
  const auto key = std::make_pair(std::string("dtrsm"), std::string("LLNN"));
  EXPECT_NE(std::find(report.missing_keys.begin(), report.missing_keys.end(),
                      key),
            report.missing_keys.end());
}

TEST(Predictor, TablePathBitIdenticalToStringPath) {
  const ModelSet set = trinv_v1_models(11.5, 23.25, 5.75);
  const Predictor pred(set);
  const CallTrace trace = trace_trinv(1, 250, 100);
  const Prediction via_strings = pred.predict(trace);

  // Build the dense-table view by hand: intern each call's key.
  std::vector<const RoutineModel*> table;
  std::vector<std::pair<std::string, std::string>> keys;
  std::vector<int> ids;
  for (const KernelCall& call : trace) {
    const auto key = std::make_pair(std::string(routine_name(call.routine)),
                                    call.flag_key());
    const auto it = std::find(keys.begin(), keys.end(), key);
    if (it == keys.end()) {
      keys.push_back(key);
      table.push_back(set.find(key.first, key.second));
      ids.push_back(static_cast<int>(keys.size()) - 1);
    } else {
      ids.push_back(static_cast<int>(it - keys.begin()));
    }
  }
  const Prediction via_table = predict_with_table(trace, ids, table);
  EXPECT_EQ(via_table.ticks.min, via_strings.ticks.min);
  EXPECT_EQ(via_table.ticks.median, via_strings.ticks.median);
  EXPECT_EQ(via_table.ticks.mean, via_strings.ticks.mean);
  EXPECT_EQ(via_table.ticks.max, via_strings.ticks.max);
  EXPECT_EQ(via_table.ticks.stddev, via_strings.ticks.stddev);
  EXPECT_EQ(via_table.flops, via_strings.flops);
  EXPECT_EQ(via_table.calls, via_strings.calls);
  EXPECT_EQ(via_table.skipped, via_strings.skipped);
  EXPECT_EQ(via_table.missing, via_strings.missing);
}

TEST(Predictor, TablePathCountsUnresolvedIdsAsMissing) {
  const CallTrace trace = trace_trinv(1, 128, 64);
  const std::vector<int> ids(trace.size(), -1);
  const Prediction p = predict_with_table(trace, ids, {});
  EXPECT_EQ(p.calls, 0);
  EXPECT_GT(p.missing, 0);
  EXPECT_THROW(
      (void)predict_with_table(trace, std::vector<int>(2, 0), {}),
      invalid_argument_error);  // id/trace length mismatch
}

TEST(Predictor, EfficiencyMedianDefinedOnDegenerateInputs) {
  Prediction p;  // empty trace: median 0, calls 0
  EXPECT_EQ(p.calls, 0);
  EXPECT_DOUBLE_EQ(p.efficiency_median(1e9), 0.0);
  p.ticks.median = 1000.0;
  EXPECT_DOUBLE_EQ(p.efficiency_median(0.0), 0.0);   // zero flops
  EXPECT_DOUBLE_EQ(p.efficiency_median(-5.0), 0.0);  // negative flops
  EXPECT_DOUBLE_EQ(
      p.efficiency_median(std::numeric_limits<double>::quiet_NaN()), 0.0);
  EXPECT_DOUBLE_EQ(
      p.efficiency_median(std::numeric_limits<double>::infinity()), 0.0);
  EXPECT_GT(p.efficiency_median(1e9), 0.0);  // sane inputs still work
}

TEST(Predictor, ModelSetFindIsFlagSensitive) {
  ModelSet set;
  set.add(constant_model("dtrsm", "LLNN", 2, 1.0));
  EXPECT_NE(set.find("dtrsm", "LLNN"), nullptr);
  EXPECT_EQ(set.find("dtrsm", "RLNN"), nullptr);
  EXPECT_EQ(set.find("dtrmm", "LLNN"), nullptr);
}

// ---------------------------------------------------------------- ranking

TEST(Ranking, RankOrderSortsAscending) {
  EXPECT_EQ(rank_order({3.0, 1.0, 2.0}), (std::vector<index_t>{1, 2, 0}));
  EXPECT_EQ(rank_order({1.0, 1.0, 0.5}), (std::vector<index_t>{2, 0, 1}));
}

TEST(Ranking, KendallTauExtremes) {
  const std::vector<double> a{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(kendall_tau(a, {10, 20, 30, 40}), 1.0);
  EXPECT_DOUBLE_EQ(kendall_tau(a, {40, 30, 20, 10}), -1.0);
  // One swapped adjacent pair: 5 of 6 pairs concordant.
  EXPECT_NEAR(kendall_tau(a, {1, 3, 2, 4}), (5.0 - 1.0) / 6.0, 1e-12);
}

TEST(Ranking, SameWinner) {
  EXPECT_TRUE(same_winner({5, 1, 9}, {50, 10, 90}));
  EXPECT_FALSE(same_winner({5, 1, 9}, {1, 50, 90}));
}

TEST(Ranking, TopKOverlap) {
  const std::vector<double> truth{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(topk_overlap({1, 2, 3, 4}, truth, 2), 1.0);
  EXPECT_DOUBLE_EQ(topk_overlap({4, 3, 2, 1}, truth, 2), 0.0);
  EXPECT_DOUBLE_EQ(topk_overlap({2, 1, 3, 4}, truth, 2), 1.0);  // swapped
}

TEST(Ranking, CrossoverDetection) {
  // a - b changes sign between indices 1 and 2.
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{2, 3, 2, 1};
  const auto x = crossovers(a, b);
  ASSERT_EQ(x.size(), 1u);
  EXPECT_EQ(x[0], 1);
  EXPECT_TRUE(crossovers(a, {0, 0, 0, 0}).empty());
}

TEST(Ranking, FastGroupSplitsAtLargestGap) {
  // Two clear groups: {10, 12, 11, 9} and {200, 300}.
  const std::vector<double> ticks{200.0, 10.0, 12.0, 300.0, 11.0, 9.0};
  const auto fast = fast_group(ticks);
  EXPECT_EQ(fast, (std::vector<index_t>{1, 2, 4, 5}));
}

// Documented edge-case behavior: degenerate inputs yield defined values
// instead of exceptions or NaN.

TEST(Ranking, KendallTauDefinedBelowTwoEntries) {
  EXPECT_DOUBLE_EQ(kendall_tau({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(kendall_tau({3.0}, {7.0}), 0.0);
  // Size mismatch stays a contract violation.
  EXPECT_THROW((void)kendall_tau({1.0, 2.0}, {1.0}),
               invalid_argument_error);
}

TEST(Ranking, TopKOverlapClampsKAndHandlesEmpty) {
  const std::vector<double> truth{1, 2, 3, 4};
  // k > size clamps to size: comparing the full rankings.
  EXPECT_DOUBLE_EQ(topk_overlap({1, 2, 3, 4}, truth, 99), 1.0);
  EXPECT_DOUBLE_EQ(topk_overlap({4, 3, 2, 1}, truth, 99), 1.0);
  // k <= 0 and empty inputs: the empty top set overlaps vacuously.
  EXPECT_DOUBLE_EQ(topk_overlap({1, 2}, {2, 1}, 0), 1.0);
  EXPECT_DOUBLE_EQ(topk_overlap({1, 2}, {2, 1}, -3), 1.0);
  EXPECT_DOUBLE_EQ(topk_overlap({}, {}, 4), 1.0);
}

TEST(Ranking, FastGroupDegenerateInputs) {
  EXPECT_TRUE(fast_group({}).empty());
  EXPECT_EQ(fast_group({42.0}), (std::vector<index_t>{0}));
  // Two entries: the smaller one forms the fast group.
  EXPECT_EQ(fast_group({100.0, 10.0}), (std::vector<index_t>{1}));
}

TEST(Ranking, CrossoversIgnoreTouchingSeries) {
  // A touch (difference reaching exactly 0) is not a sign change.
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{2, 2, 4};
  EXPECT_TRUE(crossovers(a, b).empty());
}

// Additional direct trace coverage: flop accounting identities.

TEST(Trace, TraceFlopsIsSumOfCallFlops) {
  const CallTrace t = trace_trinv(2, 200, 64);
  double sum = 0.0;
  for (const KernelCall& c : t) sum += call_flops(c);
  EXPECT_DOUBLE_EQ(trace_flops(t), sum);
  EXPECT_DOUBLE_EQ(trace_flops({}), 0.0);
}

TEST(Trace, SylvTraceFlopsMatchFormulaForAllSixteenVariants) {
  for (int v = 1; v <= kSylvVariantCount; ++v) {
    const CallTrace t = trace_sylv(v, 160, 128, 48);
    EXPECT_NEAR(trace_flops(t) / sylv_flops(160, 128), 1.0, 0.3)
        << "variant " << v;
  }
}

}  // namespace
}  // namespace dlap
